//! The spec-format contract: `parse → emit → parse` is the identity,
//! canonical files round-trip byte-identically, the layering order is
//! `defaults < spec file < environment < command line`, every malformed
//! input produces a *named* error, and the checked-in spec files (the
//! golden one under `tests/specs/` and the annotated examples under
//! `examples/specs/`) always parse — the format can never drift from the
//! parser.

use std::path::Path;

use dragonfly_interference::prelude::*;

fn args(list: &[&str]) -> Vec<String> {
    list.iter().map(|s| s.to_string()).collect()
}

#[test]
fn parse_emit_parse_is_the_identity_for_every_workload_form() {
    let workloads = [
        "standalone FFT3D",
        "pairwise LQCD Stencil5D",
        "pairwise LULESH none",
        "mixed",
        "jobs FFT3D:140,idle:16,UR:36",
        "scenario UR:36@0ps,LU:16@500000000ps",
        "poisson",
    ];
    for w in workloads {
        let text = format!("dfsim-spec v1\nworkload {w}\nscale 128\nseed 9\n");
        let spec = ExperimentSpec::parse(&text).unwrap_or_else(|e| panic!("{w}: {e}"));
        let emitted = spec.emit();
        let reparsed = ExperimentSpec::parse(&emitted).unwrap();
        assert_eq!(reparsed, spec, "parse(emit(s)) != s for workload {w}");
        assert_eq!(reparsed.emit(), emitted, "emit not canonical for workload {w}");
    }
}

#[test]
fn canonical_files_round_trip_byte_identically() {
    // The golden spec is stored in canonical (emit) form, so emit(parse())
    // must reproduce the file byte for byte.
    let path = Path::new("tests/specs/fig8_tiny.spec");
    let text = std::fs::read_to_string(path).expect("golden spec checked in");
    let spec = ExperimentSpec::parse(&text).expect("golden spec parses");
    assert_eq!(spec.emit(), text, "tests/specs/fig8_tiny.spec is not in canonical form");
}

#[test]
fn checked_in_example_specs_always_parse() {
    let mut seen = 0;
    for dir in ["examples/specs", "tests/specs"] {
        for entry in std::fs::read_dir(dir).expect(dir) {
            let path = entry.unwrap().path();
            if path.extension().is_none_or(|e| e != "spec") {
                continue;
            }
            seen += 1;
            let text = std::fs::read_to_string(&path).unwrap();
            let spec =
                ExperimentSpec::parse(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
            spec.validate().unwrap_or_else(|e| panic!("{}: {e}", path.display()));
            // Emit of any parsed spec is canonical and re-parses to the
            // same value.
            assert_eq!(ExperimentSpec::parse(&spec.emit()).unwrap(), spec, "{}", path.display());
        }
    }
    assert!(seen >= 3, "expected the golden + example specs, found {seen}");
}

#[test]
fn layering_precedence_file_under_env_under_cli() {
    let dir = std::env::temp_dir().join(format!("dfsim_spec_layers_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("base.spec");
    std::fs::write(
        &path,
        "dfsim-spec v1\nscale 128\nseed 7\nrouting PAR\nqueue calendar:auto\nsched backfill\n",
    )
    .unwrap();
    let env = |var: &str| match var {
        "SEED" => Some("11".to_string()),
        "QUEUE" => Some("heap".to_string()),
        "ROUTING" => Some("UGALn".to_string()),
        _ => None,
    };
    let cli = args(&["--spec", path.to_str().unwrap(), "--routing", "Q-adp", "--csv"]);
    let spec = ExperimentSpec::default().resolve_with(env, &cli).unwrap();
    // File beats defaults where neither env nor CLI speaks.
    assert_eq!(spec.scale, 128.0);
    assert_eq!(spec.sched, SchedPolicy::Backfill);
    // Env beats the file.
    assert_eq!(spec.seed, 11);
    assert_eq!(spec.queue, QueueBackend::BinaryHeap);
    // CLI beats env.
    assert_eq!(spec.routings, vec![RoutingAlgo::QAdaptive]);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn invalid_env_values_are_hard_errors_naming_variable_and_value() {
    // Core variables: every front-end listens.
    let core = [
        ("SCALE", "6O"),
        ("SEED", "-3"),
        ("QUEUE", "abacus"),
        ("ROUTING", "warp"),
        ("THREADS", "many"),
        ("SCHED", "lifo"),
        ("PLACEMENT", "sideways"),
    ];
    // Extended variables: only front-ends that opt in (churn, transfer,
    // fig4, probe_pair) listen, with the same hard-error contract.
    let extended = [("RATES", "fast"), ("JOBS", "-1"), ("APPS", "Quake"), ("SIZES", "big")];
    for (var, value) in core.into_iter().chain(extended) {
        let env = move |v: &str| (v == var).then(|| value.to_string());
        let err = ExperimentSpec::default()
            .resolve_env_with(&["RATES", "JOBS", "APPS", "SIZES"], env, &[])
            .unwrap_err();
        let msg = err.to_string();
        assert!(
            matches!(err, SpecError::Env { .. }),
            "{var}={value} must be a named env error, got {err:?}"
        );
        assert!(msg.contains(var), "error must name the variable: {msg}");
        assert!(msg.contains(value), "error must show the bad value: {msg}");
    }
}

#[test]
fn extended_env_vars_require_opt_in() {
    // `TARGET`/`JOBS` are common shell/CI variable names; a front-end that
    // did not opt in must not even look at them — `dfsim run` in a shell
    // with TARGET=x86_64-unknown-linux-gnu exported must still work.
    let env = |var: &str| match var {
        "TARGET" => Some("x86_64-unknown-linux-gnu".to_string()),
        "JOBS" => Some("not-a-number".to_string()),
        _ => None,
    };
    let spec = ExperimentSpec::default().resolve_with(env, &[]).unwrap();
    assert_eq!(spec, ExperimentSpec::default());
    // Opted in, the same values are named hard errors.
    let err = ExperimentSpec::default().resolve_env_with(&["TARGET"], env, &[]).unwrap_err();
    assert!(err.to_string().contains("TARGET"), "{err}");
    // And an unknown opt-in name is itself an error, not a silent no-op.
    let err = ExperimentSpec::default().resolve_env_with(&["TARGETZ"], env, &[]).unwrap_err();
    assert!(err.to_string().contains("TARGETZ"), "{err}");
}

#[test]
fn spec_files_reject_unknown_and_duplicate_keys() {
    let err = ExperimentSpec::parse("dfsim-spec v1\nwarp_drive on\n").unwrap_err();
    assert!(matches!(err, SpecError::UnknownKey { line: 2, .. }), "{err:?}");
    let err = ExperimentSpec::parse("dfsim-spec v1\nseed 1\n# comment\nseed 2\n").unwrap_err();
    assert!(matches!(err, SpecError::DuplicateKey { line: 4, .. }), "{err:?}");
    let err = ExperimentSpec::parse("dfsim-qtable v1\n").unwrap_err();
    assert!(matches!(err, SpecError::Version { .. }), "{err:?}");
}

#[test]
fn value_errors_carry_line_key_and_valid_forms() {
    let err = ExperimentSpec::parse("dfsim-spec v1\nrouting warp\n").unwrap_err();
    match &err {
        SpecError::Value { line, key, msg } => {
            assert_eq!(*line, 2);
            assert_eq!(key, "routing");
            for r in RoutingAlgo::ALL {
                assert!(msg.contains(r.label()), "must list {}: {msg}", r.label());
            }
        }
        other => panic!("expected a Value error, got {other:?}"),
    }
    let err = ExperimentSpec::parse("dfsim-spec v1\nqueue abacus\n").unwrap_err().to_string();
    assert!(err.contains("calendar"), "queue errors list the valid forms: {err}");
}

#[test]
fn dfsim_scenario_and_dfsim_run_agree_through_the_spec() {
    // The `scenario` positional form and the equivalent spec file resolve
    // to the same experiment and therefore the same report.
    let scenario_text = "UR:18@0,CosmoFlow:18@10ns,LU:18@20ns";
    let spec_direct = ExperimentSpec {
        params: DragonflyParams::tiny_72(),
        scale: 2_048.0,
        seed: 13,
        ..Default::default()
    }
    .with_workload(Workload::parse(&format!("scenario {scenario_text}")).unwrap());
    let text = spec_direct.emit();
    let spec_from_file = ExperimentSpec::parse(&text).unwrap();
    assert_eq!(spec_from_file, spec_direct);
    let a = Simulation::from_spec(spec_direct).unwrap().run().unwrap().report;
    let b = Simulation::from_spec(spec_from_file).unwrap().run().unwrap().report;
    assert_eq!(a.events, b.events);
    assert_eq!(a.sim_ms, b.sim_ms);
    for (x, y) in a.jobs.iter().zip(&b.jobs) {
        assert_eq!(x.wait_ms, y.wait_ms);
        assert_eq!(x.finish_ms, y.finish_ms);
    }
}
