//! The partitioned engine's correctness contract: sharding the dragonfly by
//! group across worker threads is a pure performance knob. For any partition
//! count — 1, 2, 4, or one shard per group — and on either queue backend,
//! a run's report must be *bit-identical* to the single-threaded engine's:
//! same stop reason, same event count, same per-app comm/exec/latency
//! figures, same network aggregates, same learned Q-tables (pinned here
//! through the warm-start round trip). The only intentionally
//! thread-dependent fields are `RunReport::engine` (the merged engine
//! counters describe per-shard queues, not one global queue) and `wall_s`.

use std::path::PathBuf;

use dragonfly_interference::prelude::*;

/// tiny_72 has 9 groups, so 9 is the "one shard per group" extreme; 4
/// exercises uneven group ownership (9 = 3+2+2+2).
const PARTITIONS: [usize; 3] = [2, 4, 9];

fn tiny_spec(queue: QueueBackend, routing: RoutingAlgo) -> ExperimentSpec {
    ExperimentSpec {
        params: DragonflyParams::tiny_72(),
        routings: vec![routing],
        scale: 2_048.0,
        seed: 7,
        queue,
        ..Default::default()
    }
}

/// The report with the intentionally thread-dependent fields blanked,
/// rendered via `Debug` (a lossless view of every remaining field: `Debug`
/// for `f64` prints the shortest round-trip form, so string equality is
/// value equality).
fn canonical(report: &RunReport) -> String {
    let mut r = report.clone();
    r.wall_s = 0.0;
    r.engine = EngineReport::default();
    format!("{r:#?}")
}

fn run_at(spec: &ExperimentSpec, threads: usize) -> RunReport {
    let mut spec = spec.clone();
    spec.threads = threads;
    Simulation::from_spec(spec).expect("valid spec").run().expect("run succeeds").report
}

fn assert_all_partition_counts_match(spec: &ExperimentSpec, what: &str) {
    let baseline = run_at(spec, 1);
    assert!(baseline.completed, "{what}: baseline incomplete: {}", baseline.stop_reason);
    let want = canonical(&baseline);
    for parts in PARTITIONS {
        let got = canonical(&run_at(spec, parts));
        assert_eq!(
            want, got,
            "{what} ({}, {:?}): report diverged at {parts} partitions",
            spec.queue, spec.routings[0],
        );
    }
}

fn backends() -> [QueueBackend; 2] {
    [QueueBackend::BinaryHeap, QueueBackend::calendar_auto()]
}

/// The fig-8 regime: pairwise interference, both halves active, under the
/// adaptive routing that stresses cross-group (boundary) traffic most.
#[test]
fn pairwise_reports_identical_at_any_partition_count() {
    for queue in backends() {
        for routing in [RoutingAlgo::UgalG, RoutingAlgo::QAdaptive] {
            let spec = tiny_spec(queue, routing)
                .with_workload(Workload::pairwise(AppKind::FFT3D, Some(AppKind::Halo3D)));
            assert_all_partition_counts_match(&spec, "pairwise fig8");
        }
    }
}

/// Churn: timed arrivals, FCFS admission, node reclamation. Scheduling
/// decisions replicate deterministically on every shard, so job-level
/// reports (waits, starts, slowdowns) must also be bit-identical.
#[test]
fn churn_reports_identical_at_any_partition_count() {
    for queue in backends() {
        let mut spec = tiny_spec(queue, RoutingAlgo::QAdaptive);
        spec.workload = Workload::Poisson;
        spec.rates = vec![500.0];
        spec.jobs = 4;
        spec.apps = vec![AppKind::UR, AppKind::CosmoFlow];
        spec.sizes = vec![18, 36];
        assert_all_partition_counts_match(&spec, "poisson churn");
    }
}

/// Warm start: train once single-threaded, then evaluate the snapshot at
/// every partition count. Pins both the Q-table *load* path (every shard
/// seeds its groups' routers from the snapshot) and the learned-table
/// *capture* path (training at 2 partitions writes the same snapshot the
/// single-threaded trainer does).
#[test]
fn warm_start_reports_identical_at_any_partition_count() {
    let dir = std::env::temp_dir();
    let train_path = |tag: &str| -> PathBuf { dir.join(format!("dfsim_pr6_warm_{tag}.qtable")) };

    // Train (single-threaded reference snapshot).
    let mut train = tiny_spec(QueueBackend::BinaryHeap, RoutingAlgo::QAdaptive)
        .with_workload(Workload::pairwise(AppKind::Halo3D, Some(AppKind::UR)));
    train.qtable_save = Some(train_path("t1"));
    let r1 = run_at(&train, 1);
    assert!(r1.completed, "training run incomplete: {}", r1.stop_reason);

    // Training partitioned must learn the exact same tables.
    train.qtable_save = Some(train_path("t2"));
    run_at(&train, 2);
    let (b1, b2) = (
        std::fs::read(train_path("t1")).expect("t1 snapshot written"),
        std::fs::read(train_path("t2")).expect("t2 snapshot written"),
    );
    assert_eq!(b1, b2, "partitioned training wrote a different Q-table snapshot");

    // Evaluate warm on a shifted seed at every partition count.
    for queue in backends() {
        let mut eval = tiny_spec(queue, RoutingAlgo::QAdaptive)
            .with_workload(Workload::pairwise(AppKind::Halo3D, Some(AppKind::UR)));
        eval.seed = 8;
        eval.qtable_load = Some(train_path("t1"));
        assert_all_partition_counts_match(&eval, "warm-start eval");
    }
    for tag in ["t1", "t2"] {
        let _ = std::fs::remove_file(train_path(tag));
    }
}

/// `threads` beyond the group count is a configuration error surfaced by
/// spec validation (the CLI maps it to exit code 2), not a silent clamp.
#[test]
fn partitions_beyond_group_count_are_rejected_by_name() {
    let mut spec = tiny_spec(QueueBackend::BinaryHeap, RoutingAlgo::UgalG)
        .with_workload(Workload::pairwise(AppKind::FFT3D, None));
    spec.threads = 10;
    let err = Simulation::from_spec(spec).unwrap().prepare().map(|_| ()).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("threads (10) exceed the 9 dragonfly groups"), "unexpected error: {msg}");
}
