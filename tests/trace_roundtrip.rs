//! The streaming-trace losslessness contract: a run traced with
//! `trace = <path>` writes a `dfsim-trace v1` file from which
//! [`replay_trace`] rebuilds the run's *exact* [`RunReport`] — every field,
//! including engine counters and wall time (both carried by the META frame)
//! — without re-simulating anything. Pinned here on both queue backends, at
//! 1 and 2 partitions, for static (pairwise) and churn (Poisson) runs; plus
//! the named-error surface for damaged files.

use std::path::PathBuf;

use dragonfly_interference::metrics::TraceError;
use dragonfly_interference::prelude::*;

fn trace_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("dfsim_pr7_trace_{tag}.trace"))
}

fn tiny_spec(queue: QueueBackend, threads: usize, tag: &str) -> ExperimentSpec {
    ExperimentSpec {
        params: DragonflyParams::tiny_72(),
        routings: vec![RoutingAlgo::QAdaptive],
        scale: 2_048.0,
        seed: 7,
        queue,
        threads,
        trace: Some(trace_path(tag)),
        ..Default::default()
    }
}

/// `Debug` is a lossless view of every report field (`f64` prints its
/// shortest round-trip form), so string equality is value equality.
fn canonical(report: &RunReport) -> String {
    format!("{report:#?}")
}

fn backends() -> [QueueBackend; 2] {
    [QueueBackend::BinaryHeap, QueueBackend::calendar_auto()]
}

fn assert_replay_rebuilds(spec: ExperimentSpec, what: &str) {
    let path = spec.trace.clone().expect("spec under test carries a trace path");
    let report =
        Simulation::from_spec(spec).expect("valid spec").run().expect("run succeeds").report;
    assert!(report.completed, "{what}: traced run incomplete: {}", report.stop_reason);
    let replayed = replay_trace(&path).unwrap_or_else(|e| panic!("{what}: replay failed: {e}"));
    assert_eq!(
        canonical(&report),
        canonical(&replayed),
        "{what}: replayed report diverged from the live run"
    );
    let (contents, meta) = summarize_trace(&path).expect("summary scans a complete file");
    assert!(contents.events > 0, "{what}: trace recorded no events");
    assert_eq!(
        contents.counts.iter().sum::<u64>(),
        contents.events,
        "{what}: per-kind counts disagree with the event total"
    );
    assert_eq!(meta.events, report.events, "{what}: META event count diverged");
    let _ = std::fs::remove_file(&path);
}

/// Static pairwise interference: both backends, sequential engine and the
/// 2-partition engine (per-shard temporaries spliced at assembly).
#[test]
fn static_runs_replay_bit_identically() {
    for queue in backends() {
        for threads in [1usize, 2] {
            let tag = format!("static_{queue}_{threads}");
            let spec = tiny_spec(queue, threads, &tag)
                .with_workload(Workload::pairwise(AppKind::FFT3D, Some(AppKind::Halo3D)));
            assert_replay_rebuilds(spec, &tag);
        }
    }
}

/// Churn: timed Poisson arrivals with admission and reclamation. Job-level
/// reports ride in the META frame, so waits/starts/slowdowns must survive
/// the round trip too.
#[test]
fn churn_runs_replay_bit_identically() {
    for queue in backends() {
        for threads in [1usize, 2] {
            let tag = format!("churn_{queue}_{threads}");
            let mut spec = tiny_spec(queue, threads, &tag);
            spec.workload = Workload::Poisson;
            spec.rates = vec![500.0];
            spec.jobs = 4;
            spec.apps = vec![AppKind::UR, AppKind::CosmoFlow];
            spec.sizes = vec![18, 36];
            assert_replay_rebuilds(spec, &tag);
        }
    }
}

/// A truncated file (torn write, dead process) is a named `Truncated`
/// error, never a partial silent replay.
#[test]
fn truncated_trace_is_a_named_error() {
    let tag = "truncated";
    let spec = tiny_spec(QueueBackend::BinaryHeap, 1, tag)
        .with_workload(Workload::pairwise(AppKind::UR, None));
    let path = spec.trace.clone().unwrap();
    Simulation::from_spec(spec).expect("valid spec").run().expect("run succeeds");
    let bytes = std::fs::read(&path).expect("trace written");
    std::fs::write(&path, &bytes[..bytes.len() - 3]).expect("rewrite truncated");
    match replay_trace(&path) {
        Err(TraceError::Truncated { .. }) => {}
        other => panic!("expected TraceError::Truncated, got {other:?}"),
    }
    let _ = std::fs::remove_file(&path);
}

/// A file from some other format (or a future trace version) is a named
/// `Version` error carrying what was actually found.
#[test]
fn foreign_header_is_a_named_version_error() {
    let path = trace_path("foreign");
    std::fs::write(&path, b"dfsim-trace v9\nxxxx").expect("write foreign file");
    match replay_trace(&path) {
        Err(TraceError::Version { .. }) => {}
        other => panic!("expected TraceError::Version, got {other:?}"),
    }
    let _ = std::fs::remove_file(&path);
}

/// An unreadable path surfaces as a named `Io` error that includes the
/// path, matching the CLI's exit-code-2 contract for bad inputs.
#[test]
fn missing_trace_file_is_a_named_io_error() {
    let path = trace_path("missing_never_written");
    let _ = std::fs::remove_file(&path);
    match replay_trace(&path) {
        Err(TraceError::Io { .. }) => {}
        other => panic!("expected TraceError::Io, got {other:?}"),
    }
}
