//! Property tests over the full stack: random workloads on the tiny
//! Dragonfly must always terminate, conserve packets, and produce
//! self-consistent reports, under every routing algorithm.

use dragonfly_interference::prelude::*;
use proptest::prelude::*;

fn algo() -> impl Strategy<Value = RoutingAlgo> {
    prop_oneof![
        Just(RoutingAlgo::Minimal),
        Just(RoutingAlgo::UgalG),
        Just(RoutingAlgo::UgalN),
        Just(RoutingAlgo::Par),
        Just(RoutingAlgo::QAdaptive),
    ]
}

fn any_app() -> impl Strategy<Value = AppKind> {
    prop_oneof![
        Just(AppKind::UR),
        Just(AppKind::LU),
        Just(AppKind::FFT3D),
        Just(AppKind::Halo3D),
        Just(AppKind::LQCD),
        Just(AppKind::Stencil5D),
        Just(AppKind::CosmoFlow),
        Just(AppKind::DL),
        Just(AppKind::LULESH),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any single app at any size/seed/routing completes with a loss-free,
    /// internally consistent report.
    #[test]
    fn single_app_always_terminates(
        algo in algo(),
        kind in any_app(),
        seed in 0u64..1_000,
        raw_size in 4u32..36,
    ) {
        let size = kind.preferred_size(raw_size);
        prop_assume!(size >= 2);
        let mut cfg = SimConfig::test_tiny(algo);
        cfg.seed = seed;
        let report = run(&cfg, &[JobSpec::sized(kind, size)]);
        prop_assert!(report.completed, "{kind} under {algo}: {}", report.stop_reason);
        let a = &report.apps[0];
        prop_assert!((a.delivery_ratio - 1.0).abs() < 1e-9, "packet loss");
        prop_assert!(a.comm_ms.mean <= a.exec_ms + 1e-9);
        prop_assert!(a.latency_us.q1 <= a.latency_us.p99 + 1e-9);
        prop_assert!(a.detour_frac >= 0.0 && a.detour_frac <= 1.0);
    }

    /// Any pair of apps co-runs to completion; both stay loss-free.
    #[test]
    fn app_pairs_always_terminate(
        algo in algo(),
        a in any_app(),
        b in any_app(),
        seed in 0u64..1_000,
    ) {
        let sa = a.preferred_size(36);
        let sb = b.preferred_size(36);
        let mut cfg = SimConfig::test_tiny(algo);
        cfg.seed = seed;
        let report = run(&cfg, &[JobSpec::sized(a, sa), JobSpec::sized(b, sb)]);
        prop_assert!(report.completed, "{a}+{b} under {algo}: {}", report.stop_reason);
        for app in &report.apps {
            prop_assert!((app.delivery_ratio - 1.0).abs() < 1e-9, "{} lost packets", app.name);
        }
    }

    /// The seed fully determines the outcome (bitwise determinism).
    #[test]
    fn reports_are_deterministic(algo in algo(), seed in 0u64..100) {
        let mut cfg = SimConfig::test_tiny(algo);
        cfg.seed = seed;
        let jobs = [JobSpec::sized(AppKind::Halo3D, 27)];
        let x = run(&cfg, &jobs);
        let y = run(&cfg, &jobs);
        prop_assert_eq!(x.events, y.events);
        prop_assert_eq!(x.sim_ms, y.sim_ms);
        prop_assert_eq!(x.apps[0].comm_ms.mean, y.apps[0].comm_ms.mean);
        prop_assert_eq!(x.apps[0].latency_us.p99, y.apps[0].latency_us.p99);
    }
}
