//! Churn-scenario acceptance: a Poisson job stream admitted by FCFS runs to
//! completion under both queue backends and produces **bit-identical**
//! reports — the backend-equivalence contract extends from static runs to
//! dynamic spawn/teardown, admission decisions and node reclamation, all of
//! which ride the same deterministic `(time, seq)` event order.

// The deprecated free-function entry points are exercised on purpose:
// they pin the old doors' behavior against the spec-based session API.
#![allow(deprecated)]

use dragonfly_interference::prelude::*;

fn churn_scenario() -> Scenario {
    // 8 Poisson arrivals at 500 jobs/ms over four workload kinds; sizes of
    // a quarter and half of the 72-node machine, so admission queues.
    Scenario::poisson(
        13,
        500.0,
        8,
        &[AppKind::UR, AppKind::CosmoFlow, AppKind::LU, AppKind::FFT3D],
        &[18, 36],
    )
}

fn run_churn(backend: QueueBackend, sched: SchedPolicy, placement: Placement) -> RunReport {
    let mut cfg = SimConfig::test_tiny(RoutingAlgo::UgalG);
    cfg.seed = 13;
    run_scenario(&cfg.with_queue(backend), &churn_scenario(), sched, placement)
}

fn assert_identical(heap: &RunReport, cal: &RunReport) {
    assert!(heap.completed, "heap run incomplete: {}", heap.stop_reason);
    assert!(cal.completed, "calendar run incomplete: {}", cal.stop_reason);
    assert_eq!(heap.sim_ms, cal.sim_ms, "simulated end time diverged");
    assert_eq!(heap.events, cal.events, "event count diverged");
    assert_eq!(heap.jobs.len(), cal.jobs.len());
    for (h, c) in heap.jobs.iter().zip(&cal.jobs) {
        assert_eq!(h.name, c.name);
        assert_eq!(h.arrival_ms, c.arrival_ms, "{}: arrival diverged", h.name);
        assert_eq!(h.start_ms, c.start_ms, "{}: admission time diverged", h.name);
        assert_eq!(h.finish_ms, c.finish_ms, "{}: finish diverged", h.name);
        assert_eq!(h.wait_ms, c.wait_ms, "{}: wait diverged", h.name);
        assert_eq!(h.slowdown, c.slowdown, "{}: slowdown diverged", h.name);
    }
    for (h, c) in heap.apps.iter().zip(&cal.apps) {
        assert_eq!(h.comm_ms.mean, c.comm_ms.mean, "{}: comm time diverged", h.name);
        assert_eq!(h.exec_ms, c.exec_ms, "{}: exec time diverged", h.name);
        assert_eq!(h.peak_ingress_bytes, c.peak_ingress_bytes, "{}: ingress diverged", h.name);
        assert_eq!(h.latency_us.p99, c.latency_us.p99, "{}: latency diverged", h.name);
    }
    assert_eq!(
        heap.network.total_delivered_gb, cal.network.total_delivered_gb,
        "delivered bytes diverged"
    );
}

/// The ISSUE's acceptance run: Poisson arrivals + FCFS, both backends,
/// bit-identical reports with populated per-job wait/slowdown.
#[test]
fn churn_fcfs_reports_identical_across_backends() {
    let heap = run_churn(QueueBackend::BinaryHeap, SchedPolicy::Fcfs, Placement::Random);
    let cal = run_churn(QueueBackend::calendar_auto(), SchedPolicy::Fcfs, Placement::Random);
    assert_eq!(heap.queue, "heap");
    assert_eq!(cal.queue, "calendar");
    assert_identical(&heap, &cal);
    // The fixed legacy tuning rides the same deterministic order too.
    let fixed = run_churn(
        QueueBackend::Calendar(CalendarTuning::FIXED_NETWORK),
        SchedPolicy::Fcfs,
        Placement::Random,
    );
    assert_identical(&heap, &fixed);

    // Churn actually happened: every job completed, at least one queued.
    assert_eq!(heap.completed_jobs().count(), 8);
    assert!(
        heap.jobs.iter().any(|j| j.wait_ms > 0.0),
        "no job ever waited — scenario exercises no contention"
    );
    assert!(heap.jobs.iter().all(|j| j.run_ms > 0.0));
    assert!(heap.mean_slowdown() >= 1.0);
}

/// Equivalence also holds under backfill admission and contiguous
/// placement (different admission order, different node carving).
#[test]
fn churn_backfill_contiguous_identical_across_backends() {
    let heap = run_churn(QueueBackend::BinaryHeap, SchedPolicy::Backfill, Placement::Contiguous);
    let cal =
        run_churn(QueueBackend::calendar_auto(), SchedPolicy::Backfill, Placement::Contiguous);
    assert_identical(&heap, &cal);
}

/// On the pinned seed-13 stream, backfill admits earlier than strict FCFS.
/// This is a property of *this* arrival stream, not a universal invariant
/// (no-reservation backfill can starve a blocked queue head in general) —
/// if the stream or the workloads change intentionally, re-derive the
/// expectation like the goldens in `tests/golden_regression.rs`.
#[test]
fn backfill_beats_fcfs_on_the_pinned_stream() {
    let fcfs = run_churn(QueueBackend::BinaryHeap, SchedPolicy::Fcfs, Placement::Random);
    let bf = run_churn(QueueBackend::BinaryHeap, SchedPolicy::Backfill, Placement::Random);
    assert!(fcfs.completed && bf.completed);
    assert!(
        bf.mean_wait_ms() <= fcfs.mean_wait_ms() + 1e-9,
        "backfill mean wait {} > fcfs {} on the pinned stream",
        bf.mean_wait_ms(),
        fcfs.mean_wait_ms()
    );
}

/// A static run's report carries an empty per-job list (the field is
/// scenario-only), so downstream consumers can rely on `jobs.is_empty()`
/// distinguishing the two run types.
#[test]
fn static_runs_have_no_job_reports() {
    let cfg = SimConfig::test_tiny(RoutingAlgo::UgalG);
    let report = run(&cfg, &[JobSpec::sized(AppKind::UR, 36)]);
    assert!(report.jobs.is_empty());
}
