//! The Q-table lifecycle contract: snapshots round-trip bit-exactly,
//! stale snapshots are rejected with *named* fingerprint errors (never
//! silently applied), and warm-started runs are deterministic — including
//! bit-identical reports across both event-queue backends.

// The deprecated free-function entry points are exercised on purpose:
// they pin the old doors' behavior against the spec-based session API.
#![allow(deprecated)]

use std::path::{Path, PathBuf};

use dragonfly_interference::prelude::*;

/// A unique temp path per test (tests run concurrently in one process).
fn temp_snap(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("dfsim_qtable_{tag}_{}.snap", std::process::id()))
}

fn train_cfg(seed: u64) -> SimConfig {
    let mut cfg = SimConfig::test_tiny(RoutingAlgo::QAdaptive);
    cfg.seed = seed;
    cfg
}

fn jobs() -> [JobSpec; 2] {
    [JobSpec::sized(AppKind::Halo3D, 36), JobSpec::sized(AppKind::UR, 36)]
}

/// Train a tiny Q-adaptive run and save its snapshot to `path`.
fn train_and_save(path: &Path) {
    let mut cfg = train_cfg(7);
    cfg.qtable_save = Some(path.to_path_buf());
    let report = run_placed(&cfg, &jobs(), Placement::Random);
    assert!(report.completed, "training run failed: {}", report.stop_reason);
}

#[test]
fn save_load_save_is_byte_identical() {
    let p1 = temp_snap("roundtrip1");
    let p2 = temp_snap("roundtrip2");
    train_and_save(&p1);
    let bytes1 = std::fs::read(&p1).expect("snapshot written");
    let snap = QTableSnapshot::load(&p1).expect("snapshot parses");
    snap.save(&p2).expect("snapshot re-saved");
    let bytes2 = std::fs::read(&p2).expect("second snapshot written");
    assert_eq!(bytes1, bytes2, "save -> load -> save must be byte-identical");
    assert_eq!(snap, QTableSnapshot::load(&p2).unwrap());
    let _ = std::fs::remove_file(&p1);
    let _ = std::fs::remove_file(&p2);
}

#[test]
fn fingerprint_mismatches_produce_named_errors() {
    let p = temp_snap("fingerprint");
    train_and_save(&p);
    let snap = QTableSnapshot::load(&p).expect("snapshot parses");
    let _ = std::fs::remove_file(&p);
    let params = DragonflyParams::tiny_72();
    let timing = LinkTiming::default();
    let alpha = QaParams::default().alpha;

    // The matching fingerprint passes.
    snap.verify(&params, &timing, alpha).expect("identical fingerprint must verify");

    // Wrong topology parameters.
    let e = snap.verify(&DragonflyParams::paper_1056(), &timing, alpha).unwrap_err();
    assert!(matches!(e, SnapshotError::ParamsMismatch { .. }), "{e}");
    assert!(e.to_string().contains("topology"), "{e}");

    // Wrong link timing, naming the field.
    let slow = LinkTiming { local_latency_ps: timing.local_latency_ps + 1, ..timing };
    let e = snap.verify(&params, &slow, alpha).unwrap_err();
    assert!(matches!(e, SnapshotError::TimingMismatch { field: "local_latency_ps", .. }), "{e}");
    assert!(e.to_string().contains("local_latency_ps"), "{e}");

    // Wrong learning rate.
    let e = snap.verify(&params, &timing, alpha + 0.05).unwrap_err();
    assert!(matches!(e, SnapshotError::AlphaMismatch { .. }), "{e}");
    assert!(e.to_string().contains("alpha"), "{e}");
}

#[test]
fn stale_snapshot_is_rejected_at_run_construction_not_applied() {
    // A snapshot trained on a *different* topology must abort the run
    // (panic carrying the fingerprint error), never start with bogus
    // estimates.
    let p = temp_snap("stale");
    train_and_save(&p);
    let caught = std::panic::catch_unwind(|| {
        let mut cfg = SimConfig::with_routing(RoutingAlgo::QAdaptive);
        cfg.params = DragonflyParams::paper_1056(); // snapshot is tiny_72
        cfg.routing.qtable_init = QTableInit::load(&p);
        cfg.scale = 4096.0;
        run_placed(&cfg, &[JobSpec::sized(AppKind::UR, 36)], Placement::Random)
    })
    .expect_err("stale snapshot must abort the run");
    let msg = caught
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_else(|| caught.downcast_ref::<&str>().unwrap_or(&"").to_string());
    assert!(msg.contains("fingerprint"), "panic should carry the fingerprint error: {msg}");
    let _ = std::fs::remove_file(&p);
}

#[test]
fn non_qadaptive_configs_reject_lifecycle_knobs() {
    let mut cfg = SimConfig::test_tiny(RoutingAlgo::UgalG);
    cfg.routing.qtable_init = QTableInit::load("/nonexistent.snap");
    assert!(cfg.validate().unwrap_err().contains("Q-adaptive"));
    let mut cfg = SimConfig::test_tiny(RoutingAlgo::Par);
    cfg.qtable_save = Some("/nonexistent.snap".into());
    assert!(cfg.validate().unwrap_err().contains("Q-adaptive"));
}

#[test]
fn warm_start_is_deterministic_and_backend_invariant() {
    let p = temp_snap("warmstart");
    train_and_save(&p);

    let mut warm = train_cfg(11);
    warm.routing.qtable_init = QTableInit::load(&p);
    let heap =
        run_placed(&warm.clone().with_queue(QueueBackend::BinaryHeap), &jobs(), Placement::Random);
    let again =
        run_placed(&warm.clone().with_queue(QueueBackend::BinaryHeap), &jobs(), Placement::Random);
    let cal =
        run_placed(&warm.with_queue(QueueBackend::calendar_auto()), &jobs(), Placement::Random);
    let _ = std::fs::remove_file(&p);

    for (label, other) in [("rerun", &again), ("calendar", &cal)] {
        assert_eq!(heap.sim_ms, other.sim_ms, "{label}: sim time diverged");
        assert_eq!(heap.events, other.events, "{label}: event count diverged");
        for (a, b) in heap.apps.iter().zip(&other.apps) {
            assert_eq!(a.comm_ms.mean, b.comm_ms.mean, "{label}/{}: comm diverged", a.name);
            assert_eq!(a.exec_ms, b.exec_ms, "{label}/{}: exec diverged", a.name);
            assert_eq!(a.latency_us.p99, b.latency_us.p99, "{label}/{}: latency diverged", a.name);
        }
        assert_eq!(
            heap.network.total_delivered_gb, other.network.total_delivered_gb,
            "{label}: delivered bytes diverged"
        );
        // The learning block is part of the deterministic report too.
        let (l, o) = (heap.learning.as_ref().unwrap(), other.learning.as_ref().unwrap());
        assert_eq!(l.updates, o.updates, "{label}: learning updates diverged");
        assert_eq!(l.mean_abs_dq1_ns, o.mean_abs_dq1_ns, "{label}: learning mean diverged");
        assert_eq!(l.series, o.series, "{label}: learning series diverged");
        assert_eq!(l.init, "warm");
    }
}

#[test]
fn warm_start_actually_replaces_the_static_estimates() {
    // The warm run's very first Q-values are the snapshot's, not the
    // static estimates: its learning trace must differ from the cold
    // run's from the first window.
    let p = temp_snap("replaces");
    train_and_save(&p);
    let cold = run_placed(&train_cfg(11), &jobs(), Placement::Random);
    let mut warm_cfg = train_cfg(11);
    warm_cfg.routing.qtable_init = QTableInit::load(&p);
    let warm = run_placed(&warm_cfg, &jobs(), Placement::Random);
    let _ = std::fs::remove_file(&p);

    let (lc, lw) = (cold.learning.as_ref().unwrap(), warm.learning.as_ref().unwrap());
    assert_eq!(lc.init, "cold");
    assert_eq!(lw.init, "warm");
    assert_ne!(
        lc.series, lw.series,
        "warm start must change the Q-value trajectory (identical traces mean the snapshot \
         was not applied)"
    );
}
