//! End-to-end integration tests spanning every crate: full simulations on
//! the 72-node test Dragonfly (and a few on the paper system) exercising
//! apps → MPI → network → metrics → report.

use dragonfly_interference::prelude::*;

fn tiny_cfg(routing: RoutingAlgo) -> SimConfig {
    SimConfig::test_tiny(routing)
}

#[test]
fn every_app_completes_standalone_under_every_routing() {
    for routing in [
        RoutingAlgo::Minimal,
        RoutingAlgo::UgalG,
        RoutingAlgo::UgalN,
        RoutingAlgo::Par,
        RoutingAlgo::QAdaptive,
    ] {
        let cfg = tiny_cfg(routing);
        for kind in AppKind::ALL {
            let size = kind.preferred_size(36);
            let report = run(&cfg, &[JobSpec::sized(kind, size)]);
            assert!(report.completed, "{kind} under {routing}: {}", report.stop_reason);
            let a = &report.apps[0];
            assert!(a.exec_ms > 0.0, "{kind}: zero exec time");
            assert!(a.total_msg_mb > 0.0, "{kind}: no traffic");
            assert!((a.delivery_ratio - 1.0).abs() < 1e-9, "{kind} under {routing}: lost packets");
            assert_eq!(a.comm_ms.n as u32, size, "{kind}: missing rank records");
        }
    }
}

#[test]
fn interference_slows_the_target() {
    // FFT3D (latency-sensitive) + Halo3D (the bully): comm time must grow.
    // Scale 128 keeps enough traffic on the 72-node system for visible
    // contention (~1.19x measured; the full-system shape tests live in
    // tests/paper_shape.rs).
    let mut cfg = tiny_cfg(RoutingAlgo::UgalG);
    cfg.scale = 128.0;
    let alone = run(&cfg, &[JobSpec::sized(AppKind::FFT3D, 36)]);
    let pair =
        run(&cfg, &[JobSpec::sized(AppKind::FFT3D, 36), JobSpec::sized(AppKind::Halo3D, 36)]);
    assert!(alone.completed && pair.completed);
    let a = alone.apps[0].comm_ms.mean;
    let b = pair.apps[0].comm_ms.mean;
    assert!(b > a * 1.02, "expected visible interference: alone {a:.5} ms vs co-run {b:.5} ms");
}

#[test]
fn determinism_across_identical_runs() {
    let cfg = tiny_cfg(RoutingAlgo::QAdaptive);
    let jobs = [JobSpec::sized(AppKind::FFT3D, 36), JobSpec::sized(AppKind::UR, 36)];
    let a = run(&cfg, &jobs);
    let b = run(&cfg, &jobs);
    assert_eq!(a.events, b.events);
    assert_eq!(a.sim_ms, b.sim_ms);
    for (x, y) in a.apps.iter().zip(b.apps.iter()) {
        assert_eq!(x.comm_ms.mean, y.comm_ms.mean);
        assert_eq!(x.total_msg_mb, y.total_msg_mb);
        assert_eq!(x.latency_us.p99, y.latency_us.p99);
    }
}

#[test]
fn different_seeds_change_placement_and_results() {
    let mut cfg = tiny_cfg(RoutingAlgo::UgalN);
    let jobs = [JobSpec::sized(AppKind::LU, 36)];
    let a = run(&cfg, &jobs);
    cfg.seed = 1234;
    let b = run(&cfg, &jobs);
    // Identical would be astronomically unlikely with different placement.
    assert_ne!(a.events, b.events);
}

#[test]
fn byte_conservation_across_the_stack() {
    // Everything the apps inject is delivered; recorder totals agree.
    let cfg = tiny_cfg(RoutingAlgo::Par);
    let report = run(&cfg, &[JobSpec::sized(AppKind::Halo3D, 36), JobSpec::sized(AppKind::DL, 36)]);
    assert!(report.completed);
    for a in &report.apps {
        assert!((a.delivery_ratio - 1.0).abs() < 1e-9, "{}: loss", a.name);
    }
    assert!(report.network.total_delivered_gb > 0.0);
}

#[test]
fn paper_system_smoke_runs_quickly_at_high_scale() {
    // One real 1,056-node run (aggressively scaled) to cover paper-size
    // structures in CI.
    let cfg = SimConfig { scale: 4_096.0, ..SimConfig::with_routing(RoutingAlgo::QAdaptive) };
    let report =
        run(&cfg, &[JobSpec::sized(AppKind::FFT3D, 528), JobSpec::sized(AppKind::UR, 528)]);
    assert!(report.completed, "{}", report.stop_reason);
    assert_eq!(report.apps.len(), 2);
    assert!(report.network.system_latency_us.n > 0);
}

#[test]
fn report_fields_are_consistent() {
    let cfg = tiny_cfg(RoutingAlgo::UgalG);
    let report = run(&cfg, &[JobSpec::sized(AppKind::LQCD, 36)]);
    let a = &report.apps[0];
    // Injection rate = volume / exec time (within rounding).
    let expect = a.total_msg_mb / 1000.0 / (a.exec_ms / 1000.0);
    assert!(
        (a.inj_rate_gbs - expect).abs() / expect < 1e-6,
        "rate {} vs derived {expect}",
        a.inj_rate_gbs
    );
    // Latency quantiles are ordered.
    let l = &a.latency_us;
    assert!(l.q1 <= l.median && l.median <= l.q3 && l.q3 <= l.p95 && l.p95 <= l.p99);
    // Comm time can't exceed exec time.
    assert!(a.comm_ms.mean <= a.exec_ms);
}

#[test]
fn minimal_routing_stays_within_three_hops() {
    let cfg = tiny_cfg(RoutingAlgo::Minimal);
    let report = run(&cfg, &[JobSpec::sized(AppKind::UR, 36)]);
    let a = &report.apps[0];
    assert!(a.mean_hops > 0.0, "hops must be recorded");
    assert!(a.mean_hops <= 3.0, "MIN exceeded the Dragonfly diameter: {}", a.mean_hops);
    assert_eq!(a.detour_frac, 0.0);
    // Adaptive routing may exceed it (Valiant paths).
    let cfg = tiny_cfg(RoutingAlgo::UgalN);
    let ugal = run(&cfg, &[JobSpec::sized(AppKind::UR, 36)]);
    assert!(ugal.apps[0].mean_hops >= a.mean_hops * 0.9);
}

#[test]
fn mixed_workload_preset_completes_on_tiny_system() {
    use dragonfly_interference::core::experiments::mixed_scaled_sizes;
    for routing in [RoutingAlgo::Par, RoutingAlgo::QAdaptive] {
        let cfg = StudyConfig {
            routing,
            scale: 4_096.0,
            seed: 5,
            placement: Placement::Random,
            params: DragonflyParams::tiny_72(),
            ..Default::default()
        };
        // Scale Table II sizes down to the 72-node system (factor 1/16).
        let report = mixed_scaled_sizes(&cfg, 1.0 / 16.0);
        assert!(report.completed, "{routing}: {}", report.stop_reason);
        assert_eq!(report.apps.len(), 6);
    }
}

#[test]
fn contiguous_placement_reduces_interference() {
    // The §I claim behind the placement alternative: isolating jobs into
    // groups suppresses interference even under adaptive routing.
    let base = StudyConfig {
        routing: RoutingAlgo::UgalG,
        scale: 2_048.0,
        seed: 3,
        placement: Placement::Random,
        params: DragonflyParams::tiny_72(),
        ..Default::default()
    };
    let random = pairwise(AppKind::CosmoFlow, Some(AppKind::Halo3D), &base);
    let contiguous = pairwise(
        AppKind::CosmoFlow,
        Some(AppKind::Halo3D),
        &StudyConfig { placement: Placement::Contiguous, ..base },
    );
    assert!(random.completed && contiguous.completed);
    let r = random.apps[0].comm_ms.mean;
    let c = contiguous.apps[0].comm_ms.mean;
    assert!(c < r, "contiguous ({c:.5} ms) should isolate better than random ({r:.5} ms)");
}
