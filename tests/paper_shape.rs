//! Shape tests: the paper's qualitative findings must hold end-to-end.
//! These are the reproduction's acceptance tests. They run on a 342-node
//! Dragonfly (19 groups × 6 routers × 3 nodes — the balanced h=3 system)
//! at scale 1/64, which keeps per-link contention representative of the
//! full 1,056-node study while staying CI-sized; the full-size numbers are
//! produced by the `dfsim-bench` figure binaries.

use dragonfly_interference::prelude::*;

/// Shared campaign config.
fn study(routing: RoutingAlgo) -> StudyConfig {
    StudyConfig {
        routing,
        scale: 64.0,
        seed: 42,
        placement: Placement::Random,
        params: DragonflyParams::balanced(3),
        ..Default::default()
    }
}

#[test]
fn high_injection_background_interferes_more_than_low() {
    // Paper §V-A: UR barely touches FFT3D; Halo3D delays it substantially.
    let cfg = study(RoutingAlgo::UgalG);
    let alone = pairwise(AppKind::FFT3D, None, &cfg);
    let with_ur = pairwise(AppKind::FFT3D, Some(AppKind::UR), &cfg);
    let with_halo = pairwise(AppKind::FFT3D, Some(AppKind::Halo3D), &cfg);
    let base = alone.apps[0].comm_ms.mean;
    let ur = with_ur.apps[0].comm_ms.mean / base;
    let halo = with_halo.apps[0].comm_ms.mean / base;
    assert!(halo > ur, "Halo3D (x{halo:.3}) must interfere more than UR (x{ur:.3})");
    assert!(halo > 1.05, "Halo3D should visibly slow FFT3D, got x{halo:.3}");
}

#[test]
fn large_peak_ingress_targets_resist_interference() {
    // Paper §V-C: Stencil5D (largest peak ingress) is barely affected by
    // LQCD, while LQCD suffers from Stencil5D.
    let cfg = study(RoutingAlgo::Par);
    let lqcd_alone = pairwise(AppKind::LQCD, None, &cfg);
    let st_alone = pairwise(AppKind::Stencil5D, None, &cfg);
    let both = pairwise(AppKind::LQCD, Some(AppKind::Stencil5D), &cfg);
    let lqcd_delta = both.apps[0].comm_ms.mean / lqcd_alone.apps[0].comm_ms.mean;
    let st_delta = both.apps[1].comm_ms.mean / st_alone.apps[0].comm_ms.mean;
    assert!(
        lqcd_delta > st_delta,
        "LQCD (x{lqcd_delta:.3}) should suffer more than Stencil5D (x{st_delta:.3})"
    );
}

#[test]
fn qadaptive_beats_adaptive_under_interference() {
    // Paper headline: Q-adaptive reduces interfered communication time vs
    // PAR (up to 42.63% in the paper).
    let par = pairwise(AppKind::FFT3D, Some(AppKind::Halo3D), &study(RoutingAlgo::Par));
    let qa = pairwise(AppKind::FFT3D, Some(AppKind::Halo3D), &study(RoutingAlgo::QAdaptive));
    let p = par.apps[0].comm_ms.mean;
    let q = qa.apps[0].comm_ms.mean;
    assert!(q < p, "Q-adaptive ({q:.4} ms) must beat PAR ({p:.4} ms) for interfered FFT3D");
}

#[test]
fn qadaptive_beats_adaptive_standalone_average() {
    // Paper §V intro: standalone, Q-adaptive achieves equal or better
    // performance (LU/LQCD/Stencil5D/LULESH average 23.46% under PAR).
    let mut par_total = 0.0;
    let mut qa_total = 0.0;
    for kind in [AppKind::LU, AppKind::LQCD, AppKind::Stencil5D] {
        par_total += standalone(kind, &study(RoutingAlgo::Par)).apps[0].comm_ms.mean;
        qa_total += standalone(kind, &study(RoutingAlgo::QAdaptive)).apps[0].comm_ms.mean;
    }
    assert!(
        qa_total < par_total,
        "Q-adaptive standalone total {qa_total:.4} ms should beat PAR {par_total:.4} ms"
    );
}

#[test]
fn computation_masks_interference_for_cosmoflow() {
    // Paper §V-D: CosmoFlow's long compute hides most of Halo3D's
    // interference — its execution-time delta stays below FFT3D's.
    let cfg = study(RoutingAlgo::Par);
    let cosmo_alone = pairwise(AppKind::CosmoFlow, None, &cfg);
    let cosmo_pair = pairwise(AppKind::CosmoFlow, Some(AppKind::Halo3D), &cfg);
    let fft_alone = pairwise(AppKind::FFT3D, None, &cfg);
    let fft_pair = pairwise(AppKind::FFT3D, Some(AppKind::Halo3D), &cfg);
    let cosmo_exec_delta = cosmo_pair.apps[0].exec_ms / cosmo_alone.apps[0].exec_ms;
    let fft_exec_delta = fft_pair.apps[0].exec_ms / fft_alone.apps[0].exec_ms;
    assert!(
        cosmo_exec_delta < fft_exec_delta,
        "CosmoFlow exec delta x{cosmo_exec_delta:.3} should stay below FFT3D's x{fft_exec_delta:.3}"
    );
}

#[test]
fn adaptive_routing_sprays_while_min_does_not() {
    // Paper §VI-B: adaptive routing non-minimally forwards a large share
    // of packets under load; MIN by definition never does.
    let cfg = study(RoutingAlgo::UgalG);
    let loaded = pairwise(AppKind::UR, Some(AppKind::Halo3D), &cfg);
    assert!(
        loaded.apps[0].detour_frac > 0.10,
        "UGALg should detour a visible share under load, got {:.3}",
        loaded.apps[0].detour_frac
    );
    let min_cfg = study(RoutingAlgo::Minimal);
    let min_run = pairwise(AppKind::UR, Some(AppKind::Halo3D), &min_cfg);
    assert_eq!(min_run.apps[0].detour_frac, 0.0);
}

#[test]
fn qadaptive_wastes_less_global_bandwidth() {
    // Paper §VI-B: unnecessary non-minimal forwarding "consumes more
    // network resources to deliver the same amount of traffic". Both runs
    // deliver identical payloads, so a lower mean global congestion index
    // means less wasted global bandwidth.
    let par = pairwise(AppKind::FFT3D, Some(AppKind::Halo3D), &study(RoutingAlgo::Par));
    let qa = pairwise(AppKind::FFT3D, Some(AppKind::Halo3D), &study(RoutingAlgo::QAdaptive));
    assert!(
        qa.network.mean_global_congestion < par.network.mean_global_congestion,
        "Q-adp mean global congestion {:.4} should undercut PAR's {:.4}",
        qa.network.mean_global_congestion,
        par.network.mean_global_congestion
    );
}
