//! The result-cache contract: a cached report replays **bit-identically**
//! to the live run that produced it (both queue backends, serial and
//! partitioned), the key is stable under output knobs (trace, snapshot
//! path, threads) and distinct under anything that changes the simulated
//! world (seed, scale, routing, timing), and a damaged store degrades to
//! a miss — never to a failure, never to wrong data.

use std::path::{Path, PathBuf};

use dragonfly_interference::prelude::*;

use dfsim_core::cache::encode_report;
use dfsim_topology::DragonflyParams;

/// A unique cache dir per test (tests run concurrently in one process).
fn temp_cache(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dfsim_cache_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn tiny_spec(routing: RoutingAlgo, cache_dir: &Path) -> ExperimentSpec {
    ExperimentSpec {
        params: DragonflyParams::tiny_72(),
        routings: vec![routing],
        scale: 2_048.0,
        seed: 7,
        cache: CacheMode::Dir(cache_dir.to_path_buf()),
        ..Default::default()
    }
}

fn run(spec: &ExperimentSpec) -> RunHandle {
    Simulation::run_one(spec, Workload::pairwise(AppKind::UR, Some(AppKind::CosmoFlow)))
        .expect("run succeeds")
}

/// The headline guarantee, on every backend × partition combination the
/// engine supports: the second run is served from the cache and its report
/// encodes to the *same bytes* as the live one.
#[test]
fn cached_report_is_bit_identical_across_backends_and_partitions() {
    for (queue, tag) in [("heap", "bit_heap"), ("calendar", "bit_cal")] {
        for threads in [0usize, 2] {
            let dir = temp_cache(&format!("{tag}_{threads}"));
            let mut spec = tiny_spec(RoutingAlgo::UgalG, &dir);
            spec.queue = queue.parse().expect("queue kind parses");
            spec.threads = threads;

            let live = run(&spec);
            assert!(!live.cached, "{queue}/t{threads}: first run must be live");
            let replay = run(&spec);
            assert!(replay.cached, "{queue}/t{threads}: second run must hit the cache");
            assert_eq!(
                encode_report(&live.report),
                encode_report(&replay.report),
                "{queue}/t{threads}: cached report diverged from the live one"
            );
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

/// Output knobs must not fracture the key: a run that also writes a trace
/// or uses a different thread count simulates the same world, so it must
/// hit the entry a bare run stored.
#[test]
fn key_is_stable_under_output_knobs() {
    let dir = temp_cache("stable");
    let spec = tiny_spec(RoutingAlgo::UgalG, &dir);
    assert!(!run(&spec).cached);

    let mut threads = spec.clone();
    threads.threads = 3;
    assert!(run(&threads).cached, "thread count must not change the key");

    // A traced run bypasses the cache read (the trace file must be
    // written), but the *key* it stores under is the bare run's.
    let trace_path = dir.join("probe.trace");
    let mut traced = spec.clone();
    traced.trace = Some(trace_path.clone());
    let h = run(&traced);
    assert!(!h.cached, "a traced run must execute live (the trace file is wanted)");
    let _ = std::fs::remove_file(&trace_path);

    let _ = std::fs::remove_dir_all(&dir);
}

/// Anything that changes the simulated world must miss: seed, scale,
/// routing, and link timing each address a different entry.
#[test]
fn key_is_distinct_under_simulation_inputs() {
    let dir = temp_cache("distinct");
    let base = tiny_spec(RoutingAlgo::UgalG, &dir);
    assert!(!run(&base).cached);

    let mut seed = base.clone();
    seed.seed = 8;
    assert!(!run(&seed).cached, "seed must be part of the key");

    let mut scale = base.clone();
    scale.scale = 4_096.0;
    assert!(!run(&scale).cached, "scale must be part of the key");

    let routing = tiny_spec(RoutingAlgo::Minimal, &dir);
    assert!(!run(&routing).cached, "routing must be part of the key");

    let mut timing = base.clone();
    timing.timing.local_latency_ps *= 2;
    assert!(!run(&timing).cached, "link timing must be part of the key");

    let _ = std::fs::remove_dir_all(&dir);
}

/// A truncated or garbage entry is a *miss with a warning*: the run
/// simulates live, overwrites the bad entry, and the next lookup hits.
#[test]
fn corrupt_entries_degrade_to_misses() {
    let dir = temp_cache("corrupt");
    let spec = tiny_spec(RoutingAlgo::UgalG, &dir);
    assert!(!run(&spec).cached);

    let entry = only_entry(&dir);

    // Truncate to half: the decode fails mid-blob.
    let bytes = std::fs::read(&entry).unwrap();
    std::fs::write(&entry, &bytes[..bytes.len() / 2]).unwrap();
    assert!(!run(&spec).cached, "truncated entry must miss, not fail");
    assert!(run(&spec).cached, "the live run must have repaired the entry");

    // Pure garbage: not even the header parses.
    std::fs::write(&entry, b"not a cache entry at all").unwrap();
    assert!(!run(&spec).cached, "garbage entry must miss, not fail");

    let _ = std::fs::remove_dir_all(&dir);
}

/// A future format version and a key/content mismatch (an entry renamed
/// onto the wrong address) are both rejected as misses by the strict
/// loader with named errors — and degrade to misses on the run path.
#[test]
fn version_bump_and_hash_mismatch_invalidate() {
    let dir = temp_cache("invalid");
    let spec = tiny_spec(RoutingAlgo::UgalG, &dir);
    assert!(!run(&spec).cached);
    let entry = only_entry(&dir);
    let cache = ResultCache::open(&spec.cache).unwrap().expect("cache is on");
    // The key is computed on the spec the session actually ran — with the
    // workload applied, exactly as `run` does.
    let workload = Workload::pairwise(AppKind::UR, Some(AppKind::CosmoFlow));
    let key = cache_key(&spec.clone().with_workload(workload.clone())).unwrap();

    // Strict load sees the entry as-is.
    assert!(cache.load(&key).unwrap().is_some());

    // Bump the header version in place.
    let good = std::fs::read(&entry).unwrap();
    let mut bumped = good.clone();
    let pos = good.windows(2).position(|w| w == b"v1").expect("header has a version");
    bumped[pos + 1] = b'2';
    std::fs::write(&entry, &bumped).unwrap();
    match cache.load(&key) {
        Err(CacheError::Version { .. }) => {}
        other => panic!("expected a version error, got {other:?}"),
    }
    assert!(!run(&spec).cached, "future version must miss on the run path");

    // Rename a valid entry onto a different key's address: the recorded
    // key no longer matches the filename's.
    let mut other_seed = spec.clone();
    other_seed.seed = 8;
    let other_key = cache_key(&other_seed.clone().with_workload(workload)).unwrap();
    std::fs::write(cache.entry_path(&other_key), &good).unwrap();
    match cache.load(&other_key) {
        Err(CacheError::HashMismatch { .. }) => {}
        other => panic!("expected a hash-mismatch error, got {other:?}"),
    }
    assert!(!run(&other_seed).cached, "mismatched entry must miss on the run path");

    let _ = std::fs::remove_dir_all(&dir);
}

/// `cache off` (the default) never touches the disk.
#[test]
fn cache_off_stores_nothing() {
    let dir = temp_cache("off");
    let mut spec = tiny_spec(RoutingAlgo::UgalG, &dir);
    spec.cache = CacheMode::Off;
    assert!(!run(&spec).cached);
    assert!(!dir.exists(), "an off cache must not create its directory");
}

fn only_entry(dir: &Path) -> PathBuf {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)
        .expect("cache dir exists")
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "report"))
        .collect();
    assert_eq!(entries.len(), 1, "expected exactly one cache entry");
    entries.pop().unwrap()
}

/// Regression: the report decoder used to narrow the on-wire u32 app-id
/// word with `as u16`, so a corrupt blob decoded into a *wrong report*
/// (app id silently truncated) instead of an error. Both corruption and
/// truncation must now surface as named `CacheError`s.
#[test]
fn corrupt_report_blob_is_a_named_error_not_a_wrong_report() {
    use dfsim_core::cache::{decode_report, CacheError};

    let dir = temp_cache("corrupt_blob");
    let live = run(&tiny_spec(RoutingAlgo::UgalG, &dir));
    let blob = encode_report(&live.report);

    // Byte offset of the first app's id word, from the fields before it.
    let r = &live.report;
    let off = 4                         // version word
        + 4 + r.routing.len()           // routing string
        + 4 + r.queue.len()             // queue string
        + 8 + 8 + 1                     // seed, scale, completed
        + 4 + r.stop_reason.len()       // stop_reason string
        + 8 + 8 + 8                     // sim_ms, events, wall_s
        + 4                             // app count
        + 4 + r.apps[0].name.len(); // first app's name string
    let mut bad = blob.clone();
    bad[off..off + 4].copy_from_slice(&0x0001_0000u32.to_le_bytes());
    let e = decode_report(&bad).expect_err("an app id beyond u16 must not decode");
    assert!(matches!(e, CacheError::Malformed { .. }), "{e}");
    assert!(e.to_string().contains("overflows u16"), "{e}");

    // Sanity check on the offset arithmetic: restoring the real id word
    // makes the same bytes decode again.
    bad[off..off + 4].copy_from_slice(&u32::from(r.apps[0].app).to_le_bytes());
    assert!(decode_report(&bad).is_ok(), "offset arithmetic drifted from the codec");

    let e = decode_report(&blob[..blob.len() - 3]).expect_err("a short blob must not decode");
    assert!(e.to_string().contains("truncated"), "{e}");
    let _ = std::fs::remove_dir_all(&dir);
}
