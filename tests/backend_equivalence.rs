//! The event-queue ablation's correctness contract: every backend — binary
//! heap, fixed calendar, *and* the self-tuning calendar whose geometry
//! rebuilds mid-run — realizes the same deterministic `(time, seq)` total
//! order, so a run's report must be *identical* across all of them. The
//! backend (and its tuning) is a pure performance knob. The only
//! intentionally backend-dependent field is `RunReport::engine`, which
//! describes the engine itself and is excluded here.

// The deprecated free-function entry points are exercised on purpose:
// this suite pins that spec-launched sessions and the old wrappers agree.
#![allow(deprecated)]

use dragonfly_interference::prelude::*;

fn run_with(backend: QueueBackend, routing: RoutingAlgo, seed: u64) -> RunReport {
    let mut cfg = SimConfig::test_tiny(routing);
    cfg.seed = seed;
    let cfg = cfg.with_queue(backend);
    run_placed(
        &cfg,
        &[JobSpec::sized(AppKind::CosmoFlow, 36), JobSpec::sized(AppKind::UR, 36)],
        Placement::Random,
    )
}

fn assert_equivalent(heap: &RunReport, cal: &RunReport) {
    assert!(heap.completed, "heap run incomplete: {}", heap.stop_reason);
    assert!(cal.completed, "calendar run incomplete: {}", cal.stop_reason);
    assert_eq!(heap.sim_ms, cal.sim_ms, "simulated end time diverged");
    assert_eq!(heap.events, cal.events, "event count diverged");
    assert_eq!(heap.apps.len(), cal.apps.len());
    for (h, c) in heap.apps.iter().zip(&cal.apps) {
        assert_eq!(h.name, c.name);
        assert_eq!(h.comm_ms.mean, c.comm_ms.mean, "{}: comm time diverged", h.name);
        assert_eq!(h.comm_ms.std, c.comm_ms.std, "{}: comm spread diverged", h.name);
        assert_eq!(h.exec_ms, c.exec_ms, "{}: exec time diverged", h.name);
        assert_eq!(h.peak_ingress_bytes, c.peak_ingress_bytes, "{}: ingress diverged", h.name);
        assert_eq!(h.mean_hops, c.mean_hops, "{}: hop count diverged", h.name);
        assert_eq!(h.latency_us.p99, c.latency_us.p99, "{}: latency diverged", h.name);
    }
    assert_eq!(
        heap.network.total_delivered_gb, cal.network.total_delivered_gb,
        "delivered bytes diverged"
    );
    assert_eq!(
        heap.network.system_latency_us.mean, cal.network.system_latency_us.mean,
        "system latency diverged"
    );
}

/// The paper's tiny pairwise experiment produces bit-identical reports on
/// every backend and tuning (only the backend label/engine block differ).
#[test]
fn pairwise_tiny72_reports_identical_across_backends() {
    let heap = run_with(QueueBackend::BinaryHeap, RoutingAlgo::UgalG, 7);
    assert_eq!(heap.queue, "heap");
    assert_eq!(heap.engine.backend, "heap");
    for backend in [
        QueueBackend::calendar_auto(),
        QueueBackend::Calendar(CalendarTuning::FIXED_NETWORK),
        // Partial tunings: each knob pinned alone.
        QueueBackend::Calendar(CalendarTuning { width: Some(40_960), buckets: None }),
        QueueBackend::Calendar(CalendarTuning { width: None, buckets: Some(512) }),
    ] {
        let cal = run_with(backend, RoutingAlgo::UgalG, 7);
        assert_eq!(cal.queue, "calendar");
        assert_eq!(cal.engine.backend, backend.describe());
        assert_equivalent(&heap, &cal);
    }
}

/// Equivalence is routing- and seed-independent (adaptive and RL routing
/// consult congestion state whose evolution depends on event order, so any
/// ordering divergence would surface here) — including under the
/// auto-tuned calendar, whose bucket array rebuilds mid-run.
#[test]
fn equivalence_holds_across_routings_and_seeds() {
    for (routing, seed) in
        [(RoutingAlgo::Minimal, 1), (RoutingAlgo::Par, 11), (RoutingAlgo::QAdaptive, 23)]
    {
        let heap = run_with(QueueBackend::BinaryHeap, routing, seed);
        for backend in
            [QueueBackend::calendar_auto(), QueueBackend::Calendar(CalendarTuning::FIXED_NETWORK)]
        {
            let cal = run_with(backend, routing, seed);
            assert_equivalent(&heap, &cal);
        }
    }
}

/// The engine block reports real work: identical event traffic across
/// backends, a plausible peak, and (auto calendar only) live self-tuning.
#[test]
fn engine_stats_are_populated_and_consistent() {
    let heap = run_with(QueueBackend::BinaryHeap, RoutingAlgo::UgalG, 7);
    let auto = run_with(QueueBackend::calendar_auto(), RoutingAlgo::UgalG, 7);
    assert_eq!(
        heap.engine.events_scheduled, auto.engine.events_scheduled,
        "scheduled-event traffic must be backend-invariant"
    );
    assert_eq!(
        heap.engine.peak_pending, auto.engine.peak_pending,
        "peak pending is a property of the workload, not the backend"
    );
    assert!(heap.engine.peak_pending > 0);
    assert!(heap.engine.events_scheduled >= heap.events);
    assert_eq!(heap.engine.final_buckets, 0, "heap reports no calendar geometry");
    assert!(auto.engine.final_buckets > 0);
    assert!(auto.engine.final_width_ps > 0);
    assert!(auto.engine.resizes > 0, "the auto tuner should have resized at least once");
    let line = auto.engine_summary();
    assert!(line.contains("calendar:auto") && line.contains("resizes"), "{line}");
}

/// Launching through `ExperimentSpec` → `Simulation::run()` produces the
/// bit-identical report the deprecated wrapper produced, on every backend
/// and tuning — the session API is a front-end over the same engine, not
/// a reimplementation.
#[test]
fn spec_sessions_match_wrapper_runs_on_every_backend() {
    for backend in QueueBackend::ALL {
        let old = run_with(backend, RoutingAlgo::UgalG, 7);
        let spec = ExperimentSpec {
            params: DragonflyParams::tiny_72(),
            routings: vec![RoutingAlgo::UgalG],
            scale: 2_048.0,
            seed: 7,
            queue: backend,
            ..Default::default()
        }
        .with_workload(Workload::jobs(vec![
            JobSpec::sized(AppKind::CosmoFlow, 36),
            JobSpec::sized(AppKind::UR, 36),
        ]));
        let new = Simulation::from_spec(spec).unwrap().run().unwrap().report;
        assert_eq!(new.events, old.events, "{backend}: event count diverged");
        assert_equivalent(&old, &new);
    }
}

/// Warm-started Q-adaptive runs (Q-tables loaded from a snapshot instead
/// of the static estimates) realize the identical deterministic event
/// order on every backend too: a run that loads its own just-saved
/// snapshot is bit-identical across heap and calendar.
#[test]
fn warm_started_runs_identical_across_backends() {
    let snap = std::env::temp_dir().join(format!("dfsim_beq_warm_{}.snap", std::process::id()));
    // Train and save.
    let mut train = SimConfig::test_tiny(RoutingAlgo::QAdaptive);
    train.seed = 23;
    train.qtable_save = Some(snap.clone());
    let trained = run_placed(
        &train,
        &[JobSpec::sized(AppKind::CosmoFlow, 36), JobSpec::sized(AppKind::UR, 36)],
        Placement::Random,
    );
    assert!(trained.completed);

    let warm_with = |backend: QueueBackend| {
        let mut cfg = SimConfig::test_tiny(RoutingAlgo::QAdaptive);
        cfg.seed = 29;
        cfg.routing.qtable_init = QTableInit::load(&snap);
        run_placed(
            &cfg.with_queue(backend),
            &[JobSpec::sized(AppKind::CosmoFlow, 36), JobSpec::sized(AppKind::UR, 36)],
            Placement::Random,
        )
    };
    let heap = warm_with(QueueBackend::BinaryHeap);
    for backend in
        [QueueBackend::calendar_auto(), QueueBackend::Calendar(CalendarTuning::FIXED_NETWORK)]
    {
        let cal = warm_with(backend);
        assert_equivalent(&heap, &cal);
        // The learning telemetry is part of the deterministic report.
        let (h, c) = (heap.learning.as_ref().unwrap(), cal.learning.as_ref().unwrap());
        assert_eq!(h.init, "warm");
        assert_eq!(h.updates, c.updates, "learning updates diverged");
        assert_eq!(h.series, c.series, "learning series diverged");
    }
    let _ = std::fs::remove_file(&snap);
}

/// The `StudyConfig` path (what the fig/table binaries use) threads the
/// backend through `sim()` identically.
#[test]
fn study_config_threads_backend_through_sim() {
    for backend in QueueBackend::ALL {
        let cfg = StudyConfig {
            scale: 4_096.0,
            params: DragonflyParams::tiny_72(),
            queue: backend,
            ..Default::default()
        };
        assert_eq!(cfg.sim().queue, backend);
        let report = pairwise(AppKind::LU, Some(AppKind::UR), &cfg);
        assert!(report.completed, "{backend}: {}", report.stop_reason);
        assert_eq!(report.queue, backend.label());
    }
}
