//! # dragonfly-interference
//!
//! A from-scratch Rust reproduction of *"Study of Workload Interference
//! with Intelligent Routing on Dragonfly"* (Kang, Wang, Lan — SC 2022):
//! a flit-timed discrete-event simulator of a 1,056-node Dragonfly with
//! adaptive (UGALg/UGALn/PAR) and reinforcement-learning (Q-adaptive)
//! routing, a simulated MPI layer, the paper's nine workloads, and the
//! complete interference-analysis harness regenerating every table and
//! figure of the paper's evaluation.
//!
//! The facade re-exports each subsystem crate:
//!
//! * [`des`] — discrete-event kernel (time, event queues, RNG),
//! * [`topology`] — the Dragonfly structure,
//! * [`metrics`] — the instrumentation "IO module",
//! * [`network`] — routers, VCs, credit flow control, routing algorithms,
//! * [`mpi`] — rank programs, matching, collectives, rendezvous,
//! * [`apps`] — UR, LU, FFT3D, Halo3D, LQCD, Stencil5D, CosmoFlow, DL,
//!   LULESH,
//! * [`core`] — configs, placement, the world loop, experiment presets.
//!
//! Quick start (see `examples/quickstart.rs`):
//!
//! ```no_run
//! use dragonfly_interference::prelude::*;
//!
//! let cfg = StudyConfig { routing: RoutingAlgo::QAdaptive, ..Default::default() };
//! let report = pairwise(AppKind::FFT3D, Some(AppKind::Halo3D), &cfg);
//! println!(
//!     "FFT3D comm time under Halo3D interference: {:.3} ms (±{:.3})",
//!     report.apps[0].comm_ms.mean,
//!     report.apps[0].comm_ms.std
//! );
//! ```

#![deny(unsafe_code)]

pub use dfsim_apps as apps;
pub use dfsim_core as core;
pub use dfsim_des as des;
pub use dfsim_metrics as metrics;
pub use dfsim_mpi as mpi;
pub use dfsim_network as network;
pub use dfsim_topology as topology;

/// The most commonly used items in one import.
pub mod prelude {
    pub use dfsim_apps::{AppInstance, AppKind, ArrivalSpec};
    pub use dfsim_core::experiments::{mixed, pairwise, standalone, StudyConfig};
    pub use dfsim_core::placement::Placement;
    #[allow(deprecated)]
    pub use dfsim_core::runner::run_placed;
    pub use dfsim_core::runner::{run, JobSpec};
    #[allow(deprecated)]
    pub use dfsim_core::scenario::run_scenario;
    pub use dfsim_core::scenario::{Scenario, SchedPolicy};
    pub use dfsim_core::spec::{die, lookup, lookup_list, Registered};
    pub use dfsim_core::tables::TextTable;
    pub use dfsim_core::{
        cache_key, replay_trace, summarize_trace, AppReport, CacheError, CacheKey, CacheMode,
        EngineReport, ExperimentSpec, JobReport, LearningReport, NetworkReport, ResultCache,
        RunHandle, RunReport, SimConfig, Simulation, SpecError, TraceMeta, Workload,
    };
    pub use dfsim_des::{
        CalendarTuning, EngineStats, QueueBackend, QueueKind, SimRng, Time, MICROSECOND,
        MILLISECOND, NANOSECOND,
    };
    pub use dfsim_metrics::{
        AppId, EventSink, LatencySummary, Recorder, RecorderConfig, Stats, TraceError, TraceEvent,
        TraceWriter, EVENT_KIND_NAMES,
    };
    pub use dfsim_network::{
        NetworkSim, QTableInit, QTableSnapshot, QaParams, RoutingAlgo, RoutingConfig, SnapshotError,
    };
    pub use dfsim_topology::{DragonflyParams, LinkTiming, NodeId, Topology};
}
