//! `dfsim` — command-line driver for the Dragonfly interference simulator.
//!
//! ```text
//! dfsim standalone <APP> [options]
//! dfsim pairwise <TARGET> <BACKGROUND|none> [options]
//! dfsim mixed [options]
//! dfsim apps                      # list workloads with Table I data
//! dfsim topo [options]            # print topology facts
//!
//! options:
//!   --routing <MIN|UGALg|UGALn|PAR|Q-adp>   (default UGALg)
//!   --scale <f64>                           (default 64)
//!   --seed <u64>                            (default 42)
//!   --groups <g> --routers <a> --nodes <p> --globals <h>
//!   --contiguous                            (placement; default random)
//!   --queue <heap|calendar>                 (event-queue backend; default heap)
//!   --csv                                   (machine-readable output)
//! ```

use dragonfly_interference::prelude::*;

/// Parsed command-line options.
struct Opts {
    routing: RoutingAlgo,
    scale: f64,
    seed: u64,
    params: DragonflyParams,
    placement: Placement,
    queue: QueueBackend,
    csv: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: dfsim <standalone APP | pairwise TARGET BG | mixed | apps | topo> \
         [--routing R] [--scale S] [--seed N] [--groups g --routers a --nodes p --globals h] \
         [--contiguous] [--queue heap|calendar] [--csv]"
    );
    std::process::exit(2)
}

fn parse_routing(s: &str) -> RoutingAlgo {
    [
        RoutingAlgo::Minimal,
        RoutingAlgo::UgalG,
        RoutingAlgo::UgalN,
        RoutingAlgo::Par,
        RoutingAlgo::QAdaptive,
    ]
    .into_iter()
    .find(|r| r.label().eq_ignore_ascii_case(s))
    .unwrap_or_else(|| {
        eprintln!("unknown routing '{s}' (MIN, UGALg, UGALn, PAR, Q-adp)");
        std::process::exit(2)
    })
}

fn parse_opts(args: &[String]) -> Opts {
    let mut o = Opts {
        routing: RoutingAlgo::UgalG,
        scale: 64.0,
        seed: 42,
        params: DragonflyParams::paper_1056(),
        placement: Placement::Random,
        queue: QueueBackend::default(),
        csv: false,
    };
    let mut i = 0;
    let value = |i: &mut usize| -> String {
        *i += 1;
        args.get(*i).cloned().unwrap_or_else(|| usage())
    };
    while i < args.len() {
        match args[i].as_str() {
            "--routing" => o.routing = parse_routing(&value(&mut i)),
            "--scale" => o.scale = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--seed" => o.seed = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--groups" => o.params.groups = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--routers" => {
                o.params.routers_per_group = value(&mut i).parse().unwrap_or_else(|_| usage())
            }
            "--nodes" => {
                o.params.nodes_per_router = value(&mut i).parse().unwrap_or_else(|_| usage())
            }
            "--globals" => {
                o.params.globals_per_router = value(&mut i).parse().unwrap_or_else(|_| usage())
            }
            "--contiguous" => o.placement = Placement::Contiguous,
            "--queue" => {
                o.queue = value(&mut i).parse().unwrap_or_else(|e| {
                    eprintln!("{e}");
                    std::process::exit(2)
                })
            }
            "--csv" => o.csv = true,
            other => {
                eprintln!("unknown option '{other}'");
                usage()
            }
        }
        i += 1;
    }
    if let Err(e) = o.params.validate() {
        eprintln!("invalid topology: {e}");
        std::process::exit(2);
    }
    o
}

fn study(o: &Opts) -> StudyConfig {
    StudyConfig {
        routing: o.routing,
        scale: o.scale,
        seed: o.seed,
        placement: o.placement,
        params: o.params,
        queue: o.queue,
    }
}

fn print_report(report: &RunReport, csv: bool) {
    let mut t = TextTable::new(vec![
        "App",
        "ranks",
        "comm (ms)",
        "±std",
        "exec (ms)",
        "inj GB/s",
        "detour %",
        "mean hops",
        "lat p50 us",
        "lat p99 us",
    ]);
    for a in &report.apps {
        t.row(vec![
            a.name.clone(),
            a.size.to_string(),
            format!("{:.4}", a.comm_ms.mean),
            format!("{:.4}", a.comm_ms.std),
            format!("{:.4}", a.exec_ms),
            format!("{:.1}", a.inj_rate_gbs),
            format!("{:.1}", a.detour_frac * 100.0),
            format!("{:.2}", a.mean_hops),
            format!("{:.2}", a.latency_us.median),
            format!("{:.2}", a.latency_us.p99),
        ]);
    }
    if csv {
        print!("{}", t.to_csv());
        return;
    }
    println!("{}", t.render());
    let n = &report.network;
    println!(
        "routing {} | sim {:.4} ms | {} events | wall {:.1}s | {}",
        report.routing,
        report.sim_ms,
        report.events,
        report.wall_s,
        if report.completed { "completed" } else { &report.stop_reason }
    );
    println!(
        "network: agg throughput {:.3} GB/ms | sys p99 {:.2} us | local stall {:.4} ms/group | \
         cong std {:.4}",
        n.mean_system_throughput,
        n.system_latency_us.p99,
        n.avg_local_stall_ms,
        n.std_global_congestion
    );
}

fn app_or_die(name: &str) -> AppKind {
    AppKind::from_name(name).unwrap_or_else(|| {
        eprintln!("unknown app '{name}' (try: dfsim apps)");
        std::process::exit(2)
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else { usage() };
    match cmd.as_str() {
        "apps" => {
            let mut t = TextTable::new(vec![
                "App",
                "Pattern",
                "Total Msg (MB)",
                "Exec (ms)",
                "Inj rate (GB/s)",
                "Peak ingress",
            ]);
            for k in AppKind::ALL {
                let p = k.paper_row();
                t.row(vec![
                    k.name().to_string(),
                    p.pattern.to_string(),
                    format!("{:.2}", p.total_msg_mb),
                    format!("{:.2}", p.exec_ms),
                    format!("{:.2}", p.inj_rate_gbs),
                    p.peak_ingress.to_string(),
                ]);
            }
            println!("{}", t.render());
            println!("(paper-scale Table I characteristics on 528 nodes)");
        }
        "topo" => {
            let o = parse_opts(&args[1..]);
            let topo = Topology::new(o.params).expect("validated");
            println!(
                "Dragonfly g={} a={} p={} h={}: {} nodes, {} routers, radix {}",
                o.params.groups,
                o.params.routers_per_group,
                o.params.nodes_per_router,
                o.params.globals_per_router,
                topo.num_nodes(),
                topo.num_routers(),
                topo.radix(),
            );
            println!(
                "links: {} global (1 per group pair), {} local per group, diameter 3 router hops",
                o.params.groups * (o.params.groups - 1) / 2,
                o.params.routers_per_group * (o.params.routers_per_group - 1) / 2,
            );
        }
        "standalone" => {
            let app = app_or_die(args.get(1).map(String::as_str).unwrap_or_else(|| usage()));
            let o = parse_opts(&args[2..]);
            let report = standalone(app, &study(&o));
            print_report(&report, o.csv);
        }
        "pairwise" => {
            let target = app_or_die(args.get(1).map(String::as_str).unwrap_or_else(|| usage()));
            let bg_arg = args.get(2).map(String::as_str).unwrap_or_else(|| usage());
            let bg =
                if bg_arg.eq_ignore_ascii_case("none") { None } else { Some(app_or_die(bg_arg)) };
            let o = parse_opts(&args[3..]);
            let report = pairwise(target, bg, &study(&o));
            print_report(&report, o.csv);
        }
        "mixed" => {
            let o = parse_opts(&args[1..]);
            let report = mixed(&study(&o));
            print_report(&report, o.csv);
        }
        _ => usage(),
    }
}
