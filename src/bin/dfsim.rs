//! `dfsim` — command-line driver for the Dragonfly interference simulator.
//!
//! ```text
//! dfsim standalone <APP> [options]
//! dfsim pairwise <TARGET> <BACKGROUND|none> [options]
//! dfsim mixed [options]
//! dfsim scenario <ARRIVALS|poisson> [options]   # churn: timed job stream
//! dfsim apps                      # list workloads with Table I data
//! dfsim topo [options]            # print topology facts
//!
//! `ARRIVALS` is a comma-separated list `APP:SIZE@TIME` (e.g.
//! `UR:36@0,LU:16@0.5ms`); `poisson` synthesizes arrivals from the seed.
//!
//! options:
//!   --routing <MIN|UGALg|UGALn|PAR|Q-adp>   (default UGALg)
//!   --scale <f64>                           (default 64)
//!   --seed <u64>                            (default 42)
//!   --groups <g> --routers <a> --nodes <p> --globals <h>
//!   --contiguous                            (placement; default random)
//!   --queue <BACKEND>                       (heap | calendar | calendar:auto |
//!                                            calendar:width=<ps>,buckets=<n>; default heap)
//!   --qtable save=PATH                      (write learned Q-tables after the run;
//!                                            requires --routing Q-adp)
//!   --qtable load=PATH                      (warm-start Q-tables from a snapshot;
//!                                            requires --routing Q-adp; rejected on
//!                                            topology/timing/alpha fingerprint mismatch)
//!   --engine-stats                          (print the event-engine block)
//!   --csv                                   (machine-readable output)
//! scenario options:
//!   --sched <fcfs|backfill>                 (admission policy; default fcfs)
//!   --rate <jobs/ms> --jobs <N>             (poisson generator; default 1, 8)
//!   --apps <LIST> --sizes <LIST>            (poisson kinds/sizes cycles)
//! ```

use dragonfly_interference::prelude::*;

/// Parsed command-line options.
struct Opts {
    routing: RoutingAlgo,
    scale: f64,
    seed: u64,
    params: DragonflyParams,
    placement: Placement,
    queue: QueueBackend,
    qtable_load: Option<std::path::PathBuf>,
    qtable_save: Option<std::path::PathBuf>,
    engine_stats: bool,
    csv: bool,
    sched: SchedPolicy,
    rate: f64,
    jobs: u32,
    apps: Vec<AppKind>,
    sizes: Vec<u32>,
}

fn usage() -> ! {
    eprintln!(
        "usage: dfsim <standalone APP | pairwise TARGET BG | mixed | scenario ARRIVALS | apps | \
         topo> [--routing R] [--scale S] [--seed N] [--groups g --routers a --nodes p \
         --globals h] [--contiguous] [--queue heap|calendar[:width=PS,buckets=N]] \
         [--qtable save=PATH|load=PATH] [--engine-stats] [--sched fcfs|backfill] \
         [--rate R --jobs N --apps LIST --sizes LIST] [--csv]"
    );
    std::process::exit(2)
}

fn parse_routing(s: &str) -> RoutingAlgo {
    [
        RoutingAlgo::Minimal,
        RoutingAlgo::UgalG,
        RoutingAlgo::UgalN,
        RoutingAlgo::Par,
        RoutingAlgo::QAdaptive,
    ]
    .into_iter()
    .find(|r| r.label().eq_ignore_ascii_case(s))
    .unwrap_or_else(|| {
        eprintln!("unknown routing '{s}' (MIN, UGALg, UGALn, PAR, Q-adp)");
        std::process::exit(2)
    })
}

fn parse_opts(args: &[String]) -> Opts {
    let mut o = Opts {
        routing: RoutingAlgo::UgalG,
        scale: 64.0,
        seed: 42,
        params: DragonflyParams::paper_1056(),
        placement: Placement::Random,
        queue: QueueBackend::default(),
        qtable_load: None,
        qtable_save: None,
        engine_stats: false,
        csv: false,
        sched: SchedPolicy::default(),
        rate: 1.0,
        jobs: 8,
        apps: vec![AppKind::UR, AppKind::CosmoFlow, AppKind::LU],
        sizes: Vec::new(), // default derived from the topology below
    };
    let mut i = 0;
    let value = |i: &mut usize| -> String {
        *i += 1;
        args.get(*i).cloned().unwrap_or_else(|| usage())
    };
    while i < args.len() {
        match args[i].as_str() {
            "--routing" => o.routing = parse_routing(&value(&mut i)),
            "--scale" => o.scale = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--seed" => o.seed = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--groups" => o.params.groups = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--routers" => {
                o.params.routers_per_group = value(&mut i).parse().unwrap_or_else(|_| usage())
            }
            "--nodes" => {
                o.params.nodes_per_router = value(&mut i).parse().unwrap_or_else(|_| usage())
            }
            "--globals" => {
                o.params.globals_per_router = value(&mut i).parse().unwrap_or_else(|_| usage())
            }
            "--contiguous" => o.placement = Placement::Contiguous,
            "--queue" => {
                o.queue = value(&mut i).parse().unwrap_or_else(|e| {
                    eprintln!("{e}");
                    std::process::exit(2)
                })
            }
            "--qtable" => {
                let v = value(&mut i);
                match v.split_once('=') {
                    Some(("save", p)) if !p.is_empty() => o.qtable_save = Some(p.into()),
                    Some(("load", p)) if !p.is_empty() => o.qtable_load = Some(p.into()),
                    _ => {
                        eprintln!(
                            "invalid --qtable '{v}' (valid forms: --qtable save=PATH, --qtable \
                             load=PATH)"
                        );
                        std::process::exit(2)
                    }
                }
            }
            "--sched" => {
                o.sched = value(&mut i).parse().unwrap_or_else(|e| {
                    eprintln!("{e}");
                    std::process::exit(2)
                })
            }
            "--rate" => o.rate = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--jobs" => o.jobs = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--apps" => o.apps = value(&mut i).split(',').map(|n| app_or_die(n.trim())).collect(),
            "--sizes" => {
                o.sizes = value(&mut i)
                    .split(',')
                    .map(|n| n.trim().parse().unwrap_or_else(|_| usage()))
                    .collect()
            }
            "--engine-stats" => o.engine_stats = true,
            "--csv" => o.csv = true,
            other => {
                eprintln!("unknown option '{other}'");
                usage()
            }
        }
        i += 1;
    }
    if let Err(e) = o.params.validate() {
        eprintln!("invalid topology: {e}");
        std::process::exit(2);
    }
    if (o.qtable_load.is_some() || o.qtable_save.is_some()) && o.routing != RoutingAlgo::QAdaptive {
        eprintln!(
            "--qtable requires --routing Q-adp (only Q-adaptive routers carry Q-tables), got {}",
            o.routing
        );
        std::process::exit(2);
    }
    if let Some(path) = &o.qtable_save {
        // Fail on an unwritable save path *before* the simulation runs,
        // not after: a post-run write error would discard the whole run.
        if let Err(e) = std::fs::OpenOptions::new().append(true).create(true).open(path) {
            eprintln!("cannot write --qtable save={}: {e}", path.display());
            std::process::exit(2);
        }
    }
    if let Some(path) = &o.qtable_load {
        // Pre-validate the snapshot so a stale file fails here with the
        // fingerprint error instead of panicking mid-construction.
        let snap = QTableSnapshot::load(path).unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(2)
        });
        if let Err(e) = snap.verify(&o.params, &LinkTiming::default(), QaParams::default().alpha) {
            eprintln!("{e}");
            std::process::exit(2);
        }
    }
    o
}

fn study(o: &Opts) -> StudyConfig {
    StudyConfig {
        routing: o.routing,
        scale: o.scale,
        seed: o.seed,
        placement: o.placement,
        params: o.params,
        queue: o.queue,
        qtable_init: match &o.qtable_load {
            Some(p) => QTableInit::load(p),
            None => QTableInit::Cold,
        },
        qtable_save: o.qtable_save.clone(),
    }
}

fn print_report(report: &RunReport, o: &Opts) {
    let csv = o.csv;
    let mut t = TextTable::new(vec![
        "App",
        "ranks",
        "comm (ms)",
        "±std",
        "exec (ms)",
        "inj GB/s",
        "detour %",
        "mean hops",
        "lat p50 us",
        "lat p99 us",
    ]);
    for a in &report.apps {
        t.row(vec![
            a.name.clone(),
            a.size.to_string(),
            format!("{:.4}", a.comm_ms.mean),
            format!("{:.4}", a.comm_ms.std),
            format!("{:.4}", a.exec_ms),
            format!("{:.1}", a.inj_rate_gbs),
            format!("{:.1}", a.detour_frac * 100.0),
            format!("{:.2}", a.mean_hops),
            format!("{:.2}", a.latency_us.median),
            format!("{:.2}", a.latency_us.p99),
        ]);
    }
    if csv {
        print!("{}", t.to_csv());
        if o.engine_stats {
            println!("{}", report.engine_summary());
        }
        return;
    }
    println!("{}", t.render());
    let n = &report.network;
    println!(
        "routing {} | sim {:.4} ms | {} events | wall {:.1}s | {}",
        report.routing,
        report.sim_ms,
        report.events,
        report.wall_s,
        if report.completed { "completed" } else { &report.stop_reason }
    );
    println!(
        "network: agg throughput {:.3} GB/ms | sys p99 {:.2} us | local stall {:.4} ms/group | \
         cong std {:.4}",
        n.mean_system_throughput,
        n.system_latency_us.p99,
        n.avg_local_stall_ms,
        n.std_global_congestion
    );
    if let Some(l) = &report.learning {
        println!(
            "learning ({}): {} Q1 updates | mean |dQ1| {:.2} ns | early {:.2} -> late {:.2} \
             ns/window",
            l.init,
            l.updates,
            l.mean_abs_dq1_ns,
            l.early_mean_ns(5),
            l.late_mean_ns(5)
        );
    }
    if let Some(path) = &o.qtable_save {
        println!("Q-table snapshot written to {}", path.display());
    }
    if o.engine_stats {
        println!("{}", report.engine_summary());
    }
}

fn print_jobs(report: &RunReport, csv: bool) {
    if report.jobs.is_empty() {
        return;
    }
    let mut t = TextTable::new(vec![
        "Job",
        "App",
        "nodes",
        "arrive ms",
        "start ms",
        "finish ms",
        "wait ms",
        "slowdown",
        "ok",
    ]);
    let opt = |v: Option<f64>| v.map_or("-".to_string(), |x| format!("{x:.4}"));
    for j in &report.jobs {
        t.row(vec![
            j.job.to_string(),
            j.name.clone(),
            j.size.to_string(),
            format!("{:.4}", j.arrival_ms),
            opt(j.start_ms),
            opt(j.finish_ms),
            format!("{:.4}", j.wait_ms),
            j.slowdown.map_or("-".to_string(), |s| format!("{s:.3}")),
            if j.completed { "y".to_string() } else { "n".to_string() },
        ]);
    }
    if csv {
        print!("{}", t.to_csv());
        return;
    }
    println!("{}", t.render());
    println!(
        "jobs: {}/{} completed | mean wait {:.4} ms | mean slowdown {:.3}",
        report.completed_jobs().count(),
        report.jobs.len(),
        report.mean_wait_ms(),
        report.mean_slowdown()
    );
}

fn app_or_die(name: &str) -> AppKind {
    AppKind::from_name(name).unwrap_or_else(|| {
        eprintln!("unknown app '{name}' (try: dfsim apps)");
        std::process::exit(2)
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else { usage() };
    match cmd.as_str() {
        "apps" => {
            let mut t = TextTable::new(vec![
                "App",
                "Pattern",
                "Total Msg (MB)",
                "Exec (ms)",
                "Inj rate (GB/s)",
                "Peak ingress",
            ]);
            for k in AppKind::ALL {
                let p = k.paper_row();
                t.row(vec![
                    k.name().to_string(),
                    p.pattern.to_string(),
                    format!("{:.2}", p.total_msg_mb),
                    format!("{:.2}", p.exec_ms),
                    format!("{:.2}", p.inj_rate_gbs),
                    p.peak_ingress.to_string(),
                ]);
            }
            println!("{}", t.render());
            println!("(paper-scale Table I characteristics on 528 nodes)");
        }
        "topo" => {
            let o = parse_opts(&args[1..]);
            let topo = Topology::new(o.params).expect("validated");
            println!(
                "Dragonfly g={} a={} p={} h={}: {} nodes, {} routers, radix {}",
                o.params.groups,
                o.params.routers_per_group,
                o.params.nodes_per_router,
                o.params.globals_per_router,
                topo.num_nodes(),
                topo.num_routers(),
                topo.radix(),
            );
            println!(
                "links: {} global (1 per group pair), {} local per group, diameter 3 router hops",
                o.params.groups * (o.params.groups - 1) / 2,
                o.params.routers_per_group * (o.params.routers_per_group - 1) / 2,
            );
        }
        "standalone" => {
            let app = app_or_die(args.get(1).map(String::as_str).unwrap_or_else(|| usage()));
            let o = parse_opts(&args[2..]);
            let report = standalone(app, &study(&o));
            print_report(&report, &o);
        }
        "pairwise" => {
            let target = app_or_die(args.get(1).map(String::as_str).unwrap_or_else(|| usage()));
            let bg_arg = args.get(2).map(String::as_str).unwrap_or_else(|| usage());
            let bg =
                if bg_arg.eq_ignore_ascii_case("none") { None } else { Some(app_or_die(bg_arg)) };
            let o = parse_opts(&args[3..]);
            let report = pairwise(target, bg, &study(&o));
            print_report(&report, &o);
        }
        "mixed" => {
            let o = parse_opts(&args[1..]);
            let report = mixed(&study(&o));
            print_report(&report, &o);
        }
        "scenario" => {
            let arg = args.get(1).map(String::as_str).unwrap_or_else(|| usage());
            let o = parse_opts(&args[2..]);
            let scenario = if arg.eq_ignore_ascii_case("poisson") {
                if o.rate <= 0.0 || o.rate.is_nan() || o.jobs == 0 || o.apps.is_empty() {
                    eprintln!("--rate must be positive, --jobs nonzero, --apps non-empty");
                    std::process::exit(2);
                }
                let sizes = if o.sizes.is_empty() {
                    vec![(o.params.num_nodes() / 4).max(2)]
                } else {
                    o.sizes.clone()
                };
                Scenario::poisson(o.seed, o.rate, o.jobs, &o.apps, &sizes)
            } else {
                Scenario::parse(arg).unwrap_or_else(|e| {
                    eprintln!("{e}");
                    std::process::exit(2)
                })
            };
            // Reject bad user input (oversized/zero-size jobs) with a clean
            // message instead of run_scenario's internal panic.
            if let Err(e) = scenario.validate(o.params.num_nodes()) {
                eprintln!("{e}");
                std::process::exit(2);
            }
            let cfg = study(&o).sim();
            let report = run_scenario(&cfg, &scenario, o.sched, o.placement);
            print_report(&report, &o);
            print_jobs(&report, o.csv);
        }
        _ => usage(),
    }
}
