//! `dfsim` — command-line driver for the Dragonfly interference simulator.
//!
//! ```text
//! dfsim run [--spec FILE] [options]      # run whatever the spec describes
//! dfsim standalone <APP> [options]
//! dfsim pairwise <TARGET> <BACKGROUND|none> [options]
//! dfsim mixed [options]
//! dfsim scenario <ARRIVALS|poisson> [options]   # churn: timed job stream
//! dfsim emit [--spec FILE] [options]    # print the resolved spec (canonical form)
//! dfsim apps                            # list workloads with Table I data
//! dfsim topo [options]                  # print topology facts
//! dfsim trace FILE [--replay]           # inspect a trace; --replay rebuilds the report
//! dfsim cache <stats|ls|gc> [--max-age SECONDS] [--max-bytes BYTES] [--cache DIR]
//!
//! `ARRIVALS` is a comma-separated list `APP:SIZE@TIME` (e.g.
//! `UR:36@0,LU:16@0.5ms`); `poisson` synthesizes arrivals from the seed.
//!
//! Every subcommand resolves its configuration through the one experiment
//! layering: built-in defaults < `--spec FILE` < environment (`SCALE`,
//! `SEED`, `QUEUE`, `ROUTING`, …) < command line. Invalid values from any
//! layer are hard errors (exit 2) naming the offending input.
//!
//! options (the spec layer):
//!   --spec <FILE>                           (layer a spec file under env/CLI)
//!   --routing <MIN|UGALg|UGALn|PAR|Q-adp>   (default UGALg)
//!   --scale <f64>  --seed <u64>             (default 64, 42)
//!   --groups <g> --routers <a> --nodes <p> --globals <h>
//!   --placement <random|contiguous> | --contiguous
//!   --queue <heap|calendar[:auto|:width=PS,buckets=N]>
//!   --qtable save=PATH | load=PATH          (requires --routing Q-adp;
//!                                            load rejected on fingerprint mismatch)
//!   --trace <PATH>                          (stream every metric event to a
//!                                            dfsim-trace v1 file; replayable)
//!   --horizon <DURATION>                    (e.g. 5ms: wall on simulated time)
//!   --sched <fcfs|backfill>                 (scenario admission; default fcfs)
//!   --rate <jobs/ms> --jobs <N>             (poisson generator; default 1, 8)
//!   --apps <LIST> --sizes <LIST>            (poisson kinds/sizes cycles)
//!   --cache [on|off|DIR] | --no-cache       (content-addressed result cache;
//!                                            bare --cache uses $DFSIM_CACHE_DIR
//!                                            or .dfsim-cache/)
//!   --smoke                                 (CI: shrink to the 72-node system)
//! presentation options (not part of the spec):
//!   --engine-stats                          (print the event-engine block)
//!   --csv                                   (machine-readable output)
//! ```

use dragonfly_interference::prelude::*;

fn usage() -> ! {
    eprintln!(
        "usage: dfsim <run | standalone APP | pairwise TARGET BG | mixed | scenario ARRIVALS | \
         emit | apps | topo | trace FILE [--replay] | cache stats|ls|gc> [--spec FILE] \
         [--routing R] [--scale S] [--seed N] [--groups g --routers a --nodes p --globals h] \
         [--placement random|contiguous] [--queue heap|calendar[:width=PS,buckets=N]] [--qtable \
         save=PATH|load=PATH] [--trace PATH] [--horizon D] [--sched fcfs|backfill] [--rate R \
         --jobs N --apps LIST --sizes LIST] [--cache [on|off|DIR]] [--no-cache] [--max-age S \
         --max-bytes B] [--smoke] [--engine-stats] [--csv]"
    );
    std::process::exit(2)
}

/// Resolve the effective spec for this invocation: `defaults < --spec FILE
/// < env < CLI`, exiting 2 with the named error on any invalid input.
fn resolve(defaults: ExperimentSpec, args: &[String]) -> ExperimentSpec {
    defaults.resolve(args).unwrap_or_else(|e| die(&e))
}

/// Presentation flags live outside the spec: they describe output, not the
/// experiment.
struct Presentation {
    csv: bool,
    engine_stats: bool,
}

impl Presentation {
    fn from_args(args: &[String]) -> Self {
        Self {
            csv: args.iter().any(|a| a == "--csv"),
            engine_stats: args.iter().any(|a| a == "--engine-stats"),
        }
    }
}

/// Run the resolved spec through a simulation session and print the report.
fn run_and_print(spec: ExperimentSpec, show: &Presentation) {
    let mut sim = Simulation::from_spec(spec).unwrap_or_else(|e| die(&e));
    sim.prepare().unwrap_or_else(|e| die(&e));
    let handle = sim.run().unwrap_or_else(|e| die(&e));
    if sim.spec().cache.enabled() {
        // Provenance goes to stderr so `--csv > file` pipelines stay
        // byte-identical between a live run and a cache hit.
        if handle.cached {
            eprintln!("result cache: hit [{}]", sim.spec().cache.describe());
        } else {
            eprintln!("result cache: miss (stored) [{}]", sim.spec().cache.describe());
        }
    }
    print_report_provenance(&handle.report, show, handle.cached);
    print_jobs(&handle.report, show.csv);
    if !show.csv {
        if let Some(path) = &sim.spec().qtable_save {
            println!("Q-table snapshot written to {}", path.display());
        }
        if let Some(path) = &sim.spec().trace {
            println!("trace written to {}", path.display());
        }
    }
}

/// Print a report — the live one of a run, or one rebuilt from a trace by
/// `dfsim trace FILE --replay` (bit-identical to the live one, which is why
/// this function cannot tell the difference).
fn print_report(report: &RunReport, show: &Presentation) {
    print_report_provenance(report, show, false)
}

/// [`print_report`] with cache provenance: when `cached`, the wall-clock
/// column is labelled as the *original* run's simulation cost — the cache
/// retrieval itself took milliseconds, and relabelling `wall` would
/// destroy the bit-identity between a live report and its replay.
fn print_report_provenance(report: &RunReport, show: &Presentation, cached: bool) {
    let mut t = TextTable::new(vec![
        "App",
        "ranks",
        "comm (ms)",
        "±std",
        "exec (ms)",
        "inj GB/s",
        "detour %",
        "mean hops",
        "lat p50 us",
        "lat p99 us",
    ]);
    for a in &report.apps {
        t.row(vec![
            a.name.clone(),
            a.size.to_string(),
            format!("{:.4}", a.comm_ms.mean),
            format!("{:.4}", a.comm_ms.std),
            format!("{:.4}", a.exec_ms),
            format!("{:.1}", a.inj_rate_gbs),
            format!("{:.1}", a.detour_frac * 100.0),
            format!("{:.2}", a.mean_hops),
            format!("{:.2}", a.latency_us.median),
            format!("{:.2}", a.latency_us.p99),
        ]);
    }
    if show.csv {
        print!("{}", t.to_csv());
        if show.engine_stats {
            println!("{}", report.engine_summary());
        }
        return;
    }
    println!("{}", t.render());
    let n = &report.network;
    println!(
        "routing {} | sim {:.4} ms | {} events | wall {:.1}s{} | {}",
        report.routing,
        report.sim_ms,
        report.events,
        report.wall_s,
        if cached { " (original run; served from cache)" } else { "" },
        if report.completed { "completed" } else { &report.stop_reason }
    );
    println!(
        "network: agg throughput {:.3} GB/ms | sys p99 {:.2} us | local stall {:.4} ms/group | \
         cong std {:.4}",
        n.mean_system_throughput,
        n.system_latency_us.p99,
        n.avg_local_stall_ms,
        n.std_global_congestion
    );
    if let Some(l) = report.learning.as_ref() {
        println!(
            "learning ({}): {} Q1 updates | mean |dQ1| {:.2} ns | early {:.2} -> late {:.2} \
             ns/window",
            l.init,
            l.updates,
            l.mean_abs_dq1_ns,
            l.early_mean_ns(5),
            l.late_mean_ns(5)
        );
    }
    if show.engine_stats {
        println!("{}", report.engine_summary());
    }
}

/// `dfsim trace FILE`: summarize the frame/event structure and the run
/// context carried in the META frame; `--replay` instead rebuilds the run's
/// exact report from the event stream and prints it like `dfsim run` would.
fn trace_cmd(path: &std::path::Path, args: &[String]) {
    let show = Presentation::from_args(args);
    if args.iter().any(|a| a == "--replay") {
        let report = replay_trace(path).unwrap_or_else(|e| die(&e));
        print_report(&report, &show);
        print_jobs(&report, show.csv);
        return;
    }
    let (contents, meta) = summarize_trace(path).unwrap_or_else(|e| die(&e));
    let mut t = TextTable::new(vec!["Event kind", "count"]);
    for (name, count) in EVENT_KIND_NAMES.iter().zip(contents.counts.iter()) {
        t.row(vec![name.to_string(), count.to_string()]);
    }
    if show.csv {
        print!("{}", t.to_csv());
        return;
    }
    println!("{} (dfsim-trace v1): {} metric events", path.display(), contents.events);
    println!("{}", t.render());
    let jobs: Vec<String> =
        meta.jobs.iter().map(|j| format!("{}:{}", j.kind.name(), j.size)).collect();
    println!(
        "run: routing {} | queue {} | seed {} | scale {} | jobs {}",
        meta.cfg.routing.algo.label(),
        meta.cfg.queue,
        meta.cfg.seed,
        meta.cfg.scale,
        jobs.join(","),
    );
    println!(
        "stopped: {:?} at {:.4} ms | {} engine events | wall {:.1}s",
        meta.stop,
        meta.end_time as f64 / MILLISECOND as f64,
        meta.events,
        meta.wall_s,
    );
    println!("replay with: dfsim trace {} --replay", path.display());
}

fn print_jobs(report: &RunReport, csv: bool) {
    if report.jobs.is_empty() {
        return;
    }
    let mut t = TextTable::new(vec![
        "Job",
        "App",
        "nodes",
        "arrive ms",
        "start ms",
        "finish ms",
        "wait ms",
        "slowdown",
        "ok",
    ]);
    let opt = |v: Option<f64>| v.map_or("-".to_string(), |x| format!("{x:.4}"));
    for j in &report.jobs {
        t.row(vec![
            j.job.to_string(),
            j.name.clone(),
            j.size.to_string(),
            format!("{:.4}", j.arrival_ms),
            opt(j.start_ms),
            opt(j.finish_ms),
            format!("{:.4}", j.wait_ms),
            j.slowdown.map_or("-".to_string(), |s| format!("{s:.3}")),
            if j.completed { "y".to_string() } else { "n".to_string() },
        ]);
    }
    if csv {
        print!("{}", t.to_csv());
        return;
    }
    println!("{}", t.render());
    println!(
        "jobs: {}/{} completed | mean wait {:.4} ms | mean slowdown {:.3}",
        report.completed_jobs().count(),
        report.jobs.len(),
        report.mean_wait_ms(),
        report.mean_slowdown()
    );
}

/// `dfsim cache <stats|ls|gc>`: inspect or prune the content-addressed
/// result store. The directory comes from `--cache DIR` when given, else
/// the `DFSIM_CACHE_DIR` / `.dfsim-cache/` resolution every run uses.
fn cache_cmd(action: &str, args: &[String]) {
    let mut mode = CacheMode::On;
    let mut max_age_s: Option<u64> = None;
    let mut max_bytes: Option<u64> = None;
    let mut i = 0;
    while i < args.len() {
        let flag_val = |what: &str, v: Option<&String>| -> String {
            v.cloned().unwrap_or_else(|| die(format!("{what} needs a value")))
        };
        match args[i].as_str() {
            "--cache" => {
                if let Some(v) = args.get(i + 1).filter(|v| !v.starts_with("--")) {
                    mode = CacheMode::parse(v).unwrap_or_else(|e| die(format!("--cache: {e}")));
                    i += 1;
                }
            }
            "--max-age" => {
                let v = flag_val("--max-age", args.get(i + 1));
                max_age_s = Some(
                    v.parse().unwrap_or_else(|_| die(format!("--max-age: bad seconds {v:?}"))),
                );
                i += 1;
            }
            "--max-bytes" => {
                let v = flag_val("--max-bytes", args.get(i + 1));
                max_bytes = Some(
                    v.parse().unwrap_or_else(|_| die(format!("--max-bytes: bad bytes {v:?}"))),
                );
                i += 1;
            }
            other => die(format!("dfsim cache: unknown argument {other:?}")),
        }
        i += 1;
    }
    let cache = match ResultCache::open(&mode) {
        Ok(Some(c)) => c,
        Ok(None) => die("dfsim cache: the cache is off (pass --cache DIR or --cache on)"),
        Err(e) => die(&e),
    };
    match action {
        "stats" => {
            let s = cache.stats().unwrap_or_else(|e| die(&e));
            println!("{}: {} entries, {} bytes", cache.dir().display(), s.entries, s.bytes);
        }
        "ls" => {
            let entries = cache.entries().unwrap_or_else(|e| die(&e));
            let mut t = TextTable::new(vec!["Key", "bytes", "age (s)", "run"]);
            for e in &entries {
                t.row(vec![
                    e.key.clone(),
                    e.bytes.to_string(),
                    e.age_s.to_string(),
                    e.describe.clone(),
                ]);
            }
            println!("{}", t.render());
            println!("{} entries in {}", entries.len(), cache.dir().display());
        }
        "gc" => {
            if max_age_s.is_none() && max_bytes.is_none() {
                die("dfsim cache gc: pass --max-age SECONDS and/or --max-bytes BYTES");
            }
            let out = cache.gc(max_age_s, max_bytes).unwrap_or_else(|e| die(&e));
            println!(
                "{}: removed {} entries ({} bytes), kept {} ({} bytes)",
                cache.dir().display(),
                out.removed,
                out.freed_bytes,
                out.kept,
                out.kept_bytes
            );
        }
        other => die(format!("dfsim cache: unknown action {other:?} (stats|ls|gc)")),
    }
}

fn app_or_die(name: &str) -> AppKind {
    lookup(name).unwrap_or_else(|e| die(format!("{e} (try: dfsim apps)")))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else { usage() };
    match cmd.as_str() {
        "apps" => {
            let mut t = TextTable::new(vec![
                "App",
                "Pattern",
                "Total Msg (MB)",
                "Exec (ms)",
                "Inj rate (GB/s)",
                "Peak ingress",
            ]);
            for k in AppKind::ALL {
                let p = k.paper_row();
                t.row(vec![
                    k.name().to_string(),
                    p.pattern.to_string(),
                    format!("{:.2}", p.total_msg_mb),
                    format!("{:.2}", p.exec_ms),
                    format!("{:.2}", p.inj_rate_gbs),
                    p.peak_ingress.to_string(),
                ]);
            }
            println!("{}", t.render());
            println!("(paper-scale Table I characteristics on 528 nodes)");
        }
        "topo" => {
            let spec = resolve(ExperimentSpec::default(), &args[1..]);
            let p = spec.params;
            let topo = Topology::new(p).expect("validated");
            println!(
                "Dragonfly g={} a={} p={} h={}: {} nodes, {} routers, radix {}",
                p.groups,
                p.routers_per_group,
                p.nodes_per_router,
                p.globals_per_router,
                topo.num_nodes(),
                topo.num_routers(),
                topo.radix(),
            );
            println!(
                "links: {} global (1 per group pair), {} local per group, diameter 3 router hops",
                p.groups * (p.groups - 1) / 2,
                p.routers_per_group * (p.routers_per_group - 1) / 2,
            );
        }
        "run" => {
            let show = Presentation::from_args(&args[1..]);
            run_and_print(resolve(ExperimentSpec::default(), &args[1..]), &show);
        }
        "emit" => {
            // Round-trippable canonical form of the resolved spec — pipe
            // into a file to freeze the current knobs as a spec file.
            let spec = resolve(ExperimentSpec::default(), &args[1..]);
            print!("{}", spec.emit());
        }
        "standalone" => {
            let app = app_or_die(args.get(1).map(String::as_str).unwrap_or_else(|| usage()));
            let show = Presentation::from_args(&args[2..]);
            // The positional workload is the most explicit layer of all: it
            // is applied after resolve, so a spec file's `workload` key
            // cannot silently replace what the subcommand names.
            let spec = resolve(ExperimentSpec::default(), &args[2..])
                .with_workload(Workload::standalone(app));
            run_and_print(spec, &show);
        }
        "pairwise" => {
            let target = app_or_die(args.get(1).map(String::as_str).unwrap_or_else(|| usage()));
            let bg_arg = args.get(2).map(String::as_str).unwrap_or_else(|| usage());
            let bg =
                if bg_arg.eq_ignore_ascii_case("none") { None } else { Some(app_or_die(bg_arg)) };
            let show = Presentation::from_args(&args[3..]);
            let spec = resolve(ExperimentSpec::default(), &args[3..])
                .with_workload(Workload::pairwise(target, bg));
            run_and_print(spec, &show);
        }
        "mixed" => {
            let show = Presentation::from_args(&args[1..]);
            let spec =
                resolve(ExperimentSpec::default(), &args[1..]).with_workload(Workload::Mixed);
            run_and_print(spec, &show);
        }
        "trace" => {
            let path = args.get(1).map(String::as_str).unwrap_or_else(|| usage());
            trace_cmd(std::path::Path::new(path), &args[2..]);
        }
        "cache" => {
            let action = args.get(1).map(String::as_str).unwrap_or_else(|| usage());
            cache_cmd(action, &args[2..]);
        }
        "scenario" => {
            let arg = args.get(1).map(String::as_str).unwrap_or_else(|| usage());
            let workload = if arg.eq_ignore_ascii_case("poisson") {
                Workload::Poisson
            } else {
                Workload::parse(&format!("scenario {arg}")).unwrap_or_else(|e| die(&e))
            };
            let show = Presentation::from_args(&args[2..]);
            let spec = resolve(ExperimentSpec::default(), &args[2..]).with_workload(workload);
            run_and_print(spec, &show);
        }
        _ => usage(),
    }
}
