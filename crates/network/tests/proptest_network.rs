//! Property tests over the network simulation: packet conservation, byte
//! conservation and drain-to-idle for random traffic under every routing
//! algorithm.

use dfsim_des::queue::PendingEvents;
use dfsim_des::sched::QueueScheduler;
use dfsim_des::{EventQueue, SimRng};
use dfsim_metrics::{AppId, Recorder, RecorderConfig};
use dfsim_network::{NetEffect, NetEvent, NetworkSim, RoutingAlgo, RoutingConfig};
use dfsim_topology::{DragonflyParams, LinkTiming, NodeId, Topology};
use proptest::prelude::*;

fn algo_strategy() -> impl Strategy<Value = RoutingAlgo> {
    prop_oneof![
        Just(RoutingAlgo::Minimal),
        Just(RoutingAlgo::UgalG),
        Just(RoutingAlgo::UgalN),
        Just(RoutingAlgo::Par),
        Just(RoutingAlgo::QAdaptive),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Whatever traffic we offer, every message is delivered exactly once,
    /// every injected byte is delivered, and the network drains to idle.
    #[test]
    fn conservation_under_random_traffic(
        algo in algo_strategy(),
        seed in 0u64..1_000,
        n_msgs in 1usize..60,
        max_bytes in 1u64..8_192,
    ) {
        let topo = std::sync::Arc::new(Topology::new(DragonflyParams::tiny_72()).unwrap());
        let mut rec = Recorder::new(&topo, RecorderConfig::default());
        let mut net = NetworkSim::new(
            std::sync::Arc::clone(&topo),
            LinkTiming::default(),
            RoutingConfig::new(algo),
            &SimRng::new(seed),
        );
        let mut rng = SimRng::new(seed ^ 0xdead_beef);
        let mut queue: EventQueue<NetEvent> = EventQueue::new();
        let mut effects: Vec<NetEffect> = Vec::new();

        let n = topo.num_nodes() as u64;
        let mut sent = Vec::new();
        let mut wire_bytes = 0u64;
        for _ in 0..n_msgs {
            let src = NodeId(rng.below(n) as u32);
            let dst = NodeId(rng.below(n) as u32);
            let bytes = rng.below(max_bytes);
            let mut sched = QueueScheduler::new(&mut queue);
            let msg = net.send_message(&mut sched, &mut rec, src, dst, bytes, AppId(0));
            sent.push(msg);
            if src != dst {
                wire_bytes += if bytes == 0 { 64 } else { bytes };
            }
        }

        let mut steps = 0u64;
        while let Some((_, ev)) = queue.pop() {
            let mut sched = QueueScheduler::new(&mut queue);
            net.handle(ev, &mut sched, &mut rec, &mut effects);
            steps += 1;
            prop_assert!(steps < 20_000_000, "runaway simulation");
        }

        // Exactly one delivery per message.
        for msg in &sent {
            let count = effects
                .iter()
                .filter(|e| matches!(e, NetEffect::MessageDelivered { msg: m, .. } if m == msg))
                .count();
            prop_assert_eq!(count, 1, "{} delivered {} times under {}", msg, count, algo);
        }
        prop_assert!(net.is_idle());
        prop_assert!(rec.conservation_ok());
        if let Some(app) = rec.app(AppId(0)) {
            prop_assert_eq!(app.packets_injected, app.packets_delivered);
            prop_assert_eq!(app.delivered.total(), wire_bytes);
        }
    }
}
