//! Per-router state: input VC buffers, downstream credits, link occupancy
//! and the waiting lists that implement round-robin arbitration.
//!
//! The router is input-queued: each input `(port, vc)` holds a FIFO of
//! packets. Only the head packet of a FIFO can be serviced; when it cannot
//! depart (no downstream credit, or the output link is still serializing a
//! previous packet) the input registers on exactly one waiting list of the
//! contended resource and the head-of-line blocking interval is accounted as
//! *stall time* (Fig 11's metric).

use std::collections::VecDeque;

use dfsim_des::{SimRng, Time};
use dfsim_topology::{Endpoint, NodeId, Port, RouterId, Topology};

use crate::packet::Packet;
use crate::qtable::QTable;

/// One input virtual channel.
#[derive(Debug, Default)]
pub struct InputVc {
    /// Buffered packets (head = next to service).
    pub queue: VecDeque<Packet>,
    /// When the current head became blocked, if it is.
    pub blocked_since: Option<Time>,
}

/// What sits at the far end of a port (precomputed from the topology).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PortPeer {
    /// Another router's input `(router, port)`.
    Router(RouterId, Port),
    /// A compute node (terminal port).
    Node(NodeId),
    /// Nothing (unused global port on under-subscribed systems).
    Unconnected,
}

/// Mutable per-router simulation state.
#[derive(Debug)]
pub struct Router {
    /// This router's id.
    pub id: RouterId,
    radix: usize,
    nvcs: usize,
    /// Input buffers, `[port * nvcs + vc]`.
    pub inputs: Vec<InputVc>,
    /// Credits towards the downstream input buffer, `[port * nvcs + vc]`.
    /// Only meaningful for router-to-router ports.
    credits: Vec<u32>,
    /// Per-port peer map.
    peers: Vec<PortPeer>,
    /// Output link busy horizon per port.
    busy_until: Vec<Time>,
    /// Inputs whose head waits for this output link, per port.
    waiting_link: Vec<VecDeque<(Port, u8)>>,
    /// Inputs whose head waits for a credit of `(port, vc)`.
    waiting_credit: Vec<VecDeque<(Port, u8)>>,
    /// Q-adaptive state (present only under Q-adaptive routing).
    pub qtable: Option<QTable>,
    /// Per-router RNG (UGAL candidate sampling, ε-exploration).
    pub rng: SimRng,
}

impl Router {
    /// Build router state from the topology.
    pub fn new(
        topo: &Topology,
        id: RouterId,
        nvcs: u8,
        buffer_packets: u32,
        qtable: Option<QTable>,
        rng: SimRng,
    ) -> Self {
        let radix = topo.radix() as usize;
        let nvcs = nvcs as usize;
        let peers: Vec<PortPeer> = (0..radix as u8)
            .map(|p| match topo.endpoint(id, Port(p)) {
                Some(Endpoint::Router { router, port }) => PortPeer::Router(router, port),
                Some(Endpoint::Node(n)) => PortPeer::Node(n),
                None => PortPeer::Unconnected,
            })
            .collect();
        let credits = peers
            .iter()
            .flat_map(|peer| {
                let c = match peer {
                    PortPeer::Router(..) => buffer_packets,
                    _ => 0,
                };
                std::iter::repeat_n(c, nvcs)
            })
            .collect();
        Self {
            id,
            radix,
            nvcs,
            inputs: (0..radix * nvcs).map(|_| InputVc::default()).collect(),
            credits,
            peers,
            busy_until: vec![0; radix],
            waiting_link: (0..radix).map(|_| VecDeque::new()).collect(),
            waiting_credit: (0..radix * nvcs).map(|_| VecDeque::new()).collect(),
            qtable,
            rng,
        }
    }

    #[inline]
    fn pv(&self, port: Port, vc: u8) -> usize {
        port.idx() * self.nvcs + vc as usize
    }

    /// Input buffer of `(port, vc)`.
    #[inline]
    pub fn input(&mut self, port: Port, vc: u8) -> &mut InputVc {
        let i = self.pv(port, vc);
        &mut self.inputs[i]
    }

    /// Peer of a port.
    #[inline]
    pub fn peer(&self, port: Port) -> PortPeer {
        self.peers[port.idx()]
    }

    /// Whether the port faces a compute node.
    #[inline]
    pub fn is_terminal(&self, port: Port) -> bool {
        matches!(self.peers[port.idx()], PortPeer::Node(_))
    }

    /// Remaining credits for `(port, vc)`.
    #[inline]
    pub fn credits(&self, port: Port, vc: u8) -> u32 {
        self.credits[self.pv(port, vc)]
    }

    /// Consume one credit.
    #[inline]
    pub fn take_credit(&mut self, port: Port, vc: u8) {
        let i = self.pv(port, vc);
        debug_assert!(self.credits[i] > 0, "credit underflow on {port}/vc{vc}");
        self.credits[i] -= 1;
    }

    /// Return one credit.
    #[inline]
    pub fn return_credit(&mut self, port: Port, vc: u8, cap: u32) {
        let i = self.pv(port, vc);
        self.credits[i] += 1;
        debug_assert!(self.credits[i] <= cap, "credit overflow on {port}/vc{vc}");
    }

    /// Output-link busy horizon.
    #[inline]
    pub fn busy_until(&self, port: Port) -> Time {
        self.busy_until[port.idx()]
    }

    /// Occupy the output link until `until`.
    #[inline]
    pub fn set_busy(&mut self, port: Port, until: Time) {
        self.busy_until[port.idx()] = until;
    }

    /// Register an input whose head waits for the output link of `port`.
    #[inline]
    pub fn wait_for_link(&mut self, out: Port, input: (Port, u8)) {
        self.waiting_link[out.idx()].push_back(input);
    }

    /// Register an input whose head waits for a credit of `(port, vc)`.
    #[inline]
    pub fn wait_for_credit(&mut self, out: Port, vc: u8, input: (Port, u8)) {
        let i = self.pv(out, vc);
        self.waiting_credit[i].push_back(input);
    }

    /// Pop the next input waiting for `out`'s link.
    #[inline]
    pub fn pop_link_waiter(&mut self, out: Port) -> Option<(Port, u8)> {
        self.waiting_link[out.idx()].pop_front()
    }

    /// Pop the next input waiting for a credit of `(out, vc)`.
    #[inline]
    pub fn pop_credit_waiter(&mut self, out: Port, vc: u8) -> Option<(Port, u8)> {
        let i = self.pv(out, vc);
        self.waiting_credit[i].pop_front()
    }

    /// Congestion estimate of an output port in *packets*: downstream buffer
    /// occupancy (consumed credits across VCs) plus the residual link busy
    /// time, normalized by one packet serialization. This is the queue-
    /// occupancy signal adaptive routing compares (paper §II-B).
    pub fn congestion_packets(
        &self,
        port: Port,
        now: Time,
        buffer_packets: u32,
        packet_ser: Time,
    ) -> u64 {
        let mut used: u64 = 0;
        if let PortPeer::Router(..) = self.peers[port.idx()] {
            for vc in 0..self.nvcs {
                used += (buffer_packets - self.credits[port.idx() * self.nvcs + vc]) as u64;
            }
        }
        let residual = self.busy_until[port.idx()].saturating_sub(now);
        used + residual.div_ceil(packet_ser.max(1))
    }

    /// Total packets buffered across all inputs (for idle checks and tests).
    pub fn buffered_packets(&self) -> usize {
        self.inputs.iter().map(|i| i.queue.len()).sum()
    }

    /// Number of ports.
    pub fn radix(&self) -> usize {
        self.radix
    }

    /// VCs per port.
    pub fn nvcs(&self) -> usize {
        self.nvcs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfsim_topology::DragonflyParams;

    fn mk() -> (Topology, Router) {
        let topo = Topology::new(DragonflyParams::tiny_72()).unwrap();
        let r = Router::new(&topo, RouterId(0), 6, 30, None, SimRng::new(1));
        (topo, r)
    }

    #[test]
    fn peers_match_topology() {
        let (topo, r) = mk();
        assert!(matches!(r.peer(Port(0)), PortPeer::Node(n) if n == NodeId(0)));
        assert!(r.is_terminal(Port(0)));
        // First local port (p=2 for tiny): faces router 1.
        match r.peer(Port(2)) {
            PortPeer::Router(peer, back) => {
                assert_eq!(peer, RouterId(1));
                assert_eq!(topo.local_port(RouterId(1), RouterId(0)), Some(back));
            }
            other => panic!("expected router peer, got {other:?}"),
        }
    }

    #[test]
    fn credits_track_take_and_return() {
        let (_, mut r) = mk();
        let p = Port(2);
        assert_eq!(r.credits(p, 0), 30);
        r.take_credit(p, 0);
        assert_eq!(r.credits(p, 0), 29);
        r.return_credit(p, 0, 30);
        assert_eq!(r.credits(p, 0), 30);
        // Terminal ports carry no credits.
        assert_eq!(r.credits(Port(0), 0), 0);
    }

    #[test]
    fn congestion_counts_consumed_credits_and_busy_residue() {
        let (_, mut r) = mk();
        let p = Port(2);
        assert_eq!(r.congestion_packets(p, 0, 30, 20_480), 0);
        r.take_credit(p, 0);
        r.take_credit(p, 1);
        assert_eq!(r.congestion_packets(p, 0, 30, 20_480), 2);
        r.set_busy(p, 40_960);
        assert_eq!(r.congestion_packets(p, 0, 30, 20_480), 4);
        assert_eq!(r.congestion_packets(p, 40_000, 30, 20_480), 3);
    }

    #[test]
    fn waiting_lists_are_fifo() {
        let (_, mut r) = mk();
        r.wait_for_link(Port(2), (Port(0), 0));
        r.wait_for_link(Port(2), (Port(1), 0));
        assert_eq!(r.pop_link_waiter(Port(2)), Some((Port(0), 0)));
        assert_eq!(r.pop_link_waiter(Port(2)), Some((Port(1), 0)));
        assert_eq!(r.pop_link_waiter(Port(2)), None);

        r.wait_for_credit(Port(3), 2, (Port(0), 1));
        assert_eq!(r.pop_credit_waiter(Port(3), 2), Some((Port(0), 1)));
        assert_eq!(r.pop_credit_waiter(Port(3), 2), None);
    }
}
