//! Per-node NIC: message send queues and packetization.
//!
//! The NIC serializes packets onto the terminal uplink (same bandwidth as
//! network links) and respects the router's terminal input-buffer credits,
//! so injection is back-pressured exactly like any other hop. Messages are
//! injected in FIFO order; a message's packets are contiguous on the wire.

use std::collections::VecDeque;

use dfsim_des::Time;
use dfsim_metrics::AppId;
use dfsim_topology::NodeId;

use crate::packet::MessageId;

/// One queued outgoing message.
#[derive(Debug, Clone, Copy)]
pub struct SendMsg {
    /// Transport message id.
    pub msg: MessageId,
    /// Destination node.
    pub dst: NodeId,
    /// Owning application.
    pub app: AppId,
    /// Bytes not yet packetized. Zero-byte (control) messages are stored as
    /// `control_bytes` so they still emit one packet.
    pub bytes_left: u64,
}

/// Per-node injection state.
#[derive(Debug)]
pub struct Nic {
    /// Owning node.
    pub node: NodeId,
    /// Credits towards the router's terminal input buffer.
    pub credits: u32,
    /// Uplink busy horizon.
    pub busy_until: Time,
    /// FIFO of outgoing messages.
    pub sendq: VecDeque<SendMsg>,
    /// A `NicPump` event is already scheduled for the uplink-free time.
    pub pump_pending: bool,
    /// Total bytes this NIC has serialized (diagnostics).
    pub bytes_injected: u64,
}

impl Nic {
    /// Fresh NIC with a full credit allowance.
    pub fn new(node: NodeId, credits: u32) -> Self {
        Self {
            node,
            credits,
            busy_until: 0,
            sendq: VecDeque::new(),
            pump_pending: false,
            bytes_injected: 0,
        }
    }

    /// Enqueue a message for injection.
    pub fn enqueue(&mut self, msg: MessageId, dst: NodeId, app: AppId, bytes: u64) {
        self.sendq.push_back(SendMsg { msg, dst, app, bytes_left: bytes });
    }

    /// Whether nothing remains to inject.
    pub fn is_idle(&self) -> bool {
        self.sendq.is_empty()
    }

    /// Carve the next packet (up to `packet_bytes`) off the head message.
    /// Returns `(msg meta, payload bytes, message finished)`. `None` when
    /// the queue is empty.
    pub fn next_packet(
        &mut self,
        packet_bytes: u32,
        control_bytes: u32,
    ) -> Option<(SendMsg, u32, bool)> {
        let head = self.sendq.front_mut()?;
        let meta = *head;
        let take = if head.bytes_left == 0 {
            control_bytes // zero-byte message: single control packet
        } else {
            head.bytes_left.min(packet_bytes as u64) as u32
        };
        head.bytes_left = head.bytes_left.saturating_sub(take as u64);
        let done = head.bytes_left == 0;
        if done {
            self.sendq.pop_front();
        }
        self.bytes_injected += take as u64;
        Some((meta, take, done))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn carves_packets_fifo_with_tail() {
        let mut nic = Nic::new(NodeId(0), 30);
        nic.enqueue(MessageId(1), NodeId(5), AppId(0), 1100);
        nic.enqueue(MessageId(2), NodeId(6), AppId(0), 10);
        let (m, b, done) = nic.next_packet(512, 64).unwrap();
        assert_eq!((m.msg, b, done), (MessageId(1), 512, false));
        let (_, b, done) = nic.next_packet(512, 64).unwrap();
        assert_eq!((b, done), (512, false));
        let (_, b, done) = nic.next_packet(512, 64).unwrap();
        assert_eq!((b, done), (76, true));
        let (m, b, done) = nic.next_packet(512, 64).unwrap();
        assert_eq!((m.msg, b, done), (MessageId(2), 10, true));
        assert!(nic.next_packet(512, 64).is_none());
        assert!(nic.is_idle());
        assert_eq!(nic.bytes_injected, 1100 + 10);
    }

    #[test]
    fn zero_byte_message_is_one_control_packet() {
        let mut nic = Nic::new(NodeId(0), 30);
        nic.enqueue(MessageId(7), NodeId(1), AppId(0), 0);
        let (m, b, done) = nic.next_packet(512, 64).unwrap();
        assert_eq!((m.msg, b, done), (MessageId(7), 64, true));
        assert!(nic.is_idle());
    }
}
