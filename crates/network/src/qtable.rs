//! The two-level Q-table of Q-adaptive routing (paper §II-B, Fig 2; Kang et
//! al., HPDC'21 [14]).
//!
//! Each router keeps estimated *delivery times*:
//!
//! * **Level 1** — `q1[dst_group][output port]`: estimated remaining time to
//!   deliver a packet addressed to `dst_group` if it leaves through that
//!   port. This is the inter-group table routers use for min/non-min
//!   decisions.
//! * **Level 2** — `q2[dst_local_router][output port]`: the intra-group
//!   table used once a packet is inside its destination group. With one
//!   local link per router pair this level has no routing choice left, but
//!   it still learns accurate per-hop delivery estimates, which sharpens the
//!   feedback values propagated to level 1.
//!
//! Tables start from *static topology-derived estimates* (pure hop latency,
//! zero queueing — i.e. no traffic knowledge), matching the paper's setup
//! where Q-adaptive "starts an application under the same condition as
//! adaptive routing without any pre-trained information" and training time
//! is charged to the measured communication time. Updates are exponentially
//! weighted: `q ← (1−α)·q + α·sample`.

use dfsim_des::Time;
use dfsim_topology::{Endpoint, GroupId, LinkKind, Port, RouterId, Topology};

use dfsim_topology::LinkTiming;

/// Per-router two-level Q-table.
#[derive(Debug, Clone)]
pub struct QTable {
    radix: usize,
    groups: usize,
    /// Level 1: `[group * radix + port]`, estimated delivery ps. `INFINITY`
    /// marks illegal ports (terminals, disconnected globals).
    q1: Vec<f64>,
    /// Level 2: `[local_router_idx * radix + port]`.
    q2: Vec<f64>,
    /// Learning rate.
    alpha: f64,
}

impl QTable {
    /// Build the table for `router`, initialized with static estimates.
    pub fn new(topo: &Topology, router: RouterId, timing: &LinkTiming, alpha: f64) -> Self {
        let radix = topo.radix() as usize;
        let groups = topo.num_groups() as usize;
        let a = topo.params().routers_per_group as usize;
        let mut q1 = vec![f64::INFINITY; groups * radix];
        let mut q2 = vec![f64::INFINITY; a * radix];

        let ser = timing.packet_serialize() as f64;
        let local = ser + timing.local_latency_ps as f64;
        let global = ser + timing.global_latency_ps as f64;
        let term = ser + timing.terminal_latency_ps as f64;
        let my_group = topo.group_of_router(router);

        for p in 0..radix as u8 {
            let port = Port(p);
            let Some(Endpoint::Router { router: next, .. }) = topo.endpoint(router, port) else {
                continue; // terminal or disconnected: stays INFINITY
            };
            let hop_cost = match topo.port_kind(port) {
                LinkKind::Local => local,
                LinkKind::Global => global,
                // lint: allow(no-panic-paths) — the `let else` above already skipped every port whose endpoint is not a router, and terminal ports never lead to routers
                LinkKind::Terminal => unreachable!("router endpoint on terminal port"),
            };
            let next_group = topo.group_of_router(next);
            for g in 0..groups as u32 {
                let dst_group = GroupId(g);
                // Remaining minimal cost from `next` to somewhere in dst_group
                // plus the final terminal leg (average case: one local hop
                // inside the destination group).
                let remaining = if next_group == dst_group {
                    local + term
                } else {
                    let (gw, _) = topo
                        .gateway(next_group, dst_group)
                        // lint: allow(no-panic-paths) — a canonical dragonfly is all-to-all at the group level: every distinct group pair has exactly one gateway (pinned by the topology suite)
                        .expect("distinct groups have a gateway");
                    let to_gw = if gw == next { 0.0 } else { local };
                    to_gw + global + local + term
                };
                q1[g as usize * radix + p as usize] = hop_cost + remaining;
            }
            // Level 2: same-group targets, local ports only.
            if next_group == my_group {
                for l in 0..a {
                    let target = topo.router_in_group(my_group, l as u32);
                    let rem = if next == target { term } else { local + term };
                    q2[l * radix + p as usize] = hop_cost + rem;
                }
            }
        }
        Self { radix, groups, q1, q2, alpha }
    }

    /// Level-1 value: estimated delivery time to `dst_group` via `port`.
    #[inline]
    pub fn q1(&self, dst_group: GroupId, port: Port) -> f64 {
        self.q1[dst_group.idx() * self.radix + port.idx()]
    }

    /// Level-2 value: estimated delivery time to the same-group router with
    /// local index `dst_local` via `port`.
    #[inline]
    pub fn q2(&self, dst_local: u32, port: Port) -> f64 {
        self.q2[dst_local as usize * self.radix + port.idx()]
    }

    /// EWMA update of the level-1 entry.
    #[inline]
    pub fn update1(&mut self, dst_group: GroupId, port: Port, sample: Time) {
        let q = &mut self.q1[dst_group.idx() * self.radix + port.idx()];
        if q.is_finite() {
            *q = (1.0 - self.alpha) * *q + self.alpha * sample as f64;
        } else {
            *q = sample as f64;
        }
    }

    /// EWMA update of the level-2 entry.
    #[inline]
    pub fn update2(&mut self, dst_local: u32, port: Port, sample: Time) {
        let q = &mut self.q2[dst_local as usize * self.radix + port.idx()];
        if q.is_finite() {
            *q = (1.0 - self.alpha) * *q + self.alpha * sample as f64;
        } else {
            *q = sample as f64;
        }
    }

    /// Minimum level-1 value over all legal ports — the router's own
    /// remaining-delivery estimate for `dst_group`, fed back to neighbours.
    pub fn best1(&self, dst_group: GroupId) -> f64 {
        let base = dst_group.idx() * self.radix;
        self.q1[base..base + self.radix].iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Minimum level-2 value over all ports for a same-group destination.
    pub fn best2(&self, dst_local: u32) -> f64 {
        let base = dst_local as usize * self.radix;
        self.q2[base..base + self.radix].iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Number of groups covered.
    pub fn groups(&self) -> usize {
        self.groups
    }

    /// The learning rate.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Rebuild a table from raw level-1/level-2 value arrays (snapshot
    /// warm-start). Lengths must match the `[groups * radix]` /
    /// `[a * radix]` layouts the snapshot recorded.
    pub(crate) fn from_raw(
        radix: usize,
        groups: usize,
        q1: Vec<f64>,
        q2: Vec<f64>,
        alpha: f64,
    ) -> Self {
        debug_assert_eq!(q1.len(), groups * radix, "q1 layout mismatch");
        debug_assert!(q2.len().is_multiple_of(radix.max(1)), "q2 layout mismatch");
        Self { radix, groups, q1, q2, alpha }
    }

    /// Raw level-1 values, `[dst_group * radix + port]` (snapshot capture).
    pub(crate) fn q1_raw(&self) -> &[f64] {
        &self.q1
    }

    /// Overwrite one level-1 cell (partitioned-run rollback of updates that
    /// landed after the logical end of the run).
    pub(crate) fn set1_raw(&mut self, dst_group: GroupId, port: Port, v: f64) {
        self.q1[dst_group.idx() * self.radix + port.idx()] = v;
    }

    /// Overwrite one level-2 cell (partitioned-run rollback).
    pub(crate) fn set2_raw(&mut self, dst_local: u32, port: Port, v: f64) {
        self.q2[dst_local as usize * self.radix + port.idx()] = v;
    }

    /// Raw level-2 values, `[local_router * radix + port]` (snapshot capture).
    pub(crate) fn q2_raw(&self) -> &[f64] {
        &self.q2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfsim_topology::DragonflyParams;

    fn setup() -> (Topology, QTable) {
        let topo = Topology::new(DragonflyParams::paper_1056()).unwrap();
        let t = QTable::new(&topo, RouterId(0), &LinkTiming::default(), 0.1);
        (topo, t)
    }

    #[test]
    fn init_prefers_direct_global_port() {
        let (topo, t) = setup();
        // Router 0's global ports (11..15) reach groups 1..=4 directly.
        let direct = topo.global_port_target(RouterId(0), Port(11)).unwrap();
        let q_direct = t.q1(direct, Port(11));
        // Any local port adds at least one hop for that group.
        for p in 4..11u8 {
            assert!(
                t.q1(direct, Port(p)) > q_direct,
                "local port {p} should be slower than direct global"
            );
        }
        // Terminal ports are illegal.
        assert!(t.q1(direct, Port(0)).is_infinite());
    }

    #[test]
    fn init_estimates_are_positive_and_finite_for_router_ports() {
        let (_, t) = setup();
        for g in 0..33u32 {
            if g == 0 {
                continue; // own group handled by level 2
            }
            for p in 4..15u8 {
                let v = t.q1(GroupId(g), Port(p));
                assert!(v.is_finite() && v > 0.0, "q1[{g}][{p}] = {v}");
            }
        }
    }

    #[test]
    fn update_moves_towards_sample() {
        let (_, mut t) = setup();
        let g = GroupId(5);
        let p = Port(12);
        let before = t.q1(g, p);
        let sample = (before * 3.0) as Time;
        t.update1(g, p, sample);
        let after = t.q1(g, p);
        assert!(after > before && after < sample as f64);
        // EWMA with alpha = 0.1.
        assert!((after - (0.9 * before + 0.1 * sample as f64)).abs() < 1e-6);
    }

    #[test]
    fn best1_is_min_over_ports() {
        let (_, mut t) = setup();
        let g = GroupId(7);
        let best_before = t.best1(g);
        // Repeated near-zero samples converge the entry below the old best.
        for _ in 0..200 {
            t.update1(g, Port(13), 1);
        }
        assert!(t.best1(g) < best_before);
    }

    #[test]
    fn level2_local_ports_finite_globals_infinite() {
        let (topo, t) = setup();
        // Level 2 towards local router 3: local port finite, global infinite.
        let lp = topo.local_port(RouterId(0), RouterId(3)).unwrap();
        assert!(t.q2(3, lp).is_finite());
        assert!(t.q2(3, Port(11)).is_infinite());
        assert!(t.best2(3).is_finite());
    }
}
