//! PAR: Progressive Adaptive Routing (Jiang et al. [6]; paper §II-B).
//!
//! PAR behaves like UGALn at the source router but keeps the minimal
//! decision *revisable*: every router the packet visits inside its source
//! group re-runs the min/non-min comparison with its own (fresher, closer to
//! the congestion) queue state, and may divert the packet onto a Valiant
//! path. Once the packet leaves the source group — or has been diverted —
//! the decision is final.

use dfsim_des::Time;
use dfsim_topology::paths::PathPlan;
use dfsim_topology::{LinkTiming, Topology};

use crate::packet::Packet;
use crate::router::Router;
use crate::routing::{ugal, RoutingConfig};

/// Re-evaluate a minimal plan at a source-group router. Returns the new
/// non-minimal plan if this router's queues say the minimal exit is
/// congested, `None` to keep going minimally.
pub fn revise(
    router: &mut Router,
    topo: &Topology,
    timing: &LinkTiming,
    cfg: &RoutingConfig,
    now: Time,
    pkt: &Packet,
) -> Option<PathPlan> {
    let src_group = topo.group_of_router(router.id);
    let dst_group = topo.group_of_node(pkt.dst);
    if src_group == dst_group || topo.num_groups() < 3 {
        return None;
    }
    let pser = timing.packet_serialize();
    let p_min = topo.min_next_port(router.id, pkt.dst);
    let q_min = router.congestion_packets(p_min, now, timing.buffer_packets, pser);
    let (q_non, via) = ugal::sample_detour(router, topo, timing, cfg, now, src_group, dst_group)?;
    if (q_min as i64) <= 2 * q_non as i64 + cfg.ugal_bias {
        return None;
    }
    // PAR diverts like UGALn: via a random router of the chosen group.
    let a = topo.params().routers_per_group;
    let via_router = topo.router_in_group(via, router.rng.below(a as u64) as u32);
    Some(PathPlan::NonMinimalRouter { via: via_router })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{MessageId, RouteState};
    use dfsim_des::SimRng;
    use dfsim_metrics::AppId;
    use dfsim_topology::{DragonflyParams, NodeId, RouterId};

    fn setup() -> (Topology, Router, RoutingConfig, LinkTiming) {
        let topo = Topology::new(DragonflyParams::paper_1056()).unwrap();
        let router = Router::new(&topo, RouterId(1), 6, 30, None, SimRng::new(3));
        (topo, router, RoutingConfig::default(), LinkTiming::default())
    }

    fn pkt(dst: u32) -> Packet {
        Packet {
            id: 0,
            msg: MessageId(0),
            app: AppId(0),
            src: NodeId(0),
            dst: NodeId(dst),
            bytes: 512,
            injected_at: 0,
            arrived_at_hop: 0,
            hops: 1,
            state: RouteState::Fresh,
            cached_port: None,
        }
    }

    #[test]
    fn quiet_router_does_not_revise() {
        let (topo, mut r, cfg, timing) = setup();
        assert_eq!(revise(&mut r, &topo, &timing, &cfg, 0, &pkt(1000)), None);
    }

    #[test]
    fn congested_exit_revises_to_router_valiant() {
        let (topo, mut r, cfg, timing) = setup();
        let p = pkt(1000);
        let p_min = topo.min_next_port(r.id, p.dst);
        for vc in 0..6u8 {
            for _ in 0..30 {
                r.take_credit(p_min, vc);
            }
        }
        match revise(&mut r, &topo, &timing, &cfg, 0, &p) {
            Some(PathPlan::NonMinimalRouter { .. }) => {}
            other => panic!("expected revision, got {other:?}"),
        }
    }

    #[test]
    fn same_group_destination_never_revises() {
        let (topo, mut r, cfg, timing) = setup();
        assert_eq!(revise(&mut r, &topo, &timing, &cfg, 0, &pkt(20)), None);
    }
}
