//! Routing algorithms: MIN, UGALg, UGALn, PAR and Q-adaptive (paper §II-B).
//!
//! All algorithms share one entry point, [`decide`], called once per router
//! visit when a packet first reaches the head of its input VC (the decision
//! is cached across blocked retries). The algorithms differ in *where* the
//! minimal/non-minimal choice is made and on *what information*:
//!
//! | Algorithm  | Decision point(s)                  | Information      |
//! |------------|------------------------------------|------------------|
//! | MIN        | none (always minimal)              | —                |
//! | UGALg      | source router, once                | local queues     |
//! | UGALn      | source router, once                | local queues     |
//! | PAR        | source router + source-group revisions | local queues |
//! | Q-adaptive | every source-group router          | learned Q-table  |

pub mod par;
pub mod qadaptive;
pub mod ugal;

use dfsim_des::Time;
use dfsim_topology::paths::{PathPlan, RouteProgress};
use dfsim_topology::{LinkTiming, Port, Topology};

use crate::packet::{Packet, RouteState};
use crate::router::Router;
use crate::snapshot::QTableInit;

/// Which routing algorithm a simulation runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RoutingAlgo {
    /// Always-minimal baseline (not in the paper's comparison, kept as an
    /// ablation: §II-B explains why it loses on Dragonfly).
    Minimal,
    /// UGAL with group-level Valiant detours.
    UgalG,
    /// UGAL with router-level (node) Valiant detours.
    UgalN,
    /// Progressive Adaptive Routing: minimal first, revisable within the
    /// source group.
    Par,
    /// Q-adaptive reinforcement-learning routing.
    QAdaptive,
}

impl RoutingAlgo {
    /// Every selectable algorithm (the paper set plus the MIN baseline) —
    /// the canonical registry order used by CLI/spec lookups everywhere.
    pub const ALL: [RoutingAlgo; 5] = [
        RoutingAlgo::Minimal,
        RoutingAlgo::UgalG,
        RoutingAlgo::UgalN,
        RoutingAlgo::Par,
        RoutingAlgo::QAdaptive,
    ];

    /// The four algorithms the paper evaluates (Figs 4, 10, 13a).
    pub const PAPER_SET: [RoutingAlgo; 4] =
        [RoutingAlgo::UgalG, RoutingAlgo::UgalN, RoutingAlgo::Par, RoutingAlgo::QAdaptive];

    /// Display label matching the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            RoutingAlgo::Minimal => "MIN",
            RoutingAlgo::UgalG => "UGALg",
            RoutingAlgo::UgalN => "UGALn",
            RoutingAlgo::Par => "PAR",
            RoutingAlgo::QAdaptive => "Q-adp",
        }
    }
}

impl std::fmt::Display for RoutingAlgo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Q-adaptive hyperparameters ("same hyperparameters as in [14]" — the
/// reproduced text does not list the values, so they are configurable with
/// defaults chosen to converge within a fraction of one run; `DESIGN.md` §5).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QaParams {
    /// EWMA learning rate.
    pub alpha: f64,
    /// ε-greedy exploration probability.
    pub epsilon: f64,
}

impl Default for QaParams {
    fn default() -> Self {
        Self { alpha: 0.2, epsilon: 0.005 }
    }
}

/// Full routing configuration.
///
/// Not `Copy`: [`QTableInit::Load`] carries the snapshot path, so configs
/// clone explicitly wherever they fan out across runs.
#[derive(Debug, Clone, PartialEq)]
pub struct RoutingConfig {
    /// The algorithm.
    pub algo: RoutingAlgo,
    /// UGAL bias towards the minimal path, in packets (paper: 0).
    pub ugal_bias: i64,
    /// Non-minimal candidate paths sampled per UGAL decision (paper: 2).
    pub nonmin_samples: usize,
    /// Q-adaptive hyperparameters.
    pub qa: QaParams,
    /// How Q-adaptive Q-tables start: cold (static topology estimates, the
    /// paper's setting) or warm-started from a fingerprint-checked snapshot.
    /// Ignored by every other algorithm (validated upstream in
    /// `dfsim-core`'s `SimConfig::validate`).
    pub qtable_init: QTableInit,
}

impl RoutingConfig {
    /// Config for an algorithm with the paper's defaults (cold start).
    pub fn new(algo: RoutingAlgo) -> Self {
        Self {
            algo,
            ugal_bias: 0,
            nonmin_samples: 2,
            qa: QaParams::default(),
            qtable_init: QTableInit::Cold,
        }
    }

    /// This config, warm-starting Q-tables from `init`.
    pub fn with_qtable_init(self, init: QTableInit) -> Self {
        Self { qtable_init: init, ..self }
    }
}

impl Default for RoutingConfig {
    fn default() -> Self {
        Self::new(RoutingAlgo::UgalG)
    }
}

/// Decide the output port for `pkt` at `router`, updating the packet's
/// routing state. Called once per router visit (the result is cached in
/// `pkt.cached_port` by the caller).
pub fn decide(
    router: &mut Router,
    topo: &Topology,
    timing: &LinkTiming,
    cfg: &RoutingConfig,
    now: Time,
    pkt: &mut Packet,
) -> Port {
    let dst_router = topo.router_of_node(pkt.dst);
    if dst_router == router.id {
        return topo.terminal_port(pkt.dst);
    }
    loop {
        match pkt.state {
            RouteState::Fresh => {
                pkt.state = initial_state(router, topo, timing, cfg, now, pkt);
            }
            RouteState::QDeciding { local_hops } => {
                return qadaptive::step(router, topo, timing, cfg, now, pkt, local_hops);
            }
            RouteState::Planned { mut progress, revisable } => {
                let src_group = topo.group_of_node(pkt.src);
                let here = topo.group_of_router(router.id);
                let mut revisable = revisable && here == src_group;
                if revisable && cfg.algo == RoutingAlgo::Par && progress.plan == PathPlan::Minimal {
                    if let Some(plan) = par::revise(router, topo, timing, cfg, now, pkt) {
                        progress = RouteProgress::new(plan);
                        revisable = false;
                    }
                }
                let port = progress.next_port(topo, router.id, pkt.dst);
                pkt.state = RouteState::Planned { progress, revisable };
                return port;
            }
        }
    }
}

/// The state a fresh packet adopts at its source router.
fn initial_state(
    router: &mut Router,
    topo: &Topology,
    timing: &LinkTiming,
    cfg: &RoutingConfig,
    now: Time,
    pkt: &Packet,
) -> RouteState {
    let same_group = topo.group_of_node(pkt.src) == topo.group_of_node(pkt.dst);
    match cfg.algo {
        RoutingAlgo::Minimal => RouteState::Planned {
            progress: RouteProgress::new(PathPlan::Minimal),
            revisable: false,
        },
        RoutingAlgo::UgalG | RoutingAlgo::UgalN => {
            let node_valiant = cfg.algo == RoutingAlgo::UgalN;
            let plan = ugal::choose_plan(router, topo, timing, cfg, now, pkt, node_valiant);
            RouteState::Planned { progress: RouteProgress::new(plan), revisable: false }
        }
        RoutingAlgo::Par => {
            // PAR starts with the same source decision as UGALn and may
            // revise a minimal choice at downstream source-group routers.
            let plan = ugal::choose_plan(router, topo, timing, cfg, now, pkt, true);
            let revisable = plan == PathPlan::Minimal;
            RouteState::Planned { progress: RouteProgress::new(plan), revisable }
        }
        RoutingAlgo::QAdaptive => {
            if same_group {
                RouteState::Planned {
                    progress: RouteProgress::new(PathPlan::Minimal),
                    revisable: false,
                }
            } else {
                RouteState::QDeciding { local_hops: 0 }
            }
        }
    }
}
