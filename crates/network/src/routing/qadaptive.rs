//! Q-adaptive routing decisions (Kang et al., HPDC'21 [14]; paper §II-B).
//!
//! While the packet is still inside its *source group*, every router it
//! visits scores all legal output ports as
//!
//! ```text
//! score(p) = queue_delay(p) + Q1[dst_group][p]
//! ```
//!
//! — the current local queueing delay plus the learned estimate of the
//! remaining delivery time — and forwards through the arg-min (ε-greedy).
//! Choosing a global port commits the packet: directly to the destination
//! group (minimal) or into an intermediate group (one Valiant detour, after
//! which routing is minimal). Choosing a local port keeps the decision open
//! at the next router, bounded to two local hops so path length stays within
//! the VC budget. Once outside the source group the committed plan is a pure
//! function of the topology.

use dfsim_des::Time;
use dfsim_topology::paths::{PathPlan, RouteProgress};
use dfsim_topology::{LinkKind, LinkTiming, Port, Topology};

use crate::packet::{Packet, RouteState};
use crate::router::{PortPeer, Router};
use crate::routing::RoutingConfig;

/// Maximum intra-source-group local hops before the packet must commit to a
/// global port. One wander hop reaches every router of the source group —
/// and with it every possible intermediate group — while keeping local-link
/// churn low (the HPDC'21 design also makes at most one in-group move
/// before committing).
pub const MAX_LOCAL_WANDER: u8 = 1;

/// What committing to a candidate port means for the packet state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Commit {
    /// Global port straight to the destination group.
    Minimal,
    /// Global port into an intermediate group (Valiant detour).
    Via(dfsim_topology::GroupId),
    /// Local port: keep deciding at the next router.
    Wander,
    /// The minimal local port towards the gateway, chosen at the wander
    /// limit: commits the rest of the path to the minimal plan.
    MinPlan,
}

/// One Q-adaptive decision step at a source-group router.
pub fn step(
    router: &mut Router,
    topo: &Topology,
    timing: &LinkTiming,
    cfg: &RoutingConfig,
    now: Time,
    pkt: &mut Packet,
    local_hops: u8,
) -> Port {
    let dst_group = topo.group_of_node(pkt.dst);
    debug_assert_ne!(topo.group_of_router(router.id), dst_group, "QDeciding outside source");
    let pser = timing.packet_serialize();

    // Gather candidates: (port, commit action, score). The minimal next
    // port is *always* a candidate — at the wander limit a minimal local
    // port commits the whole remaining path, so the limit never forces an
    // unwanted detour.
    let p_min = topo.min_next_port(router.id, pkt.dst);
    let mut cands: Vec<(Port, Commit, f64)> = Vec::with_capacity(router.radix());
    for p in 0..router.radix() as u8 {
        let port = Port(p);
        let PortPeer::Router(..) = router.peer(port) else {
            continue;
        };
        let commit = match topo.port_kind(port) {
            LinkKind::Global => {
                let Some(target) = topo.global_port_target(router.id, port) else {
                    continue;
                };
                if target == dst_group {
                    Commit::Minimal
                } else {
                    Commit::Via(target)
                }
            }
            LinkKind::Local => {
                if local_hops < MAX_LOCAL_WANDER {
                    Commit::Wander
                } else if port == p_min {
                    Commit::MinPlan
                } else {
                    continue;
                }
            }
            LinkKind::Terminal => continue,
        };
        // lint: allow(no-panic-paths) — `NetworkSim::new` installs a Q-table on every router when the algo is Q-adaptive, and this path is only reached under that algo
        let qtable = router.qtable.as_ref().expect("Q-adaptive router has a Q-table");
        let q = qtable.q1(dst_group, port);
        if !q.is_finite() {
            continue;
        }
        let queue_delay =
            router.congestion_packets(port, now, timing.buffer_packets, pser) as f64 * pser as f64;
        cands.push((port, commit, queue_delay + q));
    }

    if cands.is_empty() {
        // Degenerate topology (no usable global port): fall back to the
        // minimal plan from here.
        let mut progress = RouteProgress::new(PathPlan::Minimal);
        let port = progress.next_port(topo, router.id, pkt.dst);
        pkt.state = RouteState::Planned { progress, revisable: false };
        return port;
    }

    // ε-greedy selection.
    let choice = if router.rng.chance(cfg.qa.epsilon) {
        router.rng.index(cands.len())
    } else {
        let mut best = 0;
        for (i, c) in cands.iter().enumerate().skip(1) {
            if c.2 < cands[best].2 {
                best = i;
            }
        }
        best
    };
    let (port, commit, _) = cands[choice];

    pkt.state = match commit {
        Commit::Minimal | Commit::MinPlan => RouteState::Planned {
            progress: RouteProgress::new(PathPlan::Minimal),
            revisable: false,
        },
        Commit::Via(g) => RouteState::Planned {
            progress: RouteProgress::new(PathPlan::NonMinimalGroup { via: g }),
            revisable: false,
        },
        Commit::Wander => RouteState::QDeciding { local_hops: local_hops + 1 },
    };
    port
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::MessageId;
    use crate::qtable::QTable;
    use dfsim_des::SimRng;
    use dfsim_metrics::AppId;
    use dfsim_topology::{DragonflyParams, GroupId, NodeId, RouterId};

    fn setup(router: u32) -> (Topology, Router, RoutingConfig, LinkTiming) {
        let topo = Topology::new(DragonflyParams::paper_1056()).unwrap();
        let timing = LinkTiming::default();
        let qt = QTable::new(&topo, RouterId(router), &timing, 0.1);
        let mut cfg = RoutingConfig::new(crate::routing::RoutingAlgo::QAdaptive);
        cfg.qa.epsilon = 0.0; // deterministic tests
        let r = Router::new(&topo, RouterId(router), 6, 30, Some(qt), SimRng::new(11));
        (topo, r, cfg, timing)
    }

    fn pkt(dst: u32) -> Packet {
        Packet {
            id: 0,
            msg: MessageId(0),
            app: AppId(0),
            src: NodeId(0),
            dst: NodeId(dst),
            bytes: 512,
            injected_at: 0,
            arrived_at_hop: 0,
            hops: 0,
            state: RouteState::QDeciding { local_hops: 0 },
            cached_port: None,
        }
    }

    #[test]
    fn cold_table_quiet_network_picks_minimal_route() {
        // Router 0 has a direct global link to group 1 (port 11): with static
        // estimates and no queueing that is the best-scoring candidate for a
        // group-1 destination.
        let (topo, mut r, cfg, timing) = setup(0);
        let dst = topo.nodes_of_router(RouterId(8)).next().unwrap(); // group 1
        let mut p = pkt(dst.0);
        let port = step(&mut r, &topo, &timing, &cfg, 0, &mut p, 0);
        assert_eq!(topo.global_port_target(RouterId(0), port), Some(GroupId(1)));
        assert!(matches!(
            p.state,
            RouteState::Planned { progress, .. } if progress.plan == PathPlan::Minimal
        ));
    }

    #[test]
    fn congested_direct_port_diverts() {
        let (topo, mut r, cfg, timing) = setup(0);
        // Destination in group 1, reached via port 11.
        let dst = topo.nodes_of_router(RouterId(8)).next().unwrap();
        // Saturate the direct port's downstream credits so its queue delay
        // dominates any detour estimate.
        for vc in 0..6u8 {
            for _ in 0..30 {
                r.take_credit(Port(11), vc);
            }
        }
        let mut p = pkt(dst.0);
        let port = step(&mut r, &topo, &timing, &cfg, 0, &mut p, 0);
        assert_ne!(port, Port(11), "should not choose the saturated direct port");
    }

    #[test]
    fn local_wander_exhausted_forces_commitment() {
        let (topo, mut r, cfg, timing) = setup(0);
        let dst = 1000; // group 31
        let mut p = pkt(dst);
        let port = step(&mut r, &topo, &timing, &cfg, 0, &mut p, MAX_LOCAL_WANDER);
        // At the limit the packet must commit a plan: either a global port
        // or the minimal local port towards the gateway.
        assert!(matches!(p.state, RouteState::Planned { .. }));
        if topo.port_kind(port) == LinkKind::Local {
            assert_eq!(port, topo.min_next_port(RouterId(0), NodeId(dst)));
        }
    }

    #[test]
    fn learned_congestion_redirects_traffic() {
        let (topo, mut r, cfg, timing) = setup(0);
        let dst = topo.nodes_of_router(RouterId(8)).next().unwrap();
        // Poison the learned estimate of the direct port (as if feedback
        // reported huge delays) — traffic should avoid it even though the
        // local queue is empty.
        r.qtable.as_mut().unwrap().update1(GroupId(1), Port(11), 1_000_000_000_000);
        let mut p = pkt(dst.0);
        let port = step(&mut r, &topo, &timing, &cfg, 0, &mut p, 0);
        assert_ne!(port, Port(11));
    }

    #[test]
    fn wander_increments_local_hops() {
        let (topo, mut r, cfg, timing) = setup(0);
        let dst = topo.nodes_of_router(RouterId(8)).next().unwrap();
        // Make every global port look terrible so a local port wins.
        let qt = r.qtable.as_mut().unwrap();
        for g in 1..33u32 {
            for port in 11..15u8 {
                qt.update1(GroupId(g), Port(port), 1_000_000_000_000);
            }
        }
        let mut p = pkt(dst.0);
        let port = step(&mut r, &topo, &timing, &cfg, 0, &mut p, 0);
        assert_eq!(topo.port_kind(port), LinkKind::Local);
        assert_eq!(p.state, RouteState::QDeciding { local_hops: 1 });
    }
}
