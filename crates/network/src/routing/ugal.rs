//! UGAL: Universal Globally-Adaptive Load-balanced routing.
//!
//! The source router compares the (unique) minimal path against the best of
//! `nonmin_samples` randomly sampled Valiant paths by first-hop queue
//! occupancy; the packet goes minimal iff
//! `q_min ≤ 2·q_nonmin + bias` (paper §II-B: "when the best minimal path
//! queue occupancy is less than twice of the best non-minimal path queue
//! occupancy, the packet is minimally forwarded"). UGALg then routes
//! minimally inside the intermediate group while UGALn first visits a random
//! router there (§II-B).

use dfsim_des::Time;
use dfsim_topology::paths::{port_toward_group, PathPlan};
use dfsim_topology::{GroupId, LinkTiming, Topology};

use crate::packet::Packet;
use crate::router::Router;
use crate::routing::RoutingConfig;

/// Source-router UGAL decision. `node_valiant` selects the UGALn variant.
pub fn choose_plan(
    router: &mut Router,
    topo: &Topology,
    timing: &LinkTiming,
    cfg: &RoutingConfig,
    now: Time,
    pkt: &Packet,
    node_valiant: bool,
) -> PathPlan {
    let src_group = topo.group_of_router(router.id);
    let dst_group = topo.group_of_node(pkt.dst);
    let groups = topo.num_groups();
    if src_group == dst_group || groups < 3 {
        // Intra-group traffic (or no possible detour) goes minimally: a
        // single local hop cannot be beaten by a Valiant path here.
        return PathPlan::Minimal;
    }

    let pser = timing.packet_serialize();
    let p_min = topo.min_next_port(router.id, pkt.dst);
    let q_min = router.congestion_packets(p_min, now, timing.buffer_packets, pser);

    let best = sample_detour(router, topo, timing, cfg, now, src_group, dst_group);
    let Some((q_non, via)) = best else {
        return PathPlan::Minimal;
    };

    if (q_min as i64) <= 2 * q_non as i64 + cfg.ugal_bias {
        PathPlan::Minimal
    } else if node_valiant {
        let a = topo.params().routers_per_group;
        let via_router = topo.router_in_group(via, router.rng.below(a as u64) as u32);
        PathPlan::NonMinimalRouter { via: via_router }
    } else {
        PathPlan::NonMinimalGroup { via }
    }
}

/// Sample `nonmin_samples` intermediate groups and return the least-congested
/// candidate as `(queue occupancy, group)`.
pub(crate) fn sample_detour(
    router: &mut Router,
    topo: &Topology,
    timing: &LinkTiming,
    cfg: &RoutingConfig,
    now: Time,
    src_group: GroupId,
    dst_group: GroupId,
) -> Option<(u64, GroupId)> {
    let groups = topo.num_groups();
    let pser = timing.packet_serialize();
    let mut best: Option<(u64, GroupId)> = None;
    for _ in 0..cfg.nonmin_samples {
        // Rejection-sample an intermediate group distinct from both ends.
        let via = loop {
            let g = GroupId(router.rng.below(groups as u64) as u32);
            if g != src_group && g != dst_group {
                break g;
            }
        };
        let first_hop = port_toward_group(topo, router.id, via);
        let q = router.congestion_packets(first_hop, now, timing.buffer_packets, pser);
        if best.is_none_or(|(bq, _)| q < bq) {
            best = Some((q, via));
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{MessageId, RouteState};
    use dfsim_des::SimRng;
    use dfsim_metrics::AppId;
    use dfsim_topology::{DragonflyParams, NodeId, RouterId};

    fn setup() -> (Topology, Router, RoutingConfig, LinkTiming) {
        let topo = Topology::new(DragonflyParams::paper_1056()).unwrap();
        let router = Router::new(&topo, RouterId(0), 6, 30, None, SimRng::new(7));
        (topo, router, RoutingConfig::default(), LinkTiming::default())
    }

    fn pkt(dst: u32) -> Packet {
        Packet {
            id: 0,
            msg: MessageId(0),
            app: AppId(0),
            src: NodeId(0),
            dst: NodeId(dst),
            bytes: 512,
            injected_at: 0,
            arrived_at_hop: 0,
            hops: 0,
            state: RouteState::Fresh,
            cached_port: None,
        }
    }

    #[test]
    fn uncongested_network_routes_minimally() {
        let (topo, mut r, cfg, timing) = setup();
        let p = pkt(1000);
        for _ in 0..50 {
            let plan = choose_plan(&mut r, &topo, &timing, &cfg, 0, &p, false);
            assert_eq!(plan, PathPlan::Minimal);
        }
    }

    #[test]
    fn congested_minimal_port_triggers_detour() {
        let (topo, mut r, cfg, timing) = setup();
        let p = pkt(1000);
        let p_min = topo.min_next_port(r.id, p.dst);
        // Exhaust downstream credits on the minimal first hop.
        for vc in 0..6u8 {
            for _ in 0..30 {
                r.take_credit(p_min, vc);
            }
        }
        let mut nonmin = 0;
        for _ in 0..50 {
            if choose_plan(&mut r, &topo, &timing, &cfg, 0, &p, false).is_nonminimal() {
                nonmin += 1;
            }
        }
        assert_eq!(nonmin, 50, "a fully backed-up minimal port must always lose");
    }

    #[test]
    fn node_valiant_picks_router_level_via() {
        let (topo, mut r, cfg, timing) = setup();
        let p = pkt(1000);
        let p_min = topo.min_next_port(r.id, p.dst);
        for vc in 0..6u8 {
            for _ in 0..30 {
                r.take_credit(p_min, vc);
            }
        }
        match choose_plan(&mut r, &topo, &timing, &cfg, 0, &p, true) {
            PathPlan::NonMinimalRouter { via } => {
                let vg = topo.group_of_router(via);
                assert_ne!(vg, topo.group_of_node(p.src));
                assert_ne!(vg, topo.group_of_node(p.dst));
            }
            other => panic!("expected router-level detour, got {other:?}"),
        }
    }

    #[test]
    fn same_group_always_minimal() {
        let (topo, mut r, cfg, timing) = setup();
        let p = pkt(20); // node 20 → router 5, group 0 (same as src)
        assert_eq!(choose_plan(&mut r, &topo, &timing, &cfg, 0, &p, true), PathPlan::Minimal);
    }

    #[test]
    fn bias_shifts_the_threshold() {
        let (topo, mut r, mut cfg, timing) = setup();
        // Huge positive bias: minimal always wins even when congested.
        cfg.ugal_bias = 1_000_000;
        let p = pkt(1000);
        let p_min = topo.min_next_port(r.id, p.dst);
        for vc in 0..6u8 {
            for _ in 0..30 {
                r.take_credit(p_min, vc);
            }
        }
        assert_eq!(choose_plan(&mut r, &topo, &timing, &cfg, 0, &p, false), PathPlan::Minimal);
    }

    #[test]
    fn detour_sampler_avoids_endpoint_groups() {
        let (topo, mut r, cfg, timing) = setup();
        for _ in 0..100 {
            let (_, via) =
                sample_detour(&mut r, &topo, &timing, &cfg, 0, GroupId(0), GroupId(31)).unwrap();
            assert_ne!(via, GroupId(0));
            assert_ne!(via, GroupId(31));
        }
    }
}
