//! [`NetworkSim`]: the event-driven network model.
//!
//! The world loop (in `dfsim-core`) pops events and calls [`NetworkSim::handle`];
//! the network schedules its own follow-up events through the [`Scheduler`]
//! and surfaces transport-level effects (message injected / delivered) that
//! the MPI layer consumes. See the crate docs for the router model.

use std::collections::BTreeMap;
use std::sync::Arc;

use dfsim_des::{Scheduler, Time};
use dfsim_metrics::{AppId, Recorder};
use dfsim_topology::{GroupId, LinkKind, LinkTiming, NodeId, Port, RouterId, Topology};

use crate::events::{NetEffect, NetEvent};
use crate::nic::Nic;
use crate::packet::{MessageId, Packet, PacketSizes, RouteState};
use crate::partition::{self, MsgExport, PartitionMap, QUndoEntry};
use crate::qtable::QTable;
use crate::router::{PortPeer, Router};
use crate::routing::{self, RoutingAlgo, RoutingConfig};
use crate::snapshot::{QTableInit, QTableSnapshot};
use crate::NUM_VCS;

/// Minimum payload of a pure-control packet (rendezvous RTS/CTS, zero-byte
/// sends): half a flit of header.
pub const CONTROL_BYTES: u32 = 64;

/// Result of trying to service the head of one input VC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Service {
    Forwarded,
    Blocked,
    Empty,
}

/// Per-message delivery bookkeeping. Slots live in a slab indexed by
/// [`MessageId`]; completed messages are released back to a free list (see
/// [`NetworkSim::release_message`]) so long churn runs recycle ids instead
/// of growing the arrays without bound.
#[derive(Debug, Clone, Copy)]
struct MsgInfo {
    expected: u32,
    received: u32,
    /// Slab liveness guard (debug assertions against use-after-release).
    live: bool,
}

/// Per-shard partitioning state. Present only in partitioned runs; the
/// sequential engine never pays for the extra branches because `part` stays
/// `None`.
#[derive(Debug)]
struct PartState {
    map: Arc<PartitionMap>,
    me: usize,
    /// Delivery bookkeeping for messages owned by other shards, keyed by
    /// their tagged id. Lookup-only (never iterated), so the hash map cannot
    /// introduce nondeterminism.
    imported: BTreeMap<u64, MsgInfo>,
    /// Messages created this window whose packets will cross a boundary;
    /// drained by the driver at the next barrier and registered on the
    /// destination shard.
    pending_exports: Vec<MsgExport>,
    /// Tagged ids fully delivered (and released) here this window; drained
    /// by the driver and routed back to the origin shard so it can free its
    /// slab slot.
    pending_releases: Vec<u64>,
}

/// The network simulation state: every router, every NIC, in-flight
/// accounting and the routing configuration.
#[derive(Debug)]
pub struct NetworkSim {
    topo: Arc<Topology>,
    timing: LinkTiming,
    cfg: RoutingConfig,
    routers: Vec<Router>,
    nics: Vec<Nic>,
    /// Message slab (index = `MessageId`).
    msgs: Vec<MsgInfo>,
    /// Released slab slots awaiting reuse (LIFO, deterministic).
    free_msgs: Vec<u64>,
    next_packet_id: u64,
    in_flight: u64,
    flit_time: Time,
    /// Partitioned-run state (`None` in the sequential engine).
    part: Option<PartState>,
    /// Undo journal for Q-table updates, tagged with the key of the event
    /// being dispatched. Enabled by the partitioned driver so updates that
    /// land after the logical end of a run can be rolled back, keeping
    /// warm-start snapshots bit-identical to the sequential engine.
    q_undo: Option<Vec<QUndoEntry>>,
    /// `(time, seq)` key of the event currently being dispatched (only
    /// maintained when `q_undo` is enabled).
    event_key: (Time, u64),
}

impl NetworkSim {
    /// Build the network for `topo` under a routing configuration. `seed`
    /// derives all per-router randomness. The topology is shared by
    /// reference counting — runners keep their own handle for reporting
    /// without deep-cloning the structure per run.
    ///
    /// Under Q-adaptive routing with [`QTableInit::Load`], the Q-tables
    /// warm-start from the snapshot instead of the static topology
    /// estimates. The snapshot's fingerprint (topology parameters, link
    /// timing, α) must match this configuration exactly; a mismatch panics
    /// with the [`crate::SnapshotError`] message rather than silently
    /// applying stale estimates — CLI front-ends pre-validate with
    /// [`QTableSnapshot::verify`] to fail cleanly before a run starts.
    pub fn new(
        topo: Arc<Topology>,
        timing: LinkTiming,
        cfg: RoutingConfig,
        rng: &dfsim_des::SimRng,
    ) -> Self {
        let warm: Option<QTableSnapshot> = match (&cfg.algo, &cfg.qtable_init) {
            (RoutingAlgo::QAdaptive, QTableInit::Load(path)) => {
                // lint: allow(no-panic-paths) — warm-start setup before any simulation: a missing or unreadable snapshot file is a user-input error with no error channel out of the constructor
                let snap = QTableSnapshot::load(path).unwrap_or_else(|e| panic!("{e}"));
                // lint: allow(no-panic-paths) — a snapshot whose shape or alpha disagrees with this run would silently corrupt the warm start; stopping at setup is the only safe response
                snap.verify(topo.params(), &timing, cfg.qa.alpha).unwrap_or_else(|e| panic!("{e}"));
                Some(snap)
            }
            _ => None,
        };
        let routers = (0..topo.num_routers())
            .map(|r| {
                let id = RouterId(r);
                let qtable = (cfg.algo == RoutingAlgo::QAdaptive).then(|| match &warm {
                    Some(snap) => snap.table_for(r as usize),
                    None => QTable::new(&topo, id, &timing, cfg.qa.alpha),
                });
                Router::new(
                    &topo,
                    id,
                    NUM_VCS,
                    timing.buffer_packets,
                    qtable,
                    rng.derive_idx("router", r as u64),
                )
            })
            .collect();
        let nics =
            (0..topo.num_nodes()).map(|n| Nic::new(NodeId(n), timing.buffer_packets)).collect();
        let flit_time = timing.serialize(timing.flit_bytes);
        Self {
            topo,
            timing,
            cfg,
            routers,
            nics,
            msgs: Vec::new(),
            free_msgs: Vec::new(),
            next_packet_id: 0,
            in_flight: 0,
            flit_time,
            part: None,
            q_undo: None,
            event_key: (0, 0),
        }
    }

    // ---- partitioning ------------------------------------------------------

    /// Enter partitioned mode as shard `me` of `map`. Must be called before
    /// any traffic is sent; afterwards, messages addressed to foreign nodes
    /// produce export records (see [`NetworkSim::take_msg_exports`]) and
    /// foreign deliveries resolve against the imported-message table.
    pub fn set_partition(&mut self, map: Arc<PartitionMap>, me: usize) {
        assert!(me < map.parts(), "shard index out of range");
        debug_assert!(self.msgs.is_empty(), "set_partition after traffic started");
        self.part = Some(PartState {
            map,
            me,
            imported: BTreeMap::new(),
            pending_exports: Vec::new(),
            pending_releases: Vec::new(),
        });
    }

    /// Drain the export records of messages created since the last barrier
    /// whose packets will cross into another shard. The driver forwards each
    /// record (plus the matching MPI metadata) to the destination shard.
    pub fn take_msg_exports(&mut self) -> Vec<MsgExport> {
        self.part.as_mut().map_or_else(Vec::new, |ps| std::mem::take(&mut ps.pending_exports))
    }

    /// Drain the tagged ids of foreign messages fully delivered and released
    /// here since the last barrier. The driver routes each id back to its
    /// origin shard, which frees the slab slot via
    /// [`NetworkSim::release_exported_slot`].
    pub fn take_msg_releases(&mut self) -> Vec<u64> {
        self.part.as_mut().map_or_else(Vec::new, |ps| std::mem::take(&mut ps.pending_releases))
    }

    /// Register a foreign message (owned by another shard) so its packets
    /// can be delivered here. Driven by the barrier exchange of
    /// [`MsgExport`] records.
    pub fn import_message(&mut self, tagged: u64, expected: u32) {
        // lint: allow(no-panic-paths) — only the partitioned barrier exchange calls this, and it installs `part` at shard construction
        let ps = self.part.as_mut().expect("import outside a partitioned run");
        debug_assert!(partition::is_tagged(tagged), "importing an untagged message id");
        debug_assert_ne!(partition::origin_of(tagged), ps.me, "importing an owned message");
        let prev = ps.imported.insert(tagged, MsgInfo { expected, received: 0, live: true });
        debug_assert!(prev.is_none(), "duplicate message import");
    }

    /// Free the slab slot of a message this shard created whose packets were
    /// all delivered on a foreign shard (release notice from the barrier
    /// exchange).
    pub fn release_exported_slot(&mut self, tagged: u64) {
        debug_assert!(partition::is_tagged(tagged));
        debug_assert_eq!(
            partition::origin_of(tagged),
            // lint: allow(no-panic-paths) — release notices only travel over the partitioned barrier, which exists only when `part` was installed at shard construction
            self.part.as_ref().expect("release outside a partitioned run").me,
            "release notice routed to the wrong shard"
        );
        let idx = (tagged & partition::IDX_MASK) as usize;
        let info = &mut self.msgs[idx];
        debug_assert!(info.live, "double release of exported message {idx}");
        info.received = info.expected; // delivered remotely
        info.live = false;
        self.free_msgs.push(idx as u64);
    }

    /// Barrier hook: a buffered `PacketArrive` is leaving this shard. Drops
    /// it from the in-flight count and tags its message id with this shard.
    /// An untagged id is only meaningful in the slab of the shard that
    /// created the message, and a packet carrying one here necessarily
    /// belongs to this shard's slab — so *every* untagged departure gets
    /// tagged, including a packet detouring out towards an owned
    /// destination (it is untagged again on the way home, and intermediate
    /// shards never dereference it).
    pub fn on_packet_exported(&mut self, packet: &mut Packet) {
        // lint: allow(no-panic-paths) — boundary exports only happen under the partitioned driver, which installs `part` at shard construction
        let ps = self.part.as_ref().expect("export outside a partitioned run");
        debug_assert!(self.in_flight > 0, "exporting with nothing in flight");
        self.in_flight -= 1;
        if !partition::is_tagged(packet.msg.0) {
            packet.msg = MessageId(partition::tag_msg(ps.me, packet.msg.0));
        }
    }

    /// Barrier hook: a boundary `PacketArrive` is entering this shard. Adds
    /// it to the in-flight count and untags the message id if this shard is
    /// the origin (a detoured packet coming home).
    pub fn on_packet_imported(&mut self, packet: &mut Packet) {
        self.in_flight += 1;
        // lint: allow(no-panic-paths) — boundary imports only happen under the partitioned driver, which installs `part` at shard construction
        let ps = self.part.as_ref().expect("import outside a partitioned run");
        if partition::is_tagged(packet.msg.0) && partition::origin_of(packet.msg.0) == ps.me {
            packet.msg = MessageId(packet.msg.0 & partition::IDX_MASK);
        }
    }

    /// Copy the Q-tables of `routers` from another shard's network (report
    /// assembly: the snapshot is captured from one network holding every
    /// shard's learned tables).
    pub fn adopt_qtables_from(
        &mut self,
        other: &NetworkSim,
        routers: impl IntoIterator<Item = RouterId>,
    ) {
        for r in routers {
            self.routers[r.idx()].qtable = other.routers[r.idx()].qtable.clone();
        }
    }

    /// Enable the Q-table undo journal (partitioned driver only). Each
    /// Q-table update is logged with the key set by
    /// [`NetworkSim::set_event_key`] and its pre-update value.
    pub fn enable_q_undo(&mut self) {
        self.q_undo = Some(Vec::new());
    }

    /// Mutable access to the undo journal so the driver can renumber its
    /// keys at a barrier and clear it per window. `None` unless enabled.
    pub fn q_undo_entries_mut(&mut self) -> Option<&mut Vec<QUndoEntry>> {
        self.q_undo.as_mut()
    }

    /// Key of the event about to be dispatched (orders Q-undo entries).
    pub fn set_event_key(&mut self, time: Time, seq: u64) {
        self.event_key = (time, seq);
    }

    /// Roll back every journaled Q-table update with key strictly greater
    /// than `(time, seq)`, in reverse order. Used at the end of a
    /// partitioned run: shards pop to the window boundary, which may lie
    /// past the logical end of the run (the last rank-finish event), and
    /// only Q-table state is mutated by those extra dispatches.
    pub fn q_undo_revert_after(&mut self, time: Time, seq: u64) {
        let entries = self.q_undo.take().unwrap_or_default();
        for e in entries.iter().rev() {
            if (e.time, e.seq) > (time, seq) {
                let qt = self.routers[e.router.idx()]
                    .qtable
                    .as_mut()
                    // lint: allow(no-panic-paths) — undo entries are only recorded by Q-table updates, so the router they name necessarily carries a table
                    .expect("undo entry for a router without a Q-table");
                if e.level2 {
                    qt.set2_raw(e.index, e.port, e.old);
                } else {
                    qt.set1_raw(GroupId(e.index), e.port, e.old);
                }
            }
        }
        self.q_undo = Some(entries);
    }

    /// The topology this network runs on.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The link timing constants.
    pub fn timing(&self) -> &LinkTiming {
        &self.timing
    }

    /// The routing configuration.
    pub fn routing(&self) -> &RoutingConfig {
        &self.cfg
    }

    /// Packets currently inside the network.
    pub fn in_flight(&self) -> u64 {
        self.in_flight
    }

    /// Whether all NIC send queues are drained and no packet is in flight.
    pub fn is_idle(&self) -> bool {
        self.in_flight == 0 && self.nics.iter().all(Nic::is_idle)
    }

    /// Read access to a router (tests, Q-table inspection).
    pub fn router(&self, id: RouterId) -> &Router {
        &self.routers[id.idx()]
    }

    /// Snapshot every router's Q-table with this network's fingerprint
    /// (topology parameters, link timing, α). `None` unless the run uses
    /// Q-adaptive routing — only then do routers carry tables.
    pub fn qtable_snapshot(&self) -> Option<QTableSnapshot> {
        let tables: Option<Vec<&QTable>> = self.routers.iter().map(|r| r.qtable.as_ref()).collect();
        Some(QTableSnapshot::from_tables(
            *self.topo.params(),
            self.timing,
            self.cfg.qa.alpha,
            &tables?,
        ))
    }

    /// Release a fully delivered message's slab slot for reuse. The MPI
    /// layer calls this after consuming the `MessageDelivered` effect — the
    /// last reference to the id — so churn runs recycle message slots
    /// instead of growing the slab (and the MPI metadata table) forever.
    /// Callers that never release (network-only tests) just keep the old
    /// append-only behaviour.
    pub fn release_message(&mut self, msg: MessageId) {
        if partition::is_tagged(msg.0) {
            // Foreign message delivered here: drop the imported entry and
            // queue a release notice for the origin shard's slab.
            // lint: allow(no-panic-paths) — tagged message ids are only minted by the partitioned export path, which requires `part` to be installed
            let ps = self.part.as_mut().expect("tagged release outside a partitioned run");
            // lint: allow(no-panic-paths) — the barrier imports every foreign message before any of its packets can arrive, so a release always finds its imported entry
            let info = ps.imported.remove(&msg.0).expect("releasing an unknown imported message");
            debug_assert!(info.live, "double release of imported {msg}");
            debug_assert_eq!(info.received, info.expected, "releasing an undelivered {msg}");
            ps.pending_releases.push(msg.0);
            return;
        }
        let info = &mut self.msgs[msg.idx()];
        debug_assert!(info.live, "double release of {msg}");
        debug_assert_eq!(info.received, info.expected, "releasing an undelivered {msg}");
        info.live = false;
        self.free_msgs.push(msg.0);
    }

    /// Message slots currently allocated (live messages; slab occupancy).
    pub fn live_messages(&self) -> usize {
        self.msgs.len() - self.free_msgs.len()
    }

    /// Flit-rounded serialization time of a payload.
    #[inline]
    fn serialize_packet(&self, bytes: u32) -> Time {
        let flits = bytes.div_ceil(self.timing.flit_bytes).max(1) as u64;
        flits * self.flit_time
    }

    #[inline]
    fn prop_of(&self, kind: LinkKind) -> Time {
        match kind {
            LinkKind::Terminal => self.timing.terminal_latency_ps,
            LinkKind::Local => self.timing.local_latency_ps,
            LinkKind::Global => self.timing.global_latency_ps,
        }
    }

    // ---- transport API -----------------------------------------------------

    /// Enqueue a message for transmission; returns its id. The message is
    /// packetized and injected by the source NIC under credit back-pressure.
    /// Self-addressed messages (src == dst) bypass the network with a
    /// memory-copy latency.
    pub fn send_message(
        &mut self,
        sched: &mut impl Scheduler<NetEvent>,
        rec: &mut Recorder,
        src: NodeId,
        dst: NodeId,
        bytes: u64,
        app: AppId,
    ) -> MessageId {
        let expected = PacketSizes::count(bytes, self.timing.packet_bytes);
        let info = MsgInfo { expected, received: 0, live: true };
        let msg = match self.free_msgs.pop() {
            Some(i) => {
                debug_assert!(!self.msgs[i as usize].live, "free list holds a live slot");
                self.msgs[i as usize] = info;
                MessageId(i)
            }
            None => {
                self.msgs.push(info);
                MessageId(self.msgs.len() as u64 - 1)
            }
        };
        if src == dst {
            // Loop-back: model a memcpy at link bandwidth plus base latency.
            let copy = self.timing.serialize(bytes.min(u32::MAX as u64) as u32)
                + self.timing.terminal_latency_ps;
            sched.after(copy, NetEvent::LocalDeliver { msg });
            return msg;
        }
        if let Some(ps) = self.part.as_mut() {
            if ps.map.part_of_node(dst) != ps.me {
                // Packets of this message will cross a boundary: record the
                // export so the destination shard can pre-register delivery
                // bookkeeping at the next barrier (always before the first
                // packet can arrive there, thanks to the lookahead window).
                ps.pending_exports.push(MsgExport {
                    msg: partition::tag_msg(ps.me, msg.0),
                    expected,
                    dst,
                });
            }
        }
        self.nics[src.idx()].enqueue(msg, dst, app, bytes);
        self.pump(src, sched, rec);
        msg
    }

    /// NIC injection loop: carve packets off the head message while credits
    /// and the uplink allow.
    fn pump(&mut self, node: NodeId, sched: &mut impl Scheduler<NetEvent>, rec: &mut Recorder) {
        let router = self.topo.router_of_node(node);
        let tport = self.topo.terminal_port(node);
        let packet_bytes = self.timing.packet_bytes;
        let term_prop = self.timing.terminal_latency_ps;
        loop {
            let now = sched.now();
            let nic = &mut self.nics[node.idx()];
            if nic.sendq.is_empty() || nic.credits == 0 {
                return; // NodeCredit or a new message will pump again
            }
            if nic.busy_until > now {
                if !nic.pump_pending {
                    nic.pump_pending = true;
                    let at = nic.busy_until;
                    sched.at(at, NetEvent::NicPump { node });
                }
                return;
            }
            let (meta, bytes, msg_done) =
                // lint: allow(no-panic-paths) — the `return` above already handled the empty-queue case, so the queue is non-empty here
                nic.next_packet(packet_bytes, CONTROL_BYTES).expect("queue checked non-empty");
            let flits = bytes.div_ceil(self.timing.flit_bytes).max(1) as u64;
            let ser = flits * self.flit_time;
            nic.credits -= 1;
            nic.busy_until = now + ser;

            let id = self.next_packet_id;
            self.next_packet_id += 1;
            self.in_flight += 1;
            rec.packet_injected(meta.app, now, bytes);
            let packet = Packet {
                id,
                msg: meta.msg,
                app: meta.app,
                src: node,
                dst: meta.dst,
                bytes,
                injected_at: now,
                arrived_at_hop: now,
                hops: 0,
                state: RouteState::Fresh,
                cached_port: None,
            };
            sched.at(
                now + ser + term_prop,
                NetEvent::PacketArrive { router, port: tport, vc: 0, packet },
            );
            if msg_done {
                let msg = meta.msg;
                sched.at(now + ser, NetEvent::SendDone { msg });
            }
        }
    }

    // ---- event handling ----------------------------------------------------

    /// Process one network event. Follow-up events go to `sched`; transport
    /// effects for the MPI layer are appended to `effects`.
    pub fn handle(
        &mut self,
        ev: NetEvent,
        sched: &mut impl Scheduler<NetEvent>,
        rec: &mut Recorder,
        effects: &mut Vec<NetEffect>,
    ) {
        match ev {
            NetEvent::NicPump { node } => {
                self.nics[node.idx()].pump_pending = false;
                self.pump(node, sched, rec);
            }
            NetEvent::PacketArrive { router, port, vc, mut packet } => {
                let now = sched.now();
                if self.cfg.algo == RoutingAlgo::QAdaptive {
                    self.send_q_feedback(router, port, &packet, now, sched);
                }
                packet.arrived_at_hop = now;
                packet.cached_port = None;
                let cap = self.timing.buffer_packets as usize;
                let input = self.routers[router.idx()].input(port, vc);
                input.queue.push_back(packet);
                debug_assert!(
                    input.queue.len() <= cap,
                    "input buffer overflow at {router}/{port}/vc{vc}"
                );
                if input.queue.len() == 1 {
                    self.try_service(router, port, vc, sched, rec);
                }
            }
            NetEvent::OutputFree { router, port } => {
                let now = sched.now();
                loop {
                    if self.routers[router.idx()].busy_until(port) > now {
                        break; // someone re-occupied the link
                    }
                    let Some((ip, ivc)) = self.routers[router.idx()].pop_link_waiter(port) else {
                        break;
                    };
                    self.try_service(router, ip, ivc, sched, rec);
                }
            }
            NetEvent::Credit { router, port, vc } => {
                self.routers[router.idx()].return_credit(port, vc, self.timing.buffer_packets);
                loop {
                    if self.routers[router.idx()].credits(port, vc) == 0 {
                        break;
                    }
                    let Some((ip, ivc)) = self.routers[router.idx()].pop_credit_waiter(port, vc)
                    else {
                        break;
                    };
                    self.try_service(router, ip, ivc, sched, rec);
                }
            }
            NetEvent::NodeCredit { node } => {
                self.nics[node.idx()].credits += 1;
                self.pump(node, sched, rec);
            }
            NetEvent::DeliverPacket { node, packet } => {
                debug_assert_eq!(node, packet.dst);
                let now = sched.now();
                rec.packet_delivered_full(
                    packet.app,
                    packet.injected_at,
                    now,
                    packet.bytes,
                    packet.took_detour(),
                    packet.hops,
                );
                self.in_flight -= 1;
                let info: &mut MsgInfo = if partition::is_tagged(packet.msg.0) {
                    self.part
                        .as_mut()
                        // lint: allow(no-panic-paths) — tagged ids exist only in partitioned runs, where `part` is installed at shard construction
                        .expect("foreign packet outside a partitioned run")
                        .imported
                        .get_mut(&packet.msg.0)
                        // lint: allow(no-panic-paths) — the barrier imports every foreign message before its packets can be delivered here
                        .expect("delivery of an undeclared foreign message")
                } else {
                    &mut self.msgs[packet.msg.idx()]
                };
                debug_assert!(info.live, "delivery into a released message slot");
                info.received += 1;
                debug_assert!(info.received <= info.expected, "over-delivery of {}", packet.msg);
                if info.received == info.expected {
                    effects.push(NetEffect::MessageDelivered { msg: packet.msg, at: now });
                }
            }
            NetEvent::LocalDeliver { msg } => {
                let now = sched.now();
                let info = &mut self.msgs[msg.idx()];
                debug_assert!(info.live, "local delivery into a released message slot");
                info.received = info.expected;
                effects.push(NetEffect::MessageInjected { msg, at: now });
                effects.push(NetEffect::MessageDelivered { msg, at: now });
            }
            NetEvent::SendDone { msg } => {
                effects.push(NetEffect::MessageInjected { msg, at: sched.now() });
            }
            NetEvent::QFeedback { router, port, dst_group, dst_local, sample } => {
                let my_group = self.topo.group_of_router(router);
                let key = self.event_key;
                if let Some(qt) = self.routers[router.idx()].qtable.as_mut() {
                    if my_group == dst_group {
                        if let Some(log) = self.q_undo.as_mut() {
                            log.push(QUndoEntry {
                                time: key.0,
                                seq: key.1,
                                router,
                                level2: true,
                                index: dst_local,
                                port,
                                old: qt.q2(dst_local, port),
                            });
                        }
                        qt.update2(dst_local, port, sample);
                    } else {
                        let before = qt.q1(dst_group, port);
                        if let Some(log) = self.q_undo.as_mut() {
                            log.push(QUndoEntry {
                                time: key.0,
                                seq: key.1,
                                router,
                                level2: false,
                                index: dst_group.0,
                                port,
                                old: before,
                            });
                        }
                        qt.update1(dst_group, port, sample);
                        if before.is_finite() {
                            // Convergence telemetry: per-window mean |ΔQ1|
                            // (feedback only arrives over real links, so
                            // `before` is finite in practice).
                            let after = qt.q1(dst_group, port);
                            rec.q1_updated(sched.now(), (after - before).abs());
                        }
                    }
                }
            }
        }
    }

    /// On arrival at a router, send the Q-adaptive feedback signal back to
    /// the upstream router: observed transit time plus this router's own
    /// remaining-delivery estimate (paper Fig 2, steps 1 & 4).
    fn send_q_feedback(
        &mut self,
        router: RouterId,
        in_port: Port,
        packet: &Packet,
        now: Time,
        sched: &mut impl Scheduler<NetEvent>,
    ) {
        let PortPeer::Router(up_router, up_port) = self.routers[router.idx()].peer(in_port) else {
            return; // came from a NIC: no upstream Q-table
        };
        let transit = now.saturating_sub(packet.arrived_at_hop);
        let remaining = self.estimate_remaining(router, packet);
        let dst_router = self.topo.router_of_node(packet.dst);
        let dst_group = self.topo.group_of_router(dst_router);
        let dst_local = self.topo.local_index(dst_router);
        let prop = self.prop_of(self.topo.port_kind(in_port));
        sched.at(
            now + prop,
            NetEvent::QFeedback {
                router: up_router,
                port: up_port,
                dst_group,
                dst_local,
                sample: transit + remaining,
            },
        );
    }

    /// This router's best estimate of the remaining delivery time for a
    /// packet (the value fed back to the upstream neighbour).
    fn estimate_remaining(&self, router: RouterId, packet: &Packet) -> Time {
        let dst_router = self.topo.router_of_node(packet.dst);
        let term = self.serialize_packet(packet.bytes) + self.timing.terminal_latency_ps;
        if dst_router == router {
            return term;
        }
        let qt =
            // lint: allow(no-panic-paths) — this estimator is only called under Q-adaptive routing, and `NetworkSim::new` installs a Q-table on every router for that algo
            self.routers[router.idx()].qtable.as_ref().expect("Q-adaptive routers carry Q-tables");
        let dst_group = self.topo.group_of_router(dst_router);
        let est = if self.topo.group_of_router(router) == dst_group {
            qt.best2(self.topo.local_index(dst_router))
        } else {
            qt.best1(dst_group)
        };
        if est.is_finite() {
            est as Time
        } else {
            // Degenerate fallback: static 3-hop estimate.
            3 * (self.timing.packet_serialize() + self.timing.global_latency_ps) + term
        }
    }

    /// Try to forward head packets of input `(port, vc)` until the head
    /// blocks or the buffer drains.
    fn try_service(
        &mut self,
        router: RouterId,
        in_port: Port,
        in_vc: u8,
        sched: &mut impl Scheduler<NetEvent>,
        rec: &mut Recorder,
    ) {
        while self.try_service_once(router, in_port, in_vc, sched, rec) == Service::Forwarded {}
    }

    fn try_service_once(
        &mut self,
        router: RouterId,
        in_port: Port,
        in_vc: u8,
        sched: &mut impl Scheduler<NetEvent>,
        rec: &mut Recorder,
    ) -> Service {
        let now = sched.now();
        let r_idx = router.idx();

        // Copy the head packet out (it is `Copy`), decide, write back or pop.
        let Some(&head) = self.routers[r_idx].input(in_port, in_vc).queue.front() else {
            return Service::Empty;
        };
        let mut pkt = head;
        let out = match pkt.cached_port {
            Some(p) => p,
            None => {
                let p = routing::decide(
                    &mut self.routers[r_idx],
                    &self.topo,
                    &self.timing,
                    &self.cfg,
                    now,
                    &mut pkt,
                );
                pkt.cached_port = Some(p);
                p
            }
        };

        let terminal_out = self.routers[r_idx].is_terminal(out);
        let ovc = pkt.hops;
        debug_assert!(
            terminal_out || (ovc as usize) < self.routers[r_idx].nvcs(),
            "VC budget exceeded: {} hops at {router} for {} -> {}",
            pkt.hops,
            pkt.src,
            pkt.dst
        );

        // Resource checks: credit first, then link.
        if !terminal_out && self.routers[r_idx].credits(out, ovc) == 0 {
            let input = self.routers[r_idx].input(in_port, in_vc);
            // lint: allow(no-panic-paths) — `pkt` was popped from this very queue a few lines up without an intervening push/pop, so the head slot still exists to write back into
            *input.queue.front_mut().expect("head exists") = pkt;
            input.blocked_since.get_or_insert(now);
            self.routers[r_idx].wait_for_credit(out, ovc, (in_port, in_vc));
            return Service::Blocked;
        }
        if self.routers[r_idx].busy_until(out) > now {
            let input = self.routers[r_idx].input(in_port, in_vc);
            // lint: allow(no-panic-paths) — same write-back as the credit-blocked branch: the head was peeked from this queue with nothing popped since
            *input.queue.front_mut().expect("head exists") = pkt;
            input.blocked_since.get_or_insert(now);
            self.routers[r_idx].wait_for_link(out, (in_port, in_vc));
            return Service::Blocked;
        }

        // Forward.
        let ser = self.serialize_packet(pkt.bytes);
        {
            let input = self.routers[r_idx].input(in_port, in_vc);
            input.queue.pop_front();
            if let Some(since) = input.blocked_since.take() {
                rec.port_stalled(router, out, now - since);
            }
        }
        rec.packet_forwarded(router, out, ser, pkt.bytes);
        self.routers[r_idx].set_busy(out, now + ser);
        sched.at(now + ser, NetEvent::OutputFree { router, port: out });

        // Return the freed input-buffer slot upstream.
        match self.routers[r_idx].peer(in_port) {
            PortPeer::Router(ur, uport) => {
                let prop = self.prop_of(self.topo.port_kind(in_port));
                sched.at(now + prop, NetEvent::Credit { router: ur, port: uport, vc: in_vc });
            }
            PortPeer::Node(n) => {
                sched.at(now + self.timing.terminal_latency_ps, NetEvent::NodeCredit { node: n });
            }
            // lint: allow(no-panic-paths) — a packet sitting in this input queue proves the upstream peer exists; unconnected ports never enqueue
            PortPeer::Unconnected => unreachable!("packet entered via unconnected port"),
        }

        if terminal_out {
            let PortPeer::Node(n) = self.routers[r_idx].peer(out) else {
                // lint: allow(no-panic-paths) — `terminal_out` was computed from the topology's port kind, and terminal ports wire to nodes by construction
                unreachable!("terminal port faces a node");
            };
            pkt.cached_port = None;
            sched.at(
                now + ser + self.timing.terminal_latency_ps,
                NetEvent::DeliverPacket { node: n, packet: pkt },
            );
        } else {
            self.routers[r_idx].take_credit(out, ovc);
            let PortPeer::Router(nr, nport) = self.routers[r_idx].peer(out) else {
                // lint: allow(no-panic-paths) — routing only emits connected ports, and every non-terminal connected port wires to a router by construction
                unreachable!("non-terminal output faces a router");
            };
            pkt.hops += 1;
            pkt.cached_port = None;
            let prop = self.prop_of(self.topo.port_kind(out));
            sched.at(
                now + ser + prop,
                NetEvent::PacketArrive { router: nr, port: nport, vc: ovc, packet: pkt },
            );
        }
        Service::Forwarded
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfsim_des::queue::PendingEvents;
    use dfsim_des::sched::QueueScheduler;
    use dfsim_des::{EventQueue, SimRng};
    use dfsim_metrics::RecorderConfig;
    use dfsim_topology::DragonflyParams;

    struct Harness {
        net: NetworkSim,
        queue: EventQueue<NetEvent>,
        rec: Recorder,
        effects: Vec<NetEffect>,
    }

    impl Harness {
        fn new(algo: RoutingAlgo) -> Self {
            let topo = Arc::new(Topology::new(DragonflyParams::tiny_72()).unwrap());
            let rec = Recorder::new(&topo, RecorderConfig::default());
            let net = NetworkSim::new(
                topo,
                LinkTiming::default(),
                RoutingConfig::new(algo),
                &SimRng::new(42),
            );
            Self { net, queue: EventQueue::new(), rec, effects: Vec::new() }
        }

        fn send(&mut self, src: u32, dst: u32, bytes: u64) -> MessageId {
            let mut sched = QueueScheduler::new(&mut self.queue);
            self.net.send_message(
                &mut sched,
                &mut self.rec,
                NodeId(src),
                NodeId(dst),
                bytes,
                AppId(0),
            )
        }

        /// Run to completion; returns final time.
        fn run(&mut self) -> Time {
            let mut last = 0;
            let mut steps = 0u64;
            while let Some((t, ev)) = self.queue.pop() {
                last = t;
                let mut sched = QueueScheduler::new(&mut self.queue);
                self.net.handle(ev, &mut sched, &mut self.rec, &mut self.effects);
                steps += 1;
                assert!(steps < 10_000_000, "runaway simulation");
            }
            last
        }

        fn delivered(&self, msg: MessageId) -> Option<Time> {
            self.effects.iter().find_map(|e| match e {
                NetEffect::MessageDelivered { msg: m, at } if *m == msg => Some(*at),
                _ => None,
            })
        }
    }

    #[test]
    fn single_packet_crosses_groups_minimally() {
        let mut h = Harness::new(RoutingAlgo::Minimal);
        let msg = h.send(0, 70, 512); // group 0 → group 8
        h.run();
        let at = h.delivered(msg).expect("message must arrive");
        // Lower bound: 1 packet ser (20.48ns) per hop × ≥3 hops + 1 global
        // prop (300ns) + locals. Just sanity-check the order of magnitude.
        assert!(at > 300_000, "arrived implausibly fast: {at}");
        assert!(at < 10_000_000, "arrived implausibly slow: {at}");
        assert!(h.net.is_idle());
        assert!(h.rec.conservation_ok());
        let app = h.rec.app(AppId(0)).unwrap();
        assert_eq!(app.packets_injected, 1);
        assert_eq!(app.packets_delivered, 1);
    }

    #[test]
    fn all_algorithms_deliver_everything() {
        for algo in [
            RoutingAlgo::Minimal,
            RoutingAlgo::UgalG,
            RoutingAlgo::UgalN,
            RoutingAlgo::Par,
            RoutingAlgo::QAdaptive,
        ] {
            let mut h = Harness::new(algo);
            let mut msgs = Vec::new();
            // Every 7th node pair, multi-packet messages.
            for i in 0..24u32 {
                let src = (i * 3) % 72;
                let dst = (i * 7 + 13) % 72;
                if src != dst {
                    msgs.push(h.send(src, dst, 2048));
                }
            }
            h.run();
            for m in &msgs {
                assert!(h.delivered(*m).is_some(), "{algo}: {m} lost");
            }
            assert!(h.net.is_idle(), "{algo}: network not drained");
            let app = h.rec.app(AppId(0)).unwrap();
            assert_eq!(app.packets_injected, app.packets_delivered, "{algo}");
        }
    }

    #[test]
    fn messages_split_into_packets_and_reassemble() {
        let mut h = Harness::new(RoutingAlgo::Minimal);
        let msg = h.send(0, 40, 5 * 512 + 100); // 6 packets
        h.run();
        assert!(h.delivered(msg).is_some());
        let app = h.rec.app(AppId(0)).unwrap();
        assert_eq!(app.packets_injected, 6);
        assert_eq!(app.delivered.total(), 5 * 512 + 100);
    }

    #[test]
    fn self_send_loops_back_without_network() {
        let mut h = Harness::new(RoutingAlgo::UgalG);
        let msg = h.send(5, 5, 4096);
        h.run();
        assert!(h.delivered(msg).is_some());
        assert_eq!(h.net.in_flight(), 0);
        // No packets ever touched the wire (the app slot may not even exist).
        assert!(h.rec.app(AppId(0)).is_none_or(|a| a.packets_injected == 0));
    }

    #[test]
    fn injection_is_credit_backpressured() {
        // A message far larger than one buffer: must still deliver fully,
        // demonstrating credits + pump cycling.
        let mut h = Harness::new(RoutingAlgo::Minimal);
        let bytes = 100 * 512; // 100 packets ≫ 30-credit buffer
        let msg = h.send(0, 71, bytes as u64);
        h.run();
        assert!(h.delivered(msg).is_some());
        let app = h.rec.app(AppId(0)).unwrap();
        assert_eq!(app.packets_injected, 100);
        assert_eq!(app.packets_delivered, 100);
        assert_eq!(app.delivered.total(), bytes as u64);
    }

    #[test]
    fn contention_on_one_destination_serializes_and_stalls() {
        let mut h = Harness::new(RoutingAlgo::Minimal);
        // Many senders to one node: ejection link is the bottleneck.
        for src in 1..20u32 {
            h.send(src, 0, 4 * 512);
        }
        h.run();
        assert!(h.net.is_idle());
        let app = h.rec.app(AppId(0)).unwrap();
        assert_eq!(app.packets_delivered, 19 * 4);
        // The hot ejection port must have accumulated stall time.
        let total_stall: u64 = h.rec.ports().iter().map(|(_, _, _, s)| s.stall_ps).sum();
        assert!(total_stall > 0, "expected head-of-line blocking under fan-in");
    }

    #[test]
    fn qadaptive_learns_from_feedback() {
        let mut h = Harness::new(RoutingAlgo::QAdaptive);
        // Cross-group traffic so level-1 tables get updates.
        for i in 0..30u32 {
            h.send(i % 8, 64 + (i % 8), 2048); // group 0 → group 8
        }
        h.run();
        assert!(h.net.is_idle());
        // The source routers' Q-tables should have moved off the static
        // estimates for group 8.
        let topo = h.net.topology();
        let fresh = QTable::new(topo, RouterId(0), &LinkTiming::default(), 0.1);
        let learned = h.net.router(RouterId(0)).qtable.as_ref().unwrap();
        let g8 = dfsim_topology::GroupId(8);
        let mut moved = false;
        for p in 2..topo.radix() {
            let port = Port(p);
            if (learned.q1(g8, port) - fresh.q1(g8, port)).abs() > 1.0 {
                moved = true;
            }
        }
        assert!(moved, "Q-table never updated");
    }

    #[test]
    fn message_slab_recycles_released_slots() {
        let mut h = Harness::new(RoutingAlgo::Minimal);
        let m1 = h.send(0, 40, 512);
        let m2 = h.send(3, 50, 512);
        h.run();
        assert!(h.delivered(m1).is_some() && h.delivered(m2).is_some());
        assert_eq!(h.net.live_messages(), 2);
        h.net.release_message(m1);
        assert_eq!(h.net.live_messages(), 1);
        let m3 = h.send(5, 60, 512);
        assert_eq!(m3, m1, "released slot must be recycled");
        h.run();
        assert!(h.delivered(m3).is_some());
        h.net.release_message(m2);
        h.net.release_message(m3);
        assert_eq!(h.net.live_messages(), 0);
    }

    #[test]
    fn zero_byte_message_still_delivers() {
        let mut h = Harness::new(RoutingAlgo::UgalN);
        let msg = h.send(0, 30, 0);
        h.run();
        assert!(h.delivered(msg).is_some());
        let app = h.rec.app(AppId(0)).unwrap();
        assert_eq!(app.packets_injected, 1);
    }

    #[test]
    fn effects_report_injection_before_delivery() {
        let mut h = Harness::new(RoutingAlgo::Minimal);
        let msg = h.send(0, 70, 3 * 512);
        h.run();
        let inj = h
            .effects
            .iter()
            .find_map(|e| match e {
                NetEffect::MessageInjected { msg: m, at } if *m == msg => Some(*at),
                _ => None,
            })
            .expect("injection effect");
        let del = h.delivered(msg).unwrap();
        assert!(inj < del, "local completion must precede remote delivery");
    }
}
