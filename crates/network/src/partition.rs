//! Group-sharded partitioning support: the group→partition map, foreign
//! message-id tagging, and the compact wire codecs for events that cross a
//! partition boundary.
//!
//! The partitioned engine shards the dragonfly **by group**: partition `p`
//! of `P` owns the contiguous group range whose elements satisfy
//! `g * P / G == p`. Only three event kinds can cross a partition boundary —
//! [`NetEvent::PacketArrive`], [`NetEvent::Credit`] and
//! [`NetEvent::QFeedback`] — because they are the only events scheduled onto
//! a *peer* router, and inter-group traffic rides global links whose
//! propagation delay (`LinkTiming::global_latency_ps`) is the conservative
//! lookahead. Everything else (NIC pumps, node credits, deliveries, message
//! completions, MPI compute) is scheduled onto components of the same group
//! and therefore stays shard-local.
//!
//! Message ids are slab indices local to the allocating shard. When a packet
//! is exported, its message id is tagged with [`FOREIGN_BIT`] and the origin
//! shard so that the receiving shard resolves it against its imported-message
//! table instead of its own slab; a tagged id travelling back into its origin
//! shard (e.g. a Valiant detour) is untagged on import.

use dfsim_des::{Time, WireReader, WireWriter};
use dfsim_topology::paths::{PathPlan, RouteProgress};
use dfsim_topology::{GroupId, NodeId, Port, RouterId};

use crate::events::NetEvent;
use crate::packet::{MessageId, Packet, RouteState};

/// High bit marking a message id as foreign (owned by another partition).
pub const FOREIGN_BIT: u64 = 1 << 63;
/// Shift of the origin-partition field inside a tagged message id.
pub const ORIGIN_SHIFT: u32 = 48;
/// Mask of the slab-index field inside a tagged message id.
pub const IDX_MASK: u64 = (1 << ORIGIN_SHIFT) - 1;

/// Tag `idx` as owned by partition `origin`.
#[inline]
pub fn tag_msg(origin: usize, idx: u64) -> u64 {
    debug_assert_eq!(idx & !IDX_MASK, 0, "message slab index overflows tag space");
    FOREIGN_BIT | ((origin as u64) << ORIGIN_SHIFT) | idx
}

/// Whether a raw message id carries a foreign tag.
#[inline]
pub fn is_tagged(raw: u64) -> bool {
    raw & FOREIGN_BIT != 0
}

/// Origin partition of a tagged message id.
#[inline]
pub fn origin_of(tagged: u64) -> usize {
    debug_assert!(is_tagged(tagged));
    ((tagged & !FOREIGN_BIT) >> ORIGIN_SHIFT) as usize
}

/// Static group→partition assignment for one run.
///
/// Holds only scalar topology parameters so it can be shared (`Arc`) across
/// worker threads without referencing the full [`crate::sim::NetworkSim`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionMap {
    parts: usize,
    groups: u32,
    routers_per_group: u32,
    nodes_per_router: u32,
}

impl PartitionMap {
    /// Build the map for `parts` partitions over a dragonfly with `groups`
    /// groups of `routers_per_group` routers of `nodes_per_router` nodes.
    ///
    /// `parts` must be in `1..=groups`: a partition with no groups would
    /// idle-spin the barrier protocol for nothing.
    pub fn new(groups: u32, routers_per_group: u32, nodes_per_router: u32, parts: usize) -> Self {
        assert!(parts >= 1, "need at least one partition");
        assert!(parts as u32 <= groups, "{parts} partitions exceed the {groups} dragonfly groups");
        Self { parts, groups, routers_per_group, nodes_per_router }
    }

    /// Number of partitions.
    #[inline]
    pub fn parts(&self) -> usize {
        self.parts
    }

    /// Number of dragonfly groups.
    #[inline]
    pub fn groups(&self) -> u32 {
        self.groups
    }

    /// Partition owning group `g` (balanced contiguous ranges).
    #[inline]
    pub fn part_of_group(&self, g: GroupId) -> usize {
        debug_assert!(g.0 < self.groups);
        (g.0 as u64 * self.parts as u64 / self.groups as u64) as usize
    }

    /// Partition owning router `r`.
    #[inline]
    pub fn part_of_router(&self, r: RouterId) -> usize {
        self.part_of_group(GroupId(r.0 / self.routers_per_group))
    }

    /// Partition owning node `n`.
    #[inline]
    pub fn part_of_node(&self, n: NodeId) -> usize {
        self.part_of_router(RouterId(n.0 / self.nodes_per_router))
    }

    /// Partition that must execute `ev`, or `None` for event kinds that are
    /// only ever scheduled by their own executor (always local).
    #[inline]
    pub fn owner_of(&self, ev: &NetEvent) -> Option<usize> {
        match ev {
            NetEvent::NicPump { node }
            | NetEvent::NodeCredit { node }
            | NetEvent::DeliverPacket { node, .. } => Some(self.part_of_node(*node)),
            NetEvent::PacketArrive { router, .. }
            | NetEvent::OutputFree { router, .. }
            | NetEvent::Credit { router, .. }
            | NetEvent::QFeedback { router, .. } => Some(self.part_of_router(*router)),
            NetEvent::LocalDeliver { .. } | NetEvent::SendDone { .. } => None,
        }
    }

    /// Groups owned by partition `p`.
    pub fn groups_of(&self, p: usize) -> impl Iterator<Item = GroupId> + '_ {
        (0..self.groups).map(GroupId).filter(move |g| self.part_of_group(*g) == p)
    }

    /// Routers owned by partition `p`.
    pub fn routers_of(&self, p: usize) -> impl Iterator<Item = RouterId> + '_ {
        (0..self.groups * self.routers_per_group)
            .map(RouterId)
            .filter(move |r| self.part_of_router(*r) == p)
    }
}

/// One journaled Q-table update: the pre-update cell value tagged with the
/// `(time, seq)` key of the event that caused it. The partitioned driver
/// rolls back entries whose key lies past the logical end of the run so
/// warm-start snapshots stay bit-identical to the sequential engine.
#[derive(Debug, Clone, Copy)]
pub struct QUndoEntry {
    /// Time of the dispatching event.
    pub time: Time,
    /// Sequence number of the dispatching event (provisional during a
    /// window; the driver renumbers it at the barrier).
    pub seq: u64,
    /// Router whose table was updated.
    pub router: RouterId,
    /// `true` for a level-2 (intra-group) cell, `false` for level 1.
    pub level2: bool,
    /// Level-1: destination group index. Level-2: destination local index.
    pub index: u32,
    /// Output port of the updated cell.
    pub port: Port,
    /// Cell value before the update.
    pub old: f64,
}

/// A message whose packets will cross a partition boundary: the destination
/// shard must pre-register the expected packet count before any of them can
/// be delivered there.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MsgExport {
    /// The tagged message id under which the destination shard tracks it.
    pub msg: u64,
    /// Total packets of the message.
    pub expected: u32,
    /// Destination node (identifies the owning shard).
    pub dst: NodeId,
}

// ---------------------------------------------------------------------------
// Wire codecs. Fixed-width little-endian; internal same-build protocol, so
// panicking on a malformed frame is the correct failure mode.
// ---------------------------------------------------------------------------

const STATE_FRESH: u8 = 0;
const STATE_PLANNED: u8 = 1;
const STATE_QDECIDING: u8 = 2;

const PLAN_MINIMAL: u8 = 0;
const PLAN_VIA_GROUP: u8 = 1;
const PLAN_VIA_ROUTER: u8 = 2;

const NO_CACHED_PORT: u8 = u8::MAX;

const EV_PACKET_ARRIVE: u8 = 0;
const EV_CREDIT: u8 = 1;
const EV_QFEEDBACK: u8 = 2;

/// Encode one packet.
pub fn encode_packet(w: &mut WireWriter, p: &Packet) {
    w.u64(p.id);
    w.u64(p.msg.0);
    w.u16(p.app.0);
    w.u32(p.src.0);
    w.u32(p.dst.0);
    w.u32(p.bytes);
    w.u64(p.injected_at);
    w.u64(p.arrived_at_hop);
    w.u8(p.hops);
    match p.state {
        RouteState::Fresh => w.u8(STATE_FRESH),
        RouteState::Planned { progress, revisable } => {
            w.u8(STATE_PLANNED);
            match progress.plan {
                PathPlan::Minimal => w.u8(PLAN_MINIMAL),
                PathPlan::NonMinimalGroup { via } => {
                    w.u8(PLAN_VIA_GROUP);
                    w.u32(via.0);
                }
                PathPlan::NonMinimalRouter { via } => {
                    w.u8(PLAN_VIA_ROUTER);
                    w.u32(via.0);
                }
            }
            w.u8(progress.via_done as u8);
            w.u8(revisable as u8);
        }
        RouteState::QDeciding { local_hops } => {
            w.u8(STATE_QDECIDING);
            w.u8(local_hops);
        }
    }
    w.u8(p.cached_port.map_or(NO_CACHED_PORT, |q| q.0));
}

/// Decode one packet.
pub fn decode_packet(r: &mut WireReader<'_>) -> Packet {
    let id = r.u64();
    let msg = MessageId(r.u64());
    let app = dfsim_metrics::AppId(r.u16());
    let src = NodeId(r.u32());
    let dst = NodeId(r.u32());
    let bytes = r.u32();
    let injected_at = r.u64();
    let arrived_at_hop = r.u64();
    let hops = r.u8();
    let state = match r.u8() {
        STATE_FRESH => RouteState::Fresh,
        STATE_PLANNED => {
            let plan = match r.u8() {
                PLAN_MINIMAL => PathPlan::Minimal,
                PLAN_VIA_GROUP => PathPlan::NonMinimalGroup { via: GroupId(r.u32()) },
                PLAN_VIA_ROUTER => PathPlan::NonMinimalRouter { via: RouterId(r.u32()) },
                // lint: allow(no-panic-paths) — boundary frames travel the trusted intra-run wire between sibling partitions; a bad tag is a protocol bug, not external input, and must stop the run
                t => panic!("corrupt boundary frame: plan tag {t}"),
            };
            let via_done = r.u8() != 0;
            let revisable = r.u8() != 0;
            RouteState::Planned { progress: RouteProgress { plan, via_done }, revisable }
        }
        STATE_QDECIDING => RouteState::QDeciding { local_hops: r.u8() },
        // lint: allow(no-panic-paths) — same trusted intra-run wire as above: a bad route-state tag means an encode/decode skew bug, which must stop the run
        t => panic!("corrupt boundary frame: route-state tag {t}"),
    };
    let cached_port = match r.u8() {
        NO_CACHED_PORT => None,
        q => Some(Port(q)),
    };
    Packet { id, msg, app, src, dst, bytes, injected_at, arrived_at_hop, hops, state, cached_port }
}

/// Encode one boundary event with its timestamp and a caller-chosen 64-bit
/// key slot (the partitioned driver stores the origin push-log index there
/// and resolves it to the final sequence number at the barrier).
///
/// Panics on event kinds that never cross a partition boundary.
pub fn encode_event(w: &mut WireWriter, time: Time, key: u64, ev: &NetEvent) {
    w.u64(time);
    w.u64(key);
    match ev {
        NetEvent::PacketArrive { router, port, vc, packet } => {
            w.u8(EV_PACKET_ARRIVE);
            w.u32(router.0);
            w.u8(port.0);
            w.u8(*vc);
            encode_packet(w, packet);
        }
        NetEvent::Credit { router, port, vc } => {
            w.u8(EV_CREDIT);
            w.u32(router.0);
            w.u8(port.0);
            w.u8(*vc);
        }
        NetEvent::QFeedback { router, port, dst_group, dst_local, sample } => {
            w.u8(EV_QFEEDBACK);
            w.u32(router.0);
            w.u8(port.0);
            w.u32(dst_group.0);
            w.u32(*dst_local);
            w.u64(*sample);
        }
        // lint: allow(no-panic-paths) — the group-sharded partitioner only exports the event kinds encoded above (pinned by the partition-equivalence suite); anything else is a partitioning bug
        other => panic!("event kind never crosses partitions: {other:?}"),
    }
}

/// Decode one boundary event; returns `(time, key, event)`.
pub fn decode_event(r: &mut WireReader<'_>) -> (Time, u64, NetEvent) {
    let time = r.u64();
    let key = r.u64();
    let ev = match r.u8() {
        EV_PACKET_ARRIVE => {
            let router = RouterId(r.u32());
            let port = Port(r.u8());
            let vc = r.u8();
            let packet = decode_packet(r);
            NetEvent::PacketArrive { router, port, vc, packet }
        }
        EV_CREDIT => NetEvent::Credit { router: RouterId(r.u32()), port: Port(r.u8()), vc: r.u8() },
        EV_QFEEDBACK => NetEvent::QFeedback {
            router: RouterId(r.u32()),
            port: Port(r.u8()),
            dst_group: GroupId(r.u32()),
            dst_local: r.u32(),
            sample: r.u64(),
        },
        // lint: allow(no-panic-paths) — trusted intra-run wire protocol; a bad event tag is a protocol bug that must stop the run rather than corrupt the replay
        t => panic!("corrupt boundary frame: event tag {t}"),
    };
    (time, key, ev)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfsim_metrics::AppId;

    fn sample_packet(state: RouteState, cached: Option<Port>) -> Packet {
        Packet {
            id: 901,
            msg: MessageId(tag_msg(3, 17)),
            app: AppId(2),
            src: NodeId(5),
            dst: NodeId(61),
            bytes: 512,
            injected_at: 1_234_567,
            arrived_at_hop: 2_000_001,
            hops: 3,
            state,
            cached_port: cached,
        }
    }

    #[test]
    fn balanced_contiguous_group_assignment() {
        // tiny_72: 9 groups over 2 partitions → 5 + 4 split, contiguous.
        let m = PartitionMap::new(9, 4, 2, 2);
        let owners: Vec<usize> = (0..9).map(|g| m.part_of_group(GroupId(g))).collect();
        assert_eq!(owners, vec![0, 0, 0, 0, 0, 1, 1, 1, 1]);
        assert_eq!(m.groups_of(0).count(), 5);
        assert_eq!(m.groups_of(1).count(), 4);
        // Router/node owners agree with their group's owner.
        assert_eq!(m.part_of_router(RouterId(19)), 0); // group 4
        assert_eq!(m.part_of_router(RouterId(20)), 1); // group 5
        assert_eq!(m.part_of_node(NodeId(39)), 0); // router 19
        assert_eq!(m.part_of_node(NodeId(40)), 1); // router 20
    }

    #[test]
    fn every_group_assignment_is_monotone_and_covers_all_parts() {
        for parts in 1..=9 {
            let m = PartitionMap::new(9, 4, 2, parts);
            let owners: Vec<usize> = (0..9).map(|g| m.part_of_group(GroupId(g))).collect();
            assert!(owners.windows(2).all(|w| w[0] <= w[1]), "{owners:?}");
            assert_eq!(owners[8] + 1, parts, "last group must land in the last partition");
            for p in 0..parts {
                assert!(owners.contains(&p), "partition {p} owns no group: {owners:?}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "exceed")]
    fn more_partitions_than_groups_is_rejected() {
        PartitionMap::new(9, 4, 2, 10);
    }

    #[test]
    fn owner_routes_by_component_kind() {
        let m = PartitionMap::new(9, 4, 2, 3);
        let pk = sample_packet(RouteState::Fresh, None);
        assert_eq!(m.owner_of(&NetEvent::NicPump { node: NodeId(0) }), Some(0));
        assert_eq!(
            m.owner_of(&NetEvent::PacketArrive {
                router: RouterId(35),
                port: Port(1),
                vc: 0,
                packet: pk,
            }),
            Some(2)
        );
        assert_eq!(
            m.owner_of(&NetEvent::Credit { router: RouterId(12), port: Port(0), vc: 1 }),
            Some(1)
        );
        assert_eq!(m.owner_of(&NetEvent::LocalDeliver { msg: MessageId(0) }), None);
        assert_eq!(m.owner_of(&NetEvent::SendDone { msg: MessageId(0) }), None);
    }

    #[test]
    fn message_tagging_round_trips() {
        let t = tag_msg(5, 123);
        assert!(is_tagged(t));
        assert_eq!(origin_of(t), 5);
        assert_eq!(t & IDX_MASK, 123);
        assert!(!is_tagged(123));
    }

    #[test]
    fn packet_codec_round_trips_every_route_state() {
        let states = [
            RouteState::Fresh,
            RouteState::Planned {
                progress: RouteProgress { plan: PathPlan::Minimal, via_done: false },
                revisable: true,
            },
            RouteState::Planned {
                progress: RouteProgress {
                    plan: PathPlan::NonMinimalGroup { via: GroupId(7) },
                    via_done: true,
                },
                revisable: false,
            },
            RouteState::Planned {
                progress: RouteProgress {
                    plan: PathPlan::NonMinimalRouter { via: RouterId(31) },
                    via_done: false,
                },
                revisable: false,
            },
            RouteState::QDeciding { local_hops: 2 },
        ];
        for (i, state) in states.into_iter().enumerate() {
            let cached = if i % 2 == 0 { None } else { Some(Port(i as u8)) };
            let p = sample_packet(state, cached);
            let mut w = WireWriter::new();
            encode_packet(&mut w, &p);
            let frame = w.into_frame();
            let mut r = WireReader::new(&frame);
            let q = decode_packet(&mut r);
            assert!(r.is_empty());
            assert_eq!(q.id, p.id);
            assert_eq!(q.msg, p.msg);
            assert_eq!(q.app, p.app);
            assert_eq!(q.src, p.src);
            assert_eq!(q.dst, p.dst);
            assert_eq!(q.bytes, p.bytes);
            assert_eq!(q.injected_at, p.injected_at);
            assert_eq!(q.arrived_at_hop, p.arrived_at_hop);
            assert_eq!(q.hops, p.hops);
            assert_eq!(q.state, p.state);
            assert_eq!(q.cached_port, p.cached_port);
        }
    }

    #[test]
    fn boundary_event_codec_round_trips_all_three_kinds() {
        let events = [
            NetEvent::PacketArrive {
                router: RouterId(20),
                port: Port(3),
                vc: 2,
                packet: sample_packet(RouteState::QDeciding { local_hops: 1 }, Some(Port(6))),
            },
            NetEvent::Credit { router: RouterId(1), port: Port(7), vc: 6 },
            NetEvent::QFeedback {
                router: RouterId(8),
                port: Port(5),
                dst_group: GroupId(4),
                dst_local: 3,
                sample: 987_654_321,
            },
        ];
        let mut w = WireWriter::new();
        for (i, ev) in events.iter().enumerate() {
            encode_event(&mut w, 1_000 + i as Time, 42 + i as u64, ev);
        }
        let frame = w.into_frame();
        let mut r = WireReader::new(&frame);
        for (i, ev) in events.iter().enumerate() {
            let (t, key, got) = decode_event(&mut r);
            assert_eq!(t, 1_000 + i as Time);
            assert_eq!(key, 42 + i as u64);
            match (&got, ev) {
                (
                    NetEvent::PacketArrive { router: ra, port: pa, vc: va, packet: ka },
                    NetEvent::PacketArrive { router: rb, port: pb, vc: vb, packet: kb },
                ) => {
                    assert_eq!((ra, pa, va), (rb, pb, vb));
                    assert_eq!(ka.id, kb.id);
                    assert_eq!(ka.state, kb.state);
                }
                (
                    NetEvent::Credit { router: ra, port: pa, vc: va },
                    NetEvent::Credit { router: rb, port: pb, vc: vb },
                ) => assert_eq!((ra, pa, va), (rb, pb, vb)),
                (
                    NetEvent::QFeedback {
                        router: ra,
                        port: pa,
                        dst_group: ga,
                        dst_local: la,
                        sample: sa,
                    },
                    NetEvent::QFeedback {
                        router: rb,
                        port: pb,
                        dst_group: gb,
                        dst_local: lb,
                        sample: sb,
                    },
                ) => assert_eq!((ra, pa, ga, la, sa), (rb, pb, gb, lb, sb)),
                _ => panic!("event kind changed in round trip"),
            }
        }
        assert!(r.is_empty());
    }

    #[test]
    #[should_panic(expected = "never crosses")]
    fn encoding_a_local_only_event_panics() {
        let mut w = WireWriter::new();
        encode_event(&mut w, 0, 0, &NetEvent::SendDone { msg: MessageId(0) });
    }
}
