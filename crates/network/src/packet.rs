//! Packets and transport-level messages.

use dfsim_des::Time;
use dfsim_metrics::AppId;
use dfsim_topology::paths::RouteProgress;
use dfsim_topology::{NodeId, Port};

/// Identifies one transport message (a contiguous byte range between two
/// nodes). Message ids are dense and allocated sequentially by the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MessageId(pub u64);

impl MessageId {
    /// Raw index.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for MessageId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// Per-packet routing state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteState {
    /// Not yet decided — the packet is fresh at its source router.
    Fresh,
    /// A committed path plan. `revisable` allows PAR to re-evaluate the
    /// minimal decision at downstream routers of the source group.
    Planned {
        /// The plan plus Valiant progress.
        progress: RouteProgress,
        /// PAR-style in-source-group revision still allowed.
        revisable: bool,
    },
    /// Q-adaptive is still deciding hop-by-hop within the source group.
    QDeciding {
        /// Local (intra-source-group) hops taken so far; bounded at 2.
        local_hops: u8,
    },
}

/// One network packet. Packets carry their own routing state so routers stay
/// stateless with respect to in-flight traffic.
#[derive(Debug, Clone, Copy)]
pub struct Packet {
    /// Globally unique packet id (diagnostics).
    pub id: u64,
    /// The message this packet belongs to.
    pub msg: MessageId,
    /// Owning application (for per-app accounting).
    pub app: AppId,
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Payload bytes carried (≤ packet size; the message tail may be short).
    pub bytes: u32,
    /// Injection timestamp (NIC handed the first flit to the wire).
    pub injected_at: Time,
    /// Arrival time at the router currently buffering the packet (drives
    /// stall accounting and Q-adaptive transit samples).
    pub arrived_at_hop: Time,
    /// Router-to-router channels traversed so far (= VC index of next hop).
    pub hops: u8,
    /// Routing state.
    pub state: RouteState,
    /// Output port chosen at the current router (cached across blocked
    /// retries so an adaptive decision is made once per router).
    pub cached_port: Option<Port>,
}

impl Packet {
    /// Whether the packet has ever been routed non-minimally (used by
    /// reports; derived from the plan).
    pub fn took_detour(&self) -> bool {
        match self.state {
            RouteState::Planned { progress, .. } => progress.plan.is_nonminimal(),
            _ => false,
        }
    }
}

/// Split a message of `bytes` into packet payload sizes given the maximum
/// packet payload `packet_bytes`. Zero-byte messages (pure control, e.g.
/// rendezvous RTS/CTS) still occupy one minimum-size control packet.
pub fn packetize(bytes: u64, packet_bytes: u32, control_bytes: u32) -> PacketSizes {
    PacketSizes { remaining: bytes, packet_bytes, control_bytes, emitted_any: false }
}

/// Iterator over the packet payload sizes of one message.
#[derive(Debug, Clone)]
pub struct PacketSizes {
    remaining: u64,
    packet_bytes: u32,
    control_bytes: u32,
    emitted_any: bool,
}

impl PacketSizes {
    /// Total number of packets this message will produce.
    pub fn count(bytes: u64, packet_bytes: u32) -> u32 {
        if bytes == 0 {
            1
        } else {
            bytes.div_ceil(packet_bytes as u64) as u32
        }
    }
}

impl Iterator for PacketSizes {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        if self.remaining == 0 {
            if self.emitted_any {
                return None;
            }
            // Zero-byte message: one control packet.
            self.emitted_any = true;
            return Some(self.control_bytes);
        }
        self.emitted_any = true;
        let take = self.remaining.min(self.packet_bytes as u64) as u32;
        self.remaining -= take as u64;
        Some(take)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packetize_splits_with_short_tail() {
        let sizes: Vec<u32> = packetize(1200, 512, 64).collect();
        assert_eq!(sizes, vec![512, 512, 176]);
        assert_eq!(PacketSizes::count(1200, 512), 3);
    }

    #[test]
    fn packetize_exact_multiple() {
        let sizes: Vec<u32> = packetize(1024, 512, 64).collect();
        assert_eq!(sizes, vec![512, 512]);
        assert_eq!(PacketSizes::count(1024, 512), 2);
    }

    #[test]
    fn packetize_zero_byte_message_is_one_control_packet() {
        let sizes: Vec<u32> = packetize(0, 512, 64).collect();
        assert_eq!(sizes, vec![64]);
        assert_eq!(PacketSizes::count(0, 512), 1);
    }

    #[test]
    fn packetize_small_message() {
        let sizes: Vec<u32> = packetize(1, 512, 64).collect();
        assert_eq!(sizes, vec![1]);
    }

    #[test]
    fn detour_flag_follows_plan() {
        use dfsim_topology::paths::PathPlan;
        use dfsim_topology::GroupId;
        let mut p = Packet {
            id: 0,
            msg: MessageId(0),
            app: AppId(0),
            src: NodeId(0),
            dst: NodeId(1),
            bytes: 512,
            injected_at: 0,
            arrived_at_hop: 0,
            hops: 0,
            state: RouteState::Fresh,
            cached_port: None,
        };
        assert!(!p.took_detour());
        p.state = RouteState::Planned {
            progress: RouteProgress::new(PathPlan::NonMinimalGroup { via: GroupId(3) }),
            revisable: false,
        };
        assert!(p.took_detour());
    }
}
