//! Q-table lifecycle: versioned snapshots of every per-router [`QTable`],
//! fingerprinted so a stale snapshot is rejected instead of silently
//! misapplied.
//!
//! Q-adaptive routing normally cold-starts from static topology-derived
//! estimates, so every run re-pays the training time and only the paper's
//! "no pre-trained information" condition can be studied. A snapshot
//! captures the learned two-level tables of all routers after a run; a
//! later run can *warm-start* from it ([`QTableInit::Load`] on
//! [`crate::RoutingConfig`]), replacing the static estimates — enabling
//! pre-trained-vs-cold comparisons and cheap sweep restarts.
//!
//! ## Format
//!
//! A snapshot is a deterministic line-oriented text file (the vendored
//! `serde` is an offline API stub, so the format is hand-rolled). All
//! `f64` values are written as the 16-hex-digit big-endian rendering of
//! [`f64::to_bits`], so `save → load → save` is byte-identical and values
//! survive the round trip bit-exactly:
//!
//! ```text
//! dfsim-qtable v1
//! params groups=9 routers_per_group=4 nodes_per_router=2 globals_per_router=2
//! timing bandwidth_gbps=200 local_latency_ps=30000 ... buffer_packets=30
//! alpha 3fc999999999999a
//! tables routers=36 radix=7 groups=9
//! router 0
//! q1 4110a1c800000000 7ff0000000000000 ...
//! q2 ...
//! router 1
//! ...
//! ```
//!
//! ## Fingerprint
//!
//! The header carries the structural topology parameters, the full link
//! timing, and the learning rate α. [`QTableSnapshot::verify`] compares all
//! three against the loading run's configuration and returns a *named*
//! error ([`SnapshotError::ParamsMismatch`], [`SnapshotError::TimingMismatch`],
//! [`SnapshotError::AlphaMismatch`]) on any difference — learned delivery
//! estimates are only meaningful on the exact system they were trained on.

use std::path::{Path, PathBuf};

use dfsim_topology::{DragonflyParams, LinkTiming};

use crate::qtable::QTable;

/// Magic first line of every snapshot file (bump the version when the
/// format changes; old files are then rejected with
/// [`SnapshotError::VersionMismatch`]).
pub const SNAPSHOT_HEADER: &str = "dfsim-qtable v1";

/// How Q-adaptive Q-tables are initialized at network construction.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum QTableInit {
    /// Static topology-derived estimates (the paper's "no pre-trained
    /// information" condition).
    #[default]
    Cold,
    /// Warm-start from a snapshot file previously written with
    /// [`QTableSnapshot::save`]. The snapshot's fingerprint must match the
    /// run's topology parameters, link timing and α exactly.
    Load(PathBuf),
}

impl QTableInit {
    /// Convenience constructor for the load form.
    pub fn load(path: impl Into<PathBuf>) -> Self {
        QTableInit::Load(path.into())
    }

    /// Short label for reports/CLI (`cold` or `warm`).
    pub fn label(&self) -> &'static str {
        match self {
            QTableInit::Cold => "cold",
            QTableInit::Load(_) => "warm",
        }
    }
}

/// Why a snapshot could not be loaded or applied.
#[derive(Debug, Clone, PartialEq)]
pub enum SnapshotError {
    /// Reading or writing the file failed.
    Io {
        /// The offending path.
        path: PathBuf,
        /// The OS error rendering.
        msg: String,
    },
    /// The file is not a well-formed snapshot.
    Malformed {
        /// 1-based line number of the offending line.
        line: usize,
        /// What was wrong.
        msg: String,
    },
    /// The file's header names another format version.
    VersionMismatch {
        /// The first line actually found.
        found: String,
    },
    /// The snapshot was trained on a different Dragonfly structure.
    ParamsMismatch {
        /// Parameters of the loading run.
        expected: DragonflyParams,
        /// Parameters recorded in the snapshot.
        found: DragonflyParams,
    },
    /// The snapshot was trained under different link timing — the learned
    /// delivery-time estimates would be systematically wrong.
    TimingMismatch {
        /// Name of the first differing [`LinkTiming`] field.
        field: &'static str,
        /// Value in the loading run.
        expected: u64,
        /// Value recorded in the snapshot.
        found: u64,
    },
    /// The snapshot was trained with a different learning rate α.
    AlphaMismatch {
        /// α of the loading run.
        expected: f64,
        /// α recorded in the snapshot.
        found: f64,
    },
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Io { path, msg } => {
                write!(f, "Q-table snapshot I/O error on {}: {msg}", path.display())
            }
            SnapshotError::Malformed { line, msg } => {
                write!(f, "malformed Q-table snapshot (line {line}): {msg}")
            }
            SnapshotError::VersionMismatch { found } => write!(
                f,
                "Q-table snapshot version mismatch: expected '{SNAPSHOT_HEADER}', found '{found}'"
            ),
            SnapshotError::ParamsMismatch { expected, found } => write!(
                f,
                "Q-table snapshot topology fingerprint mismatch: snapshot was trained on \
                 g={} a={} p={} h={}, this run uses g={} a={} p={} h={}",
                found.groups,
                found.routers_per_group,
                found.nodes_per_router,
                found.globals_per_router,
                expected.groups,
                expected.routers_per_group,
                expected.nodes_per_router,
                expected.globals_per_router,
            ),
            SnapshotError::TimingMismatch { field, expected, found } => write!(
                f,
                "Q-table snapshot link-timing fingerprint mismatch: {field} is {found} in the \
                 snapshot but {expected} in this run"
            ),
            SnapshotError::AlphaMismatch { expected, found } => write!(
                f,
                "Q-table snapshot learning-rate fingerprint mismatch: snapshot was trained with \
                 alpha={found}, this run uses alpha={expected}"
            ),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// The raw two-level tables of one router.
#[derive(Debug, Clone, PartialEq)]
struct RouterTables {
    q1: Vec<f64>,
    q2: Vec<f64>,
}

/// A versioned snapshot of every per-router Q-table of one network,
/// fingerprinted by topology parameters, link timing and α.
#[derive(Debug, Clone, PartialEq)]
pub struct QTableSnapshot {
    params: DragonflyParams,
    timing: LinkTiming,
    /// α as raw bits so the fingerprint comparison is exact.
    alpha_bits: u64,
    radix: usize,
    groups: usize,
    tables: Vec<RouterTables>,
}

impl QTableSnapshot {
    /// Capture a snapshot from all routers' tables (index = router id).
    /// `tables` must be complete — [`crate::NetworkSim::qtable_snapshot`]
    /// returns `None` when any router lacks a Q-table (non-Q-adaptive runs).
    pub(crate) fn from_tables(
        params: DragonflyParams,
        timing: LinkTiming,
        alpha: f64,
        tables: &[&QTable],
    ) -> Self {
        let radix = params.radix() as usize;
        Self {
            params,
            timing,
            alpha_bits: alpha.to_bits(),
            radix,
            groups: params.groups as usize,
            tables: tables
                .iter()
                .map(|t| RouterTables { q1: t.q1_raw().to_vec(), q2: t.q2_raw().to_vec() })
                .collect(),
        }
    }

    /// The learning rate recorded in the fingerprint.
    pub fn alpha(&self) -> f64 {
        f64::from_bits(self.alpha_bits)
    }

    /// The topology parameters recorded in the fingerprint.
    pub fn params(&self) -> &DragonflyParams {
        &self.params
    }

    /// The link timing recorded in the fingerprint.
    pub fn timing(&self) -> &LinkTiming {
        &self.timing
    }

    /// Number of routers covered.
    pub fn num_routers(&self) -> usize {
        self.tables.len()
    }

    /// Check this snapshot against a run's configuration. Errors name the
    /// mismatched fingerprint component — a failed check means the learned
    /// estimates are meaningless for that run and must not be applied.
    pub fn verify(
        &self,
        params: &DragonflyParams,
        timing: &LinkTiming,
        alpha: f64,
    ) -> Result<(), SnapshotError> {
        if self.params != *params {
            return Err(SnapshotError::ParamsMismatch { expected: *params, found: self.params });
        }
        let fields: [(&'static str, u64, u64); 7] = [
            ("bandwidth_gbps", timing.bandwidth_gbps, self.timing.bandwidth_gbps),
            ("local_latency_ps", timing.local_latency_ps, self.timing.local_latency_ps),
            ("global_latency_ps", timing.global_latency_ps, self.timing.global_latency_ps),
            ("terminal_latency_ps", timing.terminal_latency_ps, self.timing.terminal_latency_ps),
            ("flit_bytes", timing.flit_bytes as u64, self.timing.flit_bytes as u64),
            ("packet_bytes", timing.packet_bytes as u64, self.timing.packet_bytes as u64),
            ("buffer_packets", timing.buffer_packets as u64, self.timing.buffer_packets as u64),
        ];
        for (field, expected, found) in fields {
            if expected != found {
                return Err(SnapshotError::TimingMismatch { field, expected, found });
            }
        }
        if alpha.to_bits() != self.alpha_bits {
            return Err(SnapshotError::AlphaMismatch { expected: alpha, found: self.alpha() });
        }
        Ok(())
    }

    /// Rebuild router `r`'s [`QTable`] from the snapshot (panics if `r` is
    /// out of range — callers verify the fingerprint first, and parsing
    /// enforces that the table geometry matches the params header, so the
    /// router count is pinned through the topology parameters).
    pub(crate) fn table_for(&self, r: usize) -> QTable {
        let t = &self.tables[r];
        QTable::from_raw(self.radix, self.groups, t.q1.clone(), t.q2.clone(), self.alpha())
    }

    /// Level-1 value `[dst_group][port]` of router `r` (inspection/tests).
    pub fn q1_of(&self, r: usize, dst_group: usize, port: usize) -> f64 {
        self.tables[r].q1[dst_group * self.radix + port]
    }

    // ---- text round trip ---------------------------------------------------

    /// Render the deterministic text form (see the module docs).
    pub fn to_text(&self) -> String {
        let p = &self.params;
        let t = &self.timing;
        let mut out = String::with_capacity(64 + self.tables.len() * (self.groups + 8) * 17);
        out.push_str(SNAPSHOT_HEADER);
        out.push('\n');
        out.push_str(&format!(
            "params groups={} routers_per_group={} nodes_per_router={} globals_per_router={}\n",
            p.groups, p.routers_per_group, p.nodes_per_router, p.globals_per_router
        ));
        out.push_str(&format!(
            "timing bandwidth_gbps={} local_latency_ps={} global_latency_ps={} \
             terminal_latency_ps={} flit_bytes={} packet_bytes={} buffer_packets={}\n",
            t.bandwidth_gbps,
            t.local_latency_ps,
            t.global_latency_ps,
            t.terminal_latency_ps,
            t.flit_bytes,
            t.packet_bytes,
            t.buffer_packets
        ));
        out.push_str(&format!("alpha {:016x}\n", self.alpha_bits));
        out.push_str(&format!(
            "tables routers={} radix={} groups={}\n",
            self.tables.len(),
            self.radix,
            self.groups
        ));
        for (r, t) in self.tables.iter().enumerate() {
            out.push_str(&format!("router {r}\n"));
            for (tag, vals) in [("q1", &t.q1), ("q2", &t.q2)] {
                out.push_str(tag);
                for v in vals {
                    out.push(' ');
                    out.push_str(&format!("{:016x}", v.to_bits()));
                }
                out.push('\n');
            }
        }
        out
    }

    /// Parse the text form back into a snapshot.
    pub fn from_text(s: &str) -> Result<Self, SnapshotError> {
        let mut lines = s.lines().enumerate();
        let mut next = |what: &str| {
            lines.next().ok_or(SnapshotError::Malformed {
                line: s.lines().count() + 1,
                msg: format!("unexpected end of file, expected {what}"),
            })
        };

        let (_, header) = next("the version header")?;
        if header.trim_end() != SNAPSHOT_HEADER {
            return Err(SnapshotError::VersionMismatch { found: header.to_string() });
        }
        let (ln, params_line) = next("the params line")?;
        let pv = parse_kv_line(params_line, "params", ln + 1)?;
        let params = DragonflyParams {
            groups: kv(&pv, "groups", ln + 1)? as u32,
            routers_per_group: kv(&pv, "routers_per_group", ln + 1)? as u32,
            nodes_per_router: kv(&pv, "nodes_per_router", ln + 1)? as u32,
            globals_per_router: kv(&pv, "globals_per_router", ln + 1)? as u32,
        };
        let (ln, timing_line) = next("the timing line")?;
        let tv = parse_kv_line(timing_line, "timing", ln + 1)?;
        let timing = LinkTiming {
            bandwidth_gbps: kv(&tv, "bandwidth_gbps", ln + 1)?,
            local_latency_ps: kv(&tv, "local_latency_ps", ln + 1)?,
            global_latency_ps: kv(&tv, "global_latency_ps", ln + 1)?,
            terminal_latency_ps: kv(&tv, "terminal_latency_ps", ln + 1)?,
            flit_bytes: kv(&tv, "flit_bytes", ln + 1)? as u32,
            packet_bytes: kv(&tv, "packet_bytes", ln + 1)? as u32,
            buffer_packets: kv(&tv, "buffer_packets", ln + 1)? as u32,
        };
        let (ln, alpha_line) = next("the alpha line")?;
        let alpha_hex = alpha_line.strip_prefix("alpha ").ok_or(SnapshotError::Malformed {
            line: ln + 1,
            msg: "expected 'alpha <hex>'".into(),
        })?;
        let alpha_bits = u64::from_str_radix(alpha_hex.trim(), 16).map_err(|e| {
            SnapshotError::Malformed { line: ln + 1, msg: format!("bad alpha bits: {e}") }
        })?;
        let (ln, tables_line) = next("the tables line")?;
        let hv = parse_kv_line(tables_line, "tables", ln + 1)?;
        let routers = kv(&hv, "routers", ln + 1)? as usize;
        let radix = kv(&hv, "radix", ln + 1)? as usize;
        let groups = kv(&hv, "groups", ln + 1)? as usize;
        // The table geometry is fully derived from the params header; an
        // inconsistent file must fail *here* with a named error, not pass
        // `verify` and then misindex (or silently misapply) at warm-start.
        let derived =
            (params.num_routers() as usize, params.radix() as usize, params.groups as usize);
        if (routers, radix, groups) != derived {
            return Err(SnapshotError::Malformed {
                line: ln + 1,
                msg: format!(
                    "table geometry routers={routers} radix={radix} groups={groups} does not \
                     match the params header (expects routers={} radix={} groups={})",
                    derived.0, derived.1, derived.2
                ),
            });
        }
        let a = params.routers_per_group as usize;

        let mut tables = Vec::with_capacity(routers);
        for r in 0..routers {
            let (ln, marker) = next("a router marker")?;
            if marker.trim_end() != format!("router {r}") {
                return Err(SnapshotError::Malformed {
                    line: ln + 1,
                    msg: format!("expected 'router {r}', found '{marker}'"),
                });
            }
            let (ln1, l1) = next("a q1 line")?;
            let q1 = parse_values(l1, "q1", groups * radix, ln1 + 1)?;
            let (ln2, l2) = next("a q2 line")?;
            let q2 = parse_values(l2, "q2", a * radix, ln2 + 1)?;
            tables.push(RouterTables { q1, q2 });
        }
        Ok(Self { params, timing, alpha_bits, radix, groups, tables })
    }

    /// Write the snapshot to `path`.
    pub fn save(&self, path: &Path) -> Result<(), SnapshotError> {
        std::fs::write(path, self.to_text())
            .map_err(|e| SnapshotError::Io { path: path.to_path_buf(), msg: e.to_string() })
    }

    /// Read and parse a snapshot from `path`.
    pub fn load(path: &Path) -> Result<Self, SnapshotError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| SnapshotError::Io { path: path.to_path_buf(), msg: e.to_string() })?;
        Self::from_text(&text)
    }
}

/// Parse `tag k=v k=v ...` into the `(k, v)` pairs.
fn parse_kv_line(line: &str, tag: &str, ln: usize) -> Result<Vec<(String, u64)>, SnapshotError> {
    let rest = line.strip_prefix(tag).ok_or_else(|| SnapshotError::Malformed {
        line: ln,
        msg: format!("expected a '{tag}' line, found '{line}'"),
    })?;
    rest.split_whitespace()
        .map(|pair| {
            let (k, v) = pair.split_once('=').ok_or_else(|| SnapshotError::Malformed {
                line: ln,
                msg: format!("expected 'key=value', found '{pair}'"),
            })?;
            let v = v.parse::<u64>().map_err(|e| SnapshotError::Malformed {
                line: ln,
                msg: format!("bad value for {k}: {e}"),
            })?;
            Ok((k.to_string(), v))
        })
        .collect()
}

/// Look up one key of a parsed `k=v` line.
fn kv(pairs: &[(String, u64)], key: &str, ln: usize) -> Result<u64, SnapshotError> {
    pairs
        .iter()
        .find(|(k, _)| k == key)
        .map(|&(_, v)| v)
        .ok_or_else(|| SnapshotError::Malformed { line: ln, msg: format!("missing field '{key}'") })
}

/// Parse `tag <hex> <hex> ...` into exactly `n` f64 values.
fn parse_values(line: &str, tag: &str, n: usize, ln: usize) -> Result<Vec<f64>, SnapshotError> {
    let rest = line.strip_prefix(tag).ok_or_else(|| SnapshotError::Malformed {
        line: ln,
        msg: format!("expected a '{tag}' line"),
    })?;
    let vals: Vec<f64> = rest
        .split_whitespace()
        .map(|w| {
            u64::from_str_radix(w, 16).map(f64::from_bits).map_err(|e| SnapshotError::Malformed {
                line: ln,
                msg: format!("bad {tag} value '{w}': {e}"),
            })
        })
        .collect::<Result<_, _>>()?;
    if vals.len() != n {
        return Err(SnapshotError::Malformed {
            line: ln,
            msg: format!("{tag} holds {} values, expected {n}", vals.len()),
        });
    }
    Ok(vals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfsim_topology::{RouterId, Topology};

    fn snap() -> QTableSnapshot {
        let params = DragonflyParams::tiny_72();
        let topo = Topology::new(params).unwrap();
        let timing = LinkTiming::default();
        let tables: Vec<QTable> = (0..topo.num_routers())
            .map(|r| QTable::new(&topo, RouterId(r), &timing, 0.2))
            .collect();
        let refs: Vec<&QTable> = tables.iter().collect();
        QTableSnapshot::from_tables(params, timing, 0.2, &refs)
    }

    #[test]
    fn text_round_trip_is_exact() {
        let s = snap();
        let text = s.to_text();
        let back = QTableSnapshot::from_text(&text).unwrap();
        assert_eq!(s, back);
        assert_eq!(text, back.to_text(), "save -> load -> save must be byte-identical");
    }

    #[test]
    fn rebuilt_tables_match_originals_bit_exactly() {
        let params = DragonflyParams::tiny_72();
        let topo = Topology::new(params).unwrap();
        let fresh = QTable::new(&topo, RouterId(5), &LinkTiming::default(), 0.2);
        let s = snap();
        let rebuilt = s.table_for(5);
        for g in 0..topo.num_groups() {
            for p in 0..topo.radix() {
                let a = fresh.q1(dfsim_topology::GroupId(g), dfsim_topology::Port(p));
                let b = rebuilt.q1(dfsim_topology::GroupId(g), dfsim_topology::Port(p));
                assert_eq!(a.to_bits(), b.to_bits(), "q1[{g}][{p}]");
            }
        }
    }

    #[test]
    fn verify_accepts_matching_fingerprint() {
        let s = snap();
        s.verify(&DragonflyParams::tiny_72(), &LinkTiming::default(), 0.2).unwrap();
    }

    #[test]
    fn verify_names_each_mismatch() {
        let s = snap();
        let e = s.verify(&DragonflyParams::paper_1056(), &LinkTiming::default(), 0.2).unwrap_err();
        assert!(matches!(e, SnapshotError::ParamsMismatch { .. }), "{e}");
        assert!(e.to_string().contains("topology"), "{e}");

        let t = LinkTiming { global_latency_ps: 300_001, ..LinkTiming::default() };
        let e = s.verify(&DragonflyParams::tiny_72(), &t, 0.2).unwrap_err();
        assert!(
            matches!(e, SnapshotError::TimingMismatch { field: "global_latency_ps", .. }),
            "{e}"
        );

        let e = s.verify(&DragonflyParams::tiny_72(), &LinkTiming::default(), 0.3).unwrap_err();
        assert!(matches!(e, SnapshotError::AlphaMismatch { .. }), "{e}");
        assert!(e.to_string().contains("alpha"), "{e}");
    }

    #[test]
    fn version_and_shape_errors_are_reported() {
        let e = QTableSnapshot::from_text("dfsim-qtable v99\n").unwrap_err();
        assert!(matches!(e, SnapshotError::VersionMismatch { .. }), "{e}");

        let mut text = snap().to_text();
        text = text.replacen("router 1\n", "router 7\n", 1);
        let e = QTableSnapshot::from_text(&text).unwrap_err();
        assert!(matches!(e, SnapshotError::Malformed { .. }), "{e}");

        // Table geometry inconsistent with the params header: a truncated
        // snapshot must fail parsing with a named error, not pass `verify`
        // and misindex at warm-start.
        let text = snap().to_text().replacen("tables routers=36", "tables routers=18", 1);
        let e = QTableSnapshot::from_text(&text).unwrap_err();
        assert!(matches!(e, SnapshotError::Malformed { .. }), "{e}");
        assert!(e.to_string().contains("geometry"), "{e}");
        let text = snap().to_text().replacen("radix=7", "radix=6", 1);
        let e = QTableSnapshot::from_text(&text).unwrap_err();
        assert!(e.to_string().contains("geometry"), "{e}");

        // Truncated value line.
        let s = snap();
        let text = s.to_text();
        let cut = text.rfind(' ').unwrap();
        let e = QTableSnapshot::from_text(&text[..cut]).unwrap_err();
        assert!(matches!(e, SnapshotError::Malformed { .. }), "{e}");
    }

    #[test]
    fn qtable_init_labels() {
        assert_eq!(QTableInit::Cold.label(), "cold");
        assert_eq!(QTableInit::load("/tmp/x").label(), "warm");
        assert_eq!(QTableInit::default(), QTableInit::Cold);
    }
}
