//! Network events and the effects surfaced to the layer above.

use dfsim_des::Time;
use dfsim_topology::{GroupId, NodeId, Port, RouterId};

use crate::packet::{MessageId, Packet};

/// Internal network events, driven by the world event loop.
#[derive(Debug, Clone)]
pub enum NetEvent {
    /// The NIC of `node` should try to inject its next packet.
    NicPump {
        /// Injecting node.
        node: NodeId,
    },
    /// A packet fully arrived at a router input `(port, vc)`.
    PacketArrive {
        /// Receiving router.
        router: RouterId,
        /// Input port.
        port: Port,
        /// Input virtual channel.
        vc: u8,
        /// The packet.
        packet: Packet,
    },
    /// An output link finished serializing a packet.
    OutputFree {
        /// Router owning the output.
        router: RouterId,
        /// Output port that became free.
        port: Port,
    },
    /// A downstream buffer slot was freed for `(port, vc)` of `router`.
    Credit {
        /// Router receiving the credit.
        router: RouterId,
        /// Output port the credit belongs to.
        port: Port,
        /// Virtual channel the credit belongs to.
        vc: u8,
    },
    /// The router freed a slot of `node`'s terminal input buffer.
    NodeCredit {
        /// Node whose NIC regains one credit.
        node: NodeId,
    },
    /// A packet fully arrived at its destination node.
    DeliverPacket {
        /// Destination node.
        node: NodeId,
        /// The packet.
        packet: Packet,
    },
    /// Loop-back delivery of a self-addressed message (src == dst).
    LocalDeliver {
        /// The message.
        msg: MessageId,
    },
    /// The NIC finished serializing the last packet of a message.
    SendDone {
        /// The message.
        msg: MessageId,
    },
    /// Q-adaptive feedback: the downstream neighbour reports a remaining-
    /// delivery-time sample for `(dst_group, dst_local)` through `port`.
    QFeedback {
        /// Router whose Q-table is updated.
        router: RouterId,
        /// The output port the sample applies to.
        port: Port,
        /// Destination group of the sampled packet.
        dst_group: GroupId,
        /// Destination router's local index within its group (level-2 key).
        dst_local: u32,
        /// Observed transit + estimated remaining time, picoseconds.
        sample: Time,
    },
}

/// Effects the network hands back to the transport user (the MPI layer).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetEffect {
    /// The last byte of a message left the source NIC (local completion —
    /// an eager send's buffer is reusable).
    MessageInjected {
        /// The message.
        msg: MessageId,
        /// Completion time.
        at: Time,
    },
    /// The last packet of a message reached the destination node.
    MessageDelivered {
        /// The message.
        msg: MessageId,
        /// Delivery time.
        at: Time,
    },
}
