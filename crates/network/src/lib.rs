//! Flit-timed Dragonfly network simulation (the SST/Merlin substitute).
//!
//! The model (paper §III): input-queued routers with virtual channels,
//! credit-based flow control (30-packet buffers per port VC), 128 B flits in
//! 512 B packets on 200 Gb/s links, 30 ns local / 300 ns global propagation.
//! Packets are the event unit; all serialization times are flit-derived, so
//! latency and throughput match a flit-level simulation at the granularity
//! the paper reports (see `DESIGN.md` §5 for the fidelity argument).
//!
//! * [`packet`] — packets, messages, routing state carried per packet,
//! * [`events`] — the network event enum and the effects surfaced to the
//!   MPI layer (message injected / delivered),
//! * [`router`] — per-router buffers, credits, arbitration and waiting lists,
//! * [`nic`] — per-node injection queues and packetization,
//! * [`routing`] — MIN, UGALg, UGALn, PAR and Q-adaptive decision logic,
//! * [`qtable`] — the two-level Q-table of Q-adaptive routing,
//! * [`snapshot`] — Q-table lifecycle: fingerprinted snapshots and
//!   warm-start initialization,
//! * [`sim`] — [`sim::NetworkSim`], the event handler gluing it together.
//!
//! Deadlock freedom: a packet's VC index equals the number of router-to-
//! router channels it has traversed, which increases strictly along any
//! path; the channel-dependency graph is therefore acyclic. The longest
//! legal path is a PAR revision after the packet already moved towards the
//! minimal gateway (l, l→via-gateway, g, l, l, g, l = 7 hops), hence
//! [`NUM_VCS`] = 7 — matching the literature's observation that PAR needs
//! one more VC than UGAL.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod events;
pub mod nic;
pub mod packet;
pub mod partition;
pub mod qtable;
pub mod router;
pub mod routing;
pub mod sim;
pub mod snapshot;

pub use events::{NetEffect, NetEvent};
pub use packet::{MessageId, Packet, RouteState};
pub use partition::{MsgExport, PartitionMap, QUndoEntry};
pub use qtable::QTable;
pub use routing::{QaParams, RoutingAlgo, RoutingConfig};
pub use sim::NetworkSim;
pub use snapshot::{QTableInit, QTableSnapshot, SnapshotError};

/// Virtual channels per port: covers the longest legal path (7 hops — a
/// PAR in-group revision followed by a router-level Valiant detour).
pub const NUM_VCS: u8 = 7;
