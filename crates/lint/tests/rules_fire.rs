//! Every rule is proven live: one minimal violating fixture per rule must
//! fire, the clean fixture must pass, unjustified/stale allows are
//! themselves errors, and the whole workspace must lint clean (the same
//! invariant CI enforces by running the binary).
//!
//! Fixtures live in `tests/fixtures/` — a directory name the workspace
//! walker skips, so intentionally-violating snippets never fail the real
//! pass.

use dfsim_lint::rules::Finding;
use dfsim_lint::{lint_sources, load_source};
use std::path::Path;

/// Lint one fixture as if it sat at `rel` in the workspace.
fn lint_at(rel: &str, text: &str) -> Vec<Finding> {
    lint_sources(vec![load_source(rel, text)]).findings
}

fn rules_of(findings: &[Finding]) -> Vec<&str> {
    findings.iter().map(|f| f.rule).collect()
}

// ---------------------------------------------------------------------------
// One firing fixture per rule
// ---------------------------------------------------------------------------

#[test]
fn no_wallclock_fires_outside_timing_modules() {
    let src = include_str!("fixtures/wallclock_violation.rs");
    let f = lint_at("crates/network/src/helper.rs", src);
    assert_eq!(rules_of(&f), vec!["no-wallclock"], "{f:#?}");
    assert_eq!(f[0].line, 4);
    assert!(f[0].excerpt.contains("Instant"), "{:?}", f[0]);
}

#[test]
fn no_wallclock_is_silent_in_designated_timing_modules() {
    let src = include_str!("fixtures/wallclock_violation.rs");
    for rel in [
        "crates/core/src/runner.rs",
        "crates/core/src/sweep.rs",
        "crates/core/src/partition.rs",
        "crates/core/src/cache.rs",
        "crates/bench/src/bin/fig99.rs",
    ] {
        let f = lint_at(rel, src);
        assert!(
            !rules_of(&f).contains(&"no-wallclock"),
            "no-wallclock must not fire in {rel}: {f:#?}"
        );
    }
}

#[test]
fn no_ambient_env_fires_outside_resolution_layers() {
    let src = include_str!("fixtures/ambient_env_violation.rs");
    let f = lint_at("crates/core/src/simulation.rs", src);
    assert_eq!(rules_of(&f), vec!["no-ambient-env"], "{f:#?}");
    // …including in binaries and tests: there is no class exemption.
    let f = lint_at("src/bin/dfsim.rs", src);
    assert_eq!(rules_of(&f), vec!["no-ambient-env"], "{f:#?}");
}

#[test]
fn no_ambient_env_is_silent_in_spec_and_cache() {
    let src = include_str!("fixtures/ambient_env_violation.rs");
    for rel in ["crates/core/src/spec.rs", "crates/core/src/cache.rs"] {
        assert!(lint_at(rel, src).is_empty(), "env reads are the {rel} layer's job");
    }
}

#[test]
fn no_unordered_iteration_fires_in_sim_state_crates() {
    let src = include_str!("fixtures/unordered_violation.rs");
    for rel in [
        "crates/des/src/helper.rs",
        "crates/network/src/helper.rs",
        "crates/topology/src/helper.rs",
        "crates/mpi/src/helper.rs",
        "crates/metrics/src/helper.rs",
        "crates/core/src/world.rs",
    ] {
        let f = lint_at(rel, src);
        assert!(
            !f.is_empty() && rules_of(&f).iter().all(|r| *r == "no-unordered-iteration"),
            "{rel}: {f:#?}"
        );
    }
}

#[test]
fn no_unordered_iteration_is_silent_off_the_sim_path() {
    let src = include_str!("fixtures/unordered_violation.rs");
    // Orchestration/presentation code may hash; determinism of reports
    // never observes it.
    for rel in ["crates/core/src/spec.rs", "crates/bench/src/helper.rs", "tests/some_suite.rs"] {
        assert!(lint_at(rel, src).is_empty(), "{rel} is out of scope");
    }
}

#[test]
fn no_ad_hoc_rng_fires_everywhere_but_des_rng() {
    let src = include_str!("fixtures/rng_violation.rs");
    let f = lint_at("crates/apps/src/ur.rs", src);
    assert_eq!(rules_of(&f), vec!["no-ad-hoc-rng"], "{f:#?}");
    // Tests are NOT exempt: OS entropy breaks reproducibility anywhere.
    let f = lint_at("tests/some_suite.rs", src);
    assert_eq!(rules_of(&f), vec!["no-ad-hoc-rng"], "{f:#?}");
    assert!(lint_at("crates/des/src/rng.rs", src).is_empty(), "des::rng owns randomness");
}

#[test]
fn stdout_discipline_fires_in_library_code_only() {
    let src = include_str!("fixtures/stdout_violation.rs");
    let f = lint_at("crates/metrics/src/summary.rs", src);
    assert_eq!(rules_of(&f), vec!["stdout-discipline"], "{f:#?}");
    // Binaries, examples, tests and the designated emitter own stdout.
    for rel in [
        "src/bin/dfsim.rs",
        "crates/bench/src/bin/fig8.rs",
        "examples/quickstart.rs",
        "tests/some_suite.rs",
        "crates/bench/src/lib.rs",
    ] {
        // (crate-root placements still owe `#![deny(unsafe_code)]`, so
        // filter to this rule rather than asserting emptiness.)
        let f = lint_at(rel, src);
        assert!(!rules_of(&f).contains(&"stdout-discipline"), "{rel} may print: {f:#?}");
    }
}

#[test]
fn unsafe_audit_fires_without_safety_comment() {
    let src = include_str!("fixtures/unsafe_violation.rs");
    let f = lint_at("crates/core/src/helper.rs", src);
    assert_eq!(rules_of(&f), vec!["unsafe-audit"], "{f:#?}");
    assert!(f[0].message.contains("SAFETY"), "{:?}", f[0]);
}

#[test]
fn unsafe_audit_accepts_documented_blocks() {
    let src = include_str!("fixtures/unsafe_documented.rs");
    assert!(lint_at("crates/core/src/helper.rs", src).is_empty());
}

#[test]
fn unsafe_audit_requires_deny_attribute_in_unsafe_free_crate_roots() {
    let bare = "//! A crate root.\npub fn f() {}\n";
    let f = lint_at("crates/des/src/lib.rs", bare);
    assert_eq!(rules_of(&f), vec!["unsafe-audit"], "{f:#?}");
    assert!(f[0].message.contains("deny(unsafe_code)"), "{:?}", f[0]);
    let denied = "//! A crate root.\n#![deny(unsafe_code)]\npub fn f() {}\n";
    assert!(lint_at("crates/des/src/lib.rs", denied).is_empty());
}

#[test]
fn cache_key_coverage_fails_on_an_unclassified_spec_key() {
    let report = lint_sources(vec![
        load_source("crates/core/src/spec.rs", include_str!("fixtures/spec_keys_registry.rs")),
        load_source(
            "crates/core/src/cache.rs",
            include_str!("fixtures/classification_missing_key.rs"),
        ),
    ]);
    let f = &report.findings;
    assert_eq!(rules_of(f), vec!["cache-key-coverage"], "{f:#?}");
    assert!(f[0].message.contains("`new_knob`"), "must name the missing key: {:?}", f[0]);
    assert_eq!(report.cache_keys_checked, 2, "workload and seed are classified");
}

#[test]
fn cache_key_coverage_passes_when_every_key_is_classified() {
    let report = lint_sources(vec![
        load_source("crates/core/src/spec.rs", include_str!("fixtures/spec_keys_registry.rs")),
        load_source(
            "crates/core/src/cache.rs",
            include_str!("fixtures/classification_complete.rs"),
        ),
    ]);
    assert!(report.findings.is_empty(), "{:#?}", report.findings);
    assert_eq!(report.cache_keys_checked, 3);
}

#[test]
fn cache_key_coverage_flags_a_registry_without_classification() {
    let report = lint_sources(vec![load_source(
        "crates/core/src/spec.rs",
        include_str!("fixtures/spec_keys_registry.rs"),
    )]);
    assert_eq!(rules_of(&report.findings), vec!["cache-key-coverage"]);
    assert!(report.findings[0].message.contains("KEY_CLASSIFICATION"));
}

// ---------------------------------------------------------------------------
// v2: failure-behavior rules
// ---------------------------------------------------------------------------

#[test]
fn no_panic_paths_fires_in_hot_path_modules() {
    let src = include_str!("fixtures/panic_violation.rs");
    for rel in [
        "crates/des/src/helper.rs",
        "crates/network/src/helper.rs",
        "crates/mpi/src/helper.rs",
        "crates/metrics/src/helper.rs",
        "crates/core/src/partition.rs",
    ] {
        let f = lint_at(rel, src);
        assert_eq!(rules_of(&f), vec!["no-panic-paths"; 3], "{rel}: {f:#?}");
    }
    let lines: Vec<usize> =
        lint_at("crates/des/src/helper.rs", src).iter().map(|f| f.line).collect();
    assert_eq!(lines, vec![4, 8, 14], "unwrap, expect, unreachable!");
}

#[test]
fn no_panic_paths_is_silent_off_the_hot_path() {
    let src = include_str!("fixtures/panic_violation.rs");
    // Orchestration, one-shot binaries and tests may still panic freely.
    for rel in [
        "crates/core/src/sweep.rs",
        "crates/bench/src/helper.rs",
        "src/bin/dfsim.rs",
        "crates/des/tests/some_suite.rs",
    ] {
        let f = lint_at(rel, src);
        assert!(!rules_of(&f).contains(&"no-panic-paths"), "{rel} may panic: {f:#?}");
    }
}

#[test]
fn no_panic_paths_clean_rewrite_passes() {
    let src = include_str!("fixtures/panic_clean.rs");
    let f = lint_at("crates/des/src/helper.rs", src);
    assert!(f.is_empty(), "error-enum rewrites and unwrap_or must not fire: {f:#?}");
}

#[test]
fn no_panic_paths_justified_allow_suppresses() {
    let src = include_str!("fixtures/panic_allow.rs");
    let f = lint_at("crates/des/src/helper.rs", src);
    assert!(f.is_empty(), "a written invariant suppresses and counts as used: {f:#?}");
}

#[test]
fn no_panic_paths_audits_indexing_and_division_in_codec_files_only() {
    let src = include_str!("fixtures/codec_panic_violation.rs");
    let f = lint_at("crates/core/src/trace.rs", src);
    assert_eq!(rules_of(&f), vec!["no-panic-paths"; 2], "{f:#?}");
    assert!(f[0].message.contains("indexing"), "{:?}", f[0]);
    assert!(f[1].message.contains("division"), "{:?}", f[1]);
    // The same source in a non-codec hot-path module is fine: indexing
    // there works on internal state, not decoded input.
    let f = lint_at("crates/des/src/helper.rs", src);
    assert!(f.is_empty(), "index/division audit is codec-scoped: {f:#?}");
}

#[test]
fn codec_cast_audit_fires_on_narrowing_casts() {
    let src = include_str!("fixtures/cast_violation.rs");
    for rel in
        ["crates/core/src/trace.rs", "crates/core/src/cache.rs", "crates/metrics/src/trace.rs"]
    {
        let f = lint_at(rel, src);
        assert_eq!(rules_of(&f), vec!["codec-cast-audit"], "{rel}: {f:#?}");
        assert_eq!(f[0].line, 5);
    }
    // Outside codec files the cast is unaudited.
    let f = lint_at("crates/core/src/world.rs", src);
    assert!(f.is_empty(), "cast audit is codec-scoped: {f:#?}");
}

#[test]
fn codec_cast_audit_accepts_try_from_and_widening() {
    let src = include_str!("fixtures/cast_clean.rs");
    let f = lint_at("crates/core/src/trace.rs", src);
    assert!(f.is_empty(), "try_from and `as u64` widening must not fire: {f:#?}");
}

#[test]
fn codec_cast_audit_justified_allow_suppresses() {
    let src = include_str!("fixtures/cast_allow.rs");
    let f = lint_at("crates/core/src/trace.rs", src);
    assert!(f.is_empty(), "a named bound suppresses the cast finding: {f:#?}");
}

#[test]
fn lock_discipline_fires_on_guard_held_across_send() {
    let src = include_str!("fixtures/lock_violation.rs");
    let f = lint_at("crates/core/src/helper.rs", src);
    assert_eq!(rules_of(&f), vec!["lock-discipline"], "{f:#?}");
    assert_eq!(f[0].line, 10);
    assert!(f[0].message.contains("`.send()` can block"), "{:?}", f[0]);
    assert!(f[0].message.contains("`state`"), "must name the lock: {:?}", f[0]);
}

#[test]
fn lock_discipline_clean_when_guard_dropped_before_send() {
    let src = include_str!("fixtures/lock_clean.rs");
    let f = lint_at("crates/core/src/helper.rs", src);
    assert!(f.is_empty(), "drop(guard) before send must pass: {f:#?}");
}

#[test]
fn lock_discipline_justified_allow_suppresses() {
    let src = include_str!("fixtures/lock_allow.rs");
    let f = lint_at("crates/core/src/helper.rs", src);
    assert!(f.is_empty(), "a written no-deadlock argument suppresses: {f:#?}");
}

#[test]
fn lock_discipline_requires_a_declared_order_for_nested_locks() {
    let nested = "use std::sync::Mutex;\n\
                  pub fn f(a: &Mutex<u32>, b: &Mutex<u32>) -> u32 {\n\
                  let ga = a.lock().unwrap_or_else(|e| e.into_inner());\n\
                  let gb = b.lock().unwrap_or_else(|e| e.into_inner());\n\
                  *ga + *gb\n\
                  }\n";
    let f = lint_at("crates/core/src/helper.rs", nested);
    assert_eq!(rules_of(&f), vec!["lock-discipline"], "{f:#?}");
    assert!(f[0].message.contains("LOCK_ORDER"), "{:?}", f[0]);

    // Declaring the order in acquisition order makes the same code clean.
    let declared = format!("pub const LOCK_ORDER: [&str; 2] = [\"a\", \"b\"];\n{nested}");
    let f = lint_at("crates/core/src/helper.rs", &declared);
    assert!(f.is_empty(), "declared order must pass: {f:#?}");

    // A declaration that contradicts the acquisitions fires.
    let contradicted = format!("pub const LOCK_ORDER: [&str; 2] = [\"b\", \"a\"];\n{nested}");
    let f = lint_at("crates/core/src/helper.rs", &contradicted);
    assert_eq!(rules_of(&f), vec!["lock-discipline"], "{f:#?}");
    assert!(f[0].message.contains("violates the declared `LOCK_ORDER`"), "{:?}", f[0]);
}

#[test]
fn dead_knob_fires_on_a_flag_nothing_parses() {
    let src = include_str!("fixtures/knob_registry_dead.rs");
    let f = lint_at("crates/core/src/spec.rs", src);
    assert_eq!(rules_of(&f), vec!["dead-knob"], "{f:#?}");
    assert!(f[0].message.contains("`--ghost`"), "must name the dead flag: {:?}", f[0]);
    assert!(!f[0].message.contains("--seed"), "the parsed flag is live: {:?}", f[0]);
}

#[test]
fn dead_knob_passes_when_every_flag_is_parsed() {
    let src = include_str!("fixtures/knob_registry_live.rs");
    let f = lint_at("crates/core/src/spec.rs", src);
    assert!(f.is_empty(), "{f:#?}");
}

#[test]
fn dead_knob_fires_on_a_parsed_but_undeclared_flag() {
    let report = lint_sources(vec![
        load_source("crates/core/src/spec.rs", include_str!("fixtures/knob_registry_live.rs")),
        load_source(
            "crates/core/src/cli.rs",
            "pub fn parses(arg: &str) -> bool {\narg == \"--rogue\"\n}\n",
        ),
    ]);
    let f = &report.findings;
    assert_eq!(rules_of(f), vec!["dead-knob"], "{f:#?}");
    assert!(f[0].message.contains("`--rogue`"), "{:?}", f[0]);
    assert!(f[0].message.contains("not declared"), "{:?}", f[0]);
    assert_eq!(f[0].file, "crates/core/src/cli.rs");
}

#[test]
fn dead_knob_ignores_test_only_flags_and_out_of_scope_crates() {
    let registry = include_str!("fixtures/knob_registry_live.rs");
    // A flag-shaped literal in a test region is not a parser arm…
    let report = lint_sources(vec![
        load_source("crates/core/src/spec.rs", registry),
        load_source(
            "crates/core/tests/cli_suite.rs",
            "pub fn parses(arg: &str) -> bool {\narg == \"--warp\"\n}\n",
        ),
    ]);
    assert!(report.findings.is_empty(), "{:#?}", report.findings);
    // …and neither is one outside the knob crates (e.g. the lint CLI).
    let report = lint_sources(vec![
        load_source("crates/core/src/spec.rs", registry),
        load_source(
            "crates/lint/src/cli.rs",
            "pub fn parses(arg: &str) -> bool {\narg == \"--root\"\n}\n",
        ),
    ]);
    assert!(report.findings.is_empty(), "{:#?}", report.findings);
}

#[test]
fn dead_knob_cannot_be_waived() {
    // Like cache-key-coverage, dead-knob is a registry cross-check: an
    // allow suppresses nothing and is itself flagged as stale.
    let src = format!(
        "// lint: allow(dead-knob) — trying to waive the unwaivable\n{}",
        include_str!("fixtures/knob_registry_dead.rs")
    );
    let f = lint_at("crates/core/src/spec.rs", &src);
    let mut rules = rules_of(&f);
    rules.sort();
    assert_eq!(rules, vec!["allow-audit", "dead-knob"], "{f:#?}");
}

// ---------------------------------------------------------------------------
// The allow mechanism
// ---------------------------------------------------------------------------

#[test]
fn justified_allow_suppresses_and_counts_as_used() {
    let src = include_str!("fixtures/allow_justified.rs");
    assert!(lint_at("crates/metrics/src/helper.rs", src).is_empty());
}

#[test]
fn unjustified_allow_is_an_error_and_suppresses_nothing() {
    let src = include_str!("fixtures/allow_unjustified.rs");
    let findings = lint_at("crates/metrics/src/helper.rs", src);
    let mut rules = rules_of(&findings);
    rules.sort();
    assert_eq!(rules, vec!["allow-audit", "no-wallclock"]);
}

#[test]
fn stale_allow_is_an_error() {
    let src = include_str!("fixtures/allow_stale.rs");
    let f = lint_at("crates/metrics/src/helper.rs", src);
    assert_eq!(rules_of(&f), vec!["allow-audit"], "{f:#?}");
    assert!(f[0].message.contains("stale"), "{:?}", f[0]);
}

#[test]
fn allow_naming_an_unknown_rule_is_an_error() {
    let src = "pub fn f() {}\n// lint: allow(no-such-rule) — whatever\npub fn g() {}\n";
    let f = lint_at("crates/metrics/src/helper.rs", src);
    assert_eq!(rules_of(&f), vec!["allow-audit"], "{f:#?}");
    assert!(f[0].message.contains("no-such-rule"));
}

// ---------------------------------------------------------------------------
// Clean snippet + whole-workspace pass
// ---------------------------------------------------------------------------

#[test]
fn clean_snippet_passes_in_the_most_restrictive_scope() {
    let src = include_str!("fixtures/clean.rs");
    let f = lint_at("crates/des/src/helper.rs", src);
    assert!(f.is_empty(), "banned names in literals/comments must not fire: {f:#?}");
}

/// The invariant CI enforces: the real workspace lints clean, with the
/// real spec-key registry cross-checked against the real classification.
#[test]
fn workspace_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = dfsim_lint::lint_workspace(&root).expect("workspace scan");
    assert!(
        report.findings.is_empty(),
        "the workspace must lint clean:\n{}",
        report.findings.iter().map(|f| f.to_string()).collect::<Vec<_>>().join("\n")
    );
    assert!(report.files_scanned > 100, "walker lost the tree? {}", report.files_scanned);
    assert!(
        report.cache_keys_checked >= 31,
        "cache-key-coverage did not find the real registry ({} keys checked)",
        report.cache_keys_checked
    );
    // v2 pin: the failure-behavior rules are in the pass that just ran
    // clean, so the whole workspace is panic-audited, lock-ordered,
    // cast-audited and knob-wired — not merely deterministic.
    for rule in ["no-panic-paths", "lock-discipline", "codec-cast-audit", "dead-knob"] {
        assert!(dfsim_lint::rules::RULES.contains(&rule), "v2 rule {rule} missing from the pass");
    }
}

/// The CLI contract CI scripts rely on: exit 0 + summary on a clean tree,
/// exit 2 with `file:line: rule:` findings on stdout otherwise.
#[test]
fn binary_exits_2_on_violations_and_0_when_clean() {
    let dir = std::env::temp_dir().join(format!("dfsim_lint_e2e_{}", std::process::id()));
    let src_dir = dir.join("crates/network/src");
    std::fs::create_dir_all(&src_dir).expect("mkdir");
    std::fs::write(src_dir.join("helper.rs"), include_str!("fixtures/wallclock_violation.rs"))
        .expect("write fixture");

    let bin = env!("CARGO_BIN_EXE_dfsim-lint");
    let out = std::process::Command::new(bin)
        .args(["--root", dir.to_str().unwrap()])
        .output()
        .expect("run dfsim-lint");
    assert_eq!(out.status.code(), Some(2), "violations must exit 2");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("crates/network/src/helper.rs:4: no-wallclock:"),
        "machine-readable finding expected, got:\n{stdout}"
    );

    std::fs::write(src_dir.join("helper.rs"), "pub fn f() {}\n").expect("write clean");
    let out = std::process::Command::new(bin)
        .args(["--root", dir.to_str().unwrap()])
        .output()
        .expect("run dfsim-lint");
    assert_eq!(out.status.code(), Some(0), "clean tree must exit 0");

    std::fs::remove_dir_all(&dir).ok();
}
