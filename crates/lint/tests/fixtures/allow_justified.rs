// A justified waiver: the finding on the next line is suppressed and the
// directive counts as used.
pub fn poll_deadline() -> bool {
    // lint: allow(no-wallclock) — host-side watchdog for interactive
    // progress display; never feeds simulated time.
    let t = std::time::Instant::now();
    t.elapsed().as_secs() < 1
}
