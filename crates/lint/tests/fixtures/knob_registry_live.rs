//! Fixture: every registered flag has a parser arm, and every
//! flag-shaped literal the parser matches is registered — clean under
//! dead-knob.

/// Flags the binaries accept.
pub const CLI_FLAGS: [&str; 2] = ["--ghost", "--seed"];

/// Both declared flags are consumed.
pub fn parses(arg: &str) -> bool {
    arg == "--seed" || arg == "--ghost"
}
