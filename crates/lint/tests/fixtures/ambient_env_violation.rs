// Must fire no-ambient-env anywhere outside the spec/cache resolution
// layers.
pub fn scale() -> f64 {
    std::env::var("SCALE").ok().and_then(|v| v.parse().ok()).unwrap_or(1.0)
}
