//! Fixture: the same publish with the guard dropped before the send —
//! clean under lock-discipline.

use std::sync::mpsc::Sender;
use std::sync::Mutex;

pub fn publish(state: &Mutex<u32>, tx: &Sender<u32>) {
    let g = state.lock().unwrap_or_else(|e| e.into_inner());
    let v = *g;
    drop(g);
    tx.send(v).ok();
}
