// Must fire stdout-discipline in a library crate (stdout belongs to the
// designated report/CSV emitters).
pub fn report_progress(done: usize) {
    println!("{done} cells done");
}
