//! Fixture: codec-only no-panic-paths extensions (intentionally
//! violating): direct indexing and bare division on decoded input.

pub fn first_byte(data: &[u8]) -> u8 {
    data[0]
}

pub fn per_frame(total: u64, frames: u64) -> u64 {
    total / frames
}
