// A waiver that suppresses nothing: must be flagged stale so allow
// annotations can never rot in place.
pub fn add(a: u32, b: u32) -> u32 {
    // lint: allow(no-wallclock) — covers nothing, must be reported.
    a + b
}
