//! Fixture: a hot-path panic carrying a written invariant — the justified
//! allow suppresses the finding and counts as used.

pub fn head(v: &[u32]) -> u32 {
    // lint: allow(no-panic-paths) — the caller loops `while !v.is_empty()`, so the slice always has a head here
    *v.first().unwrap()
}
