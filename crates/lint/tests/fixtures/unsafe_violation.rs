// Must fire unsafe-audit: no SAFETY comment on the block.
pub fn reinterpret(x: &u64) -> &i64 {
    let p = x as *const u64 as *const i64;
    unsafe { &*p }
}
