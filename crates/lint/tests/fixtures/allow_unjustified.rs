// An allow with no reason: must produce an allow-audit error AND leave
// the underlying finding unsuppressed.
pub fn poll_deadline_ms() -> u128 {
    // lint: allow(no-wallclock)
    std::time::Instant::now().elapsed().as_millis()
}
