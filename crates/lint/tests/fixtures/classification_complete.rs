// Classifies every key of the synthetic registry: coverage must pass.
pub const KEY_CLASSIFICATION: [(&str, KeyClass); 3] = [
    ("workload", KeyClass::Relevant),
    ("seed", KeyClass::Relevant),
    ("new_knob", KeyClass::Normalized),
];
