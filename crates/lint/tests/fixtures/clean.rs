//! A clean snippet: banned names appear only inside literals and
//! comments, where rules must never fire — this is exactly why the lint
//! lexes instead of grepping.

/* block comment: HashMap, Instant, env::var, thread_rng, unsafe.
   /* nested: SystemTime */ still one comment. */

pub fn describe() -> String {
    let s = "HashMap and SystemTime and env::var in a string";
    let r = r#"thread_rng " quoted unsafe"#;
    let c = 'x';
    let quote = '\'';
    let lifetime_ok: &'static str = "println!(\"never fires\")";
    format!("{s} {r} {c} {quote} {lifetime_ok}")
}
