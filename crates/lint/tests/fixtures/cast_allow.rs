//! Fixture: a justified narrowing cast in codec code — the allow names
//! the bound that makes the wrap impossible.

pub fn tag(word: u32) -> u8 {
    // lint: allow(codec-cast-audit) — the header validator already rejected words above 0xFF, so the low byte is the whole value
    word as u8
}
