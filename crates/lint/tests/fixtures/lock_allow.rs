//! Fixture: a guard deliberately held across a send, with the invariant
//! written down — the justified allow suppresses the finding.

use std::sync::mpsc::Sender;
use std::sync::Mutex;

pub fn publish(state: &Mutex<u32>, tx: &Sender<u32>) {
    let g = state.lock().unwrap_or_else(|e| e.into_inner());
    // lint: allow(lock-discipline) — the channel is unbounded and its receiver never takes `state`, so this send cannot block on the guard
    tx.send(*g).ok();
}
