// Must pass unsafe-audit: the block carries a SAFETY justification.
pub fn reinterpret(x: &u64) -> &i64 {
    let p = x as *const u64 as *const i64;
    // SAFETY: u64 and i64 have identical size and alignment, and the
    // reference's lifetime is inherited from the borrow of `x`.
    unsafe { &*p }
}
