// Must fire no-wallclock when placed in library code outside the
// designated timing modules.
pub fn now_ms() -> u128 {
    let t0 = std::time::Instant::now();
    t0.elapsed().as_millis()
}
