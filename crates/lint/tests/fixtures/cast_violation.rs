//! Fixture: a narrowing `as` cast in codec code (intentionally
//! violating) — a frame length that silently wraps past `u32::MAX`.

pub fn frame_len(n: usize) -> u32 {
    n as u32
}
