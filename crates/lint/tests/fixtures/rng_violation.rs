// Must fire no-ad-hoc-rng everywhere except des::rng.
pub fn jitter() -> u64 {
    let mut rng = rand::thread_rng();
    rng.gen_range(0..10)
}
