//! Fixture: a mutex guard held across a blocking channel send
//! (intentionally violating) — the receiver may need this same mutex to
//! drain, which deadlocks both sides.

use std::sync::mpsc::Sender;
use std::sync::Mutex;

pub fn publish(state: &Mutex<u32>, tx: &Sender<u32>) {
    let g = state.lock().unwrap_or_else(|e| e.into_inner());
    tx.send(*g).ok();
}
