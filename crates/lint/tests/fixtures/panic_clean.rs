//! Fixture: the same operations rewritten onto an error enum — clean in
//! the strictest hot-path scope. `unwrap_or`-style non-panicking helpers
//! must not fire either.

pub fn head(v: &[u32]) -> Result<u32, &'static str> {
    v.first().copied().ok_or("empty input")
}

pub fn named(v: Option<u32>) -> u32 {
    v.unwrap_or(0)
}

pub fn never(kind: u8) -> Result<u32, &'static str> {
    match kind {
        0 => Ok(1),
        _ => Err("unknown kind"),
    }
}
