// Synthetic spec-key registry: `new_knob` is the key the classification
// fixtures forget (or remember), driving the cache-key-coverage tests.
pub const SPEC_KEYS: [&str; 3] = ["workload", "seed", "new_knob"];
