// Synthetic spec-key registry: `new_knob` is the key the classification
// fixtures forget (or remember), driving the cache-key-coverage tests.
pub const SPEC_KEYS: [&str; 3] = ["workload", "seed", "new_knob"];

// Every registered key has a consuming arm, keeping dead-knob silent so
// the coverage tests exercise exactly one rule.
pub fn apply_key(key: &str) -> bool {
    matches!(key, "workload" | "seed" | "new_knob")
}
