//! Fixture: a CLI-flag registry declaring a flag nothing parses
//! (intentionally violating dead-knob).

/// Flags the binaries accept.
pub const CLI_FLAGS: [&str; 2] = ["--ghost", "--seed"];

/// The one real parser arm: only `--seed` is consumed.
pub fn parses(arg: &str) -> bool {
    arg == "--seed"
}
