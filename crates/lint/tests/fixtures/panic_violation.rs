//! Fixture: panicking constructs on a hot path (intentionally violating).

pub fn head(v: &[u32]) -> u32 {
    *v.first().unwrap()
}

pub fn named(v: Option<u32>) -> u32 {
    v.expect("present")
}

pub fn never(kind: u8) -> u32 {
    match kind {
        0 => 1,
        _ => unreachable!("kinds above 0 are filtered upstream"),
    }
}
