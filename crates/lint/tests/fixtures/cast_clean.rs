//! Fixture: codec casts done right — `try_from` onto a named error for
//! narrowing, and plain `as` for widening (which cannot wrap and must
//! not fire).

pub fn frame_len(n: usize) -> Result<u32, &'static str> {
    u32::try_from(n).map_err(|_| "frame length overflows the u32 length word")
}

pub fn widen(n: u32) -> u64 {
    u64::from(n) + (n as u64)
}
