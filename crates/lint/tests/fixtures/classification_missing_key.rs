// Classifies everything except `new_knob`: cache-key-coverage must fail
// naming the missing key.
pub const KEY_CLASSIFICATION: [(&str, KeyClass); 2] =
    [("workload", KeyClass::Relevant), ("seed", KeyClass::Relevant)];
