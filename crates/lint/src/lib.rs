//! `dfsim-lint` — determinism & panic-safety static analysis for the
//! dfsim workspace.
//!
//! Every bit-identity claim in this repo (reports identical across queue
//! backends, partition counts, trace replay, cache replay) rests on
//! source-level conventions: wall-clock reads live in designated timing
//! modules, env reads in the resolution layers, sim state never iterates
//! hash-ordered containers, randomness flows from seeded streams, stdout
//! carries only report data, `unsafe` is audited, and every spec key is
//! explicitly classified for the result cache. v2 adds *failure-behavior*
//! rules: hot-path modules cannot panic without a written invariant,
//! mutex guards are never held across blocking calls, codec casts cannot
//! silently wrap, and every user-settable knob (spec key, env var, CLI
//! flag) provably reaches a read site. This crate makes those conventions
//! machine-checked on every PR:
//!
//! ```text
//! cargo run --release -p dfsim-lint        # lint the workspace, exit 2 on findings
//! ```
//!
//! The pass is deliberately `--fix`-free: every violation is either a real
//! bug to fix by hand or a justified exception to annotate with
//! `// lint: allow(<rule>) — <reason>` (see [`rules`]).

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod lexer;
pub mod rules;

use rules::{FileClass, Finding, SourceFile};
use std::path::{Path, PathBuf};

/// Result of a lint pass over a file tree.
#[derive(Debug)]
pub struct LintReport {
    /// Findings sorted by `(file, line, rule)`; empty means clean.
    pub findings: Vec<Finding>,
    /// `.rs` files scanned.
    pub files_scanned: usize,
    /// Spec keys cross-checked by cache-key-coverage (0 when the tree has
    /// no `SPEC_KEYS` registry — e.g. rule fixtures).
    pub cache_keys_checked: usize,
}

/// Directories never linted: build output, offline third-party stubs,
/// VCS metadata, and rule fixtures (which violate on purpose).
const SKIP_DIRS: [&str; 4] = ["target", "vendor", ".git", "fixtures"];

/// Lint every `.rs` file under `root` (the workspace checkout).
pub fn lint_workspace(root: &Path) -> std::io::Result<LintReport> {
    let mut paths = Vec::new();
    walk(root, root, &mut paths)?;
    paths.sort();
    let mut files = Vec::with_capacity(paths.len());
    for rel in paths {
        let text = std::fs::read_to_string(root.join(&rel))?;
        files.push(load_source(&rel, &text));
    }
    Ok(lint_sources(files))
}

/// Lint an already-loaded set of sources (fixture tests drive this).
pub fn lint_sources(files: Vec<SourceFile>) -> LintReport {
    let mut findings = Vec::new();
    for f in &files {
        findings.extend(rules::lint_file(f));
    }
    rules::check_crate_roots(&files, &mut findings);
    let cache_keys_checked = rules::check_cache_key_coverage(&files, &mut findings);
    rules::check_dead_knobs(&files, &mut findings);
    findings.sort();
    LintReport { findings, files_scanned: files.len(), cache_keys_checked }
}

/// Lex and classify one source file given its workspace-relative path.
pub fn load_source(rel: &str, text: &str) -> SourceFile {
    SourceFile {
        rel: rel.to_string(),
        krate: crate_of(rel),
        class: classify(rel),
        lexed: lexer::lex(text),
        lines: text.lines().map(|l| l.to_string()).collect(),
    }
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<String>) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> =
        std::fs::read_dir(dir)?.filter_map(|e| e.ok().map(|e| e.path())).collect();
    entries.sort(); // deterministic scan order, independent of the OS
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if SKIP_DIRS.contains(&name) || name.starts_with('.') {
                continue;
            }
            walk(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            out.push(rel);
        }
    }
    Ok(())
}

/// Which crate a workspace-relative path belongs to (`root` for the
/// facade package's `src/`, `tests/`, `examples/`).
fn crate_of(rel: &str) -> String {
    match rel.strip_prefix("crates/").and_then(|r| r.split('/').next()) {
        Some(c) => c.to_string(),
        None => "root".to_string(),
    }
}

/// Scope class from the path shape: bins/examples own stdout, tests and
/// benches may time and print, everything else is library source.
fn classify(rel: &str) -> FileClass {
    let in_dir = |d: &str| rel.contains(&format!("/{d}/")) || rel.starts_with(&format!("{d}/"));
    if in_dir("tests") {
        FileClass::Test
    } else if in_dir("benches") {
        FileClass::Bench
    } else if in_dir("bin") || in_dir("examples") || rel.ends_with("/main.rs") {
        FileClass::Bin
    } else {
        FileClass::Lib
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_by_path_shape() {
        assert_eq!(classify("crates/core/src/world.rs"), FileClass::Lib);
        assert_eq!(classify("crates/core/src/bin/tool.rs"), FileClass::Bin);
        assert_eq!(classify("src/bin/dfsim.rs"), FileClass::Bin);
        assert_eq!(classify("examples/quickstart.rs"), FileClass::Bin);
        assert_eq!(classify("tests/golden_regression.rs"), FileClass::Test);
        assert_eq!(classify("crates/des/tests/proptest_queue.rs"), FileClass::Test);
        assert_eq!(classify("crates/bench/benches/event_queue.rs"), FileClass::Bench);
        assert_eq!(classify("crates/lint/src/main.rs"), FileClass::Bin);
    }

    #[test]
    fn crate_attribution() {
        assert_eq!(crate_of("crates/des/src/rng.rs"), "des");
        assert_eq!(crate_of("src/lib.rs"), "root");
        assert_eq!(crate_of("tests/end_to_end.rs"), "root");
    }
}
