//! `dfsim-lint` CLI: lint the workspace, print machine-readable findings,
//! exit 2 on violations (the same exit-2 convention as every other dfsim
//! input error).
//!
//! ```text
//! dfsim-lint [--root DIR] [--list-rules]
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => match args.next() {
                Some(d) => root = PathBuf::from(d),
                None => {
                    eprintln!("dfsim-lint: --root needs a directory");
                    return ExitCode::from(2);
                }
            },
            "--list-rules" => {
                for r in dfsim_lint::rules::RULES {
                    println!("{r}");
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!("usage: dfsim-lint [--root DIR] [--list-rules]");
                println!(
                    "exit 0: clean; exit 2: findings (one `file:line: rule: message` per finding)"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("dfsim-lint: unknown flag `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }

    let report = match dfsim_lint::lint_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("dfsim-lint: cannot scan {}: {e}", root.display());
            return ExitCode::FAILURE;
        }
    };

    for f in &report.findings {
        println!("{f}");
    }
    eprintln!(
        "dfsim-lint: {} file(s) scanned, {} spec key(s) cache-classified, {} finding(s)",
        report.files_scanned,
        report.cache_keys_checked,
        report.findings.len()
    );
    if report.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    }
}
