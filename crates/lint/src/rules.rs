//! The determinism & panic-safety rules, and the allow-directive engine.
//!
//! Every rule protects a bit-identity or safety contract the test suites
//! pin dynamically; the lint makes the *source-level* convention behind
//! each contract machine-checked (see README "Static analysis &
//! determinism invariants" for the reasoning per rule).
//!
//! A violation on line `L` can be waived by a justified directive on the
//! preceding line (or a trailing comment on `L` itself):
//!
//! ```text
//! // lint: allow(no-ambient-env) — bench-harness smoke knob, not an experiment input
//! ```
//!
//! Unjustified directives — malformed, naming an unknown rule, missing a
//! reason, or suppressing nothing — are themselves `allow-audit` errors,
//! so waivers can never rot silently.

use crate::lexer::{Comment, Lexed, TokenKind};
use std::collections::BTreeMap;

/// Every rule the pass knows, in reporting order.
pub const RULES: [&str; 12] = [
    "no-wallclock",
    "no-ambient-env",
    "no-unordered-iteration",
    "no-ad-hoc-rng",
    "stdout-discipline",
    "unsafe-audit",
    "no-panic-paths",
    "lock-discipline",
    "codec-cast-audit",
    "cache-key-coverage",
    "dead-knob",
    "allow-audit",
];

/// One lint violation, machine-readable: `file:line: rule: message`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Workspace-relative path, `/`-separated.
    pub file: String,
    /// 1-indexed line.
    pub line: usize,
    /// Rule name (one of [`RULES`]).
    pub rule: &'static str,
    /// What is wrong and what the fix direction is.
    pub message: String,
    /// The offending source line, trimmed.
    pub excerpt: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: {}: {}", self.file, self.line, self.rule, self.message)?;
        if !self.excerpt.is_empty() {
            write!(f, "\n    | {}", self.excerpt)?;
        }
        Ok(())
    }
}

/// How a file participates in rule scoping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileClass {
    /// Library source (`crates/*/src/**`, root `src/lib.rs`).
    Lib,
    /// Binary / example entry point: owns stdout.
    Bin,
    /// Integration-test code (`tests/` trees).
    Test,
    /// Criterion benches (`benches/` trees).
    Bench,
}

/// One lexed source file plus the context rules scope on.
pub struct SourceFile {
    /// Workspace-relative path, `/`-separated.
    pub rel: String,
    /// Crate the file belongs to (`core`, `des`, …; `root` for the facade
    /// package's `src/`, `tests/`, `examples/`).
    pub krate: String,
    /// Scope class (library / bin / test / bench).
    pub class: FileClass,
    /// Token stream, comments, and `#[cfg(test)]` spans.
    pub lexed: Lexed,
    /// Raw source lines (for excerpts).
    pub lines: Vec<String>,
}

impl SourceFile {
    fn excerpt(&self, line: usize) -> String {
        let s = self.lines.get(line.saturating_sub(1)).map(|l| l.trim()).unwrap_or("");
        let mut e: String = s.chars().take(96).collect();
        if e.len() < s.len() {
            e.push('…');
        }
        e
    }
}

// ---------------------------------------------------------------------------
// Rule scoping tables
// ---------------------------------------------------------------------------

/// Designated timing modules: the only library files allowed to read the
/// wall clock (run-cost accounting and cache GC ages — never simulation
/// state).
const WALLCLOCK_FILES: [&str; 4] = [
    "crates/core/src/runner.rs",
    "crates/core/src/sweep.rs",
    "crates/core/src/partition.rs",
    "crates/core/src/cache.rs",
];

/// The resolution layers: the only files allowed to read ambient
/// environment variables (PR 5's `defaults < file < env < CLI` contract).
const ENV_FILES: [&str; 2] = ["crates/core/src/spec.rs", "crates/core/src/cache.rs"];

/// Sim-state crates where unordered iteration could leak host hash-seed
/// nondeterminism into reports.
const UNORDERED_CRATES: [&str; 5] = ["des", "network", "topology", "mpi", "metrics"];

/// Core files on the simulation path (the rest of `core` — spec parsing,
/// report emission, sweep orchestration — never iterates sim state).
const UNORDERED_CORE_FILES: [&str; 6] = [
    "crates/core/src/world.rs",
    "crates/core/src/partition.rs",
    "crates/core/src/scenario.rs",
    "crates/core/src/runner.rs",
    "crates/core/src/placement.rs",
    "crates/core/src/simulation.rs",
];

/// Designated report/CSV emitters: library files whose `println!` IS the
/// product (presentation helpers shared by the reproduction binaries).
const STDOUT_EMITTER_FILES: [&str; 1] = ["crates/bench/src/lib.rs"];

/// The one module allowed to construct randomness sources.
const RNG_FILE: &str = "crates/des/src/rng.rs";

const WALLCLOCK_IDENTS: [&str; 3] = ["Instant", "SystemTime", "UNIX_EPOCH"];
const ENV_READS: [&str; 4] = ["var", "var_os", "vars", "vars_os"];
const UNORDERED_IDENTS: [&str; 2] = ["HashMap", "HashSet"];
const RNG_IDENTS: [&str; 4] = ["thread_rng", "OsRng", "from_entropy", "getrandom"];

/// Hot-path modules where a panic is an outage, not a failed CLI run
/// (ROADMAP: long-running `dfsim serve`, MPI communicator): every
/// panicking construct must be rewritten onto the crate's error enum or
/// carry a written invariant.
const PANIC_FREE_PREFIXES: [&str; 4] =
    ["crates/des/src/", "crates/network/src/", "crates/mpi/src/", "crates/metrics/src/"];
const PANIC_FREE_CORE_FILES: [&str; 4] = [
    "crates/core/src/partition.rs",
    "crates/core/src/simulation.rs",
    "crates/core/src/cache.rs",
    "crates/core/src/trace.rs",
];

/// Codec files decode *external* input (trace files on disk, cache
/// blobs): here no-panic-paths additionally audits direct indexing and
/// bare division, and codec-cast-audit audits narrowing `as` casts — a
/// short or corrupt file must surface as `Truncated`/`Malformed`, never
/// as a panic or a silent wrap.
const CODEC_FILES: [&str; 3] =
    ["crates/metrics/src/trace.rs", "crates/core/src/trace.rs", "crates/core/src/cache.rs"];

const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

/// Cast targets that can lose bits (`usize`/`isize`: on 32-bit hosts;
/// `i64`: from the sign domain of `u64`; `f32`: precision). `u64`,
/// `u128` and `f64` targets are widening from every integer the codecs
/// carry and pass un-flagged — the overflow-checks CI lane backstops the
/// arithmetic feeding them.
const NARROWING_TARGETS: [&str; 10] =
    ["u8", "u16", "u32", "i8", "i16", "i32", "usize", "isize", "i64", "f32"];

/// Method names that can block the calling thread (channel ends, windowed
/// `SimCommunicator` exchanges) — never while a mutex guard is live, or
/// the pool-poster + windowed-exchange pair deadlocks.
const BLOCKING_METHODS: [&str; 5] = ["send", "recv", "recv_timeout", "exchange", "broadcast"];

/// Condvar waits: blocking too, but *correct* with a guard — when the
/// guard is what they consume (`cv.wait(guard)` releases and reacquires
/// atomically). Flagged only when no live guard is passed in.
const CONDVAR_WAITS: [&str; 3] = ["wait", "wait_timeout", "wait_while"];

/// Keywords that can sit directly before `[` without the bracket being an
/// index expression (slice patterns, array literals, `for _ in [..]`).
const NON_INDEX_KEYWORDS: [&str; 12] = [
    "let", "mut", "ref", "in", "return", "break", "match", "box", "yield", "static", "const",
    "else",
];

// ---------------------------------------------------------------------------
// Allow directives
// ---------------------------------------------------------------------------

struct Directive {
    rule: String,
    reason: String,
    /// Last line of the directive comment (a finding on `end_line + 1` or
    /// `end_line` itself is covered).
    end_line: usize,
    line: usize,
    used: bool,
    problem: Option<String>,
}

fn parse_directives(comments: &[Comment]) -> Vec<Directive> {
    let mut out = Vec::new();
    for c in comments {
        // A directive may start on any line of a comment block; its reason
        // runs to the end of the block (multi-line justifications merge in
        // the lexer), so the block's `end_line` sits directly above the
        // code the waiver covers.
        let Some(rest) = directive_text(&c.text) else { continue };
        let rest = rest.trim();
        let mut d = Directive {
            rule: String::new(),
            reason: String::new(),
            end_line: c.end_line,
            line: c.line,
            used: false,
            problem: None,
        };
        match parse_allow(rest) {
            Ok((rule, reason)) => {
                if !RULES.contains(&rule.as_str()) {
                    d.problem = Some(format!("unknown rule `{rule}` in lint directive"));
                } else if rule == "allow-audit" {
                    d.problem = Some("`allow-audit` cannot be waived".to_string());
                } else if reason.is_empty() {
                    d.problem = Some(format!(
                        "unjustified allow: `allow({rule})` needs a reason after `—`"
                    ));
                }
                d.rule = rule;
                d.reason = reason;
            }
            Err(msg) => d.problem = Some(msg),
        }
        out.push(d);
    }
    out
}

/// Extract the directive body from a comment block: everything from the
/// first line starting with `lint:` to the end of the block, joined with
/// spaces.
fn directive_text(text: &str) -> Option<String> {
    let mut lines = text.lines().map(str::trim);
    let first = lines.find_map(|l| l.strip_prefix("lint:"))?;
    let mut body = first.trim().to_string();
    for l in lines {
        body.push(' ');
        body.push_str(l);
    }
    Some(body)
}

/// Parse `allow(<rule>) — <reason>`; the separator may be `—`, `–`, `-`,
/// or `--`. Returns `(rule, reason)`.
fn parse_allow(s: &str) -> Result<(String, String), String> {
    let err = || "malformed lint directive: expected `lint: allow(<rule>) — <reason>`".to_string();
    let s = s.strip_prefix("allow").ok_or_else(err)?.trim_start();
    let s = s.strip_prefix('(').ok_or_else(err)?;
    let (rule, rest) = s.split_once(')').ok_or_else(err)?;
    let rest = rest.trim_start();
    let reason = rest
        .strip_prefix('—')
        .or_else(|| rest.strip_prefix('–'))
        .or_else(|| rest.strip_prefix("--"))
        .or_else(|| rest.strip_prefix('-'))
        .unwrap_or("");
    Ok((rule.trim().to_string(), reason.trim().to_string()))
}

// ---------------------------------------------------------------------------
// Per-file rules
// ---------------------------------------------------------------------------

/// Run every per-file rule on `f`, applying and auditing allow
/// directives. Returns the surviving findings.
pub fn lint_file(f: &SourceFile) -> Vec<Finding> {
    let mut raw: Vec<Finding> = Vec::new();
    check_wallclock(f, &mut raw);
    check_env(f, &mut raw);
    check_unordered(f, &mut raw);
    check_rng(f, &mut raw);
    check_stdout(f, &mut raw);
    check_unsafe(f, &mut raw);
    check_panic_paths(f, &mut raw);
    check_lock_discipline(f, &mut raw);
    check_codec_casts(f, &mut raw);

    let mut directives = parse_directives(&f.lexed.comments);
    let mut out = Vec::new();
    for finding in raw {
        let suppressed = directives.iter_mut().any(|d| {
            let covers = d.problem.is_none()
                && d.rule == finding.rule
                && (d.end_line + 1 == finding.line || d.end_line == finding.line);
            if covers {
                d.used = true;
            }
            covers
        });
        if !suppressed {
            out.push(finding);
        }
    }
    for d in &directives {
        if let Some(problem) = &d.problem {
            out.push(Finding {
                file: f.rel.clone(),
                line: d.line,
                rule: "allow-audit",
                message: problem.clone(),
                excerpt: f.excerpt(d.line),
            });
        } else if !d.used {
            out.push(Finding {
                file: f.rel.clone(),
                line: d.line,
                rule: "allow-audit",
                message: format!(
                    "stale allow: no `{}` finding on the covered line — remove the directive",
                    d.rule
                ),
                excerpt: f.excerpt(d.line),
            });
        }
    }
    out
}

fn push(f: &SourceFile, out: &mut Vec<Finding>, line: usize, rule: &'static str, message: String) {
    out.push(Finding { file: f.rel.clone(), line, rule, message, excerpt: f.excerpt(line) });
}

/// no-wallclock: `Instant`/`SystemTime` only in designated timing modules
/// and bench code. Simulated time must come from the event clock;
/// wall-clock reads anywhere else can leak host timing into results.
fn check_wallclock(f: &SourceFile, out: &mut Vec<Finding>) {
    if f.krate == "bench"
        || matches!(f.class, FileClass::Test | FileClass::Bench)
        || WALLCLOCK_FILES.contains(&f.rel.as_str())
    {
        return;
    }
    for t in idents(f) {
        if WALLCLOCK_IDENTS.contains(&t.text.as_str()) && !f.lexed.in_test_region(t.line) {
            push(
                f,
                out,
                t.line,
                "no-wallclock",
                format!(
                    "wall-clock type `{}` outside the designated timing modules \
                     (runner/sweep/partition/cache, bench code); simulation code must \
                     use the event clock",
                    t.text
                ),
            );
        }
    }
}

/// no-ambient-env: `env::var` only in the spec/cache resolution layers —
/// keeps PR 5's "defaults < file < env < CLI, resolved once" permanent.
fn check_env(f: &SourceFile, out: &mut Vec<Finding>) {
    if ENV_FILES.contains(&f.rel.as_str()) {
        return;
    }
    let toks = &f.lexed.tokens;
    for i in 0..toks.len().saturating_sub(3) {
        if toks[i].kind == TokenKind::Ident
            && toks[i].text == "env"
            && toks[i + 1].text == ":"
            && toks[i + 2].text == ":"
            && toks[i + 3].kind == TokenKind::Ident
            && ENV_READS.contains(&toks[i + 3].text.as_str())
        {
            push(
                f,
                out,
                toks[i].line,
                "no-ambient-env",
                format!(
                    "ambient environment read `env::{}` outside the spec/cache \
                     resolution layers; thread it through `ExperimentSpec::resolve`",
                    toks[i + 3].text
                ),
            );
        }
    }
}

/// no-unordered-iteration: `HashMap`/`HashSet` forbidden in sim-state
/// crates and core sim-path files — unordered iteration can leak the
/// host's hash seed into event order and break bit-identity.
fn check_unordered(f: &SourceFile, out: &mut Vec<Finding>) {
    let in_scope = (UNORDERED_CRATES.contains(&f.krate.as_str()) && f.class == FileClass::Lib)
        || UNORDERED_CORE_FILES.contains(&f.rel.as_str());
    if !in_scope {
        return;
    }
    for t in idents(f) {
        if UNORDERED_IDENTS.contains(&t.text.as_str()) && !f.lexed.in_test_region(t.line) {
            push(
                f,
                out,
                t.line,
                "no-unordered-iteration",
                format!(
                    "`{}` in sim-state code: iteration order depends on the hash \
                     seed; use `BTreeMap`/`BTreeSet` (or justify why order can \
                     never be observed)",
                    t.text
                ),
            );
        }
    }
}

/// no-ad-hoc-rng: all randomness flows from `des::rng`'s seeded streams;
/// OS entropy anywhere (tests included) breaks reproducibility.
fn check_rng(f: &SourceFile, out: &mut Vec<Finding>) {
    if f.rel == RNG_FILE {
        return;
    }
    for t in idents(f) {
        if RNG_IDENTS.contains(&t.text.as_str()) {
            push(
                f,
                out,
                t.line,
                "no-ad-hoc-rng",
                format!(
                    "`{}` is OS-entropy randomness; derive a seeded stream from \
                     `des::rng` instead",
                    t.text
                ),
            );
        }
    }
}

/// stdout-discipline: in library crates stdout belongs to report/CSV
/// emitters; diagnostics go to stderr so `dfsim … --csv > out.csv` stays
/// clean.
fn check_stdout(f: &SourceFile, out: &mut Vec<Finding>) {
    if f.class != FileClass::Lib || STDOUT_EMITTER_FILES.contains(&f.rel.as_str()) {
        return;
    }
    let toks = &f.lexed.tokens;
    for i in 0..toks.len().saturating_sub(1) {
        if toks[i].kind == TokenKind::Ident
            && (toks[i].text == "println" || toks[i].text == "print")
            && toks[i + 1].text == "!"
            && !f.lexed.in_test_region(toks[i].line)
        {
            push(
                f,
                out,
                toks[i].line,
                "stdout-discipline",
                format!(
                    "`{}!` in a library crate: stdout is reserved for the \
                     designated report/CSV emitters; use `eprintln!` for \
                     diagnostics",
                    toks[i].text
                ),
            );
        }
    }
}

/// unsafe-audit (per-file half): every `unsafe` needs a `// SAFETY:`
/// comment in the contiguous comment block above it (or on its line).
fn check_unsafe(f: &SourceFile, out: &mut Vec<Finding>) {
    for t in idents(f) {
        if t.text != "unsafe" {
            continue;
        }
        if !has_safety_comment(&f.lexed, t.line) {
            push(
                f,
                out,
                t.line,
                "unsafe-audit",
                "`unsafe` without a `// SAFETY:` comment in the preceding comment \
                 block explaining why the invariants hold"
                    .to_string(),
            );
        }
    }
}

/// Does any `unsafe` (documented or not) appear in the file?
pub fn has_unsafe(f: &SourceFile) -> bool {
    idents(f).any(|t| t.text == "unsafe")
}

fn has_safety_comment(lexed: &Lexed, unsafe_line: usize) -> bool {
    // Same-line trailing comment counts.
    if lexed.comments.iter().any(|c| c.line == unsafe_line && c.text.contains("SAFETY:")) {
        return true;
    }
    // Walk up through the contiguous comment block directly above.
    let mut l = unsafe_line.saturating_sub(1);
    loop {
        let Some(c) =
            lexed.comments.iter().find(|c| c.end_line == l || (c.line <= l && l <= c.end_line))
        else {
            return false;
        };
        if c.text.contains("SAFETY:") {
            return true;
        }
        if c.line == 0 || c.line == 1 {
            return false;
        }
        l = c.line - 1;
    }
}

fn idents(f: &SourceFile) -> impl Iterator<Item = &crate::lexer::Token> {
    f.lexed.tokens.iter().filter(|t| t.kind == TokenKind::Ident)
}

// ---------------------------------------------------------------------------
// v2: panic paths, lock discipline, codec casts
// ---------------------------------------------------------------------------

/// Is this file library code in a designated hot-path module?
fn is_hot_path(f: &SourceFile) -> bool {
    f.class == FileClass::Lib
        && (PANIC_FREE_PREFIXES.iter().any(|p| f.rel.starts_with(p))
            || PANIC_FREE_CORE_FILES.contains(&f.rel.as_str()))
}

/// no-panic-paths: `.unwrap()`/`.expect()`/panic macros in hot-path
/// modules must be rewritten onto the crate's error enum or carry a
/// justified allow; in codec files, direct indexing and bare division on
/// decoded input are audited too.
fn check_panic_paths(f: &SourceFile, out: &mut Vec<Finding>) {
    if !is_hot_path(f) {
        return;
    }
    let codec = CODEC_FILES.contains(&f.rel.as_str());
    let toks = &f.lexed.tokens;
    for i in 0..toks.len() {
        let t = &toks[i];
        if f.lexed.in_test_region(t.line) {
            continue;
        }
        let next_is = |s: &str| toks.get(i + 1).is_some_and(|n| n.text == s);
        let prev_is = |s: &str| i > 0 && toks[i - 1].text == s;
        match t.kind {
            TokenKind::Ident
                if (t.text == "unwrap" || t.text == "expect") && prev_is(".") && next_is("(") =>
            {
                push(
                    f,
                    out,
                    t.line,
                    "no-panic-paths",
                    format!(
                        "`.{}()` on a hot path: rewrite onto the crate's error enum, or \
                         justify the invariant with `// lint: allow(no-panic-paths) — <why \
                         it cannot fail>`",
                        t.text
                    ),
                );
            }
            TokenKind::Ident
                if PANIC_MACROS.contains(&t.text.as_str()) && next_is("!") && !prev_is(".") =>
            {
                push(
                    f,
                    out,
                    t.line,
                    "no-panic-paths",
                    format!(
                        "`{}!` on a hot path: return the crate's error enum instead, or \
                         justify why this state is unreachable",
                        t.text
                    ),
                );
            }
            TokenKind::Punct if codec && t.text == "[" && i > 0 && is_index_base(&toks[i - 1]) => {
                push(
                    f,
                    out,
                    t.line,
                    "no-panic-paths",
                    "direct indexing in codec code: a short or corrupt input must surface \
                     as `Truncated`/`Malformed`, not a panic — use `get(..)` (or justify \
                     the bound)"
                        .to_string(),
                );
            }
            TokenKind::Punct if codec && t.text == "/" && is_unchecked_division(toks, i) => {
                push(
                    f,
                    out,
                    t.line,
                    "no-panic-paths",
                    "bare division in codec code: a zero divisor derived from the input \
                     panics — use `checked_div` (or justify why the divisor is non-zero)"
                        .to_string(),
                );
            }
            _ => {}
        }
    }
}

/// Does the token before `[` make the bracket an index expression?
fn is_index_base(prev: &crate::lexer::Token) -> bool {
    match prev.kind {
        TokenKind::Ident => !NON_INDEX_KEYWORDS.contains(&prev.text.as_str()),
        TokenKind::Punct => prev.text == ")" || prev.text == "]",
        _ => false,
    }
}

/// Is `/` at `i` a binary division whose divisor is not a literal?
/// (Literal divisors can't be zero at runtime; float-typed numerators —
/// recognizable from a preceding `as f64` cast — never panic.)
fn is_unchecked_division(toks: &[crate::lexer::Token], i: usize) -> bool {
    let Some(prev) = i.checked_sub(1).and_then(|p| toks.get(p)) else { return false };
    let dividend_ok = match prev.kind {
        TokenKind::Ident => {
            !NON_INDEX_KEYWORDS.contains(&prev.text.as_str())
                && prev.text != "f32"
                && prev.text != "f64"
        }
        TokenKind::Num => true,
        TokenKind::Punct => prev.text == ")" || prev.text == "]",
        _ => false,
    };
    if !dividend_ok {
        return false;
    }
    // `x /= y` is still a division; the divisor sits past the `=`.
    let mut j = i + 1;
    if toks.get(j).is_some_and(|t| t.text == "=") {
        j += 1;
    }
    match toks.get(j) {
        Some(d) => d.kind != TokenKind::Num,
        None => false,
    }
}

/// codec-cast-audit: narrowing `as` casts in codec files must become
/// `try_from` (mapped onto the codec's named error) or carry a justified
/// allow, so frame lengths can never silently wrap.
fn check_codec_casts(f: &SourceFile, out: &mut Vec<Finding>) {
    if f.class != FileClass::Lib || !CODEC_FILES.contains(&f.rel.as_str()) {
        return;
    }
    let toks = &f.lexed.tokens;
    for i in 0..toks.len().saturating_sub(1) {
        if toks[i].kind == TokenKind::Ident
            && toks[i].text == "as"
            && toks[i + 1].kind == TokenKind::Ident
            && NARROWING_TARGETS.contains(&toks[i + 1].text.as_str())
            && !f.lexed.in_test_region(toks[i].line)
        {
            let ty = &toks[i + 1].text;
            push(
                f,
                out,
                toks[i].line,
                "codec-cast-audit",
                format!(
                    "narrowing `as {ty}` in codec code can silently wrap: use \
                     `{ty}::try_from(..)` mapped onto the codec's `Truncated`/`Malformed` \
                     error (`::from` when lossless), or justify the value range"
                ),
            );
        }
    }
}

/// One live mutex guard during the [`check_lock_discipline`] scan.
struct LiveGuard {
    /// The `let` binding name; empty for a guard temporary that dies at
    /// the end of its statement.
    binding: String,
    /// The lock's receiver name (`state` in `self.state.lock()`).
    lock: String,
    /// Line the guard was taken on.
    line: usize,
    /// Brace depth the binding lives at (dies when the block closes).
    depth: usize,
    /// Statement temporary (no `let`): dies at the next `;`.
    temp: bool,
}

/// lock-discipline: a mutex guard must never be held across a blocking
/// call (`send`/`recv`/`join`/`exchange`/`broadcast`, or a condvar wait
/// that doesn't consume it), and nested acquisitions must follow the
/// file's declared `LOCK_ORDER` table.
fn check_lock_discipline(f: &SourceFile, out: &mut Vec<Finding>) {
    if f.class != FileClass::Lib {
        return;
    }
    let toks = &f.lexed.tokens;
    let order = const_str_list_in(f, "LOCK_ORDER").map(|l| l.items);
    let mut guards: Vec<LiveGuard> = Vec::new();
    let mut depth = 0usize;
    for i in 0..toks.len() {
        let t = &toks[i];
        let in_test = f.lexed.in_test_region(t.line);
        match t.text.as_str() {
            "{" if t.kind == TokenKind::Punct => depth += 1,
            "}" if t.kind == TokenKind::Punct => {
                depth = depth.saturating_sub(1);
                guards.retain(|g| g.depth <= depth);
            }
            ";" if t.kind == TokenKind::Punct => guards.retain(|g| !g.temp),
            "drop"
                if t.kind == TokenKind::Ident
                    && toks.get(i + 1).is_some_and(|n| n.text == "(")
                    && toks.get(i + 3).is_some_and(|n| n.text == ")") =>
            {
                if let Some(name) = toks.get(i + 2) {
                    guards.retain(|g| g.binding != name.text);
                }
            }
            _ => {}
        }
        let is_method = |s: &str| {
            t.kind == TokenKind::Ident
                && t.text == s
                && i > 0
                && toks[i - 1].text == "."
                && toks.get(i + 1).is_some_and(|n| n.text == "(")
        };
        // A new acquisition: `<recv>.lock(`.
        if is_method("lock") {
            let (lock_name, _) = receiver_name(toks, i - 1);
            if !in_test {
                if let Some(order) = &order {
                    if !order.iter().any(|o| o == &lock_name) {
                        push(
                            f,
                            out,
                            t.line,
                            "lock-discipline",
                            format!(
                                "lock `{lock_name}` is not declared in this file's \
                                 `LOCK_ORDER` table — declare every lock so acquisition \
                                 order stays auditable"
                            ),
                        );
                    } else if let Some(g) = guards.iter().find(|g| {
                        let held = order.iter().position(|o| o == &g.lock);
                        let new = order.iter().position(|o| o == &lock_name);
                        matches!((held, new), (Some(h), Some(n)) if h > n)
                    }) {
                        push(
                            f,
                            out,
                            t.line,
                            "lock-discipline",
                            format!(
                                "lock `{lock_name}` acquired while `{}` (line {}) is held \
                                 — violates the declared `LOCK_ORDER`; swap the \
                                 acquisitions or update the table",
                                g.lock, g.line
                            ),
                        );
                    }
                } else if let Some(g) = guards.first() {
                    push(
                        f,
                        out,
                        t.line,
                        "lock-discipline",
                        format!(
                            "nested lock acquisition (`{lock_name}` while `{}` from line \
                             {} is held) without a `LOCK_ORDER` declaration in this file \
                             — declare `const LOCK_ORDER: [&str; N]` listing every lock \
                             in acquisition order",
                            g.lock, g.line
                        ),
                    );
                }
            }
            // Guard binding: the expression is a guard iff nothing but
            // Result-unwrapping chains between `lock()` and the `;`.
            let mut j = skip_balanced(toks, i + 1);
            while toks.get(j).is_some_and(|x| x.text == ".")
                && toks.get(j + 1).is_some_and(|x| {
                    matches!(x.text.as_str(), "unwrap" | "expect" | "unwrap_or_else")
                })
                && toks.get(j + 2).is_some_and(|x| x.text == "(")
            {
                j = skip_balanced(toks, j + 2);
            }
            let guard_stmt = toks.get(j).is_some_and(|x| x.text == ";");
            let binding = if guard_stmt { let_binding_before(toks, i) } else { None };
            match binding {
                Some(name) => guards.push(LiveGuard {
                    binding: name,
                    lock: lock_name,
                    line: t.line,
                    depth,
                    temp: false,
                }),
                None => guards.push(LiveGuard {
                    binding: String::new(),
                    lock: lock_name,
                    line: t.line,
                    depth,
                    temp: true,
                }),
            }
            continue;
        }
        if guards.is_empty() || in_test {
            continue;
        }
        // Blocking calls while a guard is live.
        let blocking = BLOCKING_METHODS.iter().any(|m| is_method(m))
            || (is_method("join") && toks.get(i + 2).is_some_and(|n| n.text == ")"));
        if blocking {
            let g = guards.last().expect("guards checked non-empty");
            push(
                f,
                out,
                t.line,
                "lock-discipline",
                format!(
                    "`.{}()` can block while the guard of `{}` (line {}) is held — drop \
                     the guard first, or the pool-poster/windowed-exchange pair deadlocks",
                    t.text, g.lock, g.line
                ),
            );
            continue;
        }
        if CONDVAR_WAITS.iter().any(|m| is_method(m)) {
            // `cv.wait(guard)` consumes and reacquires the guard: correct.
            let end = skip_balanced(toks, i + 1);
            let consumes_guard = toks[i + 2..end.min(toks.len())].iter().any(|a| {
                a.kind == TokenKind::Ident && guards.iter().any(|g| !g.temp && g.binding == a.text)
            });
            if !consumes_guard {
                let g = guards.last().expect("guards checked non-empty");
                push(
                    f,
                    out,
                    t.line,
                    "lock-discipline",
                    format!(
                        "`.{}()` blocks while the guard of `{}` (line {}) is held but \
                         does not consume it — condvar waits must take the guard \
                         (`cv.{}(guard)`)",
                        t.text, g.lock, g.line, t.text
                    ),
                );
            }
        }
    }
}

/// Name of the receiver of a method call whose `.` sits at `dot_idx`:
/// `self.state.lock()` → `state`; `work[i].lock()` → `work`. Returns the
/// name plus the token index where the receiver expression starts.
fn receiver_name(toks: &[crate::lexer::Token], dot_idx: usize) -> (String, usize) {
    let mut k = match dot_idx.checked_sub(1) {
        Some(k) => k,
        None => return ("?".to_string(), dot_idx),
    };
    // Skip a trailing index/call back to its opener: `work [ i ]` → `work`.
    while toks[k].text == "]" || toks[k].text == ")" {
        let close = &toks[k].text;
        let open = if close == "]" { "[" } else { "(" };
        let mut bal = 1usize;
        while bal > 0 && k > 0 {
            k -= 1;
            if toks[k].text == *close {
                bal += 1;
            } else if toks[k].text == open {
                bal -= 1;
            }
        }
        match k.checked_sub(1) {
            Some(p) => k = p,
            None => return ("?".to_string(), 0),
        }
    }
    if toks[k].kind == TokenKind::Ident {
        (toks[k].text.clone(), k)
    } else {
        ("?".to_string(), k)
    }
}

/// Token index just past the `)` matching the `(` at `open_idx`.
fn skip_balanced(toks: &[crate::lexer::Token], open_idx: usize) -> usize {
    let mut bal = 0usize;
    let mut j = open_idx;
    while j < toks.len() {
        if toks[j].text == "(" {
            bal += 1;
        } else if toks[j].text == ")" {
            bal -= 1;
            if bal == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    j
}

/// The `let [mut] NAME =` binding of the statement containing token
/// `idx`, if any (scans back to the nearest statement boundary).
fn let_binding_before(toks: &[crate::lexer::Token], idx: usize) -> Option<String> {
    let mut k = idx;
    while k > 0 {
        k -= 1;
        match toks[k].text.as_str() {
            ";" | "{" | "}" => return None,
            "let" if toks[k].kind == TokenKind::Ident => {
                let mut n = k + 1;
                if toks.get(n).is_some_and(|t| t.text == "mut") {
                    n += 1;
                }
                let name = toks.get(n).filter(|t| t.kind == TokenKind::Ident)?;
                if toks.get(n + 1).is_some_and(|t| t.text == "=") {
                    return Some(name.text.clone());
                }
                return None;
            }
            _ => {}
        }
    }
    None
}

// ---------------------------------------------------------------------------
// Workspace-level rules
// ---------------------------------------------------------------------------

/// unsafe-audit (workspace half): a crate with no `unsafe` at all must pin
/// that fact with `#![deny(unsafe_code)]` (or `forbid`) in its root, so
/// new unsafe can only enter a crate by removing the attribute — which
/// this rule then flags until the block is SAFETY-documented.
pub fn check_crate_roots(files: &[SourceFile], out: &mut Vec<Finding>) {
    let mut unsafe_by_crate: BTreeMap<&str, bool> = BTreeMap::new();
    for f in files {
        *unsafe_by_crate.entry(f.krate.as_str()).or_default() |= has_unsafe(f);
    }
    for f in files {
        let is_root = f.rel == "src/lib.rs"
            || (f.rel.starts_with("crates/") && f.rel.ends_with("/src/lib.rs"));
        if !is_root || unsafe_by_crate.get(f.krate.as_str()).copied().unwrap_or(false) {
            continue;
        }
        if !has_deny_unsafe(f) {
            push(
                f,
                out,
                1,
                "unsafe-audit",
                format!(
                    "crate `{}` uses no unsafe but its root is missing \
                     `#![deny(unsafe_code)]`",
                    f.krate
                ),
            );
        }
    }
}

fn has_deny_unsafe(f: &SourceFile) -> bool {
    let toks = &f.lexed.tokens;
    (0..toks.len().saturating_sub(3)).any(|i| {
        (toks[i].text == "deny" || toks[i].text == "forbid")
            && toks[i + 1].text == "("
            && toks[i + 2].text == "unsafe_code"
            && toks[i + 3].text == ")"
    })
}

/// cache-key-coverage: every key in `spec.rs`'s `SPEC_KEYS` registry must
/// be explicitly classified in `cache.rs`'s `KEY_CLASSIFICATION` — so a
/// future spec key that changes behaviour can never cause a stale cache
/// hit by omission. Returns the number of keys cross-checked.
pub fn check_cache_key_coverage(files: &[SourceFile], out: &mut Vec<Finding>) -> usize {
    let spec = find_const_str_list(files, "SPEC_KEYS");
    let class = find_const_str_list(files, "KEY_CLASSIFICATION");
    match (spec, class) {
        (None, None) => 0, // fixture trees without a registry: rule is silent
        (Some(spec), None) => {
            out.push(Finding {
                file: spec.file,
                line: spec.line,
                rule: "cache-key-coverage",
                message: "spec-key registry `SPEC_KEYS` found but no \
                          `KEY_CLASSIFICATION` table classifies its keys for the \
                          result cache"
                    .to_string(),
                excerpt: String::new(),
            });
            0
        }
        (None, Some(class)) => {
            out.push(Finding {
                file: class.file,
                line: class.line,
                rule: "cache-key-coverage",
                message: "`KEY_CLASSIFICATION` found but no `SPEC_KEYS` registry to \
                          check it against"
                    .to_string(),
                excerpt: String::new(),
            });
            0
        }
        (Some(spec), Some(class)) => {
            let mut checked = 0usize;
            for dup in duplicates(&spec.items) {
                out.push(Finding {
                    file: spec.file.clone(),
                    line: spec.line,
                    rule: "cache-key-coverage",
                    message: format!("spec key `{dup}` appears twice in `SPEC_KEYS`"),
                    excerpt: String::new(),
                });
            }
            for dup in duplicates(&class.items) {
                out.push(Finding {
                    file: class.file.clone(),
                    line: class.line,
                    rule: "cache-key-coverage",
                    message: format!(
                        "spec key `{dup}` is classified twice in `KEY_CLASSIFICATION`"
                    ),
                    excerpt: String::new(),
                });
            }
            for k in &spec.items {
                if class.items.contains(k) {
                    checked += 1;
                } else {
                    out.push(Finding {
                        file: class.file.clone(),
                        line: class.line,
                        rule: "cache-key-coverage",
                        message: format!(
                            "spec key `{k}` has no cache classification in \
                             `KEY_CLASSIFICATION` — declare it key-relevant or \
                             normalized-out so it can't cause a stale cache hit by \
                             omission"
                        ),
                        excerpt: String::new(),
                    });
                }
            }
            for k in &class.items {
                if !spec.items.contains(k) {
                    out.push(Finding {
                        file: class.file.clone(),
                        line: class.line,
                        rule: "cache-key-coverage",
                        message: format!(
                            "`KEY_CLASSIFICATION` classifies `{k}`, which is not a \
                             key in `SPEC_KEYS` — stale entry?"
                        ),
                        excerpt: String::new(),
                    });
                }
            }
            checked
        }
    }
}

struct ConstStrList {
    file: String,
    line: usize,
    items: Vec<String>,
    /// Token-index span of the definition (`const` keyword through the
    /// terminating `;`), so registry listings are never mistaken for read
    /// sites of the strings they declare.
    tok_start: usize,
    tok_end: usize,
}

/// Find `const <name>: … = [ …string literals… ];` in one file and
/// collect every string literal up to the terminating `;`. Only
/// *definitions* match (the identifier must follow `const`), so references
/// like `SPEC_KEYS.contains(..)` are ignored.
fn const_str_list_in(f: &SourceFile, name: &str) -> Option<ConstStrList> {
    let toks = &f.lexed.tokens;
    for i in 1..toks.len() {
        if toks[i].text == name && toks[i].kind == TokenKind::Ident && toks[i - 1].text == "const" {
            // Skip the type annotation (its `[&str; N]` contains a `;`):
            // string literals only count after the `=`.
            let mut items = Vec::new();
            let mut past_eq = false;
            let mut end = toks.len();
            for (off, t) in toks[i + 1..].iter().enumerate() {
                match t.kind {
                    TokenKind::Punct if t.text == "=" => past_eq = true,
                    TokenKind::Str if past_eq => items.push(t.text.clone()),
                    TokenKind::Punct if t.text == ";" && past_eq => {
                        end = i + 1 + off;
                        break;
                    }
                    _ => {}
                }
            }
            return Some(ConstStrList {
                file: f.rel.clone(),
                line: toks[i].line,
                items,
                tok_start: i - 1,
                tok_end: end,
            });
        }
    }
    None
}

/// [`const_str_list_in`] over the whole file set (first definition wins).
fn find_const_str_list(files: &[SourceFile], name: &str) -> Option<ConstStrList> {
    files.iter().find_map(|f| const_str_list_in(f, name))
}

fn duplicates(items: &[String]) -> Vec<String> {
    let mut seen: BTreeMap<&str, usize> = BTreeMap::new();
    for it in items {
        *seen.entry(it.as_str()).or_default() += 1;
    }
    seen.into_iter().filter(|&(_, n)| n > 1).map(|(k, _)| k.to_string()).collect()
}

// ---------------------------------------------------------------------------
// dead-knob: registries cross-checked against read sites
// ---------------------------------------------------------------------------

/// Crates whose string literals count when wiring experiment knobs: the
/// facade binaries, the reproduction bench bins, and `core` (spec/cache
/// resolution). The lint crate's own CLI is out of scope.
const KNOB_CRATES: [&str; 3] = ["root", "bench", "core"];

/// Is `s` the exact spelling of a CLI flag (`--seed`, `--no-cache`)?
/// Prose mentioning flags (usage strings, error messages) contains spaces
/// or punctuation and never matches.
fn flag_shaped(s: &str) -> bool {
    s.len() > 2
        && s.starts_with("--")
        && s[2..].starts_with(|c: char| c.is_ascii_lowercase())
        && s[2..].chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-')
}

/// dead-knob: every knob a user can set — spec keys in `SPEC_KEYS`, env
/// vars in `CORE_ENV`/`EXTENDED_ENV`, CLI flags in `CLI_FLAGS` — must
/// have a read site (an exact string-literal occurrence outside the
/// registries, i.e. a parser/match arm that consumes it), and every
/// flag-shaped literal a parser matches must be declared in `CLI_FLAGS`.
/// This is cache-key-coverage's drift class, generalized from hashing to
/// wiring: a knob that parses but changes nothing is a silent lie to the
/// user. Like the other registry rules, findings here cannot be waived.
pub fn check_dead_knobs(files: &[SourceFile], out: &mut Vec<Finding>) {
    let registries: Vec<(&str, ConstStrList)> =
        ["SPEC_KEYS", "KEY_CLASSIFICATION", "CORE_ENV", "EXTENDED_ENV", "CLI_FLAGS"]
            .iter()
            .filter_map(|n| find_const_str_list(files, n).map(|r| (*n, r)))
            .collect();
    // A read site is an exact Str token in live (non-test) lib/bin code,
    // outside every registry definition span.
    let occurrences = |needle: &str| -> bool {
        files.iter().any(|f| {
            if !matches!(f.class, FileClass::Lib | FileClass::Bin) {
                return false;
            }
            f.lexed.tokens.iter().enumerate().any(|(idx, t)| {
                t.kind == TokenKind::Str
                    && t.text == needle
                    && !f.lexed.in_test_region(t.line)
                    && !registries
                        .iter()
                        .any(|(_, r)| r.file == f.rel && r.tok_start <= idx && idx <= r.tok_end)
            })
        })
    };
    let registry = |name: &str| -> Option<&ConstStrList> {
        registries.iter().find(|(n, _)| *n == name).map(|(_, r)| r)
    };
    let mut dead = |r: &ConstStrList, item: &str, what: &str, fix: &str| {
        out.push(Finding {
            file: r.file.clone(),
            line: r.line,
            rule: "dead-knob",
            message: format!("{what} `{item}` is registered but never read — {fix}"),
            excerpt: String::new(),
        });
    };
    if let Some(spec) = registry("SPEC_KEYS") {
        for k in &spec.items {
            if !occurrences(k) {
                dead(
                    spec,
                    k,
                    "spec key",
                    "no `apply_key` arm consumes it; wire it up or drop it from the registry",
                );
            }
        }
    }
    for env_reg in ["CORE_ENV", "EXTENDED_ENV"] {
        if let Some(reg) = registry(env_reg) {
            for v in &reg.items {
                if !occurrences(v) {
                    dead(
                        reg,
                        v,
                        "env var",
                        "no resolution layer reads it; wire it into `apply_env` or drop it",
                    );
                }
            }
        }
    }
    if let Some(flags) = registry("CLI_FLAGS") {
        for fl in &flags.items {
            if !occurrences(fl) {
                dead(
                    flags,
                    fl,
                    "CLI flag",
                    "no parser matches it; wire it into `apply_cli` (or the binary) or drop it",
                );
            }
        }
        // The reverse direction: a parser arm matching an undeclared flag.
        for f in files {
            if !matches!(f.class, FileClass::Lib | FileClass::Bin)
                || !KNOB_CRATES.contains(&f.krate.as_str())
            {
                continue;
            }
            for (idx, t) in f.lexed.tokens.iter().enumerate() {
                if t.kind == TokenKind::Str
                    && flag_shaped(&t.text)
                    && !f.lexed.in_test_region(t.line)
                    && !flags.items.contains(&t.text)
                    && !registries
                        .iter()
                        .any(|(_, r)| r.file == f.rel && r.tok_start <= idx && idx <= r.tok_end)
                {
                    out.push(Finding {
                        file: f.rel.clone(),
                        line: t.line,
                        rule: "dead-knob",
                        message: format!(
                            "CLI flag `{}` is parsed here but not declared in the \
                             `CLI_FLAGS` registry — declare it so its wiring stays \
                             cross-checked",
                            t.text
                        ),
                        excerpt: f.excerpt(t.line),
                    });
                }
            }
        }
    }
}
