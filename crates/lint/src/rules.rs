//! The determinism & panic-safety rules, and the allow-directive engine.
//!
//! Every rule protects a bit-identity or safety contract the test suites
//! pin dynamically; the lint makes the *source-level* convention behind
//! each contract machine-checked (see README "Static analysis &
//! determinism invariants" for the reasoning per rule).
//!
//! A violation on line `L` can be waived by a justified directive on the
//! preceding line (or a trailing comment on `L` itself):
//!
//! ```text
//! // lint: allow(no-ambient-env) — bench-harness smoke knob, not an experiment input
//! ```
//!
//! Unjustified directives — malformed, naming an unknown rule, missing a
//! reason, or suppressing nothing — are themselves `allow-audit` errors,
//! so waivers can never rot silently.

use crate::lexer::{Comment, Lexed, TokenKind};
use std::collections::BTreeMap;

/// Every rule the pass knows, in reporting order.
pub const RULES: [&str; 8] = [
    "no-wallclock",
    "no-ambient-env",
    "no-unordered-iteration",
    "no-ad-hoc-rng",
    "stdout-discipline",
    "unsafe-audit",
    "cache-key-coverage",
    "allow-audit",
];

/// One lint violation, machine-readable: `file:line: rule: message`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Workspace-relative path, `/`-separated.
    pub file: String,
    /// 1-indexed line.
    pub line: usize,
    /// Rule name (one of [`RULES`]).
    pub rule: &'static str,
    /// What is wrong and what the fix direction is.
    pub message: String,
    /// The offending source line, trimmed.
    pub excerpt: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: {}: {}", self.file, self.line, self.rule, self.message)?;
        if !self.excerpt.is_empty() {
            write!(f, "\n    | {}", self.excerpt)?;
        }
        Ok(())
    }
}

/// How a file participates in rule scoping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileClass {
    /// Library source (`crates/*/src/**`, root `src/lib.rs`).
    Lib,
    /// Binary / example entry point: owns stdout.
    Bin,
    /// Integration-test code (`tests/` trees).
    Test,
    /// Criterion benches (`benches/` trees).
    Bench,
}

/// One lexed source file plus the context rules scope on.
pub struct SourceFile {
    /// Workspace-relative path, `/`-separated.
    pub rel: String,
    /// Crate the file belongs to (`core`, `des`, …; `root` for the facade
    /// package's `src/`, `tests/`, `examples/`).
    pub krate: String,
    /// Scope class (library / bin / test / bench).
    pub class: FileClass,
    /// Token stream, comments, and `#[cfg(test)]` spans.
    pub lexed: Lexed,
    /// Raw source lines (for excerpts).
    pub lines: Vec<String>,
}

impl SourceFile {
    fn excerpt(&self, line: usize) -> String {
        let s = self.lines.get(line.saturating_sub(1)).map(|l| l.trim()).unwrap_or("");
        let mut e: String = s.chars().take(96).collect();
        if e.len() < s.len() {
            e.push('…');
        }
        e
    }
}

// ---------------------------------------------------------------------------
// Rule scoping tables
// ---------------------------------------------------------------------------

/// Designated timing modules: the only library files allowed to read the
/// wall clock (run-cost accounting and cache GC ages — never simulation
/// state).
const WALLCLOCK_FILES: [&str; 4] = [
    "crates/core/src/runner.rs",
    "crates/core/src/sweep.rs",
    "crates/core/src/partition.rs",
    "crates/core/src/cache.rs",
];

/// The resolution layers: the only files allowed to read ambient
/// environment variables (PR 5's `defaults < file < env < CLI` contract).
const ENV_FILES: [&str; 2] = ["crates/core/src/spec.rs", "crates/core/src/cache.rs"];

/// Sim-state crates where unordered iteration could leak host hash-seed
/// nondeterminism into reports.
const UNORDERED_CRATES: [&str; 5] = ["des", "network", "topology", "mpi", "metrics"];

/// Core files on the simulation path (the rest of `core` — spec parsing,
/// report emission, sweep orchestration — never iterates sim state).
const UNORDERED_CORE_FILES: [&str; 6] = [
    "crates/core/src/world.rs",
    "crates/core/src/partition.rs",
    "crates/core/src/scenario.rs",
    "crates/core/src/runner.rs",
    "crates/core/src/placement.rs",
    "crates/core/src/simulation.rs",
];

/// Designated report/CSV emitters: library files whose `println!` IS the
/// product (presentation helpers shared by the reproduction binaries).
const STDOUT_EMITTER_FILES: [&str; 1] = ["crates/bench/src/lib.rs"];

/// The one module allowed to construct randomness sources.
const RNG_FILE: &str = "crates/des/src/rng.rs";

const WALLCLOCK_IDENTS: [&str; 3] = ["Instant", "SystemTime", "UNIX_EPOCH"];
const ENV_READS: [&str; 4] = ["var", "var_os", "vars", "vars_os"];
const UNORDERED_IDENTS: [&str; 2] = ["HashMap", "HashSet"];
const RNG_IDENTS: [&str; 4] = ["thread_rng", "OsRng", "from_entropy", "getrandom"];

// ---------------------------------------------------------------------------
// Allow directives
// ---------------------------------------------------------------------------

struct Directive {
    rule: String,
    reason: String,
    /// Last line of the directive comment (a finding on `end_line + 1` or
    /// `end_line` itself is covered).
    end_line: usize,
    line: usize,
    used: bool,
    problem: Option<String>,
}

fn parse_directives(comments: &[Comment]) -> Vec<Directive> {
    let mut out = Vec::new();
    for c in comments {
        // A directive may start on any line of a comment block; its reason
        // runs to the end of the block (multi-line justifications merge in
        // the lexer), so the block's `end_line` sits directly above the
        // code the waiver covers.
        let Some(rest) = directive_text(&c.text) else { continue };
        let rest = rest.trim();
        let mut d = Directive {
            rule: String::new(),
            reason: String::new(),
            end_line: c.end_line,
            line: c.line,
            used: false,
            problem: None,
        };
        match parse_allow(rest) {
            Ok((rule, reason)) => {
                if !RULES.contains(&rule.as_str()) {
                    d.problem = Some(format!("unknown rule `{rule}` in lint directive"));
                } else if rule == "allow-audit" {
                    d.problem = Some("`allow-audit` cannot be waived".to_string());
                } else if reason.is_empty() {
                    d.problem = Some(format!(
                        "unjustified allow: `allow({rule})` needs a reason after `—`"
                    ));
                }
                d.rule = rule;
                d.reason = reason;
            }
            Err(msg) => d.problem = Some(msg),
        }
        out.push(d);
    }
    out
}

/// Extract the directive body from a comment block: everything from the
/// first line starting with `lint:` to the end of the block, joined with
/// spaces.
fn directive_text(text: &str) -> Option<String> {
    let mut lines = text.lines().map(str::trim);
    let first = lines.find_map(|l| l.strip_prefix("lint:"))?;
    let mut body = first.trim().to_string();
    for l in lines {
        body.push(' ');
        body.push_str(l);
    }
    Some(body)
}

/// Parse `allow(<rule>) — <reason>`; the separator may be `—`, `–`, `-`,
/// or `--`. Returns `(rule, reason)`.
fn parse_allow(s: &str) -> Result<(String, String), String> {
    let err = || "malformed lint directive: expected `lint: allow(<rule>) — <reason>`".to_string();
    let s = s.strip_prefix("allow").ok_or_else(err)?.trim_start();
    let s = s.strip_prefix('(').ok_or_else(err)?;
    let (rule, rest) = s.split_once(')').ok_or_else(err)?;
    let rest = rest.trim_start();
    let reason = rest
        .strip_prefix('—')
        .or_else(|| rest.strip_prefix('–'))
        .or_else(|| rest.strip_prefix("--"))
        .or_else(|| rest.strip_prefix('-'))
        .unwrap_or("");
    Ok((rule.trim().to_string(), reason.trim().to_string()))
}

// ---------------------------------------------------------------------------
// Per-file rules
// ---------------------------------------------------------------------------

/// Run every per-file rule on `f`, applying and auditing allow
/// directives. Returns the surviving findings.
pub fn lint_file(f: &SourceFile) -> Vec<Finding> {
    let mut raw: Vec<Finding> = Vec::new();
    check_wallclock(f, &mut raw);
    check_env(f, &mut raw);
    check_unordered(f, &mut raw);
    check_rng(f, &mut raw);
    check_stdout(f, &mut raw);
    check_unsafe(f, &mut raw);

    let mut directives = parse_directives(&f.lexed.comments);
    let mut out = Vec::new();
    for finding in raw {
        let suppressed = directives.iter_mut().any(|d| {
            let covers = d.problem.is_none()
                && d.rule == finding.rule
                && (d.end_line + 1 == finding.line || d.end_line == finding.line);
            if covers {
                d.used = true;
            }
            covers
        });
        if !suppressed {
            out.push(finding);
        }
    }
    for d in &directives {
        if let Some(problem) = &d.problem {
            out.push(Finding {
                file: f.rel.clone(),
                line: d.line,
                rule: "allow-audit",
                message: problem.clone(),
                excerpt: f.excerpt(d.line),
            });
        } else if !d.used {
            out.push(Finding {
                file: f.rel.clone(),
                line: d.line,
                rule: "allow-audit",
                message: format!(
                    "stale allow: no `{}` finding on the covered line — remove the directive",
                    d.rule
                ),
                excerpt: f.excerpt(d.line),
            });
        }
    }
    out
}

fn push(f: &SourceFile, out: &mut Vec<Finding>, line: usize, rule: &'static str, message: String) {
    out.push(Finding { file: f.rel.clone(), line, rule, message, excerpt: f.excerpt(line) });
}

/// no-wallclock: `Instant`/`SystemTime` only in designated timing modules
/// and bench code. Simulated time must come from the event clock;
/// wall-clock reads anywhere else can leak host timing into results.
fn check_wallclock(f: &SourceFile, out: &mut Vec<Finding>) {
    if f.krate == "bench"
        || matches!(f.class, FileClass::Test | FileClass::Bench)
        || WALLCLOCK_FILES.contains(&f.rel.as_str())
    {
        return;
    }
    for t in idents(f) {
        if WALLCLOCK_IDENTS.contains(&t.text.as_str()) && !f.lexed.in_test_region(t.line) {
            push(
                f,
                out,
                t.line,
                "no-wallclock",
                format!(
                    "wall-clock type `{}` outside the designated timing modules \
                     (runner/sweep/partition/cache, bench code); simulation code must \
                     use the event clock",
                    t.text
                ),
            );
        }
    }
}

/// no-ambient-env: `env::var` only in the spec/cache resolution layers —
/// keeps PR 5's "defaults < file < env < CLI, resolved once" permanent.
fn check_env(f: &SourceFile, out: &mut Vec<Finding>) {
    if ENV_FILES.contains(&f.rel.as_str()) {
        return;
    }
    let toks = &f.lexed.tokens;
    for i in 0..toks.len().saturating_sub(3) {
        if toks[i].kind == TokenKind::Ident
            && toks[i].text == "env"
            && toks[i + 1].text == ":"
            && toks[i + 2].text == ":"
            && toks[i + 3].kind == TokenKind::Ident
            && ENV_READS.contains(&toks[i + 3].text.as_str())
        {
            push(
                f,
                out,
                toks[i].line,
                "no-ambient-env",
                format!(
                    "ambient environment read `env::{}` outside the spec/cache \
                     resolution layers; thread it through `ExperimentSpec::resolve`",
                    toks[i + 3].text
                ),
            );
        }
    }
}

/// no-unordered-iteration: `HashMap`/`HashSet` forbidden in sim-state
/// crates and core sim-path files — unordered iteration can leak the
/// host's hash seed into event order and break bit-identity.
fn check_unordered(f: &SourceFile, out: &mut Vec<Finding>) {
    let in_scope = (UNORDERED_CRATES.contains(&f.krate.as_str()) && f.class == FileClass::Lib)
        || UNORDERED_CORE_FILES.contains(&f.rel.as_str());
    if !in_scope {
        return;
    }
    for t in idents(f) {
        if UNORDERED_IDENTS.contains(&t.text.as_str()) && !f.lexed.in_test_region(t.line) {
            push(
                f,
                out,
                t.line,
                "no-unordered-iteration",
                format!(
                    "`{}` in sim-state code: iteration order depends on the hash \
                     seed; use `BTreeMap`/`BTreeSet` (or justify why order can \
                     never be observed)",
                    t.text
                ),
            );
        }
    }
}

/// no-ad-hoc-rng: all randomness flows from `des::rng`'s seeded streams;
/// OS entropy anywhere (tests included) breaks reproducibility.
fn check_rng(f: &SourceFile, out: &mut Vec<Finding>) {
    if f.rel == RNG_FILE {
        return;
    }
    for t in idents(f) {
        if RNG_IDENTS.contains(&t.text.as_str()) {
            push(
                f,
                out,
                t.line,
                "no-ad-hoc-rng",
                format!(
                    "`{}` is OS-entropy randomness; derive a seeded stream from \
                     `des::rng` instead",
                    t.text
                ),
            );
        }
    }
}

/// stdout-discipline: in library crates stdout belongs to report/CSV
/// emitters; diagnostics go to stderr so `dfsim … --csv > out.csv` stays
/// clean.
fn check_stdout(f: &SourceFile, out: &mut Vec<Finding>) {
    if f.class != FileClass::Lib || STDOUT_EMITTER_FILES.contains(&f.rel.as_str()) {
        return;
    }
    let toks = &f.lexed.tokens;
    for i in 0..toks.len().saturating_sub(1) {
        if toks[i].kind == TokenKind::Ident
            && (toks[i].text == "println" || toks[i].text == "print")
            && toks[i + 1].text == "!"
            && !f.lexed.in_test_region(toks[i].line)
        {
            push(
                f,
                out,
                toks[i].line,
                "stdout-discipline",
                format!(
                    "`{}!` in a library crate: stdout is reserved for the \
                     designated report/CSV emitters; use `eprintln!` for \
                     diagnostics",
                    toks[i].text
                ),
            );
        }
    }
}

/// unsafe-audit (per-file half): every `unsafe` needs a `// SAFETY:`
/// comment in the contiguous comment block above it (or on its line).
fn check_unsafe(f: &SourceFile, out: &mut Vec<Finding>) {
    for t in idents(f) {
        if t.text != "unsafe" {
            continue;
        }
        if !has_safety_comment(&f.lexed, t.line) {
            push(
                f,
                out,
                t.line,
                "unsafe-audit",
                "`unsafe` without a `// SAFETY:` comment in the preceding comment \
                 block explaining why the invariants hold"
                    .to_string(),
            );
        }
    }
}

/// Does any `unsafe` (documented or not) appear in the file?
pub fn has_unsafe(f: &SourceFile) -> bool {
    idents(f).any(|t| t.text == "unsafe")
}

fn has_safety_comment(lexed: &Lexed, unsafe_line: usize) -> bool {
    // Same-line trailing comment counts.
    if lexed.comments.iter().any(|c| c.line == unsafe_line && c.text.contains("SAFETY:")) {
        return true;
    }
    // Walk up through the contiguous comment block directly above.
    let mut l = unsafe_line.saturating_sub(1);
    loop {
        let Some(c) =
            lexed.comments.iter().find(|c| c.end_line == l || (c.line <= l && l <= c.end_line))
        else {
            return false;
        };
        if c.text.contains("SAFETY:") {
            return true;
        }
        if c.line == 0 || c.line == 1 {
            return false;
        }
        l = c.line - 1;
    }
}

fn idents(f: &SourceFile) -> impl Iterator<Item = &crate::lexer::Token> {
    f.lexed.tokens.iter().filter(|t| t.kind == TokenKind::Ident)
}

// ---------------------------------------------------------------------------
// Workspace-level rules
// ---------------------------------------------------------------------------

/// unsafe-audit (workspace half): a crate with no `unsafe` at all must pin
/// that fact with `#![deny(unsafe_code)]` (or `forbid`) in its root, so
/// new unsafe can only enter a crate by removing the attribute — which
/// this rule then flags until the block is SAFETY-documented.
pub fn check_crate_roots(files: &[SourceFile], out: &mut Vec<Finding>) {
    let mut unsafe_by_crate: BTreeMap<&str, bool> = BTreeMap::new();
    for f in files {
        *unsafe_by_crate.entry(f.krate.as_str()).or_default() |= has_unsafe(f);
    }
    for f in files {
        let is_root = f.rel == "src/lib.rs"
            || (f.rel.starts_with("crates/") && f.rel.ends_with("/src/lib.rs"));
        if !is_root || unsafe_by_crate.get(f.krate.as_str()).copied().unwrap_or(false) {
            continue;
        }
        if !has_deny_unsafe(f) {
            push(
                f,
                out,
                1,
                "unsafe-audit",
                format!(
                    "crate `{}` uses no unsafe but its root is missing \
                     `#![deny(unsafe_code)]`",
                    f.krate
                ),
            );
        }
    }
}

fn has_deny_unsafe(f: &SourceFile) -> bool {
    let toks = &f.lexed.tokens;
    (0..toks.len().saturating_sub(3)).any(|i| {
        (toks[i].text == "deny" || toks[i].text == "forbid")
            && toks[i + 1].text == "("
            && toks[i + 2].text == "unsafe_code"
            && toks[i + 3].text == ")"
    })
}

/// cache-key-coverage: every key in `spec.rs`'s `SPEC_KEYS` registry must
/// be explicitly classified in `cache.rs`'s `KEY_CLASSIFICATION` — so a
/// future spec key that changes behaviour can never cause a stale cache
/// hit by omission. Returns the number of keys cross-checked.
pub fn check_cache_key_coverage(files: &[SourceFile], out: &mut Vec<Finding>) -> usize {
    let spec = find_const_str_list(files, "SPEC_KEYS");
    let class = find_const_str_list(files, "KEY_CLASSIFICATION");
    match (spec, class) {
        (None, None) => 0, // fixture trees without a registry: rule is silent
        (Some(spec), None) => {
            out.push(Finding {
                file: spec.file,
                line: spec.line,
                rule: "cache-key-coverage",
                message: "spec-key registry `SPEC_KEYS` found but no \
                          `KEY_CLASSIFICATION` table classifies its keys for the \
                          result cache"
                    .to_string(),
                excerpt: String::new(),
            });
            0
        }
        (None, Some(class)) => {
            out.push(Finding {
                file: class.file,
                line: class.line,
                rule: "cache-key-coverage",
                message: "`KEY_CLASSIFICATION` found but no `SPEC_KEYS` registry to \
                          check it against"
                    .to_string(),
                excerpt: String::new(),
            });
            0
        }
        (Some(spec), Some(class)) => {
            let mut checked = 0usize;
            for dup in duplicates(&spec.items) {
                out.push(Finding {
                    file: spec.file.clone(),
                    line: spec.line,
                    rule: "cache-key-coverage",
                    message: format!("spec key `{dup}` appears twice in `SPEC_KEYS`"),
                    excerpt: String::new(),
                });
            }
            for dup in duplicates(&class.items) {
                out.push(Finding {
                    file: class.file.clone(),
                    line: class.line,
                    rule: "cache-key-coverage",
                    message: format!(
                        "spec key `{dup}` is classified twice in `KEY_CLASSIFICATION`"
                    ),
                    excerpt: String::new(),
                });
            }
            for k in &spec.items {
                if class.items.contains(k) {
                    checked += 1;
                } else {
                    out.push(Finding {
                        file: class.file.clone(),
                        line: class.line,
                        rule: "cache-key-coverage",
                        message: format!(
                            "spec key `{k}` has no cache classification in \
                             `KEY_CLASSIFICATION` — declare it key-relevant or \
                             normalized-out so it can't cause a stale cache hit by \
                             omission"
                        ),
                        excerpt: String::new(),
                    });
                }
            }
            for k in &class.items {
                if !spec.items.contains(k) {
                    out.push(Finding {
                        file: class.file.clone(),
                        line: class.line,
                        rule: "cache-key-coverage",
                        message: format!(
                            "`KEY_CLASSIFICATION` classifies `{k}`, which is not a \
                             key in `SPEC_KEYS` — stale entry?"
                        ),
                        excerpt: String::new(),
                    });
                }
            }
            checked
        }
    }
}

struct ConstStrList {
    file: String,
    line: usize,
    items: Vec<String>,
}

/// Find `const <name>: … = [ …string literals… ];` across the file set and
/// collect every string literal up to the terminating `;`. Only
/// *definitions* match (the identifier must follow `const`), so references
/// like `SPEC_KEYS.contains(..)` are ignored.
fn find_const_str_list(files: &[SourceFile], name: &str) -> Option<ConstStrList> {
    for f in files {
        let toks = &f.lexed.tokens;
        for i in 1..toks.len() {
            if toks[i].text == name
                && toks[i].kind == TokenKind::Ident
                && toks[i - 1].text == "const"
            {
                // Skip the type annotation (its `[&str; N]` contains a `;`):
                // string literals only count after the `=`.
                let mut items = Vec::new();
                let mut past_eq = false;
                for t in &toks[i + 1..] {
                    match t.kind {
                        TokenKind::Punct if t.text == "=" => past_eq = true,
                        TokenKind::Str if past_eq => items.push(t.text.clone()),
                        TokenKind::Punct if t.text == ";" && past_eq => break,
                        _ => {}
                    }
                }
                return Some(ConstStrList { file: f.rel.clone(), line: toks[i].line, items });
            }
        }
    }
    None
}

fn duplicates(items: &[String]) -> Vec<String> {
    let mut seen: BTreeMap<&str, usize> = BTreeMap::new();
    for it in items {
        *seen.entry(it.as_str()).or_default() += 1;
    }
    seen.into_iter().filter(|&(_, n)| n > 1).map(|(k, _)| k.to_string()).collect()
}
