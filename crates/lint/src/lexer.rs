//! A hand-rolled Rust lexer, just deep enough for lint rules.
//!
//! The rules in [`crate::rules`] match identifier sequences (`env :: var`,
//! `HashMap`, `unsafe`, …), so the only hard requirement on the lexer is
//! that those sequences are **never** reported from inside places where
//! they are inert: string literals, raw strings, byte strings, char
//! literals, and (nested) comments. Everything else — numbers, operators,
//! generics — can be tokenized loosely.
//!
//! No `syn`: the vendor/ tree is offline API stubs and this crate stays
//! dependency-free by design (see crates/lint/Cargo.toml).

/// What a token is, as coarsely as the rules need.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`unsafe`, `HashMap`, `env`, …).
    Ident,
    /// Single punctuation character (`:`, `!`, `#`, `{`, …).
    Punct,
    /// String literal of any flavour (`"…"`, `r#"…"#`, `b"…"`).
    Str,
    /// Char or byte-char literal (`'x'`, `b'\n'`).
    Char,
    /// Lifetime (`'static`, `'a`).
    Lifetime,
    /// Numeric literal (loosely lexed; rules never match numbers).
    Num,
}

/// One lexed token with its 1-indexed source line.
#[derive(Debug, Clone)]
pub struct Token {
    /// Coarse token class (see [`TokenKind`]).
    pub kind: TokenKind,
    /// Token text. For [`TokenKind::Str`] this is the literal's *content*
    /// (delimiters stripped) so rules like cache-key-coverage can read
    /// registry entries; for puncts it is the single character.
    pub text: String,
    /// Line the token starts on (1-indexed).
    pub line: usize,
}

/// One comment with its line span and undelimited text. Contiguous `//`
/// line comments merge into a single block (newline-joined text), so a
/// multi-line lint directive or SAFETY note reads as one unit whose
/// `end_line` sits directly above the code it covers.
#[derive(Debug, Clone)]
pub struct Comment {
    /// Text without the `//`/`/*`/`*/` delimiters; merged line comments
    /// are newline-joined.
    pub text: String,
    /// Line the comment starts on (1-indexed).
    pub line: usize,
    /// Line the comment ends on.
    pub end_line: usize,
    /// Whether this is a `/* … */` block comment (never merged).
    pub block: bool,
}

/// A lexed source file: token stream, comments, and `#[cfg(test)]`-module
/// line ranges (so determinism rules can exempt test scaffolding).
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order (comments excluded).
    pub tokens: Vec<Token>,
    /// Comments in source order (lint directives and SAFETY notes live here).
    pub comments: Vec<Comment>,
    /// Inclusive `(start_line, end_line)` spans of `#[cfg(test)] mod … { … }`.
    pub test_regions: Vec<(usize, usize)>,
}

impl Lexed {
    /// Whether `line` falls inside a `#[cfg(test)]` module.
    pub fn in_test_region(&self, line: usize) -> bool {
        self.test_regions.iter().any(|&(s, e)| s <= line && line <= e)
    }
}

/// Lex `src` into tokens + comments. Never fails: unterminated literals
/// or comments are closed at end-of-file (the Rust compiler is the
/// authority on well-formedness; the lint only needs consistent scanning).
pub fn lex(src: &str) -> Lexed {
    let b: Vec<char> = src.chars().collect();
    let n = b.len();
    let mut i = 0;
    let mut line = 1;
    let mut out = Lexed::default();

    macro_rules! bump {
        () => {{
            if b[i] == '\n' {
                line += 1;
            }
            i += 1;
        }};
    }

    while i < n {
        let c = b[i];
        // Whitespace.
        if c.is_whitespace() {
            bump!();
            continue;
        }
        // Line comment (also `///` and `//!` docs).
        if c == '/' && i + 1 < n && b[i + 1] == '/' {
            let start_line = line;
            let mut text = String::new();
            i += 2;
            while i < n && b[i] != '\n' {
                text.push(b[i]);
                i += 1;
            }
            // Merge with a line comment ending on the line directly above
            // (and nothing lexed in between on that line span).
            match out.comments.last_mut() {
                Some(prev)
                    if !prev.block
                        && prev.end_line + 1 == start_line
                        && out.tokens.last().is_none_or(|t| t.line < prev.line) =>
                {
                    prev.text.push('\n');
                    prev.text.push_str(&text);
                    prev.end_line = start_line;
                }
                _ => out.comments.push(Comment {
                    text,
                    line: start_line,
                    end_line: start_line,
                    block: false,
                }),
            }
            continue;
        }
        // Block comment, nesting honoured.
        if c == '/' && i + 1 < n && b[i + 1] == '*' {
            let start_line = line;
            let mut depth = 1usize;
            let mut text = String::new();
            i += 2;
            while i < n && depth > 0 {
                if b[i] == '/' && i + 1 < n && b[i + 1] == '*' {
                    depth += 1;
                    text.push_str("/*");
                    i += 2;
                } else if b[i] == '*' && i + 1 < n && b[i + 1] == '/' {
                    depth -= 1;
                    if depth > 0 {
                        text.push_str("*/");
                    }
                    i += 2;
                } else {
                    if b[i] == '\n' {
                        line += 1;
                    }
                    text.push(b[i]);
                    i += 1;
                }
            }
            out.comments.push(Comment { text, line: start_line, end_line: line, block: true });
            continue;
        }
        // Raw strings: r"…", r#"…"#, br"…", br#"…"# (any # count).
        if (c == 'r' || c == 'b') && raw_string_at(&b, i) {
            let start_line = line;
            let mut j = i + 1; // past 'r' (or 'b')
            if b[i] == 'b' {
                j += 1; // past the 'r' of "br"
            }
            let mut hashes = 0usize;
            while j < n && b[j] == '#' {
                hashes += 1;
                j += 1;
            }
            j += 1; // past opening quote
            let content_start = j;
            // Find `"` followed by `hashes` hash marks.
            while j < n {
                if b[j] == '"' && (1..=hashes).all(|k| j + k < n && b[j + k] == '#') {
                    break;
                }
                if b[j] == '\n' {
                    line += 1;
                }
                j += 1;
            }
            let text: String = b[content_start..j.min(n)].iter().collect();
            out.tokens.push(Token { kind: TokenKind::Str, text, line: start_line });
            i = (j + 1 + hashes).min(n);
            continue;
        }
        // Plain / byte strings with escapes.
        if c == '"' || (c == 'b' && i + 1 < n && b[i + 1] == '"') {
            let start_line = line;
            let mut j = if c == 'b' { i + 2 } else { i + 1 };
            let content_start = j;
            while j < n && b[j] != '"' {
                if b[j] == '\\' && j + 1 < n {
                    if b[j + 1] == '\n' {
                        line += 1;
                    }
                    j += 2;
                    continue;
                }
                if b[j] == '\n' {
                    line += 1;
                }
                j += 1;
            }
            let text: String = b[content_start..j.min(n)].iter().collect();
            out.tokens.push(Token { kind: TokenKind::Str, text, line: start_line });
            i = (j + 1).min(n);
            continue;
        }
        // Byte char b'x'.
        if c == 'b' && i + 1 < n && b[i + 1] == '\'' {
            let start_line = line;
            let j = skip_char_literal(&b, i + 1);
            out.tokens.push(Token { kind: TokenKind::Char, text: String::new(), line: start_line });
            i = j;
            continue;
        }
        // Lifetime vs char literal.
        if c == '\'' {
            let is_lifetime = i + 1 < n
                && (b[i + 1].is_alphabetic() || b[i + 1] == '_')
                && !char_literal_at(&b, i);
            if is_lifetime {
                let mut j = i + 1;
                let mut text = String::from("'");
                while j < n && is_ident_char(b[j]) {
                    text.push(b[j]);
                    j += 1;
                }
                out.tokens.push(Token { kind: TokenKind::Lifetime, text, line });
                i = j;
            } else {
                let j = skip_char_literal(&b, i);
                out.tokens.push(Token { kind: TokenKind::Char, text: String::new(), line });
                i = j;
            }
            continue;
        }
        // Identifier / keyword.
        if c.is_alphabetic() || c == '_' {
            let mut j = i;
            let mut text = String::new();
            while j < n && is_ident_char(b[j]) {
                text.push(b[j]);
                j += 1;
            }
            out.tokens.push(Token { kind: TokenKind::Ident, text, line });
            i = j;
            continue;
        }
        // Number (loose: digits, hex/bin prefixes, suffixes, exponents).
        if c.is_ascii_digit() {
            let mut j = i;
            let mut text = String::new();
            while j < n
                && (is_ident_char(b[j]) || (b[j] == '.' && j + 1 < n && b[j + 1].is_ascii_digit()))
            {
                text.push(b[j]);
                j += 1;
            }
            out.tokens.push(Token { kind: TokenKind::Num, text, line });
            i = j;
            continue;
        }
        // Single punctuation char.
        out.tokens.push(Token { kind: TokenKind::Punct, text: c.to_string(), line });
        bump!();
    }

    out.test_regions = find_test_regions(&out.tokens);
    out
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Is there a raw string (`r"`, `r#`, `br"`, `br#`) starting at `i`?
fn raw_string_at(b: &[char], i: usize) -> bool {
    let mut j = i;
    if b[j] == 'b' {
        j += 1;
        if j >= b.len() || b[j] != 'r' {
            return false;
        }
    }
    if b[j] != 'r' {
        return false;
    }
    j += 1;
    while j < b.len() && b[j] == '#' {
        j += 1;
    }
    j < b.len() && b[j] == '"' && {
        // `r` followed by quote/hashes only counts when `r` is not the tail
        // of a longer identifier (e.g. `var"` cannot happen, but `_r"` could
        // in theory); the caller only probes at token starts, so this holds.
        true
    }
}

/// Is `'` at `i` a char literal (vs a lifetime)? True when a closing quote
/// appears right after one (possibly escaped) char.
fn char_literal_at(b: &[char], i: usize) -> bool {
    // 'x' → quote, one char, quote.
    if i + 2 < b.len() && b[i + 1] != '\\' && b[i + 2] == '\'' {
        return true;
    }
    // '\n' and friends → quote, backslash, …
    b.get(i + 1) == Some(&'\\')
}

/// Skip a char literal starting at the opening quote `b[i] == '\''`,
/// returning the index just past the closing quote.
fn skip_char_literal(b: &[char], i: usize) -> usize {
    let n = b.len();
    let mut j = i + 1;
    if j < n && b[j] == '\\' {
        j += 2; // escape + escaped char (covers \', \\, \n; \u{…} handled below)
        while j < n && b[j] != '\'' {
            j += 1;
        }
    } else if j < n {
        j += 1;
    }
    (j + 1).min(n) // past closing quote
}

/// Find `#[cfg(test)] … mod name { … }` spans so rules can exempt test
/// scaffolding (assertion bookkeeping legitimately uses `HashMap`,
/// `println!`, wall-clock timers).
fn find_test_regions(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let t = |k: usize| tokens.get(k);
    let is = |k: usize, s: &str| t(k).is_some_and(|tok| tok.text == s);
    let mut i = 0;
    while i < tokens.len() {
        // Match `# [ cfg ( test ) ]`.
        if is(i, "#")
            && is(i + 1, "[")
            && is(i + 2, "cfg")
            && is(i + 3, "(")
            && is(i + 4, "test")
            && is(i + 5, ")")
            && is(i + 6, "]")
        {
            let mut j = i + 7;
            // Skip further attributes `# [ … ]` (balanced brackets).
            while is(j, "#") && is(j + 1, "[") {
                let mut depth = 0usize;
                j += 1;
                while let Some(tok) = t(j) {
                    if tok.text == "[" {
                        depth += 1;
                    } else if tok.text == "]" {
                        depth -= 1;
                        if depth == 0 {
                            j += 1;
                            break;
                        }
                    }
                    j += 1;
                }
            }
            // Optional visibility: `pub` or `pub ( … )`.
            if is(j, "pub") {
                j += 1;
                if is(j, "(") {
                    while let Some(tok) = t(j) {
                        let done = tok.text == ")";
                        j += 1;
                        if done {
                            break;
                        }
                    }
                }
            }
            if is(j, "mod") {
                // `mod name {` — find the block's matching close brace.
                let start_line = tokens[i].line;
                let mut k = j + 1;
                while let Some(tok) = t(k) {
                    if tok.text == "{" {
                        break;
                    }
                    if tok.text == ";" {
                        // `mod name;` — out-of-line test module, no span here.
                        k = usize::MAX;
                        break;
                    }
                    k += 1;
                }
                if k != usize::MAX && t(k).is_some() {
                    let mut depth = 0usize;
                    let mut end_line = tokens[k].line;
                    while let Some(tok) = t(k) {
                        if tok.text == "{" {
                            depth += 1;
                        } else if tok.text == "}" {
                            depth -= 1;
                            if depth == 0 {
                                end_line = tok.line;
                                break;
                            }
                        }
                        end_line = tok.line;
                        k += 1;
                    }
                    regions.push((start_line, end_line));
                    i = k;
                }
            }
        }
        i += 1;
    }
    regions
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text.clone())
            .collect()
    }

    #[test]
    fn identifiers_inside_strings_are_not_tokens() {
        let src = r##"let x = "HashMap in a string"; let y = r#"env::var"#;"##;
        let ids = idents(src);
        assert!(!ids.contains(&"HashMap".to_string()), "{ids:?}");
        assert!(!ids.contains(&"env".to_string()), "{ids:?}");
        assert!(ids.contains(&"let".to_string()));
    }

    #[test]
    fn nested_block_comments_are_one_comment() {
        let src = "/* outer /* inner HashMap */ tail */ fn f() {}";
        let l = lex(src);
        assert_eq!(l.comments.len(), 1);
        assert!(l.comments[0].text.contains("inner HashMap"));
        assert!(idents(src).contains(&"fn".to_string()));
        assert!(!idents(src).contains(&"HashMap".to_string()));
    }

    #[test]
    fn char_literals_and_lifetimes_disambiguate() {
        let src = "fn f<'a>(x: &'a str) -> char { 'x' } // 'y is a lifetime";
        let l = lex(src);
        let lifetimes: Vec<_> = l.tokens.iter().filter(|t| t.kind == TokenKind::Lifetime).collect();
        assert_eq!(lifetimes.len(), 2, "{lifetimes:?}");
        assert_eq!(l.tokens.iter().filter(|t| t.kind == TokenKind::Char).count(), 1);
    }

    #[test]
    fn escaped_quote_in_char_does_not_derail() {
        let src = r"let q = '\''; let s = 'n'; let x = HashMap::new();";
        assert!(idents(src).contains(&"HashMap".to_string()));
    }

    #[test]
    fn raw_string_with_hashes_and_inner_quotes() {
        let src = r###"let s = r#"quote " inside SystemTime"#; let t = Instant;"###;
        let ids = idents(src);
        assert!(!ids.contains(&"SystemTime".to_string()));
        assert!(ids.contains(&"Instant".to_string()));
    }

    #[test]
    fn line_numbers_survive_multiline_strings() {
        let src = "let a = \"line\nline\nline\";\nlet b = Foo;";
        let l = lex(src);
        let foo = l.tokens.iter().find(|t| t.text == "Foo").unwrap();
        assert_eq!(foo.line, 4);
    }

    #[test]
    fn cfg_test_regions_are_found() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn after() {}";
        let l = lex(src);
        assert_eq!(l.test_regions, vec![(2, 5)]);
        assert!(l.in_test_region(4));
        assert!(!l.in_test_region(6));
    }

    #[test]
    fn comments_carry_their_lines() {
        let src = "// first\nfn f() {}\n// lint: allow(x) — reason\nfn g() {}";
        let l = lex(src);
        assert_eq!(l.comments.len(), 2);
        assert_eq!(l.comments[1].line, 3);
        assert!(l.comments[1].text.contains("lint: allow"));
    }
}
