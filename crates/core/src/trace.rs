//! Run-level trace support: the META blob and lossless replay.
//!
//! The metrics crate owns the `dfsim-trace v1` frame format and the event
//! encoding ([`dfsim_metrics::trace`]); this module owns what the *runner*
//! knows and the events alone cannot carry — the report-relevant slice of
//! the [`SimConfig`], the job list, per-app finish times, engine statistics
//! and the stop condition. It is written into the trace's META frame, so a
//! trace file is self-contained: [`replay_trace`] rebuilds the exact
//! [`RunReport`] of the originating run from the file alone, bit for bit.
//!
//! The blob is a little-endian binary layout with its own leading version
//! word (`f64`s as raw bits so report values survive exactly), decoded with
//! checked reads that fail as named [`TraceError`]s.

use std::path::Path;
use std::sync::Arc;

use dfsim_apps::AppKind;
use dfsim_des::{EngineStats, QueueBackend, Time};
use dfsim_metrics::trace::{read_meta, read_trace, TraceContents, TraceError};
use dfsim_metrics::{Recorder, RecorderConfig};
use dfsim_network::{QTableInit, RoutingAlgo, RoutingConfig};
use dfsim_topology::{DragonflyParams, LinkTiming, Topology};

use crate::config::SimConfig;
use crate::report::{JobReport, RunReport};
use crate::runner::{build_report, JobSpec};
use crate::world::StopReason;

/// Version word leading the META payload.
const META_VERSION: u32 = 1;

/// Everything the META frame carries: the run context a replay needs
/// beyond the event stream itself.
#[derive(Debug, Clone)]
pub struct TraceMeta {
    /// Report-relevant reconstruction of the originating config (topology
    /// parameters, timing, routing/queue labels, seed, scale, recorder
    /// granularity; engine-only knobs like horizons keep their defaults).
    pub cfg: SimConfig,
    /// The non-idle jobs of the run, in app order.
    pub jobs: Vec<JobSpec>,
    /// Per-job admission times, ps.
    pub starts: Vec<Time>,
    /// Per-app completion times, ps.
    pub finished: Vec<Option<Time>>,
    /// Event-engine statistics of the original run.
    pub stats: EngineStats,
    /// Canonical processed-event count.
    pub events: u64,
    /// Why the run stopped.
    pub stop: StopReason,
    /// Final simulated time, ps.
    pub end_time: Time,
    /// Host wall-clock seconds of the original run.
    pub wall_s: f64,
    /// Per-job churn outcomes (empty for static runs).
    pub job_reports: Vec<JobReport>,
}

// ---- encoding --------------------------------------------------------------

pub(crate) fn put_u8(b: &mut Vec<u8>, v: u8) {
    b.push(v);
}
pub(crate) fn put_u32(b: &mut Vec<u8>, v: u32) {
    b.extend_from_slice(&v.to_le_bytes());
}
pub(crate) fn put_u64(b: &mut Vec<u8>, v: u64) {
    b.extend_from_slice(&v.to_le_bytes());
}
pub(crate) fn put_f64(b: &mut Vec<u8>, v: f64) {
    put_u64(b, v.to_bits());
}
pub(crate) fn put_str(b: &mut Vec<u8>, s: &str) {
    put_u32(b, len_u32(s.len(), "a string length"));
    b.extend_from_slice(s.as_bytes());
}
pub(crate) fn put_opt_u64(b: &mut Vec<u8>, v: Option<u64>) {
    put_u8(b, u8::from(v.is_some()));
    put_u64(b, v.unwrap_or(0));
}
pub(crate) fn put_opt_f64(b: &mut Vec<u8>, v: Option<f64>) {
    put_u8(b, u8::from(v.is_some()));
    put_f64(b, v.unwrap_or(0.0));
}

/// Encode-side length word. Every length the codecs write (label strings,
/// job/app/series counts, embedded blobs) is bounded far below `u32::MAX`
/// by construction; a breach is a programming error that must stop the
/// writer, because a silently wrapped length word corrupts the file.
pub(crate) fn len_u32(n: usize, what: &'static str) -> u32 {
    // lint: allow(no-panic-paths) — writer-side invariant: codec lengths are bounded far below u32::MAX by construction, and wrapping the length word would corrupt the blob, so a breach must stop the writer
    u32::try_from(n).expect(what)
}

/// Encode the META payload for a finished run (the runner's half of
/// [`replay_trace`]'s losslessness contract).
#[allow(clippy::too_many_arguments)]
pub(crate) fn encode_meta(
    cfg: &SimConfig,
    jobs: &[&JobSpec],
    finished: &[Option<Time>],
    stats: EngineStats,
    events: u64,
    stop: StopReason,
    end_time: Time,
    wall_s: f64,
    starts: &[Time],
    job_reports: &[JobReport],
) -> Vec<u8> {
    let mut b = Vec::with_capacity(256);
    put_u32(&mut b, META_VERSION);
    // Topology + timing.
    put_u32(&mut b, cfg.params.groups);
    put_u32(&mut b, cfg.params.routers_per_group);
    put_u32(&mut b, cfg.params.nodes_per_router);
    put_u32(&mut b, cfg.params.globals_per_router);
    put_u64(&mut b, cfg.timing.bandwidth_gbps);
    put_u64(&mut b, cfg.timing.local_latency_ps);
    put_u64(&mut b, cfg.timing.global_latency_ps);
    put_u64(&mut b, cfg.timing.terminal_latency_ps);
    put_u32(&mut b, cfg.timing.flit_bytes);
    put_u32(&mut b, cfg.timing.packet_bytes);
    put_u32(&mut b, cfg.timing.buffer_packets);
    // Routing / queue / run identity.
    put_str(&mut b, cfg.routing.algo.label());
    put_str(&mut b, cfg.routing.qtable_init.label());
    put_str(&mut b, &cfg.queue.describe());
    put_u64(&mut b, cfg.seed);
    put_f64(&mut b, cfg.scale);
    // Recorder granularity.
    put_u64(&mut b, cfg.recorder.bin_width);
    put_u8(&mut b, u8::from(cfg.recorder.record_latencies));
    put_u8(&mut b, u8::from(cfg.recorder.record_ports));
    // Jobs + per-app outcomes.
    put_u32(&mut b, len_u32(jobs.len(), "the job count"));
    for j in jobs {
        put_str(&mut b, j.kind.name());
        put_u32(&mut b, j.size);
    }
    for &s in starts {
        put_u64(&mut b, s);
    }
    for &f in finished {
        put_opt_u64(&mut b, f);
    }
    // Engine + stop condition.
    put_u64(&mut b, stats.events_processed);
    put_u64(&mut b, stats.events_scheduled);
    put_u64(&mut b, stats.pending as u64);
    put_u64(&mut b, stats.peak_pending as u64);
    put_u64(&mut b, stats.resizes);
    put_u64(&mut b, stats.bucket_scans);
    put_u64(&mut b, stats.sparse_jumps);
    put_u64(&mut b, stats.buckets as u64);
    put_u64(&mut b, stats.width_ps);
    put_u64(&mut b, events);
    put_u8(
        &mut b,
        match stop {
            StopReason::AllFinished => 0,
            StopReason::Horizon => 1,
            StopReason::EventCap => 2,
            StopReason::Drained => 3,
        },
    );
    put_u64(&mut b, end_time);
    put_f64(&mut b, wall_s);
    // Churn job outcomes.
    put_u32(&mut b, len_u32(job_reports.len(), "the job-report count"));
    for j in job_reports {
        put_u32(&mut b, j.job);
        put_str(&mut b, &j.name);
        put_u32(&mut b, j.size);
        put_f64(&mut b, j.arrival_ms);
        put_opt_f64(&mut b, j.start_ms);
        put_opt_f64(&mut b, j.finish_ms);
        put_f64(&mut b, j.wait_ms);
        put_f64(&mut b, j.run_ms);
        put_f64(&mut b, j.response_ms);
        put_opt_f64(&mut b, j.slowdown);
        put_u8(&mut b, u8::from(j.completed));
    }
    b
}

// ---- decoding --------------------------------------------------------------

/// Checked little-endian cursor over the META payload (also reused by the
/// result cache's report blob decoder in [`crate::cache`]).
pub(crate) struct Cur<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Cur<'a> {
    pub(crate) fn new(data: &'a [u8]) -> Self {
        Cur { data, pos: 0 }
    }
    /// A raw byte slice of known length (the cache's length-prefixed
    /// blobs).
    pub(crate) fn bytes(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], TraceError> {
        self.take(n, what)
    }
    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], TraceError> {
        let s = self
            .pos
            .checked_add(n)
            .and_then(|end| self.data.get(self.pos..end))
            .ok_or(TraceError::Truncated { offset: self.pos as u64, what })?;
        self.pos += n;
        Ok(s)
    }
    /// A fixed-width little-endian field as an owned array. `take` hands
    /// back exactly `N` bytes, so the conversion's error arm is purely
    /// defensive — it still maps onto a named error rather than a panic.
    fn take_n<const N: usize>(&mut self, what: &'static str) -> Result<[u8; N], TraceError> {
        let at = self.pos as u64;
        let s = self.take(N, what)?;
        s.try_into().map_err(|_| TraceError::Malformed {
            offset: at,
            msg: format!("{what}: internal field-width mismatch"),
        })
    }
    pub(crate) fn u8(&mut self, what: &'static str) -> Result<u8, TraceError> {
        let [b] = self.take_n::<1>(what)?;
        Ok(b)
    }
    pub(crate) fn u32(&mut self, what: &'static str) -> Result<u32, TraceError> {
        Ok(u32::from_le_bytes(self.take_n(what)?))
    }
    pub(crate) fn u64(&mut self, what: &'static str) -> Result<u64, TraceError> {
        Ok(u64::from_le_bytes(self.take_n(what)?))
    }
    pub(crate) fn f64(&mut self, what: &'static str) -> Result<f64, TraceError> {
        Ok(f64::from_bits(self.u64(what)?))
    }
    /// A `u32` length/count word widened to `usize` (fallible only on
    /// hosts narrower than 32 bits, where it is a named error instead of
    /// a silent wrap).
    pub(crate) fn len(&mut self, what: &'static str) -> Result<usize, TraceError> {
        let v = self.u32(what)?;
        usize::try_from(v)
            .map_err(|_| self.bad(format!("{what}: count {v} exceeds the host address width")))
    }
    /// A `u64` count word narrowed to `usize`, failing as a named error
    /// when the value does not fit the host (a 32-bit replay of a 64-bit
    /// run's statistics).
    pub(crate) fn count64(&mut self, what: &'static str) -> Result<usize, TraceError> {
        let v = self.u64(what)?;
        usize::try_from(v)
            .map_err(|_| self.bad(format!("{what}: count {v} exceeds the host address width")))
    }
    pub(crate) fn str(&mut self, what: &'static str) -> Result<String, TraceError> {
        let n = self.len(what)?;
        let at = self.pos as u64;
        let bytes = self.take(n, what)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| TraceError::Malformed {
            offset: at,
            msg: format!("{what} is not valid UTF-8"),
        })
    }
    pub(crate) fn opt_u64(&mut self, what: &'static str) -> Result<Option<u64>, TraceError> {
        let has = self.u8(what)? != 0;
        let v = self.u64(what)?;
        Ok(has.then_some(v))
    }
    pub(crate) fn opt_f64(&mut self, what: &'static str) -> Result<Option<f64>, TraceError> {
        let has = self.u8(what)? != 0;
        let v = self.f64(what)?;
        Ok(has.then_some(v))
    }
    pub(crate) fn bad(&self, msg: String) -> TraceError {
        TraceError::Malformed { offset: self.pos as u64, msg }
    }
}

/// Decode a META payload written by [`encode_meta`].
pub fn decode_meta(blob: &[u8]) -> Result<TraceMeta, TraceError> {
    let mut c = Cur { data: blob, pos: 0 };
    let ver = c.u32("the meta version")?;
    if ver != META_VERSION {
        return Err(
            c.bad(format!("unsupported trace meta version {ver} (expected {META_VERSION})"))
        );
    }
    let params = DragonflyParams {
        groups: c.u32("params.groups")?,
        routers_per_group: c.u32("params.routers_per_group")?,
        nodes_per_router: c.u32("params.nodes_per_router")?,
        globals_per_router: c.u32("params.globals_per_router")?,
    };
    let timing = LinkTiming {
        bandwidth_gbps: c.u64("timing.bandwidth_gbps")?,
        local_latency_ps: c.u64("timing.local_latency_ps")?,
        global_latency_ps: c.u64("timing.global_latency_ps")?,
        terminal_latency_ps: c.u64("timing.terminal_latency_ps")?,
        flit_bytes: c.u32("timing.flit_bytes")?,
        packet_bytes: c.u32("timing.packet_bytes")?,
        buffer_packets: c.u32("timing.buffer_packets")?,
    };
    let routing_label = c.str("the routing label")?;
    let algo = *RoutingAlgo::ALL
        .iter()
        .find(|r| r.label() == routing_label)
        .ok_or_else(|| c.bad(format!("unknown routing label '{routing_label}'")))?;
    let mut routing = RoutingConfig::new(algo);
    let init_label = c.str("the qtable-init label")?;
    routing.qtable_init = match init_label.as_str() {
        "cold" => QTableInit::Cold,
        // Only the label reaches the report; the original path is gone.
        "warm" => QTableInit::load(""),
        other => return Err(c.bad(format!("unknown qtable-init label '{other}'"))),
    };
    let queue_s = c.str("the queue backend")?;
    let queue: QueueBackend =
        queue_s.parse().map_err(|e| c.bad(format!("bad queue backend '{queue_s}': {e}")))?;
    let seed = c.u64("the seed")?;
    let scale = c.f64("the scale")?;
    let recorder = RecorderConfig {
        bin_width: c.u64("recorder.bin_width")?,
        record_latencies: c.u8("recorder.record_latencies")? != 0,
        record_ports: c.u8("recorder.record_ports")? != 0,
    };
    let njobs = c.len("the job count")?;
    let mut jobs = Vec::with_capacity(njobs);
    for _ in 0..njobs {
        let name = c.str("a job kind")?;
        let kind = *AppKind::ALL
            .iter()
            .find(|k| k.name() == name)
            .ok_or_else(|| c.bad(format!("unknown workload '{name}'")))?;
        let size = c.u32("a job size")?;
        jobs.push(JobSpec::sized(kind, size));
    }
    let starts = (0..njobs).map(|_| c.u64("a start time")).collect::<Result<Vec<_>, _>>()?;
    let finished = (0..njobs).map(|_| c.opt_u64("a finish time")).collect::<Result<Vec<_>, _>>()?;
    let stats = EngineStats {
        events_processed: c.u64("stats.events_processed")?,
        events_scheduled: c.u64("stats.events_scheduled")?,
        pending: c.count64("stats.pending")?,
        peak_pending: c.count64("stats.peak_pending")?,
        resizes: c.u64("stats.resizes")?,
        bucket_scans: c.u64("stats.bucket_scans")?,
        sparse_jumps: c.u64("stats.sparse_jumps")?,
        buckets: c.count64("stats.buckets")?,
        width_ps: c.u64("stats.width_ps")?,
    };
    let events = c.u64("the event count")?;
    let stop = match c.u8("the stop reason")? {
        0 => StopReason::AllFinished,
        1 => StopReason::Horizon,
        2 => StopReason::EventCap,
        3 => StopReason::Drained,
        v => return Err(c.bad(format!("unknown stop reason {v}"))),
    };
    let end_time = c.u64("the end time")?;
    let wall_s = c.f64("the wall time")?;
    let nreports = c.len("the job-report count")?;
    let mut job_reports = Vec::with_capacity(nreports);
    for _ in 0..nreports {
        job_reports.push(JobReport {
            job: c.u32("job_report.job")?,
            name: c.str("job_report.name")?,
            size: c.u32("job_report.size")?,
            arrival_ms: c.f64("job_report.arrival_ms")?,
            start_ms: c.opt_f64("job_report.start_ms")?,
            finish_ms: c.opt_f64("job_report.finish_ms")?,
            wait_ms: c.f64("job_report.wait_ms")?,
            run_ms: c.f64("job_report.run_ms")?,
            response_ms: c.f64("job_report.response_ms")?,
            slowdown: c.opt_f64("job_report.slowdown")?,
            completed: c.u8("job_report.completed")? != 0,
        });
    }
    let cfg =
        SimConfig { params, timing, routing, recorder, scale, seed, queue, ..Default::default() };
    Ok(TraceMeta {
        cfg,
        jobs,
        starts,
        finished,
        stats,
        events,
        stop,
        end_time,
        wall_s,
        job_reports,
    })
}

// ---- replay ----------------------------------------------------------------

/// Read a `dfsim-trace v1` file and return its META context (skipping the
/// event payloads) together with nothing decoded — the cheap half of
/// [`summarize_trace`] and the bootstrap of [`replay_trace`].
pub fn read_trace_meta(path: &Path) -> Result<TraceMeta, TraceError> {
    let contents = read_meta(path)?;
    decode_trace_meta(path, &contents)
}

fn decode_trace_meta(path: &Path, contents: &TraceContents) -> Result<TraceMeta, TraceError> {
    let blob = contents.meta.as_deref().ok_or_else(|| TraceError::Malformed {
        offset: 0,
        msg: format!("{} carries no META frame (written without run context?)", path.display()),
    })?;
    decode_meta(blob)
}

/// Scan totals plus the decoded META context of a trace file — the
/// `dfsim trace` summary view. Decodes every event (for the per-kind
/// counts) but replays nothing.
pub fn summarize_trace(path: &Path) -> Result<(TraceContents, TraceMeta), TraceError> {
    let contents = read_trace(path, |_| {})?;
    let meta = decode_trace_meta(path, &contents)?;
    Ok((contents, meta))
}

/// Rebuild the originating run's [`RunReport`] from a trace file alone:
/// stream every event through a fresh [`Recorder`] and assemble the report
/// from the recorder plus the META context. The result is bit-identical to
/// the report of the traced run (the trace round-trip suite pins this).
pub fn replay_trace(path: &Path) -> Result<RunReport, TraceError> {
    let meta = read_trace_meta(path)?;
    let topo = Arc::new(Topology::new(meta.cfg.params).map_err(|e| TraceError::Malformed {
        offset: 0,
        msg: format!("meta topology parameters are invalid: {e}"),
    })?);
    let mut rec = Recorder::new(&topo, meta.cfg.recorder);
    read_trace(path, |ev| rec.replay_event(ev))?;
    let jobs: Vec<&JobSpec> = meta.jobs.iter().collect();
    Ok(build_report(
        &meta.cfg,
        &jobs,
        &topo,
        &rec,
        &meta.finished,
        meta.stats,
        meta.events,
        meta.stop,
        meta.end_time,
        meta.wall_s,
        &meta.starts,
        meta.job_reports,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meta_round_trips_through_the_codec() {
        let mut cfg = SimConfig::test_tiny(RoutingAlgo::QAdaptive);
        cfg.routing.qtable_init = QTableInit::load("/tmp/q.snap");
        let jobs = [JobSpec::sized(AppKind::FFT3D, 36), JobSpec::sized(AppKind::UR, 36)];
        let job_refs: Vec<&JobSpec> = jobs.iter().collect();
        let stats = EngineStats {
            events_processed: 100,
            events_scheduled: 120,
            pending: 3,
            peak_pending: 17,
            ..Default::default()
        };
        let reports = vec![JobReport {
            job: 0,
            name: "FFT3D".into(),
            size: 36,
            arrival_ms: 0.25,
            start_ms: Some(0.5),
            finish_ms: None,
            wait_ms: 0.25,
            run_ms: 0.0,
            response_ms: 1.5,
            slowdown: None,
            completed: false,
        }];
        let blob = encode_meta(
            &cfg,
            &job_refs,
            &[Some(7_000), None],
            stats,
            100,
            StopReason::Horizon,
            9_000,
            1.25,
            &[0, 100],
            &reports,
        );
        let m = decode_meta(&blob).unwrap();
        assert_eq!(m.cfg.params, cfg.params);
        assert_eq!(m.cfg.timing, cfg.timing);
        assert_eq!(m.cfg.routing.algo, RoutingAlgo::QAdaptive);
        assert_eq!(m.cfg.routing.qtable_init.label(), "warm");
        assert_eq!(m.cfg.queue, cfg.queue);
        assert_eq!(m.cfg.seed, cfg.seed);
        assert_eq!(m.cfg.scale.to_bits(), cfg.scale.to_bits());
        assert_eq!(m.jobs, jobs);
        assert_eq!(m.starts, [0, 100]);
        assert_eq!(m.finished, [Some(7_000), None]);
        assert_eq!(m.stats, stats);
        assert_eq!(m.stop, StopReason::Horizon);
        assert_eq!(m.end_time, 9_000);
        assert_eq!(m.wall_s.to_bits(), 1.25f64.to_bits());
        assert_eq!(m.job_reports.len(), 1);
        assert_eq!(m.job_reports[0].slowdown, None);
        assert_eq!(m.job_reports[0].start_ms, Some(0.5));
    }

    #[test]
    fn truncated_meta_is_a_named_error() {
        let cfg = SimConfig::test_tiny(RoutingAlgo::UgalG);
        let blob = encode_meta(
            &cfg,
            &[],
            &[],
            EngineStats::default(),
            0,
            StopReason::AllFinished,
            0,
            0.0,
            &[],
            &[],
        );
        let e = decode_meta(&blob[..blob.len() - 3]).unwrap_err();
        assert!(matches!(e, TraceError::Truncated { .. }), "{e}");
        let mut bad = blob.clone();
        bad[0] = 99; // version word
        let e = decode_meta(&bad).unwrap_err();
        assert!(e.to_string().contains("meta version"), "{e}");
    }
}
