//! Job-to-node placement.
//!
//! The paper uses *random placement* throughout (§V: "Random job placement
//! is used in our experiments"), keeping each target application's
//! process-to-node mapping fixed across runs so communication-time
//! differences expose interference rather than mapping luck. We implement
//! that by shuffling the node list once from the placement seed and slicing
//! job partitions off the shuffled order — the same seed yields the same
//! mapping whether or not a background job occupies the other slice.
//! Contiguous placement is included for the ablation discussed in §I.

use dfsim_des::SimRng;
use dfsim_topology::{NodeId, Topology};

/// Placement policies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// Nodes shuffled uniformly (the paper's setting).
    Random,
    /// Jobs take consecutive node ids (group-contiguous partitions).
    Contiguous,
}

impl Placement {
    /// Every selectable policy (registry order).
    pub const ALL: [Placement; 2] = [Placement::Random, Placement::Contiguous];

    /// Short stable name (spec files, CLI, reports).
    pub fn label(&self) -> &'static str {
        match self {
            Placement::Random => "random",
            Placement::Contiguous => "contiguous",
        }
    }
}

impl std::fmt::Display for Placement {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Assign `sizes[i]` nodes to each job under the policy. Returns one node
/// list per job; `sizes` must sum to at most the node count.
pub fn place(topo: &Topology, policy: Placement, sizes: &[u32], seed: u64) -> Vec<Vec<NodeId>> {
    let total: u32 = sizes.iter().sum();
    assert!(total <= topo.num_nodes(), "jobs need {total} nodes, system has {}", topo.num_nodes());
    let mut nodes: Vec<NodeId> = (0..topo.num_nodes()).map(NodeId).collect();
    if policy == Placement::Random {
        let mut rng = SimRng::new(seed).derive("placement");
        rng.shuffle(&mut nodes);
    }
    let mut out = Vec::with_capacity(sizes.len());
    let mut cursor = 0usize;
    for &s in sizes {
        out.push(nodes[cursor..cursor + s as usize].to_vec());
        cursor += s as usize;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfsim_topology::DragonflyParams;

    fn topo() -> Topology {
        Topology::new(DragonflyParams::paper_1056()).unwrap()
    }

    #[test]
    fn partitions_are_disjoint_and_sized() {
        let t = topo();
        let jobs = place(&t, Placement::Random, &[528, 512], 1);
        assert_eq!(jobs[0].len(), 528);
        assert_eq!(jobs[1].len(), 512);
        let mut all: Vec<u32> = jobs.iter().flatten().map(|n| n.0).collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 1040, "overlapping partitions");
    }

    #[test]
    fn same_seed_fixes_the_target_mapping_with_or_without_background() {
        let t = topo();
        let solo = place(&t, Placement::Random, &[528], 9);
        let pair = place(&t, Placement::Random, &[528, 528], 9);
        assert_eq!(solo[0], pair[0], "target mapping must be stable across runs");
    }

    #[test]
    fn different_seeds_differ() {
        let t = topo();
        let a = place(&t, Placement::Random, &[100], 1);
        let b = place(&t, Placement::Random, &[100], 2);
        assert_ne!(a, b);
    }

    #[test]
    fn contiguous_is_identity_order() {
        let t = topo();
        let jobs = place(&t, Placement::Contiguous, &[8, 8], 5);
        assert_eq!(jobs[0], (0..8).map(NodeId).collect::<Vec<_>>());
        assert_eq!(jobs[1], (8..16).map(NodeId).collect::<Vec<_>>());
    }

    #[test]
    fn random_spreads_across_groups() {
        let t = topo();
        let jobs = place(&t, Placement::Random, &[528], 3);
        let groups: std::collections::HashSet<u32> =
            jobs[0].iter().map(|&n| t.group_of_node(n).0).collect();
        assert!(groups.len() > 20, "random placement should span most groups");
    }

    #[test]
    #[should_panic(expected = "jobs need")]
    fn oversubscription_panics() {
        let t = topo();
        let _ = place(&t, Placement::Random, &[1000, 100], 0);
    }
}
