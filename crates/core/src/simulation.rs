//! The simulation session API: run an [`ExperimentSpec`] end to end.
//!
//! One object owns the whole lifecycle that used to be spread over
//! `run_placed`/`run_scenario` and per-binary glue:
//!
//! ```no_run
//! use dfsim_core::spec::{ExperimentSpec, Workload};
//! use dfsim_core::simulation::Simulation;
//! use dfsim_apps::AppKind;
//!
//! let spec = ExperimentSpec::default()
//!     .with_workload(Workload::pairwise(AppKind::FFT3D, Some(AppKind::Halo3D)));
//! let mut sim = Simulation::from_spec(spec).unwrap();
//! sim.prepare().unwrap(); // optional: materialize + validate eagerly
//! let handle = sim.run().unwrap();
//! println!("comm {:.3} ms", handle.report.apps[0].comm_ms.mean);
//! ```
//!
//! * [`Simulation::from_spec`] validates the spec (exactly one routing —
//!   sweep binaries iterate [`ExperimentSpec::cell`]).
//! * [`Simulation::prepare`] materializes the workload (job lists, churn
//!   scenarios), pre-verifies the Q-table snapshot fingerprint and the
//!   save path's writability, so misconfiguration fails *before* the run.
//! * [`Simulation::run`] executes on the configured queue backend and
//!   returns a [`RunHandle`] — the report plus the learned Q-table
//!   snapshot. Reports are bit-identical to the deprecated free-function
//!   entry points: the session is a front-end over the same engine.

use dfsim_network::QTableSnapshot;

use crate::cache::{cache_key, ResultCache};
use crate::config::SimConfig;
use crate::experiments::MIXED_JOBS;
use crate::report::{EngineReport, LearningReport, RunReport};
use crate::runner::{exec_placed, JobSpec};
use crate::scenario::{exec_scenario_policy, Scenario};
use crate::spec::{ExperimentSpec, SpecError, Workload};

/// The outcome of one [`Simulation::run`].
#[derive(Debug, Clone)]
pub struct RunHandle {
    /// The full run report (apps, jobs, network, engine, learning).
    pub report: RunReport,
    /// The learned per-router Q-tables after the run (Q-adaptive runs
    /// only; already written to disk when the spec sets `qtable_save`).
    pub qtable_snapshot: Option<QTableSnapshot>,
    /// Provenance: `true` when the report was served from the result
    /// cache instead of a live simulation. The report's `wall_s` (and the
    /// engine's `events_per_sec`) then describe the *original* run's
    /// simulation cost, not this retrieval — presentation layers label it
    /// accordingly.
    pub cached: bool,
}

impl RunHandle {
    /// The event-engine block of the report.
    pub fn engine_stats(&self) -> &EngineReport {
        &self.report.engine
    }

    /// The Q-learning convergence block (Q-adaptive runs only).
    pub fn learning(&self) -> Option<&LearningReport> {
        self.report.learning.as_ref()
    }
}

/// The materialized work of a prepared session.
#[derive(Debug, Clone)]
enum PreparedWork {
    /// Static jobs, all starting at t = 0.
    Static(Vec<JobSpec>),
    /// A churn scenario admitted by the spec's scheduler policy.
    Churn(Scenario),
}

/// A validated, materialized session ready to run.
#[derive(Debug, Clone)]
struct Prepared {
    cfg: SimConfig,
    work: PreparedWork,
}

/// A simulation session: spec in, [`RunHandle`] out.
#[derive(Debug, Clone)]
pub struct Simulation {
    spec: ExperimentSpec,
    prepared: Option<Prepared>,
}

impl Simulation {
    /// Start a session from a spec. Fails with a named error when the spec
    /// is invalid or names more than one routing (sweeps specialize with
    /// [`ExperimentSpec::cell`] and run one session per cell).
    pub fn from_spec(spec: ExperimentSpec) -> Result<Self, SpecError> {
        spec.validate()?;
        if spec.routings.len() != 1 {
            return Err(SpecError::Invalid {
                msg: format!(
                    "a simulation session runs exactly one routing; the spec names {} ({}) — \
                     sweep binaries iterate the set with ExperimentSpec::cell",
                    spec.routings.len(),
                    spec.routings.iter().map(|r| r.label()).collect::<Vec<_>>().join(",")
                ),
            });
        }
        Ok(Self { spec, prepared: None })
    }

    /// The session's spec.
    pub fn spec(&self) -> &ExperimentSpec {
        &self.spec
    }

    /// Materialize and validate everything the run needs: the concrete job
    /// list or churn scenario, the simulation config, the Q-table snapshot
    /// fingerprint (a stale snapshot fails *here*, not mid-construction)
    /// and the snapshot save path's writability (a post-run write error
    /// would discard the whole run). Idempotent; [`Self::run`] calls it
    /// implicitly.
    pub fn prepare(&mut self) -> Result<(), SpecError> {
        if self.prepared.is_some() {
            return Ok(());
        }
        let invalid = |msg: String| SpecError::Invalid { msg };
        let spec = &self.spec;
        let cfg = spec.sim();
        cfg.validate().map_err(invalid)?;
        let num_nodes = spec.params.num_nodes();
        let work = match &spec.workload {
            Workload::Standalone(app) => PreparedWork::Static(pairwise_jobs(spec, *app, None)),
            Workload::Pairwise { target, background } => {
                PreparedWork::Static(pairwise_jobs(spec, *target, *background))
            }
            Workload::Mixed => {
                // Table II fills exactly the paper's 1,056 nodes; on any
                // other machine (tiny test systems, --smoke) each job is
                // scaled proportionally — the same semantics as the
                // `mixed_scaled_sizes` preset. On the paper system the
                // factor is 1 and the sizes are bit-exact.
                let total: u32 = MIXED_JOBS.iter().map(|&(_, s)| s).sum();
                let factor = num_nodes as f64 / total as f64;
                PreparedWork::Static(
                    MIXED_JOBS
                        .iter()
                        .map(|&(kind, size)| {
                            let s = ((size as f64 * factor).round() as u32).max(2);
                            JobSpec::sized(kind, s)
                        })
                        .collect(),
                )
            }
            Workload::Jobs(jobs) => PreparedWork::Static(jobs.clone()),
            Workload::Scenario(arrivals) => PreparedWork::Churn(Scenario::from_specs(arrivals)),
            Workload::Poisson => {
                let sizes = if spec.sizes.is_empty() {
                    // Derived default: quarter-machine jobs, so a few
                    // co-residents fill the system and admission queues.
                    vec![(num_nodes / 4).max(2)]
                } else {
                    spec.sizes.clone()
                };
                PreparedWork::Churn(Scenario::poisson(
                    spec.seed,
                    spec.rates[0],
                    spec.jobs,
                    &spec.apps,
                    &sizes,
                ))
            }
        };
        match &work {
            PreparedWork::Static(jobs) => {
                let total: u64 = jobs.iter().map(|j| j.size as u64).sum();
                if total > num_nodes as u64 {
                    return Err(invalid(format!(
                        "the workload needs {total} nodes, the system has {num_nodes}"
                    )));
                }
            }
            PreparedWork::Churn(scenario) => {
                scenario.validate(num_nodes).map_err(invalid)?;
            }
        }
        if let Some(path) = &spec.qtable_load {
            // Pre-validate the snapshot so a stale file fails with the
            // named fingerprint error instead of panicking mid-build.
            let snap = QTableSnapshot::load(path).map_err(|e| invalid(e.to_string()))?;
            snap.verify(&spec.params, &spec.timing, spec.qa_alpha)
                .map_err(|e| invalid(e.to_string()))?;
        }
        if let Some(path) = &spec.qtable_save {
            if let Err(e) = std::fs::OpenOptions::new().append(true).create(true).open(path) {
                return Err(invalid(format!("cannot write qtable_save {}: {e}", path.display())));
            }
        }
        if let Some(path) = &spec.trace {
            // Same contract as qtable_save: an unwritable trace path fails
            // here, before any simulation time is spent.
            if let Err(e) = std::fs::OpenOptions::new().append(true).create(true).open(path) {
                return Err(invalid(format!("cannot write trace {}: {e}", path.display())));
            }
        }
        self.prepared = Some(Prepared { cfg, work });
        Ok(())
    }

    /// Execute the session and return the [`RunHandle`]. Deterministic:
    /// running the same session (or a clone) again reproduces the report
    /// bit for bit — which is exactly what lets the result cache serve a
    /// prior run's report when the spec's `cache` knob is enabled. Cache
    /// failures of any kind degrade to a live run; a run that would write
    /// a trace file always runs live (the trace is an output a cached
    /// report cannot reproduce), though its result is still stored.
    pub fn run(&mut self) -> Result<RunHandle, SpecError> {
        self.prepare()?;
        let cache = match ResultCache::open(&self.spec.cache) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("warning: result cache unavailable ({e}); running uncached");
                None
            }
        };
        let key = cache.as_ref().and_then(|_| match cache_key(&self.spec) {
            Ok(k) => Some(k),
            Err(e) => {
                eprintln!("warning: result cache key failed ({e}); running uncached");
                None
            }
        });
        if self.spec.trace.is_none() {
            if let (Some(cache), Some(key)) = (&cache, &key) {
                if let Some(hit) = cache.lookup(key) {
                    // A hit must still honor `qtable_save` — from the
                    // embedded snapshot. An entry without one (from a run
                    // that predates the knob) falls through to a live run
                    // rather than skipping the requested output.
                    match (&self.spec.qtable_save, &hit.snapshot) {
                        (Some(path), Some(snap)) => {
                            snap.save(path).map_err(|e| SpecError::Invalid {
                                msg: format!("cannot write qtable_save on cache hit: {e}"),
                            })?;
                        }
                        (Some(_), None) => {
                            return self.run_live(&cache.clone(), &Some(*key));
                        }
                        (None, _) => {}
                    }
                    return Ok(RunHandle {
                        report: hit.report,
                        qtable_snapshot: hit.snapshot,
                        cached: true,
                    });
                }
            }
        }
        match (cache, key) {
            (Some(cache), key @ Some(_)) => self.run_live(&cache, &key),
            _ => self.run_live_uncached(),
        }
    }

    /// Live execution plus a cache store.
    fn run_live(
        &mut self,
        cache: &ResultCache,
        key: &Option<crate::cache::CacheKey>,
    ) -> Result<RunHandle, SpecError> {
        let handle = self.run_live_uncached()?;
        if let Some(key) = key {
            cache.store_lenient(key, &handle.report, handle.qtable_snapshot.as_ref());
        }
        Ok(handle)
    }

    /// Live execution, no cache interaction.
    fn run_live_uncached(&mut self) -> Result<RunHandle, SpecError> {
        // lint: allow(no-panic-paths) — private method, only called by `run` after `prepare` populated `self.prepared`; the Option is Some by control flow
        let prepared = self.prepared.as_ref().expect("prepare already succeeded");
        let (report, qtable_snapshot) = match &prepared.work {
            PreparedWork::Static(jobs) => exec_placed(&prepared.cfg, jobs, self.spec.placement),
            PreparedWork::Churn(scenario) => {
                exec_scenario_policy(&prepared.cfg, scenario, self.spec.sched, self.spec.placement)
            }
        };
        Ok(RunHandle { report, qtable_snapshot, cached: false })
    }

    /// One-shot convenience: run `workload` under `spec` (the spec's own
    /// workload field is replaced). The sweep binaries' inner loop.
    pub fn run_one(spec: &ExperimentSpec, workload: Workload) -> Result<RunHandle, SpecError> {
        Simulation::from_spec(spec.clone().with_workload(workload))?.run()
    }
}

/// The pairwise job construction (paper §V): target on its half-system
/// partition, idle padding up to the half boundary so the background's
/// node slice is independent of the target's exact size, then the
/// background on the other half.
fn pairwise_jobs(
    spec: &ExperimentSpec,
    target: dfsim_apps::AppKind,
    background: Option<dfsim_apps::AppKind>,
) -> Vec<JobSpec> {
    let half = spec.params.num_nodes() / 2;
    let tsize = target.preferred_size(half);
    let mut jobs = vec![JobSpec::sized(target, tsize)];
    if tsize < half {
        jobs.push(JobSpec::idle(half - tsize));
    }
    if let Some(bg) = background {
        jobs.push(JobSpec::sized(bg, bg.preferred_size(half)));
    }
    jobs
}

#[cfg(test)]
mod tests {
    use dfsim_apps::AppKind;
    use dfsim_network::RoutingAlgo;
    use dfsim_topology::DragonflyParams;

    use super::*;
    use crate::placement::Placement;

    fn tiny_spec(routing: RoutingAlgo) -> ExperimentSpec {
        ExperimentSpec {
            params: DragonflyParams::tiny_72(),
            routings: vec![routing],
            scale: 2_048.0,
            seed: 7,
            ..Default::default()
        }
    }

    #[test]
    fn session_runs_a_static_workload() {
        let spec = tiny_spec(RoutingAlgo::UgalG)
            .with_workload(Workload::jobs(vec![JobSpec::sized(AppKind::UR, 36)]));
        let mut sim = Simulation::from_spec(spec).unwrap();
        sim.prepare().unwrap();
        let handle = sim.run().unwrap();
        assert!(handle.report.completed, "{}", handle.report.stop_reason);
        assert_eq!(handle.report.apps.len(), 1);
        assert!(handle.qtable_snapshot.is_none(), "UGALg runs carry no Q-tables");
        assert!(handle.learning().is_none());
        assert_eq!(handle.engine_stats().backend, "heap");
    }

    #[test]
    fn session_report_is_bit_identical_to_the_deprecated_wrapper() {
        let spec = tiny_spec(RoutingAlgo::Par)
            .with_workload(Workload::pairwise(AppKind::CosmoFlow, Some(AppKind::UR)));
        let new = Simulation::from_spec(spec.clone()).unwrap().run().unwrap().report;
        #[allow(deprecated)]
        let old = crate::runner::run_placed(
            &spec.sim(),
            &[JobSpec::sized(AppKind::CosmoFlow, 36), JobSpec::sized(AppKind::UR, 36)],
            Placement::Random,
        );
        assert_eq!(new.events, old.events);
        assert_eq!(new.sim_ms, old.sim_ms);
        for (n, o) in new.apps.iter().zip(&old.apps) {
            assert_eq!(n.comm_ms.mean, o.comm_ms.mean, "{}", n.name);
            assert_eq!(n.exec_ms, o.exec_ms, "{}", n.name);
            assert_eq!(n.peak_ingress_bytes, o.peak_ingress_bytes, "{}", n.name);
        }
    }

    #[test]
    fn session_runs_a_churn_workload_and_qadp_yields_a_snapshot() {
        let mut spec = tiny_spec(RoutingAlgo::QAdaptive);
        spec.workload = Workload::Poisson;
        spec.rates = vec![500.0];
        spec.jobs = 4;
        spec.apps = vec![AppKind::UR, AppKind::CosmoFlow];
        spec.sizes = vec![18, 36];
        let handle = Simulation::from_spec(spec).unwrap().run().unwrap();
        assert!(handle.report.completed, "{}", handle.report.stop_reason);
        assert_eq!(handle.report.jobs.len(), 4);
        assert!(handle.qtable_snapshot.is_some(), "Q-adaptive runs capture their tables");
        assert!(handle.learning().is_some());
    }

    #[test]
    fn mixed_workload_scales_to_the_machine() {
        // Table II names 1,056 nodes; on the 72-node test system (or under
        // --smoke) the jobs scale proportionally instead of failing.
        let spec = tiny_spec(RoutingAlgo::UgalG).with_workload(Workload::Mixed);
        let handle = Simulation::from_spec(spec).unwrap().run().unwrap();
        assert!(handle.report.completed, "{}", handle.report.stop_reason);
        assert_eq!(handle.report.apps.len(), 6);
        let total: u32 = handle.report.apps.iter().map(|a| a.size).sum();
        assert_eq!(total, 72, "scaled mix must fill the machine exactly");
    }

    #[test]
    fn multi_routing_specs_are_rejected_with_a_named_error() {
        let mut spec = tiny_spec(RoutingAlgo::UgalG);
        spec.routings = vec![RoutingAlgo::UgalG, RoutingAlgo::Par];
        let err = Simulation::from_spec(spec).unwrap_err().to_string();
        assert!(err.contains("exactly one routing"), "{err}");
    }

    #[test]
    fn oversized_static_workloads_fail_in_prepare() {
        let spec = tiny_spec(RoutingAlgo::UgalG)
            .with_workload(Workload::jobs(vec![JobSpec::sized(AppKind::UR, 100)]));
        let mut sim = Simulation::from_spec(spec).unwrap();
        let err = sim.prepare().unwrap_err().to_string();
        assert!(err.contains("100 nodes"), "{err}");
        assert!(err.contains("72"), "{err}");
    }

    #[test]
    fn missing_qtable_snapshots_fail_in_prepare() {
        let mut spec = tiny_spec(RoutingAlgo::QAdaptive);
        spec.qtable_load = Some("/nonexistent/q.snap".into());
        let mut sim = Simulation::from_spec(spec).unwrap();
        assert!(sim.prepare().is_err());
    }
}
