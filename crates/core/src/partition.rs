//! The partitioned parallel simulation core: group-sharded dragonfly with
//! conservative lookahead windows.
//!
//! The dragonfly is sharded **by group** across worker threads
//! ([`dfsim_network::PartitionMap`]). Each shard owns the routers, NICs and
//! application ranks of its groups and drives its own pending-event set
//! (any [`SimQueue`] backend); the only traffic between shards is boundary
//! events crossing a **global** link, which carry at least
//! `LinkTiming::global_latency_ps` of delay. That minimum is the
//! conservative lookahead `L`: in lockstep windows `[S, S+L)` every shard
//! can safely process all of its local events, because anything a peer
//! schedules into its territory during the window lands at or beyond the
//! window end. Boundary events, MPI message metadata and completion notices
//! are exchanged through a [`SimCommunicator`] at every window barrier.
//!
//! # Determinism
//!
//! Reports must be **bit-identical** to the single-threaded engine at any
//! partition count (the `partition_equivalence` suite pins this). Three
//! mechanisms make that hold:
//!
//! * **Canonical sequence keys.** Every event gets a `(time, seq)` key with
//!   `seq = segment << 40 | value`; segments alternate window/cut phases
//!   globally, so keys are totally ordered across phases. Window pushes get
//!   a provisional per-shard key and are renumbered at the barrier by a
//!   P-way merge of the per-shard push logs into the *global push order*
//!   ([`merge_ranks`]); cut pushes (job admissions at barriers) are keyed
//!   by their deterministic admission slot directly. The resulting key
//!   order is isomorphic to the single-threaded engine's push order, and
//!   since no report field contains a raw key, order-isomorphism is enough
//!   for bit-identical output.
//! * **Keyed metric journal.** The only order-sensitive metrics (the
//!   Q-learning trace's float accumulation and `rank_comm` push order) are
//!   journaled with the key of the producing event and replayed in global
//!   key order after the run ([`Recorder::drain_keyed`]); everything else
//!   merges commutatively.
//! * **Canonical stop keys.** "All ranks finished" is detected at barriers
//!   from exchanged completion notices; the stop time is the **maximum
//!   finish key** `K`, pops after `K` in the final window are subtracted
//!   from the event count, their journal entries are dropped, and their
//!   Q-table updates are rolled back ([`NetworkSim::q_undo_revert_after`]),
//!   so the final state equals the single-threaded engine's, which stops
//!   *at* `K`.
//!
//! Two stop conditions are intentionally **barrier-granular** at every
//! partition count including 1 (documented divergence from the pre-existing
//! engines, required for cross-count bit-identity): the event cap is
//! checked at barriers, and churn node reclaim/admission after a job
//! completion happens at the next barrier (arrival-driven admissions stay
//! time-exact because windows are cut at arrival times).
//!
//! Churn runs (`Scenario`) always use this driver, at
//! `max(threads, 1)` partitions; static runs use it for `threads >= 2` and
//! keep the untouched [`crate::world::World::run`] path otherwise.

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

use dfsim_des::queue::{PendingEvents, SimQueue};
use dfsim_des::{
    local_mesh, CalendarQueue, EventQueue, JobId, LocalThreadCommunicator, QueueKind,
    Scheduler as EventScheduler, SimCommunicator, SimRng, Time, WireReader, WireWriter,
};
use dfsim_metrics::{read_trace, AppId, KeyedEntry, KeyedKind, Recorder, TraceEvent, TraceWriter};
use dfsim_mpi::sim::MpiConfig;
use dfsim_mpi::{MpiEvent, MpiSim};
use dfsim_network::partition::{decode_event, encode_event, origin_of, IDX_MASK};
use dfsim_network::{
    MessageId, MsgExport, NetEffect, NetEvent, NetworkSim, PartitionMap, RoutingAlgo,
};
use dfsim_topology::{NodeId, Topology};

use crate::config::SimConfig;
use crate::placement::{place, Placement};
use crate::report::{JobReport, RunReport};
use crate::runner::{build_report, capture_qtables, JobSpec};
use crate::scenario::{JobTable, Scenario, Scheduler as JobScheduler};
use crate::world::{dispatch_core, StopReason, WorldEvent};

/// Bits of a sequence key below the segment field.
pub(crate) const SEG_SHIFT: u32 = 40;
/// Mask of the per-segment value field.
pub(crate) const VAL_MASK: u64 = (1 << SEG_SHIFT) - 1;
/// Cut keys subdivide the value field into admission slot and push index.
pub(crate) const SLOT_SHIFT: u32 = 20;

/// Per-shard temporary trace path of a multi-partition run: the final path
/// plus a `.part<p>` suffix. The temporaries are spliced into the final
/// file (and deleted) at assembly.
fn shard_trace_path(path: &Path, p: usize) -> PathBuf {
    let mut os = path.as_os_str().to_os_string();
    os.push(format!(".part{p}"));
    PathBuf::from(os)
}

/// How a just-popped event is identified when its pushes are logged: by its
/// final key (pushed in an earlier segment) or by its own position in the
/// current window's push log (provisional key, not yet ranked).
#[derive(Debug, Clone, Copy)]
pub(crate) enum Dispatch {
    /// Final `(time, seq)` key.
    True {
        /// Event time.
        t: Time,
        /// Final sequence key.
        seq: u64,
    },
    /// Index into the current window's push log of this shard.
    Local {
        /// Push-log index of the event's own push.
        j: u32,
    },
}

/// One entry of a window push log: the scheduled time of the pushed event
/// and the identity of the event whose dispatch pushed it.
#[derive(Debug, Clone, Copy)]
pub(crate) struct LogEntry {
    /// Scheduled time of the pushed event.
    pub(crate) time: Time,
    /// The dispatching event.
    pub(crate) dispatch: Dispatch,
}

/// A window push bound for another shard: held back until the barrier, then
/// shipped with its push-log index so the receiver can key it with the
/// merged rank.
#[derive(Debug)]
struct BoundaryPush {
    j: u32,
    time: Time,
    ev: NetEvent,
}

/// The per-shard event queue: a [`SimQueue`] plus the canonical-key
/// machinery. Implements the DES scheduler traits so the network and MPI
/// models push through it transparently; in window phase pushes are logged
/// (and boundary pushes diverted to per-peer buffers), in cut phase they
/// get final admission-slot keys immediately.
pub(crate) struct ShardQueue<Q> {
    pub(crate) q: Q,
    /// False on a single-partition run: plain auto-sequenced pushes, no
    /// logging (the fast path the `threads <= 1` churn driver uses).
    partitioned: bool,
    map: Arc<PartitionMap>,
    me: usize,
    lookahead: Time,
    cut: bool,
    pub(crate) seg: u64,
    slot: u64,
    slot_idx: u64,
    pub(crate) cur_dispatch: Dispatch,
    log: Vec<LogEntry>,
    boundary: Vec<Vec<BoundaryPush>>,
}

impl<Q: PendingEvents<WorldEvent>> ShardQueue<Q> {
    fn new(q: Q, partitioned: bool, map: Arc<PartitionMap>, me: usize, lookahead: Time) -> Self {
        let parts = map.parts();
        Self {
            q,
            partitioned,
            map,
            me,
            lookahead,
            cut: true, // runs start in the init cut (segment 0)
            seg: 0,
            slot: 0,
            slot_idx: 0,
            cur_dispatch: Dispatch::True { t: 0, seq: 0 },
            log: Vec::new(),
            boundary: (0..parts).map(|_| Vec::new()).collect(),
        }
    }

    /// Enter the next window segment.
    fn begin_window(&mut self) {
        if !self.partitioned {
            return;
        }
        self.seg += 1;
        debug_assert!(self.seg < 1 << (64 - SEG_SHIFT), "segment counter overflow");
        debug_assert!(self.log.is_empty(), "push log not drained at the barrier");
        self.cut = false;
    }

    /// Enter the next cut segment (barrier-time admissions).
    fn begin_cut(&mut self) {
        if !self.partitioned {
            return;
        }
        self.seg += 1;
        self.cut = true;
        self.slot = 0;
        self.slot_idx = 0;
    }

    /// Advance to the next admission slot — called once per *global* rank
    /// start in the canonical order, on every shard, so slot numbers agree
    /// across shards without communication.
    fn next_slot(&mut self) {
        if !self.partitioned {
            return;
        }
        debug_assert!(self.cut, "admission slots only exist in cut phase");
        self.slot += 1;
        self.slot_idx = 0;
    }

    /// The canonical key stamped on recorder entries produced by the
    /// current admission slot (a rank finishing synchronously at start).
    fn cut_key(&self) -> (Time, u64) {
        ((self.q.now()), (self.seg << SEG_SHIFT) | (self.slot << SLOT_SHIFT))
    }

    fn push_world(&mut self, time: Time, local_owner: Option<usize>, ev: WorldEvent) {
        if self.cut {
            debug_assert!(
                local_owner.is_none_or(|p| p == self.me),
                "cut-phase pushes must be shard-local"
            );
            debug_assert!(self.slot_idx < 1 << SLOT_SHIFT, "cut slot overflow");
            let seq = (self.seg << SEG_SHIFT) | (self.slot << SLOT_SHIFT) | self.slot_idx;
            self.slot_idx += 1;
            self.q.push_seq(time, seq, ev);
        } else {
            let j = self.log.len() as u32;
            self.log.push(LogEntry { time, dispatch: self.cur_dispatch });
            match local_owner {
                Some(p) if p != self.me => {
                    debug_assert!(
                        time >= self.q.now().saturating_add(self.lookahead),
                        "boundary event under the conservative lookahead"
                    );
                    let WorldEvent::Net(ev) = ev else {
                        // lint: allow(no-panic-paths) — owners are assigned per network shard, so a non-Net event with a foreign owner is a partitioning bug (pinned by the partition-equivalence suite)
                        unreachable!("only network events cross partitions")
                    };
                    self.boundary[p].push(BoundaryPush { j, time, ev });
                }
                _ => self.q.push_seq(time, (self.seg << SEG_SHIFT) | j as u64, ev),
            }
        }
    }
}

impl<Q: PendingEvents<WorldEvent>> EventScheduler<NetEvent> for ShardQueue<Q> {
    fn now(&self) -> Time {
        self.q.now()
    }

    fn at(&mut self, time: Time, event: NetEvent) {
        if !self.partitioned {
            self.q.push(time, WorldEvent::Net(event));
            return;
        }
        let owner = self.map.owner_of(&event);
        self.push_world(time, owner, WorldEvent::Net(event));
    }
}

impl<Q: PendingEvents<WorldEvent>> EventScheduler<MpiEvent> for ShardQueue<Q> {
    fn now(&self) -> Time {
        self.q.now()
    }

    fn at(&mut self, time: Time, event: MpiEvent) {
        if !self.partitioned {
            self.q.push(time, WorldEvent::Mpi(event));
            return;
        }
        // MPI events live on the rank's own node: always shard-local.
        self.push_world(time, None, WorldEvent::Mpi(event));
    }
}

/// Rank every shard's window push log in the global push order the
/// single-threaded engine would have realized: a P-way merge picking, at
/// each step, the unranked head whose *dispatching event* has the smallest
/// `(time, seq)` key.
///
/// Each per-shard log is sorted by dispatch key (events are popped in key
/// order; same-dispatch pushes are consecutive), and dispatch keys are
/// globally unique (each event is popped on exactly one shard), so strict
/// `<` selection is total. A [`Dispatch::Local`] head references an earlier
/// entry of the *same* log, which the merge has necessarily already ranked.
/// Returns `ranks[p][j]`, strictly increasing in `j` for each `p` — a
/// monotone renumbering of each shard's provisional keys.
pub(crate) fn merge_ranks(logs: &[Vec<LogEntry>], wseg: u64) -> Vec<Vec<u64>> {
    let mut ranks: Vec<Vec<u64>> = logs.iter().map(|l| vec![0u64; l.len()]).collect();
    let mut heads = vec![0usize; logs.len()];
    let total: usize = logs.iter().map(Vec::len).sum();
    for counter in 0..total as u64 {
        let mut best: Option<((Time, u64), usize)> = None;
        for (p, log) in logs.iter().enumerate() {
            let j = heads[p];
            if j >= log.len() {
                continue;
            }
            let key = match log[j].dispatch {
                Dispatch::True { t, seq } => (t, seq),
                Dispatch::Local { j: jj } => {
                    debug_assert!((jj as usize) < j, "local dispatch must be already ranked");
                    (logs[p][jj as usize].time, (wseg << SEG_SHIFT) | ranks[p][jj as usize])
                }
            };
            if best.is_none_or(|(b, _)| key < b) {
                best = Some((key, p));
            }
        }
        // lint: allow(no-panic-paths) — the outer loop runs exactly sum(lens) times, so at least one un-exhausted head remains on every iteration
        let p = best.expect("merge ran out of heads").1;
        ranks[p][heads[p]] = counter;
        heads[p] += 1;
    }
    ranks
}

/// Rewrite a provisional window key (`segment == wseg`) to its merged rank;
/// keys from other segments are already final.
#[inline]
fn xlate(key: u64, wseg: u64, ranks_p: &[u64]) -> u64 {
    if key >> SEG_SHIFT == wseg {
        (wseg << SEG_SHIFT) | ranks_p[(key & VAL_MASK) as usize]
    } else {
        key
    }
}

/// Per-shard work description.
enum ShardWork<'a> {
    /// Static run: every (non-idle) job starts at t = 0 on pre-placed
    /// nodes.
    Static { jobs: Vec<JobSpec>, nodes: Vec<Vec<NodeId>> },
    /// Churn run: timed arrivals admitted by a job scheduler whenever nodes
    /// free up. Every shard replays the identical admission decisions (the
    /// table and scheduler are deterministic in replicated inputs), so the
    /// job → node mapping needs no communication.
    Churn {
        table: JobTable,
        sched: SchedHolder<'a>,
        arrive: Vec<Time>,
        next_arrival: usize,
        to_reclaim: Vec<JobId>,
    },
}

/// How a churn shard holds its job scheduler: borrowed (single-partition
/// runs driven by a caller-owned `&mut dyn`) or owned (multi-partition runs
/// construct one instance per shard from a factory).
pub(crate) enum SchedHolder<'a> {
    /// Caller-owned scheduler (single partition only).
    Borrowed(&'a mut (dyn JobScheduler + Send)),
    /// Shard-owned instance from the policy factory.
    Owned(Box<dyn JobScheduler + Send>),
}

impl SchedHolder<'_> {
    fn get(&mut self) -> &mut (dyn JobScheduler + Send) {
        match self {
            SchedHolder::Borrowed(s) => *s,
            SchedHolder::Owned(b) => b.as_mut(),
        }
    }
}

/// Everything a finished shard hands back to the assembly step.
struct ShardOutcome {
    stop: StopReason,
    end: Time,
    k: (Time, u64),
    pops: u64,
    post_k: u64,
    stats: dfsim_des::EngineStats,
    net: NetworkSim,
    rec: Recorder,
    journal: Vec<KeyedEntry>,
    finished: Vec<Option<Time>>,
    starts: Vec<Time>,
    job_reports: Vec<JobReport>,
}

/// One partition worker: owns its groups' network state, its ranks' MPI
/// state, a recorder, and the shard queue; drives the lockstep window loop.
struct Shard<'a, Q> {
    cfg: &'a SimConfig,
    map: Arc<PartitionMap>,
    me: usize,
    parts: usize,
    comm: LocalThreadCommunicator,
    lookahead: Time,
    sq: ShardQueue<Q>,
    net: NetworkSim,
    mpi: MpiSim,
    rec: Recorder,
    effects: Vec<NetEffect>,
    work: ShardWork<'a>,
    /// Unfinished ranks per app (multi-partition: maintained from exchanged
    /// completion notices).
    remaining: Vec<u32>,
    total_remaining: u64,
    app_finish: Vec<Option<Time>>,
    /// Maximum finish key seen (the canonical stop key `K`).
    k: (Time, u64),
    /// Merged keyed-metric journal (multi-partition only).
    journal: Vec<KeyedEntry>,
    /// Keys popped in the current window (translated at its barrier).
    wpop_keys: Vec<(Time, u64)>,
    win_pops: u64,
    win_last_pop: Time,
    total_pops: u64,
    global_last_pop: Time,
    fin_scratch: Vec<AppId>,
}

impl<'a, Q: SimQueue<WorldEvent>> Shard<'a, Q> {
    fn new(
        cfg: &'a SimConfig,
        topo: &Arc<Topology>,
        map: Arc<PartitionMap>,
        me: usize,
        comm: LocalThreadCommunicator,
        work: ShardWork<'a>,
    ) -> Self {
        let parts = map.parts();
        let rng = SimRng::new(cfg.seed);
        let mut rec = Recorder::new(topo, cfg.recorder);
        let mut net = NetworkSim::new(Arc::clone(topo), cfg.timing, cfg.routing.clone(), &rng);
        if parts > 1 {
            net.set_partition(Arc::clone(&map), me);
            rec.enable_keyed_capture();
            if cfg.routing.algo == RoutingAlgo::QAdaptive {
                net.enable_q_undo();
            }
        }
        if let Some(path) = &cfg.trace {
            // A lone shard streams straight into the final file; with peers
            // each shard writes a temporary spliced together at assembly.
            // Keyed capture keeps the order-sensitive events (Q1 trace,
            // rank completions) out of the per-shard streams — they enter
            // the final file from the merged journal, in canonical order.
            let p = if parts > 1 { shard_trace_path(path, me) } else { path.clone() };
            // lint: allow(no-panic-paths) — shard workers have no error channel back to the driver; failing to open the trace file must abort the run loudly rather than silently drop the trace
            let w = TraceWriter::create(&p).unwrap_or_else(|e| panic!("{e}"));
            rec.set_sink(Box::new(w));
        }
        let napps = match &work {
            ShardWork::Static { jobs, .. } => jobs.len(),
            ShardWork::Churn { arrive, .. } => arrive.len(),
        };
        let q = Q::for_backend(cfg.queue);
        let sq = ShardQueue::new(q, parts > 1, Arc::clone(&map), me, cfg.timing.global_latency_ps);
        Self {
            cfg,
            map,
            me,
            parts,
            comm,
            lookahead: cfg.timing.global_latency_ps,
            sq,
            net,
            mpi: MpiSim::new(MpiConfig { eager_threshold: cfg.eager_threshold }),
            rec,
            effects: Vec::new(),
            work,
            remaining: vec![0; napps],
            total_remaining: 0,
            app_finish: vec![None; napps],
            k: (0, 0),
            journal: Vec::new(),
            wpop_keys: Vec::new(),
            win_pops: 0,
            win_last_pop: 0,
            total_pops: 0,
            global_last_pop: 0,
            fin_scratch: Vec::new(),
        }
    }

    fn napps(&self) -> usize {
        self.remaining.len()
    }

    fn next_arrival_time(&self) -> Time {
        match &self.work {
            ShardWork::Static { .. } => Time::MAX,
            ShardWork::Churn { arrive, next_arrival, .. } => {
                arrive.get(*next_arrival).copied().unwrap_or(Time::MAX)
            }
        }
    }

    fn total_done(&self) -> bool {
        match &self.work {
            ShardWork::Static { .. } => self.total_remaining == 0,
            ShardWork::Churn { table, .. } => table.all_done(),
        }
    }

    /// Enqueue every arrival at or before `t`. Returns whether any arrived.
    fn take_arrivals(&mut self, t: Time) -> bool {
        let ShardWork::Churn { table, arrive, next_arrival, .. } = &mut self.work else {
            return false;
        };
        let mut any = false;
        while *next_arrival < arrive.len() && arrive[*next_arrival] <= t {
            table.enqueue(JobId(*next_arrival as u32));
            *next_arrival += 1;
            any = true;
        }
        any
    }

    /// One admission pass at time `now` (every shard runs the identical
    /// pass; each starts only the ranks whose node it owns, but advances
    /// the admission-slot counter for all of them so cut keys agree).
    /// Returns whether anything was admitted.
    fn admit(&mut self, now: Time) -> bool {
        let picked: Vec<(JobId, Vec<NodeId>, JobSpec)> = {
            let ShardWork::Churn { table, sched, .. } = &mut self.work else {
                return false;
            };
            if table.waiting_is_empty() {
                return false;
            }
            let waiting = table.waiting_view();
            let picks = sched.get().select(&waiting, table.free_count());
            if picks.is_empty() {
                return false;
            }
            debug_assert!(
                picks.windows(2).all(|w| w[0] < w[1]),
                "picks must be strictly increasing"
            );
            debug_assert!(
                picks.iter().map(|&i| waiting[i].size).sum::<u32>() <= table.free_count(),
                "scheduler over-admitted"
            );
            picks
                .iter()
                .map(|&i| {
                    let job = waiting[i].job;
                    let nodes = table.admit(job, now);
                    (job, nodes, table.spec(job).clone())
                })
                .collect()
        };
        for (job, nodes, spec) in picked {
            let app = AppId(job.0 as u16);
            let inst =
                spec.kind.build(spec.size, self.cfg.scale, self.cfg.seed ^ ((job.0 as u64) << 32));
            if self.parts > 1 {
                self.remaining[job.idx()] = nodes.len() as u32;
                self.total_remaining += nodes.len() as u64;
            }
            self.mpi.add_app(app, nodes.clone(), inst.programs, inst.comms);
            for (r, node) in nodes.iter().enumerate() {
                self.sq.next_slot();
                if self.parts == 1 || self.map.part_of_node(*node) == self.me {
                    let (kt, ks) = self.sq.cut_key();
                    self.rec.set_key(kt, ks);
                    self.mpi.start_rank(app, r as u32, &mut self.sq, &mut self.net, &mut self.rec);
                }
            }
        }
        true
    }

    /// The initial cut at t = 0 (segment 0). Returns whether any rank
    /// started.
    fn init_cut(&mut self) -> bool {
        match &self.work {
            ShardWork::Static { jobs, nodes } => {
                // Register all apps, then start all ranks — the same order
                // as the sequential runner (`add_app` loop, then
                // `MpiSim::start`).
                let jobs = jobs.clone();
                let nodes = nodes.clone();
                for (i, (job, nd)) in jobs.iter().zip(&nodes).enumerate() {
                    let inst = job.kind.build(
                        job.size,
                        self.cfg.scale,
                        self.cfg.seed ^ ((i as u64) << 32),
                    );
                    self.mpi.add_app(AppId(i as u16), nd.clone(), inst.programs, inst.comms);
                    self.remaining[i] = nd.len() as u32;
                    self.total_remaining += nd.len() as u64;
                }
                for (i, nd) in nodes.iter().enumerate() {
                    for (r, node) in nd.iter().enumerate() {
                        self.sq.next_slot();
                        if self.map.part_of_node(*node) == self.me {
                            let (kt, ks) = self.sq.cut_key();
                            self.rec.set_key(kt, ks);
                            self.mpi.start_rank(
                                AppId(i as u16),
                                r as u32,
                                &mut self.sq,
                                &mut self.net,
                                &mut self.rec,
                            );
                        }
                    }
                }
                !jobs.is_empty()
            }
            ShardWork::Churn { .. } => {
                if self.take_arrivals(0) {
                    self.admit(0)
                } else {
                    false
                }
            }
        }
    }

    /// Barrier-time cut at `b`: reclaim nodes of jobs that completed, take
    /// arrivals at or before `b`, and run an admission pass if anything
    /// changed. Returns whether any rank started.
    fn cut(&mut self, b: Time) -> bool {
        let changed = {
            let ShardWork::Churn { table, to_reclaim, .. } = &mut self.work else {
                return false;
            };
            let mut changed = false;
            for job in std::mem::take(to_reclaim) {
                table.reclaim(job);
                changed = true;
            }
            changed
        };
        let arrived = self.take_arrivals(b);
        if changed || arrived {
            self.admit(b)
        } else {
            false
        }
    }

    /// Pop and dispatch every local event strictly before `e` (and within
    /// the horizon). Returns an early stop (single-partition churn only).
    fn run_window(&mut self, e: Time) -> Option<(StopReason, Time)> {
        let h = self.cfg.horizon.unwrap_or(Time::MAX);
        self.win_pops = 0;
        self.wpop_keys.clear();
        while let Some(pt) = self.sq.q.peek_time() {
            if pt >= e || pt > h {
                break;
            }
            // lint: allow(no-panic-paths) — `peek_time` just returned `Some` and this thread is the queue's only mutator, so the head cannot disappear between peek and pop
            let (t, key, ev) = self.sq.q.pop_keyed().expect("peeked event vanished");
            self.win_pops += 1;
            self.win_last_pop = t;
            if self.parts > 1 {
                self.wpop_keys.push((t, key));
                self.sq.cur_dispatch = if key >> SEG_SHIFT == self.sq.seg {
                    Dispatch::Local { j: (key & VAL_MASK) as u32 }
                } else {
                    Dispatch::True { t, seq: key }
                };
                self.net.set_event_key(t, key);
                self.rec.set_key(t, key);
            } else {
                self.global_last_pop = t;
            }
            let job_ev = dispatch_core(
                &mut self.net,
                &mut self.mpi,
                &mut self.rec,
                &mut self.sq,
                &mut self.effects,
                ev,
            );
            debug_assert!(job_ev.is_none(), "job events never enter the partitioned loop");
            if self.parts == 1 {
                // Single partition: completion is visible immediately (the
                // shard runs every rank), giving the canonical stop the
                // exact event-granular time without waiting for a barrier.
                self.mpi.drain_finished(&mut self.fin_scratch);
                if !self.fin_scratch.is_empty() {
                    let now = self.sq.q.now();
                    let ShardWork::Churn { table, to_reclaim, .. } = &mut self.work else {
                        // lint: allow(no-panic-paths) — `drain_finished` only yields apps under churn work: static shards register their jobs through a path that never reaches this branch
                        unreachable!("single-partition static runs use World::run")
                    };
                    for app in self.fin_scratch.drain(..) {
                        let job = JobId(app.0 as u32);
                        table.mark_finished(job, now);
                        to_reclaim.push(job);
                    }
                    if table.all_done() {
                        return Some((StopReason::AllFinished, now));
                    }
                }
            }
        }
        None
    }

    /// The window barrier at time `b`: exchange push logs, boundary events,
    /// message metadata and completion notices; merge the logs into global
    /// ranks; renumber everything provisional; import peer traffic; process
    /// completions; and decide whether (and why) to stop. `Ok` carries the
    /// global next-event time.
    fn barrier(&mut self, b: Time) -> Result<Time, (StopReason, Time)> {
        let h = self.cfg.horizon.unwrap_or(Time::MAX);
        if self.parts == 1 {
            let gn = self.sq.q.peek_time().unwrap_or(Time::MAX).min(self.next_arrival_time());
            if gn == Time::MAX {
                return Err((StopReason::Drained, self.global_last_pop));
            }
            if self.sq.q.events_processed() >= self.cfg.max_events {
                return Err((StopReason::EventCap, b));
            }
            if gn > h {
                return Err((StopReason::Horizon, gn));
            }
            return Ok(gn);
        }

        let wseg = self.sq.seg;
        // -- Local summaries (before anything is drained): the shard's next
        // event time must include boundary events not yet exported.
        let exports = self.net.take_msg_exports();
        let releases = self.net.take_msg_releases();
        let my_keyed = self.rec.drain_keyed();
        let mut peek = self.sq.q.peek_time().unwrap_or(Time::MAX);
        for buf in &self.sq.boundary {
            for e in buf {
                peek = peek.min(e.time);
            }
        }

        // -- Broadcast section, identical bytes to every peer.
        let log = std::mem::take(&mut self.sq.log);
        let mut bw = WireWriter::new();
        bw.u64(self.win_pops);
        bw.u64(self.win_last_pop);
        bw.u64(peek);
        bw.u32(log.len() as u32);
        for e in &log {
            bw.u64(e.time);
            match e.dispatch {
                Dispatch::True { t, seq } => {
                    bw.u8(0);
                    bw.u64(t);
                    bw.u64(seq);
                }
                Dispatch::Local { j } => {
                    bw.u8(1);
                    bw.u32(j);
                }
            }
        }
        let my_fins: Vec<(u16, Time, u64)> = my_keyed
            .iter()
            .filter_map(|e| match e.kind {
                KeyedKind::RankFinished { app, .. } => Some((app.0, e.time, e.seq)),
                _ => None,
            })
            .collect();
        bw.u32(my_fins.len() as u32);
        for &(app, t, s) in &my_fins {
            bw.u16(app);
            bw.u64(t);
            bw.u64(s);
        }
        let bcast = bw.into_frame();

        // -- Per-peer frames: broadcast section + boundary events + message
        // exports + release notices routed to their shards.
        let mut boundary = std::mem::take(&mut self.sq.boundary);
        let mut ex_by: Vec<Vec<&MsgExport>> = (0..self.parts).map(|_| Vec::new()).collect();
        for e in &exports {
            ex_by[self.map.part_of_node(e.dst)].push(e);
        }
        let mut rel_by: Vec<Vec<u64>> = (0..self.parts).map(|_| Vec::new()).collect();
        for &t in &releases {
            rel_by[origin_of(t)].push(t);
        }
        let mut frames: Vec<Vec<u8>> = Vec::with_capacity(self.parts);
        for p in 0..self.parts {
            let mut w = WireWriter::new();
            w.bytes(&bcast);
            w.u32(boundary[p].len() as u32);
            for bp in &mut boundary[p] {
                if let NetEvent::PacketArrive { packet, .. } = &mut bp.ev {
                    self.net.on_packet_exported(packet);
                }
                encode_event(&mut w, bp.time, bp.j as u64, &bp.ev);
            }
            w.u32(ex_by[p].len() as u32);
            for e in &ex_by[p] {
                w.u64(e.msg);
                w.u32(e.expected);
                let meta = self.mpi.export_meta(MessageId(e.msg & IDX_MASK));
                w.u32(meta.len() as u32);
                w.bytes(&meta);
            }
            w.u32(rel_by[p].len() as u32);
            for &r in &rel_by[p] {
                w.u64(r);
            }
            frames.push(w.into_frame());
        }
        // Hand the (drained) per-peer buffers back for the next window.
        for buf in &mut boundary {
            buf.clear();
        }
        self.sq.boundary = boundary;

        let got = self.comm.exchange(frames);

        // -- Decode: broadcast sections from everyone, directed payloads
        // from peers (applied after the merge resolves their keys).
        let mut logs: Vec<Vec<LogEntry>> = Vec::with_capacity(self.parts);
        let mut peer_pops = vec![0u64; self.parts];
        let mut peer_last = vec![0u64; self.parts];
        let mut peer_peek = vec![Time::MAX; self.parts];
        let mut peer_fins: Vec<Vec<(u16, Time, u64)>> = Vec::with_capacity(self.parts);
        let mut in_events: Vec<(usize, Time, u32, NetEvent)> = Vec::new();
        let mut in_msgs: Vec<(u64, u32, Vec<u8>)> = Vec::new();
        let mut in_rels: Vec<u64> = Vec::new();
        for (p, frame) in got.iter().enumerate() {
            let mut r = WireReader::new(frame);
            peer_pops[p] = r.u64();
            peer_last[p] = r.u64();
            peer_peek[p] = r.u64();
            let n = r.u32() as usize;
            let mut lg = Vec::with_capacity(n);
            for _ in 0..n {
                let time = r.u64();
                let dispatch = match r.u8() {
                    0 => Dispatch::True { t: r.u64(), seq: r.u64() },
                    _ => Dispatch::Local { j: r.u32() },
                };
                lg.push(LogEntry { time, dispatch });
            }
            logs.push(lg);
            let nf = r.u32() as usize;
            let mut fins = Vec::with_capacity(nf);
            for _ in 0..nf {
                fins.push((r.u16(), r.u64(), r.u64()));
            }
            peer_fins.push(fins);
            if p == self.me {
                continue; // own directed payload is empty by construction
            }
            let ne = r.u32() as usize;
            for _ in 0..ne {
                let (t, j, ev) = decode_event(&mut r);
                in_events.push((p, t, j as u32, ev));
            }
            let nm = r.u32() as usize;
            for _ in 0..nm {
                let msg = r.u64();
                let expected = r.u32();
                let len = r.u32() as usize;
                in_msgs.push((msg, expected, r.bytes(len).to_vec()));
            }
            let nr = r.u32() as usize;
            for _ in 0..nr {
                in_rels.push(r.u64());
            }
        }

        // -- Merge push logs into the global push order; renumber every
        // provisional key in this shard.
        let ranks = merge_ranks(&logs, wseg);
        let rme = &ranks[self.me];
        self.sq.q.for_each_pending_mut(&mut |_, seq| {
            if *seq >> SEG_SHIFT == wseg {
                *seq = (wseg << SEG_SHIFT) | rme[(*seq & VAL_MASK) as usize];
            }
        });
        for k in &mut self.wpop_keys {
            k.1 = xlate(k.1, wseg, rme);
        }
        if let Some(entries) = self.net.q_undo_entries_mut() {
            for e in entries.iter_mut() {
                e.seq = xlate(e.seq, wseg, rme);
            }
        }
        let mut my_keyed = my_keyed;
        for e in &mut my_keyed {
            e.seq = xlate(e.seq, wseg, rme);
        }
        self.journal.append(&mut my_keyed);

        // -- Import peer traffic. Message metadata first (deliveries later
        // in the run look it up), then events, then release notices.
        for (msg, expected, meta) in in_msgs {
            self.net.import_message(msg, expected);
            self.mpi.import_meta(msg, &meta);
        }
        for (p, t, j, mut ev) in in_events {
            debug_assert!(t >= b, "boundary event before the barrier");
            if let NetEvent::PacketArrive { packet, .. } = &mut ev {
                self.net.on_packet_imported(packet);
            }
            self.sq.q.push_seq(t, (wseg << SEG_SHIFT) | ranks[p][j as usize], WorldEvent::Net(ev));
        }
        for r in in_rels {
            self.mpi.release_exported(r, &mut self.net);
        }

        // -- Completions, in global key order (replicated on every shard).
        let mut fins: Vec<(Time, u64, u16)> = Vec::new();
        for (p, pf) in peer_fins.iter().enumerate() {
            for &(app, t, s) in pf {
                fins.push((t, xlate(s, wseg, &ranks[p]), app));
            }
        }
        fins.sort_unstable();
        for &(t, s, app) in &fins {
            let i = app as usize;
            debug_assert!(self.remaining[i] > 0, "finish notice for a finished app");
            self.remaining[i] -= 1;
            self.total_remaining -= 1;
            self.k = self.k.max((t, s));
            if self.remaining[i] == 0 {
                self.app_finish[i] = Some(t);
                if let ShardWork::Churn { table, to_reclaim, .. } = &mut self.work {
                    let job = JobId(app as u32);
                    table.mark_finished(job, t);
                    to_reclaim.push(job);
                }
            }
        }

        // -- Global counters and the stop decision (identical on every
        // shard: all inputs are replicated).
        let mut gn = self.next_arrival_time();
        let mut wpops = 0u64;
        for p in 0..self.parts {
            gn = gn.min(peer_peek[p]);
            wpops += peer_pops[p];
            if peer_pops[p] > 0 {
                self.global_last_pop = self.global_last_pop.max(peer_last[p]);
            }
        }
        self.total_pops += wpops;
        if self.total_done() {
            return Err((StopReason::AllFinished, self.k.0));
        }
        if gn == Time::MAX {
            return Err((StopReason::Drained, self.global_last_pop));
        }
        if self.total_pops >= self.cfg.max_events {
            return Err((StopReason::EventCap, b));
        }
        if gn > h {
            return Err((StopReason::Horizon, gn));
        }
        Ok(gn)
    }

    /// The lockstep window loop.
    fn run(mut self) -> ShardOutcome {
        assert!(
            self.lookahead > 0,
            "partitioned execution needs a positive inter-group link latency for lookahead"
        );
        let mut started = self.init_cut();
        if self.total_done() {
            return self.finish(StopReason::AllFinished, 0);
        }
        let mut b: Time = 0;
        // Before anything starts, the only future activity is the first
        // arrival — replicated knowledge, no exchange needed.
        let mut gn: Time = self.sq.q.peek_time().unwrap_or(Time::MAX).min(self.next_arrival_time());
        loop {
            // Window start: if the last cut started ranks, their events can
            // land anywhere at or after the cut time, so the window must
            // open at the cut; otherwise jump to the global next event.
            let s = if started { b } else { gn };
            debug_assert!(s >= b && s != Time::MAX, "stop conditions handle these");
            if s > b {
                self.sq.q.advance_clock(s);
                // An arrival exactly at the jump target is processed here,
                // at its exact time (still in the previous cut segment; the
                // window about to open covers whatever it admits).
                if self.take_arrivals(s) {
                    self.admit(s);
                }
            }
            let e = s.saturating_add(self.lookahead).min(self.next_arrival_time());
            self.sq.begin_window();
            if let Some((stop, t)) = self.run_window(e) {
                return self.finish(stop, t);
            }
            b = e;
            gn = match self.barrier(b) {
                Ok(g) => g,
                Err((stop, t)) => return self.finish(stop, t),
            };
            self.sq.q.advance_clock(b);
            self.sq.begin_cut();
            started = self.cut(b);
        }
    }

    fn finish(mut self, stop: StopReason, end: Time) -> ShardOutcome {
        let mut post_k = 0u64;
        if self.parts > 1 && stop == StopReason::AllFinished {
            // The final window may overrun the stop key: subtract those
            // pops from the event count and roll their Q-updates back, so
            // the result matches an engine that stopped exactly at K.
            post_k = self.wpop_keys.iter().filter(|&&key| key > self.k).count() as u64;
            self.net.q_undo_revert_after(self.k.0, self.k.1);
        }
        let napps = self.napps();
        let finished: Vec<Option<Time>> = if self.parts > 1 {
            std::mem::take(&mut self.app_finish)
        } else {
            (0..napps).map(|i| self.mpi.app_finished_at(AppId(i as u16))).collect()
        };
        let (starts, job_reports) = match &self.work {
            ShardWork::Static { .. } => (vec![0; napps], Vec::new()),
            ShardWork::Churn { table, .. } => (table.start_times(end), table.job_reports(end)),
        };
        ShardOutcome {
            stop,
            end,
            k: self.k,
            pops: self.sq.q.events_processed(),
            post_k,
            stats: self.sq.q.stats(),
            net: self.net,
            rec: self.rec,
            journal: self.journal,
            finished,
            starts,
            job_reports,
        }
    }
}

/// Combine shard outcomes into the final report: absorb recorders, replay
/// the merged keyed journal in global key order, adopt each shard's learned
/// Q-tables, sum engine counters, and derive the canonical event count.
fn assemble(
    cfg: &SimConfig,
    specs: &[&JobSpec],
    topo: &Topology,
    map: &PartitionMap,
    mut outcomes: Vec<ShardOutcome>,
    wall_s: f64,
) -> (RunReport, Option<dfsim_network::QTableSnapshot>) {
    let parts = outcomes.len();
    let mut base = outcomes.remove(0);
    let (stop, end) = (base.stop, base.end);
    let mut pops = base.pops;
    let mut post_k = base.post_k;
    let mut stats = base.stats;
    let mut trace_keyed: Vec<TraceEvent> = Vec::new();
    if parts > 1 {
        let mut journal = std::mem::take(&mut base.journal);
        for (i, mut o) in outcomes.into_iter().enumerate() {
            let p = i + 1;
            debug_assert!(o.stop == stop && o.end == end, "shards disagree on the stop");
            pops += o.pops;
            post_k += o.post_k;
            stats.events_scheduled += o.stats.events_scheduled;
            stats.pending += o.stats.pending;
            stats.peak_pending += o.stats.peak_pending;
            stats.resizes += o.stats.resizes;
            stats.bucket_scans += o.stats.bucket_scans;
            stats.sparse_jumps += o.stats.sparse_jumps;
            base.net.adopt_qtables_from(&o.net, map.routers_of(p));
            journal.extend(std::mem::take(&mut o.journal));
            if let Some(sink) = o.rec.take_sink() {
                sink.finish(None)
                    // lint: allow(no-panic-paths) — end-of-run trace I/O has no Result plumbing through the parallel driver; a failed write must stop the run rather than report success with a corrupt trace
                    .unwrap_or_else(|e| panic!("shard trace finalization failed: {e}"));
            }
            base.rec.absorb(o.rec);
        }
        journal.sort_by_key(|e| (e.time, e.seq));
        base.rec.disable_keyed_capture();
        if stop == StopReason::AllFinished {
            // Drop entries past the canonical stop key K, matching an
            // engine that stopped exactly at K.
            let k = base.k;
            journal.retain(|e| (e.time, e.seq) <= k);
        }
        if cfg.trace.is_some() {
            trace_keyed = journal
                .iter()
                .map(|e| match e.kind {
                    KeyedKind::Q1Update { t, delta_ps } => TraceEvent::Q1Updated { t, delta_ps },
                    KeyedKind::RankFinished { app, rank, comm, exec } => {
                        TraceEvent::RankFinished { app, rank, comm, exec }
                    }
                })
                .collect();
        }
        base.rec.replay_keyed(journal);
    }
    let mut events = pops - post_k;
    if stop == StopReason::Horizon {
        // The sequential engines count the horizon-crossing pop before
        // stopping; windows never pop past the horizon, so synthesize it.
        events += 1;
    }
    stats.events_processed = events;
    if let Some(sink) = base.rec.take_sink() {
        // lint: allow(no-panic-paths) — the sink this branch just took was installed from `cfg.trace` at setup, so the path is necessarily present here
        let path = cfg.trace.as_ref().expect("a sink exists only when tracing is on");
        let meta = crate::trace::encode_meta(
            cfg,
            specs,
            &base.finished,
            stats,
            events,
            stop,
            end,
            wall_s,
            &base.starts,
            &base.job_reports,
        );
        if parts == 1 {
            // lint: allow(no-panic-paths) — end-of-run trace I/O: no Result path through the driver, and silently dropping the trace would misreport a successful run
            sink.finish(Some(&meta)).unwrap_or_else(|e| panic!("trace finalization failed: {e}"));
        } else {
            // base's sink is shard 0's temporary. Finish it, then splice
            // every shard temporary (deterministic shard order) plus the
            // canonically-ordered keyed events into the final file. Only
            // the keyed events are order-sensitive on replay; everything
            // else aggregates commutatively, so shard concatenation is as
            // good as the live interleaving.
            // lint: allow(no-panic-paths) — end-of-run trace splicing: I/O failures here have no Result path through the driver and must stop the run loudly
            sink.finish(None).unwrap_or_else(|e| panic!("shard trace finalization failed: {e}"));
            // lint: allow(no-panic-paths) — same end-of-run splice: a final trace file that cannot be created must stop the run loudly
            let mut w = TraceWriter::create(path).unwrap_or_else(|e| panic!("{e}"));
            for p in 0..parts {
                let tmp = shard_trace_path(path, p);
                read_trace(&tmp, |ev| w.record(ev))
                    // lint: allow(no-panic-paths) — a shard temporary that fails to re-read means the final trace would be incomplete; stopping loudly beats shipping a silently truncated file
                    .unwrap_or_else(|e| panic!("splicing shard trace failed: {e}"));
                let _ = std::fs::remove_file(&tmp);
            }
            for ev in &trace_keyed {
                w.record(ev);
            }
            // lint: allow(no-panic-paths) — final trace flush: a failed write must stop the run rather than report success over a corrupt trace
            w.finish(Some(&meta)).unwrap_or_else(|e| panic!("trace finalization failed: {e}"));
        }
    }
    let snapshot = capture_qtables(cfg, &base.net);
    let report = build_report(
        cfg,
        specs,
        topo,
        &base.rec,
        &base.finished,
        stats,
        events,
        stop,
        end,
        wall_s,
        &base.starts,
        std::mem::take(&mut base.job_reports),
    );
    (report, snapshot)
}

fn partition_map(cfg: &SimConfig, parts: usize) -> Arc<PartitionMap> {
    Arc::new(PartitionMap::new(
        cfg.params.groups,
        cfg.params.routers_per_group,
        cfg.params.nodes_per_router,
        parts,
    ))
}

/// The static-run entry of the partitioned engine (`threads >= 2`).
pub(crate) fn exec_placed_parallel(
    cfg: &SimConfig,
    jobs: &[JobSpec],
    policy: Placement,
) -> (RunReport, Option<dfsim_network::QTableSnapshot>) {
    match cfg.queue.kind() {
        QueueKind::Heap => static_on::<EventQueue<WorldEvent>>(cfg, jobs, policy),
        QueueKind::Calendar => static_on::<CalendarQueue<WorldEvent>>(cfg, jobs, policy),
    }
}

fn static_on<Q: SimQueue<WorldEvent>>(
    cfg: &SimConfig,
    jobs: &[JobSpec],
    policy: Placement,
) -> (RunReport, Option<dfsim_network::QTableSnapshot>) {
    debug_assert_eq!(Q::KIND, cfg.queue.kind(), "backend dispatch out of sync with config");
    // lint: allow(no-panic-paths) — run entry point, before any simulation work: an invalid config is a caller programming error surfaced at the API boundary, matching the sequential engine
    cfg.validate().expect("invalid simulation config");
    let parts = cfg.threads;
    assert!(parts >= 2, "static runs below two threads use the sequential engine");
    // lint: allow(no-panic-paths) — `cfg.validate()` on the line above already vetted the dragonfly params, so topology construction cannot fail here
    let topo = Arc::new(Topology::new(cfg.params).expect("validated params"));
    let sizes: Vec<u32> = jobs.iter().map(|j| j.size).collect();
    let partitions = place(&topo, policy, &sizes, cfg.seed);
    let mut app_jobs: Vec<JobSpec> = Vec::new();
    let mut app_nodes: Vec<Vec<NodeId>> = Vec::new();
    for (job, nodes) in jobs.iter().zip(partitions) {
        if !job.idle {
            app_jobs.push(job.clone());
            app_nodes.push(nodes);
        }
    }
    let map = partition_map(cfg, parts);
    let wall = Instant::now();
    let comms = local_mesh(parts);
    let outcomes: Vec<ShardOutcome> = std::thread::scope(|sc| {
        let handles: Vec<_> = comms
            .into_iter()
            .enumerate()
            .map(|(p, comm)| {
                let (topo, map, app_jobs, app_nodes) =
                    (&topo, Arc::clone(&map), &app_jobs, &app_nodes);
                sc.spawn(move || {
                    let work =
                        ShardWork::Static { jobs: app_jobs.clone(), nodes: app_nodes.clone() };
                    Shard::<Q>::new(cfg, topo, map, p, comm, work).run()
                })
            })
            .collect();
        // lint: allow(no-panic-paths) — re-raising a worker panic on the driver thread is the only correct escalation; swallowing it would return a partial report as if the run succeeded
        handles.into_iter().map(|h| h.join().expect("partition worker panicked")).collect()
    });
    let wall_s = wall.elapsed().as_secs_f64();
    let specs: Vec<&JobSpec> = app_jobs.iter().collect();
    assemble(cfg, &specs, &topo, &map, outcomes, wall_s)
}

/// How the churn driver gets its job scheduler(s).
pub(crate) enum SchedBinding<'a> {
    /// A caller-owned scheduler instance; forces a single partition (one
    /// instance cannot be replicated across shards).
    Inline(&'a mut (dyn JobScheduler + Send)),
    /// A factory constructing one scheduler per shard; the partition count
    /// follows `SimConfig::threads`.
    Factory(&'a (dyn Fn() -> Box<dyn JobScheduler + Send> + Sync)),
}

/// The churn entry of the partitioned engine — the canonical scenario loop
/// at any partition count (including 1).
pub(crate) fn exec_scenario_driver(
    cfg: &SimConfig,
    scenario: &Scenario,
    placement: Placement,
    sched: SchedBinding<'_>,
) -> (RunReport, Option<dfsim_network::QTableSnapshot>) {
    match cfg.queue.kind() {
        QueueKind::Heap => scenario_on::<EventQueue<WorldEvent>>(cfg, scenario, placement, sched),
        QueueKind::Calendar => {
            scenario_on::<CalendarQueue<WorldEvent>>(cfg, scenario, placement, sched)
        }
    }
}

fn scenario_on<Q: SimQueue<WorldEvent>>(
    cfg: &SimConfig,
    scenario: &Scenario,
    placement: Placement,
    sched: SchedBinding<'_>,
) -> (RunReport, Option<dfsim_network::QTableSnapshot>) {
    debug_assert_eq!(Q::KIND, cfg.queue.kind(), "backend dispatch out of sync with config");
    // lint: allow(no-panic-paths) — run entry point, before any simulation work: an invalid config is a caller programming error surfaced at the API boundary, matching the sequential engine
    cfg.validate().expect("invalid simulation config");
    // lint: allow(no-panic-paths) — `cfg.validate()` on the line above already vetted the dragonfly params, so topology construction cannot fail here
    let topo = Arc::new(Topology::new(cfg.params).expect("validated params"));
    // lint: allow(no-panic-paths) — run entry point: an oversized or empty scenario is a caller programming error surfaced before any simulation work starts
    scenario.validate(topo.num_nodes()).expect("invalid scenario");
    let parts = match &sched {
        SchedBinding::Inline(_) => 1,
        SchedBinding::Factory(_) => cfg.threads.max(1),
    };
    let map = partition_map(cfg, parts);
    // A lifetime-generic constructor (a closure could not decouple the
    // holder's lifetime from its captures'): every shard replays the same
    // table from the same replicated inputs.
    fn churn_work<'h>(
        topo: &Topology,
        scenario: &Scenario,
        placement: Placement,
        seed: u64,
        holder: SchedHolder<'h>,
    ) -> ShardWork<'h> {
        ShardWork::Churn {
            table: JobTable::new(topo, scenario, placement, seed),
            sched: holder,
            arrive: scenario.arrivals.iter().map(|a| a.at).collect(),
            next_arrival: 0,
            to_reclaim: Vec::new(),
        }
    }
    let wall = Instant::now();
    let outcomes: Vec<ShardOutcome> = match sched {
        SchedBinding::Inline(s) => {
            // lint: allow(no-panic-paths) — `local_mesh(1)` returns exactly one communicator by construction
            let comm = local_mesh(1).pop().expect("mesh of one");
            let work = churn_work(&topo, scenario, placement, cfg.seed, SchedHolder::Borrowed(s));
            vec![Shard::<Q>::new(cfg, &topo, Arc::clone(&map), 0, comm, work).run()]
        }
        SchedBinding::Factory(mk) if parts == 1 => {
            // lint: allow(no-panic-paths) — `local_mesh(1)` returns exactly one communicator by construction
            let comm = local_mesh(1).pop().expect("mesh of one");
            let work = churn_work(&topo, scenario, placement, cfg.seed, SchedHolder::Owned(mk()));
            vec![Shard::<Q>::new(cfg, &topo, Arc::clone(&map), 0, comm, work).run()]
        }
        SchedBinding::Factory(mk) => {
            let comms = local_mesh(parts);
            std::thread::scope(|sc| {
                let handles: Vec<_> = comms
                    .into_iter()
                    .enumerate()
                    .map(|(p, comm)| {
                        let (topo, map) = (&topo, Arc::clone(&map));
                        sc.spawn(move || {
                            let work = churn_work(
                                topo,
                                scenario,
                                placement,
                                cfg.seed,
                                SchedHolder::Owned(mk()),
                            );
                            Shard::<Q>::new(cfg, topo, map, p, comm, work).run()
                        })
                    })
                    .collect();
                // lint: allow(no-panic-paths) — re-raising a worker panic on the driver thread is the only correct escalation; swallowing it would return a partial report as if the run succeeded
                handles.into_iter().map(|h| h.join().expect("partition worker panicked")).collect()
            })
        }
    };
    let wall_s = wall.elapsed().as_secs_f64();
    let specs: Vec<&JobSpec> = scenario.arrivals.iter().map(|a| &a.spec).collect();
    assemble(cfg, &specs, &topo, &map, outcomes, wall_s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn merge_ranks_orders_true_keys_across_shards() {
        // Shard 0 pushes at dispatch keys (10, 1) then (30, 2); shard 1 at
        // (20, 7). Global rank order must interleave: 0, 2, 1.
        let logs = vec![
            vec![
                LogEntry { time: 100, dispatch: Dispatch::True { t: 10, seq: 1 } },
                LogEntry { time: 50, dispatch: Dispatch::True { t: 30, seq: 2 } },
            ],
            vec![LogEntry { time: 70, dispatch: Dispatch::True { t: 20, seq: 7 } }],
        ];
        let ranks = merge_ranks(&logs, 5);
        assert_eq!(ranks[0], vec![0, 2]);
        assert_eq!(ranks[1], vec![1]);
    }

    #[test]
    fn merge_ranks_resolves_local_dispatches_through_assigned_ranks() {
        let wseg = 3u64;
        // Shard 0: entry 0 pushed (by an old event at (5, 9)) an event at
        // t=40; entry 1 is a push by *that* event (Local{0}), so its
        // dispatch key is (40, (wseg<<40)|rank(entry 0)).
        // Shard 1: one push by an old event at (39, 2) — between them.
        let logs = vec![
            vec![
                LogEntry { time: 40, dispatch: Dispatch::True { t: 5, seq: 9 } },
                LogEntry { time: 90, dispatch: Dispatch::Local { j: 0 } },
            ],
            vec![LogEntry { time: 60, dispatch: Dispatch::True { t: 39, seq: 2 } }],
        ];
        let ranks = merge_ranks(&logs, wseg);
        // Dispatch keys: shard0[0] = (5,9); shard1[0] = (39,2);
        // shard0[1] = (40, (3<<40)|0) — last.
        assert_eq!(ranks[0], vec![0, 2]);
        assert_eq!(ranks[1], vec![1]);
    }

    /// The heart of the determinism argument, property-tested: a windowed
    /// multi-shard run — provisional keys, per-window barrier merges,
    /// renumbering, boundary hand-off — pops abstract events in exactly the
    /// order of a single heap driven by the global push sequence.
    ///
    /// The abstract workload is a deterministic event cascade: event `id`
    /// at time `t` on shard `s` spawns children from a hash of `id`, with
    /// local children at any future time and cross-shard children delayed
    /// by at least the lookahead — the same contract the dragonfly's
    /// boundary traffic obeys.
    fn hash(x: u64) -> u64 {
        // splitmix64: deterministic and well-mixed, no external deps.
        let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    #[derive(Clone, Copy, Debug)]
    struct AbsEvent {
        id: u64,
        shard: usize,
    }

    /// Deterministic children of an event: `(delay, dest shard, child id)`.
    /// `burstiness` skews delays toward the window edge; `min_latencies`
    /// gives each shard pair its own boundary latency floor (≥ lookahead).
    fn children(
        ev: AbsEvent,
        t: Time,
        parts: usize,
        lookahead: Time,
        burstiness: u64,
        depth_left: u32,
    ) -> Vec<(Time, usize, u64)> {
        if depth_left == 0 {
            return Vec::new();
        }
        let h = hash(ev.id);
        let n = (h % 3) as usize; // 0..=2 children
        (0..n)
            .map(|c| {
                let hc = hash(ev.id ^ (c as u64 + 1).wrapping_mul(0x5851_f42d_4c95_7f2d));
                let dest = (hc % parts as u64) as usize;
                let base = 1 + (hc >> 8) % (lookahead * 2 + burstiness);
                let delay = if dest == ev.shard {
                    base // local children: any future time
                } else {
                    lookahead + base // boundary: at least the lookahead
                };
                (t + delay, dest, hc)
            })
            .collect()
    }

    /// Oracle: one heap over all shards, auto-sequenced in push order —
    /// the single-threaded engine's total order.
    fn oracle_pop_order(
        seeds: &[AbsEvent],
        parts: usize,
        lookahead: Time,
        burstiness: u64,
        depth: u32,
    ) -> Vec<u64> {
        let mut q: EventQueue<(AbsEvent, u32)> = EventQueue::new();
        for (i, &e) in seeds.iter().enumerate() {
            q.push(i as Time, (e, depth));
        }
        let mut order = Vec::new();
        while let Some((t, (ev, d))) = q.pop() {
            order.push(ev.id);
            for (ct, dest, cid) in children(ev, t, parts, lookahead, burstiness, d) {
                q.push(ct, (AbsEvent { id: cid, shard: dest }, d - 1));
            }
        }
        order
    }

    /// Partitioned run: one queue per shard with provisional window keys,
    /// lockstep windows of length `lookahead`, and a merge-and-renumber
    /// barrier after each — the exact protocol `Shard::run` uses, minus the
    /// network/MPI payload.
    fn partitioned_pop_order(
        seeds: &[AbsEvent],
        parts: usize,
        lookahead: Time,
        burstiness: u64,
        depth: u32,
    ) -> Vec<u64> {
        let mut qs: Vec<EventQueue<(AbsEvent, u32)>> =
            (0..parts).map(|_| EventQueue::new()).collect();
        // Init cut (segment 0): seed events get final slot keys, every
        // shard numbering all slots identically.
        for (i, &e) in seeds.iter().enumerate() {
            qs[e.shard].push_seq(i as Time, (i as u64) << SLOT_SHIFT, (e, depth));
        }
        let mut seg = 0u64;
        let mut pops: Vec<(Time, u64, u64)> = Vec::new(); // (time, final key, id)
        let mut s: Time = 0;
        loop {
            // Global next event (what the barrier's peek exchange yields).
            let gn = qs.iter().filter_map(|q| q.peek_time()).min();
            let Some(gn) = gn else { break };
            s = s.max(gn);
            let e = s + lookahead;
            seg += 1; // window segment
            let wseg = seg;
            let mut logs: Vec<Vec<LogEntry>> = vec![Vec::new(); parts];
            // (source shard, time, log index, event, remaining depth)
            type BoundaryChild = (usize, Time, u32, AbsEvent, u32);
            let mut boundary: Vec<Vec<BoundaryChild>> = vec![Vec::new(); parts];
            let mut wpops: Vec<(usize, Time, u64, u64)> = Vec::new();
            for p in 0..parts {
                while qs[p].peek_time().is_some_and(|t| t < e) {
                    let (t, key, (ev, d)) = qs[p].pop_keyed().unwrap();
                    wpops.push((p, t, key, ev.id));
                    let dispatch = if key >> SEG_SHIFT == wseg {
                        Dispatch::Local { j: (key & VAL_MASK) as u32 }
                    } else {
                        Dispatch::True { t, seq: key }
                    };
                    for (ct, dest, cid) in children(ev, t, parts, lookahead, burstiness, d) {
                        let j = logs[p].len() as u32;
                        logs[p].push(LogEntry { time: ct, dispatch });
                        let child = AbsEvent { id: cid, shard: dest };
                        if dest == p {
                            qs[p].push_seq(ct, (wseg << SEG_SHIFT) | j as u64, (child, d - 1));
                        } else {
                            assert!(ct >= t + lookahead, "boundary child under lookahead");
                            boundary[dest].push((p, ct, j, child, d - 1));
                        }
                    }
                }
            }
            // Barrier: merge, renumber pending, import boundary children.
            let ranks = merge_ranks(&logs, wseg);
            for (p, q) in qs.iter_mut().enumerate() {
                let rp = &ranks[p];
                q.for_each_pending_mut(&mut |_, seq| {
                    if *seq >> SEG_SHIFT == wseg {
                        *seq = (wseg << SEG_SHIFT) | rp[(*seq & VAL_MASK) as usize];
                    }
                });
            }
            for (dest, imports) in boundary.into_iter().enumerate() {
                for (p, ct, j, child, d) in imports {
                    qs[dest].push_seq(ct, (wseg << SEG_SHIFT) | ranks[p][j as usize], (child, d));
                }
            }
            for (p, t, key, id) in wpops {
                pops.push((t, xlate(key, wseg, &ranks[p]), id));
            }
            s = e;
            seg += 1; // cut segment (idle here: no admissions in the model)
        }
        pops.sort_unstable();
        pops.into_iter().map(|(_, _, id)| id).collect()
    }

    proptest! {
        /// Windowed cross-partition exchange preserves the global
        /// `(time, seq)` pop order of the single-heap oracle across
        /// uniform, bursty and adversarial (boundary-heavy, minimum-delay)
        /// latency mixes and partition counts.
        #[test]
        fn windowed_exchange_matches_heap_oracle(
            seed in 0u64..1_000_000,
            parts in 1usize..5,
            n_seeds in 1usize..7,
            lookahead in prop_oneof![Just(1u64), Just(3u64), Just(50u64)],
            burstiness in prop_oneof![Just(0u64), Just(2u64), Just(400u64)],
        ) {
            let seeds: Vec<AbsEvent> = (0..n_seeds)
                .map(|i| AbsEvent {
                    id: hash(seed ^ (i as u64) << 32),
                    shard: (hash(seed ^ (i as u64)) % parts as u64) as usize,
                })
                .collect();
            let depth = 7;
            let want = oracle_pop_order(&seeds, parts, lookahead, burstiness, depth);
            let got = partitioned_pop_order(&seeds, parts, lookahead, burstiness, depth);
            prop_assert_eq!(got, want);
        }
    }
}
