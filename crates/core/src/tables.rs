//! Aligned text tables and CSV output for the reproduction harness.

/// A simple column-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Table with the given headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Self { headers: headers.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Append a row (must match the header count).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize], out: &mut String| {
            for (c, cell) in cells.iter().enumerate() {
                if c > 0 {
                    out.push_str("  ");
                }
                out.push_str(cell);
                for _ in cell.len()..widths[c] {
                    out.push(' ');
                }
            }
            // Trim trailing spaces.
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        fmt_row(&self.headers, &widths, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            fmt_row(row, &widths, &mut out);
        }
        out
    }

    /// Render as CSV (RFC-4180-ish quoting).
    pub fn to_csv(&self) -> String {
        let esc = |s: &str| {
            if s.contains([',', '"', '\n']) {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(&self.headers.iter().map(|h| esc(h)).collect::<Vec<_>>().join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Format a float with `digits` decimals.
pub fn f(v: f64, digits: usize) -> String {
    format!("{v:.digits$}")
}

/// Format bytes in the paper's human units (KB/MB with binary divisor, as
/// Table I prints them).
pub fn human_bytes(b: u64) -> String {
    let b = b as f64;
    if b >= 1024.0 * 1024.0 {
        format!("{:.2}MB", b / (1024.0 * 1024.0))
    } else if b >= 1024.0 {
        format!("{:.2}KB", b / 1024.0)
    } else {
        format!("{b:.0}B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(vec!["App", "Comm (ms)"]);
        t.row(vec!["FFT3D", "4.20"]);
        t.row(vec!["LU", "13.24"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0], "App    Comm (ms)");
        assert!(lines[1].starts_with("---"));
        assert_eq!(lines[2], "FFT3D  4.20");
        assert_eq!(lines[3], "LU     13.24");
    }

    #[test]
    fn csv_escapes_properly() {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.row(vec!["x,y", "quote\"inside"]);
        let csv = t.to_csv();
        assert_eq!(csv, "a,b\n\"x,y\",\"quote\"\"inside\"\n");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.row(vec!["only one"]);
    }

    #[test]
    fn human_bytes_units() {
        assert_eq!(human_bytes(512), "512B");
        assert_eq!(human_bytes(3_072), "3.00KB");
        assert_eq!(human_bytes(1_205_862), "1.15MB");
    }
}
