//! The paper's experiment presets.
//!
//! * **Standalone** (§V, blue bars of Fig 4): one app on its half of the
//!   1,056-node system, the other half idle.
//! * **Pairwise** (§V, Figs 4–9): the system equally divided between a
//!   target and a background app; random placement; the target's process-
//!   to-node mapping identical with and without the background (same
//!   placement seed and partition order, idle padding when the target
//!   takes fewer than 528 nodes — LULESH's 512, paper §V).
//! * **Mixed** (§VI, Table II, Figs 10–13): six apps of different patterns
//!   filling all 1,056 nodes (140 + 138 + 140 + 139 + 256 + 243 = 1,056).

use std::path::PathBuf;

use dfsim_apps::AppKind;
use dfsim_des::QueueBackend;
use dfsim_network::{QTableInit, RoutingAlgo, RoutingConfig};

use crate::config::SimConfig;
use crate::placement::Placement;
use crate::report::RunReport;
use crate::runner::JobSpec;
use crate::simulation::Simulation;
use crate::spec::{ExperimentSpec, Workload};

/// Knobs shared by a whole experiment campaign.
///
/// Not `Copy` (the Q-table lifecycle knobs carry paths); sweep closures
/// clone per cell: `StudyConfig { routing, ..study.clone() }`.
#[derive(Debug, Clone)]
pub struct StudyConfig {
    /// Routing algorithm under test.
    pub routing: RoutingAlgo,
    /// Workload scale divisor.
    pub scale: f64,
    /// Root seed (placement + all randomness).
    pub seed: u64,
    /// Placement policy (paper: random).
    pub placement: Placement,
    /// Topology (default: the paper's 1,056-node system).
    pub params: dfsim_topology::DragonflyParams,
    /// Event-queue backend of the world loop (report-invariant; a
    /// performance knob for the ablation).
    pub queue: QueueBackend,
    /// Q-table initialization: cold (paper) or warm-start from a snapshot
    /// (`--qtable load=PATH`; Q-adaptive runs only).
    pub qtable_init: QTableInit,
    /// Write the learned Q-tables here after the run (`--qtable save=PATH`;
    /// Q-adaptive runs only).
    pub qtable_save: Option<PathBuf>,
}

impl Default for StudyConfig {
    fn default() -> Self {
        Self {
            routing: RoutingAlgo::UgalG,
            scale: 64.0,
            seed: 42,
            placement: Placement::Random,
            params: dfsim_topology::DragonflyParams::paper_1056(),
            queue: QueueBackend::default(),
            qtable_init: QTableInit::Cold,
            qtable_save: None,
        }
    }
}

impl StudyConfig {
    /// The full simulation config this study implies.
    pub fn sim(&self) -> SimConfig {
        SimConfig {
            routing: RoutingConfig::new(self.routing).with_qtable_init(self.qtable_init.clone()),
            scale: self.scale,
            seed: self.seed,
            params: self.params,
            queue: self.queue,
            qtable_save: self.qtable_save.clone(),
            ..Default::default()
        }
    }

    /// Half the system's nodes (the pairwise partition size).
    pub fn half_nodes(&self) -> u32 {
        self.params.num_nodes() / 2
    }
}

/// Table II job sizes (paper §VI).
pub const MIXED_JOBS: [(AppKind, u32); 6] = [
    (AppKind::FFT3D, 140),
    (AppKind::CosmoFlow, 138),
    (AppKind::LU, 140),
    (AppKind::UR, 139),
    (AppKind::LQCD, 256),
    (AppKind::Stencil5D, 243),
];

/// Run `target` standalone on its half-system partition.
pub fn standalone(target: AppKind, cfg: &StudyConfig) -> RunReport {
    pairwise(target, None, cfg)
}

/// Run `target` with an optional co-running `background` on the other half
/// of the system. `background = None` is the standalone case with an
/// *identical* target mapping (same placement seed, same partition slice).
pub fn pairwise(target: AppKind, background: Option<AppKind>, cfg: &StudyConfig) -> RunReport {
    preset(cfg, Workload::pairwise(target, background))
}

/// Run the Table II mixed workload.
pub fn mixed(cfg: &StudyConfig) -> RunReport {
    preset(cfg, Workload::Mixed)
}

/// Mixed workload with job sizes scaled by `size_factor` (for small-system
/// tests; 1.0 = Table II sizes).
pub fn mixed_scaled_sizes(cfg: &StudyConfig, size_factor: f64) -> RunReport {
    let jobs: Vec<JobSpec> = MIXED_JOBS
        .iter()
        .map(|&(kind, size)| {
            let s = ((size as f64 * size_factor).round() as u32).max(2);
            JobSpec::sized(kind, s)
        })
        .collect();
    preset(cfg, Workload::jobs(jobs))
}

/// Run a preset workload under a study config through the simulation
/// session (the presets predate [`ExperimentSpec`]; they keep their
/// signatures and, by construction, their bit-identical reports).
fn preset(cfg: &StudyConfig, workload: Workload) -> RunReport {
    let spec = ExperimentSpec::from_study(cfg);
    Simulation::run_one(&spec, workload)
        .unwrap_or_else(|e| panic!("invalid study config: {e}"))
        .report
}

/// The background set of Fig 4 (legend order).
pub const FIG4_BACKGROUNDS: [Option<AppKind>; 7] = [
    None,
    Some(AppKind::UR),
    Some(AppKind::LU),
    Some(AppKind::FFT3D),
    Some(AppKind::CosmoFlow),
    Some(AppKind::DL),
    Some(AppKind::Halo3D),
];

/// The target set of Fig 4 (subplot order).
pub const FIG4_TARGETS: [AppKind; 6] = [
    AppKind::FFT3D,
    AppKind::LU,
    AppKind::LQCD,
    AppKind::CosmoFlow,
    AppKind::Stencil5D,
    AppKind::LULESH,
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixed_jobs_fill_the_machine_exactly() {
        let total: u32 = MIXED_JOBS.iter().map(|&(_, s)| s).sum();
        assert_eq!(total, 1_056);
    }

    #[test]
    fn fig4_sets_match_paper() {
        assert_eq!(FIG4_TARGETS.len(), 6);
        assert_eq!(FIG4_BACKGROUNDS.len(), 7);
        assert_eq!(FIG4_BACKGROUNDS[0], None);
    }

    #[test]
    fn pairwise_on_tiny_system_completes_under_all_routings() {
        for routing in RoutingAlgo::PAPER_SET {
            let cfg = StudyConfig {
                routing,
                scale: 4_096.0,
                seed: 11,
                placement: Placement::Random,
                params: dfsim_topology::DragonflyParams::tiny_72(),
                ..Default::default()
            };
            let report = pairwise(AppKind::CosmoFlow, Some(AppKind::UR), &cfg);
            assert!(report.completed, "{routing}: {}", report.stop_reason);
            assert_eq!(report.apps.len(), 2);
            assert_eq!(report.apps[0].name, "CosmoFlow");
        }
    }

    #[test]
    fn standalone_and_pairwise_share_target_mapping() {
        // Indirect check: identical seeds give identical standalone target
        // behaviour whether or not the background slot exists; the direct
        // mapping check lives in placement::tests.
        let cfg = StudyConfig {
            scale: 4_096.0,
            params: dfsim_topology::DragonflyParams::tiny_72(),
            ..Default::default()
        };
        let solo1 = standalone(AppKind::LU, &cfg);
        let solo2 = pairwise(AppKind::LU, None, &cfg);
        assert_eq!(solo1.apps[0].comm_ms.mean, solo2.apps[0].comm_ms.mean);
    }
}
