//! The world event loop: one deterministic queue driving network and MPI.
//!
//! The queue backend is a type parameter (defaulting to the binary heap),
//! selected at runtime from [`crate::config::SimConfig::queue`] by
//! [`crate::runner::run_placed`] — the event-queue ablation runs the real
//! hot path, not a synthetic harness. Both backends realize the identical
//! deterministic `(time, seq)` total order, so a run's report is invariant
//! under the backend choice (the `backend_equivalence` integration test
//! pins this).

use dfsim_des::queue::{PendingEvents, SimQueue};
use dfsim_des::{EngineStats, EventQueue, JobEvent, QueueBackend, Scheduler, Time};
use dfsim_metrics::Recorder;
use dfsim_mpi::{MpiEvent, MpiSim};
use dfsim_network::{NetEffect, NetEvent, NetworkSim};

/// The union of all event types in a simulation.
#[derive(Debug)]
pub enum WorldEvent {
    /// A network event.
    Net(NetEvent),
    /// An MPI event.
    Mpi(MpiEvent),
    /// A job-lifecycle event (only scheduled by scenario runs; see
    /// [`crate::scenario`]).
    Job(JobEvent),
}

/// The default (binary-heap) world queue backend.
pub type DefaultBackend = EventQueue<WorldEvent>;

/// The world queue: lifts network and MPI events into [`WorldEvent`] and
/// satisfies both scheduler contracts at once (what [`dfsim_mpi::WorldSched`]
/// requires), over any [`PendingEvents`] backend.
#[derive(Debug)]
pub struct WorldQueue<Q = DefaultBackend> {
    inner: Q,
}

impl<Q: SimQueue<WorldEvent>> WorldQueue<Q> {
    /// Empty queue with the backend's simulation-tuned defaults.
    pub fn new() -> Self {
        Self { inner: Q::for_simulation() }
    }

    /// Empty queue under `backend`'s tuning (the backend's kind must match
    /// `Q`; the runner dispatches on [`QueueBackend::kind`] first).
    pub fn for_backend(backend: QueueBackend) -> Self {
        Self { inner: Q::for_backend(backend) }
    }
}

impl<Q: SimQueue<WorldEvent>> Default for WorldQueue<Q> {
    fn default() -> Self {
        Self::new()
    }
}

impl<Q: PendingEvents<WorldEvent>> WorldQueue<Q> {
    /// Pop the earliest event.
    pub fn pop(&mut self) -> Option<(Time, WorldEvent)> {
        self.inner.pop()
    }

    /// Current simulation time.
    pub fn now(&self) -> Time {
        self.inner.now()
    }

    /// Events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.inner.events_processed()
    }

    /// Engine statistics of the underlying pending-event set.
    pub fn stats(&self) -> EngineStats {
        self.inner.stats()
    }

    /// Pending events.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the queue is drained.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }
}

impl<Q: PendingEvents<WorldEvent>> Scheduler<NetEvent> for WorldQueue<Q> {
    fn now(&self) -> Time {
        self.inner.now()
    }
    fn at(&mut self, time: Time, event: NetEvent) {
        self.inner.push(time, WorldEvent::Net(event));
    }
}

impl<Q: PendingEvents<WorldEvent>> Scheduler<MpiEvent> for WorldQueue<Q> {
    fn now(&self) -> Time {
        self.inner.now()
    }
    fn at(&mut self, time: Time, event: MpiEvent) {
        self.inner.push(time, WorldEvent::Mpi(event));
    }
}

impl<Q: PendingEvents<WorldEvent>> Scheduler<JobEvent> for WorldQueue<Q> {
    fn now(&self) -> Time {
        self.inner.now()
    }
    fn at(&mut self, time: Time, event: JobEvent) {
        self.inner.push(time, WorldEvent::Job(event));
    }
}

/// Dispatch one popped event into the sub-models. Network and MPI events
/// are consumed (including the ordered network-effect drain); job events
/// are returned to the caller, since only the scenario loop knows how to
/// handle them. Shared by [`World::run`] and the scenario loop so the
/// dispatch semantics — in particular the effect-drain ordering that the
/// backend-equivalence guarantee rides on — can never diverge between the
/// two.
#[inline]
pub(crate) fn dispatch_core<S: Scheduler<NetEvent> + Scheduler<MpiEvent>>(
    net: &mut NetworkSim,
    mpi: &mut MpiSim,
    rec: &mut Recorder,
    queue: &mut S,
    effects: &mut Vec<NetEffect>,
    ev: WorldEvent,
) -> Option<JobEvent> {
    match ev {
        WorldEvent::Net(e) => {
            net.handle(e, queue, rec, effects);
            if !effects.is_empty() {
                for eff in effects.drain(..) {
                    mpi.on_net_effect(eff, queue, net, rec);
                }
            }
            None
        }
        WorldEvent::Mpi(e) => {
            mpi.handle(e, queue, net, rec);
            None
        }
        WorldEvent::Job(e) => Some(e),
    }
}

/// Why a world run stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// Every application rank finished.
    AllFinished,
    /// The simulated-time horizon was exceeded.
    Horizon,
    /// The event cap was exceeded (runaway guard).
    EventCap,
    /// The queue drained without completion (a stuck workload — indicates
    /// a matching bug in an app program).
    Drained,
}

/// A fully assembled simulation, generic over the event-queue backend.
pub struct World<Q = DefaultBackend> {
    /// The network model.
    pub net: NetworkSim,
    /// The MPI engine.
    pub mpi: MpiSim,
    /// The metrics sink.
    pub rec: Recorder,
    /// The event queue.
    pub queue: WorldQueue<Q>,
    /// Scratch buffer for network effects (shared with the scenario loop).
    pub(crate) effects: Vec<NetEffect>,
}

impl<Q: SimQueue<WorldEvent>> World<Q> {
    /// Assemble a world on this backend with its default tuning.
    pub fn new(net: NetworkSim, mpi: MpiSim, rec: Recorder) -> Self {
        Self { net, mpi, rec, queue: WorldQueue::new(), effects: Vec::new() }
    }

    /// Assemble a world on `backend`'s tuning (kind must match `Q`).
    pub fn with_backend(
        net: NetworkSim,
        mpi: MpiSim,
        rec: Recorder,
        backend: QueueBackend,
    ) -> Self {
        Self { net, mpi, rec, queue: WorldQueue::for_backend(backend), effects: Vec::new() }
    }
}

impl<Q: PendingEvents<WorldEvent>> World<Q> {
    /// Start all ranks and run until completion, horizon or event cap.
    /// Returns the stop reason and the final simulated time.
    pub fn run(&mut self, horizon: Option<Time>, max_events: u64) -> (StopReason, Time) {
        let Self { net, mpi, rec, queue, effects } = self;
        mpi.start(queue, net, rec);
        if mpi.all_finished() {
            return (StopReason::AllFinished, queue.now());
        }
        let mut processed: u64 = 0;
        while let Some((t, ev)) = queue.pop() {
            if let Some(h) = horizon {
                if t > h {
                    return (StopReason::Horizon, t);
                }
            }
            if let Some(e) = dispatch_core(net, mpi, rec, queue, effects, ev) {
                debug_assert!(false, "job event {e:?} in a static run; use run_scenario");
                let _ = e;
            }
            processed += 1;
            if processed >= max_events {
                return (StopReason::EventCap, queue.now());
            }
            if mpi.all_finished() {
                return (StopReason::AllFinished, queue.now());
            }
        }
        if mpi.all_finished() {
            (StopReason::AllFinished, queue.now())
        } else {
            (StopReason::Drained, queue.now())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfsim_des::SimRng;
    use dfsim_metrics::{AppId, RecorderConfig};
    use dfsim_mpi::MpiOp;
    use dfsim_network::{RoutingAlgo, RoutingConfig};
    use dfsim_topology::{DragonflyParams, LinkTiming, NodeId, Topology};

    fn mk_world() -> World {
        let topo = std::sync::Arc::new(Topology::new(DragonflyParams::tiny_72()).unwrap());
        let rec = Recorder::new(&topo, RecorderConfig::default());
        let net = NetworkSim::new(
            topo,
            LinkTiming::default(),
            RoutingConfig::new(RoutingAlgo::Par),
            &SimRng::new(1),
        );
        World::new(net, MpiSim::default(), rec)
    }

    #[test]
    fn empty_world_finishes_instantly() {
        let mut w = mk_world();
        let (reason, t) = w.run(None, 1_000);
        assert_eq!(reason, StopReason::AllFinished);
        assert_eq!(t, 0);
    }

    #[test]
    fn simple_exchange_runs_to_completion() {
        let mut w = mk_world();
        w.mpi.add_app(
            AppId(0),
            vec![NodeId(0), NodeId(50)],
            vec![
                Box::new(vec![MpiOp::Send { dst: 1, bytes: 2048, tag: 0 }].into_iter()),
                Box::new(vec![MpiOp::Recv { src: Some(0), tag: 0 }].into_iter()),
            ],
            vec![],
        );
        let (reason, t) = w.run(None, 10_000_000);
        assert_eq!(reason, StopReason::AllFinished);
        assert!(t > 0);
    }

    #[test]
    fn horizon_stops_runaway_workloads() {
        let mut w = mk_world();
        // Receiver waits for a message nobody sends.
        w.mpi.add_app(
            AppId(0),
            vec![NodeId(0), NodeId(9)],
            vec![
                Box::new(vec![MpiOp::Compute(1_000_000_000)].into_iter()), // 1 ms
                Box::new(vec![MpiOp::Recv { src: Some(0), tag: 99 }].into_iter()),
            ],
            vec![],
        );
        let (reason, _) = w.run(Some(500_000), 10_000_000);
        // The compute event fires beyond the 0.5 µs horizon.
        assert_eq!(reason, StopReason::Horizon);
    }

    #[test]
    fn stuck_matching_reports_drained() {
        let mut w = mk_world();
        w.mpi.add_app(
            AppId(0),
            vec![NodeId(0)],
            vec![Box::new(vec![MpiOp::Recv { src: Some(0), tag: 1 }].into_iter())],
            vec![],
        );
        let (reason, _) = w.run(None, 10_000_000);
        assert_eq!(reason, StopReason::Drained);
    }

    #[test]
    fn event_cap_guards_against_runaway() {
        let mut w = mk_world();
        w.mpi.add_app(
            AppId(0),
            vec![NodeId(0), NodeId(40)],
            vec![
                Box::new(
                    (0..10_000)
                        .map(|i| MpiOp::Send { dst: 1, bytes: 4096, tag: i })
                        .collect::<Vec<_>>()
                        .into_iter(),
                ),
                Box::new(
                    (0..10_000)
                        .map(|i| MpiOp::Recv { src: Some(0), tag: i })
                        .collect::<Vec<_>>()
                        .into_iter(),
                ),
            ],
            vec![],
        );
        let (reason, _) = w.run(None, 100);
        assert_eq!(reason, StopReason::EventCap);
    }
}
