//! Declarative experiment specification: one serializable description of
//! everything an experiment needs, one resolver for every knob source.
//!
//! Historically each front-end re-wired the same configuration soup — env
//! vars (`SCALE`/`SEED`/`QUEUE`/`ROUTING`/…) with silent fallbacks,
//! per-binary flag parsing, and free functions taking different config
//! structs. This module replaces all of that with:
//!
//! * [`ExperimentSpec`] — a complete, declarative description of an
//!   experiment: workload, topology, timing, routing (and its
//!   hyperparameters), scale/seed, placement, scheduler, event-queue
//!   backend, Q-table lifecycle, recorder granularity, horizons, sweep
//!   sets. Everything `SimConfig`/`StudyConfig`/`Scenario` express is
//!   representable.
//! * a **line-oriented text format** ([`ExperimentSpec::parse`] /
//!   [`ExperimentSpec::emit`]) in the same vendored-serde-free philosophy
//!   as `dfsim_network::snapshot`: versioned header, `key value` lines,
//!   `#` comments. `emit` is canonical — emitting a parsed spec and
//!   re-parsing yields the identical value, and canonical files round-trip
//!   byte-identically.
//! * **named errors** ([`SpecError`]): every malformed line, unknown key,
//!   bad env var or flag is reported with its location and the valid
//!   forms — never silently defaulted.
//! * **one layering rule** ([`ExperimentSpec::resolve`]): `defaults <
//!   spec file < environment < command line`, implemented once and used by
//!   `dfsim` and every reproduction binary.
//! * a label-based **registry** ([`Registered`], [`lookup`],
//!   [`lookup_list`]) for routings, workloads, placements and schedulers,
//!   collapsing the per-binary `parse_*` copies into one case-insensitive
//!   lookup whose errors list the valid names.
//!
//! The session API that runs a spec lives in [`crate::simulation`].

use std::collections::HashSet;
use std::path::PathBuf;

use dfsim_apps::arrivals::{parse_arrival_list, ArrivalSpec};
use dfsim_apps::AppKind;
use dfsim_des::{parse_duration, QueueBackend, Time, MILLISECOND};
use dfsim_metrics::RecorderConfig;
use dfsim_network::{QTableInit, QaParams, RoutingAlgo, RoutingConfig};
use dfsim_topology::{DragonflyParams, LinkTiming};

use crate::cache::CacheMode;
use crate::config::SimConfig;
use crate::experiments::StudyConfig;
use crate::placement::Placement;
use crate::runner::JobSpec;
use crate::scenario::SchedPolicy;

/// Magic first line of every spec file (bump when the format changes; old
/// files are then rejected with [`SpecError::Version`]).
pub const SPEC_HEADER: &str = "dfsim-spec v1";

/// Environment variables every front-end consults (the historical shared
/// knobs of the fig binaries): invalid values are hard errors naming the
/// variable.
pub const CORE_ENV: [&str; 8] =
    ["SCALE", "SEED", "QUEUE", "ROUTING", "PLACEMENT", "SCHED", "THREADS", "CACHE"];

/// Workload/sweep environment variables a front-end must opt into via
/// [`ExperimentSpec::resolve_env`]. Their names are generic (`TARGET` and
/// `JOBS` are common shell/CI variables), so only the binaries that
/// document them listen — exactly as before the spec unification.
pub const EXTENDED_ENV: [&str; 9] =
    ["TARGETS", "TARGET", "BG", "RATES", "JOBS", "APPS", "SIZES", "TRAIN", "SNAPSHOT"];

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

/// A configuration value selectable by a short stable name.
///
/// One implementation per selectable dimension (routing algorithm,
/// workload kind, placement policy, admission policy); [`lookup`] and
/// [`lookup_list`] are the single parse path for all of them — every CLI
/// flag, env var and spec key goes through the same case-insensitive
/// search and produces the same "valid names" error.
pub trait Registered: Copy + 'static {
    /// What the registry holds ("routing", "app", …) — used in errors.
    const KIND: &'static str;
    /// Every selectable value, in canonical order.
    const ALL: &'static [Self];
    /// The canonical label.
    fn label(&self) -> &'static str;
    /// Accepted alternative spellings (compared case-insensitively).
    fn aliases(&self) -> &'static [&'static str] {
        &[]
    }
}

impl Registered for RoutingAlgo {
    const KIND: &'static str = "routing";
    const ALL: &'static [Self] = &RoutingAlgo::ALL;
    fn label(&self) -> &'static str {
        RoutingAlgo::label(self)
    }
}

impl Registered for AppKind {
    const KIND: &'static str = "app";
    const ALL: &'static [Self] = &AppKind::ALL;
    fn label(&self) -> &'static str {
        self.name()
    }
}

impl Registered for Placement {
    const KIND: &'static str = "placement";
    const ALL: &'static [Self] = &Placement::ALL;
    fn label(&self) -> &'static str {
        Placement::label(self)
    }
}

impl Registered for SchedPolicy {
    const KIND: &'static str = "scheduler";
    const ALL: &'static [Self] = &SchedPolicy::ALL;
    fn label(&self) -> &'static str {
        SchedPolicy::label(self)
    }
    fn aliases(&self) -> &'static [&'static str] {
        match self {
            SchedPolicy::Fcfs => &[],
            SchedPolicy::Backfill => &["fcfs+backfill", "easy"],
        }
    }
}

/// The registry's valid-name listing for `T` (canonical labels, in order).
pub fn registry_labels<T: Registered>() -> String {
    T::ALL.iter().map(|v| v.label()).collect::<Vec<_>>().join(", ")
}

/// Look `name` up in `T`'s registry (case-insensitive, aliases included).
/// The error names the registry and lists every valid label.
pub fn lookup<T: Registered>(name: &str) -> Result<T, String> {
    let name = name.trim();
    T::ALL
        .iter()
        .find(|v| {
            v.label().eq_ignore_ascii_case(name)
                || v.aliases().iter().any(|a| a.eq_ignore_ascii_case(name))
        })
        .copied()
        .ok_or_else(|| format!("unknown {} '{name}' (valid: {})", T::KIND, registry_labels::<T>()))
}

/// Parse a comma-separated list of registry names. An effectively empty
/// list is an error — a misconfigured list must not silently become a
/// no-op.
pub fn lookup_list<T: Registered>(s: &str) -> Result<Vec<T>, String> {
    let items: Vec<T> =
        s.split(',').filter(|p| !p.trim().is_empty()).map(lookup).collect::<Result<_, _>>()?;
    if items.is_empty() {
        return Err(format!("empty {} list", T::KIND));
    }
    Ok(items)
}

/// Exit with a usage error: the uniform CLI failure mode of every binary —
/// one line on stderr, exit code 2, never a panic with a backtrace.
pub fn die(msg: impl std::fmt::Display) -> ! {
    eprintln!("{msg}");
    std::process::exit(2)
}

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Why a spec could not be parsed, resolved or validated. Every variant
/// names its source (file line, env var, flag) so the one-line CLI error
/// points straight at the offending input.
#[derive(Debug, Clone, PartialEq)]
pub enum SpecError {
    /// Reading the spec file failed.
    Io {
        /// The offending path.
        path: PathBuf,
        /// The OS error rendering.
        msg: String,
    },
    /// The file's first significant line is not the expected header.
    Version {
        /// What was found instead of [`SPEC_HEADER`].
        found: String,
    },
    /// A line is structurally broken (no key, missing header, …).
    Malformed {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        msg: String,
    },
    /// A line names a key the format does not define.
    UnknownKey {
        /// 1-based line number.
        line: usize,
        /// The unknown key.
        key: String,
    },
    /// The same key appears twice in one file.
    DuplicateKey {
        /// 1-based line number of the second occurrence.
        line: usize,
        /// The duplicated key.
        key: String,
    },
    /// A known key carries an unparsable value.
    Value {
        /// 1-based line number.
        line: usize,
        /// The key.
        key: String,
        /// Why the value was rejected (includes the valid forms).
        msg: String,
    },
    /// An environment variable carries an unparsable value. Invalid values
    /// are hard errors — `SCALE=6O` must never silently run at the default
    /// scale.
    Env {
        /// The variable name.
        var: String,
        /// The value found.
        value: String,
        /// Why it was rejected.
        msg: String,
    },
    /// A command-line flag is malformed or missing its value.
    Flag {
        /// The flag.
        flag: String,
        /// Why it was rejected.
        msg: String,
    },
    /// A command-line flag the resolver does not define.
    UnknownFlag {
        /// The flag.
        flag: String,
    },
    /// The resolved spec is semantically invalid.
    Invalid {
        /// What constraint was violated.
        msg: String,
    },
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecError::Io { path, msg } => write!(f, "spec {}: {msg}", path.display()),
            SpecError::Version { found } => {
                write!(f, "not a dfsim spec: expected '{SPEC_HEADER}', found '{found}'")
            }
            SpecError::Malformed { line, msg } => write!(f, "spec line {line}: {msg}"),
            SpecError::UnknownKey { line, key } => {
                write!(f, "spec line {line}: unknown key '{key}'")
            }
            SpecError::DuplicateKey { line, key } => {
                write!(f, "spec line {line}: duplicate key '{key}'")
            }
            SpecError::Value { line, key, msg } => write!(f, "spec line {line} ({key}): {msg}"),
            SpecError::Env { var, value, msg } => {
                write!(f, "invalid {var}='{value}': {msg}")
            }
            SpecError::Flag { flag, msg } => write!(f, "{flag}: {msg}"),
            SpecError::UnknownFlag { flag } => write!(f, "unknown option '{flag}'"),
            SpecError::Invalid { msg } => write!(f, "invalid spec: {msg}"),
        }
    }
}

impl std::error::Error for SpecError {}

// ---------------------------------------------------------------------------
// Workload
// ---------------------------------------------------------------------------

/// What a [`crate::simulation::Simulation`] runs.
#[derive(Debug, Clone, PartialEq)]
pub enum Workload {
    /// One app standalone on its half-system partition (paper §V blue
    /// bars): `workload standalone FFT3D`.
    Standalone(AppKind),
    /// The pairwise-interference setting (paper §V): target on one half,
    /// optional background on the other, identical target mapping either
    /// way: `workload pairwise FFT3D Halo3D` / `workload pairwise FFT3D
    /// none`.
    Pairwise {
        /// The measured application.
        target: AppKind,
        /// The interfering application (`None` = standalone slot kept).
        background: Option<AppKind>,
    },
    /// The Table II six-app mixed workload (paper §VI): `workload mixed`.
    Mixed,
    /// An explicit static job list, all starting at t = 0: `workload jobs
    /// FFT3D:140,idle:16,UR:36` (`idle:N` reserves nodes without running
    /// anything).
    Jobs(Vec<JobSpec>),
    /// A churn scenario of timed arrivals: `workload scenario
    /// UR:36@0ps,LU:16@0.5ms`.
    Scenario(Vec<ArrivalSpec>),
    /// A synthesized Poisson churn scenario drawn from the spec's `rates`
    /// (first entry), `jobs`, `apps` and `sizes` fields: `workload
    /// poisson`.
    Poisson,
}

impl Workload {
    /// Standalone shorthand.
    pub fn standalone(app: AppKind) -> Self {
        Workload::Standalone(app)
    }

    /// Pairwise shorthand.
    pub fn pairwise(target: AppKind, background: Option<AppKind>) -> Self {
        Workload::Pairwise { target, background }
    }

    /// Explicit-jobs shorthand.
    pub fn jobs(jobs: Vec<JobSpec>) -> Self {
        Workload::Jobs(jobs)
    }

    /// Canonical spec-file rendering (the `workload` line's value).
    pub fn describe(&self) -> String {
        match self {
            Workload::Standalone(k) => format!("standalone {}", k.name()),
            Workload::Pairwise { target, background } => format!(
                "pairwise {} {}",
                target.name(),
                background.map(|b| b.name()).unwrap_or("none")
            ),
            Workload::Mixed => "mixed".to_string(),
            Workload::Jobs(jobs) => {
                let list: Vec<String> = jobs
                    .iter()
                    .map(|j| {
                        if j.idle {
                            format!("idle:{}", j.size)
                        } else {
                            format!("{}:{}", j.kind.name(), j.size)
                        }
                    })
                    .collect();
                format!("jobs {}", list.join(","))
            }
            Workload::Scenario(arrivals) => {
                let list: Vec<String> = arrivals
                    .iter()
                    .map(|a| format!("{}:{}@{}ps", a.kind.name(), a.size, a.at))
                    .collect();
                format!("scenario {}", list.join(","))
            }
            Workload::Poisson => "poisson".to_string(),
        }
    }

    /// Parse the `workload` line's value (inverse of [`Self::describe`]).
    pub fn parse(s: &str) -> Result<Self, String> {
        let s = s.trim();
        let (form, tail) = s.split_once(char::is_whitespace).unwrap_or((s, ""));
        let tail = tail.trim();
        let bare = |w: Workload| {
            if tail.is_empty() {
                Ok(w)
            } else {
                Err(format!("workload '{form}' takes no arguments, got '{tail}'"))
            }
        };
        match form.to_ascii_lowercase().as_str() {
            "standalone" => Ok(Workload::Standalone(lookup(tail)?)),
            "pairwise" => {
                let (target, bg) = tail
                    .split_once(char::is_whitespace)
                    .ok_or_else(|| "pairwise needs 'TARGET BACKGROUND|none'".to_string())?;
                let background =
                    if bg.trim().eq_ignore_ascii_case("none") { None } else { Some(lookup(bg)?) };
                Ok(Workload::Pairwise { target: lookup(target)?, background })
            }
            "mixed" => bare(Workload::Mixed),
            "jobs" => Ok(Workload::Jobs(parse_job_list(tail)?)),
            "scenario" => {
                let arrivals = parse_arrival_list(tail)?;
                if arrivals.is_empty() {
                    return Err("empty scenario arrival list".to_string());
                }
                Ok(Workload::Scenario(arrivals))
            }
            "poisson" => bare(Workload::Poisson),
            other => Err(format!(
                "unknown workload '{other}' (valid: standalone APP, pairwise TARGET BG|none, \
                 mixed, jobs LIST, scenario ARRIVALS, poisson)"
            )),
        }
    }
}

/// Parse a static job list: comma-separated `APP:SIZE` / `idle:SIZE`.
fn parse_job_list(s: &str) -> Result<Vec<JobSpec>, String> {
    let mut out = Vec::new();
    for part in s.split(',').filter(|p| !p.trim().is_empty()) {
        let p = part.trim();
        let (name, size) = p
            .split_once(':')
            .ok_or_else(|| format!("job '{p}' must look like APP:SIZE or idle:SIZE"))?;
        let size: u32 = size
            .trim()
            .parse()
            .ok()
            .filter(|&n| n > 0)
            .ok_or_else(|| format!("invalid job size '{}' in '{p}'", size.trim()))?;
        if name.trim().eq_ignore_ascii_case("idle") {
            out.push(JobSpec::idle(size));
        } else {
            out.push(JobSpec::sized(lookup(name)?, size));
        }
    }
    if out.is_empty() {
        return Err("empty job list".to_string());
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// The spec
// ---------------------------------------------------------------------------

/// A complete declarative experiment description.
///
/// Field defaults match `SimConfig::default()` / `StudyConfig::default()`
/// exactly, so a spec that sets nothing runs the identical experiment the
/// old entry points ran — the bit-identity contract behind the migration.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentSpec {
    /// What to run.
    pub workload: Workload,
    /// Structural topology parameters.
    pub params: DragonflyParams,
    /// Link timing.
    pub timing: LinkTiming,
    /// The routing set under study (sweep binaries iterate it; a
    /// [`crate::simulation::Simulation`] requires exactly one entry).
    pub routings: Vec<RoutingAlgo>,
    /// UGAL minimal-path bias, packets.
    pub ugal_bias: i64,
    /// Non-minimal candidates sampled per UGAL decision.
    pub nonmin_samples: usize,
    /// Q-adaptive learning rate α.
    pub qa_alpha: f64,
    /// Q-adaptive exploration ε.
    pub qa_epsilon: f64,
    /// Warm-start Q-tables from this snapshot (Q-adaptive only).
    pub qtable_load: Option<PathBuf>,
    /// Save learned Q-tables here after the run (Q-adaptive only).
    pub qtable_save: Option<PathBuf>,
    /// Workload scale divisor (1 = paper scale).
    pub scale: f64,
    /// Root seed.
    pub seed: u64,
    /// Placement policy.
    pub placement: Placement,
    /// Event-queue backend (report-invariant performance knob).
    pub queue: QueueBackend,
    /// Admission policy for churn scenarios.
    pub sched: SchedPolicy,
    /// MPI eager→rendezvous threshold, bytes.
    pub eager_threshold: u64,
    /// Optional wall on simulated time.
    pub horizon: Option<Time>,
    /// Hard cap on processed events.
    pub max_events: u64,
    /// Metrics time-series bin width, picoseconds.
    pub bin_width: Time,
    /// Record per-packet latencies.
    pub record_latencies: bool,
    /// Record per-port stall counters.
    pub record_ports: bool,
    /// Poisson arrival rates, jobs per simulated ms (sweeps iterate;
    /// single runs use the first entry).
    pub rates: Vec<f64>,
    /// Poisson job count per scenario.
    pub jobs: u32,
    /// App cycle of synthesized scenarios / evaluation sets of sweep
    /// binaries.
    pub apps: Vec<AppKind>,
    /// Job-size cycle of synthesized scenarios (empty = derived from the
    /// topology: a quarter of the machine).
    pub sizes: Vec<u32>,
    /// Target restriction of target×background sweeps (empty = the
    /// binary's full default set).
    pub targets: Vec<AppKind>,
    /// Training workload of the transfer bench.
    pub train: AppKind,
    /// Keep the transfer bench's trained snapshot at this path.
    pub snapshot: Option<PathBuf>,
    /// Stream every metric event of the run to a `dfsim-trace v1` file at
    /// this path (replayable into the identical report; see
    /// [`crate::trace`]).
    pub trace: Option<PathBuf>,
    /// Content-addressed result cache (`off`, `on`, or a directory; see
    /// [`crate::cache`]). Off by default; not part of the cache key
    /// itself.
    pub cache: CacheMode,
    /// Worker threads. Sweep binaries use this for the cell pool (0 = all
    /// cores); single-run front-ends (`dfsim run` and friends) use it as
    /// the partition count of the parallel engine (0/1 = single-threaded).
    pub threads: usize,
}

impl Default for ExperimentSpec {
    fn default() -> Self {
        Self {
            workload: Workload::Mixed,
            params: DragonflyParams::paper_1056(),
            timing: LinkTiming::default(),
            routings: vec![RoutingAlgo::UgalG],
            ugal_bias: 0,
            nonmin_samples: 2,
            qa_alpha: QaParams::default().alpha,
            qa_epsilon: QaParams::default().epsilon,
            qtable_load: None,
            qtable_save: None,
            scale: 64.0,
            seed: 42,
            placement: Placement::Random,
            queue: QueueBackend::default(),
            sched: SchedPolicy::default(),
            eager_threshold: 16 * 1024,
            horizon: None,
            max_events: 2_000_000_000,
            bin_width: MILLISECOND / 10,
            record_latencies: true,
            record_ports: true,
            rates: vec![1.0],
            jobs: 8,
            apps: vec![AppKind::UR, AppKind::CosmoFlow, AppKind::LU],
            sizes: Vec::new(),
            targets: Vec::new(),
            train: AppKind::Halo3D,
            snapshot: None,
            trace: None,
            cache: CacheMode::Off,
            threads: 0,
        }
    }
}

/// Every key of the spec format, in canonical emission order.
///
/// Adding a key here requires classifying it in
/// [`crate::cache`]'s `KEY_CLASSIFICATION` (key-relevant or
/// normalized-out) — `dfsim-lint`'s cache-key-coverage rule and the
/// cache's own tests fail until both lists agree, so a new
/// behaviour-changing key can never cause a stale cache hit by omission.
pub const SPEC_KEYS: [&str; 31] = [
    "workload",
    "topology",
    "timing",
    "routing",
    "ugal_bias",
    "nonmin_samples",
    "qa_alpha",
    "qa_epsilon",
    "qtable_load",
    "qtable_save",
    "scale",
    "seed",
    "placement",
    "queue",
    "sched",
    "eager_threshold",
    "horizon",
    "max_events",
    "bin_width",
    "record_latencies",
    "record_ports",
    "rates",
    "jobs",
    "apps",
    "sizes",
    "targets",
    "train",
    "snapshot",
    "trace",
    "cache",
    "threads",
];

/// Every CLI flag the workspace binaries parse, in sorted order.
///
/// This is the machine-checked half of the dead-knob contract for the
/// command line: `dfsim-lint` parses this table out of the source and
/// fails the build when a registered flag has no read site left (a knob
/// users can pass that does nothing), or when a binary parses a
/// flag-shaped string that was never registered here. Spec keys and env
/// vars get the same treatment through [`SPEC_KEYS`], [`CORE_ENV`] and
/// [`EXTENDED_ENV`].
pub const CLI_FLAGS: [&str; 32] = [
    "--apps",
    "--cache",
    "--contiguous",
    "--csv",
    "--engine-stats",
    "--globals",
    "--groups",
    "--horizon",
    "--jobs",
    "--max-age",
    "--max-bytes",
    "--no-cache",
    "--nodes",
    "--placement",
    "--qtable",
    "--queue",
    "--rate",
    "--rates",
    "--replay",
    "--routers",
    "--routing",
    "--scale",
    "--sched",
    "--seed",
    "--sizes",
    "--smoke",
    "--snapshot",
    "--spec",
    "--targets",
    "--threads",
    "--trace",
    "--train",
];

impl ExperimentSpec {
    // -- format ------------------------------------------------------------

    /// Parse a spec file's text over the built-in defaults. Keys the file
    /// omits keep their default; see [`Self::parsed_over`] for layering
    /// over caller defaults.
    pub fn parse(text: &str) -> Result<Self, SpecError> {
        Self::default().parsed_over(text)
    }

    /// Parse `text` as a layer over `self`: every key present replaces the
    /// current value, everything else is kept. Unknown keys, duplicate
    /// keys and malformed values are named errors, never ignored.
    pub fn parsed_over(mut self, text: &str) -> Result<Self, SpecError> {
        let mut seen: HashSet<String> = HashSet::new();
        let mut header_ok = false;
        for (i, raw) in text.lines().enumerate() {
            let line_no = i + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if !header_ok {
                if line != SPEC_HEADER {
                    return Err(SpecError::Version { found: line.to_string() });
                }
                header_ok = true;
                continue;
            }
            let (key, rest) = line.split_once(char::is_whitespace).unwrap_or((line, ""));
            let rest = rest.trim();
            if !SPEC_KEYS.contains(&key) {
                return Err(SpecError::UnknownKey { line: line_no, key: key.to_string() });
            }
            if !seen.insert(key.to_string()) {
                return Err(SpecError::DuplicateKey { line: line_no, key: key.to_string() });
            }
            self.apply_key(line_no, key, rest)?;
        }
        if !header_ok {
            return Err(SpecError::Malformed {
                line: text.lines().count().max(1),
                msg: format!("empty spec (missing '{SPEC_HEADER}' header)"),
            });
        }
        Ok(self)
    }

    /// [`Self::parsed_over`] from a file on disk.
    pub fn loaded_over(self, path: impl Into<PathBuf>) -> Result<Self, SpecError> {
        let path = path.into();
        let text = std::fs::read_to_string(&path)
            .map_err(|e| SpecError::Io { path: path.clone(), msg: e.to_string() })?;
        self.parsed_over(&text)
    }

    /// Set one spec key from its text value (shared by the file parser;
    /// `line` feeds the error location).
    fn apply_key(&mut self, line: usize, key: &str, rest: &str) -> Result<(), SpecError> {
        let val = |msg: String| SpecError::Value { line, key: key.to_string(), msg };
        match key {
            "workload" => self.workload = Workload::parse(rest).map_err(val)?,
            "topology" => parse_kv_line(rest, |k, v| {
                let n: u32 = v.parse().map_err(|_| format!("invalid topology {k} '{v}' (u32)"))?;
                match k {
                    "groups" => self.params.groups = n,
                    "routers_per_group" => self.params.routers_per_group = n,
                    "nodes_per_router" => self.params.nodes_per_router = n,
                    "globals_per_router" => self.params.globals_per_router = n,
                    other => return Err(format!("unknown topology field '{other}'")),
                }
                Ok(())
            })
            .map_err(val)?,
            "timing" => parse_kv_line(rest, |k, v| {
                // Byte/packet fields are u32 in `LinkTiming`; parse at the
                // field's width so an out-of-range value is a named error
                // instead of a silent truncation.
                let n64 = |v: &str| {
                    v.parse::<u64>().map_err(|_| format!("invalid timing {k} '{v}' (u64)"))
                };
                let n32 = |v: &str| {
                    v.parse::<u32>().map_err(|_| format!("invalid timing {k} '{v}' (u32)"))
                };
                match k {
                    "bandwidth_gbps" => self.timing.bandwidth_gbps = n64(v)?,
                    "local_latency_ps" => self.timing.local_latency_ps = n64(v)?,
                    "global_latency_ps" => self.timing.global_latency_ps = n64(v)?,
                    "terminal_latency_ps" => self.timing.terminal_latency_ps = n64(v)?,
                    "flit_bytes" => self.timing.flit_bytes = n32(v)?,
                    "packet_bytes" => self.timing.packet_bytes = n32(v)?,
                    "buffer_packets" => self.timing.buffer_packets = n32(v)?,
                    other => return Err(format!("unknown timing field '{other}'")),
                }
                Ok(())
            })
            .map_err(val)?,
            "routing" => self.routings = lookup_list(rest).map_err(val)?,
            "ugal_bias" => {
                self.ugal_bias =
                    rest.parse().map_err(|_| val(format!("invalid bias '{rest}' (i64)")))?
            }
            "nonmin_samples" => {
                self.nonmin_samples =
                    rest.parse().map_err(|_| val(format!("invalid count '{rest}' (usize)")))?
            }
            "qa_alpha" => self.qa_alpha = parse_f64(rest).map_err(val)?,
            "qa_epsilon" => self.qa_epsilon = parse_f64(rest).map_err(val)?,
            "qtable_load" => self.qtable_load = Some(parse_path(rest).map_err(val)?),
            "qtable_save" => self.qtable_save = Some(parse_path(rest).map_err(val)?),
            "scale" => self.scale = parse_f64(rest).map_err(val)?,
            "seed" => {
                self.seed = rest.parse().map_err(|_| val(format!("invalid seed '{rest}' (u64)")))?
            }
            "placement" => self.placement = lookup(rest).map_err(val)?,
            "queue" => self.queue = rest.parse().map_err(val)?,
            "sched" => self.sched = lookup(rest).map_err(val)?,
            "eager_threshold" => {
                self.eager_threshold =
                    rest.parse().map_err(|_| val(format!("invalid bytes '{rest}' (u64)")))?
            }
            "horizon" => self.horizon = Some(parse_duration(rest).map_err(val)?),
            "max_events" => {
                self.max_events =
                    rest.parse().map_err(|_| val(format!("invalid count '{rest}' (u64)")))?
            }
            "bin_width" => self.bin_width = parse_duration(rest).map_err(val)?,
            "record_latencies" => self.record_latencies = parse_bool(rest).map_err(val)?,
            "record_ports" => self.record_ports = parse_bool(rest).map_err(val)?,
            "rates" => self.rates = parse_f64_list(rest).map_err(val)?,
            "jobs" => {
                self.jobs =
                    rest.parse().map_err(|_| val(format!("invalid count '{rest}' (u32)")))?
            }
            "apps" => self.apps = lookup_list(rest).map_err(val)?,
            "sizes" => self.sizes = parse_u32_list(rest).map_err(val)?,
            "targets" => self.targets = lookup_list(rest).map_err(val)?,
            "train" => self.train = lookup(rest).map_err(val)?,
            "snapshot" => self.snapshot = Some(parse_path(rest).map_err(val)?),
            "trace" => self.trace = Some(parse_path(rest).map_err(val)?),
            "cache" => self.cache = CacheMode::parse(rest).map_err(val)?,
            "threads" => {
                self.threads =
                    rest.parse().map_err(|_| val(format!("invalid count '{rest}' (usize)")))?
            }
            _ => unreachable!("key membership checked by the caller"),
        }
        Ok(())
    }

    /// Canonical text rendering: header, every field in [`SPEC_KEYS`]
    /// order, optional fields (`qtable_*`, `horizon`, `sizes`, `targets`,
    /// `snapshot`) omitted when unset. `parse(emit(s)) == s` for every
    /// spec, and `emit(parse(t)) == t` for canonical files.
    pub fn emit(&self) -> String {
        let mut out = String::new();
        let mut line = |s: String| {
            out.push_str(&s);
            out.push('\n');
        };
        line(SPEC_HEADER.to_string());
        line(format!("workload {}", self.workload.describe()));
        line(format!(
            "topology groups={} routers_per_group={} nodes_per_router={} globals_per_router={}",
            self.params.groups,
            self.params.routers_per_group,
            self.params.nodes_per_router,
            self.params.globals_per_router
        ));
        line(format!(
            "timing bandwidth_gbps={} local_latency_ps={} global_latency_ps={} \
             terminal_latency_ps={} flit_bytes={} packet_bytes={} buffer_packets={}",
            self.timing.bandwidth_gbps,
            self.timing.local_latency_ps,
            self.timing.global_latency_ps,
            self.timing.terminal_latency_ps,
            self.timing.flit_bytes,
            self.timing.packet_bytes,
            self.timing.buffer_packets
        ));
        line(format!(
            "routing {}",
            self.routings.iter().map(|r| r.label()).collect::<Vec<_>>().join(",")
        ));
        line(format!("ugal_bias {}", self.ugal_bias));
        line(format!("nonmin_samples {}", self.nonmin_samples));
        line(format!("qa_alpha {}", self.qa_alpha));
        line(format!("qa_epsilon {}", self.qa_epsilon));
        if let Some(p) = &self.qtable_load {
            line(format!("qtable_load {}", p.display()));
        }
        if let Some(p) = &self.qtable_save {
            line(format!("qtable_save {}", p.display()));
        }
        line(format!("scale {}", self.scale));
        line(format!("seed {}", self.seed));
        line(format!("placement {}", self.placement.label()));
        line(format!("queue {}", self.queue.describe()));
        line(format!("sched {}", self.sched.label()));
        line(format!("eager_threshold {}", self.eager_threshold));
        if let Some(h) = self.horizon {
            line(format!("horizon {h}ps"));
        }
        line(format!("max_events {}", self.max_events));
        line(format!("bin_width {}ps", self.bin_width));
        line(format!("record_latencies {}", self.record_latencies));
        line(format!("record_ports {}", self.record_ports));
        line(format!(
            "rates {}",
            self.rates.iter().map(|r| r.to_string()).collect::<Vec<_>>().join(",")
        ));
        line(format!("jobs {}", self.jobs));
        line(format!("apps {}", self.apps.iter().map(|a| a.name()).collect::<Vec<_>>().join(",")));
        if !self.sizes.is_empty() {
            line(format!(
                "sizes {}",
                self.sizes.iter().map(|s| s.to_string()).collect::<Vec<_>>().join(",")
            ));
        }
        if !self.targets.is_empty() {
            line(format!(
                "targets {}",
                self.targets.iter().map(|a| a.name()).collect::<Vec<_>>().join(",")
            ));
        }
        line(format!("train {}", self.train.name()));
        if let Some(p) = &self.snapshot {
            line(format!("snapshot {}", p.display()));
        }
        if let Some(p) = &self.trace {
            line(format!("trace {}", p.display()));
        }
        if self.cache.enabled() {
            line(format!("cache {}", self.cache.describe()));
        }
        line(format!("threads {}", self.threads));
        out
    }

    // -- layering ----------------------------------------------------------

    /// Resolve the effective spec for a binary: `self` (the binary's
    /// defaults) `< --spec FILE < environment < command line`, then
    /// validate. The one place every knob source meets — binaries never
    /// read `std::env::var` themselves. Only the core environment
    /// variables ([`CORE_ENV`]) are consulted; front-ends that
    /// historically listened to the generic workload/sweep names
    /// ([`EXTENDED_ENV`]) opt in via [`Self::resolve_env`].
    pub fn resolve(self, args: &[String]) -> Result<Self, SpecError> {
        self.resolve_env(&[], args)
    }

    /// [`Self::resolve`] plus the listed [`EXTENDED_ENV`] variables. The
    /// extended names (`TARGET`, `JOBS`, `APPS`, …) are generic enough to
    /// collide with unrelated shell/CI variables, so each front-end names
    /// exactly the ones it documents instead of all of them ambient.
    pub fn resolve_env(self, extra_env: &[&str], args: &[String]) -> Result<Self, SpecError> {
        self.resolve_env_with(extra_env, |var| std::env::var(var).ok(), args)
    }

    /// [`Self::resolve`] with an injectable environment (tests layer over
    /// a map instead of mutating the process environment).
    pub fn resolve_with<F>(self, env: F, args: &[String]) -> Result<Self, SpecError>
    where
        F: Fn(&str) -> Option<String>,
    {
        self.resolve_env_with(&[], env, args)
    }

    /// [`Self::resolve_env`] with an injectable environment.
    pub fn resolve_env_with<F>(
        self,
        extra_env: &[&str],
        env: F,
        args: &[String],
    ) -> Result<Self, SpecError>
    where
        F: Fn(&str) -> Option<String>,
    {
        let mut spec = self;
        // Layer 2: spec files, in command-line order.
        let mut i = 0;
        while i < args.len() {
            if args[i] == "--spec" {
                let path = args.get(i + 1).ok_or_else(|| SpecError::Flag {
                    flag: "--spec".to_string(),
                    msg: "needs a file path".to_string(),
                })?;
                spec = spec.loaded_over(path)?;
                i += 1;
            }
            i += 1;
        }
        // Layer 3: environment. Layer 4: command line.
        spec = spec.apply_env(&env, extra_env)?;
        spec = spec.apply_cli(args)?;
        spec.validate()?;
        Ok(spec)
    }

    /// Apply the environment layer: every [`CORE_ENV`] variable plus the
    /// [`EXTENDED_ENV`] subset the front-end opted into. Every variable is
    /// parsed strictly: an invalid value is a named hard error, never a
    /// silent default.
    fn apply_env<F>(mut self, env: &F, extra_env: &[&str]) -> Result<Self, SpecError>
    where
        F: Fn(&str) -> Option<String>,
    {
        for var in extra_env {
            if !EXTENDED_ENV.contains(var) {
                return Err(SpecError::Invalid {
                    msg: format!(
                        "unknown extended env var '{var}' (valid: {})",
                        EXTENDED_ENV.join(", ")
                    ),
                });
            }
        }
        let extended = |var: &str| extra_env.contains(&var).then(|| env(var)).flatten();
        fn err(var: &str, value: &str, msg: impl Into<String>) -> SpecError {
            SpecError::Env { var: var.to_string(), value: value.to_string(), msg: msg.into() }
        }
        macro_rules! layer {
            ($source:expr, $var:literal, $parse:expr, $apply:expr) => {
                if let Some(v) = ($source)($var) {
                    #[allow(clippy::redundant_closure_call)]
                    match ($parse)(v.as_str()) {
                        Ok(parsed) => ($apply)(&mut self, parsed),
                        Err(msg) => return Err(err($var, &v, msg)),
                    }
                }
            };
        }
        layer!(env, "SCALE", parse_f64, |s: &mut Self, v| s.scale = v);
        layer!(
            env,
            "SEED",
            |v: &str| v.parse::<u64>().map_err(|_| "expected an unsigned integer".to_string()),
            |s: &mut Self, v| s.seed = v
        );
        layer!(env, "QUEUE", |v: &str| v.parse::<QueueBackend>(), |s: &mut Self, v| s.queue = v);
        layer!(env, "ROUTING", lookup_list::<RoutingAlgo>, |s: &mut Self, v| s.routings = v);
        layer!(env, "PLACEMENT", lookup::<Placement>, |s: &mut Self, v| s.placement = v);
        layer!(env, "SCHED", lookup::<SchedPolicy>, |s: &mut Self, v| s.sched = v);
        layer!(
            env,
            "THREADS",
            |v: &str| v.parse::<usize>().map_err(|_| "expected a thread count".to_string()),
            |s: &mut Self, v| s.threads = v
        );
        layer!(env, "CACHE", CacheMode::parse, |s: &mut Self, v| s.cache = v);
        layer!(extended, "RATES", parse_f64_list, |s: &mut Self, v| s.rates = v);
        layer!(
            extended,
            "JOBS",
            |v: &str| v.parse::<u32>().map_err(|_| "expected a job count".to_string()),
            |s: &mut Self, v| s.jobs = v
        );
        layer!(extended, "APPS", lookup_list::<AppKind>, |s: &mut Self, v| s.apps = v);
        layer!(extended, "SIZES", parse_u32_list, |s: &mut Self, v| s.sizes = v);
        layer!(extended, "TARGETS", lookup_list::<AppKind>, |s: &mut Self, v| s.targets = v);
        layer!(extended, "TRAIN", lookup::<AppKind>, |s: &mut Self, v| s.train = v);
        layer!(extended, "SNAPSHOT", parse_path, |s: &mut Self, v| s.snapshot = Some(v));
        if let Some(v) = extended("TARGET") {
            let kind: AppKind = lookup(&v).map_err(|m| err("TARGET", &v, m))?;
            match &mut self.workload {
                Workload::Standalone(t) => *t = kind,
                Workload::Pairwise { target, .. } => *target = kind,
                _ => {
                    return Err(err("TARGET", &v, "only applies to standalone/pairwise workloads"))
                }
            }
        }
        if let Some(v) = extended("BG") {
            let background = if v.eq_ignore_ascii_case("none") {
                None
            } else {
                Some(lookup::<AppKind>(&v).map_err(|m| err("BG", &v, m))?)
            };
            match &mut self.workload {
                Workload::Pairwise { background: bg, .. } => *bg = background,
                _ => return Err(err("BG", &v, "only applies to the pairwise workload")),
            }
        }
        Ok(self)
    }

    /// Apply the command-line layer. Presentation flags (`--csv`,
    /// `--engine-stats`, `--smoke` interception by smoke binaries) are the
    /// caller's business; everything unknown is a named error.
    fn apply_cli(mut self, args: &[String]) -> Result<Self, SpecError> {
        let mut smoke = false;
        let mut i = 0;
        let value = |args: &[String], i: &mut usize, flag: &str| -> Result<String, SpecError> {
            *i += 1;
            args.get(*i).cloned().ok_or_else(|| SpecError::Flag {
                flag: flag.to_string(),
                msg: "needs a value".to_string(),
            })
        };
        fn flag_err(flag: &str, msg: impl Into<String>) -> SpecError {
            SpecError::Flag { flag: flag.to_string(), msg: msg.into() }
        }
        while i < args.len() {
            let a = args[i].as_str();
            match a {
                "--spec" => {
                    i += 1; // file layer already applied in resolve()
                }
                "--routing" => {
                    let v = value(args, &mut i, a)?;
                    self.routings = lookup_list(&v).map_err(|m| flag_err(a, m))?;
                }
                "--scale" => {
                    let v = value(args, &mut i, a)?;
                    self.scale = parse_f64(&v).map_err(|m| flag_err(a, m))?;
                }
                "--seed" => {
                    let v = value(args, &mut i, a)?;
                    self.seed =
                        v.parse().map_err(|_| flag_err(a, "expected an unsigned integer"))?;
                }
                "--queue" => {
                    let v = value(args, &mut i, a)?;
                    self.queue = v.parse().map_err(|m: String| flag_err(a, m))?;
                }
                "--placement" => {
                    let v = value(args, &mut i, a)?;
                    self.placement = lookup(&v).map_err(|m| flag_err(a, m))?;
                }
                "--contiguous" => self.placement = Placement::Contiguous,
                "--sched" => {
                    let v = value(args, &mut i, a)?;
                    self.sched = lookup(&v).map_err(|m| flag_err(a, m))?;
                }
                "--rate" => {
                    let v = value(args, &mut i, a)?;
                    self.rates = vec![parse_f64(&v).map_err(|m| flag_err(a, m))?];
                }
                "--rates" => {
                    let v = value(args, &mut i, a)?;
                    self.rates = parse_f64_list(&v).map_err(|m| flag_err(a, m))?;
                }
                "--jobs" => {
                    let v = value(args, &mut i, a)?;
                    self.jobs = v.parse().map_err(|_| flag_err(a, "expected a job count"))?;
                }
                "--apps" => {
                    let v = value(args, &mut i, a)?;
                    self.apps = lookup_list(&v).map_err(|m| flag_err(a, m))?;
                }
                "--sizes" => {
                    let v = value(args, &mut i, a)?;
                    self.sizes = parse_u32_list(&v).map_err(|m| flag_err(a, m))?;
                }
                "--targets" => {
                    let v = value(args, &mut i, a)?;
                    self.targets = lookup_list(&v).map_err(|m| flag_err(a, m))?;
                }
                "--train" => {
                    let v = value(args, &mut i, a)?;
                    self.train = lookup(&v).map_err(|m| flag_err(a, m))?;
                }
                "--snapshot" => {
                    let v = value(args, &mut i, a)?;
                    self.snapshot = Some(parse_path(&v).map_err(|m| flag_err(a, m))?);
                }
                "--trace" => {
                    let v = value(args, &mut i, a)?;
                    self.trace = Some(parse_path(&v).map_err(|m| flag_err(a, m))?);
                }
                "--cache" => {
                    // The value is optional: bare `--cache` (next arg absent
                    // or another flag) means `on`; otherwise `on`/`off`/DIR.
                    match args.get(i + 1).filter(|v| !v.starts_with("--")) {
                        Some(v) => {
                            self.cache = CacheMode::parse(v).map_err(|m| flag_err(a, m))?;
                            i += 1;
                        }
                        None => self.cache = CacheMode::On,
                    }
                }
                "--no-cache" => self.cache = CacheMode::Off,
                "--threads" => {
                    let v = value(args, &mut i, a)?;
                    self.threads = v.parse().map_err(|_| flag_err(a, "expected a thread count"))?;
                }
                "--groups" | "--routers" | "--nodes" | "--globals" => {
                    let v = value(args, &mut i, a)?;
                    let n: u32 =
                        v.parse().map_err(|_| flag_err(a, "expected an unsigned integer"))?;
                    match a {
                        "--groups" => self.params.groups = n,
                        "--routers" => self.params.routers_per_group = n,
                        "--nodes" => self.params.nodes_per_router = n,
                        _ => self.params.globals_per_router = n,
                    }
                }
                "--horizon" => {
                    let v = value(args, &mut i, a)?;
                    self.horizon = Some(parse_duration(&v).map_err(|m| flag_err(a, m))?);
                }
                "--qtable" => {
                    let v = value(args, &mut i, a)?;
                    match v.split_once('=') {
                        Some(("save", p)) if !p.is_empty() => self.qtable_save = Some(p.into()),
                        Some(("load", p)) if !p.is_empty() => self.qtable_load = Some(p.into()),
                        _ => {
                            return Err(flag_err(
                                a,
                                format!(
                                    "invalid '{v}' (valid forms: --qtable save=PATH, --qtable \
                                     load=PATH)"
                                ),
                            ))
                        }
                    }
                }
                "--smoke" => smoke = true,
                // Presentation flags other layers own; accepted so every
                // binary can combine them freely with spec flags.
                "--csv" | "--engine-stats" => {}
                other if other.starts_with("--") => {
                    return Err(SpecError::UnknownFlag { flag: other.to_string() })
                }
                other => {
                    return Err(SpecError::Flag {
                        flag: other.to_string(),
                        msg: "unexpected argument".to_string(),
                    })
                }
            }
            i += 1;
        }
        if smoke {
            // CI smoke override: the 72-node test system at a fast scale,
            // applied after every other layer so any spec smokes quickly.
            self.params = DragonflyParams::tiny_72();
            self.scale = self.scale.max(2_048.0);
        }
        Ok(self)
    }

    // -- validation & projection -------------------------------------------

    /// Validate the resolved spec (semantic constraints; the parse layers
    /// already rejected syntactic problems).
    pub fn validate(&self) -> Result<(), SpecError> {
        let invalid = |msg: String| SpecError::Invalid { msg };
        self.params.validate().map_err(|e| invalid(e.to_string()))?;
        if self.scale < 1.0 || !self.scale.is_finite() {
            return Err(invalid(format!("scale must be ≥ 1, got {}", self.scale)));
        }
        if self.timing.bandwidth_gbps == 0
            || self.timing.flit_bytes == 0
            || self.timing.packet_bytes == 0
        {
            return Err(invalid(
                "timing bandwidth_gbps, flit_bytes and packet_bytes must be positive".into(),
            ));
        }
        if !self.timing.packet_bytes.is_multiple_of(self.timing.flit_bytes) {
            return Err(invalid("packet size must be a multiple of the flit size".into()));
        }
        if self.max_events == 0 {
            return Err(invalid("max_events must be positive".into()));
        }
        if self.bin_width == 0 {
            return Err(invalid("bin_width must be positive".into()));
        }
        if self.routings.is_empty() {
            return Err(invalid("the routing set must not be empty".into()));
        }
        if !(self.qa_alpha > 0.0 && self.qa_alpha <= 1.0) {
            return Err(invalid(format!("qa_alpha must be in (0, 1], got {}", self.qa_alpha)));
        }
        if !(0.0..=1.0).contains(&self.qa_epsilon) {
            return Err(invalid(format!("qa_epsilon must be in [0, 1], got {}", self.qa_epsilon)));
        }
        if (self.qtable_load.is_some() || self.qtable_save.is_some())
            && !self.routings.contains(&RoutingAlgo::QAdaptive)
        {
            return Err(invalid(format!(
                "Q-table lifecycle knobs (qtable_load/qtable_save) require Q-adaptive routing, \
                 got {}",
                self.routings.iter().map(|r| r.label()).collect::<Vec<_>>().join(",")
            )));
        }
        if let Some(bad) = self.rates.iter().find(|r| !(**r > 0.0 && r.is_finite())) {
            return Err(invalid(format!("every rate must be a positive arrival rate, got {bad}")));
        }
        if self.apps.is_empty() {
            return Err(invalid("the app set must not be empty".into()));
        }
        if let Some(bad) = self.sizes.iter().find(|&&s| s == 0) {
            return Err(invalid(format!("job sizes must be positive, got {bad}")));
        }
        match &self.workload {
            Workload::Jobs(jobs) if jobs.is_empty() => {
                return Err(invalid("the job list must not be empty".into()))
            }
            Workload::Scenario(arrivals) if arrivals.is_empty() => {
                return Err(invalid("the scenario arrival list must not be empty".into()))
            }
            Workload::Poisson => {
                if self.rates.is_empty() {
                    return Err(invalid("a poisson workload needs at least one rate".into()));
                }
                if self.jobs == 0 {
                    return Err(invalid("a poisson workload needs jobs ≥ 1".into()));
                }
            }
            _ => {}
        }
        Ok(())
    }

    /// The single routing of this spec (sweep binaries iterate
    /// [`Self::routings`] instead).
    pub fn routing(&self) -> RoutingAlgo {
        self.routings.first().copied().unwrap_or(RoutingAlgo::UgalG)
    }

    /// This spec specialized to one sweep cell: the given routing only,
    /// with the Q-table lifecycle knobs kept only on Q-adaptive cells (the
    /// other algorithms carry no Q-tables, and validation rejects lifecycle
    /// knobs on them rather than ignoring them silently).
    pub fn cell(&self, routing: RoutingAlgo) -> ExperimentSpec {
        let mut c = self.clone();
        c.routings = vec![routing];
        // Sweeps parallelize across cells (`threads` sizes that pool); each
        // cell itself runs single-partition so the two levels don't multiply.
        c.threads = 0;
        // One trace path cannot serve many concurrent cells: cells would
        // clobber each other's file, so sweeps drop the knob rather than
        // write a corrupt interleaving.
        c.trace = None;
        if routing != RoutingAlgo::QAdaptive {
            c.qtable_load = None;
            c.qtable_save = None;
        }
        c
    }

    /// The [`SimConfig`] this spec implies under `routing`.
    pub fn sim_for(&self, routing: RoutingAlgo) -> SimConfig {
        SimConfig {
            params: self.params,
            timing: self.timing,
            routing: RoutingConfig {
                algo: routing,
                ugal_bias: self.ugal_bias,
                nonmin_samples: self.nonmin_samples,
                qa: QaParams { alpha: self.qa_alpha, epsilon: self.qa_epsilon },
                qtable_init: match &self.qtable_load {
                    Some(p) => QTableInit::load(p),
                    None => QTableInit::Cold,
                },
            },
            recorder: RecorderConfig {
                bin_width: self.bin_width,
                record_latencies: self.record_latencies,
                record_ports: self.record_ports,
            },
            scale: self.scale,
            seed: self.seed,
            eager_threshold: self.eager_threshold,
            horizon: self.horizon,
            max_events: self.max_events,
            queue: self.queue,
            qtable_save: self.qtable_save.clone(),
            trace: self.trace.clone(),
            threads: self.threads,
        }
    }

    /// The [`SimConfig`] of this spec's first routing.
    pub fn sim(&self) -> SimConfig {
        self.sim_for(self.routing())
    }

    /// The campaign-level [`StudyConfig`] of this spec's first routing
    /// (compatibility projection for the preset helpers).
    pub fn study(&self) -> StudyConfig {
        StudyConfig {
            routing: self.routing(),
            scale: self.scale,
            seed: self.seed,
            placement: self.placement,
            params: self.params,
            queue: self.queue,
            qtable_init: match &self.qtable_load {
                Some(p) => QTableInit::load(p),
                None => QTableInit::Cold,
            },
            qtable_save: self.qtable_save.clone(),
        }
    }

    /// Lift a legacy [`StudyConfig`] into a spec (everything the study
    /// does not express keeps its default, exactly as `StudyConfig::sim`
    /// filled with `SimConfig::default`).
    pub fn from_study(study: &StudyConfig) -> Self {
        Self {
            params: study.params,
            routings: vec![study.routing],
            scale: study.scale,
            seed: study.seed,
            placement: study.placement,
            queue: study.queue,
            qtable_load: match &study.qtable_init {
                QTableInit::Load(p) => Some(p.clone()),
                QTableInit::Cold => None,
            },
            qtable_save: study.qtable_save.clone(),
            ..Default::default()
        }
    }

    /// Builder-style workload replacement.
    pub fn with_workload(mut self, workload: Workload) -> Self {
        self.workload = workload;
        self
    }
}

// ---------------------------------------------------------------------------
// Scalar parsers (shared by file, env and CLI layers)
// ---------------------------------------------------------------------------

/// Parse a finite f64.
fn parse_f64(s: &str) -> Result<f64, String> {
    s.trim()
        .parse::<f64>()
        .ok()
        .filter(|v| v.is_finite())
        .ok_or_else(|| format!("invalid number '{s}'"))
}

/// Parse a comma-separated list of finite f64s (non-empty).
fn parse_f64_list(s: &str) -> Result<Vec<f64>, String> {
    let v: Vec<f64> =
        s.split(',').filter(|p| !p.trim().is_empty()).map(parse_f64).collect::<Result<_, _>>()?;
    if v.is_empty() {
        return Err("empty number list".to_string());
    }
    Ok(v)
}

/// Parse a comma-separated list of u32s (non-empty).
fn parse_u32_list(s: &str) -> Result<Vec<u32>, String> {
    let v: Vec<u32> = s
        .split(',')
        .filter(|p| !p.trim().is_empty())
        .map(|p| p.trim().parse().map_err(|_| format!("invalid entry '{}' (u32)", p.trim())))
        .collect::<Result<_, _>>()?;
    if v.is_empty() {
        return Err("empty number list".to_string());
    }
    Ok(v)
}

/// Parse a boolean (`true`/`false`).
fn parse_bool(s: &str) -> Result<bool, String> {
    match s.trim() {
        "true" => Ok(true),
        "false" => Ok(false),
        other => Err(format!("invalid boolean '{other}' (true, false)")),
    }
}

/// Parse a non-empty path.
fn parse_path(s: &str) -> Result<PathBuf, String> {
    let s = s.trim();
    if s.is_empty() {
        return Err("empty path".to_string());
    }
    Ok(PathBuf::from(s))
}

/// Parse a `k=v k=v …` line, feeding each pair to `apply`.
fn parse_kv_line(
    rest: &str,
    mut apply: impl FnMut(&str, &str) -> Result<(), String>,
) -> Result<(), String> {
    if rest.is_empty() {
        return Err("expected key=value pairs".to_string());
    }
    for pair in rest.split_whitespace() {
        let (k, v) =
            pair.split_once('=').ok_or_else(|| format!("expected key=value, got '{pair}'"))?;
        apply(k, v)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_spec_matches_the_default_configs() {
        let spec = ExperimentSpec::default();
        spec.validate().unwrap();
        // The bit-identity contract: an empty spec implies exactly the
        // config the old entry points defaulted to.
        assert_eq!(spec.sim(), SimConfig::default());
        let study = spec.study();
        assert_eq!(study.routing, StudyConfig::default().routing);
        assert_eq!(study.scale, StudyConfig::default().scale);
        assert_eq!(study.queue, StudyConfig::default().queue);
    }

    #[test]
    fn registry_lookups_are_case_insensitive_and_list_valid_names() {
        assert_eq!(lookup::<RoutingAlgo>("q-ADP").unwrap(), RoutingAlgo::QAdaptive);
        assert_eq!(lookup::<AppKind>("fft3d").unwrap(), AppKind::FFT3D);
        assert_eq!(lookup::<Placement>("Contiguous").unwrap(), Placement::Contiguous);
        assert_eq!(lookup::<SchedPolicy>("easy").unwrap(), SchedPolicy::Backfill);
        let err = lookup::<RoutingAlgo>("warp").unwrap_err();
        for r in RoutingAlgo::ALL {
            assert!(err.contains(r.label()), "error must list {}: {err}", r.label());
        }
        assert!(lookup_list::<AppKind>(" , ,").is_err(), "empty lists must not be silent no-ops");
    }

    #[test]
    fn workload_forms_round_trip() {
        let forms = [
            Workload::Standalone(AppKind::LQCD),
            Workload::pairwise(AppKind::FFT3D, Some(AppKind::Halo3D)),
            Workload::pairwise(AppKind::FFT3D, None),
            Workload::Mixed,
            Workload::jobs(vec![JobSpec::sized(AppKind::UR, 36), JobSpec::idle(4)]),
            Workload::Scenario(parse_arrival_list("UR:36@0,LU:16@0.5ms").unwrap()),
            Workload::Poisson,
        ];
        for w in forms {
            let text = w.describe();
            assert_eq!(Workload::parse(&text).unwrap(), w, "{text}");
        }
        assert!(Workload::parse("jobs").is_err(), "empty job list");
        assert!(Workload::parse("mixed extra").is_err());
        assert!(Workload::parse("quantum").is_err());
    }

    #[test]
    fn emit_parse_emit_is_byte_identical() {
        let spec = ExperimentSpec {
            workload: Workload::pairwise(AppKind::LQCD, Some(AppKind::Stencil5D)),
            routings: vec![RoutingAlgo::Par, RoutingAlgo::QAdaptive],
            scale: 4096.0,
            horizon: Some(MILLISECOND),
            sizes: vec![18, 36],
            qtable_load: Some("/tmp/q.snap".into()),
            qtable_save: Some("/tmp/q2.snap".into()),
            cache: CacheMode::Dir("/tmp/cache".into()),
            ..Default::default()
        };
        let text = spec.emit();
        let parsed = ExperimentSpec::parse(&text).unwrap();
        assert_eq!(parsed, spec, "parse(emit(s)) must be the identity");
        assert_eq!(parsed.emit(), text, "emit is canonical");
    }

    #[test]
    fn layering_defaults_file_env_cli() {
        let file = format!("{SPEC_HEADER}\nscale 128\nseed 7\nrouting PAR\n");
        let dir = std::env::temp_dir().join(format!("dfsim_spec_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("layering.spec");
        std::fs::write(&path, &file).unwrap();
        let env = |var: &str| match var {
            "SEED" => Some("11".to_string()),
            "ROUTING" => Some("UGALn".to_string()),
            _ => None,
        };
        let args: Vec<String> =
            ["--spec", path.to_str().unwrap(), "--routing", "Q-adp"].map(String::from).to_vec();
        let spec = ExperimentSpec::default().resolve_with(env, &args).unwrap();
        assert_eq!(spec.scale, 128.0, "file overrides defaults");
        assert_eq!(spec.seed, 11, "env overrides the file");
        assert_eq!(spec.routings, vec![RoutingAlgo::QAdaptive], "CLI overrides env");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn invalid_env_values_are_hard_errors_naming_the_variable() {
        let env = |var: &str| (var == "SCALE").then(|| "6O".to_string());
        let err = ExperimentSpec::default().resolve_with(env, &[]).unwrap_err();
        match err {
            SpecError::Env { ref var, ref value, .. } => {
                assert_eq!(var, "SCALE");
                assert_eq!(value, "6O");
            }
            other => panic!("expected an Env error, got {other:?}"),
        }
        assert!(err.to_string().contains("SCALE"), "{err}");
        assert!(err.to_string().contains("6O"), "{err}");
    }

    #[test]
    fn named_parse_errors() {
        let hdr = SPEC_HEADER;
        // Version mismatch.
        assert!(matches!(
            ExperimentSpec::parse("dfsim-spec v9\n").unwrap_err(),
            SpecError::Version { .. }
        ));
        // Unknown and duplicate keys.
        assert!(matches!(
            ExperimentSpec::parse(&format!("{hdr}\nwarp 9\n")).unwrap_err(),
            SpecError::UnknownKey { line: 2, .. }
        ));
        assert!(matches!(
            ExperimentSpec::parse(&format!("{hdr}\nseed 1\nseed 2\n")).unwrap_err(),
            SpecError::DuplicateKey { line: 3, .. }
        ));
        // A named value error for every scalar field class.
        for bad in [
            "workload quantum",
            "topology groups=many",
            "timing warp_factor=9",
            "routing warp",
            "ugal_bias x",
            "nonmin_samples x",
            "qa_alpha x",
            "qa_epsilon x",
            "qtable_load ",
            "scale 6O",
            "seed -1",
            "placement sideways",
            "queue abacus",
            "sched lifo",
            "eager_threshold x",
            "horizon fast",
            "max_events x",
            "bin_width fast",
            "record_latencies maybe",
            "record_ports maybe",
            "rates x",
            "jobs x",
            "apps Quake",
            "sizes x",
            "targets Quake",
            "train Quake",
            "snapshot ",
            "trace ",
            "cache ",
            "threads x",
        ] {
            let err = ExperimentSpec::parse(&format!("{hdr}\n{bad}\n")).unwrap_err();
            assert!(
                matches!(err, SpecError::Value { line: 2, .. }),
                "'{bad}' should be a named value error, got {err:?}"
            );
        }
        // Missing header.
        assert!(matches!(
            ExperimentSpec::parse("# only a comment\n").unwrap_err(),
            SpecError::Malformed { .. }
        ));
    }

    #[test]
    fn semantic_validation_names_the_constraint() {
        let spec = ExperimentSpec { scale: 0.5, ..Default::default() };
        assert!(spec.validate().unwrap_err().to_string().contains("scale"));
        let mut spec =
            ExperimentSpec { qtable_load: Some("/tmp/q.snap".into()), ..Default::default() };
        let err = spec.validate().unwrap_err().to_string();
        assert!(err.contains("Q-adaptive"), "{err}");
        spec.routings = vec![RoutingAlgo::QAdaptive];
        spec.validate().unwrap();
    }

    #[test]
    fn cell_strips_lifecycle_knobs_from_non_qadaptive_cells() {
        let spec = ExperimentSpec {
            routings: RoutingAlgo::PAPER_SET.to_vec(),
            qtable_load: Some("/tmp/q.snap".into()),
            cache: CacheMode::On,
            ..Default::default()
        };
        let par = spec.cell(RoutingAlgo::Par);
        assert!(par.qtable_load.is_none());
        assert_eq!(par.cache, spec.cache, "cells keep the cache mode");
        par.sim().validate().unwrap();
        let qadp = spec.cell(RoutingAlgo::QAdaptive);
        assert_eq!(qadp.qtable_load, Some("/tmp/q.snap".into()));
    }

    #[test]
    fn unknown_flags_and_arguments_are_named_errors() {
        let args = |list: &[&str]| list.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        assert!(matches!(
            ExperimentSpec::default().resolve_with(|_| None, &args(&["--warp"])).unwrap_err(),
            SpecError::UnknownFlag { .. }
        ));
        assert!(matches!(
            ExperimentSpec::default().resolve_with(|_| None, &args(&["--scale"])).unwrap_err(),
            SpecError::Flag { .. }
        ));
        assert!(matches!(
            ExperimentSpec::default().resolve_with(|_| None, &args(&["stray"])).unwrap_err(),
            SpecError::Flag { .. }
        ));
        // Presentation flags pass through untouched.
        let spec = ExperimentSpec::default()
            .resolve_with(|_| None, &args(&["--csv", "--engine-stats"]))
            .unwrap();
        assert_eq!(spec, ExperimentSpec::default());
    }

    #[test]
    fn cache_flag_forms_and_layering() {
        let args = |list: &[&str]| list.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        let spec = ExperimentSpec::default().resolve_with(|_| None, &args(&["--cache"])).unwrap();
        assert_eq!(spec.cache, CacheMode::On, "bare --cache means on");
        let spec = ExperimentSpec::default()
            .resolve_with(|_| None, &args(&["--cache", "/tmp/c"]))
            .unwrap();
        assert_eq!(spec.cache, CacheMode::Dir("/tmp/c".into()));
        let spec =
            ExperimentSpec::default().resolve_with(|_| None, &args(&["--cache", "--csv"])).unwrap();
        assert_eq!(spec.cache, CacheMode::On, "a following flag is not the cache value");
        let env = |var: &str| (var == "CACHE").then(|| "/env/c".to_string());
        let spec = ExperimentSpec::default().resolve_with(env, &args(&[])).unwrap();
        assert_eq!(spec.cache, CacheMode::Dir("/env/c".into()), "CACHE env layers in");
        let spec = ExperimentSpec::default().resolve_with(env, &args(&["--no-cache"])).unwrap();
        assert_eq!(spec.cache, CacheMode::Off, "CLI overrides env");
    }

    #[test]
    fn smoke_flag_shrinks_to_the_test_system() {
        let args: Vec<String> = vec!["--smoke".to_string()];
        let spec = ExperimentSpec::default().resolve_with(|_| None, &args).unwrap();
        assert_eq!(spec.params, DragonflyParams::tiny_72());
        assert!(spec.scale >= 2_048.0);
    }
}
