//! Deterministic parallel execution of independent simulations.
//!
//! The study's parallelism lives *across* configurations (one simulation
//! per routing × workload combination), never inside one simulation, so
//! determinism is preserved: results land in input order regardless of
//! thread scheduling.

use parking_lot::Mutex;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Map `f` over `items` on up to `threads` worker threads (0 = all
/// available cores; explicit counts are capped at the machine's available
/// parallelism — oversubscribing cores only adds scheduler churn),
/// returning results in input order.
///
/// A panic inside `f` is re-raised on the calling thread with its
/// *original* payload (`std::panic::resume_unwind`), so a failed sweep
/// shows the real assertion message instead of a generic "worker
/// panicked". When several workers panic, the first captured payload wins
/// and the remaining workers stop picking up new items.
pub fn parallel_map<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let avail = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(4);
    let threads = if threads == 0 { avail } else { threads.min(avail) }.min(n);
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }

    let work: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    let panicked = AtomicBool::new(false);
    let payload: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);

    crossbeam::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|_| loop {
                if panicked.load(Ordering::Relaxed) {
                    break; // drain fast once a sibling failed
                }
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = work[i].lock().take().expect("each slot taken once");
                match std::panic::catch_unwind(AssertUnwindSafe(|| f(item))) {
                    Ok(r) => *results[i].lock() = Some(r),
                    Err(p) => {
                        let mut slot = payload.lock();
                        if slot.is_none() {
                            *slot = Some(p);
                        }
                        panicked.store(true, Ordering::Relaxed);
                        break;
                    }
                }
            });
        }
    })
    .expect("worker thread died outside catch_unwind");

    if let Some(p) = payload.into_inner() {
        std::panic::resume_unwind(p);
    }
    results.into_iter().map(|m| m.into_inner().expect("all slots filled")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let out = parallel_map((0..100).collect(), 8, |i: i32| i * 2);
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_fallback() {
        let out = parallel_map(vec![1, 2, 3], 1, |i| i + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn empty_input() {
        let out: Vec<i32> = parallel_map(Vec::<i32>::new(), 4, |i| i);
        assert!(out.is_empty());
    }

    /// Regression: a worker panic used to die as `.expect("worker
    /// panicked")`, destroying the payload. The caller must see the
    /// original assertion message.
    #[test]
    fn worker_panic_preserves_the_original_payload() {
        let caught = std::panic::catch_unwind(|| {
            parallel_map((0..16).collect::<Vec<i32>>(), 4, |i| {
                assert!(i != 11, "sweep cell {i} exploded");
                i
            })
        })
        .expect_err("the panic must propagate");
        let msg = caught
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| caught.downcast_ref::<&str>().map(|s| s.to_string()))
            .expect("payload should be a message");
        assert!(msg.contains("sweep cell 11 exploded"), "payload lost: {msg}");
    }

    /// An absurd thread request must not translate into an absurd pool:
    /// the count is capped at the machine's parallelism, and the sweep
    /// still completes in input order.
    #[test]
    fn oversubscribed_thread_count_is_capped_and_correct() {
        let out = parallel_map((0..64).collect(), 100_000, |i: i32| i * 3);
        assert_eq!(out, (0..64).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn uneven_work_still_ordered() {
        let out = parallel_map((0..32).collect(), 4, |i: u64| {
            // Vary the work per item to shake the scheduler.
            let mut x = i;
            for _ in 0..(i % 7) * 10_000 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            (i, x)
        });
        for (idx, (i, _)) in out.iter().enumerate() {
            assert_eq!(idx as u64, *i);
        }
    }
}
