//! Deterministic parallel execution of independent simulations.
//!
//! The study's parallelism lives *across* configurations (one simulation
//! per routing × workload combination), never inside one simulation, so
//! determinism is preserved: results land in input order regardless of
//! thread scheduling.
//!
//! Worker threads are spawned **once** per process (a lazily-built shared
//! pool) and reused by every [`parallel_map`] call, instead of paying a
//! full spawn/join cycle per cell batch. Nested or concurrent calls — the
//! pool serves one job at a time — fall back to the classic scoped-spawn
//! path, so composition never deadlocks.

use parking_lot::Mutex;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex as StdMutex, MutexGuard, OnceLock, PoisonError};

/// Declared lock-acquisition order of this file, parsed out of the source
/// and enforced by `dfsim-lint`'s lock-discipline rule: a thread already
/// holding one of these locks may only take locks that appear *later* in
/// the list. `work` and `results` are the per-slot sweep mutexes,
/// `payload` the first-panic slot, `state` the shared pool's accounting.
pub const LOCK_ORDER: [&str; 4] = ["work", "results", "payload", "state"];

/// Map `f` over `items` on up to `threads` worker threads (0 = all
/// available cores; explicit counts are capped at the machine's available
/// parallelism — oversubscribing cores only adds scheduler churn),
/// returning results in input order.
///
/// A panic inside `f` is re-raised on the calling thread with its
/// *original* payload (`std::panic::resume_unwind`), so a failed sweep
/// shows the real assertion message instead of a generic "worker
/// panicked". When several workers panic, the first captured payload wins
/// and the remaining workers stop picking up new items.
pub fn parallel_map<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let avail = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(4);
    let threads = if threads == 0 { avail } else { threads.min(avail) };
    parallel_map_at(items, threads, f)
}

/// [`parallel_map`] at an exact executor count (no availability cap). The
/// public entry caps; tests use this to exercise the pooled path on any
/// host.
fn parallel_map_at<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = threads.min(n);
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }

    let work: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    let panicked = AtomicBool::new(false);
    let payload: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);

    // One executor's share of the sweep: pull the next unclaimed index
    // until the cursor runs dry (or a sibling panicked). Runs identically
    // on a pool worker, a scoped thread, or the calling thread itself.
    let worker = || loop {
        if panicked.load(Ordering::Relaxed) {
            break; // drain fast once a sibling failed
        }
        let i = cursor.fetch_add(1, Ordering::Relaxed);
        if i >= n {
            break;
        }
        let item = work[i].lock().take().expect("each slot taken once");
        match std::panic::catch_unwind(AssertUnwindSafe(|| f(item))) {
            Ok(r) => *results[i].lock() = Some(r),
            Err(p) => {
                let mut slot = payload.lock();
                if slot.is_none() {
                    *slot = Some(p);
                }
                panicked.store(true, Ordering::Relaxed);
                break;
            }
        }
    };

    if !shared_pool_run(threads, &worker) {
        // The pool is serving another call (nested/concurrent sweeps):
        // fall back to a one-shot scoped spawn rather than queueing behind
        // it — correctness first, reuse when it's free.
        crossbeam::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|_| worker());
            }
        })
        .expect("worker thread died outside catch_unwind");
    }

    if let Some(p) = payload.into_inner() {
        std::panic::resume_unwind(p);
    }
    results.into_iter().map(|m| m.into_inner().expect("all slots filled")).collect()
}

// ---------------------------------------------------------------------------
// The shared worker pool
// ---------------------------------------------------------------------------

/// One posted job: an epoch tag plus the executor closure every attached
/// worker runs to completion. The `'static` lifetime is a controlled lie —
/// the poster blocks until every attached worker detaches before the
/// closure's stack frame can unwind (see [`shared_pool_run`]).
#[derive(Clone, Copy)]
struct Job {
    epoch: u64,
    run: &'static (dyn Fn() + Sync),
}

#[derive(Default)]
struct PoolState {
    /// Monotonic job counter; a worker attaches to each epoch at most once.
    epoch: u64,
    /// The job being served, if any.
    job: Option<Job>,
    /// Remaining worker slots the current job may still claim.
    slots: usize,
    /// Workers currently running the current job.
    active: usize,
    /// Whether a poster currently owns the pool.
    busy: bool,
}

struct SharedPool {
    state: StdMutex<PoolState>,
    /// Workers sleep here between jobs.
    work_cv: Condvar,
    /// The poster sleeps here until its job's workers all detach.
    done_cv: Condvar,
}

/// Recover the pool-state lock after a worker panicked while holding it.
///
/// The accounting behind the lock (a handful of counters) is consistent
/// at every release point, including the unwind paths, so the poisoned
/// state is still valid — recovering keeps one panicked worker from
/// wedging every later sweep in the process. The first recovery warns on
/// stderr so the panic is not silently absorbed.
fn recover_poison(e: PoisonError<MutexGuard<'_, PoolState>>) -> MutexGuard<'_, PoolState> {
    static WARNED: AtomicBool = AtomicBool::new(false);
    if !WARNED.swap(true, Ordering::Relaxed) {
        eprintln!(
            "warning: sweep pool state was poisoned by a panicked worker; recovering (the pool \
             stays usable)"
        );
    }
    e.into_inner()
}

impl SharedPool {
    fn worker_loop(&self) {
        let mut last_epoch = 0u64;
        loop {
            let job = {
                let mut st = self.state.lock().unwrap_or_else(recover_poison);
                loop {
                    if let Some(job) = st.job {
                        if job.epoch > last_epoch && st.slots > 0 {
                            st.slots -= 1;
                            st.active += 1;
                            last_epoch = job.epoch;
                            break job;
                        }
                    }
                    st = self.work_cv.wait(st).unwrap_or_else(recover_poison);
                }
            };
            // The map closure catches per-item panics itself; this outer
            // guard only protects the pool's accounting from invariant
            // panics, so a wedged job can never deadlock the poster.
            let _ = std::panic::catch_unwind(AssertUnwindSafe(job.run));
            let mut st = self.state.lock().unwrap_or_else(recover_poison);
            st.active -= 1;
            if st.active == 0 {
                self.done_cv.notify_all();
            }
        }
    }
}

/// The process-wide pool: `available_parallelism - 1` persistent workers
/// (at least one), built on first multi-threaded sweep. The poster is
/// always the remaining executor, so a `threads`-way call uses exactly
/// `threads` cores.
fn shared_pool() -> &'static SharedPool {
    static POOL: OnceLock<&'static SharedPool> = OnceLock::new();
    POOL.get_or_init(|| {
        let pool: &'static SharedPool = Box::leak(Box::new(SharedPool {
            state: StdMutex::new(PoolState::default()),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
        }));
        let avail = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(4);
        for i in 0..avail.saturating_sub(1).max(1) {
            std::thread::Builder::new()
                .name(format!("dfsim-sweep-{i}"))
                .spawn(move || pool.worker_loop())
                .expect("spawning a pool worker");
        }
        pool
    })
}

/// Run `worker` on the shared pool with `threads` total executors (the
/// caller plus up to `threads - 1` pool workers). Returns `false` without
/// running anything when the pool is already serving a job — the caller
/// then uses its scoped fallback.
fn shared_pool_run(threads: usize, worker: &(dyn Fn() + Sync)) -> bool {
    let pool = shared_pool();
    {
        let mut st = pool.state.lock().unwrap_or_else(recover_poison);
        if st.busy {
            return false;
        }
        st.busy = true;
        st.epoch += 1;
        // SAFETY: the `'static` below is a lie the join protocol makes
        // harmless. `worker` borrows this call's stack frame (the closure
        // captures `&work`, `&results`, `&cursor` from `parallel_map_at`),
        // so the reference is only valid until `shared_pool_run` returns.
        // The pool can never outlive that window:
        //  1. workers attach only while `st.slots > 0`, checked under the
        //     state lock, and each attaches to this epoch at most once;
        //  2. before returning, the poster zeroes `slots` (no further
        //     attachments) and blocks on `done_cv` until `active == 0` —
        //     every attached worker has finished running the closure and
        //     released the lock;
        //  3. that join happens even when the caller's own share panics:
        //     the caller runs under `catch_unwind` and the join block sits
        //     between the catch and the `resume_unwind`.
        // Hence no worker can touch `run` after this frame unwinds, which
        // is exactly the guarantee `'static` is standing in for. (A scoped
        // thread API would prove this to the compiler, but the pool's
        // workers deliberately outlive any one call so spawn cost is paid
        // once per process, not once per sweep — see the module docs.)
        let run: &'static (dyn Fn() + Sync) = unsafe {
            std::mem::transmute::<&(dyn Fn() + Sync), &'static (dyn Fn() + Sync)>(worker)
        };
        st.job = Some(Job { epoch: st.epoch, run });
        st.slots = threads - 1;
        pool.work_cv.notify_all();
    }
    // The caller is an executor too, not a blocked supervisor.
    let caller = std::panic::catch_unwind(AssertUnwindSafe(worker));
    {
        let mut st = pool.state.lock().unwrap_or_else(recover_poison);
        st.slots = 0; // no further attachments
        while st.active > 0 {
            st = pool.done_cv.wait(st).unwrap_or_else(recover_poison);
        }
        st.job = None;
        st.busy = false;
    }
    if let Err(p) = caller {
        std::panic::resume_unwind(p);
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The declared acquisition order names exactly the locks this file
    /// takes, outermost-first — lock-discipline checks every nested
    /// acquisition against this table.
    #[test]
    fn lock_order_covers_the_pool_locks() {
        assert_eq!(LOCK_ORDER, ["work", "results", "payload", "state"]);
    }

    /// A panicked holder must not wedge the pool: the poisoned state lock
    /// recovers (with the state intact) instead of propagating the panic
    /// into every later sweep.
    #[test]
    fn poisoned_pool_state_recovers() {
        let m = StdMutex::new(PoolState::default());
        let _ = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let _g = m.lock().unwrap();
            panic!("poison the lock");
        }));
        assert!(m.is_poisoned(), "the panic above must poison the lock");
        let st = m.lock().unwrap_or_else(recover_poison);
        assert_eq!(st.epoch, 0, "the state behind the poisoned lock is intact");
    }

    #[test]
    fn preserves_input_order() {
        let out = parallel_map((0..100).collect(), 8, |i: i32| i * 2);
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_fallback() {
        let out = parallel_map(vec![1, 2, 3], 1, |i| i + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn empty_input() {
        let out: Vec<i32> = parallel_map(Vec::<i32>::new(), 4, |i| i);
        assert!(out.is_empty());
    }

    /// Regression: a worker panic used to die as `.expect("worker
    /// panicked")`, destroying the payload. The caller must see the
    /// original assertion message.
    #[test]
    fn worker_panic_preserves_the_original_payload() {
        let caught = std::panic::catch_unwind(|| {
            parallel_map((0..16).collect::<Vec<i32>>(), 4, |i| {
                assert!(i != 11, "sweep cell {i} exploded");
                i
            })
        })
        .expect_err("the panic must propagate");
        let msg = caught
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| caught.downcast_ref::<&str>().map(|s| s.to_string()))
            .expect("payload should be a message");
        assert!(msg.contains("sweep cell 11 exploded"), "payload lost: {msg}");
    }

    /// An absurd thread request must not translate into an absurd pool:
    /// the count is capped at the machine's parallelism, and the sweep
    /// still completes in input order.
    #[test]
    fn oversubscribed_thread_count_is_capped_and_correct() {
        let out = parallel_map((0..64).collect(), 100_000, |i: i32| i * 3);
        assert_eq!(out, (0..64).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn uneven_work_still_ordered() {
        let out = parallel_map((0..32).collect(), 4, |i: u64| {
            // Vary the work per item to shake the scheduler.
            let mut x = i;
            for _ in 0..(i % 7) * 10_000 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            (i, x)
        });
        for (idx, (i, _)) in out.iter().enumerate() {
            assert_eq!(idx as u64, *i);
        }
    }

    /// The pooled path itself (bypassing the availability cap, so it runs
    /// even on single-core CI hosts): repeated calls reuse the same
    /// workers and stay correct and ordered.
    #[test]
    fn pooled_path_is_correct_across_repeated_calls() {
        for round in 0..50u64 {
            let out = parallel_map_at((0..37).collect(), 4, |i: u64| i * 7 + round);
            assert_eq!(out, (0..37).map(|i| i * 7 + round).collect::<Vec<_>>());
        }
    }

    /// A nested call while the pool is held must fall back to scoped
    /// threads and still produce ordered results — never deadlock.
    #[test]
    fn nested_calls_fall_back_and_complete() {
        let out = parallel_map_at((0..8).collect(), 4, |i: u64| {
            let inner = parallel_map_at((0..5).collect(), 2, move |j: u64| i * 10 + j);
            inner.iter().sum::<u64>()
        });
        let expect: Vec<u64> = (0..8).map(|i| (0..5).map(|j| i * 10 + j).sum()).collect();
        assert_eq!(out, expect);
    }

    /// A panic on the pooled path must release the pool for later calls
    /// (a wedged `busy` flag would silently downgrade every later sweep to
    /// the spawn fallback — or deadlock).
    #[test]
    fn pooled_panic_releases_the_pool() {
        let caught = std::panic::catch_unwind(|| {
            parallel_map_at((0..16).collect::<Vec<i32>>(), 4, |i| {
                assert!(i != 3, "pooled cell {i} exploded");
                i
            })
        })
        .expect_err("the panic must propagate");
        let msg = caught
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| caught.downcast_ref::<&str>().map(|s| s.to_string()))
            .expect("payload should be a message");
        assert!(msg.contains("pooled cell 3 exploded"), "payload lost: {msg}");
        // The pool must be reusable afterwards.
        let out = parallel_map_at((0..10).collect(), 4, |i: i32| i + 1);
        assert_eq!(out, (1..11).collect::<Vec<_>>());
    }

    /// Spawn-cost microbenchmark behind `--ignored`: ns per call for the
    /// shared pool vs the scoped-spawn fallback on many tiny batches (the
    /// sweep-loop shape the pool exists for). Run manually:
    /// `cargo test --release -p dfsim-core pool_reuse -- --ignored --nocapture`
    #[test]
    #[ignore]
    fn pool_reuse_microbench() {
        const CALLS: u32 = 500;
        let items = || (0..16u64).collect::<Vec<_>>();
        // Warm the pool up front so the one-time spawn is not billed.
        let _ = parallel_map_at(items(), 4, |i| i);
        let t0 = std::time::Instant::now();
        for _ in 0..CALLS {
            let _ = parallel_map_at(items(), 4, |i| i + 1);
        }
        let pooled = t0.elapsed();
        let t1 = std::time::Instant::now();
        for _ in 0..CALLS {
            // Forcing the fallback: hold the pool with an outer call.
            let _ = parallel_map_at(vec![0u64], 1, |_| {
                // inline path; now time raw scoped spawns directly
            });
            let work: Vec<u64> = items();
            crossbeam::scope(|s| {
                let chunk = work.len().div_ceil(4);
                for c in work.chunks(chunk) {
                    s.spawn(move |_| {
                        let _ = c.iter().map(|i| i + 1).sum::<u64>();
                    });
                }
            })
            .unwrap();
        }
        let scoped = t1.elapsed();
        // Diagnostic, not report data: stderr, per stdout-discipline.
        eprintln!(
            "pool_reuse_microbench: {CALLS} calls x 16 items, 4 executors: pooled {:.1} us/call, \
             scoped-spawn {:.1} us/call",
            pooled.as_micros() as f64 / CALLS as f64,
            scoped.as_micros() as f64 / CALLS as f64,
        );
    }
}
