//! Dynamic (churn) scenarios: timed job arrivals, a pluggable job
//! scheduler, and the scenario run loop.
//!
//! The paper studies interference between *statically co-placed* pairs —
//! every job starts at t = 0 and the machine never changes. A production
//! system has **churn**: jobs arrive, queue while the machine is full, run,
//! and depart, so the set of co-resident (and therefore interfering)
//! workloads changes over time. This module adds that layer without
//! touching the deterministic core:
//!
//! * a [`Scenario`] is a timed stream of job arrivals (explicit lists,
//!   parsed specs, or Poisson-process synthesis from the seeded RNG),
//! * a [`Scheduler`] decides which queued jobs to admit whenever nodes free
//!   up ([`Fcfs`] implements first-come-first-served with optional
//!   backfill),
//! * a [`JobTable`] owns the job → partition mapping: it places admitted
//!   jobs onto the free-node pool with the existing [`Placement`] policies
//!   and reclaims nodes at teardown,
//! * [`run_scenario`] drives everything through the partitioned engine's
//!   canonical window loop ([`crate::partition`]): arrivals cut windows at
//!   their exact times, completions reclaim nodes at window barriers, and
//!   every partition replays the identical admission decisions — so both
//!   queue backends *and* every partition count realize the same canonical
//!   event order and scenario reports are bit-identical across all of them.
//!
//! Per-job wait, service and slowdown land in
//! [`crate::report::RunReport::jobs`]; the `churn` bench binary combines
//! them with the windowed metrics ([`dfsim_metrics::Span`]) into an
//! interference matrix under churn.

use dfsim_apps::arrivals::ArrivalSpec;
use dfsim_apps::AppKind;
use dfsim_des::{JobId, SimRng, Time, MILLISECOND};
use dfsim_topology::{NodeId, Topology};

use crate::config::SimConfig;
use crate::placement::Placement;
use crate::report::{JobReport, RunReport};
use crate::runner::JobSpec;

/// One timed job arrival.
#[derive(Debug, Clone)]
pub struct Arrival {
    /// The job (idle placeholders are not allowed in scenarios).
    pub spec: JobSpec,
    /// Arrival time, picoseconds.
    pub at: Time,
}

/// A timed stream of job arrivals (sorted by arrival time).
#[derive(Debug, Clone, Default)]
pub struct Scenario {
    /// Arrivals in time order.
    pub arrivals: Vec<Arrival>,
}

impl Scenario {
    /// Build from arrivals (sorted by time; ties keep input order).
    pub fn new(mut arrivals: Vec<Arrival>) -> Self {
        arrivals.sort_by_key(|a| a.at);
        Self { arrivals }
    }

    /// Build from parsed/generated [`ArrivalSpec`]s.
    pub fn from_specs(specs: &[ArrivalSpec]) -> Self {
        Self::new(
            specs
                .iter()
                .map(|s| Arrival { spec: JobSpec::sized(s.kind, s.size), at: s.at })
                .collect(),
        )
    }

    /// Parse the compact text form, e.g. `"UR:36@0,LU:16@0.5ms"`.
    pub fn parse(s: &str) -> Result<Self, String> {
        Ok(Self::from_specs(&dfsim_apps::arrivals::parse_arrival_list(s)?))
    }

    /// Poisson-process arrivals at `rate_per_ms` jobs per simulated
    /// millisecond from the deterministic RNG stream of `seed`, cycling
    /// `kinds` and drawing sizes from `sizes`.
    pub fn poisson(
        seed: u64,
        rate_per_ms: f64,
        count: u32,
        kinds: &[AppKind],
        sizes: &[u32],
    ) -> Self {
        Self::from_specs(&dfsim_apps::arrivals::poisson_arrivals(
            seed,
            rate_per_ms,
            count,
            kinds,
            sizes,
        ))
    }

    /// Number of jobs.
    pub fn len(&self) -> usize {
        self.arrivals.len()
    }

    /// Whether the scenario has no jobs.
    pub fn is_empty(&self) -> bool {
        self.arrivals.is_empty()
    }

    /// Check the scenario can run on a machine of `num_nodes` nodes.
    pub fn validate(&self, num_nodes: u32) -> Result<(), String> {
        if self.arrivals.len() > u16::MAX as usize {
            return Err(format!("too many jobs ({} > {})", self.arrivals.len(), u16::MAX));
        }
        for (i, a) in self.arrivals.iter().enumerate() {
            if a.spec.idle {
                return Err(format!("job {i}: idle placeholders are not allowed in scenarios"));
            }
            if a.spec.size == 0 {
                return Err(format!("job {i}: empty job"));
            }
            if a.spec.size > num_nodes {
                return Err(format!(
                    "job {i} ({}) needs {} nodes, system has {num_nodes}",
                    a.spec.kind, a.spec.size
                ));
            }
        }
        Ok(())
    }
}

/// A queued job as seen by a [`Scheduler`].
#[derive(Debug, Clone, Copy)]
pub struct QueuedJob {
    /// The job.
    pub job: JobId,
    /// Nodes requested.
    pub size: u32,
    /// Arrival time, ps.
    pub arrival: Time,
}

/// A job-admission policy: decides which queued jobs start whenever the
/// machine's free-node count changes (an arrival or a teardown).
///
/// Contract: `select` receives the waiting queue in arrival order and the
/// current free-node count; it returns *strictly increasing* indices into
/// `waiting` whose sizes sum to at most `free`. The scenario loop admits
/// them in that order at the current simulation time. Implementations must
/// be deterministic — admission decisions feed the event order that the
/// backend-equivalence guarantee relies on.
pub trait Scheduler {
    /// Stable policy name (reports, CLI).
    fn name(&self) -> &'static str;

    /// Choose which waiting jobs to admit now.
    fn select(&mut self, waiting: &[QueuedJob], free: u32) -> Vec<usize>;
}

/// First-come-first-served admission, optionally with backfill.
///
/// Without backfill the queue blocks behind its head: jobs are admitted in
/// arrival order until the first one that does not fit. With backfill,
/// later jobs that fit into the remaining free nodes may jump the blocked
/// head (EASY-style backfill without reservations — fine for a simulator
/// where jobs have no user-supplied runtime estimates).
#[derive(Debug, Clone, Copy, Default)]
pub struct Fcfs {
    /// Allow smaller jobs to jump a blocked queue head.
    pub backfill: bool,
}

impl Scheduler for Fcfs {
    fn name(&self) -> &'static str {
        if self.backfill {
            "fcfs+backfill"
        } else {
            "fcfs"
        }
    }

    fn select(&mut self, waiting: &[QueuedJob], free: u32) -> Vec<usize> {
        let mut picks = Vec::new();
        let mut free = free;
        for (i, j) in waiting.iter().enumerate() {
            if j.size <= free {
                picks.push(i);
                free -= j.size;
            } else if !self.backfill {
                break;
            }
        }
        picks
    }
}

/// Named admission policies (CLI/env selectable).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedPolicy {
    /// Strict first-come-first-served.
    #[default]
    Fcfs,
    /// FCFS with backfill.
    Backfill,
}

impl SchedPolicy {
    /// Every selectable policy.
    pub const ALL: [SchedPolicy; 2] = [SchedPolicy::Fcfs, SchedPolicy::Backfill];

    /// Short stable name.
    pub fn label(&self) -> &'static str {
        match self {
            SchedPolicy::Fcfs => "fcfs",
            SchedPolicy::Backfill => "backfill",
        }
    }

    /// The scheduler this policy names.
    pub fn scheduler(&self) -> Fcfs {
        Fcfs { backfill: *self == SchedPolicy::Backfill }
    }
}

impl std::fmt::Display for SchedPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

impl std::str::FromStr for SchedPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "fcfs" => Ok(SchedPolicy::Fcfs),
            "backfill" | "fcfs+backfill" | "easy" => Ok(SchedPolicy::Backfill),
            other => Err(format!("unknown scheduler '{other}' (fcfs, backfill)")),
        }
    }
}

/// Lifecycle state of one scenario job.
#[derive(Debug, Clone)]
struct JobEntry {
    spec: JobSpec,
    arrival: Time,
    start: Option<Time>,
    finish: Option<Time>,
    nodes: Vec<NodeId>,
}

/// The owned job → partition mapping of a scenario run: tracks each job's
/// lifecycle, the waiting queue, and the free-node pool that admitted jobs
/// draw from and finished jobs return to.
#[derive(Debug)]
pub struct JobTable {
    entries: Vec<JobEntry>,
    /// Waiting queue, arrival order.
    waiting: Vec<JobId>,
    /// Free nodes, kept sorted ascending so placement is deterministic.
    free: Vec<NodeId>,
    policy: Placement,
    seed: u64,
    done: usize,
}

impl JobTable {
    /// Build for a scenario on `topo` with all nodes free.
    pub fn new(topo: &Topology, scenario: &Scenario, policy: Placement, seed: u64) -> Self {
        Self {
            entries: scenario
                .arrivals
                .iter()
                .map(|a| JobEntry {
                    spec: a.spec.clone(),
                    arrival: a.at,
                    start: None,
                    finish: None,
                    nodes: Vec::new(),
                })
                .collect(),
            waiting: Vec::new(),
            free: (0..topo.num_nodes()).map(NodeId).collect(),
            policy,
            seed,
            done: 0,
        }
    }

    /// Free nodes available right now.
    pub fn free_count(&self) -> u32 {
        self.free.len() as u32
    }

    /// Jobs currently waiting, in arrival order.
    pub fn waiting_view(&self) -> Vec<QueuedJob> {
        self.waiting
            .iter()
            .map(|&j| {
                let e = &self.entries[j.idx()];
                QueuedJob { job: j, size: e.spec.size, arrival: e.arrival }
            })
            .collect()
    }

    /// Whether the waiting queue is empty.
    pub fn waiting_is_empty(&self) -> bool {
        self.waiting.is_empty()
    }

    /// Whether every job has finished.
    pub fn all_done(&self) -> bool {
        self.done == self.entries.len()
    }

    /// The job's spec.
    pub fn spec(&self, job: JobId) -> &JobSpec {
        &self.entries[job.idx()].spec
    }

    /// The nodes a running (or finished) job occupies, rank order.
    pub fn nodes(&self, job: JobId) -> &[NodeId] {
        &self.entries[job.idx()].nodes
    }

    /// A job arrived: push it onto the waiting queue.
    pub(crate) fn enqueue(&mut self, job: JobId) {
        debug_assert!(self.entries[job.idx()].start.is_none());
        self.waiting.push(job);
    }

    /// Admit a waiting job at time `now`: remove it from the queue, carve
    /// its partition out of the free pool under the placement policy, and
    /// return the node list (rank order).
    pub(crate) fn admit(&mut self, job: JobId, now: Time) -> Vec<NodeId> {
        let pos = self.waiting.iter().position(|&j| j == job).expect("job not waiting");
        self.waiting.remove(pos);
        let size = self.entries[job.idx()].spec.size as usize;
        assert!(size <= self.free.len(), "scheduler over-admitted: {size} > {}", self.free.len());
        let nodes: Vec<NodeId> = match self.policy {
            Placement::Random => {
                // One independent stream per job id, so the mapping depends
                // only on (seed, job, free pool) — not on admission history.
                let mut rng = SimRng::new(self.seed).derive_idx("scenario-place", job.0 as u64);
                let mut sel = rng.choose_distinct(self.free.len(), size);
                sel.sort_unstable();
                let nodes = sel.iter().map(|&i| self.free[i]).collect();
                for &i in sel.iter().rev() {
                    self.free.remove(i);
                }
                nodes
            }
            Placement::Contiguous => self.carve_contiguous(size),
        };
        let e = &mut self.entries[job.idx()];
        e.start = Some(now);
        e.nodes = nodes.clone();
        nodes
    }

    /// Carve `size` nodes for a contiguous placement out of the (sorted)
    /// free list. Teardowns fragment the pool, so "first `size` entries"
    /// is *not* contiguous in general; instead:
    ///
    /// 1. **First fit**: take the first (lowest-id) run of consecutive node
    ///    ids of length ≥ `size`, using its first `size` ids.
    /// 2. **Fallback** when no run is long enough (documented, deterministic):
    ///    fill from the *smallest* fragments first (ties: lower start id),
    ///    preserving the largest runs for later jobs; the final selection is
    ///    returned in ascending id order.
    fn carve_contiguous(&mut self, size: usize) -> Vec<NodeId> {
        debug_assert!(self.free.windows(2).all(|w| w[0].0 < w[1].0), "free list unsorted");
        // Maximal runs of consecutive ids as (start index, length).
        let mut frags: Vec<(usize, usize)> = Vec::new();
        for (i, n) in self.free.iter().enumerate() {
            match frags.last_mut() {
                Some((s, len)) if self.free[*s].0 + *len as u32 == n.0 => *len += 1,
                _ => frags.push((i, 1)),
            }
        }
        let sel: Vec<usize> = if let Some(&(s, _)) = frags.iter().find(|&&(_, l)| l >= size) {
            (s..s + size).collect()
        } else {
            let mut order = frags;
            order.sort_by_key(|&(s, l)| (l, s));
            let mut sel: Vec<usize> = Vec::with_capacity(size);
            for (s, l) in order {
                let need = size - sel.len();
                sel.extend(s..s + l.min(need));
                if sel.len() == size {
                    break;
                }
            }
            sel.sort_unstable();
            sel
        };
        let nodes: Vec<NodeId> = sel.iter().map(|&i| self.free[i]).collect();
        for &i in sel.iter().rev() {
            self.free.remove(i);
        }
        nodes
    }

    /// A job's last rank finished.
    pub(crate) fn mark_finished(&mut self, job: JobId, t: Time) {
        let e = &mut self.entries[job.idx()];
        debug_assert!(e.start.is_some() && e.finish.is_none());
        e.finish = Some(t);
        self.done += 1;
    }

    /// Return a finished job's nodes to the free pool.
    pub(crate) fn reclaim(&mut self, job: JobId) {
        let e = &mut self.entries[job.idx()];
        debug_assert!(e.finish.is_some(), "reclaiming an unfinished job");
        self.free.extend(e.nodes.iter().copied());
        self.free.sort_unstable_by_key(|n| n.0);
    }

    /// Admission start times per job (`end` for jobs that never started) —
    /// what the report builder subtracts to get per-job execution time.
    pub fn start_times(&self, end: Time) -> Vec<Time> {
        self.entries.iter().map(|e| e.start.unwrap_or(end)).collect()
    }

    /// Per-job scheduling outcomes for the report.
    pub fn job_reports(&self, end: Time) -> Vec<JobReport> {
        let ms = |t: Time| t as f64 / MILLISECOND as f64;
        self.entries
            .iter()
            .enumerate()
            .map(|(i, e)| {
                let wait = e.start.unwrap_or(end).saturating_sub(e.arrival);
                let run = match (e.start, e.finish) {
                    (Some(s), Some(f)) => f - s,
                    _ => 0,
                };
                let response = e.finish.map_or(0, |f| f - e.arrival);
                JobReport {
                    job: i as u32,
                    name: e.spec.kind.name().to_string(),
                    size: e.spec.size,
                    arrival_ms: ms(e.arrival),
                    start_ms: e.start.map(ms),
                    finish_ms: e.finish.map(ms),
                    wait_ms: ms(wait),
                    run_ms: ms(run),
                    response_ms: ms(response),
                    slowdown: (run > 0).then(|| response as f64 / run as f64),
                    completed: e.finish.is_some(),
                }
            })
            .collect()
    }
}

/// Run `scenario` under `cfg`: jobs spawn at their arrival times (queueing
/// under `policy_sched` when the machine is full), run on partitions placed
/// by `placement`, and release their nodes on completion. Runs on the
/// partitioned engine ([`crate::partition`]) at `cfg.threads` partitions
/// (1 when unset); reports are bit-identical across queue backends *and*
/// partition counts.
#[deprecated(note = "describe the scenario as an `ExperimentSpec` and run it through \
            `spec::Simulation` (this wrapper pins the old entry point's behavior)")]
pub fn run_scenario(
    cfg: &SimConfig,
    scenario: &Scenario,
    policy_sched: SchedPolicy,
    placement: Placement,
) -> RunReport {
    exec_scenario_policy(cfg, scenario, policy_sched, placement).0
}

/// Run a scenario with a caller-supplied [`Scheduler`] implementation —
/// the escape hatch for admission policies the spec format cannot name.
/// A single scheduler instance cannot be replicated across partitions, so
/// this entry always runs single-partition (name a [`SchedPolicy`] to get
/// parallel churn runs).
pub fn run_scenario_with(
    cfg: &SimConfig,
    scenario: &Scenario,
    sched: &mut (dyn Scheduler + Send),
    placement: Placement,
) -> RunReport {
    crate::partition::exec_scenario_driver(
        cfg,
        scenario,
        placement,
        crate::partition::SchedBinding::Inline(sched),
    )
    .0
}

/// The churn engine behind [`run_scenario`] and
/// [`crate::simulation::Simulation`]: run the partitioned scenario driver
/// with one `policy` scheduler instance per partition and return the report
/// plus the learned Q-table snapshot (Q-adaptive runs only).
pub(crate) fn exec_scenario_policy(
    cfg: &SimConfig,
    scenario: &Scenario,
    policy: SchedPolicy,
    placement: Placement,
) -> (RunReport, Option<dfsim_network::QTableSnapshot>) {
    let factory = move || Box::new(policy.scheduler()) as Box<dyn Scheduler + Send>;
    crate::partition::exec_scenario_driver(
        cfg,
        scenario,
        placement,
        crate::partition::SchedBinding::Factory(&factory),
    )
}

#[cfg(test)]
// The deprecated wrappers are exercised on purpose: they pin the old entry
// points' behavior for the spec-vs-wrapper equivalence contract.
#[allow(deprecated)]
mod tests {
    use super::*;
    use dfsim_network::RoutingAlgo;

    fn queued(sizes: &[u32]) -> Vec<QueuedJob> {
        sizes
            .iter()
            .enumerate()
            .map(|(i, &size)| QueuedJob { job: JobId(i as u32), size, arrival: i as Time })
            .collect()
    }

    #[test]
    fn fcfs_blocks_behind_queue_head() {
        let mut s = Fcfs { backfill: false };
        // Head needs 10, only 8 free: nothing may start.
        assert!(s.select(&queued(&[10, 4, 2]), 8).is_empty());
        // Head fits, second blocks, third never considered.
        assert_eq!(s.select(&queued(&[6, 10, 2]), 8), vec![0]);
    }

    #[test]
    fn backfill_jumps_a_blocked_head() {
        let mut s = Fcfs { backfill: true };
        assert_eq!(s.select(&queued(&[10, 4, 2]), 8), vec![1, 2]);
        // Backfill still respects remaining capacity.
        assert_eq!(s.select(&queued(&[10, 7, 2]), 8), vec![1]);
    }

    #[test]
    fn sched_policy_round_trips() {
        for p in SchedPolicy::ALL {
            assert_eq!(p.label().parse::<SchedPolicy>().unwrap(), p);
        }
        assert!("mystery".parse::<SchedPolicy>().is_err());
        assert!(!SchedPolicy::Fcfs.scheduler().backfill);
        assert!(SchedPolicy::Backfill.scheduler().backfill);
    }

    #[test]
    fn scenario_parse_and_validate() {
        let s = Scenario::parse("UR:36@0,LU:16@0.5ms").unwrap();
        assert_eq!(s.len(), 2);
        assert!(s.validate(72).is_ok());
        assert!(s.validate(20).is_err(), "36 > 20 nodes must be rejected");
        let idle = Scenario::new(vec![Arrival { spec: JobSpec::idle(4), at: 0 }]);
        assert!(idle.validate(72).is_err());
    }

    #[test]
    fn job_table_places_and_reclaims() {
        let topo = Topology::new(dfsim_topology::DragonflyParams::tiny_72()).unwrap();
        let scenario = Scenario::parse("UR:30@0,LU:30@0,FFT3D:30@0").unwrap();
        let mut t = JobTable::new(&topo, &scenario, Placement::Random, 9);
        assert_eq!(t.free_count(), 72);
        t.enqueue(JobId(0));
        t.enqueue(JobId(1));
        let a = t.admit(JobId(0), 100);
        let b = t.admit(JobId(1), 100);
        assert_eq!(a.len(), 30);
        assert_eq!(t.free_count(), 12);
        // Partitions are disjoint.
        let mut all: Vec<u32> = a.iter().chain(b.iter()).map(|n| n.0).collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 60);
        // Third job cannot fit until a reclaim.
        t.enqueue(JobId(2));
        assert!(Fcfs::default().select(&t.waiting_view(), t.free_count()).is_empty());
        t.mark_finished(JobId(0), 500);
        t.reclaim(JobId(0));
        assert_eq!(t.free_count(), 42);
        let c = t.admit(JobId(2), 600);
        assert_eq!(c.len(), 30);
        assert!(!t.all_done());
    }

    #[test]
    fn tiny_churn_scenario_completes_with_job_metrics() {
        let cfg = SimConfig::test_tiny(RoutingAlgo::UgalG);
        // Arrivals 10 ns apart: the first two fill all 72 nodes, so LU must
        // queue until one of them finishes.
        let scenario = Scenario::parse("UR:36@0,CosmoFlow:36@10ns,LU:36@20ns").unwrap();
        let report = run_scenario(&cfg, &scenario, SchedPolicy::Fcfs, Placement::Random);
        assert!(report.completed, "stop: {}", report.stop_reason);
        assert_eq!(report.jobs.len(), 3);
        for j in &report.jobs {
            assert!(j.completed, "{} never finished", j.name);
            assert!(j.run_ms > 0.0);
            let s = j.slowdown.expect("completed jobs carry a slowdown");
            assert!(s >= 1.0 - 1e-12, "{}: slowdown {s}", j.name);
        }
        // 36+36+36 = 108 > 72 nodes: the third job must have queued.
        let lu = report.jobs.iter().find(|j| j.name == "LU").unwrap();
        assert!(lu.wait_ms > 0.0, "LU should have waited for free nodes");
        assert!(lu.slowdown.unwrap() > 1.0);
        // Every app produced traffic and a per-rank comm record.
        for a in &report.apps {
            assert!(a.total_msg_mb > 0.0, "{} moved no bytes", a.name);
            assert_eq!(a.comm_ms.n, 36);
        }
    }

    #[test]
    fn churn_determinism_same_seed_same_report() {
        let cfg = SimConfig::test_tiny(RoutingAlgo::Par);
        let scenario = Scenario::poisson(11, 50.0, 6, &[AppKind::UR, AppKind::LU], &[18, 36]);
        let a = run_scenario(&cfg, &scenario, SchedPolicy::Backfill, Placement::Random);
        let b = run_scenario(&cfg, &scenario, SchedPolicy::Backfill, Placement::Random);
        assert_eq!(a.sim_ms, b.sim_ms);
        assert_eq!(a.events, b.events);
        for (x, y) in a.jobs.iter().zip(&b.jobs) {
            assert_eq!(x.wait_ms, y.wait_ms);
            assert_eq!(x.slowdown, y.slowdown);
        }
    }

    #[test]
    fn horizon_leaves_unfinished_jobs_marked() {
        let mut cfg = SimConfig::test_tiny(RoutingAlgo::UgalN);
        cfg.horizon = Some(1_000); // 1 ns: nothing can finish
        let scenario = Scenario::parse("UR:36@0").unwrap();
        let report = run_scenario(&cfg, &scenario, SchedPolicy::Fcfs, Placement::Random);
        assert!(!report.completed);
        assert_eq!(report.jobs.len(), 1);
        assert!(!report.jobs[0].completed);
        assert!(report.jobs[0].finish_ms.is_none());
        assert!(
            report.jobs[0].slowdown.is_none(),
            "incomplete jobs must not report a placeholder slowdown"
        );
        assert!(report.mean_slowdown().is_nan(), "no completed job, no mean");
    }

    /// Regression: under a reclaim-fragmented free pool, `Contiguous`
    /// placement used to take the first N ids regardless of holes. It must
    /// carve an actual run of consecutive ids when one exists.
    #[test]
    fn contiguous_admission_carves_a_real_run_despite_fragmentation() {
        let topo = Topology::new(dfsim_topology::DragonflyParams::tiny_72()).unwrap();
        let scenario = Scenario::parse("UR:4@0,UR:60@0,UR:8@0,UR:12@0").unwrap();
        let mut t = JobTable::new(&topo, &scenario, Placement::Contiguous, 3);
        // Spawn/teardown pattern that holes the pool: job 0 takes 0..4,
        // job 1 takes 4..64, then job 0 finishes — free = [0..4, 64..72].
        t.enqueue(JobId(0));
        t.enqueue(JobId(1));
        assert_eq!(t.admit(JobId(0), 10), (0..4).map(NodeId).collect::<Vec<_>>());
        assert_eq!(t.admit(JobId(1), 10), (4..64).map(NodeId).collect::<Vec<_>>());
        t.mark_finished(JobId(0), 20);
        t.reclaim(JobId(0));
        // An 8-node job must land on the 64..72 run, not on first-N-by-id
        // (which would straddle the 4..64 hole).
        t.enqueue(JobId(2));
        let nodes = t.admit(JobId(2), 30);
        assert_eq!(nodes, (64..72).map(NodeId).collect::<Vec<_>>());
        assert_eq!(t.free_count(), 4);
        assert_eq!(t.nodes(JobId(2)), (64..72).map(NodeId).collect::<Vec<_>>());
    }

    /// When no run is long enough, the documented fallback fills from the
    /// smallest fragments first (preserving large runs), ascending ids.
    #[test]
    fn contiguous_admission_falls_back_smallest_fragment_first() {
        let topo = Topology::new(dfsim_topology::DragonflyParams::tiny_72()).unwrap();
        let scenario = Scenario::parse("UR:2@0,UR:3@0,UR:62@0,UR:6@0").unwrap();
        let mut t = JobTable::new(&topo, &scenario, Placement::Contiguous, 3);
        for j in 0..3 {
            t.enqueue(JobId(j));
        }
        assert_eq!(t.admit(JobId(0), 1), (0..2).map(NodeId).collect::<Vec<_>>());
        assert_eq!(t.admit(JobId(1), 1), (2..5).map(NodeId).collect::<Vec<_>>());
        assert_eq!(t.admit(JobId(2), 1), (5..67).map(NodeId).collect::<Vec<_>>());
        // Free the 2-run and the 3-run: free = [0..2, 2..5 merged → 0..5, 67..72].
        for j in [0, 1] {
            t.mark_finished(JobId(j), 2);
            t.reclaim(JobId(j));
        }
        // A 6-node job fits no single run (5 and 5): smallest-fragment-first
        // takes all of 0..5 (start 0 breaks the length tie with 67..72),
        // then one node of the next-smallest fragment.
        t.enqueue(JobId(3));
        let nodes = t.admit(JobId(3), 3);
        let expect: Vec<NodeId> = (0..5).chain(67..68).map(NodeId).collect();
        assert_eq!(nodes, expect);
        assert!(nodes.windows(2).all(|w| w[0].0 < w[1].0), "ascending id order");
    }
}
