//! Simulation configuration.

use std::path::PathBuf;

use dfsim_des::{QueueBackend, Time};
use dfsim_metrics::RecorderConfig;
use dfsim_network::{QTableInit, RoutingAlgo, RoutingConfig};
use dfsim_topology::{DragonflyParams, LinkTiming};

/// Everything needed to instantiate one simulation.
///
/// Not `Copy` since the Q-table lifecycle knobs carry paths
/// ([`QTableInit::Load`], [`SimConfig::qtable_save`]); sweep code clones
/// per cell.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Structural topology parameters (default: the paper's 1,056-node
    /// system).
    pub params: DragonflyParams,
    /// Link timing (default: paper §III constants).
    pub timing: LinkTiming,
    /// Routing algorithm + knobs.
    pub routing: RoutingConfig,
    /// Metrics granularity.
    pub recorder: RecorderConfig,
    /// Workload scale divisor (`DESIGN.md` §5): 1 = paper scale.
    pub scale: f64,
    /// Root seed: placement, per-router RNG and app randomness derive from
    /// it, so a config is fully reproducible.
    pub seed: u64,
    /// Eager→rendezvous threshold of the MPI layer, bytes.
    pub eager_threshold: u64,
    /// Optional wall on simulated time; exceeding it marks the run
    /// incomplete instead of hanging.
    pub horizon: Option<Time>,
    /// Hard cap on processed events (runaway guard).
    pub max_events: u64,
    /// Pending-event-set implementation driving the world loop, including
    /// calendar tuning (`heap`, `calendar:auto`,
    /// `calendar:width=..,buckets=..`). Every backend and tuning produces
    /// identical reports for a given config; the knob exists for the
    /// event-queue performance ablation.
    pub queue: QueueBackend,
    /// After the run, write the learned Q-tables to this path (Q-adaptive
    /// runs only; `validate` rejects it under any other routing).
    pub qtable_save: Option<PathBuf>,
    /// Stream every metric event to a `dfsim-trace v1` file at this path as
    /// the run executes (bounded memory; replayable into the exact same
    /// report). `None` (the default) keeps tracing entirely off the hot
    /// path.
    pub trace: Option<PathBuf>,
    /// Worker threads for the partitioned engine: the dragonfly is sharded
    /// by group across this many partitions, exchanging boundary traffic in
    /// conservative lookahead windows. `0` or `1` selects the
    /// single-threaded engine; any value produces bit-identical reports
    /// (the partition-equivalence suite pins this). Must not exceed the
    /// group count.
    pub threads: usize,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            params: DragonflyParams::paper_1056(),
            timing: LinkTiming::default(),
            routing: RoutingConfig::new(RoutingAlgo::UgalG),
            recorder: RecorderConfig::default(),
            scale: 64.0,
            seed: 42,
            eager_threshold: 16 * 1024,
            horizon: None,
            max_events: 2_000_000_000,
            queue: QueueBackend::default(),
            qtable_save: None,
            trace: None,
            threads: 0,
        }
    }
}

impl SimConfig {
    /// This config, switched onto another queue backend.
    pub fn with_queue(self, queue: QueueBackend) -> Self {
        Self { queue, ..self }
    }

    /// Config with a given routing algorithm, everything else default.
    pub fn with_routing(algo: RoutingAlgo) -> Self {
        Self { routing: RoutingConfig::new(algo), ..Default::default() }
    }

    /// A small test configuration: 72-node Dragonfly, aggressive scaling.
    pub fn test_tiny(algo: RoutingAlgo) -> Self {
        Self {
            params: DragonflyParams::tiny_72(),
            routing: RoutingConfig::new(algo),
            scale: 2_048.0,
            seed: 7,
            ..Default::default()
        }
    }

    /// Validate the configuration.
    pub fn validate(&self) -> Result<(), String> {
        self.params.validate().map_err(|e| e.to_string())?;
        if self.scale < 1.0 {
            return Err(format!("scale must be ≥ 1, got {}", self.scale));
        }
        if !self.timing.packet_bytes.is_multiple_of(self.timing.flit_bytes) {
            return Err("packet size must be a multiple of the flit size".into());
        }
        if self.max_events == 0 {
            return Err("max_events must be positive".into());
        }
        if self.threads > self.params.groups as usize {
            return Err(format!(
                "threads ({}) exceed the {} dragonfly groups: each partition owns at \
                 least one whole group, so at most {} worker threads apply here",
                self.threads, self.params.groups, self.params.groups
            ));
        }
        if self.routing.algo != RoutingAlgo::QAdaptive {
            // Never silently ignore a lifecycle knob: only Q-adaptive
            // routers carry Q-tables to load or save.
            if self.routing.qtable_init != QTableInit::Cold {
                return Err(format!(
                    "Q-table warm-start (--qtable load=..) requires Q-adaptive routing, \
                     got {}",
                    self.routing.algo
                ));
            }
            if self.qtable_save.is_some() {
                return Err(format!(
                    "Q-table snapshot saving (--qtable save=..) requires Q-adaptive routing, \
                     got {}",
                    self.routing.algo
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_the_paper_system() {
        let c = SimConfig::default();
        c.validate().unwrap();
        assert_eq!(c.params.num_nodes(), 1056);
        assert_eq!(c.timing.bandwidth_gbps, 200);
    }

    #[test]
    fn invalid_scale_is_rejected() {
        let c = SimConfig { scale: 0.5, ..Default::default() };
        assert!(c.validate().is_err());
    }

    #[test]
    fn invalid_packet_flit_ratio_is_rejected() {
        let mut c = SimConfig::default();
        c.timing.packet_bytes = 500;
        assert!(c.validate().is_err());
    }

    #[test]
    fn tiny_config_validates() {
        SimConfig::test_tiny(RoutingAlgo::Par).validate().unwrap();
    }

    #[test]
    fn qtable_lifecycle_knobs_require_qadaptive() {
        let mut c = SimConfig::default(); // UGALg
        c.routing.qtable_init = QTableInit::load("/tmp/q.snap");
        let e = c.validate().unwrap_err();
        assert!(e.contains("Q-adaptive"), "{e}");

        let c = SimConfig { qtable_save: Some("/tmp/q.snap".into()), ..Default::default() };
        let e = c.validate().unwrap_err();
        assert!(e.contains("Q-adaptive"), "{e}");

        let mut c = SimConfig::with_routing(RoutingAlgo::QAdaptive);
        c.routing.qtable_init = QTableInit::load("/tmp/q.snap");
        c.qtable_save = Some("/tmp/q.snap".into());
        c.validate().unwrap();
    }
}
