//! Build–run–report: execute a job mix and produce a [`RunReport`].

use std::sync::Arc;
use std::time::Instant;

use dfsim_apps::AppKind;
use dfsim_des::queue::SimQueue;
use dfsim_des::{
    CalendarQueue, EngineStats, EventQueue, QueueKind, SimRng, Time, MICROSECOND, MILLISECOND,
};
use dfsim_metrics::{AppId, Recorder, Stats};
use dfsim_mpi::sim::MpiConfig;
use dfsim_mpi::MpiSim;
use dfsim_network::NetworkSim;
use dfsim_topology::{LinkKind, Port, RouterId, Topology};

use crate::config::SimConfig;
use crate::placement::{place, Placement};
use crate::report::{AppReport, EngineReport, JobReport, LearningReport, NetworkReport, RunReport};
use crate::world::{StopReason, World, WorldEvent};

// The runner-level entry points into dynamic scenarios; the types they
// take live in [`crate::scenario`].
#[allow(deprecated)]
pub use crate::scenario::run_scenario;
pub use crate::scenario::run_scenario_with;

/// One job of a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobSpec {
    /// The workload.
    pub kind: AppKind,
    /// Ranks.
    pub size: u32,
    /// Idle placeholder: reserves the partition's nodes without running
    /// anything (used to keep later jobs' node slices independent of an
    /// earlier job's exact size, e.g. LULESH's 512 of 528).
    pub idle: bool,
}

impl JobSpec {
    /// Job of an explicit size.
    pub fn sized(kind: AppKind, size: u32) -> Self {
        Self { kind, size, idle: false }
    }

    /// An idle partition of `size` nodes.
    pub fn idle(size: u32) -> Self {
        Self { kind: AppKind::UR, size, idle: true }
    }
}

/// Run `jobs` under `cfg` with the given placement policy. Jobs are placed
/// in order on the shuffled node list, so a given `(seed, job-size prefix)`
/// keeps earlier jobs' mappings stable when later jobs are added or removed
/// (the paper's standalone-vs-interfered methodology).
///
/// The world loop is monomorphized over the event-queue backend selected by
/// [`SimConfig::queue`]; both backends realize the same deterministic event
/// order, so the report depends only on the rest of the config.
#[deprecated(note = "describe the experiment as an `ExperimentSpec` and run it through \
            `spec::Simulation` (this wrapper pins the old entry point's behavior)")]
pub fn run_placed(cfg: &SimConfig, jobs: &[JobSpec], policy: Placement) -> RunReport {
    exec_placed(cfg, jobs, policy).0
}

/// The static-run engine behind both [`run_placed`] and
/// [`crate::simulation::Simulation`]: dispatch on the configured queue
/// backend, run, and return the report plus the learned Q-table snapshot
/// (Q-adaptive runs only).
pub(crate) fn exec_placed(
    cfg: &SimConfig,
    jobs: &[JobSpec],
    policy: Placement,
) -> (RunReport, Option<dfsim_network::QTableSnapshot>) {
    if cfg.threads >= 2 {
        // Partitioned parallel engine: group-sharded network, conservative
        // lookahead windows, bit-identical reports at any partition count.
        return crate::partition::exec_placed_parallel(cfg, jobs, policy);
    }
    match cfg.queue.kind() {
        QueueKind::Heap => run_placed_on::<EventQueue<WorldEvent>>(cfg, jobs, policy),
        QueueKind::Calendar => run_placed_on::<CalendarQueue<WorldEvent>>(cfg, jobs, policy),
    }
}

/// [`exec_placed`] on a concrete queue backend `Q` (tuned from
/// [`SimConfig::queue`]).
fn run_placed_on<Q: SimQueue<WorldEvent>>(
    cfg: &SimConfig,
    jobs: &[JobSpec],
    policy: Placement,
) -> (RunReport, Option<dfsim_network::QTableSnapshot>) {
    debug_assert_eq!(Q::KIND, cfg.queue.kind(), "backend dispatch out of sync with config");
    cfg.validate().expect("invalid simulation config");
    // The topology is reference-counted: the network shares it with the
    // report builder instead of deep-cloning the structure per run.
    let topo = Arc::new(Topology::new(cfg.params).expect("validated params"));
    let sizes: Vec<u32> = jobs.iter().map(|j| j.size).collect();
    let partitions = place(&topo, policy, &sizes, cfg.seed);

    let rng = SimRng::new(cfg.seed);
    let mut rec = Recorder::new(&topo, cfg.recorder);
    if let Some(path) = &cfg.trace {
        let w = dfsim_metrics::TraceWriter::create(path).unwrap_or_else(|e| panic!("{e}"));
        rec.set_sink(Box::new(w));
    }
    let net = NetworkSim::new(Arc::clone(&topo), cfg.timing, cfg.routing.clone(), &rng);
    let mut mpi = MpiSim::new(MpiConfig { eager_threshold: cfg.eager_threshold });

    let mut app_jobs: Vec<&JobSpec> = Vec::with_capacity(jobs.len());
    for (job, nodes) in jobs.iter().zip(partitions) {
        if job.idle {
            continue; // reserved but empty partition
        }
        let i = app_jobs.len();
        let inst = job.kind.build(job.size, cfg.scale, cfg.seed ^ ((i as u64) << 32));
        mpi.add_app(AppId(i as u16), nodes, inst.programs, inst.comms);
        app_jobs.push(job);
    }

    let mut world = World::<Q>::with_backend(net, mpi, rec, cfg.queue);
    let wall = Instant::now();
    let (stop, end_time) = world.run(cfg.horizon, cfg.max_events);
    let wall_s = wall.elapsed().as_secs_f64();
    let snapshot = capture_qtables(cfg, &world.net);

    let starts = vec![0; app_jobs.len()]; // static runs: everything starts at t = 0
    let finished: Vec<Option<Time>> =
        (0..app_jobs.len()).map(|i| world.mpi.app_finished_at(AppId(i as u16))).collect();
    if let Some(sink) = world.rec.take_sink() {
        let meta = crate::trace::encode_meta(
            cfg,
            &app_jobs,
            &finished,
            world.queue.stats(),
            world.queue.events_processed(),
            stop,
            end_time,
            wall_s,
            &starts,
            &[],
        );
        sink.finish(Some(&meta)).unwrap_or_else(|e| panic!("trace finalization failed: {e}"));
    }
    let report = build_report(
        cfg,
        &app_jobs,
        &topo,
        &world.rec,
        &finished,
        world.queue.stats(),
        world.queue.events_processed(),
        stop,
        end_time,
        wall_s,
        &starts,
        Vec::new(),
    );
    (report, snapshot)
}

/// Capture the learned Q-tables of a finished world (Q-adaptive runs only)
/// and write them out if [`SimConfig::qtable_save`] is set (`validate`
/// already pinned the routing to Q-adaptive).
pub(crate) fn capture_qtables(
    cfg: &SimConfig,
    net: &NetworkSim,
) -> Option<dfsim_network::QTableSnapshot> {
    let snapshot = net.qtable_snapshot();
    if let Some(path) = &cfg.qtable_save {
        let snap = snapshot.as_ref().expect("qtable_save validated to require Q-adaptive routing");
        snap.save(path).unwrap_or_else(|e| panic!("{e}"));
    }
    snapshot
}

/// Run with the paper's random placement.
pub fn run(cfg: &SimConfig, jobs: &[JobSpec]) -> RunReport {
    exec_placed(cfg, jobs, Placement::Random).0
}

/// Assemble the [`RunReport`] of a finished run from its components (the
/// sequential engines pass their world's parts, the partitioned engine its
/// merged shard outcomes). `starts[i]` is job `i`'s admission time (0 for
/// static runs), subtracted so `exec_ms` is service time, not absolute
/// finish time; `finished[i]` is app `i`'s completion time if it completed;
/// `events` is the canonical processed-event count; `job_reports` carries
/// the per-job churn outcomes (empty for static runs).
#[allow(clippy::too_many_arguments)]
pub(crate) fn build_report(
    cfg: &SimConfig,
    jobs: &[&JobSpec],
    topo: &Topology,
    rec: &Recorder,
    finished: &[Option<Time>],
    stats: EngineStats,
    events: u64,
    stop: StopReason,
    end_time: Time,
    wall_s: f64,
    starts: &[Time],
    job_reports: Vec<JobReport>,
) -> RunReport {
    debug_assert_eq!(jobs.len(), starts.len());
    debug_assert_eq!(jobs.len(), finished.len());
    let apps = jobs
        .iter()
        .enumerate()
        .map(|(i, job)| {
            let id = AppId(i as u16);
            let record = rec.app(id);
            let exec = finished[i].unwrap_or(end_time).saturating_sub(starts[i]);
            let comm: Vec<f64> = record
                .map(|r| {
                    r.rank_comm.iter().map(|&(_, c, _)| c as f64 / MILLISECOND as f64).collect()
                })
                .unwrap_or_default();
            let (total_bytes, peak, latency, throughput, latency_series, ratio, detour) = record
                .map(|r| {
                    let lat = r.latencies.summarize();
                    let lat_us = dfsim_metrics::LatencySummary {
                        n: lat.n,
                        mean: lat.mean / MICROSECOND as f64,
                        q1: lat.q1 / MICROSECOND as f64,
                        median: lat.median / MICROSECOND as f64,
                        q3: lat.q3 / MICROSECOND as f64,
                        p95: lat.p95 / MICROSECOND as f64,
                        p99: lat.p99 / MICROSECOND as f64,
                        max: lat.max / MICROSECOND as f64,
                    };
                    let series = r
                        .latencies
                        .binned_mean(rec.config().bin_width)
                        .into_iter()
                        .map(|(t, v)| (t as f64 / MILLISECOND as f64, v / MICROSECOND as f64))
                        .collect();
                    let ratio = if r.packets_injected == 0 {
                        1.0
                    } else {
                        r.packets_delivered as f64 / r.packets_injected as f64
                    };
                    let detour = if r.packets_delivered == 0 {
                        0.0
                    } else {
                        r.packets_detoured as f64 / r.packets_delivered as f64
                    };
                    (
                        r.injected.total(),
                        r.max_ingress_burst,
                        lat_us,
                        r.delivered.as_gb_per_ms(),
                        series,
                        ratio,
                        detour,
                    )
                })
                .unwrap_or((0, 0, Default::default(), vec![], vec![], 1.0, 0.0));
            let exec_s = exec as f64 / 1e12;
            AppReport {
                name: job.kind.name().to_string(),
                app: i as u16,
                size: job.size,
                comm_ms: Stats::of(&comm),
                exec_ms: exec as f64 / MILLISECOND as f64,
                total_msg_mb: total_bytes as f64 / 1e6,
                inj_rate_gbs: if exec_s > 0.0 { total_bytes as f64 / 1e9 / exec_s } else { 0.0 },
                peak_ingress_bytes: peak,
                latency_us: latency,
                throughput,
                latency_series,
                delivery_ratio: ratio,
                detour_frac: detour,
                mean_hops: record
                    .map(|r| {
                        if r.packets_delivered == 0 {
                            0.0
                        } else {
                            r.hops_total as f64 / r.packets_delivered as f64
                        }
                    })
                    .unwrap_or(0.0),
            }
        })
        .collect();

    let network = network_report(topo, rec, end_time, cfg);

    let learning = (!rec.learning().is_empty()).then(|| {
        let trace = rec.learning();
        LearningReport {
            init: cfg.routing.qtable_init.label().to_string(),
            updates: trace.updates(),
            mean_abs_dq1_ns: trace.mean_abs() / 1e3,
            series: trace
                .series()
                .into_iter()
                .map(|(t, m)| (t as f64 / MILLISECOND as f64, m / 1e3))
                .collect(),
        }
    });

    let engine = EngineReport {
        backend: cfg.queue.describe(),
        events_scheduled: stats.events_scheduled,
        peak_pending: stats.peak_pending as u64,
        resizes: stats.resizes,
        bucket_scans: stats.bucket_scans,
        sparse_jumps: stats.sparse_jumps,
        final_buckets: stats.buckets as u64,
        final_width_ps: stats.width_ps,
        events_per_sec: if wall_s > 0.0 { stats.events_processed as f64 / wall_s } else { 0.0 },
    };

    RunReport {
        routing: cfg.routing.algo.label().to_string(),
        queue: cfg.queue.label().to_string(),
        seed: cfg.seed,
        scale: cfg.scale,
        completed: stop == StopReason::AllFinished,
        stop_reason: format!("{stop:?}"),
        sim_ms: end_time as f64 / MILLISECOND as f64,
        events,
        wall_s,
        apps,
        jobs: job_reports,
        network,
        engine,
        learning,
    }
}

fn network_report(
    topo: &Topology,
    rec: &Recorder,
    end_time: Time,
    cfg: &SimConfig,
) -> NetworkReport {
    let g = topo.num_groups() as usize;
    let mut local_stall = vec![0.0f64; g];
    let mut global_stall = vec![vec![0.0f64; g]; g];
    for (router, port, kind, stats) in rec.ports().iter() {
        let ms = stats.stall_ps as f64 / MILLISECOND as f64;
        match kind {
            LinkKind::Local => {
                local_stall[topo.group_of_router(RouterId(router)).idx()] += ms;
            }
            LinkKind::Global => {
                if let Some(dst) = topo.global_port_target(RouterId(router), Port(port)) {
                    let src = topo.group_of_router(RouterId(router)).idx();
                    global_stall[src][dst.idx()] += ms;
                }
            }
            LinkKind::Terminal => {}
        }
    }
    let avg_local = if g > 0 { local_stall.iter().sum::<f64>() / g as f64 } else { 0.0 };
    let used_globals = (g * (g - 1)).max(1) as f64;
    let avg_global = global_stall.iter().flatten().sum::<f64>() / used_globals;

    // A zero-length run has no meaningful link capacity to normalize by:
    // report zeroed congestion/throughput instead of computing indices
    // against a degenerate 1 ps capacity.
    let (congestion, mean_cong, std_cong, mean_tput) = if end_time == 0 {
        (vec![vec![0.0; g]; g], 0.0, 0.0, 0.0)
    } else {
        (
            rec.congestion().index_matrix(end_time, cfg.timing.bandwidth_gbps),
            rec.congestion().mean_global_index(end_time, cfg.timing.bandwidth_gbps),
            rec.congestion().std_global_index(end_time, cfg.timing.bandwidth_gbps),
            rec.system_delivered().mean_gb_per_ms(end_time),
        )
    };
    let lat = rec.system_latency();
    let system_latency_us = dfsim_metrics::LatencySummary {
        n: lat.n,
        mean: lat.mean / MICROSECOND as f64,
        q1: lat.q1 / MICROSECOND as f64,
        median: lat.median / MICROSECOND as f64,
        q3: lat.q3 / MICROSECOND as f64,
        p95: lat.p95 / MICROSECOND as f64,
        p99: lat.p99 / MICROSECOND as f64,
        max: lat.max / MICROSECOND as f64,
    };
    let sys = rec.system_delivered();
    NetworkReport {
        local_stall_ms: local_stall,
        global_stall_ms: global_stall,
        avg_local_stall_ms: avg_local,
        avg_global_stall_ms: avg_global,
        congestion,
        mean_global_congestion: mean_cong,
        std_global_congestion: std_cong,
        mean_system_throughput: mean_tput,
        system_throughput: sys.as_gb_per_ms(),
        total_delivered_gb: sys.total() as f64 / 1e9,
        system_latency_us,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfsim_network::RoutingAlgo;

    #[test]
    fn tiny_standalone_run_completes() {
        let cfg = SimConfig::test_tiny(RoutingAlgo::UgalG);
        let report = run(&cfg, &[JobSpec::sized(AppKind::UR, 36)]);
        assert!(report.completed, "stop: {}", report.stop_reason);
        assert_eq!(report.apps.len(), 1);
        let app = &report.apps[0];
        assert_eq!(app.name, "UR");
        assert!(app.exec_ms > 0.0);
        assert!(app.total_msg_mb > 0.0);
        assert!((app.delivery_ratio - 1.0).abs() < 1e-9);
        assert!(app.comm_ms.n == 36);
    }

    #[test]
    fn pairwise_tiny_run_reports_both_apps() {
        let cfg = SimConfig::test_tiny(RoutingAlgo::QAdaptive);
        let report =
            run(&cfg, &[JobSpec::sized(AppKind::CosmoFlow, 36), JobSpec::sized(AppKind::UR, 36)]);
        assert!(report.completed, "stop: {}", report.stop_reason);
        assert_eq!(report.apps.len(), 2);
        assert!(report.network.total_delivered_gb > 0.0);
        assert!(report.network.system_latency_us.n > 0);
    }

    #[test]
    fn determinism_same_seed_same_report() {
        let cfg = SimConfig::test_tiny(RoutingAlgo::Par);
        let a = run(&cfg, &[JobSpec::sized(AppKind::LU, 36)]);
        let b = run(&cfg, &[JobSpec::sized(AppKind::LU, 36)]);
        assert_eq!(a.sim_ms, b.sim_ms);
        assert_eq!(a.events, b.events);
        assert_eq!(a.apps[0].comm_ms.mean, b.apps[0].comm_ms.mean);
        assert_eq!(a.apps[0].peak_ingress_bytes, b.apps[0].peak_ingress_bytes);
    }

    #[test]
    fn empty_run_reports_zeroed_congestion() {
        // end_time == 0: no simulated time elapsed, so there is no link
        // capacity to normalize congestion by — everything reports 0
        // instead of indices computed against a degenerate 1 ps capacity.
        let cfg = SimConfig::test_tiny(RoutingAlgo::UgalG);
        let report = run(&cfg, &[]);
        assert_eq!(report.sim_ms, 0.0);
        assert_eq!(report.network.mean_global_congestion, 0.0);
        assert_eq!(report.network.std_global_congestion, 0.0);
        assert_eq!(report.network.mean_system_throughput, 0.0);
        assert!(report.network.congestion.iter().flatten().all(|&v| v == 0.0));
    }

    #[test]
    fn horizon_marks_run_incomplete() {
        let mut cfg = SimConfig::test_tiny(RoutingAlgo::UgalN);
        cfg.horizon = Some(1_000); // 1 ns: nothing finishes
        let report = run(&cfg, &[JobSpec::sized(AppKind::Halo3D, 36)]);
        assert!(!report.completed);
        assert_eq!(report.stop_reason, "Horizon");
    }
}
