//! Content-addressed result cache: canonical-spec hash in, [`RunReport`]
//! out.
//!
//! PR 5 made [`ExperimentSpec::emit`] byte-stable and PR 7 made reports
//! losslessly serializable; this module combines the two into a persistent
//! cache so re-running an experiment whose canonical spec was already
//! simulated is a disk read instead of a simulation:
//!
//! * [`cache_key`] — a stable 128-bit FNV-1a hash over the *normalized*
//!   canonical emit, salted with the [`CACHE_HEADER`] format version.
//!   Output-only knobs (`trace`, `qtable_save`, `snapshot`, `threads`,
//!   `cache` itself) and sweep-only fields the run does not consume are
//!   stripped before hashing, so they never cause spurious misses; the
//!   `qtable_load` *file content* (not its path) is folded in, so a
//!   changed snapshot under the same path invalidates the key.
//! * [`ResultCache`] — the disk store (one `KEY.report` file per entry
//!   under [`CacheMode`]'s directory): versioned little-endian blobs in the
//!   same encoder style as the PR 7 trace META blob, so cached reports
//!   replay bit for bit. Q-adaptive entries embed the learned Q-table
//!   snapshot, so a hit returns the full-fidelity
//!   [`crate::simulation::RunHandle`].
//! * Named failures ([`CacheError`]); a corrupt, truncated or
//!   version-bumped entry degrades to a **miss with a warning**, never an
//!   error — the cache must only ever make things faster.
//!
//! [`crate::simulation::Simulation::run`] consults the cache when the
//! spec's `cache` key enables it; the sweep binaries inherit the behavior
//! per cell through [`ExperimentSpec::cell`]. Process-wide hit/miss/store
//! counters ([`session_stats`]) feed the binaries' provenance summaries.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use dfsim_network::QTableSnapshot;

use crate::report::{AppReport, EngineReport, JobReport, LearningReport, NetworkReport, RunReport};
use crate::spec::{ExperimentSpec, Workload};
use crate::trace::{len_u32, put_f64, put_str, put_u32, put_u64, put_u8, Cur};
use dfsim_metrics::{LatencySummary, Stats};

/// Magic header of every cache entry file, and the version salt of every
/// cache key. Bumping it invalidates the whole cache: old entries fail the
/// header check and old keys never collide with new ones.
pub const CACHE_HEADER: &str = "dfsim-cache v1";

/// Environment variable naming the default cache directory of `cache on`.
pub const CACHE_DIR_ENV: &str = "DFSIM_CACHE_DIR";

/// Fallback cache directory when `cache on` is set and [`CACHE_DIR_ENV`]
/// is not.
pub const DEFAULT_CACHE_DIR: &str = ".dfsim-cache";

/// Version word leading the report blob inside an entry file.
const REPORT_BLOB_VERSION: u32 = 1;

// ---------------------------------------------------------------------------
// Mode
// ---------------------------------------------------------------------------

/// The spec's `cache` knob: where (and whether) run results are cached.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum CacheMode {
    /// No caching (the default).
    #[default]
    Off,
    /// Cache under [`CACHE_DIR_ENV`], falling back to
    /// [`DEFAULT_CACHE_DIR`].
    On,
    /// Cache under an explicit directory.
    Dir(PathBuf),
}

impl CacheMode {
    /// Parse the spec/CLI value: `on`, `off`, or a directory path (spell a
    /// literal directory named `on` as `./on`).
    pub fn parse(s: &str) -> Result<Self, String> {
        let t = s.trim();
        if t.is_empty() {
            return Err("empty cache value (valid: on, off, or a directory path)".to_string());
        }
        if t.eq_ignore_ascii_case("on") {
            Ok(CacheMode::On)
        } else if t.eq_ignore_ascii_case("off") {
            Ok(CacheMode::Off)
        } else {
            Ok(CacheMode::Dir(PathBuf::from(t)))
        }
    }

    /// Canonical spec-file rendering (the `cache` line's value).
    pub fn describe(&self) -> String {
        match self {
            CacheMode::Off => "off".to_string(),
            CacheMode::On => "on".to_string(),
            CacheMode::Dir(p) => p.display().to_string(),
        }
    }

    /// Whether this mode caches at all.
    pub fn enabled(&self) -> bool {
        !matches!(self, CacheMode::Off)
    }

    /// The directory this mode resolves to (`None` when off).
    pub fn dir(&self) -> Option<PathBuf> {
        match self {
            CacheMode::Off => None,
            CacheMode::On => Some(
                std::env::var(CACHE_DIR_ENV)
                    .ok()
                    .filter(|v| !v.trim().is_empty())
                    .map(PathBuf::from)
                    .unwrap_or_else(|| PathBuf::from(DEFAULT_CACHE_DIR)),
            ),
            CacheMode::Dir(p) => Some(p.clone()),
        }
    }
}

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Why a cache operation failed. Lookup paths treat every variant as a
/// miss (with a stderr warning); only the explicit maintenance commands
/// (`dfsim cache …`) surface them.
#[derive(Debug, Clone, PartialEq)]
pub enum CacheError {
    /// A filesystem operation failed.
    Io {
        /// The offending path.
        path: PathBuf,
        /// The OS error rendering.
        msg: String,
    },
    /// An entry (or blob) carries an unknown format version.
    Version {
        /// What was found instead of [`CACHE_HEADER`] (or the blob
        /// version word).
        found: String,
    },
    /// An entry's recorded key does not match the key that addressed it
    /// (a renamed or hash-collided file).
    HashMismatch {
        /// The key the entry was looked up under.
        expected: String,
        /// The key recorded inside the entry.
        found: String,
    },
    /// An entry is structurally broken (truncated, bad UTF-8, …).
    Malformed {
        /// What was wrong.
        msg: String,
    },
}

impl std::fmt::Display for CacheError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CacheError::Io { path, msg } => write!(f, "cache {}: {msg}", path.display()),
            CacheError::Version { found } => {
                write!(
                    f,
                    "cache entry version mismatch: expected '{CACHE_HEADER}', found '{found}'"
                )
            }
            CacheError::HashMismatch { expected, found } => {
                write!(f, "cache entry key mismatch: addressed as {expected}, recorded as {found}")
            }
            CacheError::Malformed { msg } => write!(f, "malformed cache entry: {msg}"),
        }
    }
}

impl std::error::Error for CacheError {}

// ---------------------------------------------------------------------------
// Keys
// ---------------------------------------------------------------------------

/// A content-addressed cache key: FNV-1a-128 over the version-salted,
/// normalized canonical spec emit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey(u128);

impl CacheKey {
    /// 32-char lowercase hex form (the entry's file stem).
    pub fn hex(&self) -> String {
        format!("{:032x}", self.0)
    }
}

impl std::fmt::Display for CacheKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.hex())
    }
}

/// FNV-1a, 128-bit (offset basis and prime per the FNV reference).
fn fnv1a_128(bytes: &[u8]) -> u128 {
    const OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
    const PRIME: u128 = 0x0000000001000000000000000000013B;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= b as u128;
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// The spec projected onto exactly the fields that determine the report.
///
/// Stripped (outputs or host-side knobs a run's report is invariant
/// under — partition-count bit-identity is pinned by the
/// `partition_equivalence` suite):
/// `trace`, `qtable_save`, `snapshot`, `threads`, `cache`.
/// Also stripped: the sweep-orchestration fields (`targets`, `train`) and,
/// for non-Poisson workloads, the Poisson generator fields
/// (`rates`/`jobs`/`apps`/`sizes`) that only a `workload poisson` run
/// consumes. Poisson runs keep `rates` truncated to the first entry (the
/// only one the generator reads).
/// How one spec key participates in the content-addressed cache key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeyClass {
    /// Changing the key can change the report: full key material.
    Relevant,
    /// Output-only or host-side knob the report is provably invariant
    /// under: stripped by [`normalized_for_key`].
    Normalized,
    /// Participates by the *content* of the file it names, not by the
    /// path value itself (`qtable_load`).
    ContentHashed,
    /// Workload-conditional: key material only for the workload forms
    /// that read it, stripped otherwise (the Poisson generator fields).
    Conditional,
}

/// Explicit cache classification of **every** spec key.
///
/// This is the machine-checked contract behind [`normalized_for_key`]:
/// `dfsim-lint`'s cache-key-coverage rule parses this table and
/// `spec.rs`'s `SPEC_KEYS` registry out of the source and fails the build
/// unless they agree key-for-key (and [`tests::classification_covers_every_spec_key`]
/// pins the same in-process), so a future spec key that changes run
/// behaviour can never silently reuse a stale cached report — the author
/// must decide its class here, on the record.
pub const KEY_CLASSIFICATION: [(&str, KeyClass); 31] = [
    ("workload", KeyClass::Relevant),
    ("topology", KeyClass::Relevant),
    ("timing", KeyClass::Relevant),
    ("routing", KeyClass::Relevant),
    ("ugal_bias", KeyClass::Relevant),
    ("nonmin_samples", KeyClass::Relevant),
    ("qa_alpha", KeyClass::Relevant),
    ("qa_epsilon", KeyClass::Relevant),
    ("qtable_load", KeyClass::ContentHashed),
    ("qtable_save", KeyClass::Normalized),
    ("scale", KeyClass::Relevant),
    ("seed", KeyClass::Relevant),
    ("placement", KeyClass::Relevant),
    ("queue", KeyClass::Relevant),
    ("sched", KeyClass::Relevant),
    ("eager_threshold", KeyClass::Relevant),
    ("horizon", KeyClass::Relevant),
    ("max_events", KeyClass::Relevant),
    ("bin_width", KeyClass::Relevant),
    ("record_latencies", KeyClass::Relevant),
    ("record_ports", KeyClass::Relevant),
    ("rates", KeyClass::Conditional),
    ("jobs", KeyClass::Conditional),
    ("apps", KeyClass::Conditional),
    ("sizes", KeyClass::Conditional),
    ("targets", KeyClass::Normalized),
    ("train", KeyClass::Normalized),
    ("snapshot", KeyClass::Normalized),
    ("trace", KeyClass::Normalized),
    ("cache", KeyClass::Normalized),
    ("threads", KeyClass::Normalized),
];

fn normalized_for_key(spec: &ExperimentSpec) -> ExperimentSpec {
    let d = ExperimentSpec::default();
    let mut k = spec.clone();
    k.trace = None;
    k.qtable_save = None;
    k.snapshot = None;
    k.threads = 0;
    k.cache = CacheMode::Off;
    k.targets = Vec::new();
    k.train = d.train;
    // `qtable_load` participates by file *content*, folded into the key
    // material separately — the path itself must not matter.
    k.qtable_load = None;
    match k.workload {
        Workload::Poisson => k.rates.truncate(1),
        _ => {
            k.rates = d.rates;
            k.jobs = d.jobs;
            k.apps = d.apps;
            k.sizes = d.sizes;
        }
    }
    k
}

/// Compute the content-addressed key of a spec. Fails (as a lookup-level
/// miss) only when a configured `qtable_load` snapshot cannot be read for
/// content-hashing.
pub fn cache_key(spec: &ExperimentSpec) -> Result<CacheKey, CacheError> {
    let mut material = String::new();
    material.push_str(CACHE_HEADER);
    material.push('\n');
    if let Some(path) = &spec.qtable_load {
        let bytes = std::fs::read(path)
            .map_err(|e| CacheError::Io { path: path.clone(), msg: e.to_string() })?;
        material.push_str(&format!("qtable_load_content {:032x}\n", fnv1a_128(&bytes)));
    }
    material.push_str(&normalized_for_key(spec).emit());
    Ok(CacheKey(fnv1a_128(material.as_bytes())))
}

// ---------------------------------------------------------------------------
// Report blob codec
// ---------------------------------------------------------------------------

fn put_stats(b: &mut Vec<u8>, s: &Stats) {
    put_u64(b, s.n as u64);
    put_f64(b, s.mean);
    put_f64(b, s.std);
    put_f64(b, s.min);
    put_f64(b, s.max);
}

fn put_latency(b: &mut Vec<u8>, l: &LatencySummary) {
    put_u64(b, l.n as u64);
    put_f64(b, l.mean);
    put_f64(b, l.q1);
    put_f64(b, l.median);
    put_f64(b, l.q3);
    put_f64(b, l.p95);
    put_f64(b, l.p99);
    put_f64(b, l.max);
}

fn put_series(b: &mut Vec<u8>, s: &[(f64, f64)]) {
    put_u32(b, len_u32(s.len(), "a series length"));
    for &(x, y) in s {
        put_f64(b, x);
        put_f64(b, y);
    }
}

fn put_f64s(b: &mut Vec<u8>, v: &[f64]) {
    put_u32(b, len_u32(v.len(), "a vector length"));
    for &x in v {
        put_f64(b, x);
    }
}

fn put_matrix(b: &mut Vec<u8>, m: &[Vec<f64>]) {
    put_u32(b, len_u32(m.len(), "a matrix row count"));
    for row in m {
        put_f64s(b, row);
    }
}

fn put_opt_f64(b: &mut Vec<u8>, v: Option<f64>) {
    put_u8(b, u8::from(v.is_some()));
    put_f64(b, v.unwrap_or(0.0));
}

/// Encode a full [`RunReport`] as a versioned little-endian blob (`f64`s
/// as raw bits, so a decoded report is bit-identical to the original).
/// Tests compare reports by comparing these bytes — the report type itself
/// deliberately has no `PartialEq`.
pub fn encode_report(r: &RunReport) -> Vec<u8> {
    let mut b = Vec::with_capacity(4096);
    put_u32(&mut b, REPORT_BLOB_VERSION);
    put_str(&mut b, &r.routing);
    put_str(&mut b, &r.queue);
    put_u64(&mut b, r.seed);
    put_f64(&mut b, r.scale);
    put_u8(&mut b, u8::from(r.completed));
    put_str(&mut b, &r.stop_reason);
    put_f64(&mut b, r.sim_ms);
    put_u64(&mut b, r.events);
    put_f64(&mut b, r.wall_s);
    put_u32(&mut b, len_u32(r.apps.len(), "the app count"));
    for a in &r.apps {
        put_str(&mut b, &a.name);
        put_u32(&mut b, u32::from(a.app));
        put_u32(&mut b, a.size);
        put_stats(&mut b, &a.comm_ms);
        put_f64(&mut b, a.exec_ms);
        put_f64(&mut b, a.total_msg_mb);
        put_f64(&mut b, a.inj_rate_gbs);
        put_u64(&mut b, a.peak_ingress_bytes);
        put_latency(&mut b, &a.latency_us);
        put_series(&mut b, &a.throughput);
        put_series(&mut b, &a.latency_series);
        put_f64(&mut b, a.delivery_ratio);
        put_f64(&mut b, a.detour_frac);
        put_f64(&mut b, a.mean_hops);
    }
    put_u32(&mut b, len_u32(r.jobs.len(), "the job count"));
    for j in &r.jobs {
        put_u32(&mut b, j.job);
        put_str(&mut b, &j.name);
        put_u32(&mut b, j.size);
        put_f64(&mut b, j.arrival_ms);
        put_opt_f64(&mut b, j.start_ms);
        put_opt_f64(&mut b, j.finish_ms);
        put_f64(&mut b, j.wait_ms);
        put_f64(&mut b, j.run_ms);
        put_f64(&mut b, j.response_ms);
        put_opt_f64(&mut b, j.slowdown);
        put_u8(&mut b, u8::from(j.completed));
    }
    let n = &r.network;
    put_f64s(&mut b, &n.local_stall_ms);
    put_matrix(&mut b, &n.global_stall_ms);
    put_f64(&mut b, n.avg_local_stall_ms);
    put_f64(&mut b, n.avg_global_stall_ms);
    put_matrix(&mut b, &n.congestion);
    put_f64(&mut b, n.mean_global_congestion);
    put_f64(&mut b, n.std_global_congestion);
    put_latency(&mut b, &n.system_latency_us);
    put_series(&mut b, &n.system_throughput);
    put_f64(&mut b, n.mean_system_throughput);
    put_f64(&mut b, n.total_delivered_gb);
    let e = &r.engine;
    put_str(&mut b, &e.backend);
    put_u64(&mut b, e.events_scheduled);
    put_u64(&mut b, e.peak_pending);
    put_u64(&mut b, e.resizes);
    put_u64(&mut b, e.bucket_scans);
    put_u64(&mut b, e.sparse_jumps);
    put_u64(&mut b, e.final_buckets);
    put_u64(&mut b, e.final_width_ps);
    put_f64(&mut b, e.events_per_sec);
    match &r.learning {
        None => put_u8(&mut b, 0),
        Some(l) => {
            put_u8(&mut b, 1);
            put_str(&mut b, &l.init);
            put_u64(&mut b, l.updates);
            put_f64(&mut b, l.mean_abs_dq1_ns);
            put_series(&mut b, &l.series);
        }
    }
    b
}

/// Map a trace-cursor failure onto the cache's named error.
fn cur_err(e: dfsim_metrics::trace::TraceError) -> CacheError {
    CacheError::Malformed { msg: e.to_string() }
}

fn get_stats(c: &mut Cur<'_>, what: &'static str) -> Result<Stats, CacheError> {
    Ok(Stats {
        n: c.count64(what).map_err(cur_err)?,
        mean: c.f64(what).map_err(cur_err)?,
        std: c.f64(what).map_err(cur_err)?,
        min: c.f64(what).map_err(cur_err)?,
        max: c.f64(what).map_err(cur_err)?,
    })
}

fn get_latency(c: &mut Cur<'_>, what: &'static str) -> Result<LatencySummary, CacheError> {
    Ok(LatencySummary {
        n: c.count64(what).map_err(cur_err)?,
        mean: c.f64(what).map_err(cur_err)?,
        q1: c.f64(what).map_err(cur_err)?,
        median: c.f64(what).map_err(cur_err)?,
        q3: c.f64(what).map_err(cur_err)?,
        p95: c.f64(what).map_err(cur_err)?,
        p99: c.f64(what).map_err(cur_err)?,
        max: c.f64(what).map_err(cur_err)?,
    })
}

fn get_series(c: &mut Cur<'_>, what: &'static str) -> Result<Vec<(f64, f64)>, CacheError> {
    let n = c.len(what).map_err(cur_err)?;
    let mut v = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        v.push((c.f64(what).map_err(cur_err)?, c.f64(what).map_err(cur_err)?));
    }
    Ok(v)
}

fn get_f64s(c: &mut Cur<'_>, what: &'static str) -> Result<Vec<f64>, CacheError> {
    let n = c.len(what).map_err(cur_err)?;
    let mut v = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        v.push(c.f64(what).map_err(cur_err)?);
    }
    Ok(v)
}

fn get_matrix(c: &mut Cur<'_>, what: &'static str) -> Result<Vec<Vec<f64>>, CacheError> {
    let n = c.len(what).map_err(cur_err)?;
    let mut m = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        m.push(get_f64s(c, what)?);
    }
    Ok(m)
}

fn get_opt_f64(c: &mut Cur<'_>, what: &'static str) -> Result<Option<f64>, CacheError> {
    c.opt_f64(what).map_err(cur_err)
}

/// Decode a blob written by [`encode_report`].
pub fn decode_report(blob: &[u8]) -> Result<RunReport, CacheError> {
    let mut c = Cur::new(blob);
    let ver = c.u32("the report blob version").map_err(cur_err)?;
    if ver != REPORT_BLOB_VERSION {
        return Err(CacheError::Version { found: format!("report blob v{ver}") });
    }
    let routing = c.str("routing").map_err(cur_err)?;
    let queue = c.str("queue").map_err(cur_err)?;
    let seed = c.u64("seed").map_err(cur_err)?;
    let scale = c.f64("scale").map_err(cur_err)?;
    let completed = c.u8("completed").map_err(cur_err)? != 0;
    let stop_reason = c.str("stop_reason").map_err(cur_err)?;
    let sim_ms = c.f64("sim_ms").map_err(cur_err)?;
    let events = c.u64("events").map_err(cur_err)?;
    let wall_s = c.f64("wall_s").map_err(cur_err)?;
    let napps = c.len("app count").map_err(cur_err)?;
    let mut apps = Vec::with_capacity(napps.min(1 << 16));
    for _ in 0..napps {
        let name = c.str("app.name").map_err(cur_err)?;
        let app_word = c.u32("app.app").map_err(cur_err)?;
        let app = u16::try_from(app_word).map_err(|_| CacheError::Malformed {
            msg: format!("app id {app_word} overflows u16"),
        })?;
        apps.push(AppReport {
            name,
            app,
            size: c.u32("app.size").map_err(cur_err)?,
            comm_ms: get_stats(&mut c, "app.comm_ms")?,
            exec_ms: c.f64("app.exec_ms").map_err(cur_err)?,
            total_msg_mb: c.f64("app.total_msg_mb").map_err(cur_err)?,
            inj_rate_gbs: c.f64("app.inj_rate_gbs").map_err(cur_err)?,
            peak_ingress_bytes: c.u64("app.peak_ingress_bytes").map_err(cur_err)?,
            latency_us: get_latency(&mut c, "app.latency_us")?,
            throughput: get_series(&mut c, "app.throughput")?,
            latency_series: get_series(&mut c, "app.latency_series")?,
            delivery_ratio: c.f64("app.delivery_ratio").map_err(cur_err)?,
            detour_frac: c.f64("app.detour_frac").map_err(cur_err)?,
            mean_hops: c.f64("app.mean_hops").map_err(cur_err)?,
        });
    }
    let njobs = c.len("job count").map_err(cur_err)?;
    let mut jobs = Vec::with_capacity(njobs.min(1 << 20));
    for _ in 0..njobs {
        jobs.push(JobReport {
            job: c.u32("job.job").map_err(cur_err)?,
            name: c.str("job.name").map_err(cur_err)?,
            size: c.u32("job.size").map_err(cur_err)?,
            arrival_ms: c.f64("job.arrival_ms").map_err(cur_err)?,
            start_ms: get_opt_f64(&mut c, "job.start_ms")?,
            finish_ms: get_opt_f64(&mut c, "job.finish_ms")?,
            wait_ms: c.f64("job.wait_ms").map_err(cur_err)?,
            run_ms: c.f64("job.run_ms").map_err(cur_err)?,
            response_ms: c.f64("job.response_ms").map_err(cur_err)?,
            slowdown: get_opt_f64(&mut c, "job.slowdown")?,
            completed: c.u8("job.completed").map_err(cur_err)? != 0,
        });
    }
    let network = NetworkReport {
        local_stall_ms: get_f64s(&mut c, "network.local_stall_ms")?,
        global_stall_ms: get_matrix(&mut c, "network.global_stall_ms")?,
        avg_local_stall_ms: c.f64("network.avg_local_stall_ms").map_err(cur_err)?,
        avg_global_stall_ms: c.f64("network.avg_global_stall_ms").map_err(cur_err)?,
        congestion: get_matrix(&mut c, "network.congestion")?,
        mean_global_congestion: c.f64("network.mean_global_congestion").map_err(cur_err)?,
        std_global_congestion: c.f64("network.std_global_congestion").map_err(cur_err)?,
        system_latency_us: get_latency(&mut c, "network.system_latency_us")?,
        system_throughput: get_series(&mut c, "network.system_throughput")?,
        mean_system_throughput: c.f64("network.mean_system_throughput").map_err(cur_err)?,
        total_delivered_gb: c.f64("network.total_delivered_gb").map_err(cur_err)?,
    };
    let engine = EngineReport {
        backend: c.str("engine.backend").map_err(cur_err)?,
        events_scheduled: c.u64("engine.events_scheduled").map_err(cur_err)?,
        peak_pending: c.u64("engine.peak_pending").map_err(cur_err)?,
        resizes: c.u64("engine.resizes").map_err(cur_err)?,
        bucket_scans: c.u64("engine.bucket_scans").map_err(cur_err)?,
        sparse_jumps: c.u64("engine.sparse_jumps").map_err(cur_err)?,
        final_buckets: c.u64("engine.final_buckets").map_err(cur_err)?,
        final_width_ps: c.u64("engine.final_width_ps").map_err(cur_err)?,
        events_per_sec: c.f64("engine.events_per_sec").map_err(cur_err)?,
    };
    let learning = if c.u8("learning flag").map_err(cur_err)? != 0 {
        Some(LearningReport {
            init: c.str("learning.init").map_err(cur_err)?,
            updates: c.u64("learning.updates").map_err(cur_err)?,
            mean_abs_dq1_ns: c.f64("learning.mean_abs_dq1_ns").map_err(cur_err)?,
            series: get_series(&mut c, "learning.series")?,
        })
    } else {
        None
    };
    Ok(RunReport {
        routing,
        queue,
        seed,
        scale,
        completed,
        stop_reason,
        sim_ms,
        events,
        wall_s,
        apps,
        jobs,
        network,
        engine,
        learning,
    })
}

// ---------------------------------------------------------------------------
// The disk store
// ---------------------------------------------------------------------------

/// One decoded cache entry: the report plus the Q-table snapshot a
/// Q-adaptive run learned (embedded so a hit can still honor
/// `qtable_save`).
#[derive(Debug, Clone)]
pub struct CacheEntry {
    /// The cached run report (bit-identical to the original).
    pub report: RunReport,
    /// The learned Q-tables of the original run (Q-adaptive only).
    pub snapshot: Option<QTableSnapshot>,
}

/// Aggregate statistics of a cache directory.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Number of `.report` entries.
    pub entries: u64,
    /// Total bytes they occupy.
    pub bytes: u64,
}

/// One entry's listing row (`dfsim cache ls`).
#[derive(Debug, Clone)]
pub struct CacheEntryInfo {
    /// The 32-hex-char key (file stem).
    pub key: String,
    /// Entry size, bytes.
    pub bytes: u64,
    /// Seconds since the entry was written (0 when mtime is unavailable).
    pub age_s: u64,
    /// `routing/queue seed scale` of the cached report, or a corruption
    /// note.
    pub describe: String,
}

/// What a [`ResultCache::gc`] pass did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GcOutcome {
    /// Entries removed.
    pub removed: u64,
    /// Bytes freed.
    pub freed_bytes: u64,
    /// Entries kept.
    pub kept: u64,
    /// Bytes kept.
    pub kept_bytes: u64,
}

// Process-wide provenance counters (the binaries' cache summaries).
static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);
static STORES: AtomicU64 = AtomicU64::new(0);

/// Process-wide cache hit/miss/store counts since startup.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Lookups served from disk.
    pub hits: u64,
    /// Lookups that fell through to a live simulation (including corrupt
    /// entries degraded to misses).
    pub misses: u64,
    /// Entries written after live runs.
    pub stores: u64,
}

/// Read the process-wide cache counters.
pub fn session_stats() -> SessionStats {
    SessionStats {
        hits: HITS.load(Ordering::Relaxed),
        misses: MISSES.load(Ordering::Relaxed),
        stores: STORES.load(Ordering::Relaxed),
    }
}

/// A content-addressed report store rooted at one directory.
#[derive(Debug, Clone)]
pub struct ResultCache {
    dir: PathBuf,
}

impl ResultCache {
    /// Open (creating if necessary) the store `mode` names. `Ok(None)`
    /// when the mode is [`CacheMode::Off`].
    pub fn open(mode: &CacheMode) -> Result<Option<Self>, CacheError> {
        let Some(dir) = mode.dir() else { return Ok(None) };
        std::fs::create_dir_all(&dir)
            .map_err(|e| CacheError::Io { path: dir.clone(), msg: e.to_string() })?;
        Ok(Some(Self { dir }))
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The entry file a key addresses.
    pub fn entry_path(&self, key: &CacheKey) -> PathBuf {
        self.dir.join(format!("{}.report", key.hex()))
    }

    /// Strict load: `Ok(None)` when the entry does not exist, a named
    /// error when it exists but cannot be decoded. The lenient lookup the
    /// run path uses is [`Self::lookup`].
    pub fn load(&self, key: &CacheKey) -> Result<Option<CacheEntry>, CacheError> {
        let path = self.entry_path(key);
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(CacheError::Io { path, msg: e.to_string() }),
        };
        Ok(Some(decode_entry(&bytes, key)?))
    }

    /// Lenient lookup for the run path: any failure (corrupt entry,
    /// version bump, unreadable file) degrades to a miss with a one-line
    /// stderr warning. Counts into [`session_stats`].
    pub fn lookup(&self, key: &CacheKey) -> Option<CacheEntry> {
        match self.load(key) {
            Ok(Some(entry)) => {
                HITS.fetch_add(1, Ordering::Relaxed);
                Some(entry)
            }
            Ok(None) => {
                MISSES.fetch_add(1, Ordering::Relaxed);
                None
            }
            Err(e) => {
                eprintln!(
                    "warning: result cache entry {} unusable ({e}); simulating",
                    self.entry_path(key).display()
                );
                MISSES.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Write an entry (atomically: temp file + rename, so parallel sweep
    /// cells never observe a half-written entry).
    pub fn store(
        &self,
        key: &CacheKey,
        report: &RunReport,
        snapshot: Option<&QTableSnapshot>,
    ) -> Result<(), CacheError> {
        let mut bytes = Vec::with_capacity(4096);
        bytes.extend_from_slice(CACHE_HEADER.as_bytes());
        bytes.push(b'\n');
        bytes.extend_from_slice(key.hex().as_bytes());
        bytes.push(b'\n');
        let blob = encode_report(report);
        put_u32(&mut bytes, len_u32(blob.len(), "the report blob length"));
        bytes.extend_from_slice(&blob);
        match snapshot {
            None => put_u8(&mut bytes, 0),
            Some(s) => {
                put_u8(&mut bytes, 1);
                let text = s.to_text();
                put_u32(&mut bytes, len_u32(text.len(), "the snapshot text length"));
                bytes.extend_from_slice(text.as_bytes());
            }
        }
        let path = self.entry_path(key);
        let tmp = self.dir.join(format!(
            "{}.tmp.{}.{}",
            key.hex(),
            std::process::id(),
            STORES.load(Ordering::Relaxed)
        ));
        let io = |p: &Path, e: std::io::Error| CacheError::Io {
            path: p.to_path_buf(),
            msg: e.to_string(),
        };
        std::fs::write(&tmp, &bytes).map_err(|e| io(&tmp, e))?;
        std::fs::rename(&tmp, &path).map_err(|e| {
            let _ = std::fs::remove_file(&tmp);
            io(&path, e)
        })?;
        STORES.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// [`Self::store`] for the run path: a failed write warns and moves on
    /// (a cache must never fail a run that just succeeded).
    pub fn store_lenient(
        &self,
        key: &CacheKey,
        report: &RunReport,
        snapshot: Option<&QTableSnapshot>,
    ) {
        if let Err(e) = self.store(key, report, snapshot) {
            eprintln!("warning: result cache store failed ({e}); result not cached");
        }
    }

    /// Every `.report` entry's `(path, bytes, modified)`, oldest first.
    fn raw_entries(&self) -> Result<Vec<(PathBuf, u64, std::time::SystemTime)>, CacheError> {
        let io = |e: std::io::Error| CacheError::Io { path: self.dir.clone(), msg: e.to_string() };
        let mut out = Vec::new();
        for entry in std::fs::read_dir(&self.dir).map_err(io)? {
            let entry = entry.map_err(io)?;
            let path = entry.path();
            if path.extension().and_then(|e| e.to_str()) != Some("report") {
                continue;
            }
            let meta = entry.metadata().map_err(io)?;
            let mtime = meta.modified().unwrap_or(std::time::UNIX_EPOCH);
            out.push((path, meta.len(), mtime));
        }
        out.sort_by_key(|(_, _, t)| *t);
        Ok(out)
    }

    /// Aggregate entry count and byte total.
    pub fn stats(&self) -> Result<CacheStats, CacheError> {
        let mut s = CacheStats::default();
        for (_, bytes, _) in self.raw_entries()? {
            s.entries += 1;
            s.bytes += bytes;
        }
        Ok(s)
    }

    /// Listing rows for `dfsim cache ls`, oldest first. Each row decodes
    /// its entry to describe the cached run; undecodable entries are
    /// listed with the failure instead of being hidden.
    pub fn entries(&self) -> Result<Vec<CacheEntryInfo>, CacheError> {
        let now = std::time::SystemTime::now();
        let mut out = Vec::new();
        for (path, bytes, mtime) in self.raw_entries()? {
            let key = path.file_stem().and_then(|s| s.to_str()).unwrap_or("?").to_string();
            let describe = match std::fs::read(&path) {
                Ok(raw) => match decode_entry_unchecked(&raw) {
                    Ok(entry) => {
                        let r = &entry.report;
                        format!(
                            "{}/{} seed {} scale {}{}",
                            r.routing,
                            r.queue,
                            r.seed,
                            r.scale,
                            if entry.snapshot.is_some() { " +qtables" } else { "" }
                        )
                    }
                    Err(e) => format!("(unusable: {e})"),
                },
                Err(e) => format!("(unreadable: {e})"),
            };
            let age_s = now.duration_since(mtime).map(|d| d.as_secs()).unwrap_or(0);
            out.push(CacheEntryInfo { key, bytes, age_s, describe });
        }
        Ok(out)
    }

    /// Evict entries: first everything older than `max_age_s` seconds,
    /// then (if `max_bytes` is set) oldest-first until the directory fits.
    pub fn gc(
        &self,
        max_age_s: Option<u64>,
        max_bytes: Option<u64>,
    ) -> Result<GcOutcome, CacheError> {
        let now = std::time::SystemTime::now();
        let mut entries = self.raw_entries()?;
        let mut out = GcOutcome::default();
        let io = |p: &Path, e: std::io::Error| CacheError::Io {
            path: p.to_path_buf(),
            msg: e.to_string(),
        };
        if let Some(age) = max_age_s {
            let mut kept = Vec::new();
            for (path, bytes, mtime) in entries {
                let age_s = now.duration_since(mtime).map(|d| d.as_secs()).unwrap_or(0);
                if age_s > age {
                    std::fs::remove_file(&path).map_err(|e| io(&path, e))?;
                    out.removed += 1;
                    out.freed_bytes += bytes;
                } else {
                    kept.push((path, bytes, mtime));
                }
            }
            entries = kept;
        }
        if let Some(cap) = max_bytes {
            let mut total: u64 = entries.iter().map(|(_, b, _)| b).sum();
            let mut evicted = 0;
            for (path, bytes, _) in &entries {
                if total <= cap {
                    break;
                }
                std::fs::remove_file(path).map_err(|e| io(path, e))?;
                out.removed += 1;
                out.freed_bytes += bytes;
                total -= bytes;
                evicted += 1;
            }
            entries.drain(..evicted);
        }
        out.kept = entries.len() as u64;
        out.kept_bytes = entries.iter().map(|(_, b, _)| b).sum();
        Ok(out)
    }
}

/// Decode an entry file, verifying header and recorded key.
fn decode_entry(bytes: &[u8], key: &CacheKey) -> Result<CacheEntry, CacheError> {
    let (entry, recorded) = decode_entry_inner(bytes)?;
    if recorded != key.hex() {
        return Err(CacheError::HashMismatch { expected: key.hex(), found: recorded });
    }
    Ok(entry)
}

/// Decode an entry file without a key to check against (`dfsim cache ls`).
fn decode_entry_unchecked(bytes: &[u8]) -> Result<CacheEntry, CacheError> {
    decode_entry_inner(bytes).map(|(e, _)| e)
}

fn decode_entry_inner(bytes: &[u8]) -> Result<(CacheEntry, String), CacheError> {
    let malformed = |msg: &str| CacheError::Malformed { msg: msg.to_string() };
    let mut rest = bytes;
    let mut line = |what: &str| -> Result<String, CacheError> {
        let nl = rest
            .iter()
            .position(|&b| b == b'\n')
            .ok_or_else(|| malformed(&format!("missing {what} line")))?;
        let (head, tail) = rest.split_at(nl);
        let s = std::str::from_utf8(head)
            .map_err(|_| malformed(&format!("{what} line is not UTF-8")))?
            .to_string();
        // `tail` starts at the newline `position` found, so it is never empty.
        rest = tail.get(1..).unwrap_or(&[]);
        Ok(s)
    };
    let header = line("header")?;
    if header != CACHE_HEADER {
        return Err(CacheError::Version { found: header });
    }
    let recorded_key = line("key")?;
    let mut c = Cur::new(rest);
    let blob_len = c.len("report blob length").map_err(cur_err)?;
    let blob = c.bytes(blob_len, "report blob").map_err(cur_err)?;
    let report = decode_report(blob)?;
    let snapshot = if c.u8("snapshot flag").map_err(cur_err)? != 0 {
        let len = c.len("snapshot length").map_err(cur_err)?;
        let raw = c.bytes(len, "snapshot text").map_err(cur_err)?;
        let text = std::str::from_utf8(raw).map_err(|_| malformed("snapshot is not UTF-8"))?;
        Some(
            QTableSnapshot::from_text(text)
                .map_err(|e| malformed(&format!("embedded snapshot: {e}")))?,
        )
    } else {
        None
    };
    Ok((CacheEntry { report, snapshot }, recorded_key))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfsim_apps::AppKind;
    use dfsim_network::RoutingAlgo;

    #[test]
    fn fnv_reference_vectors() {
        // FNV-1a 128 of the empty string is the offset basis; "a" and
        // "foobar" exercise the prime multiply.
        assert_eq!(fnv1a_128(b""), 0x6c62272e07bb014262b821756295c58d);
        assert_ne!(fnv1a_128(b"a"), fnv1a_128(b"b"));
        assert_ne!(fnv1a_128(b"foobar"), fnv1a_128(b"foobaz"));
    }

    #[test]
    fn cache_mode_parses_and_round_trips() {
        assert_eq!(CacheMode::parse("on").unwrap(), CacheMode::On);
        assert_eq!(CacheMode::parse("OFF").unwrap(), CacheMode::Off);
        assert_eq!(CacheMode::parse("/tmp/c").unwrap(), CacheMode::Dir("/tmp/c".into()));
        assert!(CacheMode::parse("  ").is_err());
        for m in [CacheMode::Off, CacheMode::On, CacheMode::Dir("/tmp/c".into())] {
            assert_eq!(CacheMode::parse(&m.describe()).unwrap(), m);
        }
    }

    #[test]
    fn key_is_stable_under_output_knobs_and_distinct_under_inputs() {
        let base = ExperimentSpec { routings: vec![RoutingAlgo::UgalG], ..Default::default() };
        let key = cache_key(&base).unwrap();
        // Output-only knobs must not move the key.
        let mut traced = base.clone();
        traced.trace = Some("/tmp/t.trace".into());
        traced.threads = 4;
        traced.cache = CacheMode::On;
        assert_eq!(cache_key(&traced).unwrap(), key);
        // Inputs must.
        let mut seeded = base.clone();
        seeded.seed += 1;
        assert_ne!(cache_key(&seeded).unwrap(), key);
        let mut scaled = base.clone();
        scaled.scale *= 2.0;
        assert_ne!(cache_key(&scaled).unwrap(), key);
        let mut routed = base.clone();
        routed.routings = vec![RoutingAlgo::Par];
        assert_ne!(cache_key(&routed).unwrap(), key);
    }

    /// The in-process half of the cache-key-coverage contract (the other
    /// half is `dfsim-lint` parsing both lists out of the source): every
    /// spec key is classified, exactly once, and no stale entries remain.
    #[test]
    fn classification_covers_every_spec_key() {
        use crate::spec::SPEC_KEYS;
        assert_eq!(KEY_CLASSIFICATION.len(), SPEC_KEYS.len());
        for key in SPEC_KEYS {
            let n = KEY_CLASSIFICATION.iter().filter(|(k, _)| *k == key).count();
            assert_eq!(n, 1, "spec key `{key}` must be classified exactly once, found {n}");
        }
        for (key, _) in KEY_CLASSIFICATION {
            assert!(SPEC_KEYS.contains(&key), "stale classification for unknown key `{key}`");
        }
    }

    /// The classification table must describe what `normalized_for_key`
    /// actually does: Normalized/ContentHashed keys are reset to defaults
    /// in the projection, Relevant keys are left alone.
    #[test]
    fn classification_matches_normalization_behaviour() {
        let d = ExperimentSpec::default();
        let defaults_emit = d.emit();
        let norm_emit = normalized_for_key(&d).emit();
        assert_eq!(defaults_emit, norm_emit, "defaults must be a fixed point");

        // A spec with every strippable knob set must normalize back to the
        // same key material as the defaults for those fields.
        let loud = ExperimentSpec {
            trace: Some("/tmp/x.trace".into()),
            qtable_save: Some("/tmp/x.qtable".into()),
            snapshot: Some("/tmp/x.snap".into()),
            threads: 8,
            cache: CacheMode::On,
            targets: vec![AppKind::Halo3D],
            train: AppKind::LQCD,
            qtable_load: Some("/tmp/x.load".into()),
            ..ExperimentSpec::default()
        };
        assert_eq!(normalized_for_key(&loud).emit(), norm_emit);
    }

    #[test]
    fn poisson_generator_fields_only_key_poisson_runs() {
        let stat = ExperimentSpec { routings: vec![RoutingAlgo::UgalG], ..Default::default() };
        let key = cache_key(&stat).unwrap();
        let mut other = stat.clone();
        other.rates = vec![99.0];
        other.jobs = 123;
        assert_eq!(cache_key(&other).unwrap(), key, "static runs ignore the poisson generator");
        let mut poisson = stat.clone();
        poisson.workload = Workload::Poisson;
        let pkey = cache_key(&poisson).unwrap();
        assert_ne!(pkey, key);
        let mut pj = poisson.clone();
        pj.jobs = 123;
        assert_ne!(cache_key(&pj).unwrap(), pkey, "poisson runs consume jobs");
        let mut extra_rates = poisson.clone();
        extra_rates.rates = vec![1.0, 7.0];
        assert_eq!(
            cache_key(&extra_rates).unwrap(),
            pkey,
            "only the first rate feeds the generator"
        );
    }

    #[test]
    fn gc_by_age_and_size() {
        let dir = std::env::temp_dir().join(format!("dfsim_cache_gc_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = ResultCache::open(&CacheMode::Dir(dir.clone())).unwrap().unwrap();
        // Three fake entries of known sizes (gc only looks at fs metadata).
        for (name, len) in [("a", 100usize), ("b", 200), ("c", 300)] {
            std::fs::write(dir.join(format!("{name}.report")), vec![0u8; len]).unwrap();
        }
        let s = cache.stats().unwrap();
        assert_eq!((s.entries, s.bytes), (3, 600));
        // Nothing is older than an hour.
        let out = cache.gc(Some(3600), None).unwrap();
        assert_eq!(out.removed, 0);
        // Size cap evicts oldest-first until under.
        let out = cache.gc(None, Some(350)).unwrap();
        assert!(out.removed >= 1, "{out:?}");
        assert!(out.kept_bytes <= 350, "{out:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
