//! Experiment harness of the Dragonfly workload-interference study.
//!
//! This crate glues the substrates together — topology, flit-timed network,
//! MPI layer, workloads, instrumentation — into runnable experiments:
//!
//! * [`config`] — simulation configuration (topology, timing, routing,
//!   scale, seeds, horizons),
//! * [`placement`] — job-to-node placement (random, as the paper uses, plus
//!   contiguous for the placement ablation),
//! * [`world`] — the world event loop driving network and MPI events from
//!   one deterministic queue,
//! * [`runner`] — build-run-report: executes a job mix and produces a
//!   [`report::RunReport`],
//! * [`scenario`] — dynamic churn: timed job arrivals, FCFS/backfill
//!   admission, node reclamation, and `run_scenario`,
//! * [`experiments`] — the paper's campaign presets: standalone runs,
//!   pairwise interference (§V) and the Table II mixed workload (§VI),
//! * [`spec`] — the declarative [`spec::ExperimentSpec`]: one serializable
//!   description of an experiment, one text format, one `defaults < file <
//!   env < CLI` resolver, one label registry,
//! * [`simulation`] — the session API: [`simulation::Simulation`] runs a
//!   spec (`from_spec → prepare → run → RunHandle`),
//! * [`cache`] — the content-addressed result cache: reports keyed by a
//!   stable hash of the canonical spec emit, replayed bit-identically on
//!   repeat runs,
//! * [`sweep`] — deterministic parallel execution of independent runs on
//!   a shared, lazily-built worker pool,
//! * [`report`] / [`tables`] — run reports and text/CSV table rendering,
//! * [`trace`] — the run-level half of the `dfsim-trace v1` streaming
//!   layer: the META context blob and [`trace::replay_trace`], which
//!   rebuilds a run's exact report from its trace file.
//!
//! ```no_run
//! use dfsim_core::experiments::{pairwise, StudyConfig};
//! use dfsim_apps::AppKind;
//! use dfsim_network::RoutingAlgo;
//!
//! let cfg = StudyConfig { routing: RoutingAlgo::QAdaptive, ..Default::default() };
//! let report = pairwise(AppKind::FFT3D, Some(AppKind::Halo3D), &cfg);
//! println!("FFT3D comm time: {:.3} ms", report.apps[0].comm_ms.mean);
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod config;
pub mod experiments;
pub mod partition;
pub mod placement;
pub mod report;
pub mod runner;
pub mod scenario;
pub mod simulation;
pub mod spec;
pub mod sweep;
pub mod tables;
pub mod trace;
pub mod world;

pub use cache::{cache_key, CacheError, CacheKey, CacheMode, ResultCache};
pub use config::SimConfig;
pub use report::{AppReport, EngineReport, JobReport, LearningReport, NetworkReport, RunReport};
pub use runner::{run, JobSpec};
#[allow(deprecated)]
pub use scenario::run_scenario;
pub use scenario::{Scenario, SchedPolicy};
pub use simulation::{RunHandle, Simulation};
pub use spec::{ExperimentSpec, SpecError, Workload};
pub use trace::{replay_trace, summarize_trace, TraceMeta};
pub use world::{World, WorldEvent, WorldQueue};
