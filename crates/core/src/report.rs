//! Run reports: the data products the paper's tables and figures are built
//! from.

use dfsim_metrics::{LatencySummary, Stats};
use serde::{Deserialize, Serialize};

/// Per-application results of one run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AppReport {
    /// App name (paper spelling).
    pub name: String,
    /// App index within the run.
    pub app: u16,
    /// Ranks.
    pub size: u32,
    /// Communication time over ranks, milliseconds (Fig 4/8/10 bars ±
    /// std).
    pub comm_ms: Stats,
    /// Application completion time, ms (Table I "Execution time").
    pub exec_ms: f64,
    /// Total message volume injected, MB (Table I "Total Msg").
    pub total_msg_mb: f64,
    /// Message injection rate, GB/s (Table I).
    pub inj_rate_gbs: f64,
    /// Peak ingress volume observed, bytes (Table I).
    pub peak_ingress_bytes: u64,
    /// Packet-latency distribution, µs (Figs 6, 7).
    pub latency_us: LatencySummary,
    /// Delivered-throughput series `(ms, GB/ms)` (Figs 5, 9).
    pub throughput: Vec<(f64, f64)>,
    /// Mean packet latency per time bin `(ms, µs)` (Fig 7).
    pub latency_series: Vec<(f64, f64)>,
    /// Fraction of packets delivered vs injected (1.0 when complete).
    pub delivery_ratio: f64,
    /// Fraction of delivered packets that travelled a non-minimal path.
    pub detour_frac: f64,
    /// Mean router-to-router hops per delivered packet (≤3 under MIN).
    pub mean_hops: f64,
}

/// Network-level results of one run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NetworkReport {
    /// Sum of local-link stall time per group, ms (Fig 11 circles).
    pub local_stall_ms: Vec<f64>,
    /// Global-link stall time per directed group pair, ms (Fig 11 edges).
    pub global_stall_ms: Vec<Vec<f64>>,
    /// Mean local-link stall over groups, ms (paper §VI-B compares 31.42 vs
    /// 59.15 ms).
    pub avg_local_stall_ms: f64,
    /// Mean global-link stall over used links, ms (0.52 vs 1.33 ms).
    pub avg_global_stall_ms: f64,
    /// Congestion-index matrix (Fig 12): diagonal = local links.
    pub congestion: Vec<Vec<f64>>,
    /// Mean off-diagonal congestion index.
    pub mean_global_congestion: f64,
    /// Std of off-diagonal congestion indices (hot-spot measure).
    pub std_global_congestion: f64,
    /// System-wide packet latency, µs (Fig 13a).
    pub system_latency_us: LatencySummary,
    /// Aggregate delivered throughput `(ms, GB/ms)` (Fig 13b).
    pub system_throughput: Vec<(f64, f64)>,
    /// Mean aggregate throughput over the run, GB/ms.
    pub mean_system_throughput: f64,
    /// Total bytes delivered, GB.
    pub total_delivered_gb: f64,
}

/// Event-engine statistics of one run: how hard the pending-event set
/// worked. Unlike every other report field this is **not**
/// backend-invariant — it describes the engine itself (the
/// `backend_equivalence` suite deliberately excludes it).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct EngineReport {
    /// Full backend form (`heap`, `calendar:auto`,
    /// `calendar:width=..,buckets=..`).
    pub backend: String,
    /// Events pushed over the run (pops are [`RunReport::events`]).
    pub events_scheduled: u64,
    /// Largest pending-event-set size observed.
    pub peak_pending: u64,
    /// Calendar bucket-array rebuilds (0 on the heap / fixed tuning).
    pub resizes: u64,
    /// Empty calendar days skipped while hunting the next event.
    pub bucket_scans: u64,
    /// Full-year misses escaping via the sparse jump.
    pub sparse_jumps: u64,
    /// Final calendar bucket count (0 on the heap).
    pub final_buckets: u64,
    /// Final calendar bucket width, ps (0 on the heap).
    pub final_width_ps: u64,
    /// Host-side event throughput: events processed / wall seconds.
    pub events_per_sec: f64,
}

impl EngineReport {
    /// One-line human rendering (the `--engine-stats` block of the CLI and
    /// the fig/table/churn binaries).
    pub fn render(&self, events_processed: u64) -> String {
        let mut s = format!(
            "engine {}: {} events processed ({} scheduled), {:.2} M events/s wall, peak pending {}",
            self.backend,
            events_processed,
            self.events_scheduled,
            self.events_per_sec / 1e6,
            self.peak_pending,
        );
        if self.backend != "heap" {
            s.push_str(&format!(
                ", {} resizes, {} bucket scans, {} sparse jumps, final {} buckets x {} ps",
                self.resizes,
                self.bucket_scans,
                self.sparse_jumps,
                self.final_buckets,
                self.final_width_ps,
            ));
        }
        s
    }
}

/// Q-adaptive convergence telemetry of one run: per-window mean `|ΔQ1|`
/// over all level-1 Q-table updates. Present only on Q-adaptive runs.
/// Large early values mean the tables are still learning the traffic; a
/// warm-started run should begin near its steady-state floor.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LearningReport {
    /// Q-table initialization (`cold` or `warm`).
    pub init: String,
    /// Total level-1 updates over the run.
    pub updates: u64,
    /// Mean `|ΔQ1|` over the whole run, nanoseconds.
    pub mean_abs_dq1_ns: f64,
    /// Per-window series `(window start ms, mean |ΔQ1| ns)`; empty windows
    /// are skipped.
    pub series: Vec<(f64, f64)>,
}

impl LearningReport {
    /// Mean of the per-window means over the first `k` populated windows —
    /// the early-convergence number the `transfer` bin compares between
    /// warm and cold starts (0 when there are no windows).
    pub fn early_mean_ns(&self, k: usize) -> f64 {
        let take = self.series.iter().take(k.max(1));
        let (sum, n) = take.fold((0.0, 0usize), |(s, n), &(_, m)| (s + m, n + 1));
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }

    /// Same over the last `k` populated windows (the steady-state floor).
    pub fn late_mean_ns(&self, k: usize) -> f64 {
        let skip = self.series.len().saturating_sub(k.max(1));
        let (sum, n) =
            self.series.iter().skip(skip).fold((0.0, 0usize), |(s, n), &(_, m)| (s + m, n + 1));
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }
}

/// Per-job scheduling outcome of a scenario (churn) run. Static runs leave
/// the list empty: every job starts at t = 0 and the per-app data lives in
/// [`AppReport`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JobReport {
    /// Job index (arrival order).
    pub job: u32,
    /// Workload name.
    pub name: String,
    /// Ranks / nodes requested.
    pub size: u32,
    /// Arrival time, ms.
    pub arrival_ms: f64,
    /// Admission (start) time, ms; `None` if the job never started.
    pub start_ms: Option<f64>,
    /// Completion time, ms; `None` if the job never finished.
    pub finish_ms: Option<f64>,
    /// Queue wait: start − arrival (up to the run's end for jobs that never
    /// started), ms.
    pub wait_ms: f64,
    /// Service time: finish − start, ms (0 if never started).
    pub run_ms: f64,
    /// Response time: finish − arrival, ms.
    pub response_ms: f64,
    /// Slowdown: response / service (1.0 for a job admitted instantly);
    /// `None` for jobs that never completed — averaging a placeholder 1.0
    /// into interference statistics would bias them towards "no
    /// interference".
    pub slowdown: Option<f64>,
    /// Whether every rank of the job finished.
    pub completed: bool,
}

/// The full result of one simulation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunReport {
    /// Routing algorithm label.
    pub routing: String,
    /// Event-queue backend label (`heap`/`calendar`); every other field is
    /// invariant under this choice.
    pub queue: String,
    /// Root seed.
    pub seed: u64,
    /// Scale divisor.
    pub scale: f64,
    /// Whether every rank finished (false: horizon/event-cap hit).
    pub completed: bool,
    /// Why the run stopped (display form of [`crate::world::StopReason`]).
    pub stop_reason: String,
    /// Final simulated time, ms.
    pub sim_ms: f64,
    /// Events processed.
    pub events: u64,
    /// Host wall-clock seconds spent simulating.
    pub wall_s: f64,
    /// Per-app results (job order).
    pub apps: Vec<AppReport>,
    /// Per-job scheduling outcomes (scenario runs only; empty for static
    /// runs).
    pub jobs: Vec<JobReport>,
    /// Network-level results.
    pub network: NetworkReport,
    /// Event-engine statistics (backend-dependent by design).
    pub engine: EngineReport,
    /// Q-adaptive convergence telemetry (`None` for other routings).
    pub learning: Option<LearningReport>,
}

impl RunReport {
    /// The report of the app named `name`, if present.
    pub fn app(&self, name: &str) -> Option<&AppReport> {
        self.apps.iter().find(|a| a.name == name)
    }

    /// The `--engine-stats` block: engine statistics in one line.
    pub fn engine_summary(&self) -> String {
        self.engine.render(self.events)
    }

    /// Jobs that ran to completion (scenario runs).
    pub fn completed_jobs(&self) -> impl Iterator<Item = &JobReport> {
        self.jobs.iter().filter(|j| j.completed)
    }

    /// Mean wait time over completed jobs, ms (NaN if none completed).
    pub fn mean_wait_ms(&self) -> f64 {
        let (mut sum, mut n) = (0.0, 0u32);
        for j in self.completed_jobs() {
            sum += j.wait_ms;
            n += 1;
        }
        sum / n as f64
    }

    /// Mean slowdown over completed jobs (NaN if none completed);
    /// incomplete jobs carry no slowdown and are excluded.
    pub fn mean_slowdown(&self) -> f64 {
        let (mut sum, mut n) = (0.0, 0u32);
        for s in self.jobs.iter().filter_map(|j| j.slowdown) {
            sum += s;
            n += 1;
        }
        sum / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy_app(name: &str) -> AppReport {
        AppReport {
            name: name.into(),
            app: 0,
            size: 4,
            comm_ms: Stats::default(),
            exec_ms: 1.0,
            total_msg_mb: 2.0,
            inj_rate_gbs: 3.0,
            peak_ingress_bytes: 4,
            latency_us: LatencySummary::default(),
            throughput: vec![],
            latency_series: vec![],
            delivery_ratio: 1.0,
            detour_frac: 0.0,
            mean_hops: 0.0,
        }
    }

    #[test]
    fn lookup_by_name() {
        let r = RunReport {
            routing: "PAR".into(),
            queue: "heap".into(),
            seed: 0,
            scale: 1.0,
            completed: true,
            stop_reason: "AllFinished".into(),
            sim_ms: 1.0,
            events: 10,
            wall_s: 0.1,
            apps: vec![dummy_app("FFT3D"), dummy_app("Halo3D")],
            jobs: vec![],
            network: NetworkReport {
                local_stall_ms: vec![],
                global_stall_ms: vec![],
                avg_local_stall_ms: 0.0,
                avg_global_stall_ms: 0.0,
                congestion: vec![],
                mean_global_congestion: 0.0,
                std_global_congestion: 0.0,
                system_latency_us: LatencySummary::default(),
                system_throughput: vec![],
                mean_system_throughput: 0.0,
                total_delivered_gb: 0.0,
            },
            engine: EngineReport::default(),
            learning: None,
        };
        assert!(r.app("FFT3D").is_some());
        assert!(r.app("LU").is_none());
    }

    #[test]
    fn learning_window_means() {
        let l = LearningReport {
            init: "cold".into(),
            updates: 6,
            mean_abs_dq1_ns: 3.0,
            series: vec![(0.0, 8.0), (0.1, 4.0), (0.2, 2.0), (0.3, 1.0)],
        };
        assert!((l.early_mean_ns(2) - 6.0).abs() < 1e-12);
        assert!((l.late_mean_ns(2) - 1.5).abs() < 1e-12);
        // k larger than the series: everything, once.
        assert!((l.early_mean_ns(10) - 3.75).abs() < 1e-12);
        let empty = LearningReport {
            init: "warm".into(),
            updates: 0,
            mean_abs_dq1_ns: 0.0,
            series: vec![],
        };
        assert_eq!(empty.early_mean_ns(3), 0.0);
        assert_eq!(empty.late_mean_ns(3), 0.0);
    }

    #[test]
    fn engine_render_hides_calendar_fields_on_heap() {
        let heap =
            EngineReport { backend: "heap".into(), events_per_sec: 2e6, ..Default::default() };
        let s = heap.render(100);
        assert!(s.contains("heap") && !s.contains("resizes"), "{s}");
        let cal = EngineReport {
            backend: "calendar:auto".into(),
            resizes: 4,
            final_buckets: 128,
            ..Default::default()
        };
        let s = cal.render(100);
        assert!(s.contains("4 resizes") && s.contains("128 buckets"), "{s}");
    }
}
