//! Router hot path: drive a fan-in pattern through the network simulation
//! and measure end-to-end event-processing throughput (the whole
//! arbitration / credit / forwarding machinery).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use dfsim_des::queue::PendingEvents;
use dfsim_des::sched::QueueScheduler;
use dfsim_des::{EventQueue, SimRng};
use dfsim_metrics::{AppId, Recorder, RecorderConfig};
use dfsim_network::{NetworkSim, RoutingAlgo, RoutingConfig};
use dfsim_topology::{DragonflyParams, LinkTiming, NodeId, Topology};

fn run_fanin(algo: RoutingAlgo, messages: u32) -> u64 {
    let topo = std::sync::Arc::new(Topology::new(DragonflyParams::tiny_72()).unwrap());
    let mut rec =
        Recorder::new(&topo, RecorderConfig { record_latencies: false, ..Default::default() });
    let mut net = NetworkSim::new(
        std::sync::Arc::clone(&topo),
        LinkTiming::default(),
        RoutingConfig::new(algo),
        &SimRng::new(3),
    );
    let mut queue = EventQueue::new();
    let mut effects = Vec::new();
    let n = topo.num_nodes();
    for i in 0..messages {
        let src = NodeId(1 + (i % (n - 1)));
        let mut sched = QueueScheduler::new(&mut queue);
        net.send_message(&mut sched, &mut rec, src, NodeId(0), 2048, AppId(0));
    }
    let mut events = 0u64;
    while let Some((_, ev)) = queue.pop() {
        let mut sched = QueueScheduler::new(&mut queue);
        net.handle(ev, &mut sched, &mut rec, &mut effects);
        effects.clear();
        events += 1;
    }
    events
}

fn bench_router(c: &mut Criterion) {
    let mut group = c.benchmark_group("router_fanin");
    group.sample_size(20);
    for algo in [RoutingAlgo::Minimal, RoutingAlgo::UgalG, RoutingAlgo::QAdaptive] {
        group.bench_with_input(
            BenchmarkId::new("fanin_512_msgs", algo.label()),
            &algo,
            |b, &algo| b.iter(|| black_box(run_fanin(algo, 512))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_router);
criterion_main!(benches);
