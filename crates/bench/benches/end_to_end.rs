//! End-to-end simulation throughput: a small UR workload on the 72-node
//! test Dragonfly under every routing algorithm. This is the number that
//! bounds the full study's wall time (events per second of the whole
//! stack: apps → MPI → network → metrics).

// The engine-level free functions are what this bench measures; the
// deprecated wrappers pin exactly that entry point.
#![allow(deprecated)]

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use dfsim_apps::AppKind;
use dfsim_core::config::SimConfig;
use dfsim_core::placement::Placement;
use dfsim_core::runner::{run_placed, JobSpec};
use dfsim_network::{RoutingAlgo, RoutingConfig};

fn run_once(algo: RoutingAlgo) -> u64 {
    let cfg = SimConfig { routing: RoutingConfig::new(algo), ..SimConfig::test_tiny(algo) };
    let report = run_placed(
        &cfg,
        &[JobSpec::sized(AppKind::UR, 36), JobSpec::sized(AppKind::Halo3D, 36)],
        Placement::Random,
    );
    assert!(report.completed);
    report.events
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end_tiny72");
    group.sample_size(10);
    for algo in RoutingAlgo::PAPER_SET {
        group.bench_with_input(BenchmarkId::new("ur_halo3d", algo.label()), &algo, |b, &algo| {
            b.iter(|| black_box(run_once(algo)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_end_to_end);
criterion_main!(benches);
