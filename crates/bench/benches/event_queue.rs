//! Event-queue ablation: binary heap vs fixed vs self-tuning calendar
//! queue (DESIGN.md §7).
//!
//! Three tiers, increasingly close to production:
//!
//! * **hold** — the classic pop-one/push-one steady-state model with the
//!   network's event mix (short-horizon pushes plus ~2% far-horizon
//!   compute wake-ups, the pattern that defeats a mistuned fixed calendar),
//! * **world** — a full tiny-Dragonfly pairwise run with the world loop
//!   monomorphized over each backend (`SimConfig::queue`),
//! * **churn** — a Poisson job-arrival scenario (`run_scenario`): ns-scale
//!   traffic plus ms-scale arrivals in one pending set.
//!
//! `DFSIM_BENCH_SMOKE=1` shrinks every tier to a few-second CI smoke run
//! (the CI workflow uses it to catch queue regressions early).

// The engine-level free functions are what this bench measures; the
// deprecated wrappers pin exactly that entry point.
#![allow(deprecated)]

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use dfsim_apps::AppKind;
use dfsim_core::config::SimConfig;
use dfsim_core::placement::Placement;
use dfsim_core::runner::{run_placed, JobSpec};
use dfsim_core::scenario::{run_scenario, Scenario, SchedPolicy};
use dfsim_des::calendar::CalendarQueue;
use dfsim_des::queue::{EventQueue, PendingEvents, QueueBackend};
use dfsim_des::SimRng;
use dfsim_network::RoutingAlgo;

fn smoke() -> bool {
    // lint: allow(no-ambient-env) — CI harness knob selecting smoke iteration
    // counts; it configures the bench runner itself, never an experiment, so
    // it has no spec-resolution path to ride.
    std::env::var("DFSIM_BENCH_SMOKE").is_ok_and(|v| v != "0")
}

fn churn<Q: PendingEvents<u64>>(q: &mut Q, n: u64, rng: &mut SimRng) -> u64 {
    let mut now = 0u64;
    let mut acc = 0u64;
    // Prime with some pending events.
    for i in 0..256 {
        q.push(i * 977, i);
    }
    for i in 0..n {
        // Hold-model: pop one, push one (steady-state simulation shape).
        if let Some((t, e)) = q.pop() {
            now = t;
            acc = acc.wrapping_add(e);
        }
        let horizon = if rng.chance(0.02) { 5_000_000 } else { 40_000 };
        q.push(now + 1 + rng.below(horizon), i);
    }
    acc
}

fn bench_queues(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue_hold");
    if smoke() {
        group.sample_size(3);
    }
    let sizes: &[u64] = if smoke() { &[2_000] } else { &[10_000, 100_000] };
    for &n in sizes {
        group.bench_with_input(BenchmarkId::new("binary_heap", n), &n, |b, &n| {
            b.iter(|| {
                let mut q = EventQueue::new();
                let mut rng = SimRng::new(1);
                black_box(churn(&mut q, n, &mut rng))
            })
        });
        group.bench_with_input(BenchmarkId::new("calendar", n), &n, |b, &n| {
            b.iter(|| {
                let mut q = CalendarQueue::for_network();
                let mut rng = SimRng::new(1);
                black_box(churn(&mut q, n, &mut rng))
            })
        });
        group.bench_with_input(BenchmarkId::new("calendar_auto", n), &n, |b, &n| {
            b.iter(|| {
                let mut q = CalendarQueue::auto();
                let mut rng = SimRng::new(1);
                black_box(churn(&mut q, n, &mut rng))
            })
        });
    }
    group.finish();
}

/// The same ablation through the real hot path: a full tiny-Dragonfly
/// pairwise run with the world loop monomorphized over each backend
/// (`SimConfig::queue`), exactly what the fig/table binaries execute.
fn bench_world_loop(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue_world");
    group.sample_size(if smoke() { 2 } else { 10 });
    for backend in QueueBackend::ALL {
        group.bench_with_input(
            BenchmarkId::new("ur_halo3d_tiny72", backend),
            &backend,
            |b, &backend| {
                b.iter(|| {
                    let cfg = SimConfig::test_tiny(RoutingAlgo::UgalG).with_queue(backend);
                    let report = run_placed(
                        &cfg,
                        &[JobSpec::sized(AppKind::UR, 36), JobSpec::sized(AppKind::Halo3D, 36)],
                        Placement::Random,
                    );
                    assert!(report.completed);
                    black_box(report.events)
                })
            },
        );
    }
    group.finish();
}

/// The churn-scenario-driven mix: Poisson arrivals over four workload kinds
/// through `run_scenario` — ms-scale job events co-pending with ns-scale
/// packet traffic, the widest time-scale spread the simulator produces.
fn bench_churn_scenario(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue_churn");
    group.sample_size(if smoke() { 2 } else { 10 });
    let jobs = if smoke() { 4 } else { 10 };
    for backend in QueueBackend::ALL {
        group.bench_with_input(
            BenchmarkId::new("poisson_tiny72", backend),
            &backend,
            |b, &backend| {
                b.iter(|| {
                    let mut cfg = SimConfig::test_tiny(RoutingAlgo::UgalG).with_queue(backend);
                    cfg.seed = 7;
                    let scenario = Scenario::poisson(
                        7,
                        500.0,
                        jobs,
                        &[AppKind::UR, AppKind::CosmoFlow, AppKind::LU, AppKind::FFT3D],
                        &[18, 36],
                    );
                    let report =
                        run_scenario(&cfg, &scenario, SchedPolicy::Fcfs, Placement::Random);
                    assert!(report.completed);
                    black_box(report.events)
                })
            },
        );
    }
    group.finish();
}

/// The partitioned parallel engine over the same pairwise world loop:
/// group-sharded tiny-72 (9 groups) at 1, 2, 4, and 8 partitions.
/// `threads=1` takes the untouched single-threaded path, so its row against
/// `event_queue_world/ur_halo3d_tiny72/heap` bounds the dispatch overhead
/// of the partitioned entry point; higher counts measure lockstep-window
/// scaling (reports stay bit-identical, so this is a pure speed knob).
fn bench_partitioned_world(c: &mut Criterion) {
    let mut group = c.benchmark_group("partitioned_world");
    group.sample_size(if smoke() { 2 } else { 10 });
    for parts in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::new("ur_halo3d_tiny72", parts), &parts, |b, &parts| {
            b.iter(|| {
                let mut cfg = SimConfig::test_tiny(RoutingAlgo::UgalG);
                cfg.threads = parts;
                let report = run_placed(
                    &cfg,
                    &[JobSpec::sized(AppKind::UR, 36), JobSpec::sized(AppKind::Halo3D, 36)],
                    Placement::Random,
                );
                assert!(report.completed);
                black_box(report.events)
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_queues,
    bench_world_loop,
    bench_churn_scenario,
    bench_partitioned_world
);
criterion_main!(benches);
