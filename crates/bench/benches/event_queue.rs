//! Event-queue ablation: binary heap vs calendar queue (DESIGN.md §7).
//!
//! The workload mimics a network simulation's event mix: mostly
//! short-horizon pushes (packet serialization, credits) with occasional
//! long-horizon ones (compute wakeups).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use dfsim_apps::AppKind;
use dfsim_core::config::SimConfig;
use dfsim_core::placement::Placement;
use dfsim_core::runner::{run_placed, JobSpec};
use dfsim_des::calendar::CalendarQueue;
use dfsim_des::queue::{EventQueue, PendingEvents, QueueBackend};
use dfsim_des::SimRng;
use dfsim_network::RoutingAlgo;

fn churn<Q: PendingEvents<u64>>(q: &mut Q, n: u64, rng: &mut SimRng) -> u64 {
    let mut now = 0u64;
    let mut acc = 0u64;
    // Prime with some pending events.
    for i in 0..256 {
        q.push(i * 977, i);
    }
    for i in 0..n {
        // Hold-model: pop one, push one (steady-state simulation shape).
        if let Some((t, e)) = q.pop() {
            now = t;
            acc = acc.wrapping_add(e);
        }
        let horizon = if rng.chance(0.02) { 5_000_000 } else { 40_000 };
        q.push(now + 1 + rng.below(horizon), i);
    }
    acc
}

/// The same ablation through the real hot path: a full tiny-Dragonfly
/// pairwise run with the world loop monomorphized over each backend
/// (`SimConfig::queue`), exactly what the fig/table binaries execute.
fn bench_world_loop(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue_world");
    group.sample_size(10);
    for backend in QueueBackend::ALL {
        group.bench_with_input(
            BenchmarkId::new("ur_halo3d_tiny72", backend),
            &backend,
            |b, &backend| {
                b.iter(|| {
                    let cfg = SimConfig::test_tiny(RoutingAlgo::UgalG).with_queue(backend);
                    let report = run_placed(
                        &cfg,
                        &[JobSpec::sized(AppKind::UR, 36), JobSpec::sized(AppKind::Halo3D, 36)],
                        Placement::Random,
                    );
                    assert!(report.completed);
                    black_box(report.events)
                })
            },
        );
    }
    group.finish();
}

fn bench_queues(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue_hold");
    for n in [10_000u64, 100_000] {
        group.bench_with_input(BenchmarkId::new("binary_heap", n), &n, |b, &n| {
            b.iter(|| {
                let mut q = EventQueue::new();
                let mut rng = SimRng::new(1);
                black_box(churn(&mut q, n, &mut rng))
            })
        });
        group.bench_with_input(BenchmarkId::new("calendar", n), &n, |b, &n| {
            b.iter(|| {
                let mut q = CalendarQueue::for_network();
                let mut rng = SimRng::new(1);
                black_box(churn(&mut q, n, &mut rng))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_queues, bench_world_loop);
criterion_main!(benches);
