//! Q-table hot paths: the lookup + update executed on every Q-adaptive
//! packet hop and feedback signal.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dfsim_network::QTable;
use dfsim_topology::{DragonflyParams, GroupId, LinkTiming, Port, RouterId, Topology};

fn bench_qtable(c: &mut Criterion) {
    let topo = Topology::new(DragonflyParams::paper_1056()).unwrap();
    let timing = LinkTiming::default();
    let mut qt = QTable::new(&topo, RouterId(0), &timing, 0.2);

    c.bench_function("qtable_lookup", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(7);
            black_box(qt.q1(GroupId(i % 33), Port(4 + (i % 11) as u8)))
        })
    });

    c.bench_function("qtable_best1", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(7);
            black_box(qt.best1(GroupId(i % 33)))
        })
    });

    c.bench_function("qtable_update", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(13);
            qt.update1(GroupId((i % 33) as u32), Port(4 + (i % 11) as u8), 500_000 + i % 100_000);
            black_box(qt.q1(GroupId((i % 33) as u32), Port(4)))
        })
    });
}

criterion_group!(benches, bench_qtable);
criterion_main!(benches);
