//! Topology hot paths: next-port lookup (executed once per packet per
//! router) and full path walks.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dfsim_topology::paths::{walk, PathPlan};
use dfsim_topology::{DragonflyParams, GroupId, NodeId, Topology};

fn bench_topology(c: &mut Criterion) {
    let topo = Topology::new(DragonflyParams::paper_1056()).unwrap();
    let n = topo.num_nodes();

    c.bench_function("min_next_port", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = (i.wrapping_mul(1664525).wrapping_add(1013904223)) % (n * 263);
            let src = dfsim_topology::RouterId(i % topo.num_routers());
            let dst = NodeId((i * 7 + 13) % n);
            black_box(topo.min_next_port(src, dst))
        })
    });

    c.bench_function("walk_minimal", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(101);
            let src = NodeId(i % n);
            let dst = NodeId((i * 31 + 5) % n);
            black_box(walk(&topo, src, dst, PathPlan::Minimal))
        })
    });

    c.bench_function("walk_valiant", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(101);
            let src = NodeId(i % n);
            let dst = NodeId((i * 31 + 5) % n);
            let via = GroupId((i * 13 + 7) % topo.num_groups());
            black_box(walk(&topo, src, dst, PathPlan::NonMinimalGroup { via }))
        })
    });

    c.bench_function("gateway_lookup", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(17);
            let a = GroupId(i % 33);
            let bb = GroupId((i * 7 + 1) % 33);
            black_box(topo.gateway(a, bb))
        })
    });
}

criterion_group!(benches, bench_topology);
criterion_main!(benches);
