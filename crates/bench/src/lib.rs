//! Shared helpers for the reproduction binaries (one per paper table /
//! figure) and the criterion micro-benchmarks.

#![warn(missing_docs)]

use dfsim_core::experiments::StudyConfig;
use dfsim_network::RoutingAlgo;

/// Read the common environment knobs: `SCALE` (workload scale divisor),
/// `SEED`, `ROUTING` (restrict to one algorithm), `QUEUE`
/// (`heap`/`calendar` event-queue backend).
pub fn study_from_env(default_scale: f64) -> StudyConfig {
    let scale = std::env::var("SCALE").ok().and_then(|s| s.parse().ok()).unwrap_or(default_scale);
    let seed = std::env::var("SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(42);
    let queue = match std::env::var("QUEUE") {
        Ok(name) => name.parse().unwrap_or_else(|e: String| {
            eprintln!("{e}");
            std::process::exit(2)
        }),
        Err(_) => dfsim_des::QueueBackend::default(),
    };
    StudyConfig { scale, seed, queue, ..Default::default() }
}

/// The routing set under study: `ROUTING=PAR` (etc.) restricts it.
pub fn routings_from_env() -> Vec<RoutingAlgo> {
    match std::env::var("ROUTING") {
        Ok(name) => {
            let all = [
                RoutingAlgo::Minimal,
                RoutingAlgo::UgalG,
                RoutingAlgo::UgalN,
                RoutingAlgo::Par,
                RoutingAlgo::QAdaptive,
            ];
            let found = all
                .into_iter()
                .find(|r| r.label().eq_ignore_ascii_case(&name))
                .unwrap_or_else(|| panic!("unknown ROUTING={name}"));
            vec![found]
        }
        Err(_) => RoutingAlgo::PAPER_SET.to_vec(),
    }
}

/// Whether `--csv` was passed.
pub fn csv_flag() -> bool {
    std::env::args().any(|a| a == "--csv")
}

/// Worker threads for sweeps (`THREADS`, default all cores).
pub fn threads_from_env() -> usize {
    std::env::var("THREADS").ok().and_then(|s| s.parse().ok()).unwrap_or(0)
}
