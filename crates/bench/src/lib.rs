//! Shared helpers for the reproduction binaries (one per paper table /
//! figure) and the criterion micro-benchmarks.
//!
//! Every binary's configuration comes from one place:
//! [`dfsim_core::spec::ExperimentSpec::resolve`], layered `binary defaults
//! < --spec FILE < environment < command line`. The helpers here only add
//! the binary-side conventions on top — exit-2 error handling ([`die`]),
//! sweep guards, and the presentation flags (`--csv`, `--engine-stats`)
//! that describe output, not the experiment.

#![deny(unsafe_code)]
#![warn(missing_docs)]

use dfsim_core::{ExperimentSpec, RunReport, Simulation, Workload};
use dfsim_network::RoutingAlgo;

pub use dfsim_core::spec::die;

/// Resolve a reproduction binary's effective spec: `defaults < --spec FILE
/// < environment < command line`, exiting 2 with the named error on any
/// invalid input (`SCALE=6O` is a hard error, never a silent default).
/// Only the core env vars (`SCALE`/`SEED`/`QUEUE`/`ROUTING`/`PLACEMENT`/
/// `SCHED`/`THREADS`) are consulted; binaries that document the generic
/// workload names use [`resolve_spec_env`].
pub fn resolve_spec(defaults: ExperimentSpec) -> ExperimentSpec {
    resolve_spec_env(defaults, &[])
}

/// [`resolve_spec`] plus the listed extended env vars (`TARGETS`, `RATES`,
/// `JOBS`, `APPS`, `SIZES`, `TRAIN`, `SNAPSHOT`, `TARGET`, `BG`) — opt-in
/// per binary because the names are generic enough to collide with
/// unrelated shell/CI variables.
pub fn resolve_spec_env(defaults: ExperimentSpec, extra_env: &[&str]) -> ExperimentSpec {
    let args: Vec<String> = std::env::args().skip(1).collect();
    defaults.resolve_env(extra_env, &args).unwrap_or_else(|e| die(&e))
}

/// A sweep binary's default spec: the given scale, the paper's four-routing
/// comparison set (restrict with `ROUTING=...`/`--routing`).
pub fn sweep_defaults(default_scale: f64) -> ExperimentSpec {
    ExperimentSpec {
        scale: default_scale,
        routings: RoutingAlgo::PAPER_SET.to_vec(),
        ..Default::default()
    }
}

/// Guard the Q-table lifecycle knobs of a sweep binary's resolved spec:
///
/// * `qtable_save` is rejected: a sweep runs many cells in parallel and
///   they would race on the file. Snapshots are written by the single-run
///   front-ends (`dfsim --qtable save=` or the `transfer` bin), which the
///   error points at.
/// * `qtable_load` on a routing set without Q-adp would be a silent no-op
///   (only Q-adaptive cells carry Q-tables — [`ExperimentSpec::cell`]
///   strips the knobs from the others), so it exits with a message instead.
pub fn sweep_qtable_guard(spec: &ExperimentSpec) {
    if spec.qtable_save.is_some() {
        die("--qtable save= is not supported by sweep binaries (parallel cells would race on \
             the file); write snapshots with 'dfsim --qtable save=PATH' or the transfer bin");
    }
    if spec.qtable_load.is_some() && !spec.routings.contains(&RoutingAlgo::QAdaptive) {
        die("--qtable load= would have no effect: the routing set contains no Q-adp (set \
             ROUTING=Q-adp or include Q-adp)");
    }
}

/// Run one sweep cell through the simulation session: `workload` under
/// `spec` specialized to `routing` ([`ExperimentSpec::cell`] keeps the
/// Q-table lifecycle knobs only on Q-adaptive cells). Exits 2 with the
/// named error on an invalid cell — a clear message, not a panic.
pub fn run_cell(spec: &ExperimentSpec, routing: RoutingAlgo, workload: Workload) -> RunReport {
    Simulation::run_one(&spec.cell(routing), workload).unwrap_or_else(|e| die(&e)).report
}

/// [`run_cell`] with a per-cell trace file. [`ExperimentSpec::cell`] strips
/// the `trace` knob (parallel cells would clobber one file), so binaries
/// that do support tracing re-attach a cell-unique path here — derived with
/// [`cell_trace_path`] from the base path the user gave.
pub fn run_cell_traced(
    spec: &ExperimentSpec,
    routing: RoutingAlgo,
    workload: Workload,
    trace: Option<std::path::PathBuf>,
) -> RunReport {
    let mut cell = spec.cell(routing);
    cell.trace = trace;
    Simulation::run_one(&cell, workload).unwrap_or_else(|e| die(&e)).report
}

/// The trace path of one sweep cell: the sweep's base path with a
/// cell-label infix before the extension, so `out.trace` under label
/// `r20_UGALg_random` becomes `out.r20_UGALg_random.trace` and parallel
/// cells never race on one file.
pub fn cell_trace_path(base: &std::path::Path, label: &str) -> std::path::PathBuf {
    match base.extension().and_then(|e| e.to_str()) {
        Some(ext) => base.with_extension(format!("{label}.{ext}")),
        None => base.with_extension(label),
    }
}

/// Whether `--csv` was passed.
pub fn csv_flag() -> bool {
    std::env::args().any(|a| a == "--csv")
}

/// Whether `--engine-stats` was passed (print the event-engine block after
/// the regular tables).
pub fn engine_stats_flag() -> bool {
    std::env::args().any(|a| a == "--engine-stats")
}

/// Whether `--smoke` was passed (the CI smoke entry of the binaries that
/// define one).
pub fn smoke_flag() -> bool {
    std::env::args().any(|a| a == "--smoke")
}

/// Print the `--engine-stats` block: one line per labelled report with the
/// engine's work counters (events processed, peak pending, resizes, wall
/// events/sec). Callers gate on [`engine_stats_flag`].
pub fn print_engine_stats<'a, I>(rows: I)
where
    I: IntoIterator<Item = (String, &'a dfsim_core::RunReport)>,
{
    println!("\n== engine stats ==");
    for (label, r) in rows {
        println!("{label}: {}", r.engine_summary());
    }
}

/// Print the sweep's result-cache session summary to stderr (hits /
/// misses / stores across all cells) when the resolved spec enables the
/// cache. One line, stderr — it is provenance, not data, so `--csv`
/// pipelines stay clean.
pub fn print_cache_summary(spec: &ExperimentSpec) {
    if !spec.cache.enabled() {
        return;
    }
    let s = dfsim_core::cache::session_stats();
    eprintln!(
        "result cache: {} hits, {} misses ({} stored) [{}]",
        s.hits,
        s.misses,
        s.stores,
        spec.cache.describe()
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_defaults_carry_the_paper_routing_set() {
        let spec = sweep_defaults(128.0);
        assert_eq!(spec.scale, 128.0);
        assert_eq!(spec.routings, RoutingAlgo::PAPER_SET.to_vec());
        spec.validate().unwrap();
    }
}
