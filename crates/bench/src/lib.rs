//! Shared helpers for the reproduction binaries (one per paper table /
//! figure) and the criterion micro-benchmarks.

#![warn(missing_docs)]

use dfsim_apps::AppKind;
use dfsim_core::experiments::StudyConfig;
use dfsim_network::RoutingAlgo;

/// Every selectable routing algorithm (the paper set plus MIN).
pub const ALL_ROUTINGS: [RoutingAlgo; 5] = [
    RoutingAlgo::Minimal,
    RoutingAlgo::UgalG,
    RoutingAlgo::UgalN,
    RoutingAlgo::Par,
    RoutingAlgo::QAdaptive,
];

/// Parse a routing-algorithm name; the error lists the valid names.
pub fn parse_routing(name: &str) -> Result<RoutingAlgo, String> {
    ALL_ROUTINGS.into_iter().find(|r| r.label().eq_ignore_ascii_case(name)).ok_or_else(|| {
        let valid: Vec<&str> = ALL_ROUTINGS.iter().map(|r| r.label()).collect();
        format!("unknown routing '{name}' (valid: {})", valid.join(", "))
    })
}

/// Parse a comma-separated workload list; the error lists the valid names.
/// An effectively empty list is an error — a misconfigured `TARGETS`/`APPS`
/// env var must not silently turn a sweep into a no-op.
pub fn parse_app_list(s: &str) -> Result<Vec<AppKind>, String> {
    let apps: Vec<AppKind> = s
        .split(',')
        .filter(|n| !n.trim().is_empty())
        .map(|n| {
            let n = n.trim();
            AppKind::from_name(n).ok_or_else(|| {
                let valid: Vec<&str> = AppKind::ALL.iter().map(|k| k.name()).collect();
                format!("unknown app '{n}' (valid: {})", valid.join(", "))
            })
        })
        .collect::<Result<_, _>>()?;
    if apps.is_empty() {
        return Err("empty app list".into());
    }
    Ok(apps)
}

/// Exit with a usage error (uniform handling of bad env/CLI values in the
/// reproduction binaries: a clear message, not a panic with a backtrace).
pub fn die(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(2)
}

/// Read the common environment knobs: `SCALE` (workload scale divisor),
/// `SEED`, `ROUTING` (restrict to one algorithm), `QUEUE`
/// (`heap`/`calendar` event-queue backend).
pub fn study_from_env(default_scale: f64) -> StudyConfig {
    let scale = std::env::var("SCALE").ok().and_then(|s| s.parse().ok()).unwrap_or(default_scale);
    let seed = std::env::var("SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(42);
    let queue = match std::env::var("QUEUE") {
        Ok(name) => name.parse().unwrap_or_else(|e: String| die(&e)),
        Err(_) => dfsim_des::QueueBackend::default(),
    };
    StudyConfig { scale, seed, queue, ..Default::default() }
}

/// The routing set under study: `ROUTING=PAR` (etc.) restricts it. Fallible
/// form of [`routings_from_env`] for callers that report errors themselves.
pub fn try_routings_from_env() -> Result<Vec<RoutingAlgo>, String> {
    match std::env::var("ROUTING") {
        Ok(name) => Ok(vec![parse_routing(&name)?]),
        Err(_) => Ok(RoutingAlgo::PAPER_SET.to_vec()),
    }
}

/// The routing set under study: `ROUTING=PAR` (etc.) restricts it. An
/// unknown name exits with a message listing the valid ones.
pub fn routings_from_env() -> Vec<RoutingAlgo> {
    try_routings_from_env().unwrap_or_else(|e| die(&e))
}

/// Apply the `--qtable` command-line flag to a sweep bin's study config.
///
/// * `--qtable load=PATH` warm-starts the sweep's *Q-adaptive* cells from
///   the snapshot (other routings carry no Q-tables; see [`cell_study`]).
///   If the effective routing set contains no Q-adp at all the flag would
///   be a silent no-op, so it exits with a message instead.
/// * `--qtable save=PATH` is rejected here: a sweep runs many cells in
///   parallel and they would race on the file. Snapshots are written by
///   the single-run front-ends (`dfsim --qtable save=` or the `transfer`
///   bin), which this error points at.
///
/// Malformed flags exit listing the valid forms.
pub fn apply_qtable_flags(study: &mut StudyConfig, routings: &[RoutingAlgo]) {
    let mut args = std::env::args();
    let mut seen = false;
    while let Some(a) = args.next() {
        if a != "--qtable" {
            continue;
        }
        let v = args.next().unwrap_or_else(|| {
            die("--qtable needs a value (valid forms: --qtable save=PATH, --qtable load=PATH)")
        });
        match v.split_once('=') {
            Some(("save", p)) if !p.is_empty() => {
                die("--qtable save= is not supported by sweep binaries (parallel cells would race \
                 on the file); write snapshots with 'dfsim --qtable save=PATH' or the transfer \
                 bin")
            }
            Some(("load", p)) if !p.is_empty() => {
                study.qtable_init = dfsim_network::QTableInit::load(p)
            }
            _ => die(&format!(
                "invalid --qtable '{v}' (valid forms: --qtable save=PATH, --qtable load=PATH)"
            )),
        }
        seen = true;
    }
    if seen && !routings.contains(&RoutingAlgo::QAdaptive) {
        die("--qtable load= would have no effect: the routing set contains no Q-adp (set \
             ROUTING=Q-adp or include Q-adp)");
    }
}

/// The per-cell study config of a sweep: `study` specialized to `routing`,
/// with the Q-table lifecycle knobs attached only to Q-adaptive cells —
/// the other algorithms carry no Q-tables, and `SimConfig::validate`
/// rejects lifecycle knobs on them rather than ignoring them silently.
pub fn cell_study(routing: RoutingAlgo, study: &StudyConfig) -> StudyConfig {
    let mut cfg = StudyConfig { routing, ..study.clone() };
    if routing != RoutingAlgo::QAdaptive {
        cfg.qtable_init = dfsim_network::QTableInit::Cold;
        cfg.qtable_save = None;
    }
    cfg
}

/// Whether `--csv` was passed.
pub fn csv_flag() -> bool {
    std::env::args().any(|a| a == "--csv")
}

/// Whether `--engine-stats` was passed (print the event-engine block after
/// the regular tables).
pub fn engine_stats_flag() -> bool {
    std::env::args().any(|a| a == "--engine-stats")
}

/// Print the `--engine-stats` block: one line per labelled report with the
/// engine's work counters (events processed, peak pending, resizes, wall
/// events/sec). Callers gate on [`engine_stats_flag`].
pub fn print_engine_stats<'a, I>(rows: I)
where
    I: IntoIterator<Item = (String, &'a dfsim_core::RunReport)>,
{
    println!("\n== engine stats ==");
    for (label, r) in rows {
        println!("{label}: {}", r.engine_summary());
    }
}

/// Worker threads for sweeps (`THREADS`, default all cores).
pub fn threads_from_env() -> usize {
    std::env::var("THREADS").ok().and_then(|s| s.parse().ok()).unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_names_parse_case_insensitively() {
        for r in ALL_ROUTINGS {
            assert_eq!(parse_routing(r.label()).unwrap(), r);
            assert_eq!(parse_routing(&r.label().to_uppercase()).unwrap(), r);
        }
    }

    #[test]
    fn unknown_routing_error_lists_valid_names() {
        let err = parse_routing("warp-speed").unwrap_err();
        assert!(err.contains("warp-speed"), "{err}");
        for r in ALL_ROUTINGS {
            assert!(err.contains(r.label()), "error must list {}: {err}", r.label());
        }
    }

    #[test]
    fn app_lists_parse_and_report_errors() {
        let apps = parse_app_list("UR, lu ,FFT3D,").unwrap();
        assert_eq!(apps, vec![AppKind::UR, AppKind::LU, AppKind::FFT3D]);
        let err = parse_app_list("UR,Quake").unwrap_err();
        assert!(err.contains("Quake"), "{err}");
        assert!(err.contains("LULESH") && err.contains("CosmoFlow"), "{err}");
        assert!(parse_app_list("").is_err(), "empty list must not be a silent no-op");
        assert!(parse_app_list(" , ,").is_err());
    }
}
