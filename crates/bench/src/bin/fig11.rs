//! **Figure 11** — network stall time under the mixed workload: per-group
//! local-link stall (the circles) and Group 0's global-link stalls (the
//! edges), PAR vs Q-adaptive.
//!
//! Paper quotes: average in-group stall 31.42 ms (Q-adp) vs 59.15 ms
//! (PAR); average global stall 0.52 vs 1.33 ms.
//!
//! ```sh
//! cargo run --release -p dfsim-bench --bin fig11
//! ```

use dfsim_bench::{
    csv_flag, engine_stats_flag, print_engine_stats, resolve_spec, run_cell, sweep_defaults,
};
use dfsim_core::sweep::parallel_map;
use dfsim_core::tables::{f, TextTable};
use dfsim_network::RoutingAlgo;

fn main() {
    // The figure is defined as the PAR vs Q-adaptive comparison; the
    // routing pair is pinned regardless of ROUTING/--routing.
    let mut defaults = sweep_defaults(64.0);
    defaults.routings = vec![RoutingAlgo::Par, RoutingAlgo::QAdaptive];
    let mut spec = resolve_spec(defaults);
    spec.routings = vec![RoutingAlgo::Par, RoutingAlgo::QAdaptive];
    dfsim_bench::sweep_qtable_guard(&spec);
    eprintln!("# Fig 11 @ scale 1/{}", spec.scale);
    let algos = [RoutingAlgo::Par, RoutingAlgo::QAdaptive];
    let runs = parallel_map(algos.to_vec(), spec.threads, |routing| {
        (routing, run_cell(&spec, routing, dfsim_core::Workload::Mixed))
    });

    // Per-group local stall (circle sizes).
    let mut t = TextTable::new(vec!["Group", "PAR local stall (ms)", "Q-adp local stall (ms)"]);
    let par = &runs[0].1.network;
    let qa = &runs[1].1.network;
    for g in 0..par.local_stall_ms.len() {
        t.row(vec![format!("G{g}"), f(par.local_stall_ms[g], 4), f(qa.local_stall_ms[g], 4)]);
    }
    if csv_flag() {
        print!("{}", t.to_csv());
    } else {
        println!("{}", t.render());
    }

    // Group 0's global links (edge darkness).
    let mut t2 = TextTable::new(vec!["Link", "PAR stall (ms)", "Q-adp stall (ms)"]);
    for dst in 0..par.global_stall_ms.len() {
        if dst == 0 {
            continue;
        }
        t2.row(vec![
            format!("G0-G{dst}"),
            f(par.global_stall_ms[0][dst], 5),
            f(qa.global_stall_ms[0][dst], 5),
        ]);
    }
    if csv_flag() {
        print!("{}", t2.to_csv());
    } else {
        println!("{}", t2.render());
    }

    println!(
        "average local stall per group: PAR {:.4} ms vs Q-adp {:.4} ms (paper: 59.15 vs 31.42)",
        par.local_stall_ms.iter().sum::<f64>() / par.local_stall_ms.len() as f64,
        qa.local_stall_ms.iter().sum::<f64>() / qa.local_stall_ms.len() as f64,
    );
    println!(
        "average global-link stall: PAR {:.5} ms vs Q-adp {:.5} ms (paper: 1.33 vs 0.52)",
        par.avg_global_stall_ms, qa.avg_global_stall_ms,
    );
    // Hot-spot check: the paper points at hot groups under PAR.
    let hottest = |v: &[f64]| {
        v.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1)).map(|(i, s)| (i, *s)).unwrap()
    };
    let (pg, ps) = hottest(&par.local_stall_ms);
    let (qg, qs) = hottest(&qa.local_stall_ms);
    println!("hottest group: PAR G{pg} ({ps:.4} ms) vs Q-adp G{qg} ({qs:.4} ms)");
    if engine_stats_flag() {
        print_engine_stats(runs.iter().map(|(r, rep)| (format!("{}/mixed", r.label()), rep)));
    }
    dfsim_bench::print_cache_summary(&spec);
}
