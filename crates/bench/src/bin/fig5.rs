//! **Figure 5** — FFT3D and Halo3D network throughput along simulated
//! time, standalone vs co-running, under PAR and Q-adaptive.
//!
//! Prints the four series per routing (GB/ms per 0.1 ms bin) plus the
//! summary the paper quotes: FFT3D's interfered average throughput and the
//! Q-adaptive/PAR ratio (paper: 2.58×).
//!
//! ```sh
//! cargo run --release -p dfsim-bench --bin fig5
//! ```

use dfsim_apps::AppKind;
use dfsim_bench::{
    csv_flag, engine_stats_flag, print_engine_stats, resolve_spec, run_cell, sweep_defaults,
};
use dfsim_core::report::RunReport;
use dfsim_core::sweep::parallel_map;
use dfsim_core::tables::{f, TextTable};
use dfsim_core::Workload;
use dfsim_network::RoutingAlgo;

fn mean_tp(r: &RunReport, app: usize) -> f64 {
    let a = &r.apps[app];
    if a.exec_ms > 0.0 {
        a.total_msg_mb / 1000.0 / a.exec_ms
    } else {
        0.0
    }
}

fn main() {
    // The figure is defined as the PAR vs Q-adaptive comparison; the
    // routing pair is pinned regardless of ROUTING/--routing.
    let mut defaults = sweep_defaults(64.0);
    defaults.routings = vec![RoutingAlgo::Par, RoutingAlgo::QAdaptive];
    let mut spec = resolve_spec(defaults);
    spec.routings = vec![RoutingAlgo::Par, RoutingAlgo::QAdaptive];
    dfsim_bench::sweep_qtable_guard(&spec);
    eprintln!("# Fig 5 @ scale 1/{}", spec.scale);
    let algos = [RoutingAlgo::Par, RoutingAlgo::QAdaptive];
    let runs = parallel_map(algos.to_vec(), spec.threads, |routing| {
        let fft_alone = run_cell(&spec, routing, Workload::pairwise(AppKind::FFT3D, None));
        let halo_alone = run_cell(&spec, routing, Workload::pairwise(AppKind::Halo3D, None));
        let both =
            run_cell(&spec, routing, Workload::pairwise(AppKind::FFT3D, Some(AppKind::Halo3D)));
        (routing, fft_alone, halo_alone, both)
    });

    for (routing, fft_alone, halo_alone, both) in &runs {
        println!("== {} ==", routing.label());
        let mut t = TextTable::new(vec![
            "t (ms)",
            "FFT3D_alone",
            "Halo3D_alone",
            "FFT3D_interfered",
            "Halo3D_interfered",
        ]);
        let series = [
            &fft_alone.apps[0].throughput,
            &halo_alone.apps[0].throughput,
            &both.apps[0].throughput,
            &both.apps[1].throughput,
        ];
        let bins = series.iter().map(|s| s.len()).max().unwrap_or(0);
        for i in 0..bins {
            let at = |s: &Vec<(f64, f64)>| s.get(i).map(|&(_, v)| v).unwrap_or(0.0);
            let ts =
                series.iter().find_map(|s| s.get(i).map(|&(t, _)| t)).unwrap_or(i as f64 * 0.1);
            t.row(vec![
                f(ts, 2),
                f(at(series[0]), 3),
                f(at(series[1]), 3),
                f(at(series[2]), 3),
                f(at(series[3]), 3),
            ]);
        }
        if csv_flag() {
            print!("{}", t.to_csv());
        } else {
            println!("{}", t.render());
        }
        println!(
            "{}: FFT3D mean throughput alone {:.3} GB/ms, interfered {:.3} GB/ms; \
             Halo3D alone {:.3}, interfered {:.3}",
            routing.label(),
            mean_tp(fft_alone, 0),
            mean_tp(both, 0),
            mean_tp(halo_alone, 0),
            mean_tp(both, 1),
        );
        println!();
    }
    let par_fft = mean_tp(&runs[0].3, 0);
    let qa_fft = mean_tp(&runs[1].3, 0);
    println!(
        "Q-adaptive / PAR interfered FFT3D throughput: {:.2}x (paper: 2.58x)",
        qa_fft / par_fft
    );
    if engine_stats_flag() {
        print_engine_stats(runs.iter().flat_map(|(r, a, b, both)| {
            [
                (format!("{}/FFT3D_alone", r.label()), a),
                (format!("{}/Halo3D_alone", r.label()), b),
                (format!("{}/FFT3D+Halo3D", r.label()), both),
            ]
        }));
    }
    dfsim_bench::print_cache_summary(&spec);
}
