//! **Ablation** — random vs contiguous placement (paper §I discusses
//! contiguous placement as the competing interference mitigation, with its
//! fragmentation downsides).
//!
//! Runs the FFT3D + Halo3D pair under both policies for PAR and
//! Q-adaptive: contiguous placement isolates the jobs (little interference
//! even under adaptive routing), reproducing why placement *works* but is
//! impractical — while Q-adaptive recovers most of the benefit without it.
//!
//! ```sh
//! cargo run --release -p dfsim-bench --bin placement_ablation
//! ```

use dfsim_apps::AppKind;
use dfsim_bench::{csv_flag, resolve_spec, run_cell, sweep_defaults};
use dfsim_core::placement::Placement;
use dfsim_core::sweep::parallel_map;
use dfsim_core::tables::{f, TextTable};
use dfsim_core::Workload;
use dfsim_network::RoutingAlgo;

fn main() {
    // The ablation is the placement axis itself; routing pair and both
    // placements are pinned regardless of overrides.
    let mut defaults = sweep_defaults(64.0);
    defaults.routings = vec![RoutingAlgo::Par, RoutingAlgo::QAdaptive];
    let mut spec = resolve_spec(defaults);
    spec.routings = vec![RoutingAlgo::Par, RoutingAlgo::QAdaptive];
    dfsim_bench::sweep_qtable_guard(&spec);
    eprintln!("# placement ablation @ scale 1/{}", spec.scale);
    let cases: Vec<(RoutingAlgo, Placement)> = vec![
        (RoutingAlgo::Par, Placement::Random),
        (RoutingAlgo::Par, Placement::Contiguous),
        (RoutingAlgo::QAdaptive, Placement::Random),
        (RoutingAlgo::QAdaptive, Placement::Contiguous),
    ];
    let runs = parallel_map(cases, spec.threads, |(routing, placement)| {
        let mut cell = spec.clone();
        cell.placement = placement;
        let alone = run_cell(&cell, routing, Workload::pairwise(AppKind::FFT3D, None));
        let pair =
            run_cell(&cell, routing, Workload::pairwise(AppKind::FFT3D, Some(AppKind::Halo3D)));
        (routing, placement, alone, pair)
    });

    let mut t = TextTable::new(vec![
        "Routing",
        "Placement",
        "FFT3D alone (ms)",
        "FFT3D interfered (ms)",
        "slowdown",
    ]);
    for (routing, placement, alone, pair) in &runs {
        t.row(vec![
            routing.label().to_string(),
            format!("{placement:?}"),
            f(alone.apps[0].comm_ms.mean, 4),
            f(pair.apps[0].comm_ms.mean, 4),
            f(pair.apps[0].comm_ms.mean / alone.apps[0].comm_ms.mean, 2),
        ]);
    }
    if csv_flag() {
        print!("{}", t.to_csv());
    } else {
        println!("{}", t.render());
        println!(
            "expectation: contiguous placement suppresses interference for both routings\n\
             (jobs own their groups), at the cost of the fragmentation issues §I describes;\n\
             under random placement only Q-adaptive keeps the slowdown low."
        );
    }
    dfsim_bench::print_cache_summary(&spec);
}
