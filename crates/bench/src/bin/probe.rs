//! Calibration probe: standalone characteristics of every app vs Table I
//! (injection rate, peak ingress, latency percentiles) at the current
//! scale. Not a paper artifact — a development tool kept for transparency.

use dfsim_apps::AppKind;
use dfsim_bench::{resolve_spec, run_cell, sweep_defaults};
use dfsim_core::sweep::parallel_map;
use dfsim_core::tables::{f, human_bytes, TextTable};
use dfsim_core::Workload;

fn main() {
    let spec = resolve_spec(sweep_defaults(64.0));
    dfsim_bench::sweep_qtable_guard(&spec);
    let routing = spec.routing();
    println!("probe @ scale 1/{}, routing {}", spec.scale, routing);

    let reports = parallel_map(AppKind::ALL.to_vec(), spec.threads, |kind| {
        (kind, run_cell(&spec, routing, Workload::standalone(kind)))
    });

    let mut t = TextTable::new(vec![
        "App",
        "exec ms",
        "paper ms/scale",
        "inj GB/s",
        "paper GB/s",
        "peak ingress",
        "paper peak/scale",
        "comm ms",
        "lat p50 us",
        "lat p99 us",
        "events",
        "wall s",
    ]);
    for (kind, r) in &reports {
        let a = &r.apps[0];
        let paper = kind.paper_row();
        // Expected scaled-down peak: the byte divisor differs per app, so
        // print the raw paper value for orientation only.
        t.row(vec![
            kind.name().to_string(),
            f(a.exec_ms, 4),
            f(paper.exec_ms / spec.scale, 4),
            f(a.inj_rate_gbs, 1),
            f(paper.inj_rate_gbs, 1),
            human_bytes(a.peak_ingress_bytes),
            paper.peak_ingress.to_string(),
            f(a.comm_ms.mean, 4),
            f(a.latency_us.median, 2),
            f(a.latency_us.p99, 2),
            format!("{}", r.events),
            f(r.wall_s, 1),
        ]);
    }
    println!("{}", t.render());
    dfsim_bench::print_cache_summary(&spec);
}
