//! **Ablation** — Q-adaptive hyperparameter sweep (learning rate α,
//! exploration ε).
//!
//! The reproduced text only says Q-adaptive uses "the same hyperparameters
//! as in [14]"; this sweep documents our defaults (α = 0.2, ε = 0.005) and
//! their sensitivity on the FFT3D + Halo3D pair.
//!
//! ```sh
//! cargo run --release -p dfsim-bench --bin qa_hparams
//! ```

use dfsim_apps::AppKind;
use dfsim_bench::{csv_flag, resolve_spec, run_cell, sweep_defaults};
use dfsim_core::sweep::parallel_map;
use dfsim_core::tables::{f, TextTable};
use dfsim_core::Workload;
use dfsim_network::{QaParams, RoutingAlgo};

fn main() {
    // The sweep varies the Q-adaptive hyperparameters themselves; the
    // routing is pinned to Q-adp regardless of overrides.
    let mut defaults = sweep_defaults(64.0);
    defaults.routings = vec![RoutingAlgo::QAdaptive];
    let mut spec = resolve_spec(defaults);
    spec.routings = vec![RoutingAlgo::QAdaptive];
    dfsim_bench::sweep_qtable_guard(&spec);
    eprintln!("# Q-adaptive hyperparameter sweep @ scale 1/{}", spec.scale);
    let mut grid: Vec<QaParams> = Vec::new();
    for alpha in [0.05, 0.1, 0.2, 0.4] {
        grid.push(QaParams { alpha, epsilon: 0.005 });
    }
    for epsilon in [0.0, 0.02, 0.1] {
        grid.push(QaParams { alpha: 0.2, epsilon });
    }
    let runs = parallel_map(grid, spec.threads, |qa| {
        let mut cell = spec.clone();
        cell.qa_alpha = qa.alpha;
        cell.qa_epsilon = qa.epsilon;
        let r = run_cell(
            &cell,
            RoutingAlgo::QAdaptive,
            Workload::pairwise(AppKind::FFT3D, Some(AppKind::Halo3D)),
        );
        (qa, r)
    });

    let mut t =
        TextTable::new(vec!["alpha", "epsilon", "FFT3D comm (ms)", "FFT3D detour %", "sys p99 us"]);
    for (qa, r) in &runs {
        t.row(vec![
            f(qa.alpha, 2),
            f(qa.epsilon, 3),
            f(r.apps[0].comm_ms.mean, 4),
            f(r.apps[0].detour_frac * 100.0, 1),
            f(r.network.system_latency_us.p99, 2),
        ]);
    }
    if csv_flag() {
        print!("{}", t.to_csv());
    } else {
        println!("{}", t.render());
    }
    dfsim_bench::print_cache_summary(&spec);
}
