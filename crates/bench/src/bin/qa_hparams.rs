//! **Ablation** — Q-adaptive hyperparameter sweep (learning rate α,
//! exploration ε).
//!
//! The reproduced text only says Q-adaptive uses "the same hyperparameters
//! as in [14]"; this sweep documents our defaults (α = 0.2, ε = 0.005) and
//! their sensitivity on the FFT3D + Halo3D pair.
//!
//! ```sh
//! cargo run --release -p dfsim-bench --bin qa_hparams
//! ```

use dfsim_apps::AppKind;
use dfsim_bench::{csv_flag, study_from_env, threads_from_env};
use dfsim_core::config::SimConfig;
use dfsim_core::runner::{run_placed, JobSpec};
use dfsim_core::sweep::parallel_map;
use dfsim_core::tables::{f, TextTable};
use dfsim_network::{QaParams, RoutingAlgo, RoutingConfig};

fn main() {
    let study = study_from_env(64.0);
    eprintln!("# Q-adaptive hyperparameter sweep @ scale 1/{}", study.scale);
    let mut grid: Vec<QaParams> = Vec::new();
    for alpha in [0.05, 0.1, 0.2, 0.4] {
        grid.push(QaParams { alpha, epsilon: 0.005 });
    }
    for epsilon in [0.0, 0.02, 0.1] {
        grid.push(QaParams { alpha: 0.2, epsilon });
    }
    let half = study.half_nodes();
    let runs = parallel_map(grid, threads_from_env(), |qa| {
        let mut routing = RoutingConfig::new(RoutingAlgo::QAdaptive);
        routing.qa = qa;
        let cfg = SimConfig { routing, scale: study.scale, seed: study.seed, ..Default::default() };
        let jobs = [
            JobSpec::sized(AppKind::FFT3D, AppKind::FFT3D.preferred_size(half)),
            JobSpec::sized(AppKind::Halo3D, AppKind::Halo3D.preferred_size(half)),
        ];
        (qa, run_placed(&cfg, &jobs, study.placement))
    });

    let mut t =
        TextTable::new(vec!["alpha", "epsilon", "FFT3D comm (ms)", "FFT3D detour %", "sys p99 us"]);
    for (qa, r) in &runs {
        t.row(vec![
            f(qa.alpha, 2),
            f(qa.epsilon, 3),
            f(r.apps[0].comm_ms.mean, 4),
            f(r.apps[0].detour_frac * 100.0, 1),
            f(r.network.system_latency_us.p99, 2),
        ]);
    }
    if csv_flag() {
        print!("{}", t.to_csv());
    } else {
        println!("{}", t.render());
    }
}
