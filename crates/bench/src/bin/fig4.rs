//! **Figure 4** — pairwise workload interference: average communication
//! time (± std over ranks) of six target applications, each co-run with
//! seven backgrounds (none, UR, LU, FFT3D, CosmoFlow, DL, Halo3D), under
//! UGALg / UGALn / PAR / Q-adaptive.
//!
//! This is the paper's largest experiment (168 simulations at the full
//! sweep). `SCALE` (default 128 here) trades fidelity for wall time;
//! `TARGETS=FFT3D,LU` and `ROUTING=PAR` (or `--targets`/`--routing`, or a
//! `--spec FILE`) restrict the sweep.
//!
//! ```sh
//! cargo run --release -p dfsim-bench --bin fig4
//! ```

use dfsim_apps::AppKind;
use dfsim_bench::{csv_flag, engine_stats_flag, resolve_spec_env, run_cell, sweep_defaults};
use dfsim_core::experiments::{FIG4_BACKGROUNDS, FIG4_TARGETS};
use dfsim_core::sweep::parallel_map;
use dfsim_core::tables::{f, TextTable};
use dfsim_core::Workload;
use dfsim_network::RoutingAlgo;

fn main() {
    let mut defaults = sweep_defaults(128.0);
    defaults.targets = FIG4_TARGETS.to_vec();
    let spec = resolve_spec_env(defaults, &["TARGETS"]);
    dfsim_bench::sweep_qtable_guard(&spec);
    let routings = spec.routings.clone();
    let targets = spec.targets.clone();
    eprintln!(
        "# Fig 4 @ scale 1/{}, seed {}, {} targets x {} backgrounds x {} routings",
        spec.scale,
        spec.seed,
        targets.len(),
        FIG4_BACKGROUNDS.len(),
        routings.len()
    );

    // Flatten the whole sweep for the parallel map.
    let mut cells: Vec<(AppKind, Option<AppKind>, RoutingAlgo)> = Vec::new();
    for &target in &targets {
        for &bg in &FIG4_BACKGROUNDS {
            for &routing in &routings {
                cells.push((target, bg, routing));
            }
        }
    }
    let engine_stats = engine_stats_flag();
    let threads = spec.threads;
    let results = parallel_map(cells, threads, |(target, bg, routing)| {
        let r = run_cell(&spec, routing, Workload::pairwise(target, bg));
        let a = &r.apps[0];
        let engine = engine_stats.then(|| r.engine_summary());
        (target, bg, routing, a.comm_ms.mean, a.comm_ms.std, r.completed, engine)
    });

    let mut t = TextTable::new(vec![
        "Target",
        "Background",
        "Routing",
        "Comm (ms)",
        "Std (ms)",
        "vs none",
        "ok",
    ]);
    // Index standalone baselines for the "vs none" column.
    let mut base = std::collections::HashMap::new();
    for &(target, bg, routing, mean, _, _, _) in &results {
        if bg.is_none() {
            base.insert((target, routing), mean);
        }
    }
    for &(target, bg, routing, mean, std, ok, _) in &results {
        let baseline = base.get(&(target, routing)).copied().unwrap_or(f64::NAN);
        t.row(vec![
            target.name().to_string(),
            bg.map(|b| b.name()).unwrap_or("None").to_string(),
            routing.label().to_string(),
            f(mean, 4),
            f(std, 4),
            f(mean / baseline, 2),
            if ok { "y".into() } else { "INCOMPLETE".to_string() },
        ]);
    }
    if csv_flag() {
        print!("{}", t.to_csv());
    } else {
        println!("{}", t.render());
        println!(
            "Shape checks (paper §V): Halo3D and DL backgrounds should show the largest\n\
             'vs none' factors; UR and LU near 1.0; LQCD/Stencil5D targets near-immune;\n\
             Q-adp should have the smallest interfered comm times and std."
        );
    }
    if engine_stats {
        println!("\n== engine stats ==");
        for (target, bg, routing, _, _, _, engine) in &results {
            let bg = bg.map(|b| b.name()).unwrap_or("none");
            println!(
                "{}+{bg}/{}: {}",
                target.name(),
                routing.label(),
                engine.as_deref().unwrap_or("")
            );
        }
    }
    dfsim_bench::print_cache_summary(&spec);
}
