//! **Table I** — application characterization: total message volume,
//! execution time, injection rate, peak ingress volume.
//!
//! Each app runs standalone on its half-system partition (LULESH on 512
//! ranks) with random placement, exactly the configuration whose aggregate
//! characteristics Table I reports. Paper values are printed alongside,
//! scaled by the byte/iteration split each app uses (`DESIGN.md` §5), so
//! the comparison is direct.
//!
//! ```sh
//! cargo run --release -p dfsim-bench --bin table1            # text
//! SCALE=64 ROUTING=UGALg cargo run -p dfsim-bench --bin table1 --release -- --csv
//! ```

use dfsim_apps::AppKind;
use dfsim_bench::{
    csv_flag, engine_stats_flag, print_engine_stats, resolve_spec, run_cell, sweep_defaults,
};
use dfsim_core::sweep::parallel_map;
use dfsim_core::tables::{f, human_bytes, TextTable};
use dfsim_core::Workload;

fn main() {
    let spec = resolve_spec(sweep_defaults(64.0));
    dfsim_bench::sweep_qtable_guard(&spec);
    let routing = spec.routing();
    eprintln!("# Table I @ scale 1/{}, routing {routing}, seed {}", spec.scale, spec.seed);

    let reports = parallel_map(AppKind::ALL.to_vec(), spec.threads, |kind| {
        (kind, run_cell(&spec, routing, Workload::standalone(kind)))
    });

    let mut t = TextTable::new(vec![
        "Pattern",
        "App",
        "Total Msg (MB)",
        "paper/scale",
        "Exec time (ms)",
        "paper/scale",
        "Inj. Rate (GB/s)",
        "paper",
        "Peak Ingress",
        "paper (unscaled)",
    ]);
    for (kind, r) in &reports {
        let a = &r.apps[0];
        let paper = kind.paper_row();
        t.row(vec![
            paper.pattern.to_string(),
            kind.name().to_string(),
            f(a.total_msg_mb, 2),
            f(paper.total_msg_mb / spec.scale, 2),
            f(a.exec_ms, 4),
            f(paper.exec_ms / spec.scale, 4),
            f(a.inj_rate_gbs, 2),
            f(paper.inj_rate_gbs, 2),
            human_bytes(a.peak_ingress_bytes),
            paper.peak_ingress.to_string(),
        ]);
    }
    if csv_flag() {
        print!("{}", t.to_csv());
    } else {
        println!("{}", t.render());
        println!(
            "Shape checks: injection-rate ordering should match the paper's \
             (Halo3D highest, CosmoFlow lowest);\npeak-ingress ordering within \
             the stencil family should be Halo3D < LQCD < Stencil5D."
        );
    }
    if engine_stats_flag() {
        print_engine_stats(reports.iter().map(|(kind, rep)| (kind.name().to_string(), rep)));
    }
    dfsim_bench::print_cache_summary(&spec);
}
