//! **Figure 9** — CosmoFlow and Halo3D network throughput along simulated
//! time (computation-masking effect, §V-D).
//!
//! CosmoFlow's long compute intervals make Halo3D behave as if alone most
//! of the time; CosmoFlow's allreduce pulse briefly dips Halo3D's
//! throughput without hurting overall time.
//!
//! ```sh
//! cargo run --release -p dfsim-bench --bin fig9
//! ```

use dfsim_apps::AppKind;
use dfsim_bench::{
    csv_flag, engine_stats_flag, print_engine_stats, resolve_spec, run_cell, sweep_defaults,
};
use dfsim_core::sweep::parallel_map;
use dfsim_core::tables::{f, TextTable};
use dfsim_core::Workload;
use dfsim_network::RoutingAlgo;

fn main() {
    // The figure is defined as the PAR vs Q-adaptive comparison; the
    // routing pair is pinned regardless of ROUTING/--routing.
    let mut defaults = sweep_defaults(64.0);
    defaults.routings = vec![RoutingAlgo::Par, RoutingAlgo::QAdaptive];
    let mut spec = resolve_spec(defaults);
    spec.routings = vec![RoutingAlgo::Par, RoutingAlgo::QAdaptive];
    dfsim_bench::sweep_qtable_guard(&spec);
    eprintln!("# Fig 9 @ scale 1/{}", spec.scale);
    let algos = [RoutingAlgo::Par, RoutingAlgo::QAdaptive];
    let runs = parallel_map(algos.to_vec(), spec.threads, |routing| {
        let cosmo_alone = run_cell(&spec, routing, Workload::pairwise(AppKind::CosmoFlow, None));
        let halo_alone = run_cell(&spec, routing, Workload::pairwise(AppKind::Halo3D, None));
        let both =
            run_cell(&spec, routing, Workload::pairwise(AppKind::CosmoFlow, Some(AppKind::Halo3D)));
        (routing, cosmo_alone, halo_alone, both)
    });

    for (routing, cosmo_alone, halo_alone, both) in &runs {
        println!("== {} ==", routing.label());
        let mut t = TextTable::new(vec![
            "t (ms)",
            "CosmoFlow_alone",
            "Halo3D_alone",
            "CosmoFlow_interfered",
            "Halo3D_interfered",
        ]);
        let series = [
            &cosmo_alone.apps[0].throughput,
            &halo_alone.apps[0].throughput,
            &both.apps[0].throughput,
            &both.apps[1].throughput,
        ];
        let bins = series.iter().map(|s| s.len()).max().unwrap_or(0);
        for i in 0..bins {
            let at = |s: &Vec<(f64, f64)>| s.get(i).map(|&(_, v)| v).unwrap_or(0.0);
            let ts =
                series.iter().find_map(|s| s.get(i).map(|&(t, _)| t)).unwrap_or(i as f64 * 0.1);
            t.row(vec![
                f(ts, 2),
                f(at(series[0]), 3),
                f(at(series[1]), 3),
                f(at(series[2]), 3),
                f(at(series[3]), 3),
            ]);
        }
        if csv_flag() {
            print!("{}", t.to_csv());
        } else {
            println!("{}", t.render());
        }
        let delta = 100.0 * (both.apps[0].comm_ms.mean / cosmo_alone.apps[0].comm_ms.mean - 1.0);
        println!(
            "{}: CosmoFlow comm time alone {:.4} ms, interfered {:.4} ms (+{:.1}%)\n",
            routing.label(),
            cosmo_alone.apps[0].comm_ms.mean,
            both.apps[0].comm_ms.mean,
            delta
        );
    }
    println!(
        "(paper: Halo3D costs CosmoFlow ~21.9% comm time under PAR but only 4.9% under\n\
         Q-adaptive; the interference is largely hidden by computation — §V-D)"
    );
    if engine_stats_flag() {
        print_engine_stats(runs.iter().flat_map(|(r, a, b, both)| {
            [
                (format!("{}/CosmoFlow_alone", r.label()), a),
                (format!("{}/Halo3D_alone", r.label()), b),
                (format!("{}/CosmoFlow+Halo3D", r.label()), both),
            ]
        }));
    }
    dfsim_bench::print_cache_summary(&spec);
}
