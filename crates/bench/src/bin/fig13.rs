//! **Figure 13** — system-wide packet-latency distribution (mean, p95,
//! p99) for all four routings, and aggregate network throughput along time
//! for PAR vs Q-adaptive, under the mixed workload.
//!
//! Paper quotes: Q-adaptive mean 3.87 µs / p99 15.13 µs, >63% smaller than
//! PAR's; aggregate throughput 1.27 GB/ms vs PAR's 0.94 (+35%).
//!
//! ```sh
//! cargo run --release -p dfsim-bench --bin fig13
//! ```

use dfsim_bench::{
    csv_flag, engine_stats_flag, print_engine_stats, resolve_spec, run_cell, sweep_defaults,
};
use dfsim_core::sweep::parallel_map;
use dfsim_core::tables::{f, TextTable};
use dfsim_core::Workload;
use dfsim_network::RoutingAlgo;

fn main() {
    let spec = resolve_spec(sweep_defaults(64.0));
    dfsim_bench::sweep_qtable_guard(&spec);
    eprintln!("# Fig 13 @ scale 1/{}", spec.scale);
    let routings = spec.routings.clone();
    let runs = parallel_map(routings, spec.threads, |routing| {
        (routing, run_cell(&spec, routing, Workload::Mixed))
    });

    // (a) system-wide latency distribution.
    let mut t = TextTable::new(vec![
        "Routing",
        "mean us",
        "median us",
        "p95 us",
        "p99 us",
        "max us",
        "packets",
    ]);
    for (routing, r) in &runs {
        let l = &r.network.system_latency_us;
        t.row(vec![
            routing.label().to_string(),
            f(l.mean, 2),
            f(l.median, 2),
            f(l.p95, 2),
            f(l.p99, 2),
            f(l.max, 2),
            format!("{}", l.n),
        ]);
    }
    if csv_flag() {
        print!("{}", t.to_csv());
    } else {
        println!("{}", t.render());
    }

    // (b) aggregate throughput series, PAR vs Q-adaptive.
    let par = runs.iter().find(|(r, _)| *r == RoutingAlgo::Par);
    let qa = runs.iter().find(|(r, _)| *r == RoutingAlgo::QAdaptive);
    if let (Some((_, par)), Some((_, qa))) = (par, qa) {
        println!("== aggregate throughput (GB/ms per 0.1 ms bin) ==");
        let mut t2 = TextTable::new(vec!["t (ms)", "PAR", "Q-adp"]);
        let bins = par.network.system_throughput.len().max(qa.network.system_throughput.len());
        for i in 0..bins {
            let at = |s: &Vec<(f64, f64)>| s.get(i).map(|&(_, v)| v).unwrap_or(0.0);
            t2.row(vec![
                f(i as f64 * 0.1, 2),
                f(at(&par.network.system_throughput), 3),
                f(at(&qa.network.system_throughput), 3),
            ]);
        }
        if csv_flag() {
            print!("{}", t2.to_csv());
        } else {
            println!("{}", t2.render());
        }
        println!(
            "mean aggregate throughput: PAR {:.3} GB/ms, Q-adp {:.3} GB/ms ({:+.1}%; paper +35.1%)",
            par.network.mean_system_throughput,
            qa.network.mean_system_throughput,
            100.0 * (qa.network.mean_system_throughput / par.network.mean_system_throughput - 1.0),
        );
        println!(
            "p99 latency: PAR {:.2} us vs Q-adp {:.2} us ({:.1}% smaller; paper >63%)",
            par.network.system_latency_us.p99,
            qa.network.system_latency_us.p99,
            100.0 * (1.0 - qa.network.system_latency_us.p99 / par.network.system_latency_us.p99),
        );
    }
    if engine_stats_flag() {
        print_engine_stats(runs.iter().map(|(r, rep)| (format!("{}/mixed", r.label()), rep)));
    }
    dfsim_bench::print_cache_summary(&spec);
}
