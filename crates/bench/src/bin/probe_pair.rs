//! Calibration probe: the FFT3D + Halo3D pair under every routing
//! algorithm, with detour fractions and stall totals (development tool).

use dfsim_apps::AppKind;
use dfsim_bench::{resolve_spec_env, run_cell, sweep_defaults};
use dfsim_core::spec::Workload;
use dfsim_core::sweep::parallel_map;
use dfsim_core::tables::{f, TextTable};
use dfsim_network::RoutingAlgo;

fn main() {
    // The probe sweeps all five algorithms; TARGET/BG (or --spec) pick the
    // pair, defaulting to the paper's FFT3D + Halo3D.
    let mut defaults = sweep_defaults(64.0);
    defaults.workload = Workload::pairwise(AppKind::FFT3D, Some(AppKind::Halo3D));
    defaults.routings = RoutingAlgo::ALL.to_vec();
    let spec = resolve_spec_env(defaults, &["TARGET", "BG"]);
    dfsim_bench::sweep_qtable_guard(&spec);
    let Workload::Pairwise { target, background: bg } = spec.workload else {
        dfsim_bench::die("probe_pair needs a pairwise workload (TARGET/BG or workload pairwise)")
    };
    println!(
        "probe_pair {target} + {} @ scale 1/{}",
        bg.map(|b| b.name()).unwrap_or("none"),
        spec.scale
    );

    let runs = parallel_map(spec.routings.clone(), spec.threads, |routing| {
        let solo = run_cell(&spec, routing, Workload::pairwise(target, None));
        let pair = run_cell(&spec, routing, Workload::pairwise(target, bg));
        (routing, solo, pair)
    });

    let mut t = TextTable::new(vec![
        "Routing",
        "solo comm",
        "pair comm",
        "slowdown",
        "tgt detour%",
        "bg detour%",
        "tgt p99 us",
        "local stall ms",
        "global stall ms",
        "cong std",
    ]);
    for (routing, solo, pair) in &runs {
        let tgt = &pair.apps[0];
        let bg_detour =
            pair.apps.iter().find(|a| a.app != 0).map(|a| a.detour_frac * 100.0).unwrap_or(0.0);
        t.row(vec![
            routing.label().to_string(),
            f(solo.apps[0].comm_ms.mean, 4),
            f(tgt.comm_ms.mean, 4),
            f(tgt.comm_ms.mean / solo.apps[0].comm_ms.mean, 2),
            f(tgt.detour_frac * 100.0, 1),
            f(bg_detour, 1),
            f(tgt.latency_us.p99, 2),
            f(pair.network.avg_local_stall_ms, 3),
            f(pair.network.avg_global_stall_ms, 4),
            f(pair.network.std_global_congestion, 4),
        ]);
    }
    println!("{}", t.render());
    dfsim_bench::print_cache_summary(&spec);
}
