//! Calibration probe: the FFT3D + Halo3D pair under every routing
//! algorithm, with detour fractions and stall totals (development tool).

use dfsim_apps::AppKind;
use dfsim_bench::{study_from_env, threads_from_env};
use dfsim_core::experiments::{pairwise, StudyConfig};
use dfsim_core::sweep::parallel_map;
use dfsim_core::tables::{f, TextTable};
use dfsim_network::RoutingAlgo;

fn main() {
    let study = study_from_env(64.0);
    let target: AppKind =
        std::env::var("TARGET").ok().and_then(|s| AppKind::from_name(&s)).unwrap_or(AppKind::FFT3D);
    let bg: Option<AppKind> = match std::env::var("BG") {
        Ok(s) if s.eq_ignore_ascii_case("none") => None,
        Ok(s) => Some(AppKind::from_name(&s).expect("unknown BG")),
        Err(_) => Some(AppKind::Halo3D),
    };
    println!(
        "probe_pair {target} + {} @ scale 1/{}",
        bg.map(|b| b.name()).unwrap_or("none"),
        study.scale
    );

    let algos = [
        RoutingAlgo::Minimal,
        RoutingAlgo::UgalG,
        RoutingAlgo::UgalN,
        RoutingAlgo::Par,
        RoutingAlgo::QAdaptive,
    ];
    let runs = parallel_map(algos.to_vec(), threads_from_env(), |routing| {
        let cfg = StudyConfig { routing, ..study.clone() };
        let solo = pairwise(target, None, &cfg);
        let pair = pairwise(target, bg, &cfg);
        (routing, solo, pair)
    });

    let mut t = TextTable::new(vec![
        "Routing",
        "solo comm",
        "pair comm",
        "slowdown",
        "tgt detour%",
        "bg detour%",
        "tgt p99 us",
        "local stall ms",
        "global stall ms",
        "cong std",
    ]);
    for (routing, solo, pair) in &runs {
        let tgt = &pair.apps[0];
        let bg_detour =
            pair.apps.iter().find(|a| a.app != 0).map(|a| a.detour_frac * 100.0).unwrap_or(0.0);
        t.row(vec![
            routing.label().to_string(),
            f(solo.apps[0].comm_ms.mean, 4),
            f(tgt.comm_ms.mean, 4),
            f(tgt.comm_ms.mean / solo.apps[0].comm_ms.mean, 2),
            f(tgt.detour_frac * 100.0, 1),
            f(bg_detour, 1),
            f(tgt.latency_us.p99, 2),
            f(pair.network.avg_local_stall_ms, 3),
            f(pair.network.avg_global_stall_ms, 4),
            f(pair.network.std_global_congestion, 4),
        ]);
    }
    println!("{}", t.render());
}
