//! **Figure 7** — LQCD and Stencil5D packet latency along simulated time,
//! standalone vs co-running (PAR and Q-adaptive).
//!
//! Demonstrates the peak-ingress effect (§V-C): Stencil5D, with the
//! largest peak ingress volume, delays LQCD's packets significantly under
//! PAR.
//!
//! ```sh
//! cargo run --release -p dfsim-bench --bin fig7
//! ```

use dfsim_apps::AppKind;
use dfsim_bench::{
    csv_flag, engine_stats_flag, print_engine_stats, resolve_spec, run_cell, sweep_defaults,
};
use dfsim_core::sweep::parallel_map;
use dfsim_core::tables::{f, TextTable};
use dfsim_core::Workload;
use dfsim_network::RoutingAlgo;

fn main() {
    // The figure is defined as the PAR vs Q-adaptive comparison; the
    // routing pair is pinned regardless of ROUTING/--routing.
    let mut defaults = sweep_defaults(64.0);
    defaults.routings = vec![RoutingAlgo::Par, RoutingAlgo::QAdaptive];
    let mut spec = resolve_spec(defaults);
    spec.routings = vec![RoutingAlgo::Par, RoutingAlgo::QAdaptive];
    dfsim_bench::sweep_qtable_guard(&spec);
    eprintln!("# Fig 7 @ scale 1/{}", spec.scale);
    let algos = [RoutingAlgo::Par, RoutingAlgo::QAdaptive];
    let runs = parallel_map(algos.to_vec(), spec.threads, |routing| {
        let lqcd_alone = run_cell(&spec, routing, Workload::pairwise(AppKind::LQCD, None));
        let st_alone = run_cell(&spec, routing, Workload::pairwise(AppKind::Stencil5D, None));
        let both =
            run_cell(&spec, routing, Workload::pairwise(AppKind::LQCD, Some(AppKind::Stencil5D)));
        (routing, lqcd_alone, st_alone, both)
    });

    for (app_idx, app_name) in [(0usize, "LQCD"), (1usize, "Stencil5D")] {
        println!("== {app_name}: mean packet latency (us) per 0.1 ms bin ==");
        let mut t = TextTable::new(vec![
            "t (ms)",
            "PAR_alone",
            "Q-adp_alone",
            "PAR_interfered",
            "Q-adp_interfered",
        ]);
        let (_, par_lq, par_st, par_both) = &runs[0];
        let (_, qa_lq, qa_st, qa_both) = &runs[1];
        let alone_series = |r: &dfsim_core::RunReport| r.apps[0].latency_series.clone();
        let series = [
            if app_idx == 0 { alone_series(par_lq) } else { alone_series(par_st) },
            if app_idx == 0 { alone_series(qa_lq) } else { alone_series(qa_st) },
            par_both.apps[app_idx].latency_series.clone(),
            qa_both.apps[app_idx].latency_series.clone(),
        ];
        let bins = series.iter().map(|s| s.len()).max().unwrap_or(0);
        for i in 0..bins {
            let at = |s: &Vec<(f64, f64)>| s.get(i).map(|&(_, v)| v).unwrap_or(0.0);
            let ts =
                series.iter().find_map(|s| s.get(i).map(|&(t, _)| t)).unwrap_or(i as f64 * 0.1);
            t.row(vec![
                f(ts, 2),
                f(at(&series[0]), 2),
                f(at(&series[1]), 2),
                f(at(&series[2]), 2),
                f(at(&series[3]), 2),
            ]);
        }
        if csv_flag() {
            print!("{}", t.to_csv());
        } else {
            println!("{}", t.render());
        }
    }

    // Paper-quoted summary: LQCD mean / p99 latency, alone vs interfered
    // under PAR (57%/80% increases in the paper).
    let (_, par_lq, _, par_both) = &runs[0];
    let a = &par_lq.apps[0].latency_us;
    let b = &par_both.apps[0].latency_us;
    println!(
        "PAR LQCD latency: alone mean/p99 = {:.2}/{:.2} us, interfered = {:.2}/{:.2} us \
         (+{:.1}% / +{:.1}%; paper: +57.3% / +80.4%)",
        a.mean,
        a.p99,
        b.mean,
        b.p99,
        100.0 * (b.mean / a.mean - 1.0),
        100.0 * (b.p99 / a.p99 - 1.0),
    );
    if engine_stats_flag() {
        print_engine_stats(runs.iter().flat_map(|(r, a, b, both)| {
            [
                (format!("{}/LQCD_alone", r.label()), a),
                (format!("{}/Stencil5D_alone", r.label()), b),
                (format!("{}/LQCD+Stencil5D", r.label()), both),
            ]
        }));
    }
    dfsim_bench::print_cache_summary(&spec);
}
