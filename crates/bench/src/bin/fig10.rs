//! **Figure 10** — mixed-workload interference: each Table II application's
//! communication time standalone ("none") vs inside the six-app mix
//! ("interfered"), under all four routings.
//!
//! Paper claims: Stencil5D <2% delay; LQCD ~17.9% under adaptive, 6.5%
//! under Q-adaptive; the other apps average ~96% more comm time under
//! adaptive routing, with Q-adaptive reducing interference by ~49%.
//!
//! ```sh
//! cargo run --release -p dfsim-bench --bin fig10
//! ```

use dfsim_bench::{
    csv_flag, engine_stats_flag, print_engine_stats, resolve_spec, run_cell, sweep_defaults,
};
use dfsim_core::experiments::MIXED_JOBS;
use dfsim_core::runner::JobSpec;
use dfsim_core::sweep::parallel_map;
use dfsim_core::tables::{f, TextTable};
use dfsim_core::Workload;
use dfsim_network::RoutingAlgo;

fn main() {
    let spec = resolve_spec(sweep_defaults(64.0));
    dfsim_bench::sweep_qtable_guard(&spec);
    eprintln!("# Fig 10 @ scale 1/{}", spec.scale);

    let routings = spec.routings.clone();
    let runs = parallel_map(routings.clone(), spec.threads, |routing| {
        // Standalone runs at Table II sizes (same placement prefix as the
        // mix would give them is not required by the paper; "none" is the
        // app alone on the system).
        let alones: Vec<_> = MIXED_JOBS
            .iter()
            .map(|&(kind, size)| {
                run_cell(&spec, routing, Workload::jobs(vec![JobSpec::sized(kind, size)]))
            })
            .collect();
        let mix = run_cell(&spec, routing, Workload::Mixed);
        (routing, alones, mix)
    });

    let mut t = TextTable::new(vec![
        "App",
        "Routing",
        "None (ms)",
        "Interfered (ms)",
        "delta %",
        "std none",
        "std mix",
    ]);
    for (routing, alones, mix) in &runs {
        for (i, &(kind, _)) in MIXED_JOBS.iter().enumerate() {
            let a = &alones[i].apps[0];
            let b = &mix.apps[i];
            t.row(vec![
                kind.name().to_string(),
                routing.label().to_string(),
                f(a.comm_ms.mean, 4),
                f(b.comm_ms.mean, 4),
                f(100.0 * (b.comm_ms.mean / a.comm_ms.mean - 1.0), 1),
                f(a.comm_ms.std, 4),
                f(b.comm_ms.std, 4),
            ]);
        }
    }
    if csv_flag() {
        print!("{}", t.to_csv());
        return;
    }
    println!("{}", t.render());

    // Paper's summary statistics: mean interference over the five
    // non-Stencil5D apps, adaptive vs Q-adaptive.
    let mean_delta = |routing: RoutingAlgo| -> Option<f64> {
        let (_, alones, mix) = runs.iter().find(|(r, ..)| *r == routing)?;
        let mut total = 0.0;
        let mut n = 0;
        for (i, &(kind, _)) in MIXED_JOBS.iter().enumerate() {
            if kind.name() == "Stencil5D" {
                continue;
            }
            total += mix.apps[i].comm_ms.mean / alones[i].apps[0].comm_ms.mean - 1.0;
            n += 1;
        }
        Some(100.0 * total / n as f64)
    };
    let adaptive: Vec<f64> = [RoutingAlgo::UgalG, RoutingAlgo::UgalN, RoutingAlgo::Par]
        .iter()
        .filter_map(|&r| mean_delta(r))
        .collect();
    if !adaptive.is_empty() {
        let adaptive_mean = adaptive.iter().sum::<f64>() / adaptive.len() as f64;
        println!(
            "mean interference (non-Stencil5D apps): adaptive {:.1}% (paper ~96%), Q-adp {:.1}%",
            adaptive_mean,
            mean_delta(RoutingAlgo::QAdaptive).unwrap_or(f64::NAN),
        );
    }
    if engine_stats_flag() {
        print_engine_stats(runs.iter().flat_map(|(r, alones, mix)| {
            alones
                .iter()
                .map(|rep| (format!("{}/alone_{}", r.label(), rep.apps[0].name), rep))
                .chain(std::iter::once((format!("{}/mixed", r.label()), mix)))
                .collect::<Vec<_>>()
        }));
    }
    dfsim_bench::print_cache_summary(&spec);
}
