//! **Figure 8** — LQCD and Stencil5D communication time, standalone vs
//! co-running, under all four routings.
//!
//! Paper claims: Stencil5D (largest peak ingress) is barely affected
//! (<3%); LQCD suffers ~49% under PAR but only ~9% under Q-adaptive.
//!
//! ```sh
//! cargo run --release -p dfsim-bench --bin fig8
//! ```

use dfsim_apps::AppKind;
use dfsim_bench::{
    csv_flag, engine_stats_flag, print_engine_stats, resolve_spec, run_cell, sweep_defaults,
};
use dfsim_core::sweep::parallel_map;
use dfsim_core::tables::{f, TextTable};
use dfsim_core::Workload;
use dfsim_network::RoutingAlgo;

fn main() {
    let spec = resolve_spec(sweep_defaults(64.0));
    dfsim_bench::sweep_qtable_guard(&spec);
    eprintln!("# Fig 8 @ scale 1/{}", spec.scale);

    let routings = spec.routings.clone();
    let runs = parallel_map(routings, spec.threads, |routing| {
        let lqcd_alone = run_cell(&spec, routing, Workload::pairwise(AppKind::LQCD, None));
        let st_alone = run_cell(&spec, routing, Workload::pairwise(AppKind::Stencil5D, None));
        let both =
            run_cell(&spec, routing, Workload::pairwise(AppKind::LQCD, Some(AppKind::Stencil5D)));
        (routing, lqcd_alone, st_alone, both)
    });

    let mut t = TextTable::new(vec!["App", "Routing", "None (ms)", "Interfered (ms)", "delta %"]);
    for (routing, lqcd_alone, st_alone, both) in &runs {
        for (name, alone, pair_idx) in
            [("LQCD", lqcd_alone, 0usize), ("Stencil5D", st_alone, 1usize)]
        {
            let a = alone.apps[0].comm_ms.mean;
            let b = both.apps[pair_idx].comm_ms.mean;
            t.row(vec![
                name.to_string(),
                routing.label().to_string(),
                f(a, 4),
                f(b, 4),
                f(100.0 * (b / a - 1.0), 1),
            ]);
        }
    }
    if csv_flag() {
        print!("{}", t.to_csv());
    } else {
        println!("{}", t.render());
    }
    if let (Some(par), Some(qa)) = (
        runs.iter().find(|(r, ..)| *r == RoutingAlgo::Par),
        runs.iter().find(|(r, ..)| *r == RoutingAlgo::QAdaptive),
    ) {
        println!(
            "LQCD interfered delta: PAR +{:.1}% (paper +49.1%), Q-adp +{:.1}% (paper +9.3%)",
            100.0 * (par.3.apps[0].comm_ms.mean / par.1.apps[0].comm_ms.mean - 1.0),
            100.0 * (qa.3.apps[0].comm_ms.mean / qa.1.apps[0].comm_ms.mean - 1.0),
        );
    }
    if engine_stats_flag() {
        print_engine_stats(runs.iter().flat_map(|(r, a, b, both)| {
            [
                (format!("{}/LQCD_alone", r.label()), a),
                (format!("{}/Stencil5D_alone", r.label()), b),
                (format!("{}/LQCD+Stencil5D", r.label()), both),
            ]
        }));
    }
    dfsim_bench::print_cache_summary(&spec);
}
