//! **Ablation** — UGAL minimal-path bias sweep.
//!
//! The paper configures adaptive routing "with zero bias towards the
//! minimal path" (§III). This sweep shows what that choice means: positive
//! bias suppresses Valiant detours (towards MIN behaviour), negative bias
//! sprays more traffic non-minimally.
//!
//! ```sh
//! cargo run --release -p dfsim-bench --bin ugal_bias
//! ```

use dfsim_apps::AppKind;
use dfsim_bench::{csv_flag, resolve_spec, run_cell, sweep_defaults};
use dfsim_core::sweep::parallel_map;
use dfsim_core::tables::{f, TextTable};
use dfsim_core::Workload;
use dfsim_network::RoutingAlgo;

fn main() {
    // The sweep varies the UGAL bias itself; the routing is pinned to
    // UGALg regardless of overrides.
    let mut defaults = sweep_defaults(64.0);
    defaults.routings = vec![RoutingAlgo::UgalG];
    let mut spec = resolve_spec(defaults);
    spec.routings = vec![RoutingAlgo::UgalG];
    dfsim_bench::sweep_qtable_guard(&spec);
    eprintln!("# UGAL bias sweep @ scale 1/{}", spec.scale);
    let biases: Vec<i64> = vec![-4, 0, 4, 16, 64];
    let runs = parallel_map(biases, spec.threads, |bias| {
        let mut cell = spec.clone();
        cell.ugal_bias = bias;
        let r = run_cell(
            &cell,
            RoutingAlgo::UgalG,
            Workload::pairwise(AppKind::FFT3D, Some(AppKind::Halo3D)),
        );
        (bias, r)
    });

    let mut t = TextTable::new(vec![
        "bias (pkts)",
        "FFT3D comm (ms)",
        "FFT3D detour %",
        "Halo3D detour %",
        "sys p99 us",
    ]);
    for (bias, r) in &runs {
        t.row(vec![
            format!("{bias}"),
            f(r.apps[0].comm_ms.mean, 4),
            f(r.apps[0].detour_frac * 100.0, 1),
            f(r.apps[1].detour_frac * 100.0, 1),
            f(r.network.system_latency_us.p99, 2),
        ]);
    }
    if csv_flag() {
        print!("{}", t.to_csv());
    } else {
        println!("{}", t.render());
    }
    dfsim_bench::print_cache_summary(&spec);
}
