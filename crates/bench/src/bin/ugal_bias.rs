//! **Ablation** — UGAL minimal-path bias sweep.
//!
//! The paper configures adaptive routing "with zero bias towards the
//! minimal path" (§III). This sweep shows what that choice means: positive
//! bias suppresses Valiant detours (towards MIN behaviour), negative bias
//! sprays more traffic non-minimally.
//!
//! ```sh
//! cargo run --release -p dfsim-bench --bin ugal_bias
//! ```

use dfsim_apps::AppKind;
use dfsim_bench::{csv_flag, study_from_env, threads_from_env};
use dfsim_core::config::SimConfig;
use dfsim_core::runner::{run_placed, JobSpec};
use dfsim_core::sweep::parallel_map;
use dfsim_core::tables::{f, TextTable};
use dfsim_network::{RoutingAlgo, RoutingConfig};

fn main() {
    let study = study_from_env(64.0);
    eprintln!("# UGAL bias sweep @ scale 1/{}", study.scale);
    let biases: Vec<i64> = vec![-4, 0, 4, 16, 64];
    let half = study.half_nodes();
    let runs = parallel_map(biases, threads_from_env(), |bias| {
        let mut routing = RoutingConfig::new(RoutingAlgo::UgalG);
        routing.ugal_bias = bias;
        let cfg = SimConfig { routing, scale: study.scale, seed: study.seed, ..Default::default() };
        let jobs = [
            JobSpec::sized(AppKind::FFT3D, AppKind::FFT3D.preferred_size(half)),
            JobSpec::sized(AppKind::Halo3D, AppKind::Halo3D.preferred_size(half)),
        ];
        (bias, run_placed(&cfg, &jobs, study.placement))
    });

    let mut t = TextTable::new(vec![
        "bias (pkts)",
        "FFT3D comm (ms)",
        "FFT3D detour %",
        "Halo3D detour %",
        "sys p99 us",
    ]);
    for (bias, r) in &runs {
        t.row(vec![
            format!("{bias}"),
            f(r.apps[0].comm_ms.mean, 4),
            f(r.apps[0].detour_frac * 100.0, 1),
            f(r.apps[1].detour_frac * 100.0, 1),
            f(r.network.system_latency_us.p99, 2),
        ]);
    }
    if csv_flag() {
        print!("{}", t.to_csv());
    } else {
        println!("{}", t.render());
    }
}
