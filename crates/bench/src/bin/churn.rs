//! **Churn** — job-churn interference sweep: Poisson arrivals × routing ×
//! placement, with an interference matrix attributed to co-residency
//! intervals (the paper's Fig. 8 question — "who hurts whom?" — but under
//! dynamic job arrival/departure instead of static pairing).
//!
//! For every `(arrival rate, routing, placement)` cell a scenario of `JOBS`
//! Poisson arrivals runs to completion under FCFS (or backfill) admission;
//! the per-job wait/slowdown land in the run report. The matrix cell
//! `(target, other)` is the overlap-weighted mean slowdown of completed
//! `target` jobs during intervals when a job of kind `other` was
//! co-resident — windowed attribution via [`dfsim_metrics::Span`].
//!
//! ```sh
//! cargo run --release -p dfsim-bench --bin churn
//! RATES=0.5,2 JOBS=16 APPS=UR,LQCD cargo run --release -p dfsim-bench --bin churn
//! cargo run --release -p dfsim-bench --bin churn -- --smoke   # CI smoke
//! ```
//!
//! All knobs resolve through `ExperimentSpec::resolve` (`binary defaults <
//! --spec FILE < env < CLI`): `SCALE`, `SEED`, `QUEUE`, `ROUTING`,
//! `THREADS` (shared with the fig binaries), plus `RATES` (jobs per
//! simulated ms), `JOBS` (count per scenario), `APPS` (workload cycle),
//! `SIZES` (node counts drawn per job), `SCHED` (`fcfs`/`backfill`).

use dfsim_apps::AppKind;
use dfsim_bench::{
    cell_trace_path, csv_flag, die, engine_stats_flag, print_engine_stats, resolve_spec_env,
    run_cell_traced, smoke_flag, sweep_defaults,
};
use dfsim_core::placement::Placement;
use dfsim_core::scenario::Scenario;
use dfsim_core::sweep::parallel_map;
use dfsim_core::tables::{f, TextTable};
use dfsim_core::{ExperimentSpec, RunReport, Simulation, Workload};
use dfsim_des::{QueueBackend, Time, MILLISECOND};
use dfsim_metrics::Span;
use dfsim_network::RoutingAlgo;
use dfsim_topology::DragonflyParams;

/// `[start, finish)` of a completed (or started) job, picoseconds.
fn job_span(start_ms: Option<f64>, finish_ms: Option<f64>) -> Option<Span> {
    let ps = |ms: f64| (ms * MILLISECOND as f64).round() as Time;
    match (start_ms, finish_ms) {
        (Some(s), Some(e)) => Some(Span::new(ps(s), ps(e))),
        _ => None,
    }
}

/// Overlap-weighted mean slowdown of completed `row` jobs while co-resident
/// with `col` jobs, over all runs. `None` when the pair never co-resided.
fn interference_matrix(reports: &[&RunReport], kinds: &[AppKind]) -> Vec<Vec<Option<f64>>> {
    let k = kinds.len();
    let idx = |name: &str| kinds.iter().position(|a| a.name() == name);
    let mut acc = vec![vec![0.0f64; k]; k];
    let mut weight = vec![vec![0.0f64; k]; k];
    for r in reports {
        let spans: Vec<Option<Span>> =
            r.jobs.iter().map(|j| job_span(j.start_ms, j.finish_ms)).collect();
        for (i, ji) in r.jobs.iter().enumerate() {
            // Incomplete jobs carry no slowdown (`None`) and are skipped
            // instead of biasing the matrix with a placeholder 1.0.
            let (Some(row), Some(si), Some(slowdown)) = (idx(&ji.name), spans[i], ji.slowdown)
            else {
                continue;
            };
            for (j2, jj) in r.jobs.iter().enumerate() {
                if i == j2 {
                    continue;
                }
                let (Some(col), Some(sj)) = (idx(&jj.name), spans[j2]) else { continue };
                let o = si.overlap_duration(&sj) as f64;
                if o > 0.0 {
                    acc[row][col] += slowdown * o;
                    weight[row][col] += o;
                }
            }
        }
    }
    (0..k)
        .map(|r| (0..k).map(|c| (weight[r][c] > 0.0).then(|| acc[r][c] / weight[r][c])).collect())
        .collect()
}

fn smoke() -> ! {
    // High arrival rate so arrivals outpace the µs-scale tiny jobs and the
    // smoke exercises queueing, not just spawn/teardown.
    let base = ExperimentSpec {
        workload: Workload::Poisson,
        params: DragonflyParams::tiny_72(),
        routings: vec![RoutingAlgo::UgalG],
        scale: 2_048.0,
        seed: 7,
        rates: vec![500.0],
        jobs: 6,
        apps: vec![AppKind::UR, AppKind::CosmoFlow],
        sizes: vec![18, 36],
        ..Default::default()
    };
    let run_on = |queue: QueueBackend| {
        let mut spec = base.clone();
        spec.queue = queue;
        Simulation::from_spec(spec)
            .and_then(|mut s| s.run())
            .unwrap_or_else(|e| die(format!("churn smoke FAILED: {e}")))
            .report
    };
    let heap = run_on(QueueBackend::BinaryHeap);
    let cal = run_on(QueueBackend::calendar_auto());
    let completed = heap.completed_jobs().count();
    println!(
        "churn smoke: {completed}/{} jobs completed, mean wait {:.4} ms, mean slowdown {:.3}, \
         {} events (heap) vs {} events (calendar)",
        heap.jobs.len(),
        heap.mean_wait_ms(),
        heap.mean_slowdown(),
        heap.events,
        cal.events,
    );
    if completed == 0 {
        die("churn smoke FAILED: no job completed");
    }
    if engine_stats_flag() {
        print_engine_stats([("heap".to_string(), &heap), ("calendar:auto".to_string(), &cal)]);
    }
    let jobs_match = heap.jobs.iter().zip(&cal.jobs).all(|(h, c)| {
        h.wait_ms == c.wait_ms && h.slowdown == c.slowdown && h.finish_ms == c.finish_ms
    });
    let apps_match = heap
        .apps
        .iter()
        .zip(&cal.apps)
        .all(|(h, c)| h.comm_ms.mean == c.comm_ms.mean && h.exec_ms == c.exec_ms);
    if heap.events != cal.events
        || heap.sim_ms != cal.sim_ms
        || heap.jobs.len() != cal.jobs.len()
        || heap.network.total_delivered_gb != cal.network.total_delivered_gb
        || !jobs_match
        || !apps_match
    {
        die("churn smoke FAILED: backends diverged");
    }
    std::process::exit(0)
}

fn main() {
    if smoke_flag() {
        smoke();
    }
    // Default rates chosen so inter-arrival gaps are comparable to the
    // scaled job durations (~0.03–0.2 ms at 1/256): the low rate drains,
    // the high one queues.
    let mut defaults = sweep_defaults(256.0);
    defaults.workload = Workload::Poisson;
    defaults.rates = vec![20.0, 60.0];
    defaults.jobs = 12;
    defaults.apps = vec![AppKind::UR, AppKind::CosmoFlow, AppKind::LQCD, AppKind::FFT3D];
    let mut spec = resolve_spec_env(defaults, &["RATES", "JOBS", "APPS", "SIZES"]);
    dfsim_bench::sweep_qtable_guard(&spec);
    // `--trace PATH` streams every cell into its own file (PATH with a
    // `rate_routing_placement` infix); `ExperimentSpec::cell` strips the
    // knob, so it is lifted out here and re-attached per cell.
    let trace_base = spec.trace.take();
    let nodes = spec.params.num_nodes();
    if spec.sizes.is_empty() {
        // Quarter- and half-machine jobs: a couple of co-residents fill
        // the system, so admission actually queues at the high rate.
        spec.sizes = vec![nodes / 4, nodes / 2];
    }
    let routings = spec.routings.clone();
    let rates = spec.rates.clone();
    let kinds = spec.apps.clone();
    // Every cell draws from the same kind/size pools, so one representative
    // scenario validates them all before the sweep starts (clean message
    // instead of a mid-sweep error on e.g. SIZES larger than the machine).
    if let Err(e) =
        Scenario::poisson(spec.seed, rates[0], spec.jobs, &kinds, &spec.sizes).validate(nodes)
    {
        die(&e);
    }
    let placements = [Placement::Random, Placement::Contiguous];

    eprintln!(
        "# churn @ scale 1/{}, seed {}, {} jobs/scenario, sched {}, {} rates x {} routings x 2 \
         placements",
        spec.scale,
        spec.seed,
        spec.jobs,
        spec.sched.label(),
        rates.len(),
        routings.len(),
    );

    let mut cells: Vec<(f64, RoutingAlgo, Placement)> = Vec::new();
    for &rate in &rates {
        for &routing in &routings {
            for placement in placements {
                cells.push((rate, routing, placement));
            }
        }
    }
    let traced = trace_base.is_some();
    let summary_spec = spec.clone();
    let results = parallel_map(cells, spec.threads, move |(rate, routing, placement)| {
        let mut cell = spec.clone();
        cell.rates = vec![rate];
        cell.placement = placement;
        let trace = trace_base.as_ref().map(|base| {
            cell_trace_path(base, &format!("r{rate}_{}_{}", routing.label(), placement.label()))
        });
        let report = run_cell_traced(&cell, routing, Workload::Poisson, trace);
        (rate, routing, placement, report)
    });
    if traced {
        eprintln!(
            "# {} trace files written (replay with: dfsim trace FILE --replay)",
            results.len()
        );
    }

    let mut t = TextTable::new(vec![
        "Rate (jobs/ms)",
        "Routing",
        "Placement",
        "Done",
        "Mean wait (ms)",
        "Mean slowdown",
        "Sim (ms)",
        "ok",
    ]);
    for (rate, routing, placement, r) in &results {
        t.row(vec![
            f(*rate, 2),
            routing.label().to_string(),
            format!("{placement:?}"),
            format!("{}/{}", r.completed_jobs().count(), r.jobs.len()),
            f(r.mean_wait_ms(), 4),
            f(r.mean_slowdown(), 3),
            f(r.sim_ms, 4),
            if r.completed { "y".into() } else { r.stop_reason.clone() },
        ]);
    }
    if csv_flag() {
        print!("{}", t.to_csv());
    } else {
        println!("{}", t.render());
    }
    if engine_stats_flag() {
        print_engine_stats(results.iter().map(|(rate, routing, placement, rep)| {
            (format!("rate{rate}/{}/{placement:?}", routing.label()), rep)
        }));
    }

    // Per-routing interference matrix under churn (aggregated over rates
    // and placements): rows = target kind, cols = co-resident kind.
    for &routing in &routings {
        let of_routing: Vec<&RunReport> =
            results.iter().filter(|(_, r, _, _)| *r == routing).map(|(_, _, _, rep)| rep).collect();
        let m = interference_matrix(&of_routing, &kinds);
        let mut header = vec!["Target \\ Co-res".to_string()];
        header.extend(kinds.iter().map(|k| k.name().to_string()));
        let mut mt = TextTable::new(header);
        for (ri, row) in m.iter().enumerate() {
            let mut cells = vec![kinds[ri].name().to_string()];
            cells.extend(row.iter().map(|c| c.map_or("-".to_string(), |v| f(v, 3))));
            mt.row(cells);
        }
        if csv_flag() {
            print!("{}", mt.to_csv());
        } else {
            println!("\nInterference under churn — {} (overlap-weighted slowdown):", routing);
            println!("{}", mt.render());
        }
    }
    dfsim_bench::print_cache_summary(&summary_spec);
}
