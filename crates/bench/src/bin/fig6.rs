//! **Figure 6** — FFT3D packet-latency distribution (quartiles, mean, p95,
//! p99) standalone vs interfered by Halo3D, under PAR and Q-adaptive.
//!
//! The paper's claim: interfered PAR p95/p99 are 1.59×/2.01× Q-adaptive's;
//! Q-adaptive's tail control is what saves FFT3D's communication time.
//!
//! ```sh
//! cargo run --release -p dfsim-bench --bin fig6
//! ```

use dfsim_apps::AppKind;
use dfsim_bench::{
    csv_flag, engine_stats_flag, print_engine_stats, study_from_env, threads_from_env,
};
use dfsim_core::experiments::pairwise;
use dfsim_core::sweep::parallel_map;
use dfsim_core::tables::{f, TextTable};
use dfsim_network::RoutingAlgo;

fn main() {
    let mut study = study_from_env(64.0);
    dfsim_bench::apply_qtable_flags(&mut study, &[RoutingAlgo::Par, RoutingAlgo::QAdaptive]);
    eprintln!("# Fig 6 @ scale 1/{}", study.scale);
    let cases: Vec<(RoutingAlgo, bool)> = vec![
        (RoutingAlgo::Par, false),
        (RoutingAlgo::QAdaptive, false),
        (RoutingAlgo::Par, true),
        (RoutingAlgo::QAdaptive, true),
    ];
    let runs = parallel_map(cases, threads_from_env(), |(routing, interfered)| {
        let cfg = dfsim_bench::cell_study(routing, &study);
        let bg = interfered.then_some(AppKind::Halo3D);
        (routing, interfered, pairwise(AppKind::FFT3D, bg, &cfg))
    });

    let mut t = TextTable::new(vec![
        "Case",
        "n",
        "mean us",
        "Q1 us",
        "median us",
        "Q3 us",
        "p95 us",
        "p99 us",
        "max us",
    ]);
    for (routing, interfered, r) in &runs {
        let l = &r.apps[0].latency_us;
        let label =
            format!("{}_{}", routing.label(), if *interfered { "interfered" } else { "alone" });
        t.row(vec![
            label,
            format!("{}", l.n),
            f(l.mean, 2),
            f(l.q1, 2),
            f(l.median, 2),
            f(l.q3, 2),
            f(l.p95, 2),
            f(l.p99, 2),
            f(l.max, 2),
        ]);
    }
    if csv_flag() {
        print!("{}", t.to_csv());
    } else {
        println!("{}", t.render());
    }
    let par = &runs.iter().find(|(r, i, _)| *r == RoutingAlgo::Par && *i).unwrap().2.apps[0];
    let qa = &runs.iter().find(|(r, i, _)| *r == RoutingAlgo::QAdaptive && *i).unwrap().2.apps[0];
    println!(
        "interfered tails: PAR p95/p99 = {:.2}/{:.2} us, Q-adp = {:.2}/{:.2} us \
         (ratios {:.2}x / {:.2}x; paper: 1.59x / 2.01x)",
        par.latency_us.p95,
        par.latency_us.p99,
        qa.latency_us.p95,
        qa.latency_us.p99,
        par.latency_us.p95 / qa.latency_us.p95,
        par.latency_us.p99 / qa.latency_us.p99,
    );
    if engine_stats_flag() {
        print_engine_stats(runs.iter().map(|(r, interfered, rep)| {
            let tag = if *interfered { "interfered" } else { "alone" };
            (format!("{}/{tag}", r.label()), rep)
        }));
    }
}
