//! **Figure 6** — FFT3D packet-latency distribution (quartiles, mean, p95,
//! p99) standalone vs interfered by Halo3D, under PAR and Q-adaptive.
//!
//! The paper's claim: interfered PAR p95/p99 are 1.59×/2.01× Q-adaptive's;
//! Q-adaptive's tail control is what saves FFT3D's communication time.
//!
//! ```sh
//! cargo run --release -p dfsim-bench --bin fig6
//! ```

use dfsim_apps::AppKind;
use dfsim_bench::{
    csv_flag, engine_stats_flag, print_engine_stats, resolve_spec, run_cell, sweep_defaults,
};
use dfsim_core::sweep::parallel_map;
use dfsim_core::tables::{f, TextTable};
use dfsim_core::Workload;
use dfsim_network::RoutingAlgo;

fn main() {
    // The figure is defined as the PAR vs Q-adaptive comparison; the
    // routing pair is pinned regardless of ROUTING/--routing.
    let mut defaults = sweep_defaults(64.0);
    defaults.routings = vec![RoutingAlgo::Par, RoutingAlgo::QAdaptive];
    let mut spec = resolve_spec(defaults);
    spec.routings = vec![RoutingAlgo::Par, RoutingAlgo::QAdaptive];
    dfsim_bench::sweep_qtable_guard(&spec);
    eprintln!("# Fig 6 @ scale 1/{}", spec.scale);
    let cases: Vec<(RoutingAlgo, bool)> = vec![
        (RoutingAlgo::Par, false),
        (RoutingAlgo::QAdaptive, false),
        (RoutingAlgo::Par, true),
        (RoutingAlgo::QAdaptive, true),
    ];
    let runs = parallel_map(cases, spec.threads, |(routing, interfered)| {
        let bg = interfered.then_some(AppKind::Halo3D);
        (routing, interfered, run_cell(&spec, routing, Workload::pairwise(AppKind::FFT3D, bg)))
    });

    let mut t = TextTable::new(vec![
        "Case",
        "n",
        "mean us",
        "Q1 us",
        "median us",
        "Q3 us",
        "p95 us",
        "p99 us",
        "max us",
    ]);
    for (routing, interfered, r) in &runs {
        let l = &r.apps[0].latency_us;
        let label =
            format!("{}_{}", routing.label(), if *interfered { "interfered" } else { "alone" });
        t.row(vec![
            label,
            format!("{}", l.n),
            f(l.mean, 2),
            f(l.q1, 2),
            f(l.median, 2),
            f(l.q3, 2),
            f(l.p95, 2),
            f(l.p99, 2),
            f(l.max, 2),
        ]);
    }
    if csv_flag() {
        print!("{}", t.to_csv());
    } else {
        println!("{}", t.render());
    }
    let par = &runs.iter().find(|(r, i, _)| *r == RoutingAlgo::Par && *i).unwrap().2.apps[0];
    let qa = &runs.iter().find(|(r, i, _)| *r == RoutingAlgo::QAdaptive && *i).unwrap().2.apps[0];
    println!(
        "interfered tails: PAR p95/p99 = {:.2}/{:.2} us, Q-adp = {:.2}/{:.2} us \
         (ratios {:.2}x / {:.2}x; paper: 1.59x / 2.01x)",
        par.latency_us.p95,
        par.latency_us.p99,
        qa.latency_us.p95,
        qa.latency_us.p99,
        par.latency_us.p95 / qa.latency_us.p95,
        par.latency_us.p99 / qa.latency_us.p99,
    );
    if engine_stats_flag() {
        print_engine_stats(runs.iter().map(|(r, interfered, rep)| {
            let tag = if *interfered { "interfered" } else { "alone" };
            (format!("{}/{tag}", r.label()), rep)
        }));
    }
    dfsim_bench::print_cache_summary(&spec);
}
