//! **Figure 12** — congestion-index heat map under the mixed workload:
//! entry (i, j) is the directed global link Gi→Gj's mean-throughput /
//! capacity ratio; the diagonal averages group-local links. PAR vs
//! Q-adaptive.
//!
//! The paper reads imbalance off this map (dark rows/columns = hot
//! groups); we print the matrices plus the mean/std summary that
//! quantifies it.
//!
//! ```sh
//! cargo run --release -p dfsim-bench --bin fig12
//! ```

use dfsim_bench::{
    csv_flag, engine_stats_flag, print_engine_stats, resolve_spec, run_cell, sweep_defaults,
};
use dfsim_core::sweep::parallel_map;
use dfsim_network::RoutingAlgo;

fn print_matrix(name: &str, m: &[Vec<f64>], csv: bool) {
    println!("== {name} congestion index ==");
    if csv {
        for row in m {
            println!("{}", row.iter().map(|v| format!("{v:.4}")).collect::<Vec<_>>().join(","));
        }
        return;
    }
    // Compact shaded text rendering: one character per cell.
    let shades = [' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];
    let max = m.iter().flatten().copied().fold(0.0f64, f64::max).max(1e-12);
    for row in m {
        let line: String = row
            .iter()
            .map(|&v| {
                let idx = ((v / max) * (shades.len() - 1) as f64).round() as usize;
                shades[idx.min(shades.len() - 1)]
            })
            .collect();
        println!("|{line}|");
    }
    println!("(scale: ' '=0 .. '@'={max:.4})");
}

fn main() {
    // The figure is defined as the PAR vs Q-adaptive comparison; the
    // routing pair is pinned regardless of ROUTING/--routing.
    let mut defaults = sweep_defaults(64.0);
    defaults.routings = vec![RoutingAlgo::Par, RoutingAlgo::QAdaptive];
    let mut spec = resolve_spec(defaults);
    spec.routings = vec![RoutingAlgo::Par, RoutingAlgo::QAdaptive];
    dfsim_bench::sweep_qtable_guard(&spec);
    eprintln!("# Fig 12 @ scale 1/{}", spec.scale);
    let algos = [RoutingAlgo::Par, RoutingAlgo::QAdaptive];
    let runs = parallel_map(algos.to_vec(), spec.threads, |routing| {
        (routing, run_cell(&spec, routing, dfsim_core::Workload::Mixed))
    });

    for (routing, r) in &runs {
        print_matrix(routing.label(), &r.network.congestion, csv_flag());
        println!(
            "{}: mean global index {:.4}, std {:.4} (imbalance); diagonal mean {:.4}",
            routing.label(),
            r.network.mean_global_congestion,
            r.network.std_global_congestion,
            r.network.congestion.iter().enumerate().map(|(i, row)| row[i]).sum::<f64>()
                / r.network.congestion.len() as f64,
        );
        println!();
    }
    let par = &runs[0].1.network;
    let qa = &runs[1].1.network;
    println!(
        "shape check (paper §VI-B): PAR should show higher std (hot spots) than Q-adp: \
         {:.4} vs {:.4} -> {}",
        par.std_global_congestion,
        qa.std_global_congestion,
        if par.std_global_congestion > qa.std_global_congestion { "OK" } else { "MISMATCH" }
    );
    if engine_stats_flag() {
        print_engine_stats(runs.iter().map(|(r, rep)| (format!("{}/mixed", r.label()), rep)));
    }
    dfsim_bench::print_cache_summary(&spec);
}
