//! **Table II** — the mixed-workload job sizes, plus each job's measured
//! standalone-at-that-size characteristics (an extension of the paper's
//! config table that makes the mix's load composition visible).
//!
//! ```sh
//! cargo run --release -p dfsim-bench --bin table2
//! ```

use dfsim_bench::{
    csv_flag, engine_stats_flag, print_engine_stats, resolve_spec, run_cell, sweep_defaults,
};
use dfsim_core::experiments::MIXED_JOBS;
use dfsim_core::runner::JobSpec;
use dfsim_core::sweep::parallel_map;
use dfsim_core::tables::{f, human_bytes, TextTable};
use dfsim_core::Workload;

fn main() {
    let spec = resolve_spec(sweep_defaults(64.0));
    dfsim_bench::sweep_qtable_guard(&spec);
    let routing = spec.routing();
    eprintln!("# Table II @ scale 1/{}, routing {routing}", spec.scale);

    // Standalone run of each job at its mixed-workload size.
    let reports = parallel_map(MIXED_JOBS.to_vec(), spec.threads, |(kind, size)| {
        let r = run_cell(&spec, routing, Workload::jobs(vec![JobSpec::sized(kind, size)]));
        (kind, size, r)
    });

    let mut t = TextTable::new(vec![
        "Application",
        "Job size (paper)",
        "Exec ms (alone)",
        "Inj GB/s (alone)",
        "Peak ingress",
    ]);
    for (kind, size, r) in &reports {
        let a = &r.apps[0];
        t.row(vec![
            kind.name().to_string(),
            format!("{size}"),
            f(a.exec_ms, 4),
            f(a.inj_rate_gbs, 2),
            human_bytes(a.peak_ingress_bytes),
        ]);
    }
    let total: u32 = MIXED_JOBS.iter().map(|&(_, s)| s).sum();
    if csv_flag() {
        print!("{}", t.to_csv());
    } else {
        println!("{}", t.render());
        println!("Total nodes: {total} (the full 1,056-node system; paper Table II).");
    }
    if engine_stats_flag() {
        print_engine_stats(reports.iter().map(|(kind, _, rep)| (kind.name().to_string(), rep)));
    }
    dfsim_bench::print_cache_summary(&spec);
}
