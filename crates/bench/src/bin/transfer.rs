//! **Transfer** — Q-table transfer-learning bench: train Q-adaptive on one
//! workload mix, snapshot the learned tables, and evaluate *warm-started*
//! vs *cold-started* Q-adaptive on other workloads (with a UGALg reference
//! row per workload).
//!
//! Cold-start is the paper's condition: every run re-learns the traffic
//! from static topology estimates and the training transient is charged to
//! the measured communication time. Warm-start loads a fingerprint-checked
//! snapshot instead, so the run begins near steady state — visible in the
//! early windows of the latency series and in the `learning` block (mean
//! `|ΔQ1|` per window).
//!
//! The regime matters: on an *uncongested* network the static estimates
//! are already correct and there is nothing to transfer. Every cell
//! therefore runs a **pair of half-machine jobs under contiguous
//! placement**, concentrating neighbour traffic onto specific group pairs
//! whose single global links saturate — the setting where the learned
//! congestion map is valuable run-over-run.
//!
//! ```sh
//! cargo run --release -p dfsim-bench --bin transfer
//! TRAIN=Halo3D APPS=Stencil5D,LQCD cargo run --release -p dfsim-bench --bin transfer
//! cargo run --release -p dfsim-bench --bin transfer -- --smoke   # CI smoke
//! ```
//!
//! All knobs resolve through `ExperimentSpec::resolve`: `SCALE`, `SEED`,
//! `QUEUE`, `THREADS` (shared with the fig binaries), plus `TRAIN` (training
//! workload, default Halo3D), `APPS` (evaluation workloads) and `SNAPSHOT`
//! (keep the trained snapshot at this path instead of a deleted temp file).
//! The generic `--qtable` knobs are rejected: this binary owns its own
//! Q-table lifecycle.

use std::path::Path;

use dfsim_apps::AppKind;
use dfsim_bench::{csv_flag, die, resolve_spec_env, smoke_flag};
use dfsim_core::placement::Placement;
use dfsim_core::sweep::parallel_map;
use dfsim_core::tables::{f, TextTable};
use dfsim_core::{ExperimentSpec, JobSpec, LearningReport, RunReport, Simulation, Workload};
use dfsim_des::{QueueBackend, MICROSECOND};
use dfsim_network::{QTableSnapshot, RoutingAlgo};
use dfsim_topology::DragonflyParams;

/// Windows of the learning/latency series that count as "early".
const EARLY_WINDOWS: usize = 5;

/// Mean of the first `k` values of a latency series, µs (0 when empty).
fn early_latency_us(series: &[(f64, f64)], k: usize) -> f64 {
    let vals: Vec<f64> = series.iter().take(k).map(|&(_, v)| v).collect();
    if vals.is_empty() {
        0.0
    } else {
        vals.iter().sum::<f64>() / vals.len() as f64
    }
}

/// One evaluation cell.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Init {
    Ugal,
    Cold,
    Warm,
}

impl Init {
    fn label(self) -> &'static str {
        match self {
            Init::Ugal => "UGALg",
            Init::Cold => "Q-adp cold",
            Init::Warm => "Q-adp warm",
        }
    }
}

/// The per-cell spec: fine (1 µs) recorder windows resolve the sub-0.1 ms
/// scaled runs that the default 0.1 ms bins would collapse into a single
/// window; contiguous placement concentrates the pair's traffic (module
/// docs).
fn cell_spec(base: &ExperimentSpec, init: Init, seed: u64, snap: &Path) -> ExperimentSpec {
    let mut spec = base.clone();
    spec.seed = seed;
    // `threads` sizes the eval cell pool here; cells run single-partition.
    spec.threads = 0;
    spec.bin_width = MICROSECOND;
    spec.placement = Placement::Contiguous;
    spec.qtable_load = None;
    spec.qtable_save = None;
    spec.routings = vec![match init {
        Init::Ugal => RoutingAlgo::UgalG,
        Init::Cold | Init::Warm => RoutingAlgo::QAdaptive,
    }];
    if init == Init::Warm {
        spec.qtable_load = Some(snap.to_path_buf());
    }
    spec
}

/// A pair of half-machine jobs of `kind` under the cell spec (see the
/// module docs for why this is the transfer-relevant regime).
fn run_pair(kind: AppKind, spec: &ExperimentSpec) -> RunReport {
    let half = spec.params.num_nodes() / 2;
    let size = kind.preferred_size(half);
    let jobs = vec![JobSpec::sized(kind, size), JobSpec::sized(kind, size)];
    Simulation::run_one(spec, Workload::jobs(jobs)).unwrap_or_else(|e| die(&e)).report
}

fn train(base: &ExperimentSpec, kind: AppKind, seed: u64, snap: &Path) -> RunReport {
    let mut spec = cell_spec(base, Init::Cold, seed, snap);
    spec.qtable_save = Some(snap.to_path_buf());
    run_pair(kind, &spec)
}

fn learning_cols(l: Option<&LearningReport>) -> [String; 3] {
    match l {
        Some(l) => [
            f(l.early_mean_ns(EARLY_WINDOWS), 2),
            f(l.late_mean_ns(EARLY_WINDOWS), 2),
            l.updates.to_string(),
        ],
        None => ["-".into(), "-".into(), "-".into()],
    }
}

fn smoke() -> ! {
    let snap =
        std::env::temp_dir().join(format!("dfsim_transfer_smoke_{}.qtable", std::process::id()));
    let base = ExperimentSpec {
        params: DragonflyParams::tiny_72(),
        routings: vec![RoutingAlgo::QAdaptive],
        scale: 128.0,
        seed: 7,
        ..Default::default()
    };
    let kind = AppKind::Halo3D;

    // Train on seed 7, snapshot, and round-trip the file.
    let trained = train(&base, kind, 7, &snap);
    if !trained.completed {
        die("transfer smoke FAILED: training run incomplete");
    }
    let text = std::fs::read_to_string(&snap)
        .unwrap_or_else(|e| die(format!("transfer smoke FAILED: snapshot unreadable: {e}")));
    let loaded =
        QTableSnapshot::load(&snap).unwrap_or_else(|e| die(format!("transfer smoke FAILED: {e}")));
    loaded
        .verify(&base.params, &base.timing, base.qa_alpha)
        .unwrap_or_else(|e| die(format!("transfer smoke FAILED: {e}")));
    if loaded.to_text() != text {
        die("transfer smoke FAILED: save -> load -> save is not byte-identical");
    }

    // Evaluate with a different seed so the warm run is not a literal
    // replay of its own training traffic (contiguous placement keeps the
    // hot group pairs identical, which is exactly the transfer premise).
    let cold = run_pair(kind, &cell_spec(&base, Init::Cold, 8, &snap));
    let warm_spec = cell_spec(&base, Init::Warm, 8, &snap);
    let warm_heap = run_pair(kind, &warm_spec);
    let mut warm_cal_spec = warm_spec.clone();
    warm_cal_spec.queue = QueueBackend::calendar_auto();
    let warm_cal = run_pair(kind, &warm_cal_spec);
    let _ = std::fs::remove_file(&snap);
    if !(cold.completed && warm_heap.completed && warm_cal.completed) {
        die("transfer smoke FAILED: an evaluation run did not complete");
    }
    // Warm-started runs must be bit-identical across queue backends.
    let h = &warm_heap.apps[0];
    let c = &warm_cal.apps[0];
    if warm_heap.events != warm_cal.events
        || warm_heap.sim_ms != warm_cal.sim_ms
        || h.comm_ms.mean != c.comm_ms.mean
        || h.exec_ms != c.exec_ms
        || h.latency_us.p99 != c.latency_us.p99
        || warm_heap.network.avg_local_stall_ms != warm_cal.network.avg_local_stall_ms
    {
        die("transfer smoke FAILED: warm-started backends diverged");
    }
    let (Some(lc), Some(lw)) = (&cold.learning, &warm_heap.learning) else {
        die("transfer smoke FAILED: Q-adaptive runs must carry a learning block");
    };
    let early_lat = |r: &RunReport| early_latency_us(&r.apps[0].latency_series, EARLY_WINDOWS);
    let (lat_cold, lat_warm) = (early_lat(&cold), early_lat(&warm_heap));
    println!(
        "transfer smoke: trained Halo3D pair ({} Q1 updates) | early latency cold {:.3} us vs \
         warm {:.3} us | stall cold {:.4} vs warm {:.4} ms/group | early |dQ1| cold {:.2} vs \
         warm {:.2} ns | warm bit-identical on heap/calendar ({} events)",
        trained.learning.as_ref().map_or(0, |l| l.updates),
        lat_cold,
        lat_warm,
        cold.network.avg_local_stall_ms,
        warm_heap.network.avg_local_stall_ms,
        lc.early_mean_ns(EARLY_WINDOWS),
        lw.early_mean_ns(EARLY_WINDOWS),
        warm_heap.events,
    );
    // The acceptance signal: warm-started routing avoids the cold run's
    // training transient — lower early-window latency and less head-of-line
    // blocking overall (the runs are deterministic, so these are stable).
    if lat_warm >= lat_cold {
        die("transfer smoke FAILED: warm start should reach steady-state latency earlier \
             (early-window latency not reduced)");
    }
    if warm_heap.network.avg_local_stall_ms >= cold.network.avg_local_stall_ms {
        die("transfer smoke FAILED: warm start should reduce head-of-line blocking");
    }
    std::process::exit(0)
}

fn main() {
    if smoke_flag() {
        smoke();
    }
    // Default scale 1/128: heavy enough that the contiguous pairs
    // congest their group-pair links and the cold-start transient is real.
    let mut defaults = ExperimentSpec { scale: 128.0, ..Default::default() };
    defaults.routings = vec![RoutingAlgo::QAdaptive];
    defaults.apps = vec![AppKind::Halo3D, AppKind::Stencil5D, AppKind::LQCD];
    let base = resolve_spec_env(defaults, &["TRAIN", "APPS", "SNAPSHOT"]);
    if base.qtable_load.is_some() || base.qtable_save.is_some() {
        die("transfer owns its Q-table lifecycle (--qtable is not accepted); pick the training \
             workload with TRAIN/--train and keep the snapshot with SNAPSHOT/--snapshot");
    }
    let train_kind = base.train;
    let evals = base.apps.clone();
    let (snap, keep) = match &base.snapshot {
        Some(p) => (p.clone(), true),
        None => (
            std::env::temp_dir().join(format!("dfsim_transfer_{}.qtable", std::process::id())),
            false,
        ),
    };

    eprintln!(
        "# transfer @ scale 1/{}, seed {}: train Q-adp on a contiguous {} pair, evaluate {} \
         workload pairs x (UGALg, Q-adp cold, Q-adp warm)",
        base.scale,
        base.seed,
        train_kind.name(),
        evals.len(),
    );
    let trained = train(&base, train_kind, base.seed, &snap);
    eprintln!(
        "# trained: {} ({}), {} Q1 updates, snapshot at {}",
        train_kind.name(),
        if trained.completed { "completed" } else { &trained.stop_reason },
        trained.learning.as_ref().map_or(0, |l| l.updates),
        snap.display(),
    );

    // Evaluation uses a shifted seed: warm-starting must help on *new*
    // traffic (different app randomness), not replay training.
    let eval_seed = base.seed + 1;
    let mut cells: Vec<(AppKind, Init)> = Vec::new();
    for &kind in &evals {
        for init in [Init::Ugal, Init::Cold, Init::Warm] {
            cells.push((kind, init));
        }
    }
    let results = parallel_map(cells, base.threads, |(kind, init)| {
        let r = run_pair(kind, &cell_spec(&base, init, eval_seed, &snap));
        (kind, init, r)
    });

    let mut t = TextTable::new(vec![
        "Workload",
        "Init",
        "comm (ms)",
        "exec (ms)",
        "early lat (us)",
        "stall (ms/grp)",
        "early |dQ1| (ns)",
        "late |dQ1| (ns)",
        "Q1 updates",
        "ok",
    ]);
    for (kind, init, r) in &results {
        let a = &r.apps[0];
        let [early_dq, late_dq, updates] = learning_cols(r.learning.as_ref());
        t.row(vec![
            kind.name().to_string(),
            init.label().to_string(),
            f(a.comm_ms.mean, 4),
            f(a.exec_ms, 4),
            f(early_latency_us(&a.latency_series, EARLY_WINDOWS), 3),
            f(r.network.avg_local_stall_ms, 4),
            early_dq,
            late_dq,
            updates,
            if r.completed { "y".into() } else { r.stop_reason.clone() },
        ]);
    }
    if csv_flag() {
        print!("{}", t.to_csv());
    } else {
        println!("{}", t.render());
        println!(
            "(warm rows load the {} snapshot; early = first {EARLY_WINDOWS} populated 1 µs \
             windows; a warm start should cut early latency/stall towards the steady-state \
             floor)",
            train_kind.name(),
        );
    }
    if !keep {
        let _ = std::fs::remove_file(&snap);
    }
    dfsim_bench::print_cache_summary(&base);
}
