//! Structural and timing parameters of a Dragonfly system.

use serde::{Deserialize, Serialize};

/// The four structural Dragonfly parameters, in the notation of Kim et al.
/// (`g` groups, `a` routers per group, `p` terminals per router, `h` global
/// channels per router).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DragonflyParams {
    /// Number of groups (`g`).
    pub groups: u32,
    /// Routers per group (`a`), fully connected by local links.
    pub routers_per_group: u32,
    /// Compute nodes per router (`p`).
    pub nodes_per_router: u32,
    /// Global channels per router (`h`).
    pub globals_per_router: u32,
}

/// Errors from validating [`DragonflyParams`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// A structural parameter was zero.
    ZeroParameter(&'static str),
    /// Too many groups for the available global channels: requires
    /// `groups − 1 ≤ a·h` so every group pair gets a dedicated global link.
    TooManyGroups {
        /// Requested number of groups.
        groups: u32,
        /// Available global channels per group (`a·h`).
        channels: u32,
    },
    /// The router radix would not fit in the `u8` port type.
    RadixTooLarge(u32),
}

impl std::fmt::Display for TopologyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TopologyError::ZeroParameter(p) => write!(f, "parameter {p} must be nonzero"),
            TopologyError::TooManyGroups { groups, channels } => write!(
                f,
                "{groups} groups need {} global channels per group but only {channels} exist \
                 (need groups-1 <= a*h)",
                groups - 1
            ),
            TopologyError::RadixTooLarge(r) => write!(f, "router radix {r} exceeds 255"),
        }
    }
}

impl std::error::Error for TopologyError {}

impl DragonflyParams {
    /// The paper's 1,056-node system: 33 groups × 8 routers × 4 nodes, 4
    /// global channels per router (§III).
    pub const fn paper_1056() -> Self {
        Self { groups: 33, routers_per_group: 8, nodes_per_router: 4, globals_per_router: 4 }
    }

    /// A small 72-node system (9 groups × 4 routers × 2 nodes, h=2) used by
    /// unit/integration tests where full scale is unnecessary.
    pub const fn tiny_72() -> Self {
        Self { groups: 9, routers_per_group: 4, nodes_per_router: 2, globals_per_router: 2 }
    }

    /// A "balanced" Dragonfly per Kim et al.: `a = 2p = 2h`, maximal
    /// group count `g = a·h + 1`.
    pub const fn balanced(h: u32) -> Self {
        Self {
            groups: 2 * h * h + 1,
            routers_per_group: 2 * h,
            nodes_per_router: h,
            globals_per_router: h,
        }
    }

    /// Validate structural constraints.
    pub fn validate(&self) -> Result<(), TopologyError> {
        if self.groups == 0 {
            return Err(TopologyError::ZeroParameter("groups"));
        }
        if self.routers_per_group == 0 {
            return Err(TopologyError::ZeroParameter("routers_per_group"));
        }
        if self.nodes_per_router == 0 {
            return Err(TopologyError::ZeroParameter("nodes_per_router"));
        }
        if self.globals_per_router == 0 {
            return Err(TopologyError::ZeroParameter("globals_per_router"));
        }
        let channels = self.routers_per_group * self.globals_per_router;
        if self.groups > channels + 1 {
            return Err(TopologyError::TooManyGroups { groups: self.groups, channels });
        }
        if self.radix() > 255 {
            return Err(TopologyError::RadixTooLarge(self.radix()));
        }
        Ok(())
    }

    /// Total number of compute nodes.
    #[inline]
    pub const fn num_nodes(&self) -> u32 {
        self.groups * self.routers_per_group * self.nodes_per_router
    }

    /// Total number of routers.
    #[inline]
    pub const fn num_routers(&self) -> u32 {
        self.groups * self.routers_per_group
    }

    /// Router radix: terminals + locals + globals.
    #[inline]
    pub const fn radix(&self) -> u32 {
        self.nodes_per_router + (self.routers_per_group - 1) + self.globals_per_router
    }

    /// First local port index (= `p`).
    #[inline]
    pub const fn first_local_port(&self) -> u32 {
        self.nodes_per_router
    }

    /// First global port index (= `p + a − 1`).
    #[inline]
    pub const fn first_global_port(&self) -> u32 {
        self.nodes_per_router + self.routers_per_group - 1
    }
}

/// Link bandwidth/latency configuration (paper §III: 200 Gb/s links, 30 ns
/// local and 300 ns global propagation — the 1:10 ratio of prior work; 128 B
/// flits, 512 B packets, 30-packet port buffers).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkTiming {
    /// Link bandwidth in Gb/s (all link classes; Slingshot-like 200).
    pub bandwidth_gbps: u64,
    /// Local-link propagation latency in picoseconds.
    pub local_latency_ps: u64,
    /// Global-link propagation latency in picoseconds.
    pub global_latency_ps: u64,
    /// Terminal (node↔router) propagation latency in picoseconds.
    pub terminal_latency_ps: u64,
    /// Flit size in bytes.
    pub flit_bytes: u32,
    /// Packet size in bytes (must be a multiple of the flit size).
    pub packet_bytes: u32,
    /// Input-buffer capacity per (port, VC) in packets.
    pub buffer_packets: u32,
}

impl Default for LinkTiming {
    fn default() -> Self {
        Self {
            bandwidth_gbps: 200,
            local_latency_ps: 30_000,
            global_latency_ps: 300_000,
            terminal_latency_ps: 30_000,
            flit_bytes: 128,
            packet_bytes: 512,
            buffer_packets: 30,
        }
    }
}

impl LinkTiming {
    /// Flits per full packet.
    #[inline]
    pub const fn flits_per_packet(&self) -> u32 {
        self.packet_bytes.div_ceil(self.flit_bytes)
    }

    /// Serialization time of `bytes` on one link, picoseconds.
    #[inline]
    pub const fn serialize(&self, bytes: u32) -> u64 {
        (bytes as u64 * 8 * 1000).div_ceil(self.bandwidth_gbps)
    }

    /// Serialization time of one full packet.
    #[inline]
    pub const fn packet_serialize(&self) -> u64 {
        self.serialize(self.packet_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_system_is_1056_nodes() {
        let p = DragonflyParams::paper_1056();
        p.validate().unwrap();
        assert_eq!(p.num_nodes(), 1056);
        assert_eq!(p.num_routers(), 264);
        assert_eq!(p.radix(), 15);
        // 32 global channels per group ↔ 32 other groups: exactly saturated.
        assert_eq!(p.routers_per_group * p.globals_per_router, p.groups - 1);
    }

    #[test]
    fn tiny_system_validates() {
        let p = DragonflyParams::tiny_72();
        p.validate().unwrap();
        assert_eq!(p.num_nodes(), 72);
        assert_eq!(p.radix(), 2 + 3 + 2);
    }

    #[test]
    fn balanced_maximal_dragonfly() {
        let p = DragonflyParams::balanced(4);
        p.validate().unwrap();
        assert_eq!(p.groups, 33);
        assert_eq!(p, DragonflyParams::paper_1056());
    }

    #[test]
    fn rejects_zero_parameters() {
        let mut p = DragonflyParams::paper_1056();
        p.nodes_per_router = 0;
        assert_eq!(p.validate(), Err(TopologyError::ZeroParameter("nodes_per_router")));
    }

    #[test]
    fn rejects_too_many_groups() {
        let p = DragonflyParams {
            groups: 10,
            routers_per_group: 2,
            nodes_per_router: 1,
            globals_per_router: 2,
        };
        assert_eq!(p.validate(), Err(TopologyError::TooManyGroups { groups: 10, channels: 4 }));
    }

    #[test]
    fn port_layout_offsets() {
        let p = DragonflyParams::paper_1056();
        assert_eq!(p.first_local_port(), 4);
        assert_eq!(p.first_global_port(), 11);
    }

    #[test]
    fn default_timing_matches_paper() {
        let t = LinkTiming::default();
        assert_eq!(t.flits_per_packet(), 4);
        assert_eq!(t.serialize(128), 5_120);
        assert_eq!(t.packet_serialize(), 20_480);
        // local:global latency ratio is 1:10.
        assert_eq!(t.global_latency_ps / t.local_latency_ps, 10);
    }
}
