//! Strongly typed identifiers.
//!
//! All identifiers are thin `u32`/`u8` newtypes so they stay `Copy` and
//! hash/compare as integers (hot-path friendly), while the type system keeps
//! node, router, group and port spaces from being mixed up.

use serde::{Deserialize, Serialize};

/// A compute node (endpoint). Nodes are numbered consecutively:
/// `node = router * nodes_per_router + terminal_index`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

/// A router. Routers are numbered consecutively:
/// `router = group * routers_per_group + local_index`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RouterId(pub u32);

/// A group of routers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct GroupId(pub u32);

/// A router port index. Ports are laid out as
/// `[terminals | locals | globals]` (see [`crate::topo::Topology`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Port(pub u8);

impl NodeId {
    /// Raw index as usize (for array indexing).
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl RouterId {
    /// Raw index as usize (for array indexing).
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl GroupId {
    /// Raw index as usize (for array indexing).
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl Port {
    /// Raw index as usize (for array indexing).
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}
impl std::fmt::Display for RouterId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "r{}", self.0)
    }
}
impl std::fmt::Display for GroupId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "G{}", self.0)
    }
}
impl std::fmt::Display for Port {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Classification of a router port / link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LinkKind {
    /// Router ↔ compute node.
    Terminal,
    /// Router ↔ router within one group.
    Local,
    /// Router ↔ router across groups.
    Global,
}

impl std::fmt::Display for LinkKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinkKind::Terminal => write!(f, "terminal"),
            LinkKind::Local => write!(f, "local"),
            LinkKind::Global => write!(f, "global"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(NodeId(3).to_string(), "n3");
        assert_eq!(RouterId(7).to_string(), "r7");
        assert_eq!(GroupId(0).to_string(), "G0");
        assert_eq!(Port(14).to_string(), "p14");
        assert_eq!(LinkKind::Global.to_string(), "global");
    }

    #[test]
    fn ids_are_ordered_by_raw_value() {
        assert!(NodeId(1) < NodeId(2));
        assert!(Port(0) < Port(14));
    }
}
