//! Minimal and non-minimal (Valiant) path plans.
//!
//! A packet's route is described by a [`PathPlan`] chosen at injection (and
//! possibly revised by PAR/Q-adaptive inside the source group) plus a
//! progress flag. Given the plan, the next output port at every router is a
//! pure function of the topology — [`RouteProgress::next_port`] — which the
//! network crate calls per hop. The same function powers the path property
//! tests (bounded hop counts, VC monotonicity).

use crate::ids::{GroupId, NodeId, Port, RouterId};
use crate::topo::{Endpoint, Topology};

/// How a packet intends to reach its destination.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathPlan {
    /// The unique minimal path (≤3 router hops).
    Minimal,
    /// Valiant via an intermediate *group*; minimal inside it (UGALg-style).
    NonMinimalGroup {
        /// Intermediate group (≠ source group, ≠ destination group).
        via: GroupId,
    },
    /// Valiant via a specific intermediate *router* (UGALn-style: avoids
    /// local congestion in the intermediate group by first visiting a random
    /// router there).
    NonMinimalRouter {
        /// Intermediate router to visit before heading to the destination.
        via: RouterId,
    },
}

impl PathPlan {
    /// Whether this plan is non-minimal.
    #[inline]
    pub fn is_nonminimal(&self) -> bool {
        !matches!(self, PathPlan::Minimal)
    }
}

/// One traversed channel: the router we were at and the output port taken.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hop {
    /// Router the packet departed from.
    pub router: RouterId,
    /// Output port taken.
    pub port: Port,
}

/// A plan plus progress (has the Valiant via-point been reached?).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteProgress {
    /// The (possibly revised) path plan.
    pub plan: PathPlan,
    /// Set once the intermediate group/router has been visited.
    pub via_done: bool,
}

impl RouteProgress {
    /// Fresh progress for a plan.
    pub fn new(plan: PathPlan) -> Self {
        Self { plan, via_done: false }
    }

    /// The output port to take at `current`, updating progress. The caller
    /// guarantees `current` is not the destination node's router *or* the
    /// port returned is that router's terminal port.
    pub fn next_port(&mut self, topo: &Topology, current: RouterId, dst: NodeId) -> Port {
        match self.plan {
            PathPlan::Minimal => topo.min_next_port(current, dst),
            PathPlan::NonMinimalGroup { via } => {
                if !self.via_done {
                    let here = topo.group_of_router(current);
                    if here == via || here == topo.group_of_node(dst) {
                        // Reached the intermediate group (or the destination
                        // group early): continue minimally.
                        self.via_done = true;
                        return topo.min_next_port(current, dst);
                    }
                    return port_toward_group(topo, current, via);
                }
                topo.min_next_port(current, dst)
            }
            PathPlan::NonMinimalRouter { via } => {
                if !self.via_done {
                    if current == via || topo.group_of_router(current) == topo.group_of_node(dst) {
                        self.via_done = true;
                        return topo.min_next_port(current, dst);
                    }
                    return port_toward_router(topo, current, via);
                }
                topo.min_next_port(current, dst)
            }
        }
    }
}

/// Next port from `current` minimally towards any router of `target` group
/// (`target` ≠ current group).
pub fn port_toward_group(topo: &Topology, current: RouterId, target: GroupId) -> Port {
    let here = topo.group_of_router(current);
    debug_assert_ne!(here, target);
    let (gw, gw_port) = topo.gateway(here, target).expect("distinct groups");
    if gw == current {
        gw_port
    } else {
        topo.local_port(current, gw).expect("gateway within my group")
    }
}

/// Next port from `current` minimally towards `target` router
/// (`target` ≠ `current`).
pub fn port_toward_router(topo: &Topology, current: RouterId, target: RouterId) -> Port {
    debug_assert_ne!(current, target);
    let here = topo.group_of_router(current);
    let there = topo.group_of_router(target);
    if here == there {
        topo.local_port(current, target).expect("same-group peer")
    } else {
        port_toward_group(topo, current, there)
    }
}

/// Walk a full path from `src` to `dst` under `plan`, returning every
/// traversed channel. Used by tests and the path benchmarks; the live
/// simulator routes hop-by-hop instead.
pub fn walk(topo: &Topology, src: NodeId, dst: NodeId, plan: PathPlan) -> Vec<Hop> {
    let mut hops = Vec::with_capacity(8);
    let mut progress = RouteProgress::new(plan);
    let mut current = topo.router_of_node(src);
    loop {
        let port = progress.next_port(topo, current, dst);
        hops.push(Hop { router: current, port });
        match topo.endpoint(current, port).expect("routed onto a connected port") {
            Endpoint::Node(n) => {
                debug_assert_eq!(n, dst);
                return hops;
            }
            Endpoint::Router { router, .. } => {
                current = router;
                assert!(hops.len() <= 8, "path exceeded hop bound: {hops:?}");
            }
        }
    }
}

/// Upper bound on router-to-router hops for any legal plan (see the VC
/// sizing argument in `DESIGN.md` §2: l,g,l,l,g,l plus the terminal hop).
pub const MAX_ROUTER_HOPS: usize = 6;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::DragonflyParams;
    use crate::LinkKind;

    fn paper() -> Topology {
        Topology::new(DragonflyParams::paper_1056()).unwrap()
    }

    /// Router-to-router hops of a walk (excludes the final terminal hop).
    fn router_hops(topo: &Topology, hops: &[Hop]) -> usize {
        hops.iter().filter(|h| topo.port_kind(h.port) != LinkKind::Terminal).count()
    }

    #[test]
    fn minimal_walk_is_at_most_three_router_hops() {
        let t = paper();
        for (s, d) in [(0u32, 1055u32), (0, 4), (0, 1), (17, 930), (500, 501)] {
            let hops = walk(&t, NodeId(s), NodeId(d), PathPlan::Minimal);
            assert!(router_hops(&t, &hops) <= 3, "{s}->{d}: {hops:?}");
            // Last hop is always the terminal ejection.
            let last = hops.last().unwrap();
            assert_eq!(t.port_kind(last.port), LinkKind::Terminal);
        }
    }

    #[test]
    fn same_router_pair_is_terminal_only() {
        let t = paper();
        let hops = walk(&t, NodeId(0), NodeId(1), PathPlan::Minimal);
        assert_eq!(hops.len(), 1);
        assert_eq!(t.port_kind(hops[0].port), LinkKind::Terminal);
    }

    #[test]
    fn nonminimal_group_passes_through_via() {
        let t = paper();
        let src = NodeId(0); // group 0
        let dst = NodeId(1000); // group 31
        let via = GroupId(12);
        let hops = walk(&t, src, dst, PathPlan::NonMinimalGroup { via });
        let visited: Vec<GroupId> = hops.iter().map(|h| t.group_of_router(h.router)).collect();
        assert!(visited.contains(&via), "path never entered via group: {visited:?}");
        assert!(router_hops(&t, &hops) <= MAX_ROUTER_HOPS);
    }

    #[test]
    fn nonminimal_router_visits_exact_router() {
        let t = paper();
        let src = NodeId(0);
        let dst = NodeId(1000);
        let via = RouterId(100); // group 12, local index 4
        let hops = walk(&t, src, dst, PathPlan::NonMinimalRouter { via });
        assert!(hops.iter().any(|h| h.router == via), "never visited {via}: {hops:?}");
        assert!(router_hops(&t, &hops) <= MAX_ROUTER_HOPS);
    }

    #[test]
    fn nonminimal_to_same_group_degrades_gracefully() {
        // via group == destination group: plan should settle minimally.
        let t = paper();
        let src = NodeId(0);
        let dst = NodeId(1000);
        let via = t.group_of_node(dst);
        let hops = walk(&t, src, dst, PathPlan::NonMinimalGroup { via });
        assert!(router_hops(&t, &hops) <= 3 + 1);
    }

    #[test]
    fn via_done_flips_once() {
        let t = paper();
        let mut p = RouteProgress::new(PathPlan::NonMinimalGroup { via: GroupId(5) });
        assert!(!p.via_done);
        // Standing inside the via group → flips and routes minimally.
        let r_in_via = t.router_in_group(GroupId(5), 0);
        let _ = p.next_port(&t, r_in_via, NodeId(900));
        assert!(p.via_done);
    }
}
