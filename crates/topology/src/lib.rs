//! Dragonfly topology model (the Merlin-topology substitute, paper §II-A/§III).
//!
//! The paper studies a 1,056-node Dragonfly: 33 groups × 8 routers × 4 nodes,
//! fully connected intra-group (7 local ports per router) and inter-group
//! (32 global links per group — exactly one global link between every pair of
//! groups; 4 global ports per router). This crate models arbitrary
//! `(g, a, p, h)` Dragonflies with that fully-connected structure:
//!
//! * [`params::DragonflyParams`] — the four structural parameters plus link
//!   bandwidth/latency constants,
//! * [`ids`] — strongly typed node/router/group/port identifiers,
//! * [`topo::Topology`] — port maps, link endpoints and the global-link
//!   arrangement,
//! * [`paths`] — minimal and non-minimal (Valiant) path enumeration used by
//!   the routing algorithms and by the property tests.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod ids;
pub mod params;
pub mod paths;
pub mod topo;

pub use ids::{GroupId, LinkKind, NodeId, Port, RouterId};
pub use params::{DragonflyParams, LinkTiming, TopologyError};
pub use paths::{Hop, PathPlan};
pub use topo::{Endpoint, Topology};
