//! The [`Topology`] object: port maps and link endpoints.
//!
//! Port layout on every router (radix `p + (a−1) + h`):
//!
//! ```text
//! [0, p)              terminal ports, one per attached node
//! [p, p+a−1)          local ports, ordered by peer local index (self skipped)
//! [p+a−1, radix)      global ports
//! ```
//!
//! Global-link arrangement ("relative" / consecutive scheme): within group
//! `i`, global channel `c ∈ [0, a·h)` — channel `c` lives on router with
//! local index `c / h`, global port `c % h` — connects to group
//! `j = (i + c + 1) mod g`. The reverse direction uses group `j`'s channel
//! `(i − j − 1) mod g`, so the pairing is symmetric and every group pair
//! shares exactly one bidirectional global link when `g = a·h + 1`
//! (the paper's configuration).

use crate::ids::{GroupId, LinkKind, NodeId, Port, RouterId};
use crate::params::{DragonflyParams, TopologyError};

/// What is attached at the far side of a router port.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Endpoint {
    /// A compute node (terminal port).
    Node(NodeId),
    /// Another router, entered through `port` on that router.
    Router {
        /// Peer router.
        router: RouterId,
        /// The peer's port for this same link (for credit return).
        port: Port,
    },
}

/// An immutable, validated Dragonfly topology.
#[derive(Debug, Clone)]
pub struct Topology {
    params: DragonflyParams,
}

impl Topology {
    /// Build and validate a topology.
    pub fn new(params: DragonflyParams) -> Result<Self, TopologyError> {
        params.validate()?;
        Ok(Self { params })
    }

    /// The structural parameters.
    #[inline]
    pub fn params(&self) -> &DragonflyParams {
        &self.params
    }

    /// Total nodes.
    #[inline]
    pub fn num_nodes(&self) -> u32 {
        self.params.num_nodes()
    }

    /// Total routers.
    #[inline]
    pub fn num_routers(&self) -> u32 {
        self.params.num_routers()
    }

    /// Total groups.
    #[inline]
    pub fn num_groups(&self) -> u32 {
        self.params.groups
    }

    /// Router radix.
    #[inline]
    pub fn radix(&self) -> u8 {
        self.params.radix() as u8
    }

    // ---- structural maps -------------------------------------------------

    /// The router a node is attached to.
    #[inline]
    pub fn router_of_node(&self, n: NodeId) -> RouterId {
        RouterId(n.0 / self.params.nodes_per_router)
    }

    /// The group a router belongs to.
    #[inline]
    pub fn group_of_router(&self, r: RouterId) -> GroupId {
        GroupId(r.0 / self.params.routers_per_group)
    }

    /// The group a node belongs to.
    #[inline]
    pub fn group_of_node(&self, n: NodeId) -> GroupId {
        self.group_of_router(self.router_of_node(n))
    }

    /// A router's index within its group.
    #[inline]
    pub fn local_index(&self, r: RouterId) -> u32 {
        r.0 % self.params.routers_per_group
    }

    /// Router from `(group, local index)`.
    #[inline]
    pub fn router_in_group(&self, g: GroupId, local_idx: u32) -> RouterId {
        debug_assert!(local_idx < self.params.routers_per_group);
        RouterId(g.0 * self.params.routers_per_group + local_idx)
    }

    /// The nodes attached to a router.
    pub fn nodes_of_router(&self, r: RouterId) -> impl Iterator<Item = NodeId> {
        let p = self.params.nodes_per_router;
        (r.0 * p..(r.0 + 1) * p).map(NodeId)
    }

    /// The routers of a group.
    pub fn routers_of_group(&self, g: GroupId) -> impl Iterator<Item = RouterId> {
        let a = self.params.routers_per_group;
        (g.0 * a..(g.0 + 1) * a).map(RouterId)
    }

    // ---- port classification ---------------------------------------------

    /// Classify a port.
    #[inline]
    pub fn port_kind(&self, port: Port) -> LinkKind {
        let p = port.0 as u32;
        if p < self.params.first_local_port() {
            LinkKind::Terminal
        } else if p < self.params.first_global_port() {
            LinkKind::Local
        } else {
            LinkKind::Global
        }
    }

    /// Terminal port of `node` on its own router.
    #[inline]
    pub fn terminal_port(&self, n: NodeId) -> Port {
        Port((n.0 % self.params.nodes_per_router) as u8)
    }

    /// The local port on `from` that reaches `to` (same group, `from ≠ to`).
    pub fn local_port(&self, from: RouterId, to: RouterId) -> Option<Port> {
        if from == to || self.group_of_router(from) != self.group_of_router(to) {
            return None;
        }
        let me = self.local_index(from);
        let peer = self.local_index(to);
        let slot = if peer < me { peer } else { peer - 1 };
        Some(Port((self.params.first_local_port() + slot) as u8))
    }

    /// The global channel index `c ∈ [0, a·h)` of a router's global port.
    #[inline]
    fn global_channel(&self, r: RouterId, port: Port) -> u32 {
        debug_assert_eq!(self.port_kind(port), LinkKind::Global);
        self.local_index(r) * self.params.globals_per_router
            + (port.0 as u32 - self.params.first_global_port())
    }

    /// The destination group of a global port, or `None` if the port is
    /// unused (only possible when `g < a·h + 1`).
    pub fn global_port_target(&self, r: RouterId, port: Port) -> Option<GroupId> {
        let c = self.global_channel(r, port);
        if c >= self.params.groups - 1 {
            return None;
        }
        let g = self.group_of_router(r).0;
        Some(GroupId((g + c + 1) % self.params.groups))
    }

    /// The `(router, global port)` in `src` group owning the single global
    /// link towards `dst` group (`src ≠ dst`).
    pub fn gateway(&self, src: GroupId, dst: GroupId) -> Option<(RouterId, Port)> {
        if src == dst || src.0 >= self.params.groups || dst.0 >= self.params.groups {
            return None;
        }
        let g = self.params.groups;
        let c = (dst.0 + g - src.0 - 1) % g; // (dst - src - 1) mod g
        debug_assert!(c < g - 1);
        let h = self.params.globals_per_router;
        let router = self.router_in_group(src, c / h);
        let port = Port((self.params.first_global_port() + c % h) as u8);
        Some((router, port))
    }

    /// What is attached at the far end of `(router, port)`. `None` for a
    /// disconnected global port.
    pub fn endpoint(&self, r: RouterId, port: Port) -> Option<Endpoint> {
        match self.port_kind(port) {
            LinkKind::Terminal => {
                let n = NodeId(r.0 * self.params.nodes_per_router + port.0 as u32);
                Some(Endpoint::Node(n))
            }
            LinkKind::Local => {
                let me = self.local_index(r);
                let slot = port.0 as u32 - self.params.first_local_port();
                let peer_idx = if slot < me { slot } else { slot + 1 };
                let peer = self.router_in_group(self.group_of_router(r), peer_idx);
                let back = self.local_port(peer, r).expect("local links are symmetric");
                Some(Endpoint::Router { router: peer, port: back })
            }
            LinkKind::Global => {
                let dst_group = self.global_port_target(r, port)?;
                let (peer, back) =
                    self.gateway(dst_group, self.group_of_router(r)).expect("reverse gateway");
                Some(Endpoint::Router { router: peer, port: back })
            }
        }
    }

    // ---- minimal routing -------------------------------------------------

    /// The next port along the (unique) minimal path from `current` towards
    /// `dst_node`. Returns the terminal port when `dst_node` hangs off
    /// `current`.
    pub fn min_next_port(&self, current: RouterId, dst_node: NodeId) -> Port {
        let dst_router = self.router_of_node(dst_node);
        if dst_router == current {
            return self.terminal_port(dst_node);
        }
        let my_group = self.group_of_router(current);
        let dst_group = self.group_of_router(dst_router);
        if my_group == dst_group {
            return self.local_port(current, dst_router).expect("same-group local link");
        }
        let (gw, gw_port) = self.gateway(my_group, dst_group).expect("distinct groups");
        if gw == current {
            gw_port
        } else {
            self.local_port(current, gw).expect("gateway is in my group")
        }
    }

    /// Number of router-to-router hops on the minimal path between two
    /// routers (0, 1, 2 or 3).
    pub fn min_router_hops(&self, from: RouterId, to: RouterId) -> u8 {
        if from == to {
            return 0;
        }
        let gf = self.group_of_router(from);
        let gt = self.group_of_router(to);
        if gf == gt {
            return 1;
        }
        let (gw_src, _) = self.gateway(gf, gt).expect("distinct groups");
        let (gw_dst, _) = self.gateway(gt, gf).expect("distinct groups");
        let mut hops = 1; // the global hop
        if gw_src != from {
            hops += 1;
        }
        if gw_dst != to {
            hops += 1;
        }
        hops
    }

    /// All connected ports of a router, with endpoints.
    pub fn ports(&self, r: RouterId) -> impl Iterator<Item = (Port, Endpoint)> + '_ {
        (0..self.radix()).filter_map(move |p| {
            let port = Port(p);
            self.endpoint(r, port).map(|e| (port, e))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper() -> Topology {
        Topology::new(DragonflyParams::paper_1056()).unwrap()
    }

    fn tiny() -> Topology {
        Topology::new(DragonflyParams::tiny_72()).unwrap()
    }

    #[test]
    fn node_router_group_maps() {
        let t = paper();
        assert_eq!(t.router_of_node(NodeId(0)), RouterId(0));
        assert_eq!(t.router_of_node(NodeId(5)), RouterId(1));
        assert_eq!(t.group_of_router(RouterId(7)), GroupId(0));
        assert_eq!(t.group_of_router(RouterId(8)), GroupId(1));
        assert_eq!(t.group_of_node(NodeId(1055)), GroupId(32));
        assert_eq!(t.local_index(RouterId(13)), 5);
    }

    #[test]
    fn port_kinds_partition_radix() {
        let t = paper();
        let mut terminals = 0;
        let mut locals = 0;
        let mut globals = 0;
        for p in 0..t.radix() {
            match t.port_kind(Port(p)) {
                LinkKind::Terminal => terminals += 1,
                LinkKind::Local => locals += 1,
                LinkKind::Global => globals += 1,
            }
        }
        assert_eq!((terminals, locals, globals), (4, 7, 4));
    }

    #[test]
    fn local_ports_skip_self_and_are_symmetric() {
        let t = paper();
        for a in 0..8u32 {
            for b in 0..8u32 {
                let ra = RouterId(a);
                let rb = RouterId(b);
                if a == b {
                    assert_eq!(t.local_port(ra, rb), None);
                    continue;
                }
                let pab = t.local_port(ra, rb).unwrap();
                match t.endpoint(ra, pab).unwrap() {
                    Endpoint::Router { router, port } => {
                        assert_eq!(router, rb);
                        assert_eq!(
                            t.endpoint(rb, port).unwrap(),
                            Endpoint::Router { router: ra, port: pab }
                        );
                    }
                    other => panic!("expected router endpoint, got {other:?}"),
                }
            }
        }
    }

    #[test]
    fn every_group_pair_has_exactly_one_global_link() {
        let t = paper();
        let g = t.num_groups();
        for i in 0..g {
            for j in 0..g {
                if i == j {
                    assert_eq!(t.gateway(GroupId(i), GroupId(j)), None);
                    continue;
                }
                let (r, p) = t.gateway(GroupId(i), GroupId(j)).unwrap();
                assert_eq!(t.group_of_router(r), GroupId(i));
                assert_eq!(t.global_port_target(r, p), Some(GroupId(j)));
            }
        }
    }

    #[test]
    fn global_links_are_symmetric() {
        let t = paper();
        for i in 0..t.num_groups() {
            for j in 0..t.num_groups() {
                if i == j {
                    continue;
                }
                let (r, p) = t.gateway(GroupId(i), GroupId(j)).unwrap();
                let Endpoint::Router { router, port } = t.endpoint(r, p).unwrap() else {
                    panic!("global port must face a router");
                };
                assert_eq!(t.group_of_router(router), GroupId(j));
                assert_eq!(
                    t.endpoint(router, port).unwrap(),
                    Endpoint::Router { router: r, port: p }
                );
            }
        }
    }

    #[test]
    fn paper_system_has_no_unused_global_ports() {
        let t = paper();
        for r in 0..t.num_routers() {
            for p in 11..15u8 {
                assert!(t.global_port_target(RouterId(r), Port(p)).is_some());
            }
        }
    }

    #[test]
    fn terminal_endpoints_round_trip() {
        let t = tiny();
        for n in 0..t.num_nodes() {
            let node = NodeId(n);
            let r = t.router_of_node(node);
            let p = t.terminal_port(node);
            assert_eq!(t.endpoint(r, p), Some(Endpoint::Node(node)));
        }
    }

    #[test]
    fn min_next_port_walks_at_most_three_router_hops() {
        let t = paper();
        // Farthest case: src not gateway, dst not gateway. Node 0 sits on
        // router 0 of group 0.
        let src = NodeId(0);
        // Choose dst in group 16 whose router is not the gateway.
        let dst_group = GroupId(16);
        let (gw_src, _) = t.gateway(GroupId(0), dst_group).unwrap();
        assert_ne!(gw_src, RouterId(0), "pick a case where a local hop is needed");
        let (gw_dst, _) = t.gateway(dst_group, GroupId(0)).unwrap();
        // dst router: some router in group 16 that is not gw_dst.
        let dst_router = t.routers_of_group(dst_group).find(|&r| r != gw_dst).unwrap();
        let dst = t.nodes_of_router(dst_router).next().unwrap();

        let mut current = t.router_of_node(src);
        let mut hops = 0;
        loop {
            let port = t.min_next_port(current, dst);
            match t.endpoint(current, port).unwrap() {
                Endpoint::Node(n) => {
                    assert_eq!(n, dst);
                    break;
                }
                Endpoint::Router { router, .. } => {
                    current = router;
                    hops += 1;
                    assert!(hops <= 3, "minimal path exceeded 3 router hops");
                }
            }
        }
        assert_eq!(hops, 3);
        assert_eq!(t.min_router_hops(t.router_of_node(src), dst_router), 3);
    }

    #[test]
    fn min_router_hops_cases() {
        let t = paper();
        assert_eq!(t.min_router_hops(RouterId(0), RouterId(0)), 0);
        assert_eq!(t.min_router_hops(RouterId(0), RouterId(5)), 1);
        // Gateway-to-gateway across groups is exactly 1 hop.
        let (gw01, _) = t.gateway(GroupId(0), GroupId(1)).unwrap();
        let (gw10, _) = t.gateway(GroupId(1), GroupId(0)).unwrap();
        assert_eq!(t.min_router_hops(gw01, gw10), 1);
    }

    #[test]
    fn ports_enumerates_full_radix_for_paper_system() {
        let t = paper();
        assert_eq!(t.ports(RouterId(100)).count(), 15);
    }
}
