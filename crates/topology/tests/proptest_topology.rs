//! Property tests over arbitrary valid (g, a, p, h) Dragonflies: wiring
//! bijectivity, link symmetry, and path-plan hop bounds.

use dfsim_topology::paths::{walk, PathPlan, MAX_ROUTER_HOPS};
use dfsim_topology::{DragonflyParams, Endpoint, GroupId, LinkKind, NodeId, RouterId, Topology};
use proptest::prelude::*;

/// Strategy: valid structural parameters, kept small enough to enumerate.
fn params() -> impl Strategy<Value = DragonflyParams> {
    (2u32..12, 2u32..6, 1u32..4, 1u32..4)
        .prop_map(|(groups, a, p, h)| DragonflyParams {
            groups,
            routers_per_group: a,
            nodes_per_router: p,
            globals_per_router: h,
        })
        .prop_filter("connectivity", |p| p.validate().is_ok())
}

proptest! {
    /// Every connected port pair is symmetric: the far end of my far end is
    /// me, on the same port I started from.
    #[test]
    fn links_are_involutions(params in params()) {
        let t = Topology::new(params).unwrap();
        for r in 0..t.num_routers() {
            let r = RouterId(r);
            for (port, ep) in t.ports(r) {
                match ep {
                    Endpoint::Node(n) => {
                        prop_assert_eq!(t.router_of_node(n), r);
                        prop_assert_eq!(t.terminal_port(n), port);
                    }
                    Endpoint::Router { router, port: back } => {
                        prop_assert_ne!(router, r);
                        let Some(Endpoint::Router { router: r2, port: p2 }) =
                            t.endpoint(router, back) else {
                            return Err(TestCaseError::fail("dangling reverse link"));
                        };
                        prop_assert_eq!(r2, r);
                        prop_assert_eq!(p2, port);
                    }
                }
            }
        }
    }

    /// Gateways exist for every ordered group pair and carry the link to the
    /// claimed destination group.
    #[test]
    fn gateways_cover_all_group_pairs(params in params()) {
        let t = Topology::new(params).unwrap();
        for i in 0..t.num_groups() {
            for j in 0..t.num_groups() {
                if i == j { continue; }
                let (r, p) = t.gateway(GroupId(i), GroupId(j)).expect("gateway exists");
                prop_assert_eq!(t.group_of_router(r), GroupId(i));
                prop_assert_eq!(t.global_port_target(r, p), Some(GroupId(j)));
                prop_assert_eq!(t.port_kind(p), LinkKind::Global);
            }
        }
    }

    /// Each group's used global channels hit every other group exactly once.
    #[test]
    fn global_channels_are_a_bijection(params in params()) {
        let t = Topology::new(params).unwrap();
        for g in 0..t.num_groups() {
            let mut seen = vec![0u32; t.num_groups() as usize];
            for r in t.routers_of_group(GroupId(g)) {
                for (port, _) in t.ports(r) {
                    if t.port_kind(port) == LinkKind::Global {
                        if let Some(dst) = t.global_port_target(r, port) {
                            seen[dst.idx()] += 1;
                        }
                    }
                }
            }
            for (dst, count) in seen.iter().enumerate() {
                if dst as u32 == g {
                    prop_assert_eq!(*count, 0, "self-link in group {}", g);
                } else {
                    prop_assert_eq!(*count, 1, "group {} -> {}: {} links", g, dst, count);
                }
            }
        }
    }

    /// Minimal paths terminate within 3 router hops for every node pair of a
    /// random sample, and the hop count matches `min_router_hops`.
    #[test]
    fn minimal_paths_are_short(params in params(), seed in 0u64..1_000) {
        let t = Topology::new(params).unwrap();
        let n = t.num_nodes() as u64;
        let src = NodeId(((seed * 7919) % n) as u32);
        let dst = NodeId(((seed * 104_729 + 13) % n) as u32);
        let hops = walk(&t, src, dst, PathPlan::Minimal);
        let router_hops = hops
            .iter()
            .filter(|h| t.port_kind(h.port) != LinkKind::Terminal)
            .count();
        prop_assert!(router_hops <= 3);
        prop_assert_eq!(
            router_hops as u8,
            t.min_router_hops(t.router_of_node(src), t.router_of_node(dst))
        );
    }

    /// Non-minimal plans stay within the VC-sized hop bound and actually
    /// visit the requested via point when it is distinct from both ends.
    #[test]
    fn nonminimal_paths_bounded(params in params(), seed in 0u64..1_000) {
        let t = Topology::new(params).unwrap();
        let n = t.num_nodes() as u64;
        let src = NodeId(((seed * 31) % n) as u32);
        let dst = NodeId(((seed * 37 + 5) % n) as u32);
        let via_g = GroupId(((seed * 41 + 3) % t.num_groups() as u64) as u32);
        let hops = walk(&t, src, dst, PathPlan::NonMinimalGroup { via: via_g });
        let rh = hops.iter().filter(|h| t.port_kind(h.port) != LinkKind::Terminal).count();
        prop_assert!(rh <= MAX_ROUTER_HOPS, "{} hops", rh);

        let via_r = RouterId(((seed * 43 + 7) % t.num_routers() as u64) as u32);
        let hops = walk(&t, src, dst, PathPlan::NonMinimalRouter { via: via_r });
        let rh = hops.iter().filter(|h| t.port_kind(h.port) != LinkKind::Terminal).count();
        prop_assert!(rh <= MAX_ROUTER_HOPS, "{} hops", rh);
        // The via router is only guaranteed to be visited when the detour is
        // not short-circuited: distinct src/dst groups and a via outside both.
        if t.group_of_node(src) != t.group_of_node(dst)
            && t.group_of_router(via_r) != t.group_of_node(src)
            && t.group_of_router(via_r) != t.group_of_node(dst)
        {
            prop_assert!(hops.iter().any(|h| h.router == via_r));
        }
    }

    /// Minimal hop counts form a metric-like structure: symmetric, zero
    /// exactly on the diagonal, and bounded by the Dragonfly diameter 3.
    #[test]
    fn min_router_hops_symmetric_and_bounded(params in params(), seed in 0u64..1_000) {
        let t = Topology::new(params).unwrap();
        let n = t.num_routers() as u64;
        let a = RouterId(((seed * 53) % n) as u32);
        let b = RouterId(((seed * 59 + 11) % n) as u32);
        let ab = t.min_router_hops(a, b);
        let ba = t.min_router_hops(b, a);
        prop_assert_eq!(ab, ba, "asymmetric hop metric {} vs {}", a.0, b.0);
        prop_assert!(ab <= 3);
        prop_assert_eq!(ab == 0, a == b, "zero hops iff same router");
    }

    /// Every walk, under every plan, terminates in a *connected* path: each
    /// hop's far end is the next hop's router, the last hop ejects at the
    /// destination terminal, and the minimal plan never revisits a router.
    #[test]
    fn walks_are_connected_and_terminate(params in params(), seed in 0u64..1_000) {
        let t = Topology::new(params).unwrap();
        let n = t.num_nodes() as u64;
        let src = NodeId(((seed * 61) % n) as u32);
        let dst = NodeId(((seed * 67 + 3) % n) as u32);
        let via_g = GroupId(((seed * 71 + 1) % t.num_groups() as u64) as u32);
        let via_r = RouterId(((seed * 73 + 2) % t.num_routers() as u64) as u32);
        let plans = [
            PathPlan::Minimal,
            PathPlan::NonMinimalGroup { via: via_g },
            PathPlan::NonMinimalRouter { via: via_r },
        ];
        for plan in plans {
            let hops = walk(&t, src, dst, plan);
            prop_assert!(!hops.is_empty());
            prop_assert_eq!(hops[0].router, t.router_of_node(src));
            for w in hops.windows(2) {
                let Some(Endpoint::Router { router, .. }) = t.endpoint(w[0].router, w[0].port)
                else {
                    return Err(TestCaseError::fail("mid-path hop not router-to-router"));
                };
                prop_assert_eq!(router, w[1].router, "disconnected path under {:?}", plan);
            }
            let last = hops.last().unwrap();
            prop_assert_eq!(last.router, t.router_of_node(dst));
            prop_assert_eq!(t.endpoint(last.router, last.port), Some(Endpoint::Node(dst)));
            if plan == PathPlan::Minimal {
                let mut routers: Vec<u32> = hops.iter().map(|h| h.router.0).collect();
                routers.sort_unstable();
                routers.dedup();
                prop_assert_eq!(routers.len(), hops.len(), "minimal path revisited a router");
            }
        }
    }

    /// Node/router/group id mappings agree with each other for every node.
    #[test]
    fn node_router_group_mappings_agree(params in params()) {
        let t = Topology::new(params).unwrap();
        for n in 0..t.num_nodes() {
            let node = NodeId(n);
            let r = t.router_of_node(node);
            prop_assert_eq!(t.group_of_node(node), t.group_of_router(r));
            // The terminal port walks back to the node.
            let p = t.terminal_port(node);
            prop_assert_eq!(t.endpoint(r, p), Some(Endpoint::Node(node)));
            prop_assert_eq!(t.port_kind(p), LinkKind::Terminal);
        }
    }

    /// `min_next_port` always returns a connected port that makes progress
    /// (the walk from any router terminates).
    #[test]
    fn min_next_port_always_progresses(params in params(), seed in 0u64..500) {
        let t = Topology::new(params).unwrap();
        let n = t.num_nodes() as u64;
        let dst = NodeId(((seed * 11 + 1) % n) as u32);
        for r in 0..t.num_routers() {
            let mut current = RouterId(r);
            for _ in 0..5 {
                let port = t.min_next_port(current, dst);
                match t.endpoint(current, port) {
                    Some(Endpoint::Node(node)) => {
                        prop_assert_eq!(node, dst);
                        break;
                    }
                    Some(Endpoint::Router { router, .. }) => current = router,
                    None => return Err(TestCaseError::fail("routed onto dangling port")),
                }
            }
            prop_assert_eq!(current, t.router_of_node(dst));
        }
    }
}
