//! Simulation time base.
//!
//! All simulation timestamps are `u64` **picoseconds**. The paper's link
//! constants are exact in this base:
//!
//! * one 128 B flit at 200 Gb/s serializes in 5.12 ns = 5 120 ps,
//! * one 512 B packet (4 flits) in 20.48 ns = 20 480 ps,
//! * local-link propagation is 30 ns = 30 000 ps,
//! * global-link propagation is 300 ns = 300 000 ps.
//!
//! A `u64` of picoseconds covers ~213 days of simulated time, far beyond the
//! paper's ~15 ms runs.

/// Simulation timestamp / duration in picoseconds.
pub type Time = u64;

/// One picosecond (the base unit).
pub const PICOSECOND: Time = 1;
/// One nanosecond in picoseconds.
pub const NANOSECOND: Time = 1_000;
/// One microsecond in picoseconds.
pub const MICROSECOND: Time = 1_000_000;
/// One millisecond in picoseconds.
pub const MILLISECOND: Time = 1_000_000_000;
/// One second in picoseconds.
pub const SECOND: Time = 1_000_000_000_000;

/// One gigabit per second expressed as bits per second (helper for
/// [`serialization_time`]).
pub const GIGABIT_PER_SEC: u64 = 1_000_000_000;

/// Time to serialize `bytes` onto a link of `gbps` gigabits per second,
/// rounded up to the next picosecond.
///
/// ```
/// use dfsim_des::time::serialization_time;
/// // One 128-byte flit on a 200 Gb/s link: 1024 bits / 200 Gb/s = 5.12 ns.
/// assert_eq!(serialization_time(128, 200), 5_120);
/// // One 512-byte packet: 20.48 ns.
/// assert_eq!(serialization_time(512, 200), 20_480);
/// ```
#[inline]
pub const fn serialization_time(bytes: u64, gbps: u64) -> Time {
    // bits * (1e12 ps/s) / (gbps * 1e9 bit/s)  ==  bits * 1000 / gbps.
    let bits = bytes * 8;
    (bits * 1000).div_ceil(gbps)
}

/// Convert a picosecond timestamp to fractional milliseconds (for reports).
#[inline]
pub fn as_millis(t: Time) -> f64 {
    t as f64 / MILLISECOND as f64
}

/// Convert a picosecond timestamp to fractional microseconds (for reports).
#[inline]
pub fn as_micros(t: Time) -> f64 {
    t as f64 / MICROSECOND as f64
}

/// Convert fractional milliseconds to picoseconds (for configs).
#[inline]
pub fn from_millis(ms: f64) -> Time {
    (ms * MILLISECOND as f64).round() as Time
}

/// Convert fractional microseconds to picoseconds (for configs).
#[inline]
pub fn from_micros(us: f64) -> Time {
    (us * MICROSECOND as f64).round() as Time
}

/// Bandwidth·time product: how many whole bytes a `gbps` link moves in `t`.
#[inline]
pub const fn bytes_in(t: Time, gbps: u64) -> u64 {
    // gbps * 1e9 bit/s * t ps / 1e12 ps/s / 8 bit/B == gbps * t / 8000.
    gbps * t / 8000
}

/// Parse a duration like `500ns`, `0.5ms`, `2us`, `1s` or a bare number
/// (milliseconds) into picoseconds. The canonical emission is the plain
/// picosecond form `<n>ps`, which round-trips exactly.
pub fn parse_duration(s: &str) -> Result<Time, String> {
    let s = s.trim();
    let (num, unit_ps) = if let Some(v) = s.strip_suffix("ns") {
        (v, NANOSECOND as f64)
    } else if let Some(v) = s.strip_suffix("us") {
        (v, MICROSECOND as f64)
    } else if let Some(v) = s.strip_suffix("ms") {
        (v, MILLISECOND as f64)
    } else if let Some(v) = s.strip_suffix("ps") {
        (v, 1.0)
    } else if let Some(v) = s.strip_suffix('s') {
        (v, SECOND as f64)
    } else {
        (s, MILLISECOND as f64)
    };
    let value: f64 =
        num.trim().parse().map_err(|_| format!("invalid duration '{s}' (e.g. 0.5ms, 20us)"))?;
    if value < 0.0 || !value.is_finite() {
        return Err(format!("duration '{s}' must be finite and non-negative"));
    }
    Ok((value * unit_ps).round() as Time)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flit_and_packet_serialization_match_paper_constants() {
        assert_eq!(serialization_time(128, 200), 5_120);
        assert_eq!(serialization_time(512, 200), 20_480);
        // 4 flits back-to-back equal one packet.
        assert_eq!(4 * serialization_time(128, 200), serialization_time(512, 200));
    }

    #[test]
    fn serialization_rounds_up() {
        // 1 byte at 3 Gb/s = 8000/3 ps = 2666.67 → 2667.
        assert_eq!(serialization_time(1, 3), 2_667);
    }

    #[test]
    fn unit_constants_are_consistent() {
        assert_eq!(NANOSECOND, 1_000 * PICOSECOND);
        assert_eq!(MICROSECOND, 1_000 * NANOSECOND);
        assert_eq!(MILLISECOND, 1_000 * MICROSECOND);
        assert_eq!(SECOND, 1_000 * MILLISECOND);
    }

    #[test]
    fn millis_round_trip() {
        let t = from_millis(13.31);
        assert!((as_millis(t) - 13.31).abs() < 1e-9);
        let u = from_micros(4.08);
        assert!((as_micros(u) - 4.08).abs() < 1e-9);
    }

    #[test]
    fn bytes_in_matches_serialization_inverse() {
        // In 20_480 ps a 200 Gb/s link moves exactly one 512 B packet.
        assert_eq!(bytes_in(20_480, 200), 512);
        // One millisecond of 200 Gb/s is 25 MB.
        assert_eq!(bytes_in(MILLISECOND, 200), 25_000_000);
    }
}
