//! Scheduler abstraction.
//!
//! Sub-models (the network, the MPI layer) define their own event enums and
//! schedule through a [`Scheduler`] of that event type; the world loop in
//! `dfsim-core` wraps the single global [`crate::EventQueue`] with adapters
//! that lift sub-model events into the world event enum. This keeps the
//! crates decoupled without trait objects or callbacks in the hot path.

use crate::queue::PendingEvents;
use crate::time::Time;

/// Something that can schedule events of type `E` at absolute times.
pub trait Scheduler<E> {
    /// Current simulation time.
    fn now(&self) -> Time;
    /// Schedule `event` at absolute time `time` (must be `>= now()`).
    fn at(&mut self, time: Time, event: E);
    /// Schedule `event` after a relative `delay`.
    fn after(&mut self, delay: Time, event: E) {
        self.at(self.now().saturating_add(delay), event);
    }
}

/// A scheduler adapter that maps events of type `A` into a parent scheduler
/// of type `B` through a conversion function.
pub struct MapScheduler<'a, S, F> {
    parent: &'a mut S,
    lift: F,
}

impl<'a, S, F> MapScheduler<'a, S, F> {
    /// Wrap `parent`, lifting scheduled events with `lift`.
    pub fn new(parent: &'a mut S, lift: F) -> Self {
        Self { parent, lift }
    }
}

impl<A, B, S: Scheduler<B>, F: FnMut(A) -> B> Scheduler<A> for MapScheduler<'_, S, F> {
    #[inline]
    fn now(&self) -> Time {
        self.parent.now()
    }

    #[inline]
    fn at(&mut self, time: Time, event: A) {
        self.parent.at(time, (self.lift)(event));
    }
}

/// Direct scheduler over any [`PendingEvents`] backend (used in tests, the
/// benches, and the world loop itself).
pub struct QueueScheduler<'a, Q> {
    queue: &'a mut Q,
}

impl<'a, Q> QueueScheduler<'a, Q> {
    /// Wrap a queue.
    pub fn new(queue: &'a mut Q) -> Self {
        Self { queue }
    }
}

impl<E, Q: PendingEvents<E>> Scheduler<E> for QueueScheduler<'_, Q> {
    #[inline]
    fn now(&self) -> Time {
        self.queue.now()
    }

    #[inline]
    fn at(&mut self, time: Time, event: E) {
        self.queue.push(time, event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::PendingEvents;
    use crate::EventQueue;

    #[derive(Debug, PartialEq)]
    enum World {
        Net(u32),
        Mpi(&'static str),
    }

    #[test]
    fn map_scheduler_lifts_events() {
        let mut q: EventQueue<World> = EventQueue::new();
        {
            let mut root = QueueScheduler::new(&mut q);
            let mut net = MapScheduler::new(&mut root, World::Net);
            net.at(10, 1);
            net.after(5, 2); // now() == 0 → fires at 5
        }
        {
            let mut root = QueueScheduler::new(&mut q);
            let mut mpi = MapScheduler::new(&mut root, World::Mpi);
            mpi.at(7, "hello");
        }
        assert_eq!(q.pop(), Some((5, World::Net(2))));
        assert_eq!(q.pop(), Some((7, World::Mpi("hello"))));
        assert_eq!(q.pop(), Some((10, World::Net(1))));
    }

    #[test]
    fn after_is_relative_to_clock() {
        let mut q: EventQueue<u32> = EventQueue::new();
        q.push(100, 0);
        q.pop(); // clock = 100
        let mut s = QueueScheduler::new(&mut q);
        s.after(20, 1);
        assert_eq!(q.pop(), Some((120, 1)));
    }
}
