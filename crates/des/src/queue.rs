//! Pending-event set: the core data structure of the simulator.
//!
//! The default implementation is a binary heap over `(time, seq)` where `seq`
//! is a monotonically increasing tie-breaker, guaranteeing a deterministic
//! total order: events at equal timestamps pop in scheduling order. An
//! alternative calendar-queue implementation lives in [`crate::calendar`];
//! both are benchmarked against each other in the `dfsim-bench` crate
//! (event-queue ablation from `DESIGN.md` §7).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::Time;

/// An event tagged with its firing time and scheduling sequence number.
#[derive(Debug, Clone)]
pub struct Scheduled<E> {
    /// Absolute firing time in picoseconds.
    pub time: Time,
    /// Tie-breaker: events scheduled earlier fire earlier at equal `time`.
    pub seq: u64,
    /// The event payload.
    pub event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest first.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// Engine-level statistics of a pending-event set: how hard the queue
/// worked over a run. Every backend reports the traffic counters; the
/// calendar-specific fields (`resizes`, `bucket_scans`, `sparse_jumps`,
/// `buckets`, `width_ps`) are zero on the binary heap.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Events popped so far.
    pub events_processed: u64,
    /// Events pushed so far.
    pub events_scheduled: u64,
    /// Events pending right now.
    pub pending: usize,
    /// Largest pending-set size ever observed.
    pub peak_pending: usize,
    /// Calendar bucket-array rebuilds (adaptive resizes + width retunes).
    pub resizes: u64,
    /// Empty calendar days skipped while looking for the next event.
    pub bucket_scans: u64,
    /// Full-year misses that jumped the calendar straight to the earliest
    /// pending event (the sparse-workload escape hatch).
    pub sparse_jumps: u64,
    /// Current calendar bucket count (0 on the heap).
    pub buckets: usize,
    /// Current calendar bucket width, picoseconds (0 on the heap).
    pub width_ps: Time,
}

/// Tuning of the calendar-queue backend. Each knob is either pinned to a
/// value or left to the queue's self-tuning policy:
///
/// * `width: None` — the bucket width is re-estimated from sampled
///   inter-event gaps (Brown's rule: ~3× the mean gap) whenever the bucket
///   array is rebuilt.
/// * `buckets: None` — the bucket count doubles when the load factor
///   exceeds 2 and halves when it drops below ½ (with hysteresis), keeping
///   pop scans O(1) amortized across load swings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct CalendarTuning {
    /// Fixed bucket width in picoseconds; `None` = auto (Brown's rule).
    pub width: Option<Time>,
    /// Fixed bucket count; `None` = auto (load-factor resizing).
    pub buckets: Option<usize>,
}

impl CalendarTuning {
    /// Fully self-tuning: width and bucket count both adapt.
    pub const AUTO: CalendarTuning = CalendarTuning { width: None, buckets: None };

    /// The legacy fixed configuration sized for the Dragonfly network
    /// (16 384 buckets of ~20 ns — a ~0.3 ms horizon).
    pub const FIXED_NETWORK: CalendarTuning =
        CalendarTuning { width: Some(20_480), buckets: Some(16_384) };

    /// Pin both knobs.
    pub fn fixed(width: Time, buckets: usize) -> Self {
        Self { width: Some(width), buckets: Some(buckets) }
    }

    /// Whether any knob is left to the self-tuning policy.
    pub fn is_auto(&self) -> bool {
        self.width.is_none() || self.buckets.is_none()
    }

    /// Compact suffix form (`auto`, `width=..`, `width=..,buckets=..`).
    fn describe(&self) -> String {
        match (self.width, self.buckets) {
            (None, None) => "auto".to_string(),
            (Some(w), None) => format!("width={w}"),
            (None, Some(b)) => format!("buckets={b}"),
            (Some(w), Some(b)) => format!("width={w},buckets={b}"),
        }
    }
}

/// Fieldless discriminant of [`QueueBackend`]: which *implementation* a
/// backend value selects, ignoring tuning. Monomorphized code paths (the
/// world loop) dispatch on this.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueueKind {
    /// [`EventQueue`] (binary heap).
    Heap,
    /// [`crate::calendar::CalendarQueue`].
    Calendar,
}

impl QueueKind {
    /// The default backend value of this kind.
    pub fn default_backend(self) -> QueueBackend {
        match self {
            QueueKind::Heap => QueueBackend::BinaryHeap,
            QueueKind::Calendar => QueueBackend::Calendar(CalendarTuning::AUTO),
        }
    }
}

/// Which pending-event set a simulation runs on.
///
/// Threaded from `SimConfig` through the world loop so the event-queue
/// ablation (`DESIGN.md` §7) exercises the real hot path, not a synthetic
/// harness: every backend (and every calendar tuning) realizes the identical
/// deterministic total order, so reports are bit-for-bit equal across
/// backends — the knob is purely about performance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum QueueBackend {
    /// `O(log n)` binary heap ([`EventQueue`]), the default.
    #[default]
    BinaryHeap,
    /// `O(1)`-amortized calendar queue
    /// ([`crate::calendar::CalendarQueue`]) under the given tuning.
    Calendar(CalendarTuning),
}

impl QueueBackend {
    /// Every selectable backend (ablation sweeps iterate this): the heap,
    /// the self-tuning calendar, and the legacy fixed calendar.
    pub const ALL: [QueueBackend; 3] = [
        QueueBackend::BinaryHeap,
        QueueBackend::Calendar(CalendarTuning::AUTO),
        QueueBackend::Calendar(CalendarTuning::FIXED_NETWORK),
    ];

    /// The self-tuning calendar backend.
    pub fn calendar_auto() -> Self {
        QueueBackend::Calendar(CalendarTuning::AUTO)
    }

    /// A fully pinned calendar backend.
    pub fn calendar_fixed(width: Time, buckets: usize) -> Self {
        QueueBackend::Calendar(CalendarTuning::fixed(width, buckets))
    }

    /// Short stable name (report fields, bench label prefixes): tuning is
    /// *not* encoded — see [`QueueBackend::describe`] for the full form.
    pub fn label(&self) -> &'static str {
        match self {
            QueueBackend::BinaryHeap => "heap",
            QueueBackend::Calendar(_) => "calendar",
        }
    }

    /// The implementation this backend selects.
    pub fn kind(&self) -> QueueKind {
        match self {
            QueueBackend::BinaryHeap => QueueKind::Heap,
            QueueBackend::Calendar(_) => QueueKind::Calendar,
        }
    }

    /// Full round-trippable form (`heap`, `calendar:auto`,
    /// `calendar:width=20480,buckets=16384`, …); parses back via
    /// [`std::str::FromStr`].
    pub fn describe(&self) -> String {
        match self {
            QueueBackend::BinaryHeap => "heap".to_string(),
            QueueBackend::Calendar(t) => format!("calendar:{}", t.describe()),
        }
    }
}

impl std::fmt::Display for QueueBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.describe())
    }
}

/// The valid `--queue` spellings, kept in one place so every parse error
/// lists them.
const QUEUE_FORMS: &str =
    "heap, calendar, calendar:auto, calendar:width=<ps>, calendar:buckets=<n>, \
     calendar:width=<ps>,buckets=<n>";

impl std::str::FromStr for QueueBackend {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let lower = s.to_ascii_lowercase();
        let (head, opts) = match lower.split_once(':') {
            Some((h, o)) => (h, Some(o)),
            None => (lower.as_str(), None),
        };
        match head {
            "heap" | "binary-heap" | "binary_heap" | "binaryheap" => {
                if opts.is_some() {
                    return Err(format!(
                        "the heap backend takes no options in '{s}' (valid: {QUEUE_FORMS})"
                    ));
                }
                Ok(QueueBackend::BinaryHeap)
            }
            "calendar" | "calendar-queue" | "calendar_queue" => {
                let mut tuning = CalendarTuning::AUTO;
                for opt in opts.unwrap_or("auto").split(',') {
                    let opt = opt.trim();
                    match opt.split_once('=') {
                        None if opt == "auto" || opt.is_empty() => {}
                        Some(("width", v)) => {
                            let w: Time = v.parse().map_err(|_| {
                                format!("invalid calendar width '{v}' in '{s}' (picoseconds ≥ 1)")
                            })?;
                            if w == 0 {
                                return Err(format!(
                                    "calendar width must be ≥ 1 ps in '{s}' (valid: {QUEUE_FORMS})"
                                ));
                            }
                            tuning.width = Some(w);
                        }
                        Some(("buckets", v)) => {
                            let b: usize = v.parse().map_err(|_| {
                                format!("invalid calendar bucket count '{v}' in '{s}' (≥ 2)")
                            })?;
                            if b < 2 {
                                return Err(format!(
                                    "calendar needs ≥ 2 buckets in '{s}' (valid: {QUEUE_FORMS})"
                                ));
                            }
                            tuning.buckets = Some(b);
                        }
                        _ => {
                            return Err(format!(
                                "unknown calendar option '{opt}' in '{s}' (valid: {QUEUE_FORMS})"
                            ));
                        }
                    }
                }
                Ok(QueueBackend::Calendar(tuning))
            }
            _ => Err(format!("unknown queue backend '{s}' (valid: {QUEUE_FORMS})")),
        }
    }
}

/// Abstraction over pending-event sets so the world loop can swap
/// implementations (binary heap vs calendar queue).
pub trait PendingEvents<E> {
    /// Insert an event at absolute time `time`.
    ///
    /// `time` must be `>=` the time of the last popped event (no scheduling
    /// into the past); implementations may debug-assert this.
    fn push(&mut self, time: Time, event: E);
    /// Remove and return the earliest event, `(time, event)`.
    fn pop(&mut self) -> Option<(Time, E)>;
    /// Earliest pending timestamp, if any.
    fn peek_time(&self) -> Option<Time>;
    /// Number of pending events.
    fn len(&self) -> usize;
    /// Whether no events are pending.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// The time of the most recently popped event (the simulation clock).
    fn now(&self) -> Time;
    /// Total events popped so far (run statistics).
    fn events_processed(&self) -> u64;
    /// Total events pushed so far (run statistics).
    fn events_scheduled(&self) -> u64;
    /// Engine statistics (traffic counters plus backend internals).
    fn stats(&self) -> EngineStats;

    // ---- partitioned-execution extensions -------------------------------
    //
    // The partitioned engine (`dfsim-core`) manages `(time, seq)` keys
    // itself: every shard assigns segmented sequence numbers so that the
    // union of all shards' pops realizes the same global total order the
    // single-threaded engine would. That requires scheduling under an
    // explicit tie-breaker, popping the key alongside the event, rewriting
    // provisional tie-breakers after a window merge, and advancing the
    // clock across an empty window.

    /// Insert an event under an explicit tie-breaker `seq` instead of the
    /// queue's internal counter. The internal counter is bumped past `seq`
    /// so later [`PendingEvents::push`] calls cannot collide.
    fn push_seq(&mut self, time: Time, seq: u64, event: E);

    /// Remove and return the earliest event together with its full
    /// `(time, seq)` key.
    fn pop_keyed(&mut self) -> Option<(Time, u64, E)>;

    /// Visit every pending event, allowing its `seq` to be rewritten in
    /// place. The caller must preserve the *relative* `(time, seq)` order
    /// of all pending pairs (monotone renumbering); implementations may
    /// rely on that to keep their internal geometry valid.
    fn for_each_pending_mut(&mut self, f: &mut dyn FnMut(Time, &mut u64));

    /// Advance the clock to `t` without popping (an empty conservative
    /// window). `t` must be `>= now()` and `<=` every pending time.
    fn advance_clock(&mut self, t: Time);
}

/// A pending-event set constructible from a [`QueueBackend`] value — what
/// the config knob resolves to at the type level.
pub trait SimQueue<E>: PendingEvents<E> + Sized {
    /// The implementation this type realizes.
    const KIND: QueueKind;

    /// Construct under `backend`'s tuning. Callers dispatch on
    /// [`QueueBackend::kind`] first; a mismatched kind falls back to this
    /// implementation's defaults (debug-asserted).
    fn for_backend(backend: QueueBackend) -> Self;

    /// Construct with simulation-appropriate defaults.
    fn for_simulation() -> Self {
        Self::for_backend(Self::KIND.default_backend())
    }
}

impl<E> SimQueue<E> for EventQueue<E> {
    const KIND: QueueKind = QueueKind::Heap;

    fn for_backend(backend: QueueBackend) -> Self {
        debug_assert_eq!(backend.kind(), QueueKind::Heap, "backend dispatch mismatch");
        Self::new()
    }
}

/// Binary-heap pending-event set with deterministic FIFO tie-breaking.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
    now: Time,
    popped: u64,
    pushed: u64,
    peak: usize,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue starting at time zero.
    pub fn new() -> Self {
        Self { heap: BinaryHeap::new(), next_seq: 0, now: 0, popped: 0, pushed: 0, peak: 0 }
    }

    /// Create an empty queue with pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            heap: BinaryHeap::with_capacity(cap),
            next_seq: 0,
            now: 0,
            popped: 0,
            pushed: 0,
            peak: 0,
        }
    }

    /// The time of the most recently popped event (the simulation clock).
    #[inline]
    pub fn now(&self) -> Time {
        self.now
    }

    /// Total number of events popped so far (for run statistics).
    #[inline]
    pub fn events_processed(&self) -> u64 {
        self.popped
    }

    /// Total number of events pushed so far.
    #[inline]
    pub fn events_scheduled(&self) -> u64 {
        self.pushed
    }
}

impl<E> PendingEvents<E> for EventQueue<E> {
    #[inline]
    fn push(&mut self, time: Time, event: E) {
        debug_assert!(time >= self.now, "scheduling into the past: {time} < {}", self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pushed += 1;
        self.heap.push(Scheduled { time, seq, event });
        if self.heap.len() > self.peak {
            self.peak = self.heap.len();
        }
    }

    #[inline]
    fn pop(&mut self) -> Option<(Time, E)> {
        let s = self.heap.pop()?;
        debug_assert!(s.time >= self.now, "time went backwards");
        self.now = s.time;
        self.popped += 1;
        Some((s.time, s.event))
    }

    #[inline]
    fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|s| s.time)
    }

    #[inline]
    fn len(&self) -> usize {
        self.heap.len()
    }

    #[inline]
    fn now(&self) -> Time {
        self.now
    }

    #[inline]
    fn events_processed(&self) -> u64 {
        self.popped
    }

    #[inline]
    fn events_scheduled(&self) -> u64 {
        self.pushed
    }

    fn stats(&self) -> EngineStats {
        EngineStats {
            events_processed: self.popped,
            events_scheduled: self.pushed,
            pending: self.heap.len(),
            peak_pending: self.peak,
            ..EngineStats::default()
        }
    }

    #[inline]
    fn push_seq(&mut self, time: Time, seq: u64, event: E) {
        debug_assert!(time >= self.now, "scheduling into the past: {time} < {}", self.now);
        self.next_seq = self.next_seq.max(seq.saturating_add(1));
        self.pushed += 1;
        self.heap.push(Scheduled { time, seq, event });
        if self.heap.len() > self.peak {
            self.peak = self.heap.len();
        }
    }

    #[inline]
    fn pop_keyed(&mut self) -> Option<(Time, u64, E)> {
        let s = self.heap.pop()?;
        debug_assert!(s.time >= self.now, "time went backwards");
        self.now = s.time;
        self.popped += 1;
        Some((s.time, s.seq, s.event))
    }

    fn for_each_pending_mut(&mut self, f: &mut dyn FnMut(Time, &mut u64)) {
        // Monotone renumbering preserves every pairwise comparison, so the
        // heap invariant survives; re-heapifying via `from` is O(n) and
        // keeps this safe even if a caller bends the contract.
        let mut v = std::mem::take(&mut self.heap).into_vec();
        for s in &mut v {
            f(s.time, &mut s.seq);
        }
        self.heap = BinaryHeap::from(v);
    }

    #[inline]
    fn advance_clock(&mut self, t: Time) {
        debug_assert!(t >= self.now, "clock went backwards");
        debug_assert!(self.peek_time().is_none_or(|p| p >= t), "advancing past a pending event");
        self.now = t;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(30, "c");
        q.push(10, "a");
        q.push(20, "b");
        assert_eq!(q.pop(), Some((10, "a")));
        assert_eq!(q.pop(), Some((20, "b")));
        assert_eq!(q.pop(), Some((30, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn equal_times_pop_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(42, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((42, i)));
        }
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut q = EventQueue::new();
        q.push(5, ());
        q.push(5, ());
        q.push(7, ());
        assert_eq!(q.now(), 0);
        q.pop();
        assert_eq!(q.now(), 5);
        q.pop();
        assert_eq!(q.now(), 5);
        q.pop();
        assert_eq!(q.now(), 7);
    }

    #[test]
    fn counters_track_traffic() {
        let mut q = EventQueue::new();
        q.push(1, ());
        q.push(2, ());
        q.pop();
        assert_eq!(q.events_scheduled(), 2);
        assert_eq!(q.events_processed(), 1);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(10, 10u64);
        q.push(40, 40);
        assert_eq!(q.pop(), Some((10, 10)));
        // Now = 10; schedule more in the future.
        q.push(20, 20);
        q.push(30, 30);
        assert_eq!(q.pop(), Some((20, 20)));
        assert_eq!(q.pop(), Some((30, 30)));
        assert_eq!(q.pop(), Some((40, 40)));
    }

    #[test]
    fn heap_stats_track_peak_and_traffic() {
        let mut q = EventQueue::new();
        for i in 0..10u64 {
            q.push(i, i);
        }
        for _ in 0..7 {
            q.pop();
        }
        let s = q.stats();
        assert_eq!(s.events_scheduled, 10);
        assert_eq!(s.events_processed, 7);
        assert_eq!(s.pending, 3);
        assert_eq!(s.peak_pending, 10);
        assert_eq!(s.resizes, 0);
        assert_eq!(s.buckets, 0);
    }

    #[test]
    fn backend_labels_and_kinds() {
        assert_eq!(QueueBackend::BinaryHeap.label(), "heap");
        assert_eq!(QueueBackend::calendar_auto().label(), "calendar");
        assert_eq!(QueueBackend::BinaryHeap.kind(), QueueKind::Heap);
        assert_eq!(QueueBackend::calendar_fixed(10, 8).kind(), QueueKind::Calendar);
        assert_eq!(QueueBackend::default(), QueueBackend::BinaryHeap);
        assert_eq!(QueueBackend::ALL.len(), 3);
    }

    #[test]
    fn backend_describe_round_trips() {
        for b in [
            QueueBackend::BinaryHeap,
            QueueBackend::calendar_auto(),
            QueueBackend::calendar_fixed(20_480, 16_384),
            QueueBackend::Calendar(CalendarTuning { width: Some(512), buckets: None }),
            QueueBackend::Calendar(CalendarTuning { width: None, buckets: Some(64) }),
        ] {
            let s = b.describe();
            assert_eq!(s.parse::<QueueBackend>().unwrap(), b, "{s} did not round-trip");
        }
    }

    #[test]
    fn backend_parses_legacy_and_tuned_forms() {
        assert_eq!("heap".parse::<QueueBackend>().unwrap(), QueueBackend::BinaryHeap);
        assert_eq!("Calendar".parse::<QueueBackend>().unwrap(), QueueBackend::calendar_auto());
        assert_eq!(
            "calendar:width=20480,buckets=16384".parse::<QueueBackend>().unwrap(),
            QueueBackend::Calendar(CalendarTuning::FIXED_NETWORK)
        );
        assert_eq!(
            "calendar:buckets=128".parse::<QueueBackend>().unwrap(),
            QueueBackend::Calendar(CalendarTuning { width: None, buckets: Some(128) })
        );
    }

    #[test]
    fn backend_parse_errors_list_valid_forms() {
        for bad in
            ["warp", "calendar:width=0", "calendar:speed=9", "heap:width=3", "calendar:buckets=1"]
        {
            let err = bad.parse::<QueueBackend>().unwrap_err();
            assert!(
                err.contains("calendar:width=<ps>") || err.contains("picoseconds"),
                "error for '{bad}' must list valid forms: {err}"
            );
        }
        let err = "calendar:width=abc".parse::<QueueBackend>().unwrap_err();
        assert!(err.contains("abc"), "{err}");
    }

    /// Both backends honor explicit sequence numbers: pops come out in
    /// global `(time, seq)` order regardless of push order, and `pop_keyed`
    /// reports the key that ordered them.
    #[test]
    fn push_seq_orders_by_explicit_key_on_both_backends() {
        let mut backends: Vec<Box<dyn PendingEvents<u32>>> = vec![
            Box::new(EventQueue::new()),
            Box::new(crate::CalendarQueue::with_tuning(CalendarTuning::default())),
        ];
        for q in &mut backends {
            q.push_seq(50, 7, 1);
            q.push_seq(50, 3, 2);
            q.push_seq(10, 9, 3);
            q.push_seq(50, 5, 4);
            assert_eq!(q.pop_keyed(), Some((10, 9, 3)));
            assert_eq!(q.pop_keyed(), Some((50, 3, 2)));
            assert_eq!(q.pop_keyed(), Some((50, 5, 4)));
            assert_eq!(q.pop_keyed(), Some((50, 7, 1)));
            assert_eq!(q.pop_keyed(), None);
        }
    }

    /// Plain `push` after `push_seq` never reuses a seq at or below the
    /// explicit one, so mixed usage keeps FIFO-at-equal-time semantics.
    #[test]
    fn push_after_push_seq_sorts_later_at_equal_time() {
        let mut backends: Vec<Box<dyn PendingEvents<&'static str>>> = vec![
            Box::new(EventQueue::new()),
            Box::new(crate::CalendarQueue::with_tuning(CalendarTuning::default())),
        ];
        for q in &mut backends {
            q.push_seq(5, 100, "explicit");
            q.push(5, "implicit");
            assert_eq!(q.pop(), Some((5, "explicit")));
            assert_eq!(q.pop(), Some((5, "implicit")));
        }
    }

    /// A monotone renumbering of pending seqs (the partitioned engine's
    /// barrier merge) preserves pop order on both backends.
    #[test]
    fn monotone_renumber_preserves_pop_order() {
        let mut backends: Vec<Box<dyn PendingEvents<u64>>> = vec![
            Box::new(EventQueue::new()),
            Box::new(crate::CalendarQueue::with_tuning(CalendarTuning::default())),
        ];
        for q in &mut backends {
            for i in 0..64u64 {
                // times collide heavily so seq ordering matters
                q.push_seq(i % 4, i, i);
            }
            // Renumber seq s -> s * 3 + 1: monotone, so order is unchanged.
            q.for_each_pending_mut(&mut |_, seq| *seq = *seq * 3 + 1);
            let mut prev: Option<(Time, u64)> = None;
            while let Some((t, s, ev)) = q.pop_keyed() {
                assert_eq!(s, ev * 3 + 1, "renumbering lost an entry");
                if let Some(p) = prev {
                    assert!((t, s) > p, "order broken: {:?} after {:?}", (t, s), p);
                }
                prev = Some((t, s));
            }
        }
    }

    /// `advance_clock` moves `now` across an empty window (no pops) and
    /// subsequent pushes land correctly — the calendar backend must also
    /// re-anchor its cursor so it doesn't rescan dead days.
    #[test]
    fn advance_clock_jumps_empty_windows() {
        let mut backends: Vec<Box<dyn PendingEvents<&'static str>>> = vec![
            Box::new(EventQueue::new()),
            Box::new(crate::CalendarQueue::with_tuning(CalendarTuning::default())),
        ];
        for q in &mut backends {
            q.push(1_000_000, "far");
            q.advance_clock(600_000);
            assert_eq!(q.now(), 600_000);
            q.push(700_000, "near");
            assert_eq!(q.pop(), Some((700_000, "near")));
            assert_eq!(q.pop(), Some((1_000_000, "far")));
            q.advance_clock(2_000_000);
            assert_eq!(q.now(), 2_000_000);
            assert_eq!(q.pop(), None);
        }
    }
}
