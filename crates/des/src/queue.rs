//! Pending-event set: the core data structure of the simulator.
//!
//! The default implementation is a binary heap over `(time, seq)` where `seq`
//! is a monotonically increasing tie-breaker, guaranteeing a deterministic
//! total order: events at equal timestamps pop in scheduling order. An
//! alternative calendar-queue implementation lives in [`crate::calendar`];
//! both are benchmarked against each other in the `dfsim-bench` crate
//! (event-queue ablation from `DESIGN.md` §7).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::Time;

/// An event tagged with its firing time and scheduling sequence number.
#[derive(Debug, Clone)]
pub struct Scheduled<E> {
    /// Absolute firing time in picoseconds.
    pub time: Time,
    /// Tie-breaker: events scheduled earlier fire earlier at equal `time`.
    pub seq: u64,
    /// The event payload.
    pub event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest first.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// Which pending-event set a simulation runs on.
///
/// Threaded from `SimConfig` through the world loop so the event-queue
/// ablation (`DESIGN.md` §7) exercises the real hot path, not a synthetic
/// harness: both backends realize the identical deterministic total order,
/// so reports are bit-for-bit equal across backends.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum QueueBackend {
    /// `O(log n)` binary heap ([`EventQueue`]), the default.
    #[default]
    BinaryHeap,
    /// `O(1)`-amortized calendar queue ([`crate::calendar::CalendarQueue`]).
    Calendar,
}

impl QueueBackend {
    /// Every selectable backend (ablation sweeps iterate this).
    pub const ALL: [QueueBackend; 2] = [QueueBackend::BinaryHeap, QueueBackend::Calendar];

    /// Short stable name (CLI flags, bench labels, report fields).
    pub fn label(&self) -> &'static str {
        match self {
            QueueBackend::BinaryHeap => "heap",
            QueueBackend::Calendar => "calendar",
        }
    }
}

impl std::fmt::Display for QueueBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

impl std::str::FromStr for QueueBackend {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "heap" | "binary-heap" | "binary_heap" | "binaryheap" => Ok(QueueBackend::BinaryHeap),
            "calendar" | "calendar-queue" | "calendar_queue" => Ok(QueueBackend::Calendar),
            other => Err(format!("unknown queue backend '{other}' (heap, calendar)")),
        }
    }
}

/// Abstraction over pending-event sets so the world loop can swap
/// implementations (binary heap vs calendar queue).
pub trait PendingEvents<E> {
    /// Insert an event at absolute time `time`.
    ///
    /// `time` must be `>=` the time of the last popped event (no scheduling
    /// into the past); implementations may debug-assert this.
    fn push(&mut self, time: Time, event: E);
    /// Remove and return the earliest event, `(time, event)`.
    fn pop(&mut self) -> Option<(Time, E)>;
    /// Earliest pending timestamp, if any.
    fn peek_time(&self) -> Option<Time>;
    /// Number of pending events.
    fn len(&self) -> usize;
    /// Whether no events are pending.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// The time of the most recently popped event (the simulation clock).
    fn now(&self) -> Time;
    /// Total events popped so far (run statistics).
    fn events_processed(&self) -> u64;
    /// Total events pushed so far (run statistics).
    fn events_scheduled(&self) -> u64;
}

/// A pending-event set constructible with defaults tuned for the Dragonfly
/// simulation — what a [`QueueBackend`] value resolves to at the type level.
pub trait SimQueue<E>: PendingEvents<E> + Sized {
    /// The backend knob this implementation realizes.
    const BACKEND: QueueBackend;

    /// Construct with simulation-appropriate defaults.
    fn for_simulation() -> Self;
}

impl<E> SimQueue<E> for EventQueue<E> {
    const BACKEND: QueueBackend = QueueBackend::BinaryHeap;

    fn for_simulation() -> Self {
        Self::new()
    }
}

/// Binary-heap pending-event set with deterministic FIFO tie-breaking.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
    now: Time,
    popped: u64,
    pushed: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue starting at time zero.
    pub fn new() -> Self {
        Self { heap: BinaryHeap::new(), next_seq: 0, now: 0, popped: 0, pushed: 0 }
    }

    /// Create an empty queue with pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self { heap: BinaryHeap::with_capacity(cap), next_seq: 0, now: 0, popped: 0, pushed: 0 }
    }

    /// The time of the most recently popped event (the simulation clock).
    #[inline]
    pub fn now(&self) -> Time {
        self.now
    }

    /// Total number of events popped so far (for run statistics).
    #[inline]
    pub fn events_processed(&self) -> u64 {
        self.popped
    }

    /// Total number of events pushed so far.
    #[inline]
    pub fn events_scheduled(&self) -> u64 {
        self.pushed
    }
}

impl<E> PendingEvents<E> for EventQueue<E> {
    #[inline]
    fn push(&mut self, time: Time, event: E) {
        debug_assert!(time >= self.now, "scheduling into the past: {time} < {}", self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pushed += 1;
        self.heap.push(Scheduled { time, seq, event });
    }

    #[inline]
    fn pop(&mut self) -> Option<(Time, E)> {
        let s = self.heap.pop()?;
        debug_assert!(s.time >= self.now, "time went backwards");
        self.now = s.time;
        self.popped += 1;
        Some((s.time, s.event))
    }

    #[inline]
    fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|s| s.time)
    }

    #[inline]
    fn len(&self) -> usize {
        self.heap.len()
    }

    #[inline]
    fn now(&self) -> Time {
        self.now
    }

    #[inline]
    fn events_processed(&self) -> u64 {
        self.popped
    }

    #[inline]
    fn events_scheduled(&self) -> u64 {
        self.pushed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(30, "c");
        q.push(10, "a");
        q.push(20, "b");
        assert_eq!(q.pop(), Some((10, "a")));
        assert_eq!(q.pop(), Some((20, "b")));
        assert_eq!(q.pop(), Some((30, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn equal_times_pop_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(42, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((42, i)));
        }
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut q = EventQueue::new();
        q.push(5, ());
        q.push(5, ());
        q.push(7, ());
        assert_eq!(q.now(), 0);
        q.pop();
        assert_eq!(q.now(), 5);
        q.pop();
        assert_eq!(q.now(), 5);
        q.pop();
        assert_eq!(q.now(), 7);
    }

    #[test]
    fn counters_track_traffic() {
        let mut q = EventQueue::new();
        q.push(1, ());
        q.push(2, ());
        q.pop();
        assert_eq!(q.events_scheduled(), 2);
        assert_eq!(q.events_processed(), 1);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(10, 10u64);
        q.push(40, 40);
        assert_eq!(q.pop(), Some((10, 10)));
        // Now = 10; schedule more in the future.
        q.push(20, 20);
        q.push(30, 30);
        assert_eq!(q.pop(), Some((20, 20)));
        assert_eq!(q.pop(), Some((30, 30)));
        assert_eq!(q.pop(), Some((40, 40)));
    }
}
