//! Deterministic random-number utilities.
//!
//! Every simulation is reproducible from a single `u64` seed. Sub-systems
//! (placement, each router's routing RNG, each application's traffic RNG)
//! derive independent streams with [`SimRng::derive`], so adding randomness
//! in one component never perturbs another — a property the determinism
//! integration test relies on.

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

/// A seeded, splittable wrapper around [`SmallRng`].
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: SmallRng,
    seed: u64,
}

impl SimRng {
    /// Create from a root seed.
    pub fn new(seed: u64) -> Self {
        Self { inner: SmallRng::seed_from_u64(seed), seed }
    }

    /// The seed this stream was created from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derive an independent child stream for a named sub-system.
    ///
    /// The label is hashed (FNV-1a) together with the parent seed, so the
    /// child stream depends only on `(seed, label)` — not on how much the
    /// parent has been used.
    pub fn derive(&self, label: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ self.seed;
        for b in label.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self::new(h)
    }

    /// Derive an independent child stream indexed by an integer (e.g. one
    /// stream per router or per rank).
    pub fn derive_idx(&self, label: &str, idx: u64) -> Self {
        let base = self.derive(label);
        let mut h = base.seed ^ 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(idx.wrapping_add(1));
        h ^= h >> 33;
        h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
        h ^= h >> 33;
        Self::new(h)
    }

    /// Uniform integer in `[0, n)`.
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        self.inner.gen_range(0..n)
    }

    /// Uniform usize in `[0, n)`.
    #[inline]
    pub fn index(&mut self, n: usize) -> usize {
        self.inner.gen_range(0..n)
    }

    /// Bernoulli draw.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.inner.gen_bool(p.clamp(0.0, 1.0))
    }

    /// Uniform f64 in `[0, 1)`.
    #[inline]
    pub fn unit(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.inner.gen_range(0..=i);
            xs.swap(i, j);
        }
    }

    /// Choose `k` distinct indices from `[0, n)` (k must be ≤ n).
    pub fn choose_distinct(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot choose {k} distinct from {n}");
        if k * 4 >= n {
            let mut all: Vec<usize> = (0..n).collect();
            self.shuffle(&mut all);
            all.truncate(k);
            all
        } else {
            let mut picked = Vec::with_capacity(k);
            while picked.len() < k {
                let c = self.index(n);
                if !picked.contains(&c) {
                    picked.push(c);
                }
            }
            picked
        }
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn derive_is_stable_and_independent_of_parent_use() {
        let parent = SimRng::new(7);
        let mut used = SimRng::new(7);
        let _ = used.next_u64();
        let mut c1 = parent.derive("router");
        let mut c2 = used.derive("router");
        assert_eq!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn derived_labels_differ() {
        let parent = SimRng::new(7);
        let mut a = parent.derive("a");
        let mut b = parent.derive("b");
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn derive_idx_streams_differ() {
        let parent = SimRng::new(7);
        let mut a = parent.derive_idx("router", 0);
        let mut b = parent.derive_idx("router", 1);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn below_and_index_in_range() {
        let mut r = SimRng::new(1);
        for _ in 0..1000 {
            assert!(r.below(10) < 10);
            assert!(r.index(3) < 3);
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SimRng::new(3);
        let mut xs: Vec<u32> = (0..100).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn choose_distinct_is_distinct() {
        let mut r = SimRng::new(5);
        for k in [0usize, 1, 2, 5, 50, 100] {
            let picked = r.choose_distinct(100, k);
            assert_eq!(picked.len(), k);
            let mut s = picked.clone();
            s.sort_unstable();
            s.dedup();
            assert_eq!(s.len(), k, "duplicates for k={k}");
        }
    }
}
