//! Calendar-queue pending-event set.
//!
//! A calendar queue buckets events by time modulo a rotating "year" of
//! fixed-width "days". For workloads whose pending events are spread over a
//! bounded horizon (as in a network simulation where events live at most a
//! few microseconds ahead), `push`/`pop` are O(1) amortized versus the
//! binary heap's O(log n). This implementation is the ablation partner of
//! [`crate::queue::EventQueue`]; both satisfy [`crate::queue::PendingEvents`]
//! and the `event_queue` bench compares them.
//!
//! Within a bucket events are kept sorted by `(time, seq)` insertion, so the
//! pop order is exactly the same deterministic total order as the heap's.

use crate::queue::{PendingEvents, QueueBackend, SimQueue};
use crate::time::Time;

/// A single scheduled entry within a bucket.
#[derive(Debug, Clone)]
struct Entry<E> {
    time: Time,
    seq: u64,
    event: E,
}

/// Calendar queue with a fixed bucket width and a dynamically grown number
/// of buckets.
#[derive(Debug)]
pub struct CalendarQueue<E> {
    /// Bucket array; index = (time / width) % buckets.len().
    buckets: Vec<Vec<Entry<E>>>,
    /// Width of one bucket (day) in picoseconds.
    width: Time,
    /// Current day index the cursor is scanning.
    cursor: usize,
    /// Start time of the cursor's day.
    day_start: Time,
    len: usize,
    next_seq: u64,
    now: Time,
    popped: u64,
    pushed: u64,
}

impl<E> CalendarQueue<E> {
    /// Create a calendar queue.
    ///
    /// `width` is the bucket granularity in picoseconds (e.g. one packet
    /// serialization time, ~20 ns); `num_buckets` sets the year length
    /// `width * num_buckets`, which should exceed the typical scheduling
    /// horizon to avoid long overflow chains.
    pub fn new(width: Time, num_buckets: usize) -> Self {
        assert!(width > 0, "bucket width must be positive");
        assert!(num_buckets >= 2, "need at least two buckets");
        Self {
            buckets: (0..num_buckets).map(|_| Vec::new()).collect(),
            width,
            cursor: 0,
            day_start: 0,
            len: 0,
            next_seq: 0,
            now: 0,
            popped: 0,
            pushed: 0,
        }
    }

    /// A configuration suited to the Dragonfly simulation: 16 384 buckets of
    /// ~20 ns cover a ~0.3 ms horizon.
    pub fn for_network() -> Self {
        Self::new(20_480, 16_384)
    }

    /// The time of the most recently popped event.
    #[inline]
    pub fn now(&self) -> Time {
        self.now
    }

    #[inline]
    fn bucket_index(&self, time: Time) -> usize {
        ((time / self.width) as usize) % self.buckets.len()
    }

    /// Sorted insert keeping each bucket ordered by (time, seq).
    fn insert_sorted(bucket: &mut Vec<Entry<E>>, entry: Entry<E>) {
        let pos =
            bucket.binary_search_by(|e| (e.time, e.seq).cmp(&(entry.time, entry.seq))).unwrap_err();
        bucket.insert(pos, entry);
    }
}

impl<E> PendingEvents<E> for CalendarQueue<E> {
    fn push(&mut self, time: Time, event: E) {
        debug_assert!(time >= self.now, "scheduling into the past");
        let seq = self.next_seq;
        self.next_seq += 1;
        let idx = self.bucket_index(time);
        Self::insert_sorted(&mut self.buckets[idx], Entry { time, seq, event });
        self.len += 1;
        self.pushed += 1;
    }

    fn pop(&mut self) -> Option<(Time, E)> {
        if self.len == 0 {
            return None;
        }
        let n = self.buckets.len();
        let mut scanned = 0usize;
        loop {
            // Scan the current day for an event belonging to it.
            let day_end = self.day_start + self.width;
            let bucket = &mut self.buckets[self.cursor];
            if let Some(first) = bucket.first() {
                if first.time < day_end {
                    let e = bucket.remove(0);
                    self.len -= 1;
                    self.popped += 1;
                    self.now = e.time;
                    return Some((e.time, e.event));
                }
            }
            // Nothing due this day: advance to the next day. If a whole year
            // passed without a hit, every pending event is far in the future:
            // jump the calendar directly to the earliest one (sparse case).
            self.cursor = (self.cursor + 1) % n;
            self.day_start += self.width;
            scanned += 1;
            if scanned >= n {
                let min_t = self.min_pending_time().expect("len > 0 but no pending events");
                self.cursor = ((min_t / self.width) as usize) % n;
                self.day_start = (min_t / self.width) * self.width;
                scanned = 0;
            }
        }
    }

    fn peek_time(&self) -> Option<Time> {
        self.min_pending_time()
    }

    #[inline]
    fn len(&self) -> usize {
        self.len
    }

    #[inline]
    fn now(&self) -> Time {
        self.now
    }

    #[inline]
    fn events_processed(&self) -> u64 {
        self.popped
    }

    #[inline]
    fn events_scheduled(&self) -> u64 {
        self.pushed
    }
}

impl<E> SimQueue<E> for CalendarQueue<E> {
    const BACKEND: QueueBackend = QueueBackend::Calendar;

    fn for_simulation() -> Self {
        Self::for_network()
    }
}

impl<E> CalendarQueue<E> {
    fn min_pending_time(&self) -> Option<Time> {
        self.buckets.iter().filter_map(|b| b.first().map(|e| e.time)).min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = CalendarQueue::new(10, 8);
        q.push(95, "d");
        q.push(5, "a");
        q.push(25, "b");
        q.push(90, "c");
        assert_eq!(q.pop(), Some((5, "a")));
        assert_eq!(q.pop(), Some((25, "b")));
        assert_eq!(q.pop(), Some((90, "c")));
        assert_eq!(q.pop(), Some((95, "d")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn equal_times_pop_fifo() {
        let mut q = CalendarQueue::new(10, 8);
        for i in 0..50 {
            q.push(33, i);
        }
        for i in 0..50 {
            assert_eq!(q.pop(), Some((33, i)));
        }
    }

    #[test]
    fn handles_far_future_events() {
        // Event many "years" ahead of the calendar.
        let mut q = CalendarQueue::new(10, 4);
        q.push(1, "near");
        q.push(100_000, "far");
        assert_eq!(q.pop(), Some((1, "near")));
        assert_eq!(q.pop(), Some((100_000, "far")));
    }

    #[test]
    fn wrap_around_collision_respects_time() {
        // Bucket width 10, 4 buckets => year = 40. Times 5 and 45 share a
        // bucket but must pop in time order.
        let mut q = CalendarQueue::new(10, 4);
        q.push(45, "late");
        q.push(5, "early");
        assert_eq!(q.pop(), Some((5, "early")));
        assert_eq!(q.pop(), Some((45, "late")));
    }

    #[test]
    fn matches_heap_on_random_workload() {
        use crate::queue::EventQueue;
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(7);
        let mut heap = EventQueue::new();
        let mut cal = CalendarQueue::new(64, 32);
        let mut now = 0u64;
        let mut pending = 0i64;
        for step in 0..20_000 {
            if pending == 0 || (rng.gen_bool(0.6) && pending < 512) {
                let t = now + rng.gen_range(0..5_000u64);
                heap.push(t, step);
                cal.push(t, step);
                pending += 1;
            } else {
                let a = heap.pop();
                let b = cal.pop();
                assert_eq!(a, b, "divergence at step {step}");
                now = a.map(|(t, _)| t).unwrap_or(now);
                pending -= 1;
            }
        }
        while let Some(a) = heap.pop() {
            assert_eq!(Some(a), cal.pop());
        }
        assert_eq!(cal.pop(), None);
    }
}
