//! Calendar-queue pending-event set, with optional self-tuning.
//!
//! A calendar queue buckets events by time modulo a rotating "year" of
//! fixed-width "days". For workloads whose pending events are spread over a
//! bounded horizon (as in a network simulation where events live at most a
//! few microseconds ahead), `push`/`pop` are O(1) amortized versus the
//! binary heap's O(log n) — *if* the bucket width and count fit the event
//! mix. This implementation is the ablation partner of
//! [`crate::queue::EventQueue`]; both satisfy [`crate::queue::PendingEvents`]
//! and the `event_queue` bench compares them.
//!
//! # Self-tuning
//!
//! Under [`CalendarTuning::AUTO`] (any knob left `None`) the queue adapts:
//!
//! * **Bucket count** follows the pending-set size: when the load factor
//!   (events per bucket) exceeds 2 the array doubles; when it drops below ½
//!   it halves (hysteresis prevents thrash). The array stays within
//!   `[MIN_BUCKETS, MAX_BUCKETS]`.
//! * **Bucket width** follows the event-time spacing à la Brown's rule: a
//!   ring of recent inter-pop gaps is sampled (falling back to sorted
//!   queue-content sampling during warm-up), and at every rebuild the
//!   width is re-estimated as 3× the mean non-zero gap — rounded up to a
//!   power of two so the day-index hot path shifts instead of dividing —
//!   so a day holds a handful of events regardless of the workload's time
//!   scale. Drift is re-checked at power-of-two pop counts (fast warm-up)
//!   and every 4 096 pops thereafter; the calendar is rebuilt when the
//!   estimate moves by ≥4× (two power-of-two notches, so it cannot flap).
//!
//! Rebuilds reuse the previous bucket allocations through a spare-`Vec`
//! pool, so steady-state operation after warm-up does not allocate.
//!
//! Within a bucket events are kept sorted by `(time, seq)` insertion, so
//! the pop order is exactly the same deterministic total order as the
//! heap's — bucket geometry (and therefore the tuning policy) can never
//! change simulation results, only speed.

use crate::queue::{CalendarTuning, EngineStats, PendingEvents, QueueBackend, QueueKind, SimQueue};
use crate::time::Time;

/// Smallest bucket array the self-tuner will shrink to (also the auto
/// mode's starting size).
pub const MIN_BUCKETS: usize = 16;
/// Largest bucket array the self-tuner will grow to.
pub const MAX_BUCKETS: usize = 1 << 20;
/// Default bucket width when auto mode has no gap samples yet (~one packet
/// serialization time).
pub const DEFAULT_WIDTH: Time = 20_480;
/// Inter-pop gap samples kept for width estimation.
const GAP_WINDOW: usize = 32;
/// Minimum gap samples before an auto width estimate is trusted.
const MIN_GAP_SAMPLES: usize = 8;
/// Spare bucket `Vec`s kept across rebuilds (allocation reuse).
const SPARE_POOL_CAP: usize = 1 << 14;

/// A single scheduled entry within a bucket.
#[derive(Debug, Clone)]
struct Entry<E> {
    time: Time,
    seq: u64,
    event: E,
}

/// Calendar queue with a fixed or self-tuned bucket width and count.
#[derive(Debug)]
pub struct CalendarQueue<E> {
    /// Bucket array; index = (time / width) % buckets.len().
    buckets: Vec<Vec<Entry<E>>>,
    /// Width of one bucket (day) in picoseconds.
    width: Time,
    /// `log2(width)` when the width is a power of two (auto-estimated
    /// widths are rounded up to one): day = time >> shift instead of a
    /// u64 division in the per-event hot path.
    width_shift: Option<u32>,
    /// `buckets.len() - 1` when the count is a power of two (always, in
    /// auto mode): index = day & mask instead of a modulo.
    bucket_mask: Option<usize>,
    /// Current day index the cursor is scanning.
    cursor: usize,
    /// Start time of the cursor's day.
    day_start: Time,
    /// Cached time of the earliest pending event (`None` = empty). Kept
    /// exact by every mutation so `peek_time` is O(1): pops re-locate
    /// eagerly (the same cursor walk the next pop would have paid), pushes
    /// fold in a min and re-anchor the cursor when they land earlier.
    next_time: Option<Time>,
    len: usize,
    next_seq: u64,
    now: Time,
    popped: u64,
    pushed: u64,
    /// Self-tuning: adapt the bucket count to the load factor.
    auto_buckets: bool,
    /// Self-tuning: re-estimate the width from sampled gaps at rebuilds.
    auto_width: bool,
    /// Ring buffer of recent inter-pop gaps (width estimator input).
    gaps: [Time; GAP_WINDOW],
    gap_idx: usize,
    gap_count: usize,
    /// Scratch + spare allocations reused across rebuilds.
    scratch: Vec<Entry<E>>,
    spare: Vec<Vec<Entry<E>>>,
    // ---- statistics ----
    peak_len: usize,
    resizes: u64,
    bucket_scans: u64,
    sparse_jumps: u64,
}

impl<E> CalendarQueue<E> {
    /// Create a calendar queue with both knobs pinned.
    ///
    /// `width` is the bucket granularity in picoseconds (e.g. one packet
    /// serialization time, ~20 ns); `num_buckets` sets the year length
    /// `width * num_buckets`, which should exceed the typical scheduling
    /// horizon to avoid long overflow chains.
    pub fn new(width: Time, num_buckets: usize) -> Self {
        Self::with_tuning(CalendarTuning::fixed(width, num_buckets))
    }

    /// Fully self-tuning calendar queue.
    pub fn auto() -> Self {
        Self::with_tuning(CalendarTuning::AUTO)
    }

    /// Create under an arbitrary [`CalendarTuning`]: pinned knobs are
    /// honored exactly, auto knobs start from small defaults and adapt.
    pub fn with_tuning(tuning: CalendarTuning) -> Self {
        let width = tuning.width.unwrap_or(DEFAULT_WIDTH);
        let num_buckets = tuning.buckets.unwrap_or(MIN_BUCKETS);
        assert!(width > 0, "bucket width must be positive");
        assert!(num_buckets >= 2, "need at least two buckets");
        Self {
            buckets: (0..num_buckets).map(|_| Vec::new()).collect(),
            width,
            width_shift: width.is_power_of_two().then(|| width.trailing_zeros()),
            bucket_mask: num_buckets.is_power_of_two().then(|| num_buckets - 1),
            cursor: 0,
            day_start: 0,
            next_time: None,
            len: 0,
            next_seq: 0,
            now: 0,
            popped: 0,
            pushed: 0,
            auto_buckets: tuning.buckets.is_none(),
            auto_width: tuning.width.is_none(),
            gaps: [0; GAP_WINDOW],
            gap_idx: 0,
            gap_count: 0,
            scratch: Vec::new(),
            spare: Vec::new(),
            peak_len: 0,
            resizes: 0,
            bucket_scans: 0,
            sparse_jumps: 0,
        }
    }

    /// The legacy fixed configuration suited to the Dragonfly simulation:
    /// 16 384 buckets of ~20 ns cover a ~0.3 ms horizon.
    pub fn for_network() -> Self {
        Self::with_tuning(CalendarTuning::FIXED_NETWORK)
    }

    /// The time of the most recently popped event.
    #[inline]
    pub fn now(&self) -> Time {
        self.now
    }

    /// Current bucket count (tests, stats).
    #[inline]
    pub fn num_buckets(&self) -> usize {
        self.buckets.len()
    }

    /// Current bucket width in picoseconds (tests, stats).
    #[inline]
    pub fn bucket_width(&self) -> Time {
        self.width
    }

    #[inline]
    fn day_of(&self, time: Time) -> u64 {
        match self.width_shift {
            Some(s) => time >> s,
            None => time / self.width,
        }
    }

    #[inline]
    fn bucket_index(&self, time: Time) -> usize {
        let day = self.day_of(time) as usize;
        match self.bucket_mask {
            Some(m) => day & m,
            None => day % self.buckets.len(),
        }
    }

    /// Sorted insert keeping each bucket ordered by (time, seq).
    fn insert_sorted(bucket: &mut Vec<Entry<E>>, entry: Entry<E>) {
        let pos =
            bucket.binary_search_by(|e| (e.time, e.seq).cmp(&(entry.time, entry.seq))).unwrap_err();
        bucket.insert(pos, entry);
    }

    fn min_pending_time(&self) -> Option<Time> {
        self.buckets.iter().filter_map(|b| b.first().map(|e| e.time)).min()
    }

    /// Walk the cursor forward to the day holding the earliest pending
    /// event and return that event's time (`None` when empty). Removes
    /// nothing: pops call this to position themselves, then again after
    /// removing so [`CalendarQueue::next_time`] stays exact. The walk is
    /// the calendar's usual amortized day scan; a whole empty year falls
    /// back to one full scan plus a sparse jump.
    fn locate(&mut self) -> Option<Time> {
        if self.len == 0 {
            return None;
        }
        let n = self.buckets.len();
        let mut scanned = 0usize;
        loop {
            let day_end = self.day_start + self.width;
            if let Some(first) = self.buckets[self.cursor].first() {
                if first.time < day_end {
                    return Some(first.time);
                }
            }
            self.cursor += 1;
            if self.cursor == n {
                self.cursor = 0;
            }
            self.day_start += self.width;
            scanned += 1;
            self.bucket_scans += 1;
            if scanned >= n {
                // lint: allow(no-panic-paths) — pop is only reached when len > 0 (checked by the caller), so at least one bucket holds a pending event and the scan minimum exists
                let min_t = self.min_pending_time().expect("len > 0 but no pending events");
                self.cursor = self.bucket_index(min_t);
                self.day_start = self.day_of(min_t) * self.width;
                scanned = 0;
                self.sparse_jumps += 1;
            }
        }
    }

    /// Fold a fresh push into the earliest-event cache. A push earlier than
    /// the cached minimum also re-anchors the cursor at its day: the cursor
    /// may already have walked ahead to the previous minimum, and a pending
    /// event behind the cursor's day would otherwise only be reachable
    /// through a full-year scan.
    #[inline]
    fn note_push(&mut self, time: Time) {
        if self.next_time.is_none_or(|m| time < m) {
            self.next_time = Some(time);
            self.cursor = self.bucket_index(time);
            self.day_start = self.day_of(time) * self.width;
        }
    }

    /// Record an inter-pop gap sample for the width estimator.
    #[inline]
    fn record_gap(&mut self, gap: Time) {
        self.gaps[self.gap_idx] = gap;
        self.gap_idx = (self.gap_idx + 1) % GAP_WINDOW;
        if self.gap_count < GAP_WINDOW {
            self.gap_count += 1;
        }
    }

    /// Brown's-rule width estimate: 3× the trimmed mean non-zero inter-pop
    /// gap of the sample window. `None` until enough samples exist (or when
    /// every sampled gap is zero — ties tell us nothing about spacing).
    fn estimate_width(&self) -> Option<Time> {
        if self.gap_count < MIN_GAP_SAMPLES {
            return None;
        }
        let (mut sum, mut n) = (0u128, 0u128);
        for &g in &self.gaps[..self.gap_count] {
            if g > 0 {
                sum += g as u128;
                n += 1;
            }
        }
        if n == 0 {
            return None;
        }
        // Trim outlier gaps > 2× the mean: one ms-scale jump (a job
        // arrival, a compute wake-up) in the window would otherwise blow
        // the width up ~1000× and collapse all ns-scale traffic into a
        // single bucket until the next retune.
        let mean = sum / n;
        let (mut tsum, mut tn) = (0u128, 0u128);
        for &g in &self.gaps[..self.gap_count] {
            if g > 0 && (g as u128) <= 2 * mean {
                tsum += g as u128;
                tn += 1;
            }
        }
        if tn > 0 {
            (sum, n) = (tsum, tn);
        }
        // Round to a power of two: the bucket-index hot path then shifts
        // instead of dividing, and geometry cannot affect the pop order.
        Some(((3 * sum / n) as Time).max(1).next_power_of_two())
    }

    /// Width estimate from the queue contents (Brown's original sampling),
    /// used at rebuilds before enough pop gaps exist: sample up to 64
    /// pending times, sort, and take 3× the mean adjacent gap after
    /// trimming outlier gaps > 2× the mean (far-horizon spikes would
    /// otherwise blow the width up).
    fn estimate_width_from(entries: &[Entry<E>]) -> Option<Time> {
        if entries.len() < 4 {
            return None;
        }
        let stride = entries.len().div_ceil(64);
        let mut times = [0 as Time; 64];
        let mut m = 0usize;
        for e in entries.iter().step_by(stride).take(64) {
            times[m] = e.time;
            m += 1;
        }
        let times = &mut times[..m];
        times.sort_unstable();
        let (mut sum, mut n) = (0u128, 0u128);
        for w in times.windows(2) {
            sum += (w[1] - w[0]) as u128;
            n += 1;
        }
        if n == 0 || sum == 0 {
            return None;
        }
        let mean = sum / n;
        let (mut tsum, mut tn) = (0u128, 0u128);
        for w in times.windows(2) {
            let g = (w[1] - w[0]) as u128;
            if g <= 2 * mean {
                tsum += g;
                tn += 1;
            }
        }
        if tn == 0 || tsum == 0 {
            return None;
        }
        Some(((3 * tsum / tn) as Time).max(1).next_power_of_two())
    }

    /// Rebuild the bucket array with `new_buckets` buckets (re-estimating
    /// the width first when in auto-width mode). Entries keep their
    /// `(time, seq)` identity, so the pop order is unchanged; only the
    /// geometry moves. Old bucket allocations are recycled via the spare
    /// pool — steady-state rebuilds do not allocate.
    fn rebuild(&mut self, new_buckets: usize) {
        let new_buckets = new_buckets.clamp(2, MAX_BUCKETS);
        // Drain every entry into the scratch buffer, keeping the emptied
        // bucket Vecs (and their capacity) for reuse.
        let mut old = std::mem::take(&mut self.buckets);
        let mut scratch = std::mem::take(&mut self.scratch);
        for b in &mut old {
            scratch.append(b);
        }
        if self.auto_width {
            // Prefer the inter-pop gap sample (what actually fires, à la
            // Brown's dequeue sampling); fall back to the queue contents
            // during warm-up when too few pops have happened.
            if let Some(w) = self.estimate_width().or_else(|| Self::estimate_width_from(&scratch)) {
                self.width = w;
            }
        }
        self.width_shift = self.width.is_power_of_two().then(|| self.width.trailing_zeros());
        self.bucket_mask = new_buckets.is_power_of_two().then(|| new_buckets - 1);
        let mut pool = std::mem::take(&mut self.spare);
        pool.append(&mut old);
        self.buckets = (0..new_buckets)
            .map(|_| {
                pool.pop()
                    .map(|mut v| {
                        v.clear();
                        v
                    })
                    .unwrap_or_default()
            })
            .collect();
        pool.truncate(SPARE_POOL_CAP);
        self.spare = pool;
        // Distribute by append, then sort each bucket once — O(k log k)
        // per bucket instead of O(k²) repeated sorted-insert shifts.
        for e in scratch.drain(..) {
            let idx = self.bucket_index(e.time);
            self.buckets[idx].push(e);
        }
        for b in &mut self.buckets {
            if b.len() > 1 {
                b.sort_unstable_by_key(|e| (e.time, e.seq));
            }
        }
        self.scratch = scratch;
        // Re-anchor the cursor at the *clock's* day — never further ahead.
        // Every pending event is `>= now`, so scanning forward from here
        // finds them all; anchoring at the earliest pending event instead
        // would strand later pushes that land between `now` and that day
        // behind the cursor, breaking the pop order. A far-ahead earliest
        // event just costs one sparse jump on the next pop.
        self.cursor = self.bucket_index(self.now);
        self.day_start = self.day_of(self.now) * self.width;
        self.resizes += 1;
    }

    /// Width-drift check in fixed-bucket auto-width mode (and as a safety
    /// valve in full auto mode between load changes): rebuild when the
    /// estimate is off by ≥4× in either direction.
    fn maybe_retune_width(&mut self) {
        if let Some(w) = self.estimate_width() {
            // ≥4× hysteresis: power-of-two widths move in 2× notches, so a
            // 2× threshold would flap on estimates near a notch boundary.
            if w >= self.width.saturating_mul(4) || self.width >= w.saturating_mul(4) {
                self.rebuild(self.buckets.len());
            }
        }
    }
}

impl<E> PendingEvents<E> for CalendarQueue<E> {
    fn push(&mut self, time: Time, event: E) {
        debug_assert!(time >= self.now, "scheduling into the past");
        let seq = self.next_seq;
        self.next_seq += 1;
        let idx = self.bucket_index(time);
        Self::insert_sorted(&mut self.buckets[idx], Entry { time, seq, event });
        self.len += 1;
        self.pushed += 1;
        if self.len > self.peak_len {
            self.peak_len = self.len;
        }
        self.note_push(time);
        // Load factor > 2: double the bucket array.
        if self.auto_buckets
            && self.len > self.buckets.len() * 2
            && self.buckets.len() < MAX_BUCKETS
        {
            self.rebuild(self.buckets.len() * 2);
        }
    }

    fn pop(&mut self) -> Option<(Time, E)> {
        self.pop_keyed().map(|(t, _, e)| (t, e))
    }

    fn pop_keyed(&mut self) -> Option<(Time, u64, E)> {
        // Position the cursor at the earliest event's day (the walk is free
        // when the cache is fresh — the cursor is already parked there).
        self.locate()?;
        let e = self.buckets[self.cursor].remove(0);
        self.len -= 1;
        self.popped += 1;
        debug_assert!(e.time >= self.now, "time went backwards");
        self.record_gap(e.time.saturating_sub(self.now));
        self.now = e.time;
        // Load factor < ½: halve the bucket array.
        if self.auto_buckets
            && self.buckets.len() > MIN_BUCKETS
            && self.len < self.buckets.len() / 2
        {
            self.rebuild(self.buckets.len() / 2);
        } else if self.auto_width && (self.popped & 0xFFF == 0 || self.popped.is_power_of_two()) {
            // Power-of-two checks adapt quickly out of the default width
            // during warm-up; the periodic check tracks slow drift
            // afterwards.
            self.maybe_retune_width();
        }
        // Eagerly re-locate: the exact scan the next pop would have paid,
        // done now so the cache (and thus `peek_time`) stays O(1) exact.
        self.next_time = self.locate();
        Some((e.time, e.seq, e.event))
    }

    fn peek_time(&self) -> Option<Time> {
        debug_assert_eq!(self.next_time, self.min_pending_time(), "stale earliest-event cache");
        self.next_time
    }

    #[inline]
    fn len(&self) -> usize {
        self.len
    }

    #[inline]
    fn now(&self) -> Time {
        self.now
    }

    #[inline]
    fn events_processed(&self) -> u64 {
        self.popped
    }

    #[inline]
    fn events_scheduled(&self) -> u64 {
        self.pushed
    }

    fn stats(&self) -> EngineStats {
        EngineStats {
            events_processed: self.popped,
            events_scheduled: self.pushed,
            pending: self.len,
            peak_pending: self.peak_len,
            resizes: self.resizes,
            bucket_scans: self.bucket_scans,
            sparse_jumps: self.sparse_jumps,
            buckets: self.buckets.len(),
            width_ps: self.width,
        }
    }

    fn push_seq(&mut self, time: Time, seq: u64, event: E) {
        debug_assert!(time >= self.now, "scheduling into the past");
        self.next_seq = self.next_seq.max(seq.saturating_add(1));
        let idx = self.bucket_index(time);
        Self::insert_sorted(&mut self.buckets[idx], Entry { time, seq, event });
        self.len += 1;
        self.pushed += 1;
        if self.len > self.peak_len {
            self.peak_len = self.len;
        }
        self.note_push(time);
        if self.auto_buckets
            && self.len > self.buckets.len() * 2
            && self.buckets.len() < MAX_BUCKETS
        {
            self.rebuild(self.buckets.len() * 2);
        }
    }

    fn for_each_pending_mut(&mut self, f: &mut dyn FnMut(Time, &mut u64)) {
        // Buckets are sorted by (time, seq); a monotone renumbering keeps
        // every bucket's order intact, so entries can be rewritten in place.
        for b in &mut self.buckets {
            for e in b {
                f(e.time, &mut e.seq);
            }
        }
    }

    fn advance_clock(&mut self, t: Time) {
        debug_assert!(t >= self.now, "clock went backwards");
        debug_assert!(self.min_pending_time().is_none_or(|p| p >= t), "advancing past an event");
        self.now = t;
        // Re-anchor the cursor at the clock's day, exactly like `rebuild`:
        // every pending event is >= now, so scanning forward finds them all.
        self.cursor = self.bucket_index(self.now);
        self.day_start = self.day_of(self.now) * self.width;
    }
}

impl<E> SimQueue<E> for CalendarQueue<E> {
    const KIND: QueueKind = QueueKind::Calendar;

    fn for_backend(backend: QueueBackend) -> Self {
        match backend {
            QueueBackend::Calendar(t) => Self::with_tuning(t),
            QueueBackend::BinaryHeap => {
                debug_assert!(false, "backend dispatch mismatch");
                Self::auto()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = CalendarQueue::new(10, 8);
        q.push(95, "d");
        q.push(5, "a");
        q.push(25, "b");
        q.push(90, "c");
        assert_eq!(q.pop(), Some((5, "a")));
        assert_eq!(q.pop(), Some((25, "b")));
        assert_eq!(q.pop(), Some((90, "c")));
        assert_eq!(q.pop(), Some((95, "d")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn equal_times_pop_fifo() {
        let mut q = CalendarQueue::new(10, 8);
        for i in 0..50 {
            q.push(33, i);
        }
        for i in 0..50 {
            assert_eq!(q.pop(), Some((33, i)));
        }
    }

    #[test]
    fn handles_far_future_events() {
        // Event many "years" ahead of the calendar.
        let mut q = CalendarQueue::new(10, 4);
        q.push(1, "near");
        q.push(100_000, "far");
        assert_eq!(q.pop(), Some((1, "near")));
        assert_eq!(q.pop(), Some((100_000, "far")));
        assert!(q.stats().sparse_jumps > 0, "far event must trigger the sparse jump");
    }

    #[test]
    fn wrap_around_collision_respects_time() {
        // Bucket width 10, 4 buckets => year = 40. Times 5 and 45 share a
        // bucket but must pop in time order.
        let mut q = CalendarQueue::new(10, 4);
        q.push(45, "late");
        q.push(5, "early");
        assert_eq!(q.pop(), Some((5, "early")));
        assert_eq!(q.pop(), Some((45, "late")));
    }

    #[test]
    fn fixed_tuning_never_resizes() {
        let mut q = CalendarQueue::new(10, 4);
        for i in 0..1_000u64 {
            q.push(i * 3, i);
        }
        assert_eq!(q.num_buckets(), 4);
        assert_eq!(q.stats().resizes, 0);
        assert_eq!(q.stats().peak_pending, 1_000);
    }

    #[test]
    fn auto_mode_grows_with_load_and_shrinks_after() {
        let mut q = CalendarQueue::auto();
        for i in 0..10_000u64 {
            q.push(i * 7, i);
        }
        let grown = q.num_buckets();
        assert!(grown > MIN_BUCKETS, "load factor 2 must have forced growth");
        assert!(q.stats().resizes > 0);
        for i in 0..10_000u64 {
            assert_eq!(q.pop(), Some((i * 7, i)));
        }
        assert!(
            q.num_buckets() < grown,
            "draining must shrink the array back ({} vs {grown})",
            q.num_buckets()
        );
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn auto_width_follows_event_spacing() {
        // Events 1 ms apart: the default ~20 ns width would force ~50k
        // bucket scans per pop; the tuner must widen days dramatically.
        let mut q = CalendarQueue::auto();
        let spacing: Time = 1_000_000_000; // 1 ms in ps
        let mut t = 0;
        for i in 0..256u64 {
            t += spacing;
            q.push(t, i);
        }
        for _ in 0..256 {
            q.pop().unwrap();
        }
        assert!(
            q.bucket_width() > DEFAULT_WIDTH,
            "width must have adapted upward: {} ps",
            q.bucket_width()
        );
    }

    #[test]
    fn resize_preserves_exact_order_mid_stream() {
        // Interleave pushes and pops so rebuilds happen while the cursor is
        // mid-year; compare against the heap oracle.
        use crate::queue::EventQueue;
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(99);
        let mut heap = EventQueue::new();
        let mut cal = CalendarQueue::auto();
        let mut now = 0u64;
        for step in 0..30_000u64 {
            if rng.gen_bool(0.55) {
                let t = now + rng.gen_range(0..200_000u64);
                heap.push(t, step);
                cal.push(t, step);
            } else {
                let a = heap.pop();
                assert_eq!(a, cal.pop(), "divergence at step {step}");
                now = a.map(|(t, _)| t).unwrap_or(now);
            }
        }
        while let Some(a) = heap.pop() {
            assert_eq!(Some(a), cal.pop());
        }
        assert!(cal.stats().resizes > 0, "workload sized to force rebuilds");
    }

    #[test]
    fn matches_heap_on_random_workload() {
        use crate::queue::EventQueue;
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(7);
        let mut heap = EventQueue::new();
        let mut cal = CalendarQueue::new(64, 32);
        let mut now = 0u64;
        let mut pending = 0i64;
        for step in 0..20_000 {
            if pending == 0 || (rng.gen_bool(0.6) && pending < 512) {
                let t = now + rng.gen_range(0..5_000u64);
                heap.push(t, step);
                cal.push(t, step);
                pending += 1;
            } else {
                let a = heap.pop();
                let b = cal.pop();
                assert_eq!(a, b, "divergence at step {step}");
                now = a.map(|(t, _)| t).unwrap_or(now);
                pending -= 1;
            }
        }
        while let Some(a) = heap.pop() {
            assert_eq!(Some(a), cal.pop());
        }
        assert_eq!(cal.pop(), None);
    }

    #[test]
    fn rebuild_with_far_pending_keeps_later_near_pushes_ordered() {
        // Regression: a rebuild while every pending event is far in the
        // future must anchor the cursor at the clock, not at the earliest
        // pending day — otherwise a near-term push after the rebuild lands
        // "behind" the cursor and pops out of order.
        let mut q = CalendarQueue::auto();
        for i in 0..40u64 {
            q.push(1_000_000_000 + i, i);
        }
        assert!(q.stats().resizes > 0, "40 pushes must outgrow the initial 16 buckets");
        q.push(1, 999);
        assert_eq!(q.pop(), Some((1, 999)), "near event pushed after a rebuild must pop first");
        for i in 0..40u64 {
            assert_eq!(q.pop(), Some((1_000_000_000 + i, i)));
        }
    }

    #[test]
    fn stats_report_geometry_and_scans() {
        let mut q = CalendarQueue::new(10, 4);
        // A lone push anchors the cursor at its own day, so reaching the
        // *second* event is what walks empty days (the re-locate after the
        // first pop).
        q.push(5, ());
        q.push(200, ());
        q.pop().unwrap();
        let s = q.stats();
        assert_eq!(s.buckets, 4);
        assert_eq!(s.width_ps, 10);
        assert!(s.bucket_scans > 0, "empty days were scanned");
        assert_eq!(s.events_processed, 1);
    }
}
