//! Job-lifecycle event kinds for dynamic (churn) scenarios.
//!
//! A static run launches every workload at t = 0, but a churn scenario has
//! jobs arriving, queueing and departing while others run. The DES kernel
//! therefore knows two job-lifecycle event kinds: a **spawn** (the job's
//! arrival instant — whether it starts immediately is the job scheduler's
//! decision) and a **teardown** (the instant a finished job's nodes are
//! reclaimed). The world loop in `dfsim-core` lifts these into its world
//! event enum exactly like network and MPI events, so both queue backends
//! realize the same deterministic `(time, seq)` order for job churn too.

/// Identifies one job of a scenario (its index in arrival order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(pub u32);

impl JobId {
    /// Raw index.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job{}", self.0)
    }
}

/// Job-lifecycle events driven through the world queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobEvent {
    /// The job arrived and asks to be scheduled (it may queue if the
    /// machine is full).
    Spawn(JobId),
    /// The job finished; its nodes return to the free pool and queued jobs
    /// get another admission chance.
    Teardown(JobId),
}

impl JobEvent {
    /// The job this event concerns.
    #[inline]
    pub fn job(self) -> JobId {
        match self {
            JobEvent::Spawn(j) | JobEvent::Teardown(j) => j,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_accessor_and_display() {
        assert_eq!(JobEvent::Spawn(JobId(3)).job(), JobId(3));
        assert_eq!(JobEvent::Teardown(JobId(7)).job(), JobId(7));
        assert_eq!(JobId(2).to_string(), "job2");
        assert_eq!(JobId(2).idx(), 2);
    }
}
