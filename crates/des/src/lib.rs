//! Discrete-event simulation kernel for the Dragonfly interference study.
//!
//! This crate is the substitute for the SST simulation core used by the paper
//! (see `DESIGN.md` §5). It provides:
//!
//! * a picosecond time base exact for all the paper's link constants
//!   ([`time`]),
//! * two interchangeable pending-event sets — a binary heap and a calendar
//!   queue — behind the [`queue::PendingEvents`] trait ([`queue`],
//!   [`calendar`]),
//! * a tiny scheduler abstraction so sub-models (network, MPI) can schedule
//!   their own event types while a single world queue drives the simulation
//!   ([`sched`]),
//! * deterministic, splittable random-number utilities so every simulation is
//!   reproducible from one seed ([`rng`]),
//! * job-lifecycle event kinds (spawn/teardown) for dynamic churn scenarios
//!   ([`job`]),
//! * a partition communicator for the conservatively synchronized parallel
//!   engine, with an in-process thread implementation ([`comm`]).
//!
//! Event semantics are exactly deterministic in both execution modes: the
//! sequential engine orders by `(time, seq)`, and the partitioned engine
//! renumbers provisional sequence numbers at every conservative window
//! barrier so its reports are bit-identical to the sequential ones.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod calendar;
pub mod comm;
pub mod job;
pub mod queue;
pub mod rng;
pub mod sched;
pub mod time;

pub use calendar::CalendarQueue;
pub use comm::{local_mesh, LocalThreadCommunicator, SimCommunicator, WireReader, WireWriter};
pub use job::{JobEvent, JobId};
pub use queue::{
    CalendarTuning, EngineStats, EventQueue, PendingEvents, QueueBackend, QueueKind, SimQueue,
};
pub use rng::SimRng;
pub use sched::Scheduler;
pub use time::{
    parse_duration, Time, GIGABIT_PER_SEC, MICROSECOND, MILLISECOND, NANOSECOND, PICOSECOND, SECOND,
};
